module H = Checker.History
module L = Checker.Linearizability

(* Brute-force linearizability for small histories over a multi-key int
   register map, zero-initialized. Incomplete writes may apply anywhere
   after invoke or never; incomplete reads are unconstrained (dropped). *)
let brute (events : H.t) : bool =
  (* ops: (key, is_read, value, invoke, respond option) *)
  let ops =
    List.filter_map
      (fun (e : H.event) ->
        match e.H.kind, e.H.respond, e.H.ret with
        | H.Read, None, _ -> None
        | H.Read, Some r, Some v -> Some (e.H.key, true, v, e.H.invoke, Some r)
        | H.Write w, Some r, Some _ -> Some (e.H.key, false, w, e.H.invoke, Some r)
        | H.Write w, None, _ -> Some (e.H.key, false, w, e.H.invoke, None)
        | _ -> assert false)
      events
  in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let used = Array.make n false in
  let module Im = Map.Make (Int) in
  let value store k = Option.value ~default:0 (Im.find_opt k store) in
  (* subsets of incomplete writes to skip: recurse with a "skip" decision *)
  let rec go store placed skipped =
    if placed + skipped = n then true
    else
      (* minimality: candidate if invoke <= min respond of remaining *)
      let min_resp = ref max_int in
      for i = 0 to n - 1 do
        if not used.(i) then
          (match arr.(i) with
           | (_, _, _, _, Some r) -> if r < !min_resp then min_resp := r
           | _ -> ())
      done;
      let ok = ref false in
      for i = 0 to n - 1 do
        if (not !ok) && not used.(i) then begin
          let (k, is_read, v, invoke, respond) = arr.(i) in
          if invoke <= !min_resp then begin
            (* option: linearize now *)
            if is_read then begin
              if value store k = v then begin
                used.(i) <- true;
                if go store (placed + 1) skipped then ok := true;
                used.(i) <- false
              end
            end else begin
              used.(i) <- true;
              if go (Im.add k v store) (placed + 1) skipped then ok := true;
              used.(i) <- false
            end
          end;
          (* option: never linearize (incomplete only) *)
          if (not !ok) && respond = None then begin
            used.(i) <- true;
            if go store placed (skipped + 1) then ok := true;
            used.(i) <- false
          end
        end
      done;
      !ok
  in
  go Im.empty 0 0

let () =
  let seed = int_of_string Sys.argv.(1) in
  let iters = int_of_string Sys.argv.(2) in
  let st = Random.State.make [| seed |] in
  let mismatches = ref 0 in
  for trial = 1 to iters do
    let nops = 4 + Random.State.int st 5 in
    let nkeys = 1 + Random.State.int st 3 in
    let nvals = 3 in
    let events =
      List.init nops (fun i ->
          let key = Random.State.int st nkeys in
          let invoke = Random.State.int st 12 in
          let dur = Random.State.int st 20 in
          let complete = Random.State.int st 10 < 8 in
          let is_read = Random.State.bool st in
          if is_read then
            if complete then
              { H.client = i; key; kind = H.Read; invoke;
                respond = Some (invoke + dur); ret = Some (Random.State.int st nvals) }
            else { H.client = i; key; kind = H.Read; invoke; respond = None; ret = None }
          else
            let v = 1 + Random.State.int st (nvals - 1) in
            if complete then
              { H.client = i; key; kind = H.Write v; invoke;
                respond = Some (invoke + dur); ret = Some v }
            else { H.client = i; key; kind = H.Write v; invoke; respond = None; ret = None })
    in
    let expect = brute events in
    let mono = (L.check_history ~mode:`Monolithic events).L.ok in
    let pk = (L.check_history ~mode:`Per_key events).L.ok in
    if mono <> expect || pk <> expect then begin
      incr mismatches;
      Printf.printf "MISMATCH trial %d: brute=%b mono=%b perkey=%b\n" trial expect mono pk;
      List.iter (fun e -> Format.printf "  %a@." H.pp_event e) (H.sort events)
    end
  done;
  Printf.printf "done: %d mismatches\n" !mismatches
