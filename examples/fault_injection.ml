(* Fault injection: what each failure does to the fast path.

   Run with:  dune exec examples/fault_injection.exe

   Three staged scenarios on the paper's task protocol at its bound
   (n = 6, e = f = 2), all under synchronous rounds:

   1. e crashes at startup        -> the fast path still decides at 2 delays;
   2. e+1 crashes at startup      -> no fast decision; the slow path takes
                                     over and still terminates (<= f... here
                                     3 > f, so we use a separate (e,f));
   3. the fast decider crashes the instant it decides, its Decide broadcast
      racing a recovery ballot    -> agreement is preserved by Lemma 7;
   4. a lossy, duplicating network (seeded fault plan: ~15% of messages
      dropped, ~20% duplicated)   -> liveness may stall, safety never. *)

let delta = 100

let banner title = Format.printf "@.== %s ==@." title

let show outcome =
  List.iter
    (fun (t, p, v) ->
      Format.printf "  t=%-5d %a decides %a@." t Dsim.Pid.pp p Proto.Value.pp v)
    outcome.Checker.Scenario.decisions;
  Format.printf "  verdict: %a@." Checker.Safety.pp_verdict (Checker.Safety.check outcome)

let () =
  let n = 6 and e = 2 and f = 2 in
  let proposals = Checker.Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4; 5 ] in

  banner "1. Fast path under e = 2 startup crashes (n = 6, e = f = 2)";
  let o1 =
    Checker.Scenario.run Core.Rgs.task ~n ~e ~f ~delta
      ~net:(Checker.Scenario.Sync (`Favor 5)) ~proposals
      ~crashes:(Checker.Scenario.crash_at_start [ 0; 1 ])
      ~until:(20 * delta) ()
  in
  show o1;
  Format.printf "  p5 (the highest proposer) decided in two message delays despite 2 crashes@.";

  banner "2. One crash too many (3 crashes with e = 2): the fast path is gone";
  let o2 =
    Checker.Scenario.run Core.Rgs.task ~n ~e:2 ~f:3 ~delta
      ~net:(Checker.Scenario.Sync (`Favor 5)) ~proposals
      ~crashes:(Checker.Scenario.crash_at_start [ 0; 1; 2 ])
      ~until:(40 * delta) ()
  in
  (* n = 6 >= max{2e+f, 2f+1} = 7? No: with f = 3 the bound is 7; we keep
     n = 6 here only to show the latency cliff, which is a liveness
     phenomenon; safety is untouched. *)
  show o2;
  (match Checker.Scenario.decided_by o2 ~deadline:(2 * delta) with
  | [] -> Format.printf "  nobody decided within two delays: the slow path had to run@."
  | _ -> failwith "unexpected fast decision");

  banner "3. The fast decider crashes at the moment of decision";
  let o3 =
    Checker.Scenario.run Core.Rgs.task ~n ~e ~f ~delta
      ~net:(Checker.Scenario.Sync (`Favor 5)) ~proposals
      ~crashes:[ ((2 * delta) + 1, 5); (0, 4) ]
      ~until:(40 * delta) ()
  in
  show o3;
  let values =
    List.sort_uniq compare (List.map (fun (_, _, v) -> v) o3.Checker.Scenario.decisions)
  in
  Format.printf
    "  the crashed decider's value %s survived recovery (Lemma 7 in action)@."
    (String.concat "," (List.map string_of_int values));

  banner "4. Message loss and duplication (seeded fault plan, partial synchrony)";
  let o4 =
    Checker.Scenario.run Core.Rgs.task ~n ~e ~f ~delta
      ~net:(Checker.Scenario.Partial { gst = 5 * delta; max_pre_gst = 3 * delta })
      ~proposals ~seed:7
      ~faults:
        (Dsim.Network.Fault.random ~drop_rate:0.15 ~dup_rate:0.2 ~max_drops:10
           ~max_dups:10 ~max_extra_delay:(2 * delta) ())
      ~until:(60 * delta) ()
  in
  show o4;
  Format.printf
    "  %d messages lost, %d duplicated — retransmission rides out the loss and@.  \
     set-keyed vote tallies absorb the duplicates (same seed, same faults)@."
    o4.Checker.Scenario.dropped o4.Checker.Scenario.duplicated
