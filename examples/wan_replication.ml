(* Geo-replicated key-value store.

   Run with:  dune exec examples/wan_replication.exe

   The scenario the paper's introduction motivates: a KV store replicated
   across five continents, clients talking to the replica in their own
   region (the proxy). We replicate the store with three protocols and
   compare the commit latency each client observes:

   - paxos        all commands funnel through one leader (Virginia);
   - fast-paxos   fast everywhere, but needs n = 2e+f+1 = 7 replicas;
   - rgs-object   the paper's protocol: fast with only n = 2e+f-1 = 5.

   Every protocol tolerates f = 2 crashes and keeps two-step decisions
   under e = 2 crashes. *)

let () =
  let e = 2 and f = 2 in
  let topo = Workload.Topology.planet5 in
  let delta = Workload.Topology.max_oneway topo + 10 in
  let regions = Workload.Topology.regions topo in
  Format.printf "Topology %s: %s@."
    (Workload.Topology.name topo)
    (String.concat ", " regions);
  Format.printf "Workload: each region's client writes one key through its local proxy@.@.";
  Format.printf "%-12s %3s |" "protocol" "n";
  List.iter (fun r -> Format.printf " %10s" r) regions;
  Format.printf "   <- commit latency at the proxy (ms)@.";
  List.iter
    (fun (name, protocol) ->
      let (module P : Proto.Protocol.S) = protocol in
      let n = P.min_n ~e ~f in
      Format.printf "%-12s %3d |" name n;
      List.iteri
        (fun region_idx _region ->
          let proxy = region_idx in
          let client = region_idx in
          let command =
            Smr.Kv.encode { Smr.Kv.client; key = region_idx; action = Smr.Kv.Put 7 }
          in
          let t =
            Smr.Replica.Instance.create ~protocol ~n ~e ~f ~delta
              ~net:
                (Checker.Scenario.Wan
                   { latency = Workload.Topology.latency_fn topo; jitter = 3 })
              ~commands:[ (0, proxy, command) ]
              ()
          in
          ignore (Smr.Replica.Instance.run ~until:(40 * delta) t);
          assert (Smr.Replica.Instance.converged t);
          match Smr.Replica.Instance.commit_time t ~proxy ~command with
          | Some ms -> Format.printf " %10d" ms
          | None -> Format.printf " %10s" "-")
        regions;
      Format.printf "@.")
    [
      ("paxos", Baselines.Paxos.protocol);
      ("fast-paxos", Baselines.Fast_paxos.protocol);
      ("rgs-object", Core.Rgs.obj);
    ];
  Format.printf
    "@.The paper's protocol reaches Fast-Paxos-class latency with two fewer@.";
  Format.printf
    "replicas; Paxos makes every non-Virginia client pay a leader round trip.@."
