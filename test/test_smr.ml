(* Tests for the SMR layer and the replicated KV store: log convergence,
   command retry after lost slots, crash tolerance, pipelining + batching,
   and the codec (single-op and batch). *)

module Pid = Dsim.Pid
module Network = Dsim.Network
module Instance = Smr.Replica.Instance
module Kv = Smr.Kv

let delta = 100

let cmd c k v = Kv.encode { Kv.client = c; key = k; action = Kv.Put v }
let rd c k = Kv.encode { Kv.client = c; key = k; action = Kv.Get }

let test_kv_codec_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "roundtrip" true (Kv.decode (Kv.encode op) = op))
    [
      { Kv.client = 0; key = 0; action = Put 0 };
      { Kv.client = 3; key = 1023; action = Put 1023 };
      { Kv.client = 4000; key = 17; action = Put 3 };
      { Kv.client = 150_000; key = 512; action = Put 7 };
      { Kv.client = Kv.max_client; key = 1023; action = Put 1023 };
      { Kv.client = 0; key = 0; action = Get };
      { Kv.client = 42; key = 512; action = Get };
      { Kv.client = Kv.max_client; key = 1023; action = Get };
    ];
  List.iter
    (fun op ->
      Alcotest.check_raises "range check"
        (Invalid_argument "Kv.encode: field out of range") (fun () ->
          ignore (Kv.encode op)))
    [
      { Kv.client = 0; key = 1024; action = Put 0 };
      { Kv.client = 0; key = 0; action = Put 1024 };
      { Kv.client = Kv.max_client + 1; key = 0; action = Put 0 };
      { Kv.client = -1; key = 0; action = Put 0 };
      { Kv.client = 0; key = 1024; action = Get };
    ];
  Alcotest.(check bool) "is_get on get word" true (Kv.is_get (rd 7 3));
  Alcotest.(check bool) "is_get off put word" false (Kv.is_get (cmd 7 3 9));
  (* Every single-op word sits below the batch-identifier range. *)
  Alcotest.(check bool) "ops below batch_base" true
    (Kv.encode { Kv.client = Kv.max_client; key = 1023; action = Get } < Kv.batch_base)

(* The decimal-radix codec only reached clients 0..4000 and fields 0..999;
   the bit-packed replacement must keep that whole legacy range working. *)
let kv_codec_legacy_property =
  QCheck.Test.make ~name:"kv codec covers the legacy decimal range" ~count:300
    QCheck.(triple (int_bound 4000) (int_bound 999) (int_bound 999))
    (fun (client, key, value) ->
      Kv.decode (Kv.encode { Kv.client; key; action = Put value })
      = { Kv.client; key; action = Put value })

let kv_codec_property =
  QCheck.Test.make ~name:"kv codec roundtrips >= 100k clients" ~count:500
    QCheck.(quad bool (int_bound Kv.max_client) (int_bound 1023) (int_bound 1023))
    (fun (get, client, key, value) ->
      let action = if get then Kv.Get else Kv.Put value in
      Kv.decode (Kv.encode { Kv.client; key; action }) = { Kv.client; key; action })

let test_batch_codec () =
  let reg = Kv.Batch.create () in
  let a = cmd 1 2 3 and b = cmd 4 5 6 and c = cmd 150_000 7 8 in
  (* Singletons pack to themselves: indistinguishable from unbatched. *)
  Alcotest.(check int) "singleton packs to itself" a (Kv.Batch.pack reg [ a ]);
  Alcotest.(check bool) "singleton is not a batch" false (Kv.Batch.is_batch a);
  let id = Kv.Batch.pack reg [ a; b; c ] in
  Alcotest.(check bool) "k>=2 packs to a batch id" true (Kv.Batch.is_batch id);
  Alcotest.(check bool) "id above batch_base" true (id >= Kv.batch_base);
  Alcotest.(check (list int)) "expand inverts pack" [ a; b; c ] (Kv.Batch.expand reg id);
  Alcotest.(check (list int)) "non-batch expands to itself" [ b ] (Kv.Batch.expand reg b);
  Alcotest.(check int) "same content, same id" id (Kv.Batch.pack reg [ a; b; c ]);
  Alcotest.(check bool) "different content, different id" true
    (Kv.Batch.pack reg [ b; a ] <> id);
  Alcotest.(check int) "size of batch" 3 (Kv.Batch.size reg id);
  Alcotest.(check int) "size of single op" 1 (Kv.Batch.size reg a);
  Alcotest.check_raises "empty batch" (Invalid_argument "Kv.Batch.pack: empty batch")
    (fun () -> ignore (Kv.Batch.pack reg []));
  Alcotest.check_raises "nested batch" (Invalid_argument "Kv.Batch.pack: nested batch")
    (fun () -> ignore (Kv.Batch.pack reg [ a; id ]));
  Alcotest.check_raises "unknown id" (Invalid_argument "Kv.Batch.expand: unknown batch id")
    (fun () -> ignore (Kv.Batch.expand reg (Kv.batch_base + 999)))

let batch_codec_property =
  QCheck.Test.make ~name:"batch pack/expand = id for op lists" ~count:200
    QCheck.(list_of_size Gen.(1 -- 10) (triple (int_bound 9999) (int_bound 1023) (int_bound 1023)))
    (fun ops ->
      QCheck.assume (ops <> []);
      let reg = Kv.Batch.create () in
      let words = List.map (fun (c, k, v) -> cmd c k v) ops in
      Kv.Batch.expand reg (Kv.Batch.pack reg words) = words)

let test_kv_store_apply () =
  let store = Kv.empty () in
  Kv.apply store { Kv.client = 0; key = 1; action = Put 10 };
  Kv.apply store { Kv.client = 1; key = 1; action = Put 20 };
  Kv.apply store { Kv.client = 0; key = 2; action = Put 30 };
  Kv.apply store { Kv.client = 2; key = 1; action = Get };
  Alcotest.(check (option int)) "last write wins" (Some 20) (Kv.get store 1);
  Alcotest.(check (option int)) "other key" (Some 30) (Kv.get store 2);
  Alcotest.(check (option int)) "missing" None (Kv.get store 9);
  Alcotest.(check int) "read with default" 0 (Kv.read store 9)

let test_mstore_eval () =
  let open Kv in
  let s = Mstore.empty in
  Alcotest.(check int) "unwritten reads 0" 0 (Mstore.read s 5);
  let s, r1 = Mstore.eval s { client = 0; key = 5; action = Put 11 } in
  Alcotest.(check int) "put returns written value" 11 r1;
  let s, r2 = Mstore.eval s { client = 1; key = 5; action = Get } in
  Alcotest.(check int) "get returns current" 11 r2;
  let s, _ = Mstore.eval s { client = 0; key = 5; action = Put 22 } in
  Alcotest.(check int) "current after overwrite" 22 (Mstore.read s 5);
  Alcotest.(check int) "stale is previous value" 11 (Mstore.stale s 5);
  Alcotest.(check int) "stale of single write" 0 (Mstore.stale s 9)

let run_instance ?(crashes = []) ?(seed = 0) ?pipeline ?batch_max ?faults ~protocol ~n
    ~e ~f ~commands ~until () =
  let t =
    Instance.create ~protocol ~n ~e ~f ~delta
      ~net:(Checker.Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
      ~seed ?pipeline ?batch_max ?faults ~commands ~crashes ()
  in
  ignore (Instance.run ~until t);
  t

let test_commands_commit_and_converge () =
  let n = 5 and e = 2 and f = 2 in
  let commands =
    [ (0, 0, cmd 0 1 11); (0, 2, cmd 1 2 22); (50, 4, cmd 2 3 33); (400, 1, cmd 3 1 44) ]
  in
  let t =
    run_instance ~protocol:Core.Rgs.task ~n ~e ~f ~commands ~until:(100 * delta) ()
  in
  Alcotest.(check bool) "logs converge" true (Instance.converged t);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d applied everything" p)
        4
        (List.length (Instance.applied_log t p)))
    (Pid.all ~n)

let test_conflicting_slot_reproposal () =
  (* Two proxies submit simultaneously: both commands must eventually
     commit, one of them after losing slot 0 and reproposing. *)
  let n = 5 and e = 2 and f = 2 in
  let commands = [ (0, 0, cmd 0 1 11); (0, 4, cmd 1 2 22) ] in
  let t =
    run_instance ~protocol:Core.Rgs.obj ~n ~e ~f ~commands ~until:(150 * delta) ()
  in
  Alcotest.(check bool) "converged" true (Instance.converged t);
  let log = Instance.applied_log t 2 in
  Alcotest.(check int) "both commands applied" 2 (List.length log);
  let applied = List.map snd log |> List.sort compare in
  Alcotest.(check (list int)) "exactly the two commands" [ cmd 0 1 11; cmd 1 2 22 ] applied

let test_replica_crash_mid_stream () =
  let n = 5 and e = 2 and f = 2 in
  let commands = List.init 5 (fun i -> (i * 2 * delta, i mod 3, cmd i (i + 1) (i + 1))) in
  let t =
    run_instance ~protocol:Core.Rgs.task ~n ~e ~f ~commands
      ~crashes:[ (5 * delta, 4) ]
      ~until:(200 * delta) ()
  in
  Alcotest.(check bool) "converged despite crash" true (Instance.converged t);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d applied all 5" p)
        5
        (List.length (Instance.applied_log t p)))
    [ 0; 1; 2; 3 ]

let test_kv_replay_agreement () =
  let n = 5 and e = 2 and f = 2 in
  let commands = [ (0, 0, cmd 0 1 11); (0, 1, cmd 1 1 22); (100, 2, cmd 2 1 33) ] in
  let t =
    run_instance ~protocol:Core.Rgs.obj ~n ~e ~f ~commands ~until:(150 * delta) ()
  in
  let stores = List.map (fun p -> Kv.replay (Instance.applied_log t p)) (Pid.all ~n) in
  match stores with
  | first :: rest ->
      List.iter
        (fun s -> Alcotest.(check bool) "same final store" true (Kv.equal_store first s))
        rest
  | [] -> Alcotest.fail "no stores"

(* Pipelining + batching: a burst of commands at one proxy must land in far
   fewer slots than commands, every command exactly once, logs converged. *)
let test_pipelined_batched_burst () =
  let n = 5 and e = 2 and f = 2 in
  let count = 40 in
  let commands = List.init count (fun i -> (i * 3, 0, cmd i (i mod 10) (i + 1))) in
  let t =
    run_instance ~protocol:Core.Rgs.obj ~n ~e ~f ~pipeline:4 ~batch_max:8 ~commands
      ~until:(300 * delta) ()
  in
  Alcotest.(check bool) "converged" true (Instance.converged t);
  let log = Instance.applied_log t 0 in
  Alcotest.(check int) "every command applied once" count (List.length log);
  Alcotest.(check (list int)) "exactly the submitted commands"
    (List.map (fun (_, _, c) -> c) commands)
    (List.sort compare (List.map snd log));
  let slots = List.sort_uniq compare (List.map fst log) in
  Alcotest.(check bool)
    (Printf.sprintf "batched into fewer slots (%d)" (List.length slots))
    true
    (List.length slots < count)

let test_commit_time_matches_output_scan () =
  let n = 5 and e = 2 and f = 2 in
  let commands = List.init 12 (fun i -> (i * 20, i mod n, cmd i (i mod 5) (i + 1))) in
  let t =
    run_instance ~protocol:Core.Rgs.task ~n ~e ~f ~pipeline:4 ~batch_max:4 ~commands
      ~until:(200 * delta) ()
  in
  let outputs = Instance.outputs t in
  let scan ~proxy ~command =
    List.find_map
      (fun (time, pid, (_, c, _)) ->
        if Pid.equal pid proxy && c = command then Some time else None)
      outputs
  in
  List.iter
    (fun (_, proxy, command) ->
      Alcotest.(check (option int))
        (Printf.sprintf "commit_time agrees with scan for %d" command)
        (scan ~proxy ~command)
        (Instance.commit_time t ~proxy ~command))
    commands;
  Alcotest.(check (option int)) "absent command" None
    (Instance.commit_time t ~proxy:0 ~command:(cmd 999 0 0))

let test_drain_outputs_exactly_once () =
  let n = 5 and e = 2 and f = 2 in
  let commands = List.init 8 (fun i -> (i * 10, 0, cmd i 1 (i + 1))) in
  let t =
    run_instance ~protocol:Core.Rgs.obj ~n ~e ~f ~pipeline:2 ~batch_max:4 ~commands
      ~until:(200 * delta) ()
  in
  let drained = ref [] in
  Instance.drain_new_outputs t ~f:(fun time pid slot c ret ->
      drained := (time, pid, (slot, c, ret)) :: !drained);
  Alcotest.(check int) "drain sees all outputs"
    (List.length (Instance.outputs t))
    (List.length !drained);
  Alcotest.(check bool) "drain matches outputs" true
    (List.rev !drained = Instance.outputs t);
  let again = ref 0 in
  Instance.drain_new_outputs t ~f:(fun _ _ _ _ _ -> incr again);
  Alcotest.(check int) "second drain is empty" 0 !again

(* Read results: a Get committed after a Put must carry the written value
   in its output, on every replica; a [Stale_reads] replica serves the
   key's previous value instead — the checker's canary misbehaviour. *)
let test_read_results_and_stale_mutation () =
  let n = 5 and e = 2 and f = 2 in
  let commands =
    [ (0, 0, cmd 0 1 5); (10 * delta, 0, cmd 1 1 7); (25 * delta, 0, rd 2 1) ]
  in
  let run ?mutation () =
    let t =
      Instance.create ~protocol:Core.Rgs.task ~n ~e ~f ~delta
        ~net:(Checker.Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
        ?mutation ~commands ()
    in
    ignore (Instance.run ~until:(100 * delta) t);
    t
  in
  let get_ret t pid =
    List.find_map
      (fun (_, p, (_, c, ret)) -> if Pid.equal p pid && c = rd 2 1 then Some ret else None)
      (Instance.outputs t)
  in
  let t = run () in
  Alcotest.(check bool) "converged" true (Instance.converged t);
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        (Printf.sprintf "p%d read result" p)
        (Some 7) (get_ret t p))
    (Pid.all ~n);
  let t = run ~mutation:(Smr.Replica.Stale_reads 2) () in
  Alcotest.(check (option int)) "mutated replica serves stale value" (Some 5) (get_ret t 2);
  Alcotest.(check (option int)) "healthy replica unaffected" (Some 7) (get_ret t 0)

(* The tentpole safety property: across protocol x pipeline/batch x fault
   plan x seed, per-replica applied logs agree on common prefixes and
   replay to equal KV stores wherever logs are complete. *)
let smr_convergence_property ?faults ?(pipeline = 1) ?(batch_max = 1) protocol name =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "smr over %s (pipe %d, batch %d%s): convergence + kv agreement"
         name pipeline batch_max
         (match faults with None -> "" | Some _ -> ", faults"))
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 5 and e = 2 and f = 2 in
      let rng = Stdext.Rng.create ~seed in
      let count = 1 + Stdext.Rng.int rng 8 in
      let commands =
        List.init count (fun i ->
            ( Stdext.Rng.int rng (10 * delta),
              Stdext.Rng.int rng n,
              cmd i (Stdext.Rng.int rng 10) (i + 1) ))
      in
      let crashes =
        if Stdext.Rng.bool rng then [ (Stdext.Rng.int rng (20 * delta), n - 1) ] else []
      in
      let t =
        run_instance ~protocol ~n ~e ~f ~pipeline ~batch_max ?faults ~commands ~crashes
          ~seed ~until:(400 * delta) ()
      in
      if not (Instance.converged t) then false
      else begin
        (* KV agreement on the longest common prefix: replay each pair of
           logs truncated to their common length. *)
        let logs = List.map (fun p -> Instance.applied_log t p) (Pid.all ~n) in
        let truncate l k = List.filteri (fun i _ -> i < k) l in
        List.for_all
          (fun la ->
            List.for_all
              (fun lb ->
                let k = min (List.length la) (List.length lb) in
                Kv.equal_store (Kv.replay (truncate la k)) (Kv.replay (truncate lb k)))
              logs)
          logs
      end)

let drop_dup_faults =
  Network.Fault.random ~drop_rate:0.05 ~dup_rate:0.1 ~max_drops:4 ~max_dups:6
    ~max_extra_delay:delta ()

let () =
  Alcotest.run "smr"
    [
      ( "kv",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_kv_codec_roundtrip;
          QCheck_alcotest.to_alcotest kv_codec_legacy_property;
          QCheck_alcotest.to_alcotest kv_codec_property;
          Alcotest.test_case "batch codec" `Quick test_batch_codec;
          QCheck_alcotest.to_alcotest batch_codec_property;
          Alcotest.test_case "store apply" `Quick test_kv_store_apply;
          Alcotest.test_case "mstore eval" `Quick test_mstore_eval;
        ] );
      ( "replication",
        [
          Alcotest.test_case "commit and converge" `Quick test_commands_commit_and_converge;
          Alcotest.test_case "slot reproposal" `Quick test_conflicting_slot_reproposal;
          Alcotest.test_case "replica crash" `Quick test_replica_crash_mid_stream;
          Alcotest.test_case "kv replay agreement" `Quick test_kv_replay_agreement;
          Alcotest.test_case "pipelined batched burst" `Quick test_pipelined_batched_burst;
          Alcotest.test_case "commit_time index" `Quick test_commit_time_matches_output_scan;
          Alcotest.test_case "drain exactly once" `Quick test_drain_outputs_exactly_once;
          Alcotest.test_case "read results + stale mutation" `Quick
            test_read_results_and_stale_mutation;
        ] );
      ( "convergence",
        [
          QCheck_alcotest.to_alcotest (smr_convergence_property Core.Rgs.obj "rgs-object");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property Baselines.Paxos.protocol "paxos");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~pipeline:4 ~batch_max:8 Core.Rgs.obj "rgs-object");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~pipeline:4 ~batch_max:8 Core.Rgs.task "rgs-task");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~pipeline:4 ~batch_max:8
               Baselines.Paxos.protocol "paxos");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~pipeline:4 ~batch_max:8
               Baselines.Fast_paxos.protocol "fast-paxos");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~pipeline:4 ~batch_max:8 Epaxos.protocol "epaxos");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~faults:drop_dup_faults ~pipeline:4 ~batch_max:8
               Core.Rgs.obj "rgs-object");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~faults:drop_dup_faults ~pipeline:4 ~batch_max:8
               Baselines.Paxos.protocol "paxos");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property ~faults:drop_dup_faults ~pipeline:4 ~batch_max:8
               Epaxos.protocol "epaxos");
        ] );
    ]
