(* Unit and property tests for the stdext utilities: the deterministic RNG,
   the priority queue the engine is built on, and the combinatorics helpers
   the checkers rely on. *)

module Rng = Stdext.Rng
module Pqueue = Stdext.Pqueue
module Combinat = Stdext.Combinat
module Pool = Stdext.Pool
module Metrics = Stdext.Metrics
module Json = Stdext.Json

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_degenerate_ranges () =
  (* One-element ranges are valid and still consume exactly one draw, so
     pinned-delay network models stay stream-aligned with randomized ones
     (the fault layer relies on fixed draw counts per decision). *)
  let a = Rng.create ~seed:9 and b = Rng.create ~seed:9 in
  Alcotest.(check int) "int _ 1 = 0" 0 (Rng.int a 1);
  Alcotest.(check int) "int_in x x = x" 5 (Rng.int_in b 5 5);
  Alcotest.(check int64) "both consumed one draw" (Rng.bits64 a) (Rng.bits64 b);
  let c = Rng.create ~seed:9 in
  Alcotest.(check int) "int_in over full jitter+1 range" 0 (Rng.int_in c 0 0)

let test_rng_chance_draws () =
  (* chance consumes exactly one draw for every rate, including the
     degenerate 0 and 1, keeping decision streams aligned across rates. *)
  let a = Rng.create ~seed:12 and b = Rng.create ~seed:12 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance a 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance b 1.0);
  Alcotest.(check int64) "aligned after degenerate rates" (Rng.bits64 a) (Rng.bits64 b);
  let r = Rng.create ~seed:13 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.chance r 0.3 then incr hits
  done;
  Alcotest.(check bool) "p=0.3 is roughly 30%" true (!hits > 200 && !hits < 400)

let test_rng_invalid () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng ([] : int list)))

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q ~priority:p v) [ (3, "c"); (1, "a"); (2, "b") ];
  let drain () = match Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  let x1 = drain () in
  let x2 = drain () in
  let x3 = drain () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ x1; x2; x3 ]

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:7 v) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order at equal priority" [ 1; 2; 3; 4 ] (drain [])

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:v v) [ 5; 1; 3 ];
  let snapshot = Pqueue.to_list q in
  Alcotest.(check int) "length preserved" 3 (Pqueue.length q);
  Alcotest.(check (list (pair int int)))
    "pop order"
    [ (1, 1); (3, 3); (5, 5) ]
    snapshot

let pqueue_heap_property =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain min_int)

let pqueue_stable_order_property =
  (* Values are pushed carrying their submission index; the drain must equal a
     stable sort by priority, i.e. FIFO among equal priorities. The small
     priority range forces plenty of ties. *)
  QCheck.Test.make ~name:"pqueue drain equals stable sort by priority" ~count:300
    QCheck.(list (int_bound 10))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some pv -> drain (pv :: acc)
      in
      let expected =
        List.mapi (fun i p -> (p, i)) priorities
        |> List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2)
      in
      drain [] = expected)

let test_pqueue_growth_from_empty () =
  (* A fresh queue starts with an empty backing array; pushing past every
     doubling threshold must preserve contents and order. *)
  let q = Pqueue.create () in
  Alcotest.(check int) "initially empty" 0 (Pqueue.length q);
  for i = 0 to 99 do
    Pqueue.push q ~priority:(99 - i) i
  done;
  Alcotest.(check int) "all retained" 100 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list int)) "sorted" (List.init 100 Fun.id) (drain [])

let test_pqueue_copy_independent () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:v v) [ 2; 1; 3 ];
  let c = Pqueue.copy q in
  ignore (Pqueue.pop c);
  Pqueue.push c ~priority:0 0;
  Alcotest.(check int) "original length unchanged" 3 (Pqueue.length q);
  Alcotest.(check (list (pair int int)))
    "original contents unchanged"
    [ (1, 1); (2, 2); (3, 3) ]
    (Pqueue.to_list q);
  Alcotest.(check (list (pair int int)))
    "copy evolved separately"
    [ (0, 0); (2, 2); (3, 3) ]
    (Pqueue.to_list c)

let pqueue_copy_independence_property =
  (* Random contents, then divergent mutations on original and copy: each
     side's drain must be exactly what its own operation history implies —
     the structure-of-arrays copy shares no backing storage. *)
  QCheck.Test.make ~name:"pqueue copy shares no state with the original" ~count:200
    QCheck.(list (int_bound 50))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let c = Pqueue.copy q in
      let q_before = Pqueue.to_list q in
      (* Mutate the copy, check the original; then mutate the original,
         check the copy. *)
      Pqueue.push c ~priority:51 (-1);
      ignore (Pqueue.pop c);
      let q_unmoved = Pqueue.to_list q = q_before in
      let c_after = Pqueue.to_list c in
      Pqueue.push q ~priority:52 (-2);
      ignore (Pqueue.pop q);
      q_unmoved && Pqueue.to_list c = c_after)

let test_pqueue_nonalloc_api () =
  (* peek_prio/pop_exn agree with pop/peek; both raise on empty. *)
  let q = Pqueue.create () in
  Alcotest.check_raises "peek_prio empty"
    (Invalid_argument "Pqueue.peek_prio: empty queue") (fun () ->
      ignore (Pqueue.peek_prio q : int));
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn q : int));
  List.iter (fun v -> Pqueue.push q ~priority:v v) [ 4; 2; 9 ];
  Alcotest.(check int) "peek_prio is min" 2 (Pqueue.peek_prio q);
  Alcotest.(check int) "pop_exn returns payload" 2 (Pqueue.pop_exn q);
  let seen = ref [] in
  Pqueue.iter_in_order q (fun p v -> seen := (p, v) :: !seen);
  Alcotest.(check (list (pair int int)))
    "iter_in_order matches to_list" (Pqueue.to_list q) (List.rev !seen);
  Alcotest.(check int) "iter_in_order non-destructive" 2 (Pqueue.length q)

let test_pqueue_priority_packing_range () =
  (* The packing contract: priorities span the full +-2^38 documented
     range (negative keys still order correctly through the lsl/lor
     packing), and out-of-range priorities are rejected. *)
  let lim = 1 lsl 38 in
  let q = Pqueue.create () in
  Pqueue.push q ~priority:(lim - 1) "max";
  Pqueue.push q ~priority:(-lim) "min";
  Pqueue.push q ~priority:(-5) "neg1";
  Pqueue.push q ~priority:(-5) "neg2";
  Pqueue.push q ~priority:0 "zero";
  Alcotest.(check (list string))
    "negative priorities order before zero, FIFO on ties"
    [ "min"; "neg1"; "neg2"; "zero"; "max" ]
    (List.map snd (Pqueue.to_list q));
  let reject p =
    Alcotest.check_raises "out of packing range"
      (Invalid_argument "Pqueue.push: priority outside +-2^38 (packing invariant)")
      (fun () -> Pqueue.push q ~priority:p "x")
  in
  reject lim;
  reject (-lim - 1)

let test_pqueue_seq_compaction () =
  (* Drive the 24-bit sequence counter past its limit with a small live
     heap: the transparent renumbering must preserve FIFO-within-priority
     across the compaction boundary. *)
  let q = Pqueue.create () in
  let window = 8 in
  let next = ref 0 in
  for _ = 1 to window do
    Pqueue.push q ~priority:5 !next;
    incr next
  done;
  let expect = ref 0 in
  let total = (1 lsl 24) + 64 in
  for _ = 1 to total do
    Pqueue.push q ~priority:5 !next;
    incr next;
    let v = Pqueue.pop_exn q in
    if v <> !expect then
      Alcotest.failf "FIFO broken across seq compaction: got %d, want %d" v !expect;
    incr expect
  done;
  Alcotest.(check int) "window retained" window (Pqueue.length q)

(* -- pool --------------------------------------------------------------- *)

let test_pool_exactly_once () =
  let hits = Atomic.make 0 in
  Pool.run ~domains:4 (fun pool ->
      let promises =
        List.init 100 (fun i ->
            Pool.submit pool (fun () ->
                Atomic.incr hits;
                i * i))
      in
      List.iteri
        (fun i p -> Alcotest.(check int) "result" (i * i) (Pool.await p))
        promises);
  Alcotest.(check int) "each task ran exactly once" 100 (Atomic.get hits)

let test_pool_map_list_order () =
  let results =
    Pool.run ~domains:3 (fun pool ->
        Pool.map_list pool (fun i -> 2 * i) (List.init 50 Fun.id))
  in
  Alcotest.(check (list int)) "submission order" (List.init 50 (fun i -> 2 * i)) results

let test_pool_exception_reraised () =
  Pool.run ~domains:2 (fun pool ->
      let bad = Pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check_raises "worker exception surfaces on await" (Failure "boom")
        (fun () -> ignore (Pool.await bad : int));
      (* The pool survives a failed task. *)
      let ok = Pool.submit pool (fun () -> 7) in
      Alcotest.(check int) "pool still usable" 7 (Pool.await ok))

let test_pool_inline_mode () =
  (* domains = 1 spawns no domain: jobs run inline on submit. *)
  let results =
    Pool.run ~domains:1 (fun pool ->
        Alcotest.(check int) "no workers" 0 (Pool.size pool);
        Pool.map_list pool (fun i -> i + 1) [ 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "inline results" [ 2; 3; 4 ] results

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~domains:2 in
  let p = Pool.submit pool (fun () -> 1) in
  Alcotest.(check int) "pre-shutdown" 1 (Pool.await p);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 2)))

let test_pool_steal_api () =
  (* Inline mode: nothing ever queues. *)
  Pool.run ~domains:1 (fun pool ->
      Alcotest.(check int) "inline queued" 0 (Pool.queued pool);
      Alcotest.(check bool) "inline try_run_one" false (Pool.try_run_one pool));
  (* Occupy both workers with gated blockers so further submissions stay
     queued, then observe them via [queued], steal them LIFO via
     [try_run_one], and drain the rest from the caller via [await_helping]. *)
  Pool.run ~domains:2 (fun pool ->
      let gate = Atomic.make false in
      let blockers =
        List.init 2 (fun _ ->
            Pool.submit pool (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done))
      in
      while Pool.queued pool > 0 do
        Domain.cpu_relax ()
      done;
      (* Both workers now spin inside a blocker; [order] is only ever
         touched from this thread below. *)
      let order = ref [] in
      let p1 = Pool.submit pool (fun () -> order := 1 :: !order) in
      let p2 = Pool.submit pool (fun () -> order := 2 :: !order) in
      ignore (p2 : unit Pool.promise);
      Alcotest.(check int) "two queued" 2 (Pool.queued pool);
      Alcotest.(check bool) "stole one" true (Pool.try_run_one pool);
      Alcotest.(check (list int)) "newest stolen first (LIFO)" [ 2 ] !order;
      Pool.await_helping pool p1;
      Alcotest.(check (list int)) "await_helping drained the rest" [ 1; 2 ] !order;
      Alcotest.(check bool) "queue empty again" false (Pool.try_run_one pool);
      Atomic.set gate true;
      List.iter (Pool.await_helping pool) blockers)

let test_pool_tasks_submit_tasks () =
  (* Subtree fan-out: tasks submit sub-tasks and await them helpingly, so
     no worker ever sleeps while work is queued and recursion cannot
     deadlock a finite pool. Counts the nodes of a 3-ary tree of depth 3. *)
  let total =
    Pool.run ~domains:3 (fun pool ->
        let rec spawn depth =
          if depth = 0 then 1
          else
            let kids =
              List.init 3 (fun _ -> Pool.submit pool (fun () -> spawn (depth - 1)))
            in
            List.fold_left (fun acc p -> acc + Pool.await_helping pool p) 1 kids
        in
        spawn 3)
  in
  Alcotest.(check int) "1 + 3 + 9 + 27 nodes" 40 total

let test_subsets_count () =
  let l = List.init 6 Fun.id in
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "C(6,%d)" k)
        (Combinat.choose 6 k)
        (List.length (Combinat.subsets_of_size k l)))
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_subsets_distinct_sorted () =
  let subsets = Combinat.subsets_of_size 3 [ 0; 1; 2; 3; 4 ] in
  let sorted = List.sort_uniq compare subsets in
  Alcotest.(check int) "all distinct" (List.length subsets) (List.length sorted);
  List.iter
    (fun s -> Alcotest.(check (list int)) "order preserved" (List.sort compare s) s)
    subsets

let test_subsets_up_to () =
  let l = [ 1; 2; 3; 4 ] in
  (* 1 + 4 + 6 subsets of size <= 2, ascending size, empty first. *)
  let s = Combinat.subsets_up_to 2 l in
  Alcotest.(check int) "count" 11 (List.length s);
  Alcotest.(check (list int)) "empty subset first" [] (List.hd s);
  let sizes = List.map List.length s in
  Alcotest.(check (list int)) "ascending sizes" (List.sort compare sizes) sizes;
  Alcotest.(check int) "distinct" 11 (List.length (List.sort_uniq compare s));
  Alcotest.(check (list (list int))) "k = 0" [ [] ] (Combinat.subsets_up_to 0 l);
  Alcotest.(check (list (list int))) "negative k acts as 0" [ [] ]
    (Combinat.subsets_up_to (-3) l);
  Alcotest.(check int) "k beyond length = powerset" 16
    (List.length (Combinat.subsets_up_to 99 l))

let test_permutations () =
  Alcotest.(check int) "3! perms" 6 (List.length (Combinat.permutations [ 1; 2; 3 ]));
  Alcotest.(check int)
    "distinct" 6
    (List.length (List.sort_uniq compare (Combinat.permutations [ 1; 2; 3 ])));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Combinat.permutations [])

let test_cartesian () =
  Alcotest.(check (list (list int)))
    "2x2 product"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combinat.cartesian [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "nullary product" [ [] ] (Combinat.cartesian []);
  Alcotest.(check (list (list int))) "empty factor" [] (Combinat.cartesian [ [ 1 ]; [] ])

let test_choose_edges () =
  Alcotest.(check int) "C(5,-1)" 0 (Combinat.choose 5 (-1));
  Alcotest.(check int) "C(5,6)" 0 (Combinat.choose 5 6);
  Alcotest.(check int) "C(0,0)" 1 (Combinat.choose 0 0);
  Alcotest.(check int) "C(10,5)" 252 (Combinat.choose 10 5)

(* -- metrics ------------------------------------------------------------ *)

let test_metrics_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  Metrics.incr c;
  Metrics.add c 41;
  let g = Metrics.gauge r "g" in
  Metrics.record_max g 7;
  Metrics.record_max g 3;
  Alcotest.(check int) "counter sums" 42 (Metrics.get_counter r "c");
  (match Metrics.find r "g" with
  | Some (Metrics.Gauge 7) -> ()
  | _ -> Alcotest.fail "gauge should keep the max (7)");
  (* re-lookup returns the same underlying metric *)
  Metrics.incr (Metrics.counter r "c");
  Alcotest.(check int) "shared by name" 43 (Metrics.get_counter r "c");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.get_counter r "nope")

let test_metrics_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[| 1; 2; 4 |] "h" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  match Metrics.find r "h" with
  | Some (Metrics.Histogram { bounds; counts; sum; count }) ->
      Alcotest.(check (array int)) "bounds" [| 1; 2; 4 |] bounds;
      (* <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {5,100} *)
      Alcotest.(check (array int)) "bucket counts" [| 2; 1; 2; 2 |] counts;
      Alcotest.(check int) "sum" 115 sum;
      Alcotest.(check int) "count" 7 count
  | _ -> Alcotest.fail "histogram missing"

let test_metrics_disabled () =
  let c = Metrics.counter Metrics.disabled "c" in
  Metrics.incr c;
  Metrics.add c 10;
  let h = Metrics.histogram Metrics.disabled ~buckets:[| 1 |] "h" in
  Metrics.observe h 5;
  Alcotest.(check bool) "disabled" false (Metrics.is_enabled Metrics.disabled);
  Alcotest.(check int) "no registrations" 0 (List.length (Metrics.snapshot Metrics.disabled))

let test_metrics_kind_conflict () =
  let r = Metrics.create () in
  ignore (Metrics.counter r "x");
  (match Metrics.gauge r "x" with
  | _ -> Alcotest.fail "kind conflict should raise"
  | exception Invalid_argument _ -> ());
  ignore (Metrics.histogram r ~buckets:[| 1; 2 |] "h");
  match Metrics.histogram r ~buckets:[| 3 |] "h" with
  | _ -> Alcotest.fail "bounds conflict should raise"
  | exception Invalid_argument _ -> ()

let test_metrics_multi_domain () =
  let r = Metrics.create () in
  let per_domain = 20_000 and domains = 4 in
  let c = Metrics.counter r "hammered" in
  let h = Metrics.histogram r ~buckets:[| 0; 1; 2 |] "lat" in
  let worker () =
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (i mod 4)
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Alcotest.(check int) "all increments merged" (domains * per_domain)
    (Metrics.get_counter r "hammered");
  match Metrics.find r "lat" with
  | Some (Metrics.Histogram { count; counts; _ }) ->
      Alcotest.(check int) "all observations merged" (domains * per_domain) count;
      Alcotest.(check int) "bucket totals merged" (domains * per_domain)
        (Array.fold_left ( + ) 0 counts)
  | _ -> Alcotest.fail "histogram missing"

let test_metrics_dump_jsonl () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "a.count") 3;
  Metrics.record_max (Metrics.gauge r "b.hwm") 9;
  Metrics.observe (Metrics.histogram r ~buckets:[| 1; 2 |] "c.hist") 2;
  let text = Format.asprintf "%a" Metrics.dump_jsonl r in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  Alcotest.(check int) "one line per metric" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error msg -> Alcotest.fail ("unparseable line: " ^ msg)
      | Ok json -> (
          let str k =
            match Option.bind (Json.member k json) Json.to_str with
            | Some s -> s
            | None -> Alcotest.fail ("missing string field " ^ k)
          in
          let int k =
            match Option.bind (Json.member k json) Json.to_int with
            | Some n -> n
            | None -> Alcotest.fail ("missing int field " ^ k)
          in
          ignore (str "metric");
          match str "type" with
          | "counter" | "gauge" -> ignore (int "value")
          | "histogram" ->
              let counts =
                match Json.member "counts" json with
                | Some (Json.List l) -> List.filter_map Json.to_int l
                | _ -> Alcotest.fail "counts not a list"
              in
              Alcotest.(check int) "counts sum to count" (int "count")
                (List.fold_left ( + ) 0 counts)
          | other -> Alcotest.fail ("unknown type " ^ other)))
    lines

(* -- stateset ----------------------------------------------------------- *)

module Stateset = Stdext.Stateset

let test_stateset_add_mem () =
  let s = Stateset.create () in
  Alcotest.(check bool) "absent before add" false (Stateset.mem s 42L);
  Alcotest.(check bool) "first add wins" true (Stateset.add s 42L);
  Alcotest.(check bool) "second add loses" false (Stateset.add s 42L);
  Alcotest.(check bool) "member after add" true (Stateset.mem s 42L);
  Alcotest.(check bool) "other key absent" false (Stateset.mem s 43L);
  Alcotest.(check bool) "negative fingerprints work" true (Stateset.add s (-7L));
  Alcotest.(check bool) "zero works (remapped off the empty slot)" true
    (Stateset.add s 0L);
  Alcotest.(check int) "cardinal" 3 (Stateset.cardinal s)

let test_stateset_hash_compaction () =
  (* Slots retain 62 bits of the fingerprint: keys differing only in bits
     62/63 are deliberately identified (SPIN-style hash compaction). *)
  let s = Stateset.create () in
  let base = 0x123456789ABCL in
  Alcotest.(check bool) "base inserts" true (Stateset.add s base);
  Alcotest.(check bool) "bit 62 aliases" false
    (Stateset.add s (Int64.logor base (Int64.shift_left 1L 62)));
  Alcotest.(check bool) "bit 63 aliases" false
    (Stateset.add s (Int64.logor base (Int64.shift_left 1L 63)));
  Alcotest.(check bool) "bit 61 does not alias" true
    (Stateset.add s (Int64.logor base (Int64.shift_left 1L 61)))

let test_stateset_probing_and_resize () =
  (* A single tiny shard forces long probe chains and repeated doublings;
     contents must survive both. *)
  let metrics = Metrics.create () in
  let s = Stateset.create ~shards:1 ~capacity:2 ~metrics () in
  let key i = Int64.of_int ((i * 2654435761) + 17) in
  for i = 0 to 999 do
    Alcotest.(check bool) "new key inserts" true (Stateset.add s (key i))
  done;
  for i = 0 to 999 do
    Alcotest.(check bool) "still present after resizes" true (Stateset.mem s (key i));
    Alcotest.(check bool) "re-add refused" false (Stateset.add s (key i))
  done;
  Alcotest.(check int) "cardinal" 1000 (Stateset.cardinal s);
  Alcotest.(check int) "misses = inserts" 1000 (Metrics.get_counter metrics "stateset.misses");
  Alcotest.(check int) "hits = duplicate adds" 1000 (Metrics.get_counter metrics "stateset.hits");
  Alcotest.(check bool) "resizes happened" true
    (Metrics.get_counter metrics "stateset.resizes" > 0)

let test_stateset_concurrent_determinism () =
  (* Every domain races to insert the same key set; exactly one add per key
     may win across all domains, and the final membership is the key set —
     regardless of scheduling. Tiny initial capacity keeps resizes in the
     race window. *)
  let keys = Array.init 5_000 (fun i -> Int64.of_int ((i * 0x9E3779B1) + 3)) in
  let s = Stateset.create ~shards:4 ~capacity:8 () in
  let domains = 4 in
  let wins = Array.make domains 0 in
  let worker d () =
    let w = ref 0 in
    Array.iter (fun k -> if Stateset.add s k then incr w) keys;
    wins.(d) <- !w
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  Alcotest.(check int) "exactly one winner per key" (Array.length keys)
    (Array.fold_left ( + ) 0 wins);
  Alcotest.(check int) "cardinal = distinct keys" (Array.length keys) (Stateset.cardinal s);
  Array.iter (fun k -> Alcotest.(check bool) "member" true (Stateset.mem s k)) keys

let test_stateset_concurrent_disjoint () =
  (* Disjoint ranges from each domain: no insert may be lost to a
     concurrent resize. *)
  let per_domain = 4_000 and domains = 4 in
  let s = Stateset.create ~shards:2 ~capacity:4 () in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let k = Int64.of_int ((d * per_domain) + i + 1) in
      assert (Stateset.add s k)
    done
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  Alcotest.(check int) "nothing lost under resize contention" (domains * per_domain)
    (Stateset.cardinal s);
  for d = 0 to domains - 1 do
    for i = 0 to per_domain - 1 do
      let k = Int64.of_int ((d * per_domain) + i + 1) in
      if not (Stateset.mem s k) then Alcotest.failf "lost key %Ld" k
    done
  done

(* -- json --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\te\r \x01 é €");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error msg -> Alcotest.fail msg

let test_json_parse_basics () =
  Alcotest.(check bool) "unicode escape" true
    (Json.parse {|"é😀"|} = Ok (Json.String "é😀"));
  Alcotest.(check bool) "numbers" true
    (Json.parse "[0, -1, 2.5, 1e3]"
    = Ok (Json.List [ Json.Int 0; Json.Int (-1); Json.Float 2.5; Json.Float 1000. ]));
  let bad s =
    match Json.parse s with Ok _ -> Alcotest.fail ("accepted " ^ s) | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "1 2";
  bad "tru";
  bad "\"unterminated";
  bad "{\"a\" 1}"

(* -- Rle: run-length integer tables ------------------------------------ *)

module Rle = Stdext.Rle

let sample_table =
  {
    Rle.schema = [ "time"; "pid"; "value" ];
    columns =
      [
        [| 0; 10; 10; 10; 20; 20; 35; 40 |];
        [| 0; 0; 0; 1; 1; 2; 2; 2 |];
        [| -1; 5; 5; 5; 1023; -1; 0; 7 |];
      ];
  }

let test_rle_roundtrip () =
  let enc = Rle.encode sample_table in
  (match Rle.decode enc with
  | Ok t ->
      Alcotest.(check (list string)) "schema" sample_table.Rle.schema t.Rle.schema;
      Alcotest.(check bool) "columns" true (t.Rle.columns = sample_table.Rle.columns)
  | Error e -> Alcotest.fail e);
  let empty = { Rle.schema = [ "a"; "b" ]; columns = [ [||]; [||] ] } in
  (match Rle.decode (Rle.encode empty) with
  | Ok t -> Alcotest.(check int) "empty table round-trips" 0 (Rle.rows t)
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "ragged columns rejected"
    (Invalid_argument "Rle.encode: ragged columns") (fun () ->
      ignore (Rle.encode { Rle.schema = [ "a"; "b" ]; columns = [ [| 1 |]; [||] ] }))

let test_rle_corruption_detected () =
  let enc = Rle.encode sample_table in
  let expect_error s =
    match Rle.decode s with
    | Ok _ -> Alcotest.fail "decoded corrupted input"
    | Error _ -> ()
  in
  expect_error "";
  expect_error "not an rle table";
  expect_error (String.sub enc 0 (String.length enc - 1));
  expect_error (enc ^ "\x00")

let test_rle_jsonl_roundtrip () =
  let jsonl = Rle.to_jsonl sample_table in
  (match Rle.of_jsonl jsonl with
  | Ok t -> Alcotest.(check bool) "jsonl round-trips" true (t = sample_table)
  | Error e -> Alcotest.fail e);
  let lines = ref [] in
  Rle.iter_jsonl sample_table (fun l -> lines := l :: !lines);
  Alcotest.(check int) "one line per row" (Rle.rows sample_table) (List.length !lines);
  match Rle.of_jsonl "{\"a\": 1}\n{\"b\": 2}\n" with
  | Ok _ -> Alcotest.fail "accepted mismatched schemas"
  | Error _ -> ()

let rle_table_gen =
  QCheck.Gen.(
    let* cols = 1 -- 4 in
    let* rows = 0 -- 60 in
    let* columns =
      list_repeat cols
        (map Array.of_list
           (list_repeat rows
              (frequency
                 [
                   (3, 0 -- 100);
                   (1, map (fun v -> -v) (0 -- 1_000_000));
                   (* Large magnitudes, kept well under the codec's 62-bit
                      signed-delta ceiling. *)
                   (1, map (fun v -> v - (1 lsl 40)) (0 -- (1 lsl 41)));
                 ])))
    in
    return
      {
        Rle.schema = List.mapi (fun i _ -> Printf.sprintf "c%d" i) columns;
        columns;
      })

let rle_roundtrip_property =
  QCheck.Test.make ~name:"rle encode/decode round-trips random tables" ~count:300
    (QCheck.make rle_table_gen) (fun t ->
      match Rle.decode (Rle.encode t) with
      | Ok t' -> t' = t
      | Error _ -> false)

let rle_jsonl_property =
  QCheck.Test.make ~name:"rle jsonl export/import round-trips" ~count:200
    (QCheck.make rle_table_gen) (fun t ->
      (* The JSONL form has no rows to carry a schema on an empty table. *)
      QCheck.assume (Rle.rows t > 0);
      match Rle.of_jsonl (Rle.to_jsonl t) with
      | Ok t' -> t' = t
      | Error _ -> false)

let () =
  Alcotest.run "stdext"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "degenerate ranges" `Quick test_rng_degenerate_ranges;
          Alcotest.test_case "chance draw discipline" `Quick test_rng_chance_draws;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo on ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "to_list snapshot" `Quick test_pqueue_to_list_nondestructive;
          Alcotest.test_case "growth from empty" `Quick test_pqueue_growth_from_empty;
          Alcotest.test_case "copy independence" `Quick test_pqueue_copy_independent;
          QCheck_alcotest.to_alcotest pqueue_heap_property;
          QCheck_alcotest.to_alcotest pqueue_stable_order_property;
          QCheck_alcotest.to_alcotest pqueue_copy_independence_property;
          Alcotest.test_case "non-allocating API" `Quick test_pqueue_nonalloc_api;
          Alcotest.test_case "priority packing range" `Quick
            test_pqueue_priority_packing_range;
          Alcotest.test_case "seq compaction" `Quick test_pqueue_seq_compaction;
        ] );
      ( "pool",
        [
          Alcotest.test_case "tasks run exactly once" `Quick test_pool_exactly_once;
          Alcotest.test_case "map_list order" `Quick test_pool_map_list_order;
          Alcotest.test_case "exception re-raised" `Quick test_pool_exception_reraised;
          Alcotest.test_case "inline mode" `Quick test_pool_inline_mode;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
          Alcotest.test_case "steal API (queued/try_run_one/await_helping)" `Quick
            test_pool_steal_api;
          Alcotest.test_case "tasks submit tasks" `Quick test_pool_tasks_submit_tasks;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "subset counts" `Quick test_subsets_count;
          Alcotest.test_case "subsets distinct" `Quick test_subsets_distinct_sorted;
          Alcotest.test_case "subsets up to" `Quick test_subsets_up_to;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
          Alcotest.test_case "choose edge cases" `Quick test_choose_edges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram;
          Alcotest.test_case "disabled registry" `Quick test_metrics_disabled;
          Alcotest.test_case "kind conflicts" `Quick test_metrics_kind_conflict;
          Alcotest.test_case "multi-domain merge" `Quick test_metrics_multi_domain;
          Alcotest.test_case "dump_jsonl schema" `Quick test_metrics_dump_jsonl;
        ] );
      ( "stateset",
        [
          Alcotest.test_case "add and mem" `Quick test_stateset_add_mem;
          Alcotest.test_case "62-bit hash compaction" `Quick test_stateset_hash_compaction;
          Alcotest.test_case "probing and resize" `Quick test_stateset_probing_and_resize;
          Alcotest.test_case "concurrent insert determinism" `Quick
            test_stateset_concurrent_determinism;
          Alcotest.test_case "concurrent disjoint inserts" `Quick
            test_stateset_concurrent_disjoint;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics and errors" `Quick test_json_parse_basics;
        ] );
      ( "rle",
        [
          Alcotest.test_case "binary round-trip" `Quick test_rle_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_rle_corruption_detected;
          Alcotest.test_case "jsonl round-trip" `Quick test_rle_jsonl_roundtrip;
          QCheck_alcotest.to_alcotest rle_roundtrip_property;
          QCheck_alcotest.to_alcotest rle_jsonl_property;
        ] );
    ]
