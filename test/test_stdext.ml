(* Unit and property tests for the stdext utilities: the deterministic RNG,
   the priority queue the engine is built on, and the combinatorics helpers
   the checkers rely on. *)

module Rng = Stdext.Rng
module Pqueue = Stdext.Pqueue
module Combinat = Stdext.Combinat
module Pool = Stdext.Pool

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_degenerate_ranges () =
  (* One-element ranges are valid and still consume exactly one draw, so
     pinned-delay network models stay stream-aligned with randomized ones
     (the fault layer relies on fixed draw counts per decision). *)
  let a = Rng.create ~seed:9 and b = Rng.create ~seed:9 in
  Alcotest.(check int) "int _ 1 = 0" 0 (Rng.int a 1);
  Alcotest.(check int) "int_in x x = x" 5 (Rng.int_in b 5 5);
  Alcotest.(check int64) "both consumed one draw" (Rng.bits64 a) (Rng.bits64 b);
  let c = Rng.create ~seed:9 in
  Alcotest.(check int) "int_in over full jitter+1 range" 0 (Rng.int_in c 0 0)

let test_rng_chance_draws () =
  (* chance consumes exactly one draw for every rate, including the
     degenerate 0 and 1, keeping decision streams aligned across rates. *)
  let a = Rng.create ~seed:12 and b = Rng.create ~seed:12 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance a 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance b 1.0);
  Alcotest.(check int64) "aligned after degenerate rates" (Rng.bits64 a) (Rng.bits64 b);
  let r = Rng.create ~seed:13 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.chance r 0.3 then incr hits
  done;
  Alcotest.(check bool) "p=0.3 is roughly 30%" true (!hits > 200 && !hits < 400)

let test_rng_invalid () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng ([] : int list)))

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q ~priority:p v) [ (3, "c"); (1, "a"); (2, "b") ];
  let drain () = match Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  let x1 = drain () in
  let x2 = drain () in
  let x3 = drain () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ x1; x2; x3 ]

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:7 v) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order at equal priority" [ 1; 2; 3; 4 ] (drain [])

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:v v) [ 5; 1; 3 ];
  let snapshot = Pqueue.to_list q in
  Alcotest.(check int) "length preserved" 3 (Pqueue.length q);
  Alcotest.(check (list (pair int int)))
    "pop order"
    [ (1, 1); (3, 3); (5, 5) ]
    snapshot

let pqueue_heap_property =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain min_int)

let pqueue_stable_order_property =
  (* Values are pushed carrying their submission index; the drain must equal a
     stable sort by priority, i.e. FIFO among equal priorities. The small
     priority range forces plenty of ties. *)
  QCheck.Test.make ~name:"pqueue drain equals stable sort by priority" ~count:300
    QCheck.(list (int_bound 10))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some pv -> drain (pv :: acc)
      in
      let expected =
        List.mapi (fun i p -> (p, i)) priorities
        |> List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2)
      in
      drain [] = expected)

let test_pqueue_growth_from_empty () =
  (* A fresh queue starts with an empty backing array; pushing past every
     doubling threshold must preserve contents and order. *)
  let q = Pqueue.create () in
  Alcotest.(check int) "initially empty" 0 (Pqueue.length q);
  for i = 0 to 99 do
    Pqueue.push q ~priority:(99 - i) i
  done;
  Alcotest.(check int) "all retained" 100 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list int)) "sorted" (List.init 100 Fun.id) (drain [])

let test_pqueue_copy_independent () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:v v) [ 2; 1; 3 ];
  let c = Pqueue.copy q in
  ignore (Pqueue.pop c);
  Pqueue.push c ~priority:0 0;
  Alcotest.(check int) "original length unchanged" 3 (Pqueue.length q);
  Alcotest.(check (list (pair int int)))
    "original contents unchanged"
    [ (1, 1); (2, 2); (3, 3) ]
    (Pqueue.to_list q);
  Alcotest.(check (list (pair int int)))
    "copy evolved separately"
    [ (0, 0); (2, 2); (3, 3) ]
    (Pqueue.to_list c)

(* -- pool --------------------------------------------------------------- *)

let test_pool_exactly_once () =
  let hits = Atomic.make 0 in
  Pool.run ~domains:4 (fun pool ->
      let promises =
        List.init 100 (fun i ->
            Pool.submit pool (fun () ->
                Atomic.incr hits;
                i * i))
      in
      List.iteri
        (fun i p -> Alcotest.(check int) "result" (i * i) (Pool.await p))
        promises);
  Alcotest.(check int) "each task ran exactly once" 100 (Atomic.get hits)

let test_pool_map_list_order () =
  let results =
    Pool.run ~domains:3 (fun pool ->
        Pool.map_list pool (fun i -> 2 * i) (List.init 50 Fun.id))
  in
  Alcotest.(check (list int)) "submission order" (List.init 50 (fun i -> 2 * i)) results

let test_pool_exception_reraised () =
  Pool.run ~domains:2 (fun pool ->
      let bad = Pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check_raises "worker exception surfaces on await" (Failure "boom")
        (fun () -> ignore (Pool.await bad : int));
      (* The pool survives a failed task. *)
      let ok = Pool.submit pool (fun () -> 7) in
      Alcotest.(check int) "pool still usable" 7 (Pool.await ok))

let test_pool_inline_mode () =
  (* domains = 1 spawns no domain: jobs run inline on submit. *)
  let results =
    Pool.run ~domains:1 (fun pool ->
        Alcotest.(check int) "no workers" 0 (Pool.size pool);
        Pool.map_list pool (fun i -> i + 1) [ 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "inline results" [ 2; 3; 4 ] results

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~domains:2 in
  let p = Pool.submit pool (fun () -> 1) in
  Alcotest.(check int) "pre-shutdown" 1 (Pool.await p);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 2)))

let test_pool_steal_api () =
  (* Inline mode: nothing ever queues. *)
  Pool.run ~domains:1 (fun pool ->
      Alcotest.(check int) "inline queued" 0 (Pool.queued pool);
      Alcotest.(check bool) "inline try_run_one" false (Pool.try_run_one pool));
  (* Occupy both workers with gated blockers so further submissions stay
     queued, then observe them via [queued], steal them LIFO via
     [try_run_one], and drain the rest from the caller via [await_helping]. *)
  Pool.run ~domains:2 (fun pool ->
      let gate = Atomic.make false in
      let blockers =
        List.init 2 (fun _ ->
            Pool.submit pool (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done))
      in
      while Pool.queued pool > 0 do
        Domain.cpu_relax ()
      done;
      (* Both workers now spin inside a blocker; [order] is only ever
         touched from this thread below. *)
      let order = ref [] in
      let p1 = Pool.submit pool (fun () -> order := 1 :: !order) in
      let p2 = Pool.submit pool (fun () -> order := 2 :: !order) in
      ignore (p2 : unit Pool.promise);
      Alcotest.(check int) "two queued" 2 (Pool.queued pool);
      Alcotest.(check bool) "stole one" true (Pool.try_run_one pool);
      Alcotest.(check (list int)) "newest stolen first (LIFO)" [ 2 ] !order;
      Pool.await_helping pool p1;
      Alcotest.(check (list int)) "await_helping drained the rest" [ 1; 2 ] !order;
      Alcotest.(check bool) "queue empty again" false (Pool.try_run_one pool);
      Atomic.set gate true;
      List.iter (Pool.await_helping pool) blockers)

let test_pool_tasks_submit_tasks () =
  (* Subtree fan-out: tasks submit sub-tasks and await them helpingly, so
     no worker ever sleeps while work is queued and recursion cannot
     deadlock a finite pool. Counts the nodes of a 3-ary tree of depth 3. *)
  let total =
    Pool.run ~domains:3 (fun pool ->
        let rec spawn depth =
          if depth = 0 then 1
          else
            let kids =
              List.init 3 (fun _ -> Pool.submit pool (fun () -> spawn (depth - 1)))
            in
            List.fold_left (fun acc p -> acc + Pool.await_helping pool p) 1 kids
        in
        spawn 3)
  in
  Alcotest.(check int) "1 + 3 + 9 + 27 nodes" 40 total

let test_subsets_count () =
  let l = List.init 6 Fun.id in
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "C(6,%d)" k)
        (Combinat.choose 6 k)
        (List.length (Combinat.subsets_of_size k l)))
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_subsets_distinct_sorted () =
  let subsets = Combinat.subsets_of_size 3 [ 0; 1; 2; 3; 4 ] in
  let sorted = List.sort_uniq compare subsets in
  Alcotest.(check int) "all distinct" (List.length subsets) (List.length sorted);
  List.iter
    (fun s -> Alcotest.(check (list int)) "order preserved" (List.sort compare s) s)
    subsets

let test_subsets_up_to () =
  let l = [ 1; 2; 3; 4 ] in
  (* 1 + 4 + 6 subsets of size <= 2, ascending size, empty first. *)
  let s = Combinat.subsets_up_to 2 l in
  Alcotest.(check int) "count" 11 (List.length s);
  Alcotest.(check (list int)) "empty subset first" [] (List.hd s);
  let sizes = List.map List.length s in
  Alcotest.(check (list int)) "ascending sizes" (List.sort compare sizes) sizes;
  Alcotest.(check int) "distinct" 11 (List.length (List.sort_uniq compare s));
  Alcotest.(check (list (list int))) "k = 0" [ [] ] (Combinat.subsets_up_to 0 l);
  Alcotest.(check (list (list int))) "negative k acts as 0" [ [] ]
    (Combinat.subsets_up_to (-3) l);
  Alcotest.(check int) "k beyond length = powerset" 16
    (List.length (Combinat.subsets_up_to 99 l))

let test_permutations () =
  Alcotest.(check int) "3! perms" 6 (List.length (Combinat.permutations [ 1; 2; 3 ]));
  Alcotest.(check int)
    "distinct" 6
    (List.length (List.sort_uniq compare (Combinat.permutations [ 1; 2; 3 ])));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Combinat.permutations [])

let test_cartesian () =
  Alcotest.(check (list (list int)))
    "2x2 product"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combinat.cartesian [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "nullary product" [ [] ] (Combinat.cartesian []);
  Alcotest.(check (list (list int))) "empty factor" [] (Combinat.cartesian [ [ 1 ]; [] ])

let test_choose_edges () =
  Alcotest.(check int) "C(5,-1)" 0 (Combinat.choose 5 (-1));
  Alcotest.(check int) "C(5,6)" 0 (Combinat.choose 5 6);
  Alcotest.(check int) "C(0,0)" 1 (Combinat.choose 0 0);
  Alcotest.(check int) "C(10,5)" 252 (Combinat.choose 10 5)

let () =
  Alcotest.run "stdext"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "degenerate ranges" `Quick test_rng_degenerate_ranges;
          Alcotest.test_case "chance draw discipline" `Quick test_rng_chance_draws;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo on ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "to_list snapshot" `Quick test_pqueue_to_list_nondestructive;
          Alcotest.test_case "growth from empty" `Quick test_pqueue_growth_from_empty;
          Alcotest.test_case "copy independence" `Quick test_pqueue_copy_independent;
          QCheck_alcotest.to_alcotest pqueue_heap_property;
          QCheck_alcotest.to_alcotest pqueue_stable_order_property;
        ] );
      ( "pool",
        [
          Alcotest.test_case "tasks run exactly once" `Quick test_pool_exactly_once;
          Alcotest.test_case "map_list order" `Quick test_pool_map_list_order;
          Alcotest.test_case "exception re-raised" `Quick test_pool_exception_reraised;
          Alcotest.test_case "inline mode" `Quick test_pool_inline_mode;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
          Alcotest.test_case "steal API (queued/try_run_one/await_helping)" `Quick
            test_pool_steal_api;
          Alcotest.test_case "tasks submit tasks" `Quick test_pool_tasks_submit_tasks;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "subset counts" `Quick test_subsets_count;
          Alcotest.test_case "subsets distinct" `Quick test_subsets_distinct_sorted;
          Alcotest.test_case "subsets up to" `Quick test_subsets_up_to;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
          Alcotest.test_case "choose edge cases" `Quick test_choose_edges;
        ] );
    ]
