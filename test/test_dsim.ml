(* Tests for the simulation substrate: virtual time, the automaton/action
   layer, the network models, and the engine's event semantics (event
   ordering at equal instants, crashes, timers, manual scheduling,
   determinism). *)

module Pid = Dsim.Pid
module Time = Dsim.Time
module Automaton = Dsim.Automaton
module Network = Dsim.Network
module Engine = Dsim.Engine
module Trace = Dsim.Trace

(* A tiny echo protocol: on input [v], broadcast it; on receiving a value,
   output (src, v). Lets us observe deliveries as outputs. *)
type echo_state = { self : Pid.t }

let echo : (echo_state, int, int, Pid.t * int) Automaton.t =
  {
    init = (fun ~self ~n:_ -> ({ self }, []));
    on_message = (fun s ~src v -> (s, [ Automaton.Output (src, v) ]));
    on_input = (fun s v -> (s, [ Automaton.Broadcast v ]));
    on_timer = Automaton.no_timer;
    state_copy = Fun.id;
    state_fingerprint = None;
  }

let sync_net = Network.Sync_rounds { delta = 10; order = Network.Arrival }

let test_time_rounds () =
  Alcotest.(check int) "t=0 is round 1" 1 (Time.round_of ~delta:10 0);
  Alcotest.(check int) "t=9 is round 1" 1 (Time.round_of ~delta:10 9);
  Alcotest.(check int) "t=10 is round 2" 2 (Time.round_of ~delta:10 10);
  Alcotest.(check int) "round 3 starts at 20" 20 (Time.round_start ~delta:10 3)

let test_pid_helpers () =
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all ~n:3);
  Alcotest.(check (list int)) "others" [ 0; 2 ] (Pid.others ~n:3 1)

let test_sync_delivery_at_boundary () =
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net ~inputs:[ (0, 0, 42) ] ()
  in
  ignore (Engine.run engine);
  let outputs = Engine.outputs engine in
  Alcotest.(check int) "both peers deliver" 2 (List.length outputs);
  List.iter (fun (t, _, _) -> Alcotest.(check int) "at boundary" 10 t) outputs

let test_sync_mid_round_send () =
  (* A message sent at t=3 (mid round 1) is still delivered at t=10. *)
  let engine =
    Engine.create ~automaton:echo ~n:2 ~network:sync_net ~inputs:[ (3, 0, 1) ] ()
  in
  ignore (Engine.run engine);
  match Engine.outputs engine with
  | [ (t, p, (src, v)) ] ->
      Alcotest.(check int) "boundary" 10 t;
      Alcotest.(check int) "recipient" 1 p;
      Alcotest.(check int) "source" 0 src;
      Alcotest.(check int) "payload" 1 v
  | other -> Alcotest.failf "expected one delivery, got %d" (List.length other)

let test_crash_at_start_takes_no_step () =
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net
      ~inputs:[ (0, 0, 7) ]
      ~crashes:[ (0, 0) ] ()
  in
  ignore (Engine.run engine);
  Alcotest.(check int) "crashed proposer sends nothing" 0 (List.length (Engine.outputs engine));
  Alcotest.(check bool) "flag set" true (Engine.crashed engine 0);
  Alcotest.(check (list int)) "correct pids" [ 1; 2 ] (Engine.correct_pids engine)

let test_crash_before_delivery () =
  (* p1 crashes at the delivery boundary: crashes process first, so the
     message is dropped. *)
  let engine =
    Engine.create ~automaton:echo ~n:2 ~network:sync_net
      ~inputs:[ (0, 0, 7) ]
      ~crashes:[ (10, 1) ] ()
  in
  ignore (Engine.run engine);
  Alcotest.(check int) "no delivery to crashed" 0 (List.length (Engine.outputs engine))

let test_favor_order () =
  (* Three proposers broadcast at t=0; with Favor 2 every recipient handles
     p2's message first. *)
  let first_received = Hashtbl.create 4 in
  let recorder : (echo_state, int, int, Pid.t * int) Automaton.t =
    {
      echo with
      on_message =
        (fun s ~src v ->
          if not (Hashtbl.mem first_received s.self) then
            Hashtbl.replace first_received s.self src;
          (s, [ Automaton.Output (src, v) ]));
    }
  in
  let engine =
    Engine.create ~automaton:recorder ~n:3
      ~network:(Network.Sync_rounds { delta = 10; order = Network.Favor 2 })
      ~inputs:[ (0, 0, 100); (0, 1, 101); (0, 2, 102) ]
      ()
  in
  ignore (Engine.run engine);
  Alcotest.(check int) "p0 heard p2 first" 2 (Hashtbl.find first_received 0);
  Alcotest.(check int) "p1 heard p2 first" 2 (Hashtbl.find first_received 1)

let test_timer_fires_and_cancel () =
  let fired = ref [] in
  let auto : (unit, int, int, unit) Automaton.t =
    {
      init =
        (fun ~self ~n:_ ->
          if Pid.equal self 0 then
            ( (),
              [
                Automaton.Set_timer { id = 1; after = 5 };
                Automaton.Set_timer { id = 2; after = 7 };
                Automaton.Cancel_timer 2;
              ] )
          else ((), []));
      on_message = (fun s ~src:_ _ -> (s, []));
      on_input = Automaton.no_input;
      on_timer =
        (fun s id ->
          fired := id :: !fired;
          (s, []));
      state_copy = Fun.id;
      state_fingerprint = None;
    }
  in
  let engine = Engine.create ~automaton:auto ~n:2 ~network:sync_net () in
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "only timer 1 fired" [ 1 ] !fired

let test_timer_rearm_replaces () =
  let fired = ref 0 in
  let auto : (unit, int, int, unit) Automaton.t =
    {
      init =
        (fun ~self:_ ~n:_ ->
          ( (),
            [
              Automaton.Set_timer { id = 1; after = 5 };
              Automaton.Set_timer { id = 1; after = 9 };
            ] ));
      on_message = (fun s ~src:_ _ -> (s, []));
      on_input = Automaton.no_input;
      on_timer =
        (fun s _ ->
          incr fired;
          (s, []));
      state_copy = Fun.id;
      state_fingerprint = None;
    }
  in
  let engine = Engine.create ~automaton:auto ~n:1 ~network:sync_net () in
  ignore (Engine.run engine);
  Alcotest.(check int) "re-armed timer fires once" 1 !fired

let test_run_until_resumable () =
  let engine =
    Engine.create ~automaton:echo ~n:2 ~network:sync_net
      ~inputs:[ (0, 0, 1); (25, 0, 2) ]
      ()
  in
  let r1 = Engine.run ~until:15 engine in
  Alcotest.(check bool) "stopped early" true (r1 = Engine.Reached_until);
  Alcotest.(check int) "one delivery so far" 1 (List.length (Engine.outputs engine));
  let r2 = Engine.run engine in
  Alcotest.(check bool) "drained" true (r2 = Engine.Quiescent);
  Alcotest.(check int) "second delivery" 2 (List.length (Engine.outputs engine))

let test_partial_sync_bounds () =
  (* After GST every delay is within (0, delta]; before GST it is bounded
     by gst + delta. *)
  let delta = 10 and gst = 50 in
  let engine =
    Engine.create ~automaton:echo ~n:2 ~seed:11
      ~network:(Network.Partial_sync { delta; gst; max_pre_gst = 200 })
      ~inputs:(List.init 20 (fun i -> (i * 7, 0, i)))
      ()
  in
  ignore (Engine.run engine);
  let trace = Engine.trace engine in
  List.iter
    (function
      | Trace.Delivered { time; sent_at; _ } ->
          Alcotest.(check bool) "causal" true (time > sent_at);
          let bound = if sent_at >= gst then sent_at + delta else gst + delta in
          Alcotest.(check bool) "within bound" true (time <= bound)
      | _ -> ())
    trace

let test_wan_latency () =
  let latency ~src ~dst = if src = dst then 1 else 30 in
  let engine =
    Engine.create ~automaton:echo ~n:2
      ~network:(Network.Wan { latency; jitter = 0 })
      ~inputs:[ (0, 0, 5) ]
      ()
  in
  ignore (Engine.run engine);
  match Engine.outputs engine with
  | [ (t, _, _) ] -> Alcotest.(check int) "matrix delay" 30 t
  | _ -> Alcotest.fail "expected one delivery"

let test_manual_pending_and_deliver () =
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:Network.Manual ~inputs:[ (0, 0, 9) ] ()
  in
  ignore (Engine.run engine);
  let pending = Engine.pending engine in
  Alcotest.(check int) "two pending broadcasts" 2 (List.length pending);
  Alcotest.(check int) "no outputs yet" 0 (List.length (Engine.outputs engine));
  (match pending with
  | [ a; b ] ->
      Engine.deliver_pending engine ~id:a.id ~at:5;
      Engine.drop_pending engine ~id:b.id
  | _ -> Alcotest.fail "pending shape");
  ignore (Engine.run engine);
  Alcotest.(check int) "exactly one delivered" 1 (List.length (Engine.outputs engine));
  Alcotest.(check int) "pool drained" 0 (List.length (Engine.pending engine))

let test_pending_slot_reuse () =
  (* Pending ids are pool slots recycled LIFO: dropping a message frees
     its slot for the next allocation, and send order (reported by
     [pending]) follows send-order stamps, not id order. *)
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:Network.Manual ~inputs:[ (0, 0, 9) ] ()
  in
  ignore (Engine.run engine);
  let a, b =
    match Engine.pending engine with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected two pending broadcasts"
  in
  Alcotest.(check int) "pending_count" 2 (Engine.pending_count engine);
  Engine.drop_pending engine ~id:a.id;
  Alcotest.(check int) "one live after drop" 1 (Engine.pending_count engine);
  let copy_id = Engine.duplicate_pending engine ~id:b.id in
  Alcotest.(check int) "dropped slot reused for the copy" a.id copy_id;
  (match Engine.pending engine with
  | [ first; second ] ->
      Alcotest.(check int) "original first in send order" b.id first.id;
      Alcotest.(check int) "copy last despite smaller id" copy_id second.id;
      Alcotest.(check int) "copy keeps sent_at" b.sent_at second.sent_at
  | _ -> Alcotest.fail "expected two pending after duplication");
  (* A dropped id is no longer addressable until reallocated. *)
  Engine.drop_pending engine ~id:copy_id;
  Alcotest.check_raises "stale id raises" Not_found (fun () ->
      ignore (Engine.duplicate_pending engine ~id:copy_id : int))

let test_pending_fold_iter_agree () =
  let engine =
    Engine.create ~automaton:echo ~n:4 ~network:Network.Manual
      ~inputs:[ (0, 0, 1); (0, 2, 7) ] ()
  in
  ignore (Engine.run engine);
  let records = Engine.pending engine in
  Alcotest.(check int) "six pending broadcasts" 6 (List.length records);
  let of_record (p : _ Engine.pending) = (p.id, p.src, p.dst, p.msg, p.sent_at) in
  let via_fold =
    List.rev
      (Engine.fold_pending engine ~init:[] ~f:(fun acc ~id ~src ~dst ~msg ~sent_at ->
           (id, src, dst, msg, sent_at) :: acc))
  in
  let via_iter = ref [] in
  Engine.iter_pending engine (fun ~id ~src ~dst ~msg ~sent_at ->
      via_iter := (id, src, dst, msg, sent_at) :: !via_iter);
  Alcotest.(check bool) "fold matches pending" true (via_fold = List.map of_record records);
  Alcotest.(check bool) "iter matches fold" true (List.rev !via_iter = via_fold)

let test_determinism () =
  let run () =
    let engine =
      Engine.create ~automaton:echo ~n:4 ~seed:99
        ~network:(Network.Uniform { min_delay = 1; max_delay = 50 })
        ~inputs:[ (0, 0, 1); (0, 1, 2); (3, 2, 3) ]
        ()
    in
    ignore (Engine.run engine);
    Engine.outputs engine
  in
  Alcotest.(check bool) "identical runs" true (run () = run ())

let test_step_budget () =
  (* A self-perpetuating timer must be stopped by the step budget. *)
  let auto : (unit, int, int, unit) Automaton.t =
    {
      init = (fun ~self:_ ~n:_ -> ((), [ Automaton.Set_timer { id = 1; after = 1 } ]));
      on_message = (fun s ~src:_ _ -> (s, []));
      on_input = Automaton.no_input;
      on_timer = (fun s _ -> (s, [ Automaton.Set_timer { id = 1; after = 1 } ]));
      state_copy = Fun.id;
      state_fingerprint = None;
    }
  in
  let engine = Engine.create ~automaton:auto ~n:1 ~network:sync_net ~max_steps:100 () in
  Alcotest.(check bool) "budget exhausts" true (Engine.run engine = Engine.Step_budget_exhausted)

let test_clone_independent () =
  (* Clone mid-run with pending messages; divergent futures must not leak
     between the clone and the original. *)
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:Network.Manual ~inputs:[ (0, 0, 9) ] ()
  in
  ignore (Engine.run engine);
  Alcotest.(check int) "two pending" 2 (List.length (Engine.pending engine));
  let copy = Engine.clone engine in
  (* Deliver everything in the clone. *)
  List.iter
    (fun (m : _ Engine.pending) -> Engine.deliver_pending copy ~id:m.id ~at:5)
    (Engine.pending copy);
  ignore (Engine.run copy);
  Alcotest.(check int) "clone delivered both" 2 (List.length (Engine.outputs copy));
  Alcotest.(check int) "original outputs untouched" 0 (List.length (Engine.outputs engine));
  Alcotest.(check int) "original pool untouched" 2 (List.length (Engine.pending engine));
  (* The original can still take a different future. *)
  (match Engine.pending engine with
  | a :: rest ->
      Engine.deliver_pending engine ~id:a.id ~at:7;
      List.iter
        (fun (m : _ Engine.pending) -> Engine.drop_pending engine ~id:m.id)
        rest
  | [] -> Alcotest.fail "pending vanished");
  ignore (Engine.run engine);
  Alcotest.(check int) "original delivered one" 1 (List.length (Engine.outputs engine))

let test_clone_same_future () =
  (* With a stochastic network, a clone continued identically must produce
     the identical run: the RNG stream is copied, not shared. *)
  let engine =
    Engine.create ~automaton:echo ~n:4 ~seed:13
      ~network:(Network.Uniform { min_delay = 1; max_delay = 40 })
      ~inputs:[ (0, 0, 1); (10, 1, 2); (20, 2, 3) ]
      ()
  in
  ignore (Engine.run ~until:15 engine);
  let copy = Engine.clone engine in
  ignore (Engine.run engine);
  ignore (Engine.run copy);
  Alcotest.(check bool)
    "same outputs" true
    (Engine.outputs engine = Engine.outputs copy)

let test_snapshot_restore () =
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net ~inputs:[ (0, 0, 4); (15, 1, 5) ] ()
  in
  ignore (Engine.run ~until:12 engine);
  let snap = Engine.snapshot engine in
  ignore (Engine.run engine);
  let final = Engine.outputs engine in
  (* Two restores from the same snapshot reach the same final outputs,
     independently of each other and of the original. *)
  let a = Engine.restore snap and b = Engine.restore snap in
  ignore (Engine.run a);
  Alcotest.(check bool) "restore a replays" true (Engine.outputs a = final);
  ignore (Engine.run b);
  Alcotest.(check bool) "restore b replays" true (Engine.outputs b = final)

let test_uniform_validates_bounds () =
  let run_with ~min_delay ~max_delay =
    let engine =
      Engine.create ~automaton:echo ~n:2
        ~network:(Network.Uniform { min_delay; max_delay })
        ~inputs:[ (0, 0, 1) ]
        ()
    in
    ignore (Engine.run engine)
  in
  let expected = Invalid_argument "Network.Uniform: need 0 < min_delay <= max_delay" in
  Alcotest.check_raises "zero min_delay" expected (fun () ->
      run_with ~min_delay:0 ~max_delay:10);
  Alcotest.check_raises "negative min_delay" expected (fun () ->
      run_with ~min_delay:(-3) ~max_delay:10);
  Alcotest.check_raises "inverted bounds" expected (fun () ->
      run_with ~min_delay:10 ~max_delay:2);
  (* min = max is a valid degenerate (constant-delay) case. *)
  run_with ~min_delay:5 ~max_delay:5

(* -- fault injection ---------------------------------------------------- *)

let test_fault_script_drop () =
  let engine =
    Engine.create ~automaton:echo ~n:2 ~network:sync_net ~inputs:[ (0, 0, 1) ]
      ~faults:(Network.Fault.script [ (0, Network.Fault.Drop) ])
      ()
  in
  ignore (Engine.run engine);
  Alcotest.(check int) "message lost" 0 (List.length (Engine.outputs engine));
  let trace = Engine.trace engine in
  Alcotest.(check int) "sent recorded" 1 (Trace.message_count trace);
  Alcotest.(check int) "drop recorded" 1 (Trace.drop_count trace);
  Alcotest.(check (pair int int)) "fault counts" (1, 0) (Engine.fault_counts engine)

let test_fault_script_duplicate () =
  (* The copy is re-timed as if sent [extra_delay] later: +2 stays inside
     round 1 (both copies land on the t=10 boundary), +12 lands the copy on
     the next boundary. *)
  let run extra_delay =
    let engine =
      Engine.create ~automaton:echo ~n:2 ~network:sync_net ~inputs:[ (0, 0, 1) ]
        ~faults:(Network.Fault.script [ (0, Network.Fault.Duplicate { extra_delay }) ])
        ()
    in
    ignore (Engine.run engine);
    (Engine.outputs engine, Trace.duplicate_count (Engine.trace engine))
  in
  (match run 2 with
  | [ (10, 1, (0, 1)); (10, 1, (0, 1)) ], 1 -> ()
  | outs, _ -> Alcotest.failf "same-round dup: unexpected %d outputs" (List.length outs));
  match run 12 with
  | [ (10, 1, (0, 1)); (20, 1, (0, 1)) ], 1 -> ()
  | outs, _ -> Alcotest.failf "next-round dup: unexpected %d outputs" (List.length outs)

let test_fault_script_crash_sender () =
  (* p0 broadcasts to p1 then p2; a Crash_sender on the first send delivers
     that message but suppresses the rest of the broadcast — the classic
     partial broadcast that time-scheduled crashes cannot express. *)
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net ~inputs:[ (0, 0, 1) ]
      ~faults:(Network.Fault.script [ (0, Network.Fault.Crash_sender) ])
      ()
  in
  ignore (Engine.run engine);
  (match Engine.outputs engine with
  | [ (10, 1, (0, 1)) ] -> ()
  | outs -> Alcotest.failf "expected only p1's delivery, got %d" (List.length outs));
  Alcotest.(check bool) "sender crashed" true (Engine.crashed engine 0);
  Alcotest.(check int) "one send only" 1 (Trace.message_count (Engine.trace engine))

let test_fault_random_replayable () =
  let run () =
    let engine =
      Engine.create ~automaton:echo ~n:4 ~seed:21
        ~network:(Network.Uniform { min_delay = 1; max_delay = 20 })
        ~inputs:(List.init 10 (fun i -> (i * 3, i mod 4, i)))
        ~faults:
          (Network.Fault.random ~drop_rate:0.3 ~dup_rate:0.3 ~max_drops:5 ~max_dups:5 ())
        ()
    in
    ignore (Engine.run engine);
    (Engine.outputs engine, Engine.fault_counts engine)
  in
  let (outs1, counts1) = run () and (outs2, counts2) = run () in
  Alcotest.(check bool) "same fault trace, same run" true (outs1 = outs2);
  Alcotest.(check (pair int int)) "same counts" counts1 counts2;
  let drops, dups = counts1 in
  Alcotest.(check bool) "faults actually fired" true (drops > 0 && dups > 0);
  Alcotest.(check bool) "budgets respected" true (drops <= 5 && dups <= 5)

let test_faults_never_perturb_base_delays () =
  (* A Random plan whose budgets forbid every fault must produce the
     byte-identical run of a fault-free engine: fault decisions draw from
     their own stream, never from the delay RNG. *)
  let run faults =
    let engine =
      Engine.create ~automaton:echo ~n:4 ~seed:77
        ~network:(Network.Uniform { min_delay = 1; max_delay = 30 })
        ~inputs:(List.init 12 (fun i -> (i * 2, i mod 4, i)))
        ~faults ()
    in
    ignore (Engine.run engine);
    Engine.outputs engine
  in
  let base = run Network.Fault.none in
  let gated =
    run (Network.Fault.random ~drop_rate:1.0 ~dup_rate:1.0 ~max_drops:0 ~max_dups:0 ())
  in
  Alcotest.(check bool) "identical delivery schedule" true (base = gated)

let test_fault_state_survives_clone () =
  let engine =
    Engine.create ~automaton:echo ~n:4 ~seed:5
      ~network:(Network.Uniform { min_delay = 1; max_delay = 25 })
      ~inputs:(List.init 12 (fun i -> (i * 4, i mod 4, i)))
      ~faults:
        (Network.Fault.random ~drop_rate:0.4 ~dup_rate:0.4 ~max_drops:4 ~max_dups:4 ())
      ()
  in
  ignore (Engine.run ~until:20 engine);
  let copy = Engine.clone engine in
  ignore (Engine.run engine);
  ignore (Engine.run copy);
  Alcotest.(check bool) "same outputs" true (Engine.outputs engine = Engine.outputs copy);
  Alcotest.(check (pair int int))
    "same fault counts"
    (Engine.fault_counts engine) (Engine.fault_counts copy)

let test_fault_plan_validation () =
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Fault.random: rates must be within [0, 1]") (fun () ->
      ignore (Network.Fault.random ~drop_rate:1.5 ()));
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Fault.random: budgets must be non-negative") (fun () ->
      ignore (Network.Fault.random ~max_drops:(-1) ()));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Fault.script: negative send index") (fun () ->
      ignore (Network.Fault.script [ (-1, Network.Fault.Drop) ]));
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Fault.script: duplicate send index") (fun () ->
      ignore (Network.Fault.script [ (0, Network.Fault.Drop); (0, Network.Fault.Drop) ]))

let test_crash_at_time_zero_is_well_defined () =
  (* A time-0 crash fires before Ev_init; the process must still end up
     initialised (then crashed) so state/clone/correct_pids agree. *)
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net
      ~inputs:[ (0, 1, 7); (0, 0, 9) ]
      ~crashes:[ (0, 1) ] ()
  in
  ignore (Engine.run engine);
  let s = Engine.state engine 1 in
  Alcotest.(check int) "state is the initial state" 1 s.self;
  Alcotest.(check bool) "flagged crashed" true (Engine.crashed engine 1);
  Alcotest.(check (list int)) "correct pids" [ 0; 2 ] (Engine.correct_pids engine);
  (* The crashed process's input was dropped; p0's broadcast still reaches
     only p2 (deliveries to crashed processes are suppressed). *)
  (match Engine.outputs engine with
  | [ (10, 2, (0, 9)) ] -> ()
  | outs -> Alcotest.failf "expected one delivery to p2, got %d" (List.length outs));
  (* Clone agrees on everything, including the crashed process's state. *)
  let copy = Engine.clone engine in
  Alcotest.(check int) "clone has the state too" 1 (Engine.state copy 1).self;
  Alcotest.(check bool) "clone flags crash" true (Engine.crashed copy 1)

let test_partial_sync_validates () =
  let expected =
    Invalid_argument "Network.Partial_sync: need delta >= 1, gst >= 0, max_pre_gst >= 1"
  in
  let build ~delta ~gst ~max_pre_gst =
    ignore
      (Engine.create ~automaton:echo ~n:2
         ~network:(Network.Partial_sync { delta; gst; max_pre_gst })
         ())
  in
  Alcotest.check_raises "zero delta" expected (fun () ->
      build ~delta:0 ~gst:10 ~max_pre_gst:5);
  Alcotest.check_raises "negative gst" expected (fun () ->
      build ~delta:5 ~gst:(-1) ~max_pre_gst:5);
  Alcotest.check_raises "zero max_pre_gst" expected (fun () ->
      build ~delta:5 ~gst:10 ~max_pre_gst:0);
  (* Valid corner: gst = 0 means synchrony from the start. *)
  build ~delta:5 ~gst:0 ~max_pre_gst:1

let partial_sync_contract_property =
  (* The documented bound — every message delivered by [gst + delta], and
     post-GST sends within [delta] — must hold for arbitrary parameters,
     not just the hand-picked ones of [test_partial_sync_bounds]. This
    pins the fixed cap: the pre-GST delay is capped by the contract bound
    itself, never resampled per message. *)
  QCheck.Test.make ~name:"partial sync: delivered by gst + delta" ~count:100
    QCheck.(
      quad (int_range 1 10) (int_range 0 80) (int_range 1 300) small_nat)
    (fun (delta, gst, max_pre_gst, seed) ->
      let engine =
        Engine.create ~automaton:echo ~n:3 ~seed
          ~network:(Network.Partial_sync { delta; gst; max_pre_gst })
          ~inputs:(List.init 15 (fun i -> (i * 5, i mod 3, i)))
          ()
      in
      ignore (Engine.run engine);
      List.for_all
        (function
          | Trace.Delivered { time; sent_at; _ } ->
              time > sent_at
              && time <= (if sent_at >= gst then sent_at + delta else gst + delta)
          | _ -> true)
        (Engine.trace engine))

let test_trace_contents () =
  let engine =
    Engine.create ~automaton:echo ~n:2 ~network:sync_net ~inputs:[ (0, 0, 3) ]
      ~crashes:[ (20, 1) ] ()
  in
  ignore (Engine.run engine);
  let trace = Engine.trace engine in
  Alcotest.(check int) "one send" 1 (Trace.message_count trace);
  Alcotest.(check int) "one input" 1 (List.length (Trace.inputs trace));
  Alcotest.(check (list (pair int int))) "crash recorded" [ (20, 1) ] (Trace.crashes trace);
  Alcotest.(check bool) "crashed set" true (Pid.Set.mem 1 (Trace.crashed_set trace));
  match Trace.first_output trace with
  | Some (10, 1, (0, 3)) -> ()
  | _ -> Alcotest.fail "unexpected first output"

(* -- telemetry ---------------------------------------------------------- *)

module Json = Stdext.Json

(* One entry per constructor, with every field populated. *)
let all_entry_kinds : (int, int, int) Trace.entry list =
  [
    Trace.Sent { time = 1; src = 0; dst = 1; msg = 7 };
    Trace.Delivered { time = 2; src = 0; dst = 1; msg = 7; sent_at = 1 };
    Trace.Input { time = 3; pid = 1; input = 5 };
    Trace.Output { time = 4; pid = 1; output = 9 };
    Trace.Timer_fired { time = 5; pid = 0; id = 3 };
    Trace.Crashed { time = 6; pid = 2 };
    Trace.Dropped { time = 7; src = 0; dst = 2; msg = 7; sent_at = 6 };
    Trace.Duplicated { time = 8; src = 1; dst = 2; msg = 7; sent_at = 6; extra_delay = 4 };
  ]

let test_trace_pp_golden () =
  let pi = Format.pp_print_int in
  let got =
    Format.asprintf "%a" (Trace.pp ~pp_msg:pi ~pp_input:pi ~pp_output:pi) all_entry_kinds
  in
  let expected =
    String.concat "\n"
      [
        "t=1 p0 -> p1 send 7";
        "t=2 p0 -> p1 recv 7 (sent t=1)";
        "t=3 p1 input 5";
        "t=4 p1 output 9";
        "t=5 p0 timer 3";
        "t=6 p2 CRASH";
        "t=7 p0 -> p2 DROP 7 (sent t=6)";
        "t=8 p1 -> p2 DUP(+4) 7 (sent t=6)";
      ]
  in
  Alcotest.(check string) "pp covers every constructor" expected got

let test_trace_jsonl_roundtrip () =
  let enc i = Json.Int i in
  let text =
    Format.asprintf "%a" (Trace.to_jsonl ~msg:enc ~input:enc ~output:enc) all_entry_kinds
  in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  Alcotest.(check int) "one line per entry" (List.length all_entry_kinds) (List.length lines);
  List.iter2
    (fun entry line ->
      match Json.parse line with
      | Error msg -> Alcotest.fail ("unparseable line: " ^ msg)
      | Ok json ->
          Alcotest.(check bool) "line parses back to entry_to_json" true
            (json = Trace.entry_to_json ~msg:enc ~input:enc ~output:enc entry))
    all_entry_kinds lines

(* The engine's probe and the trace are two views of the same run; every
   probe counter must equal the count recomputed from the trace. *)
let test_probe_matches_trace () =
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net
      ~inputs:[ (0, 0, 1); (0, 1, 2) ]
      ~faults:
        (Network.Fault.script
           [ (0, Network.Fault.Drop); (2, Network.Fault.Duplicate { extra_delay = 2 }) ])
      ()
  in
  ignore (Engine.run engine);
  let trace = Engine.trace engine in
  let p = Engine.probe engine in
  let delivered_in_trace =
    List.length (List.filter (function Trace.Delivered _ -> true | _ -> false) trace)
  in
  Alcotest.(check int) "sent" (Trace.message_count trace) p.Engine.Probe.sent;
  Alcotest.(check int) "delivered" delivered_in_trace p.Engine.Probe.delivered;
  Alcotest.(check int) "dropped" (Trace.drop_count trace) p.Engine.Probe.dropped;
  Alcotest.(check int) "duplicated" (Trace.duplicate_count trace) p.Engine.Probe.duplicated;
  Alcotest.(check int) "timer fires" (Trace.timer_fire_count trace) p.Engine.Probe.timer_fires;
  Alcotest.(check int) "decides" (Trace.decide_count trace) p.Engine.Probe.decides;
  Alcotest.(check int) "crashes" (List.length (Trace.crashes trace)) p.Engine.Probe.crashes;
  Alcotest.(check int) "some deliveries happened" 1 (min 1 delivered_in_trace);
  Alcotest.(check (list (pair int int)))
    "decision latencies agree"
    (Trace.decision_latencies trace)
    (Engine.decision_latencies engine)

(* Probe state is part of the execution state: clone and snapshot/restore
   must carry it, so replay and snapshot exploration see identical totals. *)
let test_probe_survives_clone_and_snapshot () =
  let make () =
    Engine.create ~automaton:echo ~n:3 ~network:sync_net
      ~inputs:[ (0, 0, 1); (12, 1, 2) ]
      ()
  in
  let base = make () in
  ignore (Engine.run ~until:10 base);
  let cloned = Engine.clone base in
  let restored = Engine.restore (Engine.snapshot base) in
  Alcotest.(check bool) "clone copies mid-run probe" true
    (Engine.probe cloned = Engine.probe base);
  Alcotest.(check bool) "restore copies mid-run probe" true
    (Engine.probe restored = Engine.probe base);
  ignore (Engine.run base);
  ignore (Engine.run cloned);
  ignore (Engine.run restored);
  let fresh = make () in
  ignore (Engine.run fresh);
  Alcotest.(check bool) "probe nonzero" true (Engine.probe base <> Engine.Probe.zero);
  List.iter
    (fun (name, e) ->
      Alcotest.(check bool) name true (Engine.probe e = Engine.probe base);
      Alcotest.(check (list (pair int int)))
        (name ^ " latencies")
        (Engine.decision_latencies base)
        (Engine.decision_latencies e))
    [ ("clone finishes identically", cloned);
      ("restore finishes identically", restored);
      ("replay from scratch finishes identically", fresh);
    ]

(* -- fingerprinting ------------------------------------------------------ *)

module Fp = Dsim.Fingerprint

(* Fold a list right-to-left with the element-first signature Fp.set/Fp.map
   expect, so the same physical elements can be folded in two different
   iteration orders. *)
let fold_list f l init = List.fold_left (fun acc x -> f x acc) init l

let test_fingerprint_order_independence () =
  (* set/map use the commutative combiner: any iteration order of the same
     elements must hash identically — the property that makes Pid.Set /
     Pid.Map folds safe regardless of internal tree shape. *)
  let elems = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let shuffled = [ 6; 2; 9; 5; 1; 4; 1; 3 ] in
  Alcotest.(check int64)
    "set: iteration order invisible"
    (Fp.set Fp.int ~fold:fold_list elems)
    (Fp.set Fp.int ~fold:fold_list shuffled);
  let bindings = [ (1, 10); (2, 20); (3, 30) ] in
  let binding (k, v) = Fp.mix (Fp.int k) (Fp.int v) in
  let fold_bindings f l init = List.fold_left (fun acc kv -> f kv () acc) init l in
  Alcotest.(check int64)
    "map: iteration order invisible"
    (Fp.map (fun kv () -> binding kv) ~fold:fold_bindings bindings)
    (Fp.map (fun kv () -> binding kv) ~fold:fold_bindings (List.rev bindings));
  (* mix, by contrast, is order-sensitive — sequences must not commute. *)
  Alcotest.(check bool) "mix is order-sensitive" true
    (Fp.mix (Fp.int 1) (Fp.int 2) <> Fp.mix (Fp.int 2) (Fp.int 1));
  (* and distinct multisets must not collide just because sums commute. *)
  Alcotest.(check bool) "set distinguishes multisets" true
    (Fp.set Fp.int ~fold:fold_list [ 1; 1; 2 ] <> Fp.set Fp.int ~fold:fold_list [ 1; 2; 2 ])

let test_fingerprint_golden () =
  (* Hard-coded values pin the fingerprint function itself: any change to
     the mixing constants or fold order silently invalidates every visited
     set written by other components, so it must be deliberate and loud. *)
  Alcotest.(check int64) "int 1" 0x5692161D100B05E5L (Fp.int 1);
  Alcotest.(check int64) "int 42" 0xA759EA27D4727622L (Fp.int 42);
  Alcotest.(check int64) "mix 1 2" 0x8675A45D4D251026L (Fp.mix (Fp.int 1) (Fp.int 2));
  Alcotest.(check int64) "list [1;2;3]" 0x3A44398B6D263063L (Fp.list Fp.int [ 1; 2; 3 ]);
  Alcotest.(check int64) "option None" 7L (Fp.option Fp.int None);
  Alcotest.(check int64) "bool true" 3L (Fp.bool true)

let test_engine_fingerprint_stability () =
  (* Same construction, run to the same point -> same fingerprint;
     divergent histories -> (almost surely) different fingerprints; and a
     clone fingerprints identically to its source at every point. *)
  let fp_automaton : (echo_state, int, int, Pid.t * int) Automaton.t =
    {
      echo with
      state_fingerprint = Some (fun ~relabel s -> Fp.int (relabel s.self));
    }
  in
  let make inputs =
    Engine.create ~automaton:fp_automaton ~n:3 ~network:sync_net ~seed:0 ~inputs ()
  in
  let a = make [ (0, 0, 7) ] and b = make [ (0, 0, 7) ] in
  Alcotest.(check bool) "hook detected" true (Engine.has_fingerprint a);
  Alcotest.(check int64) "fresh engines agree" (Engine.fingerprint a) (Engine.fingerprint b);
  ignore (Engine.run ~until:10 a);
  ignore (Engine.run ~until:10 b);
  Alcotest.(check int64) "same run, same fingerprint" (Engine.fingerprint a)
    (Engine.fingerprint b);
  let c = Engine.clone a in
  Alcotest.(check int64) "clone fingerprints like source" (Engine.fingerprint a)
    (Engine.fingerprint c);
  (* Echo state records nothing, so divergent histories only show while
     their messages are still in flight: stop before the round boundary
     and the queued payloads (7 vs 8) must separate the fingerprints. *)
  let a5 = make [ (0, 0, 7) ] and d5 = make [ (0, 0, 8) ] in
  ignore (Engine.run ~until:5 a5);
  ignore (Engine.run ~until:5 d5);
  Alcotest.(check bool) "in-flight payloads distinguish" true
    (Engine.fingerprint a5 <> Engine.fingerprint d5);
  (* No hook -> fingerprinting is a loud error, not a silent constant. *)
  let plain = Engine.create ~automaton:echo ~n:3 ~network:sync_net ~seed:0 ~inputs:[] () in
  Alcotest.(check bool) "no hook" false (Engine.has_fingerprint plain);
  match Engine.fingerprint plain with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "dsim"
    [
      ( "time",
        [
          Alcotest.test_case "rounds" `Quick test_time_rounds;
          Alcotest.test_case "pids" `Quick test_pid_helpers;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sync delivery at boundary" `Quick test_sync_delivery_at_boundary;
          Alcotest.test_case "mid-round send" `Quick test_sync_mid_round_send;
          Alcotest.test_case "crash at start" `Quick test_crash_at_start_takes_no_step;
          Alcotest.test_case "crash before delivery" `Quick test_crash_before_delivery;
          Alcotest.test_case "favor order" `Quick test_favor_order;
          Alcotest.test_case "timer fire and cancel" `Quick test_timer_fires_and_cancel;
          Alcotest.test_case "timer re-arm" `Quick test_timer_rearm_replaces;
          Alcotest.test_case "run until / resume" `Quick test_run_until_resumable;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "clone independence" `Quick test_clone_independent;
          Alcotest.test_case "clone same future" `Quick test_clone_same_future;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        ] );
      ( "networks",
        [
          Alcotest.test_case "partial synchrony bounds" `Quick test_partial_sync_bounds;
          Alcotest.test_case "partial synchrony validates" `Quick test_partial_sync_validates;
          QCheck_alcotest.to_alcotest partial_sync_contract_property;
          Alcotest.test_case "wan matrix" `Quick test_wan_latency;
          Alcotest.test_case "manual pending pool" `Quick test_manual_pending_and_deliver;
          Alcotest.test_case "pending slot reuse" `Quick test_pending_slot_reuse;
          Alcotest.test_case "pending fold/iter agree" `Quick test_pending_fold_iter_agree;
          Alcotest.test_case "uniform validates bounds" `Quick test_uniform_validates_bounds;
        ] );
      ( "faults",
        [
          Alcotest.test_case "scripted drop" `Quick test_fault_script_drop;
          Alcotest.test_case "scripted duplicate" `Quick test_fault_script_duplicate;
          Alcotest.test_case "scripted sender crash" `Quick test_fault_script_crash_sender;
          Alcotest.test_case "random plan replayable" `Quick test_fault_random_replayable;
          Alcotest.test_case "faults never perturb base delays" `Quick
            test_faults_never_perturb_base_delays;
          Alcotest.test_case "fault state survives clone" `Quick
            test_fault_state_survives_clone;
          Alcotest.test_case "plan validation" `Quick test_fault_plan_validation;
          Alcotest.test_case "crash at time 0 well-defined" `Quick
            test_crash_at_time_zero_is_well_defined;
        ] );
      ("trace", [ Alcotest.test_case "contents" `Quick test_trace_contents ]);
      ( "telemetry",
        [
          Alcotest.test_case "trace pp golden" `Quick test_trace_pp_golden;
          Alcotest.test_case "trace jsonl round-trip" `Quick test_trace_jsonl_roundtrip;
          Alcotest.test_case "probe matches trace" `Quick test_probe_matches_trace;
          Alcotest.test_case "probe survives clone/snapshot" `Quick
            test_probe_survives_clone_and_snapshot;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "order independence" `Quick test_fingerprint_order_independence;
          Alcotest.test_case "golden constants" `Quick test_fingerprint_golden;
          Alcotest.test_case "engine fingerprint stability" `Quick
            test_engine_fingerprint_stability;
        ] );
    ]
