(* Cross-engine trace equivalence: golden digests of Trace.to_jsonl.

   The digests below were captured from the engine as of the seed of the
   int-packed hot-path rewrite (boxed Pqueue entries, Map-based pending
   pool and timer table). The rewritten engine must produce byte-identical
   JSONL traces for every (protocol, network, fault plan, seed) cell, so
   any behavioural drift in event ordering, fault decisions, RNG
   consumption or trace rendering fails here with the offending cell's
   label.

   Regenerate (only when a trace-schema change is intended) with:
     GOLDEN_PRINT=1 dune exec test/test_engine_golden.exe 2>/dev/null *)

module Json = Stdext.Json

let delta = 100

let seeds = [ 1; 2; 3 ]

let protocols =
  [
    ("rgs-task", Core.Rgs.task, 6, 2, 2);
    ("rgs-object", Core.Rgs.obj, 5, 2, 2);
    ("paxos", Baselines.Paxos.protocol, 5, 0, 2);
    ("fast-paxos", Baselines.Fast_paxos.protocol, 7, 2, 2);
  ]

let wan_latency ~src ~dst = 20 + (10 * ((src + (3 * dst)) mod 4))

let nets : (string * (unit -> Proto.Value.t Dsim.Network.t)) list =
  [
    ("sync-arrival", fun () -> Sync_rounds { delta; order = Dsim.Network.Arrival });
    ("sync-random", fun () -> Sync_rounds { delta; order = Dsim.Network.Random_order });
    ("partial", fun () -> Partial_sync { delta; gst = 3 * delta; max_pre_gst = 150 });
    ("uniform", fun () -> Uniform { min_delay = 30; max_delay = 170 });
    ("wan", fun () -> Wan { latency = wan_latency; jitter = 15 });
  ]

let fault_plans =
  [
    ("none", Dsim.Network.Fault.none);
    ( "random",
      Dsim.Network.Fault.random ~drop_rate:0.1 ~dup_rate:0.1 ~max_drops:2 ~max_dups:2
        ~max_extra_delay:37 () );
    ( "script",
      Dsim.Network.Fault.script
        [
          (2, Dsim.Network.Fault.Drop);
          (5, Dsim.Network.Fault.Duplicate { extra_delay = 13 });
          (9, Dsim.Network.Fault.Crash_sender);
        ] );
  ]

(* One run's trace as the stable JSONL text. Message payloads are encoded
   through the protocol's printer, so the digest covers the full wire
   content, not just event shapes. *)
let jsonl_of_run (module P : Proto.Protocol.S) ~n ~e ~f ~net ~faults ~seed =
  let automaton = P.make ~n ~e ~f ~delta in
  (* The net constructor is re-evaluated per run: network values are pure
     descriptions, this just keeps the table below readable. *)
  let network : P.msg Dsim.Network.t =
    match net with
    | Dsim.Network.Sync_rounds { delta; order } ->
        let order : P.msg Dsim.Network.order =
          match order with
          | Dsim.Network.Arrival -> Dsim.Network.Arrival
          | Dsim.Network.Random_order -> Dsim.Network.Random_order
          | Dsim.Network.Favor p -> Dsim.Network.Favor p
          | Dsim.Network.Sort_by _ -> assert false
        in
        Dsim.Network.Sync_rounds { delta; order }
    | Dsim.Network.Partial_sync p -> Dsim.Network.Partial_sync p
    | Dsim.Network.Uniform u -> Dsim.Network.Uniform u
    | Dsim.Network.Wan w -> Dsim.Network.Wan w
    | Dsim.Network.Manual -> Dsim.Network.Manual
  in
  let inputs = List.init n (fun i -> (0, i, n - 1 - i)) in
  let engine =
    Dsim.Engine.create ~automaton ~n ~network ~seed ~inputs ~faults ()
  in
  ignore (Dsim.Engine.run ~until:4000 engine : Dsim.Engine.run_result);
  let enc_msg m = Json.String (Format.asprintf "%a" P.pp_msg m) in
  let enc_v v = Json.Int v in
  Format.asprintf "%a"
    (Dsim.Trace.to_jsonl ~msg:enc_msg ~input:enc_v ~output:enc_v)
    (Dsim.Engine.trace engine)

let digest_of_cell proto ~n ~e ~f ~net ~faults =
  let buf = Buffer.create 4096 in
  List.iter
    (fun seed -> Buffer.add_string buf (jsonl_of_run proto ~n ~e ~f ~net ~faults ~seed))
    seeds;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let cells () =
  List.concat_map
    (fun (pname, proto, n, e, f) ->
      List.concat_map
        (fun (nname, mknet) ->
          List.map
            (fun (fname, faults) ->
              let label = Printf.sprintf "%s/%s/%s" pname nname fname in
              (label, lazy (digest_of_cell proto ~n ~e ~f ~net:(mknet ()) ~faults)))
            fault_plans)
        nets)
    protocols

(* Captured from the seed engine; see the header comment. *)
let golden =
  [
    ("rgs-task/sync-arrival/none", "44f8417564d9e4ec630fc005117b469b");
    ("rgs-task/sync-arrival/random", "627707b28ca48e20af66efcf8a40aa92");
    ("rgs-task/sync-arrival/script", "8d8005da8a5d74b9ce7b8bd3e73ed6e2");
    ("rgs-task/sync-random/none", "c0401dd58cbefeeab2a7272f7b5893e6");
    ("rgs-task/sync-random/random", "9380ffce4a1ac7f0d30be1a02c3e37d9");
    ("rgs-task/sync-random/script", "798e3803ff8ccc38954ee10eb0cd7a3f");
    ("rgs-task/partial/none", "a72340009e8d03ebb4159ea215bb463e");
    ("rgs-task/partial/random", "a2431327adf54218be10803b4d89ec76");
    ("rgs-task/partial/script", "bcb8513e7d1612be98ca5b1cca6cbb3b");
    ("rgs-task/uniform/none", "86d11acf0fb5dd8a6751ced8ac773c8b");
    ("rgs-task/uniform/random", "1e4ab8efd90a317ff956033d3bc68021");
    ("rgs-task/uniform/script", "db1e4e8c25827a0273a593bf04d40b90");
    ("rgs-task/wan/none", "08016bab48ca54a3562d0bb0a7322da8");
    ("rgs-task/wan/random", "63db4692dcc1d7564af5370b377cb336");
    ("rgs-task/wan/script", "a9307815fb0f855257ed7be560e13b45");
    ("rgs-object/sync-arrival/none", "0eefbd051155377b407f1a68af783daa");
    ("rgs-object/sync-arrival/random", "b8a2ce31994bfe45ce771806f1b154d1");
    ("rgs-object/sync-arrival/script", "fb4e23c0f5f4d077b676708459bc2ae6");
    ("rgs-object/sync-random/none", "5f23aa73b726965a9754c47274f50750");
    ("rgs-object/sync-random/random", "37defc23f74120a3b7311932467480d3");
    ("rgs-object/sync-random/script", "95eadfd43b9ffe210871127ded05df7a");
    ("rgs-object/partial/none", "c0e61fd0b6c72be196ec520760a88402");
    ("rgs-object/partial/random", "a43184c798f5b03b2b93799fe3d4b8be");
    ("rgs-object/partial/script", "414434ec23ff8fcbe2b131e9c89e6b6f");
    ("rgs-object/uniform/none", "4f5323bb33276b9a54e38e3d966c3864");
    ("rgs-object/uniform/random", "a064807746aa79dfa254ea6f0e8acf22");
    ("rgs-object/uniform/script", "60fad8977e742acece12dcbec81fbcb6");
    ("rgs-object/wan/none", "2eb3825eb162d0bb40fb67d7cbe07e1a");
    ("rgs-object/wan/random", "c2eeae510b35efc2f5559170cfd454d3");
    ("rgs-object/wan/script", "82343c42288362b8eebd07c9e6ffb99a");
    ("paxos/sync-arrival/none", "d32cc3f710219055b36774b60cbc86c3");
    ("paxos/sync-arrival/random", "345f075e657700743ab895b0b8dddeae");
    ("paxos/sync-arrival/script", "3f0c66be050f5c13606b0af581bd923e");
    ("paxos/sync-random/none", "2001834f9e8e17e220bae67951d7fe57");
    ("paxos/sync-random/random", "d473d37ec4d53687292b54d39b0cb87b");
    ("paxos/sync-random/script", "db0870b7bf1769314bbbfa9ee43e6783");
    ("paxos/partial/none", "0e45973b8fe1234318e0b4ad4c3f76f6");
    ("paxos/partial/random", "9f533d7f84b8362e7d1277ed40ce4f60");
    ("paxos/partial/script", "9e61d3b6d56e415dc0c7c497b837a7d6");
    ("paxos/uniform/none", "1c3907f2045dc76a6e2322256513d243");
    ("paxos/uniform/random", "b41a3d6168c2abc374cc4586119081de");
    ("paxos/uniform/script", "c43fad70e2d57616f3117d256e86cbc7");
    ("paxos/wan/none", "f727c7b3374dbcdcc9489ae0d07b5ec2");
    ("paxos/wan/random", "4a43a8d5d1f340477d54efa366fe700d");
    ("paxos/wan/script", "0c8f5aa0db61d082a36153e947cea993");
    ("fast-paxos/sync-arrival/none", "58e5d3646b8f0423e8b2dd666f543318");
    ("fast-paxos/sync-arrival/random", "b8305c56ac251d27ebf6008eb6269d93");
    ("fast-paxos/sync-arrival/script", "4805c6e2e94f6024e0061e78ded108db");
    ("fast-paxos/sync-random/none", "3d8015aa9af1a22410a808bc8622fa16");
    ("fast-paxos/sync-random/random", "4bb6cf7e28b3975d2753cec26a5117cb");
    ("fast-paxos/sync-random/script", "2ce2f2292095dc0df30a9cd33ffbc275");
    ("fast-paxos/partial/none", "707f93bfa673c97f7ee95b1e2c69302b");
    ("fast-paxos/partial/random", "b47f4ca837a9a898903b0b79cae58d6e");
    ("fast-paxos/partial/script", "511e7947640d8a258f10cda44998cfb7");
    ("fast-paxos/uniform/none", "81ec5528bdc792094e64a16d50e1049d");
    ("fast-paxos/uniform/random", "9942ce63a456399f871c975a23f30166");
    ("fast-paxos/uniform/script", "08c7f13d2bf11b164d195912ea0f4ab2");
    ("fast-paxos/wan/none", "2bc654ad80e1100980477d17e5f6217f");
    ("fast-paxos/wan/random", "77d3bae7368c883a20bd8bad130a5ed9");
    ("fast-paxos/wan/script", "bbf177e7289905387b6871ca52b71390");
  ]

let test_golden () =
  List.iter
    (fun (label, digest) ->
      match List.assoc_opt label golden with
      | None -> Alcotest.failf "no golden digest for %s" label
      | Some expect -> Alcotest.(check string) label expect (Lazy.force digest))
    (cells ())

let () =
  match Sys.getenv_opt "GOLDEN_PRINT" with
  | Some _ ->
      List.iter
        (fun (label, digest) ->
          Printf.printf "    (%S, %S);\n" label (Lazy.force digest))
        (cells ())
  | None ->
      Alcotest.run "engine_golden"
        [
          ( "trace equivalence",
            [ Alcotest.test_case "golden digests (protocol x net x faults)" `Quick test_golden ]
          );
        ]
