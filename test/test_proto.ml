(* Tests for the protocol substrate: values, ballots, the bound formulas of
   the paper, vote tallies, and the Ω leader-election component. *)

module Value = Proto.Value
module Ballot = Proto.Ballot
module Bounds = Proto.Bounds
module Votes = Proto.Votes
module Omega = Proto.Omega
module Automaton = Dsim.Automaton

let test_value_order () =
  Alcotest.(check bool) "v >= bottom" true (Value.geq_bottom 0 None);
  Alcotest.(check bool) "5 >= 3" true (Value.geq_bottom 5 (Some 3));
  Alcotest.(check bool) "2 < 3" false (Value.geq_bottom 2 (Some 3));
  Alcotest.(check (option int)) "max with bottom" (Some 4) (Value.max_opt None (Some 4));
  Alcotest.(check (option int)) "max" (Some 7) (Value.max_opt (Some 7) (Some 4))

let test_ballot_ownership () =
  let n = 5 in
  Alcotest.(check bool) "0 is fast" true (Ballot.is_fast Ballot.fast);
  Alcotest.(check int) "b7 owner" 2 (Ballot.leader_of ~n 7);
  Alcotest.check_raises "fast ballot has no owner"
    (Invalid_argument "Ballot.leader_of: the fast ballot has no owner") (fun () ->
      ignore (Ballot.leader_of ~n 0))

let test_ballot_next_owned () =
  let n = 5 in
  List.iter
    (fun self ->
      List.iter
        (fun above ->
          let b = Ballot.next_owned ~n ~self ~above in
          Alcotest.(check bool) "strictly above" true (b > above);
          Alcotest.(check bool) "positive" true (b > 0);
          Alcotest.(check int) "owned" self (Ballot.leader_of ~n b);
          (* minimality: no smaller owned ballot in between *)
          let smaller_owned = ref false in
          for c = above + 1 to b - 1 do
            if c > 0 && Ballot.leader_of ~n c = self then smaller_owned := true
          done;
          Alcotest.(check bool) "minimal" false !smaller_owned)
        [ 0; 1; 4; 5; 17 ])
    (Dsim.Pid.all ~n)

(* The paper's headline table: bounds for the three formulations. *)
let test_bounds_table () =
  let check form e f expected =
    Alcotest.(check int)
      (Format.asprintf "%a e=%d f=%d" Bounds.pp_formulation form e f)
      expected
      (Bounds.required form ~e ~f)
  in
  (* e = f = 1 *)
  check Bounds.Lamport_fast 1 1 4;
  check Bounds.Task 1 1 3;
  check Bounds.Object 1 1 3;
  (* e = 1, f = 2: 2f+1 dominates the task/object core *)
  check Bounds.Lamport_fast 1 2 5;
  check Bounds.Task 1 2 5;
  check Bounds.Object 1 2 5;
  (* e = f = 2 *)
  check Bounds.Lamport_fast 2 2 7;
  check Bounds.Task 2 2 6;
  check Bounds.Object 2 2 5;
  (* e = 2, f = 3: EPaxos's sweet spot (e = ceil((f+1)/2), n = 2f+1) *)
  check Bounds.Object 2 3 7;
  Alcotest.(check int) "epaxos e for f=3" 2 (Bounds.epaxos_e ~f:3);
  Alcotest.(check int) "epaxos e for f=2" 2 (Bounds.epaxos_e ~f:2);
  Alcotest.(check int) "epaxos e for f=1" 1 (Bounds.epaxos_e ~f:1)

(* §1 of the paper: with e = ceil((f+1)/2), EPaxos-style protocols use
   2f+1 processes while Lamport's bound demands strictly more; for even f
   the gap is exactly two processes (2f+3 = 2e+f+1). *)
let test_epaxos_conundrum () =
  List.iter
    (fun f ->
      let e = Bounds.epaxos_e ~f in
      Alcotest.(check int) "object bound = 2f+1" ((2 * f) + 1) (Bounds.required Bounds.Object ~e ~f);
      Alcotest.(check bool)
        "Lamport bound exceeds 2f+1" true
        (Bounds.required Bounds.Lamport_fast ~e ~f > (2 * f) + 1))
    [ 1; 2; 3; 4; 5; 6; 7 ];
  List.iter
    (fun f ->
      let e = Bounds.epaxos_e ~f in
      Alcotest.(check int)
        "even f: Lamport bound = 2f+3"
        ((2 * f) + 3)
        (Bounds.required Bounds.Lamport_fast ~e ~f))
    [ 2; 4; 6 ]

let bounds_monotone =
  QCheck.Test.make ~name:"bounds: object <= task <= lamport, all >= 2f+1" ~count:200
    QCheck.(pair (int_range 0 10) (int_range 0 10))
    (fun (e, d) ->
      let f = e + d in
      let lam = Bounds.required Bounds.Lamport_fast ~e ~f in
      let task = Bounds.required Bounds.Task ~e ~f in
      let obj = Bounds.required Bounds.Object ~e ~f in
      obj <= task && task <= lam && obj >= (2 * f) + 1)

(* Quorum-intersection arithmetic behind the protocol: any fast quorum and
   any recovery quorum overlap in >= recovery_threshold processes. *)
let quorum_overlap =
  QCheck.Test.make ~name:"fast/classic quorum overlap >= n-f-e" ~count:500
    QCheck.(triple (int_range 0 5) (int_range 0 5) (int_range 0 20))
    (fun (e, d, extra) ->
      let f = e + d in
      let n = Bounds.required Bounds.Task ~e ~f + extra in
      let fast = Bounds.fast_quorum ~n ~e and classic = Bounds.classic_quorum ~n ~f in
      (* worst-case overlap by inclusion-exclusion *)
      fast + classic - n >= Bounds.recovery_threshold ~n ~e ~f
      && Bounds.recovery_threshold ~n ~e ~f >= 1)

let test_votes () =
  let v =
    Votes.empty |> Votes.add 1 0 |> Votes.add 1 1 |> Votes.add 2 2 |> Votes.add 1 0
    (* duplicate *)
  in
  Alcotest.(check int) "count 1" 2 (Votes.count 1 v);
  Alcotest.(check int) "count 2" 1 (Votes.count 2 v);
  Alcotest.(check int) "count absent" 0 (Votes.count 9 v);
  Alcotest.(check (list (pair int int))) "tally" [ (1, 2); (2, 1) ] (Votes.tally v);
  Alcotest.(check (list int)) "at least 2" [ 1 ] (Votes.values_with_count_at_least 2 v);
  Alcotest.(check (list int)) "exactly 1" [ 2 ] (Votes.values_with_count_exactly 1 v);
  Alcotest.(check (option int)) "max >= 1" (Some 2) (Votes.max_value_with_count_at_least 1 v);
  Alcotest.(check int) "distinct voters" 3 (Votes.total_pids v)

(* Ω as a component: run it standalone in the engine and check convergence
   after crashes. *)
type omega_state = Omega.state

let omega_auto ~delta : (omega_state, Omega.msg, int, unit) Automaton.t =
  {
    init = (fun ~self ~n -> Omega.init ~self ~n ~delta ());
    on_message = (fun s ~src m -> Omega.on_message s ~src m);
    on_input = Automaton.no_input;
    on_timer = (fun s id -> if Omega.owns_timer s id then Omega.on_timer s id else (s, []));
    state_copy = Fun.id;
    state_fingerprint = None;
  }

let test_omega_initial_leader () =
  let delta = 10 in
  let engine =
    Dsim.Engine.create ~automaton:(omega_auto ~delta) ~n:4
      ~network:(Dsim.Network.Sync_rounds { delta; order = Dsim.Network.Arrival })
      ()
  in
  ignore (Dsim.Engine.run ~until:15 engine);
  List.iter
    (fun p ->
      Alcotest.(check int) "p0 leads initially" 0 (Omega.leader (Dsim.Engine.state engine p)))
    (Dsim.Pid.all ~n:4)

let test_omega_crash_failover () =
  let delta = 10 in
  let engine =
    Dsim.Engine.create ~automaton:(omega_auto ~delta) ~n:4
      ~network:(Dsim.Network.Sync_rounds { delta; order = Dsim.Network.Arrival })
      ~crashes:[ (0, 0); (0, 1) ] ()
  in
  ignore (Dsim.Engine.run ~until:(20 * delta) engine);
  List.iter
    (fun p ->
      Alcotest.(check int)
        "leader is lowest correct" 2
        (Omega.leader (Dsim.Engine.state engine p)))
    [ 2; 3 ]

let test_omega_no_false_suspicion_when_synchronous () =
  let delta = 10 in
  let engine =
    Dsim.Engine.create ~automaton:(omega_auto ~delta) ~n:3
      ~network:(Dsim.Network.Sync_rounds { delta; order = Dsim.Network.Arrival })
      ()
  in
  ignore (Dsim.Engine.run ~until:(50 * delta) engine);
  List.iter
    (fun p ->
      Alcotest.(check int) "still p0" 0 (Omega.leader (Dsim.Engine.state engine p)))
    (Dsim.Pid.all ~n:3)

let () =
  Alcotest.run "proto"
    [
      ("value", [ Alcotest.test_case "ordering" `Quick test_value_order ]);
      ( "ballot",
        [
          Alcotest.test_case "ownership" `Quick test_ballot_ownership;
          Alcotest.test_case "next owned" `Quick test_ballot_next_owned;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "table" `Quick test_bounds_table;
          Alcotest.test_case "epaxos conundrum" `Quick test_epaxos_conundrum;
          QCheck_alcotest.to_alcotest bounds_monotone;
          QCheck_alcotest.to_alcotest quorum_overlap;
        ] );
      ("votes", [ Alcotest.test_case "tallies" `Quick test_votes ]);
      ( "omega",
        [
          Alcotest.test_case "initial leader" `Quick test_omega_initial_leader;
          Alcotest.test_case "crash failover" `Quick test_omega_crash_failover;
          Alcotest.test_case "synchronous stability" `Quick test_omega_no_false_suspicion_when_synchronous;
        ] );
    ]
