(* Tests for the property checkers themselves: safety verdicts,
   linearizability, the e-two-step definition checkers (positive at the
   bounds, negative for Paxos), and the bounded-exhaustive explorer. *)

module Pid = Dsim.Pid
module Scenario = Checker.Scenario
module Safety = Checker.Safety
module Twostep = Checker.Twostep
module Explore = Checker.Explore
module Linearizability = Checker.Linearizability

let delta = 100

let outcome ?(n = 3) ?(proposals = []) ?(decisions = []) ?(crashes = []) () =
  {
    Scenario.decisions;
    proposals;
    crashes;
    n;
    horizon = 0;
    messages = 0;
    dropped = 0;
    duplicated = 0;
    latencies = [];
    engine_result = Dsim.Engine.Quiescent;
  }

let test_safety_verdicts () =
  let good =
    outcome
      ~proposals:[ (0, 0, 1); (0, 1, 2) ]
      ~decisions:[ (200, 0, 2); (300, 1, 2); (300, 2, 2) ]
      ()
  in
  let v = Safety.check good in
  Alcotest.(check bool) "valid" true v.validity;
  Alcotest.(check bool) "agree" true v.agreement;
  Alcotest.(check bool) "terminated" true v.termination;
  let invalid = outcome ~proposals:[ (0, 0, 1) ] ~decisions:[ (200, 0, 9) ] () in
  Alcotest.(check bool) "invented value" false (Safety.check invalid).validity;
  let split =
    outcome ~proposals:[ (0, 0, 1); (0, 1, 2) ] ~decisions:[ (1, 0, 1); (2, 1, 2) ] ()
  in
  Alcotest.(check bool) "split decision" false (Safety.check split).agreement;
  let crashed_undecided =
    outcome
      ~proposals:[ (0, 0, 1) ]
      ~decisions:[ (1, 0, 1); (2, 2, 1) ]
      ~crashes:[ (0, 1) ] ()
  in
  Alcotest.(check bool) "crashed process exempt from termination" true
    (Safety.check crashed_undecided).termination

let test_linearizability () =
  let ok = outcome ~proposals:[ (0, 0, 5) ] ~decisions:[ (200, 0, 5); (300, 1, 5) ] () in
  Alcotest.(check bool) "single value" true (Linearizability.check ok).linearizable;
  let late_proposal =
    (* decided before any propose(5) was invoked *)
    outcome ~proposals:[ (500, 0, 5) ] ~decisions:[ (200, 1, 5) ] ()
  in
  Alcotest.(check bool) "future proposal rejected" false
    (Linearizability.check late_proposal).linearizable;
  let split = outcome ~proposals:[ (0, 0, 1); (0, 1, 2) ] ~decisions:[ (1, 0, 1); (1, 1, 2) ] () in
  Alcotest.(check bool) "split" false (Linearizability.check split).linearizable;
  let empty = outcome () in
  Alcotest.(check bool) "no decisions is fine" true (Linearizability.check empty).linearizable

(* -- object-level linearizability over KV histories --------------------- *)

module History = Checker.History

let ev ?respond ?ret client key kind invoke =
  { History.client; key; kind; invoke; respond; ret }

let w ?(client = 0) key v invoke respond =
  ev client key (History.Write v) invoke ~respond ~ret:v

let r ?(client = 1) key v invoke respond =
  ev client key History.Read invoke ~respond ~ret:v

let check = Linearizability.check_history

let test_wgl_register_basics () =
  let ok h = (check h).Linearizability.ok in
  Alcotest.(check bool) "empty history" true (ok []);
  Alcotest.(check bool) "sequential write/read" true
    (ok [ w 0 1 0 10; r 0 1 20 30; w 0 2 40 50; r 0 2 60 70 ]);
  Alcotest.(check bool) "unwritten key reads 0" true (ok [ r 5 0 0 10 ]);
  Alcotest.(check bool) "unwritten key cannot read 9" false (ok [ r 5 9 0 10 ]);
  Alcotest.(check bool) "stale read rejected" false
    (ok [ w 0 1 0 10; w 0 2 20 30; r 0 1 40 50 ]);
  Alcotest.(check bool) "real-time order respected" false
    (ok [ w 0 1 0 10; w 0 2 20 30; r 0 2 40 50; r 0 1 60 70 ]);
  (* Concurrent writes may linearize in either order. *)
  Alcotest.(check bool) "concurrent writes, first wins" true
    (ok [ w ~client:0 0 1 0 100; w ~client:1 0 2 0 100; r 0 1 150 160 ]);
  Alcotest.(check bool) "concurrent writes, second wins" true
    (ok [ w ~client:0 0 1 0 100; w ~client:1 0 2 0 100; r 0 2 150 160 ])

let test_wgl_incomplete_ops () =
  let ok h = (check h).Linearizability.ok in
  let w_pending ?(client = 0) key v invoke = ev client key (History.Write v) invoke in
  (* An in-flight write may have taken effect... *)
  Alcotest.(check bool) "incomplete write serves a read" true
    (ok [ w_pending 0 5 0; r 0 5 10 20 ]);
  (* ...or not have happened at all... *)
  Alcotest.(check bool) "incomplete write may never apply" true
    (ok [ w_pending 0 7 0; r 0 0 10 20 ]);
  (* ...but it cannot apply before its own invocation. *)
  Alcotest.(check bool) "incomplete write not before its invoke" false
    (ok [ r 0 7 0 10; w_pending 0 7 50 ]);
  (* Incomplete reads impose nothing. *)
  Alcotest.(check bool) "incomplete read ignored" true
    (ok [ w 0 1 0 10; ev 2 0 History.Read 5 ])

let test_wgl_per_key_composition () =
  (* Per-key and monolithic must agree — linearizability is
     P-compositional over keys. *)
  let histories =
    [
      [ w 0 1 0 10; w 1 5 0 10; r 0 1 20 30; r 1 5 20 30 ];
      [ w 0 1 0 10; w 1 5 0 10; r 0 1 20 30; r 1 9 20 30 ];
      [ w 0 3 0 50; w 1 4 0 50; r ~client:2 0 3 60 70; r ~client:3 1 4 60 70 ];
    ]
  in
  List.iter
    (fun h ->
      let pk = check ~mode:`Per_key h and mono = check ~mode:`Monolithic h in
      Alcotest.(check bool) "verdicts agree" pk.Linearizability.ok
        mono.Linearizability.ok)
    histories

let test_wgl_witness () =
  let h =
    [ w 0 1 0 10; r 0 1 20 30; w 0 2 40 50; r 0 1 60 70; w 0 3 80 90; r 0 3 100 110 ]
  in
  let o = check h in
  Alcotest.(check bool) "violation detected" false o.Linearizability.ok;
  match o.Linearizability.witness with
  | None -> Alcotest.fail "no witness"
  | Some wit ->
      Alcotest.(check (option int)) "offending key" (Some 0) wit.Linearizability.key;
      (* The stale read responds at 70; nothing after it is needed. *)
      Alcotest.(check int) "window ends at the stale read" 70
        wit.Linearizability.window_end;
      Alcotest.(check bool) "window keeps only the contradiction core" true
        (List.length wit.Linearizability.events <= 4);
      Alcotest.(check bool) "witness fails on its own" false
        (check wit.Linearizability.events).Linearizability.ok

let test_wgl_malformed_never_asserts () =
  let malformed =
    [
      [ ev 0 0 (History.Write 1) 10 ~respond:5 ~ret:1 ] (* respond < invoke *);
      [ ev 0 0 (History.Write 1) (-3) ~respond:5 ~ret:1 ] (* negative invoke *);
      [ ev 0 0 History.Read 0 ~respond:10 ] (* complete without ret *);
      [ ev 0 0 History.Read 0 ~ret:3 ] (* incomplete with ret *);
    ]
  in
  List.iter
    (fun h ->
      let o = check h in
      Alcotest.(check bool) "malformed fails" false o.Linearizability.ok;
      match o.Linearizability.reason with
      | Some s ->
          Alcotest.(check bool) "reason says malformed" true
            (String.length s >= 9 && String.sub s 0 9 = "malformed")
      | None -> Alcotest.fail "no reason given")
    malformed

let test_history_serialization_roundtrip () =
  let h =
    History.sort
      [
        w 0 1 0 10; r 0 1 20 30;
        ev 3 7 (History.Write 9) 15 (* in flight *);
        ev 4 2 History.Read 40 ~respond:44 ~ret:0;
      ]
  in
  (match History.of_table (History.to_table h) with
  | Ok h' -> Alcotest.(check bool) "table round-trip" true (h' = h)
  | Error e -> Alcotest.fail e);
  let file = Filename.temp_file "hist" ".rle" in
  History.to_file file h;
  (match History.of_file file with
  | Ok h' -> Alcotest.(check bool) "file round-trip" true (h' = h)
  | Error e -> Alcotest.fail e);
  Sys.remove file;
  let bad =
    { Stdext.Rle.schema = History.schema;
      columns = List.map (fun _ -> [| -7 |]) History.schema }
  in
  match History.of_table bad with
  | Ok _ -> Alcotest.fail "accepted negative cells"
  | Error _ -> ()

(* The headline positive results: the paper's protocol passes its two-step
   definition exactly at its bound. *)
let test_task_two_step_at_bound () =
  let r = Twostep.check_task Core.Rgs.task ~n:6 ~e:2 ~f:2 ~delta ~values:[ 0; 1 ] () in
  Alcotest.(check bool) (Format.asprintf "%a" Twostep.pp_report r) true (Twostep.ok r)

let test_task_two_step_min_system () =
  let r = Twostep.check_task Core.Rgs.task ~n:3 ~e:1 ~f:1 ~delta ~values:[ 0; 1; 2 ] () in
  Alcotest.(check bool) "n=3 e=1 f=1" true (Twostep.ok r)

let test_object_two_step_at_bound () =
  let r = Twostep.check_object Core.Rgs.obj ~n:5 ~e:2 ~f:2 ~delta ~values:[ 0; 1 ] () in
  Alcotest.(check bool) (Format.asprintf "%a" Twostep.pp_report r) true (Twostep.ok r)

let test_fast_paxos_two_step_at_lamport_bound () =
  let r =
    Twostep.check_task Baselines.Fast_paxos.protocol ~n:7 ~e:2 ~f:2 ~delta ~values:[ 0; 1 ]
      ()
  in
  Alcotest.(check bool) "fast paxos at 2e+f+1" true (Twostep.ok r)

let test_paxos_not_two_step () =
  let r = Twostep.check_task Baselines.Paxos.protocol ~n:5 ~e:2 ~f:2 ~delta ~values:[ 0 ] () in
  Alcotest.(check bool) "paxos fails for e=2" false (Twostep.ok r);
  (* and even for e=1: crash the initial leader *)
  let r1 = Twostep.check_task Baselines.Paxos.protocol ~n:3 ~e:1 ~f:1 ~delta ~values:[ 0 ] () in
  Alcotest.(check bool) "paxos fails for e=1" false (Twostep.ok r1)

(* Explorer: every synchronous schedule of a small unanimous run decides
   correctly; conflicting schedules never violate safety. *)
let test_explore_exhaustive_agreement () =
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 2; 1; 0 ] in
  let r =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:4
      ~check:(fun o -> Safety.safe o)
      ()
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check bool) "non-trivial exploration" true (r.explored > 10)

let test_explore_finds_seeded_bug () =
  (* Sanity: the explorer actually detects property violations — use a
     property that is false on runs where p0 decides, and check the
     explorer finds such a run for a unanimous configuration. *)
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 5; 5 ] in
  let r =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
      ~check:(fun o -> Scenario.decided_value o 0 = None)
      ()
  in
  Alcotest.(check bool) "violation found" true (r.violations > 0)

let test_explore_budget_truncation () =
  let n = 4 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3 ] in
  let r =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:4 ~budget:50
      ~check:(fun _ -> true) ()
  in
  Alcotest.(check bool) "budget respected" true (r.explored <= 50);
  Alcotest.(check bool) "truncation reported" true r.truncated

let test_explore_crashes_mid_run () =
  (* Crash the fast decider right after its decision in every schedule;
     agreement must survive all of them. *)
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ] in
  let r =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals
      ~crashes:[ ((2 * delta) + 1, 2) ]
      ~rounds:5 ~disable_timers:false
      ~check:(fun o -> Safety.safe o)
      ()
  in
  Alcotest.(check int) "no violations with mid-run crash" 0 r.violations

(* Cross-validation of the explorer's execution strategies: `Replay
   re-executes every run from time 0, `Snapshot extends cloned engines
   incrementally — they must visit the exact same outcome sets. *)
let check_explore_results_equal label (a : Explore.result) (b : Explore.result) =
  Alcotest.(check int) (label ^ ": explored") a.explored b.explored;
  Alcotest.(check int) (label ^ ": violations") a.violations b.violations;
  Alcotest.(check bool) (label ^ ": truncated") a.truncated b.truncated;
  Alcotest.(check bool)
    (label ^ ": first violation")
    true
    (a.first_violation = b.first_violation)

let test_explore_snapshot_matches_replay () =
  (* T2-style configuration at the task bound (n = 2e + f). *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go mode check =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3 ~budget:400
      ~mode ~check ()
  in
  (* Safety holds everywhere: identical explored counts and no violation. *)
  let safe o = Safety.safe o in
  check_explore_results_equal "safe property" (go `Replay safe) (go `Snapshot safe);
  (* A property that is violated on many runs: the first violation (the
     canonical DFS-order witness) must also coincide. *)
  let p0_undecided o = Scenario.decided_value o 0 = None in
  let r = go `Replay p0_undecided and s = go `Snapshot p0_undecided in
  Alcotest.(check bool) "violations found" true (r.violations > 0);
  check_explore_results_equal "violating property" r s

let test_explore_snapshot_matches_replay_with_crashes () =
  (* T3-flavoured configuration: a mid-run crash of the fast decider, with
     timers enabled. *)
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ] in
  let go mode =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals
      ~crashes:[ ((2 * delta) + 1, 2) ]
      ~rounds:5 ~disable_timers:false ~mode
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let r = go `Replay and s = go `Snapshot in
  Alcotest.(check bool) "non-trivial" true (r.explored > 10);
  check_explore_results_equal "crash config" r s

let test_explore_parallel_deterministic () =
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  (* [clamp_domains:false]: the point is real multi-domain interleaving,
     also on hosts whose recommended domain count would clamp it away. *)
  let go ~mode ~domains ~budget check =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3 ~budget ~mode
      ~domains ~clamp_domains:false ~check ()
  in
  let p0_undecided o = Scenario.decided_value o 0 = None in
  (* Without a binding budget: every (mode, domains) combination agrees. *)
  let base = go ~mode:`Snapshot ~domains:1 ~budget:2_000 p0_undecided in
  List.iter
    (fun (mode, domains) ->
      let r = go ~mode ~domains ~budget:2_000 p0_undecided in
      check_explore_results_equal
        (Printf.sprintf "domains=%d" domains)
        base r)
    [ (`Snapshot, 2); (`Snapshot, 4); (`Replay, 2) ];
  (* With a budget cut mid-branch: the deterministic merge re-imposes the
     sequential cut exactly, so counts and witness still coincide. *)
  let cut = go ~mode:`Snapshot ~domains:1 ~budget:100 p0_undecided in
  Alcotest.(check bool) "budget binds" true cut.truncated;
  let par = go ~mode:`Snapshot ~domains:3 ~budget:100 p0_undecided in
  check_explore_results_equal "budget-cut merge" cut par

(* Property: the shared-budget, work-stealing parallel explorer is
   *byte-identical* to the sequential one on every result field — explored,
   violations, first_violation and truncated — over random small
   configurations covering both execution modes, crash schedules, unclamped
   domain counts and budgets that cut mid-branch. This is the determinism
   contract the merge logic (DFS-order budget re-imposition + subtree
   top-up) must uphold under arbitrary worker scheduling. *)
let explore_parallel_equiv_property =
  QCheck.Test.make ~name:"explore: parallel == sequential on all fields" ~count:14
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let pick l k = List.nth l (seed / k mod List.length l) in
      let n, e, f = pick [ (3, 1, 1); (4, 1, 1) ] 1 in
      let rounds = pick [ 1; 2 ] 2 in
      (* Small budgets land the cut mid-branch; the large one is only
         binding for the wider configurations. *)
      let budget = pick [ 23; 97; 400 ] 4 in
      let mode = pick [ `Snapshot; `Replay ] 12 in
      let domains = pick [ 2; 3; 4 ] 24 in
      let crashes = pick [ []; [ (delta + 1, n - 1) ] ] 72 in
      let proposals = Scenario.all_proposals_at_zero ~n (List.init n (fun i -> n - i)) in
      let go ~domains ~clamp =
        Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~crashes ~rounds
          ~budget ~mode ~domains ~clamp_domains:clamp
          ~check:(fun o -> Scenario.decided_value o 0 = None)
          ()
      in
      let a = go ~domains:1 ~clamp:true in
      let b = go ~domains ~clamp:false in
      a.Explore.explored = b.Explore.explored
      && a.violations = b.violations
      && a.truncated = b.truncated
      && a.first_violation = b.first_violation)

let test_explore_budget_not_duplicated () =
  (* The shared budget pool bounds the total work: across all domains the
     property must be evaluated at most a small factor more often than the
     budget (top-up re-runs of lease-starved subtrees are the only source
     of re-evaluation), where the old per-branch budgets cost up to
     domains x budget. *)
  (* n = 6 at the task bound: the 3-round tree holds 572 runs, so budget
     400 cuts mid-branch. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go ~budget ~domains ~clamp =
    let evals = Atomic.make 0 in
    let r =
      Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3 ~budget
        ~domains ~clamp_domains:clamp ~eval_counter:evals
        ~check:(fun _ -> true)
        ()
    in
    (r, Atomic.get evals)
  in
  (* Budget cuts mid-tree: evaluations stay within 1.25x budget. *)
  let r, evals = go ~budget:400 ~domains:4 ~clamp:false in
  Alcotest.(check int) "explored = budget" 400 r.explored;
  Alcotest.(check bool) "truncated" true r.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "evals within 1.25x budget (got %d)" evals)
    true
    (evals >= 400 && evals <= 500);
  (* Budget not binding: every run evaluated exactly once, nothing extra. *)
  let r1, evals1 = go ~budget:1_000_000 ~domains:1 ~clamp:true in
  let r4, evals4 = go ~budget:1_000_000 ~domains:4 ~clamp:false in
  Alcotest.(check int) "parallel explored = sequential" r1.explored r4.explored;
  Alcotest.(check int) "sequential evals = explored" r1.explored evals1;
  Alcotest.(check int) "parallel evals = explored (exactly once)" r4.explored evals4

(* -- dedup: state-space deduplication soundness and determinism --------- *)

let test_explore_dedup_prunes_and_agrees () =
  (* n = 6 at the task bound: exact dedup must merge converging schedules
     (hits > 0), evaluate strictly fewer runs than the undedup'd search,
     and reach the same verdict. distinct_states < explored(off) is the CI
     smoke assertion: the state graph is smaller than the schedule tree. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go dedup =
    Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
      ~budget:1_000_000 ~dedup
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let off, _ = go Explore.Off in
  let exact, rx = go Explore.Exact in
  let t = rx.Explore.Run_report.totals in
  Alcotest.(check int) "same verdict" off.Explore.violations exact.Explore.violations;
  Alcotest.(check bool) "distinct states counted" true
    (t.Explore.Run_report.distinct_states > 0);
  Alcotest.(check bool) "dedup hits at n=6" true (t.Explore.Run_report.dedup_hits > 0);
  Alcotest.(check bool) "subtrees pruned" true (t.Explore.Run_report.pruned_subtrees > 0);
  Alcotest.(check bool) "fewer runs evaluated" true
    (exact.Explore.explored < off.Explore.explored);
  Alcotest.(check bool) "state graph smaller than schedule tree" true
    (t.Explore.Run_report.distinct_states < off.Explore.explored
     + t.Explore.Run_report.dedup_hits)

(* Soundness property: with an ample budget, [Exact] dedup reaches the same
   verdict as [Off] AND finds the identical first violation — the pruned
   subtrees hang off states already expanded earlier in DFS order, so the
   earliest violating schedule is never pruned and is executed identically.
   [Symmetry] must agree on the verdict for pid-agnostic properties (the
   witness may be a pid permutation of Off's, so it is not compared). *)
let explore_dedup_sound_property =
  QCheck.Test.make ~name:"explore: dedup preserves verdict and canonical witness"
    ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let pick l k = List.nth l (seed / k mod List.length l) in
      let n, e, f = pick [ (3, 1, 1); (4, 1, 1) ] 1 in
      let rounds = pick [ 2; 3 ] 2 in
      let values = pick [ List.init n (fun i -> n - i); List.init n (fun _ -> 5) ] 4 in
      let crashes = pick [ []; [ (delta + 1, n - 1) ] ] 8 in
      let check =
        pick
          [ (fun o -> Safety.safe o); (fun o -> Scenario.decided_value o 0 = None) ]
          16
      in
      let proposals = Scenario.all_proposals_at_zero ~n values in
      let go dedup =
        Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~crashes ~rounds
          ~budget:1_000_000 ~dedup ~check ()
      in
      let off = go Explore.Off in
      let exact = go Explore.Exact in
      let sym = go Explore.Symmetry in
      (off.Explore.violations > 0) = (exact.Explore.violations > 0)
      && off.Explore.first_violation = exact.Explore.first_violation
      && off.Explore.truncated = exact.Explore.truncated
      && (off.Explore.violations > 0) = (sym.Explore.violations > 0))

let test_explore_symmetry_merges_more () =
  (* Unanimous proposals leave pids 1..n-1 fully interchangeable, so pid
     canonicalisation must collapse strictly more states than exact
     hashing — with the same (clean) verdict. *)
  let n = 4 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 5; 5; 5 ] in
  let go dedup =
    Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
      ~budget:1_000_000 ~dedup
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let exact, re = go Explore.Exact in
  let sym, rs = go Explore.Symmetry in
  Alcotest.(check int) "both clean" exact.Explore.violations sym.Explore.violations;
  Alcotest.(check bool)
    (Printf.sprintf "symmetry merges more states (%d < %d)"
       rs.Explore.Run_report.totals.distinct_states
       re.Explore.Run_report.totals.distinct_states)
    true
    (rs.Explore.Run_report.totals.distinct_states
    < re.Explore.Run_report.totals.distinct_states)

let test_explore_dedup_totals_identical () =
  (* The byte-identical-totals contract extended to dedup'd explorations:
     for a fixed dedup mode, all four strategy combinations (Replay /
     Snapshot x sequential / parallel) must report the same totals —
     including the distinct_states / dedup_hits / pruned_subtrees counts,
     which only stay deterministic because exactly one Stateset.add wins
     per key and arrivals are the edges of the (schedule-independent)
     dedup'd state graph. Budget ample: the contract is scoped to
     within-budget-exhaustive explorations. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go ~mode ~domains dedup =
    snd
      (Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
         ~budget:1_000_000 ~mode ~domains ~clamp_domains:false ~dedup
         ~check:(fun o -> Scenario.decided_value o 0 = None)
         ())
  in
  List.iter
    (fun (name, dedup) ->
      let base = go ~mode:`Snapshot ~domains:1 dedup in
      Alcotest.(check bool)
        (name ^ ": dedup active") true
        (base.Explore.Run_report.totals.distinct_states > 0);
      List.iter
        (fun (label, mode, domains) ->
          let r = go ~mode ~domains dedup in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: totals byte-identical" name label)
            true
            (base.Explore.Run_report.totals = r.Explore.Run_report.totals))
        [
          ("replay seq", `Replay, 1);
          ("snapshot par", `Snapshot, 4);
          ("replay par", `Replay, 3);
        ])
    [ ("exact", Explore.Exact); ("symmetry", Explore.Symmetry) ]

(* -- por: sleep-set partial-order reduction soundness ------------------- *)

let test_explore_por_prunes_and_agrees () =
  (* n = 6 at the task bound, dedup off so the reduction is measured on its
     own: sleep-set POR must suppress commuting per-destination delivery
     orders (sleep_hits > 0, por_pruned > 0), evaluate at most half the
     schedules of the unreduced search, and reach the same verdict. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go por =
    Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
      ~budget:1_000_000 ~por
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let off, _ = go Explore.No_por in
  let red, rr = go Explore.Sleep in
  let t = rr.Explore.Run_report.totals in
  Alcotest.(check int) "same verdict" off.Explore.violations red.Explore.violations;
  Alcotest.(check bool) "sleep hits counted" true (t.Explore.Run_report.sleep_hits > 0);
  Alcotest.(check bool) "orders pruned" true (t.Explore.Run_report.por_pruned > 0);
  Alcotest.(check bool)
    (Printf.sprintf "at most half the schedules (%d vs %d)" red.Explore.explored
       off.Explore.explored)
    true
    (red.Explore.explored * 2 <= off.Explore.explored)

(* Soundness property: with an ample budget, [Sleep] POR reaches the same
   verdict as [No_por] and preserves first-violation existence, across
   protocols, configurations, seeds and explored fault bounds. The witness
   schedule itself may differ (POR keeps one representative per commuting
   class), so only its existence is compared. *)
let explore_por_sound_property =
  QCheck.Test.make ~name:"explore: POR preserves verdict and violation existence"
    ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let pick l k = List.nth l (seed / k mod List.length l) in
      let protocol = pick [ Core.Rgs.task; Core.Rgs.obj ] 1 in
      let n, e, f = pick [ (3, 1, 1); (4, 1, 1) ] 2 in
      let rounds = pick [ 2; 3 ] 4 in
      let values = pick [ List.init n (fun i -> n - i); List.init n (fun _ -> 5) ] 8 in
      let faults =
        pick
          [ Explore.no_faults;
            { Explore.max_drops = 1; max_dups = 0 };
            { Explore.max_drops = 0; max_dups = 1 };
          ]
          16
      in
      let check =
        pick
          [ (fun o -> Safety.safe o); (fun o -> Scenario.decided_value o 0 = None) ]
          48
      in
      let proposals = Scenario.all_proposals_at_zero ~n values in
      let go por =
        Explore.synchronous protocol ~n ~e ~f ~delta ~proposals ~rounds
          ~budget:1_000_000 ~faults ~por ~check ()
      in
      let off = go Explore.No_por in
      let red = go Explore.Sleep in
      (off.Explore.violations > 0) = (red.Explore.violations > 0)
      && (off.Explore.first_violation <> None) = (red.Explore.first_violation <> None)
      && off.Explore.truncated = red.Explore.truncated)

let test_explore_por_timer_between_deliveries () =
  (* A timer firing between deliveries is NOT treated as commuting: trial
     execution re-runs the boundary timers inside every candidate order,
     so two orders only collapse when the full engine state — including
     timer effects — coincides. With timers enabled and a mid-run crash
     (the T3-flavoured configuration) the unreduced tree exceeds 10^6
     schedules, so the Off side runs with a bounded budget; the Sleep side
     must complete the SAME tree exhaustively (truncated = false) — the
     sharpest form of the soundness claim: nothing the reduction kept was
     cut by budget, yet verdict and violation existence match the
     unreduced sample. *)
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ] in
  let go ~budget por check =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals
      ~crashes:[ ((2 * delta) + 1, 2) ]
      ~rounds:3 ~disable_timers:false ~budget ~por ~check ()
  in
  let safe o = Safety.safe o in
  let off = go ~budget:20_000 Explore.No_por safe in
  let red = go ~budget:1_000_000 Explore.Sleep safe in
  Alcotest.(check bool) "unreduced tree is timer-inflated" true off.Explore.truncated;
  Alcotest.(check bool) "reduced search exhaustive" true (not red.Explore.truncated);
  Alcotest.(check bool) "reduced search non-trivial" true (red.Explore.explored > 1_000);
  Alcotest.(check int) "clean verdict preserved" off.Explore.violations
    red.Explore.violations;
  (* A property violated on every run that decides p0: the reduction must
     keep (timer-distinguished) violating schedules — every surviving run
     still violates, and a witness exists. *)
  let p0_undecided o = Scenario.decided_value o 0 = None in
  let off_v = go ~budget:20_000 Explore.No_por p0_undecided in
  let red_v = go ~budget:1_000_000 Explore.Sleep p0_undecided in
  Alcotest.(check bool) "violations found without POR" true (off_v.Explore.violations > 0);
  Alcotest.(check int) "every kept run still violates" red_v.Explore.explored
    red_v.Explore.violations;
  Alcotest.(check bool) "witness existence preserved" true
    (red_v.Explore.first_violation <> None)

let test_explore_por_totals_identical () =
  (* The byte-identical-totals contract extended to POR: for a fixed
     (dedup, por) pair, all strategy combinations (Replay / Snapshot x
     sequential / parallel) must report the same totals — including the
     new por_pruned / sleep_hits counters, which stay deterministic
     because trial classification depends only on engine state, never on
     scheduling. Budget ample: scoped to within-budget explorations. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go ~mode ~domains dedup =
    snd
      (Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
         ~budget:1_000_000 ~mode ~domains ~clamp_domains:false ~dedup ~por:Explore.Sleep
         ~check:(fun o -> Scenario.decided_value o 0 = None)
         ())
  in
  List.iter
    (fun (name, dedup) ->
      let base = go ~mode:`Snapshot ~domains:1 dedup in
      Alcotest.(check bool)
        (name ^ ": POR active") true
        (base.Explore.Run_report.totals.sleep_hits > 0
        || base.Explore.Run_report.totals.por_pruned > 0);
      List.iter
        (fun (label, mode, domains) ->
          let r = go ~mode ~domains dedup in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: totals byte-identical" name label)
            true
            (base.Explore.Run_report.totals = r.Explore.Run_report.totals))
        [
          ("replay seq", `Replay, 1);
          ("snapshot par", `Snapshot, 4);
          ("replay par", `Replay, 3);
        ])
    [ ("por only", Explore.Off); ("por + exact dedup", Explore.Exact) ]

(* -- swarm: seeded randomized walkers ----------------------------------- *)

let test_swarm_deterministic () =
  (* The swarm contract: walker trajectories depend only on (seed, walker
     index) and fixed budget shares, so the full Swarm_report — runs,
     coverage, POR counters — is byte-identical across repeated calls and
     across domain counts. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go ~domains =
    Explore.swarm_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
      ~budget:300 ~walkers:4 ~seed:11 ~domains ~clamp_domains:false
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let r1, s1 = go ~domains:1 in
  let r2, s2 = go ~domains:1 in
  let r4, s4 = go ~domains:4 in
  Alcotest.(check bool) "repeat run identical" true (s1 = s2);
  Alcotest.(check bool) "domain count irrelevant" true (s1 = s4);
  Alcotest.(check bool) "results identical too" true (r1 = r2 && r1 = r4);
  Alcotest.(check int) "runs = budget" 300 s1.Explore.Swarm_report.runs;
  Alcotest.(check bool) "always a sample, never a proof" true r1.Explore.truncated;
  Alcotest.(check int) "clean sweep" 0 r1.Explore.violations;
  Alcotest.(check bool) "coverage counted" true
    (s1.Explore.Swarm_report.distinct_states > 0)

let test_swarm_coverage_and_violations () =
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  (* Coverage is measured in the same (state, round) currency as the
     exhaustive explorer: a swarm sample can never cover more distinct
     states than the exhaustive search counts. *)
  let _, exhaustive =
    Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
      ~budget:1_000_000 ~dedup:Explore.Exact
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let _, s =
    Explore.swarm_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3 ~budget:200
      ~walkers:4 ~seed:3
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let exhaustive_distinct =
    exhaustive.Explore.Run_report.totals.Explore.Run_report.distinct_states
  in
  Alcotest.(check bool)
    (Printf.sprintf "swarm coverage bounded by state graph (%d <= %d)"
       s.Explore.Swarm_report.distinct_states exhaustive_distinct)
    true
    (s.Explore.Swarm_report.distinct_states <= exhaustive_distinct);
  (* Violation plumbing: a property false everywhere is flagged on every
     run and yields a witness. *)
  let r, sv =
    Explore.swarm_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3 ~budget:50
      ~walkers:2 ~seed:5
      ~check:(fun _ -> false)
      ()
  in
  Alcotest.(check int) "every run violates" sv.Explore.Swarm_report.runs
    r.Explore.violations;
  Alcotest.(check bool) "witness produced" true (r.Explore.first_violation <> None);
  (* distinct-states/sec is a plain division. *)
  Alcotest.(check (float 0.001)) "coverage rate"
    (float_of_int sv.Explore.Swarm_report.distinct_states /. 2.0)
    (Explore.Swarm_report.distinct_states_per_sec sv ~wall_s:2.0)

(* -- telemetry: run reports and the fast-path report -------------------- *)

module Report = Checker.Report
module Metrics = Stdext.Metrics

(* The Run_report determinism contract: [totals] is byte-identical across
   sequential, parallel (unclamped domains), `Replay and `Snapshot
   executions — with and without a budget cut mid-branch. [sched] is
   explicitly scheduling-dependent and not compared. *)
let test_run_report_totals_identical () =
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let go ~mode ~domains ~budget =
    snd
      (Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:3
         ~budget ~mode ~domains ~clamp_domains:false
         ~check:(fun o -> Scenario.decided_value o 0 = None)
         ())
  in
  List.iter
    (fun budget ->
      let base = go ~mode:`Snapshot ~domains:1 ~budget in
      Alcotest.(check bool) "non-trivial" true (base.Explore.Run_report.totals.explored > 10);
      List.iter
        (fun (label, mode, domains) ->
          let r = go ~mode ~domains ~budget in
          Alcotest.(check bool)
            (Printf.sprintf "budget=%d %s: totals byte-identical" budget label)
            true
            (Explore.Run_report.totals_equal base.Explore.Run_report.totals
               r.Explore.Run_report.totals
            && base.Explore.Run_report.totals = r.Explore.Run_report.totals))
        [
          ("replay seq", `Replay, 1);
          ("snapshot par", `Snapshot, 4);
          ("replay par", `Replay, 3);
        ])
    [ 400; 2_000 ];
  (* Derived figures come out of the shared totals. *)
  let r = go ~mode:`Snapshot ~domains:2 ~budget:2_000 in
  let t = r.Explore.Run_report.totals in
  Alcotest.(check bool) "fast rate in [0,1]" true
    (Explore.Run_report.fast_path_rate t >= 0. && Explore.Run_report.fast_path_rate t <= 1.);
  Alcotest.(check int) "depth histogram covers explored" t.explored
    (Array.fold_left ( + ) 0 t.depth_histogram)

(* The headline telemetry numbers of `twostep report`: at the tight system
   sizes the two-step protocols are fast for EVERY target (the existential
   definition: each target decides in two delays in its favored run), while
   leader-based Paxos is fast only for its leader. *)
let test_report_fast_path_rates () =
  let rate (p : Proto.Protocol.t) ~n =
    let r = Report.conflict_free p ~n ~e:2 ~f:2 ~delta () in
    Alcotest.(check int) (r.Report.protocol ^ ": all targets decide") n r.Report.decided;
    r.Report.fast_path_rate
  in
  Alcotest.(check (float 0.001)) "rgs-task 1.0 at n=2e+f" 1.0 (rate Core.Rgs.task ~n:6);
  Alcotest.(check (float 0.001)) "rgs-object 1.0 at n=2e+f-1" 1.0 (rate Core.Rgs.obj ~n:5);
  Alcotest.(check (float 0.001)) "fast-paxos 1.0 at n=2e+f+1" 1.0
    (rate Baselines.Fast_paxos.protocol ~n:7);
  let paxos = rate Baselines.Paxos.protocol ~n:5 in
  Alcotest.(check bool) "paxos below 1.0" true (paxos < 1.0);
  Alcotest.(check (float 0.001)) "paxos fast only for its leader" 0.2 paxos;
  (* default n is the protocol's tight bound *)
  let d = Report.conflict_free Core.Rgs.task ~e:2 ~f:2 ~delta () in
  Alcotest.(check int) "default n = min_n" 6 d.Report.n;
  (* recording mirrors the report into report.* metrics *)
  let registry = Metrics.create () in
  let r = Report.conflict_free Core.Rgs.task ~n:6 ~e:2 ~f:2 ~delta ~metrics:registry () in
  Alcotest.(check int) "report.fast counter" r.Report.fast
    (Metrics.get_counter registry "report.rgs-task.fast");
  Alcotest.(check int) "engine probe mirrored too" r.Report.messages
    (Metrics.get_counter registry "engine.sent")

(* Property: the engine's metrics mirror and the scenario outcome (itself
   recomputed from the trace) agree on every counter, across protocols,
   network modes, seeds and random fault plans. *)
let metrics_match_trace_property =
  QCheck.Test.make ~name:"metrics == trace counts (protocol x net x seed)" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let pick l k = List.nth l (seed / k mod List.length l) in
      let protocol =
        pick
          [ Core.Rgs.task; Core.Rgs.obj; Baselines.Paxos.protocol;
            Baselines.Fast_paxos.protocol ]
          1
      in
      let n = 3 and e = 1 and f = 1 in
      let net =
        pick
          [ Scenario.Sync `Arrival; Scenario.Sync (`Favor (seed mod n));
            Scenario.Uniform { min_delay = 1; max_delay = delta } ]
          4
      in
      let faults =
        pick
          [ Dsim.Network.Fault.none;
            Dsim.Network.Fault.random ~drop_rate:0.1 ~dup_rate:0.1 ~max_drops:2
              ~max_dups:2 ();
          ]
          12
      in
      let registry = Metrics.create () in
      let outcome =
        Scenario.run protocol ~n ~e ~f ~delta ~net
          ~proposals:(Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ])
          ~seed ~faults ~metrics:registry ~until:(10 * delta) ()
      in
      let c name = Metrics.get_counter registry name in
      c "engine.sent" = outcome.Scenario.messages
      && c "engine.dropped" = outcome.Scenario.dropped
      && c "engine.duplicated" = outcome.Scenario.duplicated
      && c "engine.decides" = List.length outcome.Scenario.decisions
      && c "engine.crashes" = List.length outcome.Scenario.crashes)

let () =
  Alcotest.run "checker"
    [
      ( "safety",
        [
          Alcotest.test_case "verdicts" `Quick test_safety_verdicts;
          Alcotest.test_case "linearizability" `Quick test_linearizability;
        ] );
      ( "wgl",
        [
          Alcotest.test_case "register basics" `Quick test_wgl_register_basics;
          Alcotest.test_case "incomplete ops" `Quick test_wgl_incomplete_ops;
          Alcotest.test_case "per-key = monolithic" `Quick test_wgl_per_key_composition;
          Alcotest.test_case "witness minimization" `Quick test_wgl_witness;
          Alcotest.test_case "malformed never asserts" `Quick
            test_wgl_malformed_never_asserts;
          Alcotest.test_case "history serialization" `Quick
            test_history_serialization_roundtrip;
        ] );
      ( "twostep",
        [
          Alcotest.test_case "task at bound" `Quick test_task_two_step_at_bound;
          Alcotest.test_case "task minimal system" `Quick test_task_two_step_min_system;
          Alcotest.test_case "object at bound" `Quick test_object_two_step_at_bound;
          Alcotest.test_case "fast paxos at Lamport bound" `Quick test_fast_paxos_two_step_at_lamport_bound;
          Alcotest.test_case "paxos is not two-step" `Quick test_paxos_not_two_step;
        ] );
      ( "explore",
        [
          Alcotest.test_case "exhaustive agreement" `Quick test_explore_exhaustive_agreement;
          Alcotest.test_case "detects violations" `Quick test_explore_finds_seeded_bug;
          Alcotest.test_case "budget truncation" `Quick test_explore_budget_truncation;
          Alcotest.test_case "mid-run crashes" `Quick test_explore_crashes_mid_run;
          Alcotest.test_case "snapshot matches replay" `Quick
            test_explore_snapshot_matches_replay;
          Alcotest.test_case "snapshot matches replay (crashes)" `Quick
            test_explore_snapshot_matches_replay_with_crashes;
          Alcotest.test_case "parallel determinism" `Quick
            test_explore_parallel_deterministic;
          Alcotest.test_case "shared budget not duplicated" `Quick
            test_explore_budget_not_duplicated;
          QCheck_alcotest.to_alcotest explore_parallel_equiv_property;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "prunes and agrees at n=6" `Quick
            test_explore_dedup_prunes_and_agrees;
          Alcotest.test_case "symmetry merges more" `Quick test_explore_symmetry_merges_more;
          Alcotest.test_case "totals identical across strategies" `Quick
            test_explore_dedup_totals_identical;
          QCheck_alcotest.to_alcotest explore_dedup_sound_property;
        ] );
      ( "por",
        [
          Alcotest.test_case "prunes and agrees at n=6" `Quick
            test_explore_por_prunes_and_agrees;
          Alcotest.test_case "timers defeat commutation soundly" `Quick
            test_explore_por_timer_between_deliveries;
          Alcotest.test_case "totals identical across strategies" `Quick
            test_explore_por_totals_identical;
          QCheck_alcotest.to_alcotest explore_por_sound_property;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "deterministic across runs and domains" `Quick
            test_swarm_deterministic;
          Alcotest.test_case "coverage bounded, violations plumbed" `Quick
            test_swarm_coverage_and_violations;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "run report totals identical across modes" `Quick
            test_run_report_totals_identical;
          Alcotest.test_case "fast-path rates at the bounds" `Quick
            test_report_fast_path_rates;
          QCheck_alcotest.to_alcotest metrics_match_trace_property;
        ] );
    ]
