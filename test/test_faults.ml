(* Protocol-level fault-injection tests: safety sweeps for every protocol
   under randomized loss/duplication/crash plans, the duplication-
   invariance property that pins the delivery contract, the duplicate-
   suppression mutation test, and determinism of the fault-aware
   explorer across modes and domain counts. *)

module Pid = Dsim.Pid
module Network = Dsim.Network
module Scenario = Checker.Scenario
module Safety = Checker.Safety
module Explore = Checker.Explore

let delta = 100

(* The four protocols at their tight configurations: rgs task (n = 2e+f),
   rgs object (n = max(e+2f? — Theorem 5 object bound) = 5 at e=f=2),
   Paxos (n = 2f+1), Fast Paxos (n = 2e+f+1, Lamport's bound). *)
let tight_configs =
  [
    (Core.Rgs.task, 6, 2, 2);
    (Core.Rgs.obj, 5, 2, 2);
    (Baselines.Paxos.protocol, 5, 0, 2);
    (Baselines.Fast_paxos.protocol, 7, 2, 2);
  ]

(* -- T1-style safety sweeps under fault plans --------------------------- *)

(* Faults may stall termination (a lost message is a lost message), but
   validity and agreement must survive any bounded loss + duplication +
   crash combination. *)
let fault_sweep_property (protocol, n, e, f) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s n=%d e=%d f=%d: safe under loss+dup+crash"
         (Proto.Protocol.name protocol) n e f)
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Stdext.Rng.create ~seed in
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> Stdext.Rng.int rng 3))
      in
      let count = Stdext.Rng.int rng (f + 1) in
      let crashes =
        Stdext.Rng.shuffle rng (Pid.all ~n)
        |> List.filteri (fun i _ -> i < count)
        |> List.map (fun p -> (Stdext.Rng.int rng (8 * delta), p))
      in
      let faults =
        Network.Fault.random ~drop_rate:0.1 ~dup_rate:0.15 ~max_drops:6 ~max_dups:8
          ~max_extra_delay:(2 * delta) ()
      in
      let o =
        Scenario.run protocol ~n ~e ~f ~delta
          ~net:
            (Scenario.Partial
               { gst = Stdext.Rng.int rng (15 * delta); max_pre_gst = 6 * delta })
          ~proposals ~crashes ~seed ~faults ~until:(80 * delta) ()
      in
      Safety.safe o)

(* -- duplication never changes decided values --------------------------- *)

(* The delivery contract of {!Proto.Votes.add}: vote tallies are keyed by
   sender, so a duplicated message is absorbed without any state change.
   Consequently a dup-only fault plan must reproduce the fault-free
   decisions exactly — same values, same deciders. [`Arrival] and
   [`Favor] orders keep the per-batch processing comparable (a
   [`Random] order would legitimately reshuffle each batch, since the
   shuffle consumes draws per batch member); the fault layer guarantees
   the base delay stream is untouched either way. *)
let dup_invariance_property (protocol, n, e, f) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s n=%d e=%d f=%d: duplication never changes decisions"
         (Proto.Protocol.name protocol) n e f)
    ~count:40
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, favor) ->
      let rng = Stdext.Rng.create ~seed in
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> Stdext.Rng.int rng 3))
      in
      let net = Scenario.Sync (if favor then `Favor (Stdext.Rng.int rng n) else `Arrival) in
      let decisions faults =
        let o =
          Scenario.run protocol ~n ~e ~f ~delta ~net ~proposals ~seed ~faults
            ~until:(40 * delta) ()
        in
        List.sort compare (List.map (fun (_, p, v) -> (p, v)) o.Scenario.decisions)
      in
      let base = decisions Network.Fault.none in
      let duplicated =
        decisions
          (Network.Fault.random ~dup_rate:0.5 ~max_dups:12 ~max_extra_delay:(2 * delta)
             ())
      in
      base = duplicated)

(* -- explorer: faults as explored nondeterminism ------------------------ *)

let check_explore_results_equal label (a : Explore.result) (b : Explore.result) =
  Alcotest.(check int) (label ^ ": explored") a.explored b.explored;
  Alcotest.(check int) (label ^ ": violations") a.violations b.violations;
  Alcotest.(check bool) (label ^ ": truncated") a.truncated b.truncated;
  Alcotest.(check bool) (label ^ ": first violation") true
    (a.first_violation = b.first_violation)

let test_explore_faults_extend_search () =
  (* Fault bounds strictly enlarge the schedule space, with the no-fault
     schedules as a prefix (subsets are enumerated smallest-first). *)
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ] in
  let go faults =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:2
      ~budget:100_000 ~faults
      ~check:(fun o -> Safety.safe o)
      ()
  in
  let base = go Explore.no_faults in
  let faulty = go { max_drops = 1; max_dups = 1 } in
  Alcotest.(check int) "base has no violations" 0 base.violations;
  Alcotest.(check int) "faulty has no violations" 0 faulty.violations;
  Alcotest.(check bool) "fault branching enlarges the space" true
    (faulty.explored > 2 * base.explored);
  (* Some explored runs actually exercised faults. *)
  let saw_faults = ref false in
  let r =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:2
      ~budget:100_000
      ~faults:{ max_drops = 1; max_dups = 1 }
      ~check:(fun o ->
        if o.Scenario.dropped > 0 || o.Scenario.duplicated > 0 then saw_faults := true;
        true)
      ()
  in
  Alcotest.(check int) "same space" faulty.explored r.explored;
  Alcotest.(check bool) "faulty runs were visited" true !saw_faults

let test_explore_faults_safety_sweep () =
  (* Bounded-exhaustive sweep under <=1 drop and <=1 dup: the task
     protocol at a small config and Fast Paxos at its bound stay safe on
     every explored faulty schedule. *)
  List.iter
    (fun (protocol, n, e, f, budget) ->
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun i -> i mod 2))
      in
      let r =
        Explore.synchronous protocol ~n ~e ~f ~delta ~proposals ~rounds:3 ~budget
          ~faults:{ max_drops = 1; max_dups = 1 }
          ~check:(fun o -> Safety.safe o)
          ()
      in
      Alcotest.(check int)
        (Proto.Protocol.name protocol ^ ": no safety violation under faults")
        0 r.violations;
      Alcotest.(check bool)
        (Proto.Protocol.name protocol ^ ": non-trivial")
        true (r.explored > 100))
    [
      (Core.Rgs.task, 3, 1, 1, 4_000);
      (Baselines.Fast_paxos.protocol, 4, 1, 1, 4_000);
    ]

let test_explore_faults_modes_and_domains_agree () =
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ] in
  let go ~mode ~domains ~budget check =
    Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta ~proposals ~rounds:2 ~budget
      ~faults:{ max_drops = 1; max_dups = 1 }
      ~mode ~domains ~clamp_domains:false ~check ()
  in
  (* A property violated on many (but not all) runs: any divergence in
     visit order or fault accounting would show in the canonical first
     violation. Runs that lost a message are "violations" here. *)
  let lossless o = o.Scenario.dropped = 0 in
  let base = go ~mode:`Snapshot ~domains:1 ~budget:3_000 lossless in
  Alcotest.(check bool) "violations found" true (base.violations > 0);
  List.iter
    (fun (mode, domains) ->
      check_explore_results_equal
        (Printf.sprintf "mode=%s domains=%d"
           (match mode with `Replay -> "replay" | `Snapshot -> "snapshot")
           domains)
        base
        (go ~mode ~domains ~budget:3_000 lossless))
    [ (`Replay, 1); (`Snapshot, 2); (`Replay, 3); (`Snapshot, 4) ];
  (* Under a binding budget the DFS-order cut must also coincide. *)
  let tight = go ~mode:`Snapshot ~domains:1 ~budget:400 lossless in
  Alcotest.(check bool) "budget binds" true tight.truncated;
  List.iter
    (fun (mode, domains) ->
      check_explore_results_equal
        (Printf.sprintf "tight mode=%s domains=%d"
           (match mode with `Replay -> "replay" | `Snapshot -> "snapshot")
           domains)
        tight
        (go ~mode ~domains ~budget:400 lossless))
    [ (`Replay, 1); (`Snapshot, 3) ]

(* -- mutation test: duplicate-vote suppression is load-bearing ---------- *)

(* Fast Paxos counts [2B] votes toward its fast quorum n-e. With
   suppression on (supporters are a set), duplicated votes are absorbed;
   counting raw arrivals instead lets a duplicated vote push a value over
   the quorum at one observer but not another, splitting the decision.
   The sweep below pins that: under a dup-heavy plan some seed violates
   agreement iff suppression is disabled. *)
let mutation_seeds = List.init 30 Fun.id

let run_fast_paxos_dup_storm seed =
  let n = 7 and e = 2 and f = 2 in
  (* 4 votes for value 0, 3 for value 1: one dup can fake quorum for 0,
     two dups can fake it for 1. *)
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 0; 0; 0; 1; 1; 1 ] in
  Scenario.run Baselines.Fast_paxos.protocol ~n ~e ~f ~delta
    ~net:(Scenario.Uniform { min_delay = 1; max_delay = 2 * delta })
    ~proposals ~seed
    ~faults:
      (* The dup budget must not bind: Propose/Decide traffic also gets
         duplicated and would otherwise eat it before the votes fly. *)
      (Network.Fault.random ~dup_rate:0.9 ~max_dups:10_000 ~max_extra_delay:delta ())
    ~until:(60 * delta) ()

let test_mutation_duplicate_suppression () =
  (* Unmutated: every seed is safe under the same duplication storm. *)
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "unmutated safe (seed %d)" seed)
        true
        (Safety.safe (run_fast_paxos_dup_storm seed)))
    mutation_seeds;
  (* Mutated (raw vote counting): at least one seed must split the
     decision — removing duplicate suppression is detected. *)
  let violations =
    Proto.Votes.Mutation.without_duplicate_suppression (fun () ->
        List.filter
          (fun seed -> not (Safety.safe (run_fast_paxos_dup_storm seed)))
          mutation_seeds)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mutant caught (%d violating seeds)" (List.length violations))
    true
    (violations <> [])

let () =
  Alcotest.run "faults"
    [
      ( "sweeps",
        List.map (fun c -> QCheck_alcotest.to_alcotest (fault_sweep_property c))
          tight_configs );
      ( "dup invariance",
        List.map (fun c -> QCheck_alcotest.to_alcotest (dup_invariance_property c))
          tight_configs );
      ( "explorer",
        [
          Alcotest.test_case "fault branching extends search" `Quick
            test_explore_faults_extend_search;
          Alcotest.test_case "bounded fault sweep is safe" `Quick
            test_explore_faults_safety_sweep;
          Alcotest.test_case "modes and domains agree" `Quick
            test_explore_faults_modes_and_domains_agree;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "duplicate suppression is load-bearing" `Quick
            test_mutation_duplicate_suppression;
        ] );
    ]
