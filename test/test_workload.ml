(* Tests for the workload generators and WAN topologies. *)

module Rng = Stdext.Rng
module Topology = Workload.Topology
module Conflict = Workload.Conflict

let test_topology_presets_sane () =
  List.iter
    (fun topo ->
      let k = List.length (Topology.regions topo) in
      Alcotest.(check bool) "has regions" true (k >= 1);
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          let d = Topology.oneway topo i j in
          Alcotest.(check bool) "positive" true (d >= 1);
          Alcotest.(check int) "symmetric" d (Topology.oneway topo j i)
        done
      done)
    Topology.presets

let test_topology_triangle_quality () =
  (* Not a strict triangle inequality (real networks violate it), but no
     entry should dwarf the two-hop alternative absurdly: sanity bound. *)
  let topo = Topology.planet5 in
  let m = Topology.max_oneway topo in
  Alcotest.(check bool) "max is tokyo-frankfurt range" true (m >= 100 && m <= 200)

let test_placement_round_robin () =
  let topo = Topology.planet5 in
  Alcotest.(check string) "pid 0" "virginia" (Topology.region_of_pid topo 0);
  Alcotest.(check string) "pid 5 wraps" "virginia" (Topology.region_of_pid topo 5);
  Alcotest.(check string) "pid 6 wraps" "oregon" (Topology.region_of_pid topo 6)

let test_latency_fn () =
  let topo = Topology.three_az in
  Alcotest.(check int) "cross az" 2 (Topology.latency_fn topo ~src:0 ~dst:1);
  Alcotest.(check int) "same az (wrapped pids)" 1 (Topology.latency_fn topo ~src:0 ~dst:3)

let test_conflict_extremes () =
  let rng = Rng.create ~seed:1 in
  let unanimous = Conflict.proposals ~rng ~n:6 ~rate:0.0 in
  Alcotest.(check bool) "rate 0: no conflict" false (Conflict.is_conflicting unanimous);
  let all_distinct = Conflict.proposals ~rng ~n:6 ~rate:1.0 in
  let values = List.map (fun (_, _, v) -> v) all_distinct in
  Alcotest.(check int) "rate 1: all distinct" 6
    (List.length (List.sort_uniq compare values))

let conflict_rate_property =
  QCheck.Test.make ~name:"conflict rate is monotone-ish in expectation" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let count rate =
        let hits = ref 0 in
        for _ = 1 to 50 do
          if Conflict.is_conflicting (Conflict.proposals ~rng ~n:5 ~rate) then incr hits
        done;
        !hits
      in
      count 0.0 = 0 && count 1.0 = 50)

let test_conflict_key () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 200 do
    Alcotest.(check int) "keys=1 is always hot" 0 (Conflict.key ~rng ~keys:1 ~hot_rate:0.0)
  done;
  let hot = ref 0 and seen = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    let k = Conflict.key ~rng ~keys:10 ~hot_rate:0.3 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10);
    if k = 0 then incr hot;
    Hashtbl.replace seen k ()
  done;
  Alcotest.(check bool) "hot key overrepresented" true (!hot > 400 && !hot < 900);
  Alcotest.(check bool) "cold keys all reachable" true (Hashtbl.length seen = 10);
  Alcotest.check_raises "keys < 1" (Invalid_argument "Conflict.key: keys < 1")
    (fun () -> ignore (Conflict.key ~rng ~keys:0 ~hot_rate:0.1))

let test_stats_percentile () =
  let module Stats = Stdext.Stats in
  let xs = [| 5; 1; 4; 2; 3 |] in
  Alcotest.(check int) "p0 = min" 1 (Stats.percentile xs 0.0);
  Alcotest.(check int) "p100 = max" 5 (Stats.percentile xs 100.0);
  Alcotest.(check int) "p50 = median" 3 (Stats.p50 xs);
  Alcotest.(check int) "p99 of 5 = max" 5 (Stats.p99 xs);
  (* An empty sample used to silently report percentile 0 — it must be an
     error (or [None] through the option API), never a fake number. *)
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty sample array") (fun () ->
      ignore (Stats.p50 [||]));
  Alcotest.(check (option int)) "empty via option" None (Stats.p50_opt [||]);
  Alcotest.(check (option int)) "p99_opt on data" (Some 5) (Stats.p99_opt xs);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  (* Large samples must not overflow the mean accumulator. *)
  Alcotest.(check bool) "mean of huge values stays positive" true
    (Stats.mean [| max_int; max_int; max_int |] > 0.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs 101.0))

let fleet_cfg ?(read_rate = 0.0) arrival =
  { Workload.Fleet.clients = 12; arrival; keys = 8; hot_rate = 0.2; read_rate;
    horizon = 4_000; tick = 50 }

let run_fleet ?(seed = 1) ?(pipeline = 8) ?(batch_max = 16) ?read_rate ?faults ?mutation
    ?(protocol = Core.Rgs.obj) arrival =
  Workload.Fleet.run ~protocol ~e:2 ~f:2
    ~topology:Workload.Topology.planet5 ~pipeline ~batch_max ~seed ?faults ?mutation
    (fleet_cfg ?read_rate arrival)

let test_fleet_closed_loop_completes () =
  let r = run_fleet (Workload.Fleet.Closed { think = 100 }) in
  Alcotest.(check bool) "converged" true r.Workload.Fleet.converged;
  Alcotest.(check bool) "some commands completed" true (r.Workload.Fleet.completed > 0);
  Alcotest.(check int) "one latency per completion"
    r.Workload.Fleet.completed
    (Array.length r.Workload.Fleet.latencies);
  Alcotest.(check bool) "completed <= submitted" true
    (r.Workload.Fleet.completed <= r.Workload.Fleet.submitted);
  Array.iter
    (fun l -> Alcotest.(check bool) "latency nonnegative, within horizon" true
        (l >= 0 && l <= r.Workload.Fleet.horizon))
    r.Workload.Fleet.latencies

let test_fleet_open_loop_completes () =
  let r = run_fleet (Workload.Fleet.Open { rate_per_client = 2.0 }) in
  Alcotest.(check bool) "converged" true r.Workload.Fleet.converged;
  Alcotest.(check bool) "some commands completed" true (r.Workload.Fleet.completed > 0);
  Alcotest.(check bool) "batching engaged" true (r.Workload.Fleet.max_batch >= 1)

let test_fleet_determinism () =
  List.iter
    (fun arrival ->
      let a = run_fleet arrival and b = run_fleet arrival in
      Alcotest.(check int) "same submitted" a.Workload.Fleet.submitted
        b.Workload.Fleet.submitted;
      Alcotest.(check int) "same completed" a.Workload.Fleet.completed
        b.Workload.Fleet.completed;
      Alcotest.(check bool) "byte-identical latency samples" true
        (a.Workload.Fleet.latencies = b.Workload.Fleet.latencies))
    [ Workload.Fleet.Closed { think = 100 };
      Workload.Fleet.Open { rate_per_client = 2.0 } ]

(* -- fleet histories and the linearizability checker ------------------- *)

let open_arrival = Workload.Fleet.Open { rate_per_client = 2.0 }

let test_fleet_history_recorded () =
  let r = run_fleet ~read_rate:0.3 open_arrival in
  let h = r.Workload.Fleet.history in
  Alcotest.(check int) "one event per submitted op" r.Workload.Fleet.submitted
    (List.length h);
  let complete =
    List.filter (fun (e : Checker.History.event) -> e.respond <> None) h
  in
  Alcotest.(check int) "completed ops have responses" r.Workload.Fleet.completed
    (List.length complete);
  List.iter
    (fun (e : Checker.History.event) ->
      Alcotest.(check bool) "complete events carry a return" true (e.ret <> None);
      match e.respond with
      | Some t -> Alcotest.(check bool) "respond after invoke" true (t >= e.invoke)
      | None -> ())
    complete;
  Alcotest.(check bool) "some reads in the mix" true
    (List.exists (fun (e : Checker.History.event) -> e.kind = Checker.History.Read) h)

(* Regression: the outstanding table used to keep one entry per distinct
   command word forever (drained queues were never removed), so it grew
   with [submitted] instead of with the in-flight count. *)
let test_fleet_outstanding_reclaimed () =
  let r = run_fleet ~read_rate:0.3 open_arrival in
  Alcotest.(check bool)
    (Printf.sprintf "outstanding %d bounded by in-flight %d"
       r.Workload.Fleet.outstanding_end
       (r.Workload.Fleet.submitted - r.Workload.Fleet.completed))
    true
    (r.Workload.Fleet.outstanding_end
    <= r.Workload.Fleet.submitted - r.Workload.Fleet.completed)

let drop_dup_faults =
  Dsim.Network.Fault.random ~drop_rate:0.02 ~dup_rate:0.02 ~max_drops:32
    ~max_dups:32 ~max_extra_delay:200 ()

let protocols =
  [ ("rgs-task", Core.Rgs.task); ("rgs-object", Core.Rgs.obj);
    ("paxos", Baselines.Paxos.protocol); ("fast-paxos", Baselines.Fast_paxos.protocol);
    ("epaxos", Epaxos.protocol) ]

let test_fleet_histories_linearizable () =
  List.iter
    (fun (name, protocol) ->
      List.iter
        (fun (fname, faults) ->
          let r = run_fleet ~read_rate:0.3 ~protocol ?faults open_arrival in
          let o = Checker.Linearizability.check_history r.Workload.Fleet.history in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s linearizable (%s)" name fname
               (Option.value ~default:"" o.reason))
            true o.ok)
        [ ("fault-free", None); ("drop/dup", Some drop_dup_faults) ])
    protocols

let test_fleet_stale_reads_flagged () =
  let r =
    run_fleet ~read_rate:0.4 ~protocol:Core.Rgs.task
      ~mutation:(Smr.Replica.Stale_reads 1) open_arrival
  in
  let o = Checker.Linearizability.check_history r.Workload.Fleet.history in
  Alcotest.(check bool) "stale-read replica is caught" false o.ok;
  match o.witness with
  | None -> Alcotest.fail "no witness for the violation"
  | Some w ->
      Alcotest.(check bool) "witness window is non-empty" true (w.events <> []);
      Alcotest.(check bool) "window bounds ordered" true
        (w.window_start <= w.window_end);
      (* The witness must stand on its own: checking just the window's
         events (with a free initial value) still fails. *)
      Alcotest.(check bool) "witness window itself fails" false
        (Checker.Linearizability.check_history w.events).ok

let test_proposer_subset () =
  let rng = Rng.create ~seed:3 in
  let ps = Conflict.proposer_subset ~rng ~n:7 ~count:3 ~rate:0.5 in
  Alcotest.(check int) "three proposers" 3 (List.length ps);
  let pids = List.map (fun (_, p, _) -> p) ps in
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare pids))

let () =
  Alcotest.run "workload"
    [
      ( "topology",
        [
          Alcotest.test_case "presets sane" `Quick test_topology_presets_sane;
          Alcotest.test_case "planet5 magnitudes" `Quick test_topology_triangle_quality;
          Alcotest.test_case "round-robin placement" `Quick test_placement_round_robin;
          Alcotest.test_case "latency function" `Quick test_latency_fn;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "extremes" `Quick test_conflict_extremes;
          QCheck_alcotest.to_alcotest conflict_rate_property;
          Alcotest.test_case "proposer subset" `Quick test_proposer_subset;
          Alcotest.test_case "hot/cold key draw" `Quick test_conflict_key;
        ] );
      ( "stats",
        [ Alcotest.test_case "percentiles" `Quick test_stats_percentile ] );
      ( "fleet",
        [
          Alcotest.test_case "closed loop completes" `Quick test_fleet_closed_loop_completes;
          Alcotest.test_case "open loop completes" `Quick test_fleet_open_loop_completes;
          Alcotest.test_case "same seed, same samples" `Quick test_fleet_determinism;
          Alcotest.test_case "history recorded" `Quick test_fleet_history_recorded;
          Alcotest.test_case "outstanding reclaimed" `Quick test_fleet_outstanding_reclaimed;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "all protocols, fault-free and drop/dup" `Slow
            test_fleet_histories_linearizable;
          Alcotest.test_case "stale-read mutation flagged" `Quick
            test_fleet_stale_reads_flagged;
        ] );
    ]
