(* Cross-validation of the WGL linearizability checker against a
   brute-force reference on random small histories (promoted from the
   ad-hoc fuzz harness that shipped in the checker's PR).

   The reference enumerates every linearization of a multi-key int
   register map, zero-initialized: incomplete writes may take effect
   anywhere after their invoke or never, incomplete reads are
   unconstrained (dropped).  Both the monolithic and the per-key WGL
   modes must agree with it on every trial. *)

module H = Checker.History
module L = Checker.Linearizability

let brute (events : H.t) : bool =
  (* ops: (key, is_read, value, invoke, respond option) *)
  let ops =
    List.filter_map
      (fun (e : H.event) ->
        match (e.H.kind, e.H.respond, e.H.ret) with
        | H.Read, None, _ -> None
        | H.Read, Some r, Some v -> Some (e.H.key, true, v, e.H.invoke, Some r)
        | H.Write w, Some r, Some _ -> Some (e.H.key, false, w, e.H.invoke, Some r)
        | H.Write w, None, _ -> Some (e.H.key, false, w, e.H.invoke, None)
        | _ -> assert false)
      events
  in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let used = Array.make n false in
  let module Im = Map.Make (Int) in
  let value store k = Option.value ~default:0 (Im.find_opt k store) in
  let rec go store placed skipped =
    if placed + skipped = n then true
    else begin
      (* minimality: candidate if invoke <= min respond of remaining *)
      let min_resp = ref max_int in
      for i = 0 to n - 1 do
        if not used.(i) then
          match arr.(i) with
          | _, _, _, _, Some r -> if r < !min_resp then min_resp := r
          | _ -> ()
      done;
      let ok = ref false in
      for i = 0 to n - 1 do
        if (not !ok) && not used.(i) then begin
          let k, is_read, v, invoke, respond = arr.(i) in
          if invoke <= !min_resp then begin
            (* option: linearize now *)
            if is_read then begin
              if value store k = v then begin
                used.(i) <- true;
                if go store (placed + 1) skipped then ok := true;
                used.(i) <- false
              end
            end
            else begin
              used.(i) <- true;
              if go (Im.add k v store) (placed + 1) skipped then ok := true;
              used.(i) <- false
            end
          end;
          (* option: never linearize (incomplete only) *)
          if (not !ok) && respond = None then begin
            used.(i) <- true;
            if go store placed (skipped + 1) then ok := true;
            used.(i) <- false
          end
        end
      done;
      !ok
    end
  in
  go Im.empty 0 0

let random_history st =
  let nops = 4 + Random.State.int st 5 in
  let nkeys = 1 + Random.State.int st 3 in
  let nvals = 3 in
  List.init nops (fun i ->
      let key = Random.State.int st nkeys in
      let invoke = Random.State.int st 12 in
      let dur = Random.State.int st 20 in
      let complete = Random.State.int st 10 < 8 in
      let is_read = Random.State.bool st in
      if is_read then
        if complete then
          {
            H.client = i;
            key;
            kind = H.Read;
            invoke;
            respond = Some (invoke + dur);
            ret = Some (Random.State.int st nvals);
          }
        else { H.client = i; key; kind = H.Read; invoke; respond = None; ret = None }
      else
        let v = 1 + Random.State.int st (nvals - 1) in
        if complete then
          {
            H.client = i;
            key;
            kind = H.Write v;
            invoke;
            respond = Some (invoke + dur);
            ret = Some v;
          }
        else { H.client = i; key; kind = H.Write v; invoke; respond = None; ret = None })

let test_agreement () =
  let st = Random.State.make [| 42 |] in
  for trial = 1 to 400 do
    let events = random_history st in
    let expect = brute events in
    let mono = (L.check_history ~mode:`Monolithic events).L.ok in
    let pk = (L.check_history ~mode:`Per_key events).L.ok in
    if mono <> expect || pk <> expect then begin
      List.iter (fun e -> Format.eprintf "  %a@." H.pp_event e) (H.sort events);
      Alcotest.failf "trial %d: brute=%b mono=%b perkey=%b" trial expect mono pk
    end
  done

let () =
  Alcotest.run "lin_brute"
    [
      ( "wgl vs brute force",
        [ Alcotest.test_case "400 random histories agree" `Quick test_agreement ] );
    ]
