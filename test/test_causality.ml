(* Causal span tracing: store invariants, non-perturbation, per-protocol
   golden span digests, and the paper's two-step cross-check — on a
   conflict-free run every commit's measured critical path is exactly two
   message delays for the two-step protocols, while Paxos behind a
   non-leader proxy pays at least three.

   Regenerate the digests (only when the span schema changes) with:
     GOLDEN_PRINT=1 dune exec test/test_causality.exe 2>/dev/null *)

module C = Dsim.Causality
module Span = Stdext.Span
module Json = Stdext.Json

let delta = 100

(* (name, protocol, n, e, f) — the golden-trace grid of test_engine_golden. *)
let protocols =
  [
    ("rgs-task", Core.Rgs.task, 6, 2, 2);
    ("rgs-object", Core.Rgs.obj, 5, 2, 2);
    ("paxos", Baselines.Paxos.protocol, 5, 0, 2);
    ("fast-paxos", Baselines.Fast_paxos.protocol, 7, 2, 2);
  ]

(* Run one engine to quiescence/4000 and return its trace as JSONL (the
   empty string when [record_trace] is off) — the engine's protocol types
   stay local to this function. *)
let run_engine (module P : Proto.Protocol.S) ~n ~e ~f ~seed ~causality ~record_trace =
  let automaton = P.make ~n ~e ~f ~delta in
  let network : P.msg Dsim.Network.t = Uniform { min_delay = 30; max_delay = 170 } in
  let inputs = List.init n (fun i -> (0, i, n - 1 - i)) in
  let engine =
    Dsim.Engine.create ~automaton ~n ~network ~seed ~record_trace ~inputs ?causality ()
  in
  ignore (Dsim.Engine.run ~until:4000 engine : Dsim.Engine.run_result);
  if not record_trace then ""
  else
    let enc_msg m = Json.String (Format.asprintf "%a" P.pp_msg m) in
    let enc_v v = Json.Int v in
    Format.asprintf "%a"
      (Dsim.Trace.to_jsonl ~msg:enc_msg ~input:enc_v ~output:enc_v)
      (Dsim.Engine.trace engine)

(* -- store invariants ---------------------------------------------------- *)

(* Every span's parent precedes it; every delivery/timer span has a parent
   (the event that sent the message / armed the timer was itself recorded). *)
let check_store_invariants store =
  let s = C.store store in
  for id = 0 to C.length store - 1 do
    let p = Span.parent s id in
    Alcotest.(check bool)
      (Printf.sprintf "span %d parent %d in [-1, id)" id p)
      true
      (p >= -1 && p < id);
    (match C.kind_of store id with
    | C.Deliver | C.Timer | C.Output ->
        Alcotest.(check bool) (Printf.sprintf "span %d has a parent" id) true (p >= 0)
    | C.Init | C.Input | C.Crash -> ());
    Alcotest.(check bool)
      (Printf.sprintf "span %d start <= finish" id)
      true
      (Span.start s id <= Span.finish s id);
    (* [path] terminates and ends at this span (acyclicity). *)
    match List.rev (C.path store id) with
    | last :: _ -> Alcotest.(check int) "path ends at span" id last
    | [] -> Alcotest.fail "empty path"
  done

let test_invariants_engine () =
  List.iter
    (fun (_, proto, n, e, f) ->
      let store = C.create () in
      let (module P : Proto.Protocol.S) = proto in
      let causality = C.spec ~input:Fun.id ~output:Fun.id store in
      ignore
        (run_engine (module P) ~n ~e ~f ~seed:7 ~causality:(Some causality)
           ~record_trace:false
          : string);
      Alcotest.(check bool) "spans recorded" true (C.length store > 0);
      check_store_invariants store)
    protocols

(* -- non-perturbation ----------------------------------------------------- *)

(* The same run with and without a tracer produces byte-identical traces:
   recording rides entirely outside the schedule and the RNG streams. *)
let test_byte_identity () =
  List.iter
    (fun (name, proto, n, e, f) ->
      let (module P : Proto.Protocol.S) = proto in
      let plain = run_engine (module P) ~n ~e ~f ~seed:3 ~causality:None ~record_trace:true in
      let store = C.create () in
      let causality = C.spec ~input:Fun.id ~output:Fun.id store in
      let traced =
        run_engine (module P) ~n ~e ~f ~seed:3 ~causality:(Some causality)
          ~record_trace:true
      in
      Alcotest.(check bool) (name ^ ": trace non-empty") true (String.length plain > 0);
      Alcotest.(check bool) (name ^ ": spans recorded") true (C.length store > 0);
      Alcotest.(check string) (name ^ ": traced run leaves the trace unchanged") plain traced)
    protocols

(* -- golden span digests -------------------------------------------------- *)

let span_digest proto ~n ~e ~f =
  let (module P : Proto.Protocol.S) = proto in
  let buf = Buffer.create 4096 in
  List.iter
    (fun seed ->
      let store = C.create () in
      let causality = C.spec ~input:Fun.id ~output:Fun.id store in
      ignore
        (run_engine (module P) ~n ~e ~f ~seed ~causality:(Some causality)
           ~record_trace:false
          : string);
      Buffer.add_string buf (Stdext.Rle.encode (C.to_table store)))
    [ 1; 2; 3 ];
  Digest.to_hex (Digest.string (Buffer.contents buf))

let golden =
  [
    ("rgs-task", "79b0b158140dc99946c1ef2c8a335970");
    ("rgs-object", "80feb2c4d222d2f89b4d4f1ef0eb9223");
    ("paxos", "3235541ae8190866fe3ab15126f82611");
    ("fast-paxos", "5ec4ad56c8b94f3e80af6c6c8196bcc6");
  ]

let test_golden () =
  List.iter
    (fun (name, proto, n, e, f) ->
      match List.assoc_opt name golden with
      | None -> Alcotest.failf "no golden span digest for %s" name
      | Some expect ->
          Alcotest.(check string) name expect (span_digest proto ~n ~e ~f))
    protocols

(* -- SMR critical paths --------------------------------------------------- *)

let fleet_run ~proto ~n ~e ~f ~clients ~seed =
  let store = C.create () in
  let result =
    Workload.Fleet.run ~protocol:proto ~e ~f ~n ~topology:Workload.Topology.planet5
      ~seed ~causality:store
      {
        Workload.Fleet.clients;
        arrival = Workload.Fleet.Closed { think = 100 };
        keys = 16;
        hot_rate = 0.0;
        read_rate = 0.0;
        horizon = 4000;
        tick = 50;
      }
  in
  (result, store)

(* Conflict-free (single closed-loop client) runs commit on the fast path
   every time: measured delay_steps = 2, matching Checker.Report's
   conflict-free fast rate of 1.0 for the two-step protocols. *)
let test_conflict_free_two_step () =
  List.iter
    (fun (name, proto, n, e, f) ->
      let result, store = fleet_run ~proto ~n ~e ~f ~clients:1 ~seed:11 in
      Alcotest.(check bool) (name ^ ": commands completed") true (result.completed > 0);
      check_store_invariants store;
      let paths = Smr.Spans.command_paths store in
      Alcotest.(check bool) (name ^ ": paths reconstructed") true (List.length paths > 0);
      let a = Smr.Spans.attribution paths in
      Alcotest.(check int) (name ^ ": every commit two-step") a.commits a.two_step;
      List.iter
        (fun (steps, _) -> Alcotest.(check int) (name ^ ": delay_steps") 2 steps)
        a.steps_hist)
    [
      ("rgs-task", Core.Rgs.task, 6, 2, 2);
      ("rgs-object", Core.Rgs.obj, 5, 2, 2);
      ("fast-paxos", Baselines.Fast_paxos.protocol, 7, 2, 2);
    ]

(* Paxos behind a non-leader proxy pays the submit relay and the learn
   hop: client 1's commands (proxy 1) can never measure two-step, while
   client 0's (the ballot-0 leader) can. *)
let test_paxos_leader_only () =
  let result, store =
    fleet_run ~proto:Baselines.Paxos.protocol ~n:5 ~e:0 ~f:2 ~clients:2 ~seed:11
  in
  Alcotest.(check bool) "paxos: commands completed" true (result.completed > 0);
  let paths = Smr.Spans.command_paths store in
  let non_leader = List.filter (fun p -> p.Smr.Spans.proxy <> 0) paths in
  Alcotest.(check bool) "paxos: non-leader commits exist" true (List.length non_leader > 0);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "paxos proxy %d: delay_steps %d >= 3" p.Smr.Spans.proxy
           p.Smr.Spans.delay_steps)
        true
        (p.Smr.Spans.delay_steps >= 3))
    non_leader;
  match Smr.Spans.predicate "paxos" with
  | Some (Smr.Spans.Leader_only 0) -> ()
  | _ -> Alcotest.fail "paxos predicate should be Leader_only 0"

(* Path accounting: total latency decomposes into wire legs plus
   queueing, and legs are causally ordered. *)
let test_path_accounting () =
  let _, store = fleet_run ~proto:Core.Rgs.task ~n:6 ~e:2 ~f:2 ~clients:8 ~seed:5 in
  let paths = Smr.Spans.command_paths store in
  Alcotest.(check bool) "paths exist" true (List.length paths > 0);
  List.iter
    (fun (p : Smr.Spans.path) ->
      Alcotest.(check bool) "apply after submit" true (p.apply >= p.submit);
      Alcotest.(check bool) "queue_ms >= 0" true (p.queue_ms >= 0);
      Alcotest.(check int) "delay_steps counts legs" (List.length p.legs) p.delay_steps;
      ignore
        (List.fold_left
           (fun prev (l : Smr.Spans.leg) ->
             Alcotest.(check bool) "leg durations non-negative" true
               (l.delivered_at >= l.sent_at);
             Alcotest.(check bool) "legs causally ordered" true (l.sent_at >= prev);
             l.delivered_at)
           0 p.legs))
    paths

(* -- qcheck: invariants over random fleet configurations ------------------ *)

let test_qcheck_invariants =
  QCheck.Test.make ~name:"span store invariants over random fleets" ~count:12
    QCheck.(
      quad (int_range 1 10) (int_range 1 4) (int_range 1 4) (int_range 0 1000))
    (fun (clients, pipeline, batch_max, seed) ->
      let store = C.create () in
      let result =
        Workload.Fleet.run ~protocol:Core.Rgs.task ~e:2 ~f:2 ~n:6
          ~topology:Workload.Topology.planet5 ~seed ~pipeline ~batch_max
          ~causality:store
          {
            Workload.Fleet.clients;
            arrival = Workload.Fleet.Closed { think = 20 };
            keys = 4;
            hot_rate = 0.5;
            read_rate = 0.3;
            horizon = 2500;
            tick = 50;
          }
      in
      check_store_invariants store;
      let paths = Smr.Spans.command_paths store in
      if result.completed > 0 then List.length paths > 0 else true)

(* -- Chrome export -------------------------------------------------------- *)

let test_chrome_export () =
  let _, store = fleet_run ~proto:Core.Rgs.task ~n:6 ~e:2 ~f:2 ~clients:2 ~seed:1 in
  let out = Format.asprintf "%a" C.to_chrome store in
  match Json.parse out with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          Alcotest.(check bool) "has events" true (List.length events > 0);
          let has ph =
            List.exists
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Json.String s) -> s = ph
                | _ -> false)
              events
          in
          Alcotest.(check bool) "has complete events" true (has "X");
          Alcotest.(check bool) "has flow starts" true (has "s");
          Alcotest.(check bool) "has flow finishes" true (has "f")
      | _ -> Alcotest.fail "no traceEvents array")

let () =
  match Sys.getenv_opt "GOLDEN_PRINT" with
  | Some _ ->
      List.iter
        (fun (name, proto, n, e, f) ->
          Printf.printf "    (%S, %S);\n" name (span_digest proto ~n ~e ~f))
        protocols
  | None ->
      Alcotest.run "causality"
        [
          ( "store",
            [
              Alcotest.test_case "invariants (engine runs)" `Quick test_invariants_engine;
              Alcotest.test_case "traced runs leave traces unchanged" `Quick
                test_byte_identity;
              Alcotest.test_case "golden span digests" `Quick test_golden;
              QCheck_alcotest.to_alcotest test_qcheck_invariants;
            ] );
          ( "smr paths",
            [
              Alcotest.test_case "conflict-free runs are 100%% two-step" `Quick
                test_conflict_free_two_step;
              Alcotest.test_case "paxos is two-step only at the leader" `Quick
                test_paxos_leader_only;
              Alcotest.test_case "path accounting" `Quick test_path_accounting;
              Alcotest.test_case "chrome trace_event export" `Quick test_chrome_export;
            ] );
        ]
