(* Tests for the lower-bound machinery: the splice helpers and the
   executable tightness witnesses of Theorems 5 and 6. *)

module Pid = Dsim.Pid
module Engine = Dsim.Engine
module Automaton = Dsim.Automaton
module Witness = Lowerbound.Witness
module Splice = Lowerbound.Splice

(* Echo protocol for exercising the splice helpers directly. *)
type echo_state = { self : Pid.t }

let echo : (echo_state, int, int, Pid.t * int) Automaton.t =
  {
    init = (fun ~self ~n:_ -> ({ self }, []));
    on_message = (fun s ~src v -> (s, [ Automaton.Output (src, v) ]));
    on_input = (fun s v -> (s, [ Automaton.Broadcast v ]));
    on_timer = Automaton.no_timer;
    state_copy = Fun.id;
    state_fingerprint = None;
  }

let test_deliver_round_order_and_drop () =
  let engine =
    Engine.create ~automaton:echo ~n:3 ~network:Dsim.Network.Manual
      ~inputs:[ (0, 0, 1); (0, 1, 2) ]
      ()
  in
  ignore (Engine.run ~until:0 engine);
  (* 4 pending: p0->1, p0->2, p1->0, p1->2. Drop everything from p1 and
     deliver the rest reversed. *)
  Splice.deliver_round engine ~at:10
    ~order:(fun l -> List.rev l)
    ~drop:(fun p -> Pid.equal p.src 1)
    ();
  let outputs = Engine.outputs engine in
  Alcotest.(check int) "two deliveries" 2 (List.length outputs);
  List.iter (fun (_, _, (src, _)) -> Alcotest.(check int) "only p0's" 0 src) outputs;
  Alcotest.(check int) "pool drained" 0 (List.length (Engine.pending engine))

let test_pump_advances_rounds () =
  let engine =
    Engine.create ~automaton:echo ~n:2 ~network:Dsim.Network.Manual ~inputs:[ (0, 0, 7) ] ()
  in
  ignore (Engine.run ~until:0 engine);
  Splice.pump engine ~delta:10 ~until:50 ();
  Alcotest.(check int) "message pumped" 1 (List.length (Engine.outputs engine));
  Alcotest.(check bool) "time advanced" true (Engine.now engine <= 50)

let test_favor_sources () =
  let mk id src dst = { Engine.id; src; dst; msg = 0; sent_at = 0 } in
  let batch = [ mk 0 1 5; mk 1 2 5; mk 2 1 6 ] in
  let ordered = Splice.favor_sources ~first:(fun ~dst:_ ~src -> src = 2) batch in
  match ordered with
  | [ a; b; c ] ->
      Alcotest.(check int) "favored first" 1 a.Engine.id;
      Alcotest.(check (list int)) "rest in send order" [ 0; 2 ] [ b.Engine.id; c.Engine.id ]
  | _ -> Alcotest.fail "length"

(* Theorem 5 tightness: the task protocol is safe at n = 2e+f and violable
   at n = 2e+f-1, across several (e, f) in the fast-path-limited regime. *)
let test_task_tightness () =
  List.iter
    (fun (e, f) ->
      let bound = Proto.Bounds.required Proto.Bounds.Task ~e ~f in
      let safe = Witness.task_scenario ~n:bound ~e ~f () in
      Alcotest.(check bool)
        (Format.asprintf "safe at bound: %a" Witness.pp_result safe)
        false safe.agreement_violated;
      Alcotest.(check bool) "fast decision recovered" true
        (List.for_all (fun (_, v) -> v = safe.fast_value) safe.recovery_decisions
        && safe.recovery_decisions <> []);
      let broken = Witness.task_scenario ~n:(bound - 1) ~e ~f () in
      Alcotest.(check bool)
        (Format.asprintf "violated below bound: %a" Witness.pp_result broken)
        true broken.agreement_violated)
    [ (2, 2); (3, 3); (3, 4); (4, 4); (4, 5) ]

(* Theorem 6 tightness for the object protocol. *)
let test_object_tightness () =
  List.iter
    (fun (e, f) ->
      let bound = Proto.Bounds.required Proto.Bounds.Object ~e ~f in
      let safe = Witness.object_scenario ~n:bound ~e ~f () in
      Alcotest.(check bool)
        (Format.asprintf "safe at bound: %a" Witness.pp_result safe)
        false safe.agreement_violated;
      let broken = Witness.object_scenario ~n:(bound - 1) ~e ~f () in
      Alcotest.(check bool)
        (Format.asprintf "violated below bound: %a" Witness.pp_result broken)
        true broken.agreement_violated)
    [ (3, 3); (4, 4); (4, 5) ]

(* The object protocol at its bound survives the *task* witness shape too:
   the red lines prevent the vote layout that kills the task protocol one
   process below ITS bound. Concretely, at n = 2e+f-1 the object scenario
   stays safe while the task protocol with the same n falls. *)
let test_object_beats_task_at_task_minus_one () =
  let e = 2 and f = 2 in
  let n = (2 * e) + f - 1 in
  let task_result = Witness.task_scenario ~n ~e ~f () in
  Alcotest.(check bool) "task protocol violated at 2e+f-1" true task_result.agreement_violated;
  let obj_result = Witness.object_scenario ~n ~e ~f () in
  Alcotest.(check bool) "object protocol safe at 2e+f-1" false obj_result.agreement_violated

let test_witness_validation () =
  Alcotest.check_raises "task preconditions"
    (Invalid_argument "Witness.task_scenario: need e >= 2, f >= 2, n >= e+f+1") (fun () ->
      ignore (Witness.task_scenario ~n:3 ~e:1 ~f:1 ()));
  Alcotest.check_raises "object preconditions"
    (Invalid_argument "Witness.object_scenario: need e >= 2, f >= 2, n >= e+f") (fun () ->
      ignore (Witness.object_scenario ~n:2 ~e:1 ~f:1 ()))

let () =
  Alcotest.run "lowerbound"
    [
      ( "splice",
        [
          Alcotest.test_case "deliver_round order/drop" `Quick test_deliver_round_order_and_drop;
          Alcotest.test_case "pump" `Quick test_pump_advances_rounds;
          Alcotest.test_case "favor_sources" `Quick test_favor_sources;
        ] );
      ( "witness",
        [
          Alcotest.test_case "task tightness (Thm 5)" `Quick test_task_tightness;
          Alcotest.test_case "object tightness (Thm 6)" `Quick test_object_tightness;
          Alcotest.test_case "object survives task's killer" `Quick test_object_beats_task_at_task_minus_one;
          Alcotest.test_case "input validation" `Quick test_witness_validation;
        ] );
    ]
