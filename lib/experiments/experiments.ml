module Pid = Dsim.Pid
module Time = Dsim.Time
module Value = Proto.Value
module Bounds = Proto.Bounds
module Scenario = Checker.Scenario
module Safety = Checker.Safety
module Twostep = Checker.Twostep
module Rng = Stdext.Rng
module Pool = Stdext.Pool
module Stats = Stdext.Stats

let delta = 100

let hline fmt = Format.fprintf fmt "%s@." (String.make 78 '-')

let header fmt title =
  Format.fprintf fmt "@.";
  hline fmt;
  Format.fprintf fmt "%s@." title;
  hline fmt

(* Protocols under comparison, at their minimal n for given (e, f). *)
let protocols : (string * Proto.Protocol.t) list =
  [
    ("paxos", Baselines.Paxos.protocol);
    ("fast-paxos", Baselines.Fast_paxos.protocol);
    ("rgs-task", Core.Rgs.task);
    ("rgs-object", Core.Rgs.obj);
  ]

let min_n (module P : Proto.Protocol.S) ~e ~f = P.min_n ~e ~f

let mean l =
  match l with [] -> nan | _ -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

(* Parallel sweep helper: render each independent grid cell to a string on
   the pool, print in submission order — the output is byte-identical for
   any [domains], because every cell computation is deterministic and
   self-contained. *)
let sweep ~domains fmt render cells =
  Pool.run ~domains (fun pool ->
      List.iter (Format.fprintf fmt "%s") (Pool.map_list pool render cells))

(* T1 ---------------------------------------------------------------- *)

let t1_bounds_table fmt =
  header fmt
    "T1. Required number of processes (Theorems 5 & 6 vs Lamport's bound)";
  Format.fprintf fmt "%4s %4s | %14s %14s %14s | %s@." "e" "f" "Lamport(2e+f+1)"
    "task(2e+f)" "object(2e+f-1)" "saved vs Lamport";
  List.iter
    (fun (e, f) ->
      let lam = Bounds.required Bounds.Lamport_fast ~e ~f in
      let task = Bounds.required Bounds.Task ~e ~f in
      let obj = Bounds.required Bounds.Object ~e ~f in
      Format.fprintf fmt "%4d %4d | %14d %14d %14d | %d / %d@." e f lam task obj (lam - task)
        (lam - obj))
    [ (1, 1); (1, 2); (1, 3); (2, 2); (2, 3); (2, 4); (3, 3); (3, 4); (3, 5); (4, 4); (4, 5) ];
  Format.fprintf fmt
    "(all bounds include the floor 2f+1; EPaxos regime e=ceil((f+1)/2): object bound = 2f+1)@."

(* T2 ---------------------------------------------------------------- *)

let t2_twostep_verification ?(domains = 1) fmt =
  header fmt "T2. e-two-step verification (Defs 4 / A.1) at the minimal n";
  Format.fprintf fmt "%-12s %-7s %3s %3s %3s | %8s %8s | %s@." "protocol" "def" "n" "e" "f"
    "configs" "runs" "verdict";
  let row (name, kind, protocol, n, e, f, expect) =
    let r =
      match kind with
      | `Task -> Twostep.check_task protocol ~n ~e ~f ~delta ~values:[ 0; 1 ] ()
      | `Object -> Twostep.check_object protocol ~n ~e ~f ~delta ~values:[ 0; 1 ] ()
    in
    let verdict = if Twostep.ok r then "e-two-step" else "NOT e-two-step" in
    let marker = if Twostep.ok r = expect then "(as proved)" else "(UNEXPECTED!)" in
    Format.asprintf "%-12s %-7s %3d %3d %3d | %8d %8d | %s %s@." name
      (match kind with `Task -> "task" | `Object -> "object")
      n e f r.Twostep.checked_configs r.Twostep.checked_runs verdict marker
  in
  sweep ~domains fmt row
    [
      ("rgs-task", `Task, Core.Rgs.task, 3, 1, 1, true);
      ("rgs-task", `Task, Core.Rgs.task, 6, 2, 2, true);
      ("rgs-task", `Task, Core.Rgs.task, 7, 2, 3, true);
      ("rgs-object", `Object, Core.Rgs.obj, 3, 1, 1, true);
      ("rgs-object", `Object, Core.Rgs.obj, 5, 2, 2, true);
      ("rgs-object", `Object, Core.Rgs.obj, 7, 2, 3, true);
      ("fast-paxos", `Task, Baselines.Fast_paxos.protocol, 7, 2, 2, true);
      ("fast-paxos", `Object, Baselines.Fast_paxos.protocol, 7, 2, 2, true);
      ("paxos", `Task, Baselines.Paxos.protocol, 5, 2, 2, false);
      ("paxos", `Task, Baselines.Paxos.protocol, 3, 1, 1, false);
    ];
  Format.fprintf fmt
    "(a verified row quantifies over every E of size e and every {0,1}-configuration)@."

(* T3 ---------------------------------------------------------------- *)

let t3_tightness_witnesses ?(domains = 1) fmt =
  header fmt "T3. Tightness: adversarial choreography at n = bound vs n = bound-1";
  Format.fprintf fmt "%-8s %3s %3s | %-6s %-10s | %-6s %-10s@." "mode" "e" "f" "n" "at bound"
    "n-1" "below bound";
  let describe (r : Lowerbound.Witness.result) =
    if r.agreement_violated then "VIOLATED" else "safe"
  in
  let row (mode, e, f) =
    let kind, scenario =
      match mode with
      | `Task -> (Bounds.Task, Lowerbound.Witness.task_scenario)
      | `Object -> (Bounds.Object, Lowerbound.Witness.object_scenario)
    in
    let bound = Bounds.required kind ~e ~f in
    let at = scenario ~n:bound ~e ~f () in
    let below = scenario ~n:(bound - 1) ~e ~f () in
    Format.asprintf "%-8s %3d %3d | %-6d %-10s | %-6d %-10s@."
      (match mode with `Task -> "task" | `Object -> "object")
      e f bound (describe at) (bound - 1) (describe below)
  in
  sweep ~domains fmt row
    (List.map (fun (e, f) -> (`Task, e, f)) [ (2, 2); (3, 3); (3, 4); (4, 4) ]
    @ List.map (fun (e, f) -> (`Object, e, f)) [ (3, 3); (4, 4); (4, 5) ]);
  Format.fprintf fmt
    "(VIOLATED = two processes decided different values: Agreement broken, matching@.";
  Format.fprintf fmt " the 'only if' directions of Theorems 5 and 6)@."

(* T4 ---------------------------------------------------------------- *)

let t4_recovery_audit ?(domains = 1) fmt =
  header fmt "T4. Recovery-rule audit (Lemma 7 / Lemma C.2): exhaustive vote layouts";
  Format.fprintf fmt "%-8s %3s %3s %3s | %8s %9s | %s@." "mode" "n" "e" "f" "layouts"
    "failures" "expected";
  let row (mode, name, n, e, f, expect_ok) =
    let s = Lowerbound.Audit.check ~mode ~n ~e ~f in
    let ok = s.Lowerbound.Audit.failures = 0 in
    Format.asprintf "%-8s %3d %3d %3d | %8d %9d | %s %s@." name n e f
      s.Lowerbound.Audit.layouts s.Lowerbound.Audit.failures
      (if expect_ok then "holds" else "fails")
      (if ok = expect_ok then "(as proved)" else "(UNEXPECTED!)")
  in
  let task_rows =
    List.concat_map
      (fun (e, f) ->
        let bound = Bounds.required Bounds.Task ~e ~f in
        (Core.Rgs.Task, "task", bound, e, f, true)
        ::
        (if (2 * e) + f - 1 >= (2 * f) + 1 then
           [ (Core.Rgs.Task, "task", bound - 1, e, f, false) ]
         else []))
      [ (2, 2); (3, 3); (3, 4); (4, 4); (2, 5) ]
  in
  let object_rows =
    List.concat_map
      (fun (e, f) ->
        let bound = Bounds.required Bounds.Object ~e ~f in
        (Core.Rgs.Object, "object", bound, e, f, true)
        ::
        (if (2 * e) + f - 2 >= (2 * f) + 1 then
           [ (Core.Rgs.Object, "object", bound - 1, e, f, false) ]
         else []))
      [ (2, 2); (3, 3); (4, 4); (4, 5); (2, 5) ]
  in
  sweep ~domains fmt row (task_rows @ object_rows)

(* F1 ---------------------------------------------------------------- *)

(* A proxy-centric workload: one client command lands at a proxy, which
   proposes it; in task mode the remaining processes propose a low no-op
   value and the schedule favours the proxy (Definition 4 is existential in
   the delivery order — see DESIGN.md). *)
let f1_fast_rate_vs_crashes ?(seeds = 300) ?(domains = 1) fmt =
  header fmt "F1. Two-step decision rate at the proxy vs crashes (e = f = 2)";
  let e = 2 and f = 2 in
  Format.fprintf fmt "%-12s %3s |" "protocol" "n";
  for c = 0 to 3 do
    Format.fprintf fmt " %8s" (Printf.sprintf "%d crash" c)
  done;
  Format.fprintf fmt "@.";
  (* One grid cell = one (protocol, crash count) pair; each cell sweeps its
     seeds independently, so cells parallelise cleanly. *)
  let cell (name, protocol, crashes) =
    let n = min_n protocol ~e ~f in
    let fast = ref 0 in
    for seed = 1 to seeds do
      let rng = Rng.create ~seed:(seed * 7919) in
      let proxy = Rng.int rng n in
      let crashed =
        Rng.shuffle rng (List.filter (fun p -> p <> proxy) (Pid.all ~n))
        |> List.filteri (fun i _ -> i < crashes)
      in
      let proposals =
        match name with
        | "rgs-task" ->
            (* task mode: everyone has an input; non-proxies carry a
               low no-op *)
            List.map (fun p -> (0, p, if p = proxy then 5 else 0)) (Pid.all ~n)
        | _ -> [ (0, proxy, 5) ]
      in
      let order = if name = "rgs-task" then `Favor proxy else `Random in
      let o =
        Scenario.run protocol ~n ~e ~f ~delta ~net:(Scenario.Sync order) ~proposals
          ~crashes:(Scenario.crash_at_start crashed)
          ~seed ~disable_timers:true ~until:((2 * delta) + 1) ()
      in
      match Scenario.decided_value o proxy with
      | Some (t, _) when t <= 2 * delta -> incr fast
      | _ -> ()
    done;
    Printf.sprintf " %8.2f" (float_of_int !fast /. float_of_int seeds)
  in
  Pool.run ~domains (fun pool ->
      let rows =
        List.map
          (fun (name, protocol) ->
            let cells =
              List.init 4 (fun crashes ->
                  Pool.submit pool (fun () -> cell (name, protocol, crashes)))
            in
            (name, min_n protocol ~e ~f, cells))
          protocols
      in
      List.iter
        (fun (name, n, cells) ->
          Format.fprintf fmt "%-12s %3d |" name n;
          List.iter (fun c -> Format.fprintf fmt "%s" (Pool.await c)) cells;
          Format.fprintf fmt "@.")
        rows);
  Format.fprintf fmt
    "(expected shape: fast protocols hold rate 1.0 up to e=2 crashes and drop to 0@.";
  Format.fprintf fmt
    " beyond; Paxos decides fast only when the proxy happens to be the leader ~1/n)@."

(* F2 ---------------------------------------------------------------- *)

let f2_latency_vs_conflict ?(seeds = 200) fmt =
  header fmt "F2. First-decision latency (in units of Delta) vs conflict rate (e = f = 2)";
  let e = 2 and f = 2 in
  let rates = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let run_case ~crash_leader fmt_label =
    Format.fprintf fmt "%s@." fmt_label;
    Format.fprintf fmt "%-12s %3s |" "protocol" "n";
    List.iter (fun r -> Format.fprintf fmt " %11s" (Printf.sprintf "rate %.2f" r)) rates;
    Format.fprintf fmt "@.";
    List.iter
      (fun (name, protocol) ->
        let n = min_n protocol ~e ~f in
        Format.fprintf fmt "%-12s %3d |" name n;
        List.iter
          (fun rate ->
            let latencies = ref [] in
            for seed = 1 to seeds do
              let rng = Rng.create ~seed:(seed * 104729) in
              (* Two potential proposers; the second one joins with
                 probability [rate] and carries a conflicting value. *)
              let p1 = Rng.int rng n in
              let p2 = (p1 + 1 + Rng.int rng (n - 1)) mod n in
              let conflicting = Rng.float rng 1.0 < rate in
              let proposals =
                if conflicting then [ (0, p1, 5); (0, p2, 7) ] else [ (0, p1, 5) ]
              in
              let crashes = if crash_leader then [ (0, 0) ] else [] in
              let o =
                Scenario.run protocol ~n ~e ~f ~delta ~net:(Scenario.Sync `Random)
                  ~proposals ~crashes ~seed ~until:(40 * delta) ()
              in
              match o.decisions with
              | (t, _, _) :: _ -> latencies := t :: !latencies
              | [] -> ()
            done;
            let m = mean !latencies /. float_of_int delta in
            Format.fprintf fmt " %11.1f" m)
          rates;
        Format.fprintf fmt "@.")
      (List.filter (fun (name, _) -> name <> "rgs-task") protocols)
  in
  run_case ~crash_leader:false "-- initial leader (p0) alive --";
  run_case ~crash_leader:true "-- initial leader (p0) crashed at t=0 --";
  Format.fprintf fmt
    "(expected shape: fast protocols sit at 2.0 without conflicts and degrade as@.";
  Format.fprintf fmt
    " conflicts force the slow path; Paxos is conflict-insensitive but pays a view@.";
  Format.fprintf fmt " change when its leader dies, which never touches the fast protocols)@."

(* F3 ---------------------------------------------------------------- *)

let f3_wan_latency fmt =
  header fmt "F3. WAN commit latency at the proxy, planet5 topology (ms), e = f = 2";
  let e = 2 and f = 2 in
  let topo = Workload.Topology.planet5 in
  let wan_delta = Workload.Topology.max_oneway topo + 10 in
  let regions = Workload.Topology.regions topo in
  Format.fprintf fmt "%-12s %3s |" "protocol" "n";
  List.iter (fun r -> Format.fprintf fmt " %10s" r) regions;
  Format.fprintf fmt "@.";
  List.iter
    (fun (name, protocol) ->
      let n = min_n protocol ~e ~f in
      Format.fprintf fmt "%-12s %3d |" name n;
      List.iteri
        (fun region_idx _ ->
          (* the proxy is the replica living in this region *)
          let proxy = region_idx in
          let proposals = [ (0, proxy, 5) ] in
          let o =
            Scenario.run protocol ~n ~e ~f ~delta:wan_delta
              ~net:
                (Scenario.Wan
                   { latency = Workload.Topology.latency_fn topo; jitter = 3 })
              ~proposals ~seed:11 ~until:(40 * wan_delta) ()
          in
          match Scenario.decided_value o proxy with
          | Some (t, _) -> Format.fprintf fmt " %10d" t
          | None -> Format.fprintf fmt " %10s" "-")
        regions;
      Format.fprintf fmt "@.")
    (List.filter (fun (name, _) -> name <> "rgs-task") protocols);
  Format.fprintf fmt
    "(rgs-object needs n-e-1 = 2 remote votes; Fast Paxos runs 7 replicas for the@.";
  Format.fprintf fmt
    " same e and must hear 4 of them, reaching further regions; Paxos routes through@.";
  Format.fprintf fmt " the virginia leader: non-leader proxies pay extra wide-area hops)@."

(* F4 ---------------------------------------------------------------- *)

(* The SMR comparison adds EPaxos: it only exists as a deployment-level
   contender (the paper's §1 motivation), so it joins here rather than in
   the single-shot sweeps above. *)
let smr_protocols = protocols @ [ ("epaxos", Epaxos.protocol) ]

let f4_smr_throughput ?(seeds = 3) fmt =
  header fmt "F4. SMR under load: pipelined/batched replicas vs one-command slots (e = f = 2)";
  let e = 2 and f = 2 in
  let cfg : Workload.Fleet.config =
    {
      clients = 100;
      arrival = Open { rate_per_client = 3.0 };
      keys = 64;
      hot_rate = 0.1;
      read_rate = 0.0;
      horizon = 8_000;
      tick = 50;
    }
  in
  Format.fprintf fmt
    "open-loop fleet on planet5: %d clients x %.1f cmd/s for %d virtual ms@." cfg.clients
    3.0 cfg.horizon;
  Format.fprintf fmt "%-12s %3s | %-21s | %-29s | %-7s %s@." "protocol" "n"
    "1 cmd/slot: cps p50/p99" "pipe 16 x batch 64: cps p50/p99" "speedup" "conv";
  let fmean l =
    match l with [] -> nan | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  List.iter
    (fun (name, protocol) ->
      let n = min_n protocol ~e ~f in
      let measure ~pipeline ~batch_max =
        let runs =
          List.init seeds (fun i ->
              Workload.Fleet.run ~protocol ~e ~f ~topology:Workload.Topology.planet5
                ~pipeline ~batch_max ~seed:(i + 1) cfg)
        in
        let cps = fmean (List.map Workload.Fleet.commits_per_sec runs) in
        let p50 = mean (List.map (fun (r : Workload.Fleet.result) -> Stats.p50 r.latencies) runs) in
        let p99 = mean (List.map (fun (r : Workload.Fleet.result) -> Stats.p99 r.latencies) runs) in
        let batch = fmean (List.map (fun (r : Workload.Fleet.result) -> r.mean_batch) runs) in
        let converged =
          List.for_all (fun (r : Workload.Fleet.result) -> r.converged) runs
        in
        (cps, p50, p99, batch, converged)
      in
      let bcps, bp50, bp99, _, bconv = measure ~pipeline:1 ~batch_max:1 in
      let tcps, tp50, tp99, tbatch, tconv = measure ~pipeline:16 ~batch_max:64 in
      Format.fprintf fmt "%-12s %3d | %7.1f %6.0f/%6.0f | %7.1f %6.0f/%6.0f (batch %4.1f) | %6.1fx %b@."
        name n bcps bp50 bp99 tcps tp50 tp99 tbatch
        (if bcps > 0.0 then tcps /. bcps else nan)
        (bconv && tconv))
    smr_protocols;
  Format.fprintf fmt
    "(cps = completed client commands per virtual second at their proxy; p50/p99 in ms@.";
  Format.fprintf fmt
    " of submit->apply at the proxy — the paper's client-visible latency; same offered@.";
  Format.fprintf fmt " load in both columns, so cps gaps are queueing collapse)@."

(* F5 ---------------------------------------------------------------- *)

let f5_epaxos_motivation ?(seeds = 200) fmt =
  header fmt "F5. EPaxos-style commits with 2f+1 processes (paper, section 1)";
  Format.fprintf fmt
    "Two replicas submit one command each; interference = same key.@.";
  Format.fprintf fmt "%-3s %-3s %-3s %-4s |" "f" "e" "n" "FQ";
  List.iter
    (fun r -> Format.fprintf fmt " %14s" (Printf.sprintf "interf %.2f" r))
    [ 0.0; 0.5; 1.0 ];
  Format.fprintf fmt "   (mean commit latency in Delta / fast rate)@.";
  List.iter
    (fun f ->
      let n = (2 * f) + 1 in
      let e = Proto.Bounds.epaxos_e ~f in
      Format.fprintf fmt "%-3d %-3d %-3d %-4d |" f e n (Epaxos.fast_quorum ~n ~f);
      List.iter
        (fun rate ->
          let latencies = ref [] and fast = ref 0 and total = ref 0 in
          for seed = 1 to seeds do
            let rng = Rng.create ~seed:(seed * 31337) in
            let l1 = Rng.int rng n in
            let l2 = (l1 + 1 + Rng.int rng (n - 1)) mod n in
            let interferes = Rng.float rng 1.0 < rate in
            let cmds =
              [
                (0, l1, { Epaxos.Cmd.origin = l1; key = 1; payload = 1 });
                (0, l2, { Epaxos.Cmd.origin = l2; key = (if interferes then 1 else 2); payload = 2 });
              ]
            in
            (* crash e of the non-leaders at startup *)
            let crashed =
              Rng.shuffle rng (List.filter (fun p -> p <> l1 && p <> l2) (Pid.all ~n))
              |> List.filteri (fun i _ -> i < e)
              |> List.map (fun p -> (0, p))
            in
            let automaton = Epaxos.make ~n ~f ~delta in
            let engine =
              Dsim.Engine.create ~automaton ~n
                ~network:(Dsim.Network.Sync_rounds { delta; order = Dsim.Network.Random_order })
                ~seed ~inputs:cmds ~crashes:crashed ()
            in
            ignore (Dsim.Engine.run ~until:(40 * delta) engine);
            List.iter
              (fun (t, p, o) ->
                match o with
                | Epaxos.Committed _ when Pid.equal p l1 || Pid.equal p l2 ->
                    incr total;
                    latencies := t :: !latencies;
                    if t <= 2 * delta then incr fast
                | _ -> ())
              (Dsim.Engine.outputs engine)
          done;
          Format.fprintf fmt " %8.1f /%4.2f"
            (mean !latencies /. float_of_int delta)
            (float_of_int !fast /. float_of_int (max 1 !total)))
        [ 0.0; 0.5; 1.0 ];
      Format.fprintf fmt "@.")
    [ 1; 2; 3 ];
  Format.fprintf fmt
    "(the fast rate stays high at interference 0 despite e crashes — the protocol@.";
  Format.fprintf fmt
    " the classical bound says needs 2e+f+1 processes runs here on 2f+1 = 2e+f-1,@.";
  Format.fprintf fmt " which is exactly the paper's object bound)@."

let all ?(domains = 1) fmt =
  t1_bounds_table fmt;
  t2_twostep_verification ~domains fmt;
  t3_tightness_witnesses ~domains fmt;
  t4_recovery_audit ~domains fmt;
  f1_fast_rate_vs_crashes ~domains fmt;
  f2_latency_vs_conflict fmt;
  f3_wan_latency fmt;
  f4_smr_throughput fmt;
  f5_epaxos_motivation fmt
