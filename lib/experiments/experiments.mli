(** The evaluation harness.

    The paper is a theory brief announcement with no measured evaluation;
    every claim is a theorem. Each experiment below regenerates one claim
    as a table (T1-T4) or series (F1-F4) — see DESIGN.md §3 and
    EXPERIMENTS.md for the mapping and archived results. All experiments
    print to the given formatter and are deterministic for a fixed seed.

    The sweep-grid experiments (T2-T4, F1) accept [?domains]: their
    independent rows/cells are fanned across a {!Stdext.Pool} of that many
    OCaml domains and printed in submission order, so the output is
    byte-identical for every [domains] value (default 1: fully
    sequential, no domain spawned). *)

val t1_bounds_table : Format.formatter -> unit
(** T1 — the headline bounds: required [n] per formulation over an
    (e, f) grid (Theorems 5, 6 vs Lamport's bound). *)

val t2_twostep_verification : ?domains:int -> Format.formatter -> unit
(** T2 — upper-bound direction: the protocols satisfy their two-step
    definitions at exactly their minimal [n]; Paxos does not. Exercises
    {!Checker.Twostep} over every E and every small-domain configuration. *)

val t3_tightness_witnesses : ?domains:int -> Format.formatter -> unit
(** T3 — lower-bound direction: the adversarial choreography preserves
    agreement at the bound and violates it one process below
    ({!Lowerbound.Witness}). *)

val t4_recovery_audit : ?domains:int -> Format.formatter -> unit
(** T4 — Lemma 7 / Lemma C.2: exhaustive vote-layout audit of the recovery
    rule at and below the bounds ({!Lowerbound.Audit}). *)

val f1_fast_rate_vs_crashes : ?seeds:int -> ?domains:int -> Format.formatter -> unit
(** F1 — fraction of runs with a two-step decision vs number of crashes,
    per protocol at its minimal [n] (e = f = 2), unanimous proposals,
    random synchronous schedules. *)

val f2_latency_vs_conflict : ?seeds:int -> Format.formatter -> unit
(** F2 — decision latency (in Δ) at the first decider vs proposal-conflict
    rate; with the initial leader alive and crashed. Shows the crossover
    between leader-driven Paxos and the fast protocols. *)

val f3_wan_latency : Format.formatter -> unit
(** F3 — wide-area commit latency (ms) at a proxy in each region of a
    5-region planet topology, per protocol at its minimal [n]: the cost of
    the extra processes Lamport's bound demands. *)

val f4_smr_throughput : ?seeds:int -> Format.formatter -> unit
(** F4 — SMR under load: an open-loop client fleet ({!Workload.Fleet})
    drives each protocol's replicated KV store on the planet5 WAN, with
    one command per slot vs pipeline 16 × batch 64 at the same offered
    load. Reports commits/sec and client p50/p99 submit→apply latency at
    the proxy (the paper's §1 cost model), per protocol including EPaxos. *)

val f5_epaxos_motivation : ?seeds:int -> Format.formatter -> unit
(** F5 — the paper's §1 motivation: the EPaxos-style protocol commits in
    two message delays with [2f+1] processes under up to
    [e = ceil((f+1)/2)] crashes when commands do not interfere, and
    degrades with the interference rate. *)

val all : ?domains:int -> Format.formatter -> unit
(** Run T1-T4 and F1-F5 in order. *)
