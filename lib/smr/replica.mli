(** State-machine replication on top of any single-shot consensus protocol.

    This is the deployment the paper's definition is tailored to (§1):
    clients submit commands to a {e proxy} replica, the proxy proposes them
    in a sequence of consensus instances (slots), and what matters for
    end-to-end latency is how fast {e the proxy} decides — the speed of the
    other replicas is irrelevant to the client.

    Each slot runs an independent instance of the underlying protocol;
    instance messages and timers are multiplexed by slot.  The replica is
    pipelined and batching: up to [pipeline] slots carry this replica's
    proposals concurrently, and each proposal packs up to [batch_max]
    queued commands into one value via the [pack]/[expand] codec
    (see {!Kv.Batch}), amortizing a consensus instance over a whole batch.
    Losing a slot to another replica's value means the batch's commands
    return to the queue and are reproposed.  Decisions are applied in slot
    order once contiguous, evaluated against the replica's own KV store
    ({!Kv.Mstore}), and emitted as one [(slot, command, response)] output
    {e per client command} after batch expansion, so per-command latency
    {e and return values} are observable — the latter is what the
    object-level linearizability checker consumes.

    Timers are virtualized through a bounded pool of lanes reclaimed when
    a slot decides, so long pipelined runs do not accumulate timer state
    (or Ω heartbeat chatter) for decided slots.

    Commands are [Proto.Value.t] (integers); {!Kv} provides a command codec
    and a replicated key-value store. *)

type mutation =
  | Stale_reads of Dsim.Pid.t
      (** The designated replica answers every [Get] with the key's {e
          previous} value (one write stale) while applying the same log as
          everyone else.  Deliberately non-linearizable: the mutation-test
          canary that the history checker must flag. *)

type 'pmsg msg

val pp_msg : (Format.formatter -> 'pmsg -> unit) -> Format.formatter -> 'pmsg msg -> unit

type 'pstate state

val applied : 'pstate state -> (int * Proto.Value.t) list
(** Commands applied so far, in slot order, after batch expansion (a slot
    that carried a batch of k commands contributes k entries). *)

val decided_slots : 'pstate state -> int
(** Number of slots known decided (not necessarily contiguous). *)

val make :
  ?pipeline:int ->
  ?batch_max:int ->
  ?pack:(Proto.Value.t list -> Proto.Value.t) ->
  ?expand:(Proto.Value.t -> Proto.Value.t list) ->
  ?mutation:mutation ->
  (module Proto.Protocol.S with type msg = 'pmsg and type state = 'pstate) ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  ('pstate state, 'pmsg msg, Proto.Value.t, int * Proto.Value.t * int) Dsim.Automaton.t
(** [pipeline] (default 1) bounds this replica's in-flight proposals;
    [batch_max] (default 1) bounds commands per proposal. [pack] combines
    [k >= 2] commands into one proposable value and [expand] inverts it
    (identity-on-singletons by default; required when [batch_max > 1] —
    typically {!Kv.Batch}). [mutation] (default none) injects a deliberate
    object-level bug for checker mutation testing. Outputs are
    [(slot, command, response)] triples; a word outside the single-op
    range responds [0] and leaves the store untouched. Raises
    [Invalid_argument] if either knob is [< 1]. *)

(** Existentially packaged SMR engine, so callers never name the underlying
    protocol's state and message types. *)
module Instance : sig
  type t

  val create :
    protocol:Proto.Protocol.t ->
    n:int ->
    e:int ->
    f:int ->
    delta:int ->
    net:Checker.Scenario.net ->
    ?seed:int ->
    ?pipeline:int ->
    ?batch_max:int ->
    ?commands:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
    ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
    ?faults:Dsim.Network.Fault.plan ->
    ?metrics:Stdext.Metrics.t ->
    ?causality:Dsim.Causality.t ->
    ?mutation:mutation ->
    ?max_steps:int ->
    unit ->
    t
  (** Each instance owns a private {!Kv.Batch} registry shared by all its
      replicas, so batch identifiers expand identically everywhere.
      [commands] (default none) pre-schedules submissions; live drivers
      use {!submit} instead. [max_steps] defaults to 20M engine steps.

      [causality] (default none) attaches a causal span tracer to the
      underlying engine with command-word payload encoders (inputs record
      the submitted word, outputs the applied word), so {!Spans} can
      reconstruct per-command critical paths from the store afterwards.
      Recording never perturbs the run. *)

  val run : ?until:Dsim.Time.t -> t -> Dsim.Engine.run_result

  val now : t -> Dsim.Time.t

  val submit : t -> at:Dsim.Time.t -> proxy:Dsim.Pid.t -> Proto.Value.t -> unit
  (** Schedule a client command at [proxy] ([at >= now]); usable between
      [run ~until] steps for closed-loop workloads. *)

  val applied_log : t -> Dsim.Pid.t -> (int * Proto.Value.t) list
  (** A replica's applied (slot, command) sequence so far, batch-expanded. *)

  val outputs : t -> (Dsim.Time.t * Dsim.Pid.t * (int * Proto.Value.t * int)) list
  (** Application events across all replicas, chronological; the third
      component is the op's response value (see {!make}). *)

  val drain_new_outputs :
    t -> f:(Dsim.Time.t -> Dsim.Pid.t -> int -> Proto.Value.t -> int -> unit) -> unit
  (** Call [f time pid slot command response] for every apply event not yet
      drained (chronological); each event is delivered exactly once across
      calls. O(new events) per call. *)

  val commit_time : t -> proxy:Dsim.Pid.t -> command:Proto.Value.t -> Dsim.Time.t option
  (** When [proxy] first applied [command], if it has. O(1) amortized:
      backed by an incrementally maintained index, not a log scan. *)

  val converged : t -> bool
  (** Every pair of replicas' applied logs agree on their common prefix
      (the fundamental SMR safety property). *)
end
