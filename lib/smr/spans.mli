(** Per-command critical paths over an SMR run's causal span store.

    A fleet or instance run with a {!Dsim.Causality} tracer attached
    records every submit ([Input] span carrying the command word at its
    proxy) and every apply ([Output] span carrying the word at the replica
    that applied it).  For each command this module walks the apply's
    causal chain back to its root and renders it as an explicit sequence
    of {e message legs} — who sent to whom, when, and how long the hop
    took — plus the derived [delay_steps] count: the number of message
    delays on the path, the unit the paper's two-step/three-step
    distinction is denominated in.

    The chain is the {e actual} causal dependency of the apply, which is
    not always the command's own consensus instance: in-order application
    means a command whose slot decided early may be applied when an {e
    earlier} slot's decision arrives, and batching gives every command of
    a batch the batch's chain.  On a conflict-free run (one client, one
    slot at a time) the chain is exactly the textbook diagram — submit →
    proposal → quorum reply → apply — and [delay_steps] lands on the
    protocol's theoretical figure: 2 for the two-step protocols at every
    proxy, 2 at Paxos's leader but 4 behind a non-leader proxy (submit
    relay + phase 2 + learn), conflict-dependent for EPaxos. *)

type leg = {
  src : Dsim.Pid.t;
  dst : Dsim.Pid.t;
  sent_at : Dsim.Time.t;
  delivered_at : Dsim.Time.t;
}
(** One message hop on a critical path; duration
    [delivered_at - sent_at]. *)

type path = {
  proxy : Dsim.Pid.t;  (** replica where the command was submitted and applied *)
  command : int;  (** packed command word *)
  submit : Dsim.Time.t;  (** the proxy's [Input] span instant *)
  apply : Dsim.Time.t;  (** the proxy's [Output] span instant *)
  delay_steps : int;  (** legs on the apply's causal chain = message delays *)
  legs : leg list;  (** chronological (root side first) *)
  queue_ms : int;
      (** [apply - submit] minus the time actually spent on the wire by
          the chain's legs {e after} submission, clamped at 0: local
          queueing/processing (pipeline waits, apply-order stalls).
          Chains that route through another command's instance may start
          before this command's submit; the pre-submit part of a leg does
          not count against this command's wait. *)
}

val total_ms : path -> int
(** [apply - submit], the client-visible proxy latency. *)

val command_paths : Dsim.Causality.t -> path list
(** Reconstruct the critical path of every command that was both
    submitted (first [Input] carrying its word at some pid) and applied
    at its submission replica (first such [Output]), in apply order.
    O(spans + total path length). *)

(** {2 Fast-path / slow-path attribution} *)

type attribution = {
  commits : int;
  two_step : int;  (** commits with [delay_steps <= 2] — the fast path *)
  steps_hist : (int * int) list;  (** [delay_steps -> commits], ascending *)
  dominant : (string * int) list;
      (** per-commit largest latency component -> commits. Components are
          ["leg1"], ["leg2"], … (chain position, root side first) and
          ["queue"] ({!path.queue_ms}); ties go to the earlier leg. *)
  p99_dominant : string option;
      (** the component with the largest mean over the commits in the
          p99 latency tail ([total_ms >= p99]); [None] when empty. *)
}

val attribution : path list -> attribution

val two_step_rate : attribution -> float
(** [two_step / commits]; [nan] when no commits. *)

val pp_attribution : Format.formatter -> attribution -> unit

(** {2 Theoretical predicate}

    What the paper's table says about each protocol's fast path, keyed by
    the CLI protocol names; the measured histograms above are
    cross-checked against this in `bench smr` and the conflict-free
    assertions. *)

type predicate =
  | Every_proxy  (** two-step capable at every proxy (the 2Δ protocols) *)
  | Leader_only of Dsim.Pid.t
      (** two-step only when the proxy is the (ballot-0) leader; other
          proxies pay the submit relay and the learn hop *)
  | Conflict_dependent  (** EPaxos: fast iff the command's deps commute *)

val predicate : string -> predicate option
(** ["rgs-task"], ["rgs-object"], ["fast-paxos"] are [Every_proxy];
    ["paxos"] is [Leader_only 0]; ["epaxos"] is [Conflict_dependent];
    anything else [None]. *)

val predicate_name : predicate -> string
