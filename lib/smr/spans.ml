module C = Dsim.Causality
module Stats = Stdext.Stats

type leg = {
  src : Dsim.Pid.t;
  dst : Dsim.Pid.t;
  sent_at : Dsim.Time.t;
  delivered_at : Dsim.Time.t;
}

type path = {
  proxy : Dsim.Pid.t;
  command : int;
  submit : Dsim.Time.t;
  apply : Dsim.Time.t;
  delay_steps : int;
  legs : leg list;
  queue_ms : int;
}

let total_ms p = p.apply - p.submit

let command_paths store =
  let len = C.length store in
  (* (pid, word) -> first submit instant; commands are distinct words per
     client, so collisions are only client resubmissions (first wins, like
     the fleet's latency accounting). *)
  let submits : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let applied : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let paths_rev = ref [] in
  for id = 0 to len - 1 do
    match C.kind_of store id with
    | C.Input ->
        let key = (C.pid store id, C.payload store id) in
        if not (Hashtbl.mem submits key) then Hashtbl.add submits key (C.time store id)
    | C.Output -> (
        let key = (C.pid store id, C.payload store id) in
        match Hashtbl.find_opt submits key with
        | None -> ()  (* an apply at a non-proxy replica *)
        | Some submit ->
            if not (Hashtbl.mem applied key) then begin
              Hashtbl.add applied key ();
              let apply = C.time store id in
              (* Walk the apply's causal chain; Deliver spans are the legs. *)
              let legs =
                List.filter_map
                  (fun sid ->
                    match C.kind_of store sid with
                    | C.Deliver ->
                        Some
                          {
                            src = C.aux store sid;
                            dst = C.pid store sid;
                            sent_at = C.start_at store sid;
                            delivered_at = C.time store sid;
                          }
                    | _ -> None)
                  (C.path store id)
              in
              let wire =
                List.fold_left
                  (fun acc l -> acc + (l.delivered_at - max l.sent_at submit))
                  0 legs
              in
              let proxy, command = key in
              paths_rev :=
                {
                  proxy;
                  command;
                  submit;
                  apply;
                  delay_steps = List.length legs;
                  legs;
                  queue_ms = max 0 (apply - submit - wire);
                }
                :: !paths_rev
            end)
    | _ -> ()
  done;
  List.rev !paths_rev

(* -- attribution -------------------------------------------------------- *)

type attribution = {
  commits : int;
  two_step : int;
  steps_hist : (int * int) list;
  dominant : (string * int) list;
  p99_dominant : string option;
}

let leg_label k = Printf.sprintf "leg%d" (k + 1)

(* The commit's largest latency component: its legs (by chain position)
   and its queueing. Ties go to the earliest leg — on an all-equal fast
   path the first hop is as good a name as any. *)
let dominant_component p =
  let best_label = ref "queue" and best = ref (-1) in
  List.iteri
    (fun k l ->
      let d = l.delivered_at - l.sent_at in
      if d > !best then begin
        best := d;
        best_label := leg_label k
      end)
    p.legs;
  if p.queue_ms > !best then "queue" else !best_label

let attribution paths =
  let commits = List.length paths in
  let two_step = List.length (List.filter (fun p -> p.delay_steps <= 2) paths) in
  let hist = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace hist p.delay_steps
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist p.delay_steps)))
    paths;
  let steps_hist =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist [])
  in
  let dom = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let c = dominant_component p in
      Hashtbl.replace dom c (1 + Option.value ~default:0 (Hashtbl.find_opt dom c)))
    paths;
  let dominant = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) dom []) in
  let p99_dominant =
    match Stats.percentile_opt (Array.of_list (List.map total_ms paths)) 99.0 with
    | None -> None
    | Some p99 ->
        let tail = List.filter (fun p -> total_ms p >= p99) paths in
        (* Mean duration per component over the tail commits. *)
        let sums = Hashtbl.create 8 in
        let bump label v =
          Hashtbl.replace sums label (v + Option.value ~default:0 (Hashtbl.find_opt sums label))
        in
        List.iter
          (fun p ->
            bump "queue" p.queue_ms;
            List.iteri (fun k l -> bump (leg_label k) (l.delivered_at - l.sent_at)) p.legs)
          tail;
        let best =
          Hashtbl.fold
            (fun label v acc ->
              match acc with
              | Some (_, bv) when bv >= v -> acc
              | _ -> Some (label, v))
            sums None
        in
        Option.map fst best
  in
  { commits; two_step; steps_hist; dominant; p99_dominant }

let two_step_rate a =
  if a.commits = 0 then nan else float_of_int a.two_step /. float_of_int a.commits

let pp_attribution fmt a =
  Format.fprintf fmt "commits %d, two-step %d (%.1f%%)" a.commits a.two_step
    (100.0 *. two_step_rate a);
  Format.fprintf fmt ", delay_steps {%s}"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%d: %d" k v) a.steps_hist));
  Format.fprintf fmt ", dominant {%s}"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s: %d" k v) a.dominant));
  match a.p99_dominant with
  | None -> ()
  | Some c -> Format.fprintf fmt ", p99 tail dominated by %s" c

(* -- theory ------------------------------------------------------------- *)

type predicate = Every_proxy | Leader_only of Dsim.Pid.t | Conflict_dependent

let predicate = function
  | "rgs-task" | "rgs-object" | "fast-paxos" -> Some Every_proxy
  | "paxos" -> Some (Leader_only 0)
  | "epaxos" -> Some Conflict_dependent
  | _ -> None

let predicate_name = function
  | Every_proxy -> "two-step at every proxy"
  | Leader_only p -> Printf.sprintf "two-step only at the leader (pid %d)" p
  | Conflict_dependent -> "two-step when conflict-free (EPaxos)"
