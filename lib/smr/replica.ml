module Pid = Dsim.Pid
module Time = Dsim.Time
module Automaton = Dsim.Automaton
module Value = Proto.Value
module Imap = Map.Make (Int)

type 'pmsg msg = { slot : int; payload : 'pmsg }

let pp_msg pp_payload fmt m = Format.fprintf fmt "[slot %d] %a" m.slot pp_payload m.payload

(* Timers of slot s live in [s * stride, (s+1) * stride); comfortably above
   the Ω range (1000 + n) used inside each instance. *)
let timer_stride = 4096

type 'pstate state = {
  self : Pid.t;
  n : int;
  slots : 'pstate Imap.t;
  decided : Value.t Imap.t;  (* slot -> decided command *)
  applied_rev : (int * Value.t) list;  (* contiguous prefix, newest first *)
  next_apply : int;
  queue : Value.t list;  (* my commands not yet proposed, oldest first *)
  inflight : (int * Value.t) option;  (* slot where my current command runs *)
}

let applied s = List.rev s.applied_rev

let decided_slots s = Imap.cardinal s.decided

let make (type pm ps) (module P : Proto.Protocol.S with type msg = pm and type state = ps)
    ~n ~e ~f ~delta =
  let inner = P.make ~n ~e ~f ~delta in
  let wrap_actions slot actions =
    List.filter_map
      (fun action ->
        match action with
        | Automaton.Send (dst, payload) -> Some (Automaton.Send (dst, { slot; payload }))
        | Automaton.Broadcast payload -> Some (Automaton.Broadcast { slot; payload })
        | Automaton.Set_timer { id; after } ->
            Some (Automaton.Set_timer { id = (slot * timer_stride) + id; after })
        | Automaton.Cancel_timer id -> Some (Automaton.Cancel_timer ((slot * timer_stride) + id))
        | Automaton.Output _ -> None (* decisions are intercepted separately below *))
      actions
  in
  (* Run one instance transition, harvesting any decision from its
     actions. *)
  let step_instance s slot transition =
    let pstate, init_actions =
      match Imap.find_opt slot s.slots with
      | Some ps -> (ps, [])
      | None ->
          (* Lazy instance creation: the slot's init timers and Ω chatter
             re-arm under the slot's own timer range. *)
          let ps, actions = inner.init ~self:s.self ~n:s.n in
          (ps, wrap_actions slot actions)
    in
    let pstate', actions = transition pstate in
    let decision =
      List.find_map (function Automaton.Output v -> Some v | _ -> None) actions
    in
    let s = { s with slots = Imap.add slot pstate' s.slots } in
    (s, init_actions @ wrap_actions slot actions, decision)
  in
  (* Next slot this replica believes free: above everything it has seen. *)
  let next_free_slot s =
    let top_decided = match Imap.max_binding_opt s.decided with Some (k, _) -> k + 1 | None -> 0 in
    let top_active = match Imap.max_binding_opt s.slots with Some (k, _) -> k + 1 | None -> 0 in
    max top_decided top_active
  in
  let propose_in_slot s slot cmd =
    let s, actions, decision = step_instance s slot (fun ps -> inner.on_input ps cmd) in
    assert (decision = None);
    ({ s with inflight = Some (slot, cmd) }, actions)
  in
  (* Apply newly contiguous decisions and emit them. *)
  let rec drain_applies s acc =
    match Imap.find_opt s.next_apply s.decided with
    | None -> (s, List.rev acc)
    | Some cmd ->
        let s =
          {
            s with
            applied_rev = (s.next_apply, cmd) :: s.applied_rev;
            next_apply = s.next_apply + 1;
          }
        in
        drain_applies s (Automaton.Output (s.next_apply - 1, cmd) :: acc)
  in
  (* A slot decided: record, apply, and repropose our command if it lost. *)
  let handle_decision s slot cmd =
    if Imap.mem slot s.decided then (s, [])
    else begin
      let s = { s with decided = Imap.add slot cmd s.decided } in
      let s, apply_actions = drain_applies s [] in
      match s.inflight with
      | Some (inslot, mine) when inslot = slot ->
          if Value.equal mine cmd then begin
            (* Our command committed; move to the next queued one. *)
            match s.queue with
            | [] -> ({ s with inflight = None }, apply_actions)
            | next :: rest ->
                let s = { s with queue = rest; inflight = None } in
                let s, actions = propose_in_slot s (next_free_slot s) next in
                (s, apply_actions @ actions)
          end
          else begin
            (* Lost the slot: repropose the same command in a fresh slot. *)
            let s = { s with inflight = None } in
            let s, actions = propose_in_slot s (next_free_slot s) mine in
            (s, apply_actions @ actions)
          end
      | _ -> (s, apply_actions)
    end
  in
  let init ~self ~n:n' =
    assert (n = n');
    ( {
        self;
        n;
        slots = Imap.empty;
        decided = Imap.empty;
        applied_rev = [];
        next_apply = 0;
        queue = [];
        inflight = None;
      },
      [] )
  in
  let on_message s ~src { slot; payload } =
    let s, actions, decision =
      step_instance s slot (fun ps -> inner.on_message ps ~src payload)
    in
    match decision with
    | None -> (s, actions)
    | Some cmd ->
        let s, more = handle_decision s slot cmd in
        (s, actions @ more)
  in
  let on_input s cmd =
    match s.inflight with
    | Some _ -> ({ s with queue = s.queue @ [ cmd ] }, [])
    | None -> propose_in_slot s (next_free_slot s) cmd
  in
  let on_timer s id =
    let slot = id / timer_stride and inner_id = id mod timer_stride in
    if not (Imap.mem slot s.slots) then (s, [])
    else begin
      let s, actions, decision = step_instance s slot (fun ps -> inner.on_timer ps inner_id) in
      match decision with
      | None -> (s, actions)
      | Some cmd ->
          let s, more = handle_decision s slot cmd in
          (s, actions @ more)
    end
  in
  (* The record itself is immutable; only the inner per-slot states may
     need deep-copying, which the inner automaton knows how to do. *)
  let state_copy s = { s with slots = Imap.map inner.Automaton.state_copy s.slots } in
  (* Not explored with dedup: the SMR wrapper runs under stochastic
     networks, where engine fingerprints must not key a visited set. *)
  { Automaton.init; on_message; on_input; on_timer; state_copy; state_fingerprint = None }

module Instance = struct
  type t =
    | T : {
        engine : ('ps state, 'pm msg, Value.t, int * Value.t) Dsim.Engine.t;
        n : int;
      }
        -> t

  let create ~protocol ~n ~e ~f ~delta ~net ?(seed = 0) ~commands ?(crashes = []) () =
    let (module P : Proto.Protocol.S) = protocol in
    let automaton = make (module P) ~n ~e ~f ~delta in
    let network : _ Dsim.Network.t =
      match (net : Checker.Scenario.net) with
      | Checker.Scenario.Sync order ->
          let order =
            match order with
            | `Arrival -> Dsim.Network.Arrival
            | `Random -> Dsim.Network.Random_order
            | `Favor p -> Dsim.Network.Favor p
          in
          Dsim.Network.Sync_rounds { delta; order }
      | Checker.Scenario.Partial { gst; max_pre_gst } ->
          Dsim.Network.Partial_sync { delta; gst; max_pre_gst }
      | Checker.Scenario.Uniform { min_delay; max_delay } ->
          Dsim.Network.Uniform { min_delay; max_delay }
      | Checker.Scenario.Wan { latency; jitter } -> Dsim.Network.Wan { latency; jitter }
    in
    let engine =
      Dsim.Engine.create ~automaton ~n ~network ~seed ~record_trace:false
        ~max_steps:20_000_000 ~inputs:commands ~crashes ()
    in
    T { engine; n }

  let run ?until (T { engine; _ }) = Dsim.Engine.run ?until engine

  let now (T { engine; _ }) = Dsim.Engine.now engine

  let applied_log (T { engine; _ }) pid = applied (Dsim.Engine.state engine pid)

  let outputs (T { engine; _ }) = Dsim.Engine.outputs engine

  let commit_time t ~proxy ~command =
    List.find_map
      (fun (time, pid, (_, cmd)) ->
        if Pid.equal pid proxy && Value.equal cmd command then Some time else None)
      (outputs t)

  let converged (T { engine; n }) =
    let logs = List.map (fun p -> applied (Dsim.Engine.state engine p)) (Pid.all ~n) in
    let rec prefix_agree a b =
      match (a, b) with
      | [], _ | _, [] -> true
      | x :: xs, y :: ys -> x = y && prefix_agree xs ys
    in
    let rec all_pairs = function
      | [] -> true
      | l :: rest -> List.for_all (prefix_agree l) rest && all_pairs rest
    in
    all_pairs logs
end
