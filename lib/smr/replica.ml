module Pid = Dsim.Pid
module Time = Dsim.Time
module Automaton = Dsim.Automaton
module Value = Proto.Value
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type mutation = Stale_reads of Pid.t

type 'pmsg msg = { slot : int; payload : 'pmsg }

let pp_msg pp_payload fmt m = Format.fprintf fmt "[slot %d] %a" m.slot pp_payload m.payload

(* Timers are virtualized through a small pool of {e lanes}: a slot that
   needs timers borrows a lane, global timer id = lane * stride + inner id,
   and the lane is reclaimed (all armed timers cancelled) the moment the
   slot decides.  This keeps the engine's flat timer table bounded by the
   number of {e undecided} slots rather than the total slot count — a
   pipelined run commits thousands of slots, and without reclamation every
   decided slot's Ω heartbeat would keep re-arming forever. *)
let lane_stride = 2048

let max_lanes = 256

type 'pstate state = {
  self : Pid.t;
  n : int;
  slots : 'pstate Imap.t;
  decided : Value.t Imap.t;  (* slot -> decided value (possibly a batch) *)
  applied_rev : (int * Value.t) list;  (* expanded commands, newest first *)
  next_apply : int;
  store : Kv.Mstore.t;  (* KV state after the applied prefix: read results *)
  (* My submitted commands not yet proposed: a front/back functional queue
     (front oldest-first, back newest-first) for O(1) amortized enqueue. *)
  queue_front : Value.t list;
  queue_back : Value.t list;
  queue_len : int;
  inflight : Value.t Imap.t;  (* slot -> value I proposed there *)
  lane_of_slot : int Imap.t;
  slot_of_lane : int Imap.t;
  free_lanes : int list;
  armed : Iset.t Imap.t;  (* slot -> inner timer ids armed and not cancelled *)
}

let applied s = List.rev s.applied_rev

let decided_slots s = Imap.cardinal s.decided

let queue_push s v =
  { s with queue_back = v :: s.queue_back; queue_len = s.queue_len + 1 }

let queue_push_front s vs =
  { s with queue_front = vs @ s.queue_front; queue_len = s.queue_len + List.length vs }

let queue_pop s =
  match s.queue_front with
  | v :: rest -> Some (v, { s with queue_front = rest; queue_len = s.queue_len - 1 })
  | [] -> (
      match List.rev s.queue_back with
      | [] -> None
      | v :: rest ->
          Some (v, { s with queue_front = rest; queue_back = []; queue_len = s.queue_len - 1 }))

let make (type pm ps) ?(pipeline = 1) ?(batch_max = 1) ?pack ?expand ?mutation
    (module P : Proto.Protocol.S with type msg = pm and type state = ps) ~n ~e ~f ~delta =
  if pipeline < 1 then invalid_arg "Replica.make: pipeline < 1";
  if batch_max < 1 then invalid_arg "Replica.make: batch_max < 1";
  let pack =
    match pack with
    | Some pack -> pack
    | None -> (
        function [ v ] -> v | _ -> invalid_arg "Replica.make: batch_max > 1 needs ~pack")
  in
  let expand = match expand with Some expand -> expand | None -> fun v -> [ v ] in
  let inner = P.make ~n ~e ~f ~delta in
  let alloc_lane s slot =
    match Imap.find_opt slot s.lane_of_slot with
    | Some lane -> (s, Some lane)
    | None -> (
        match s.free_lanes with
        | [] -> (s, None)
        | lane :: rest ->
            ( {
                s with
                free_lanes = rest;
                lane_of_slot = Imap.add slot lane s.lane_of_slot;
                slot_of_lane = Imap.add lane slot s.slot_of_lane;
              },
              Some lane ))
  in
  (* Rewrite one instance transition's actions into the multiplexed space;
     threads the state because timer actions allocate/update lanes. *)
  let wrap_actions s slot actions =
    let s, rev =
      List.fold_left
        (fun (s, acc) action ->
          match action with
          | Automaton.Send (dst, payload) -> (s, Automaton.Send (dst, { slot; payload }) :: acc)
          | Automaton.Broadcast payload -> (s, Automaton.Broadcast { slot; payload } :: acc)
          | Automaton.Set_timer { id; after } -> (
              assert (id >= 0 && id < lane_stride);
              (* Decided slots get no timers (this is what retires their Ω
                 heartbeats); losing a timer is liveness-only, so it is
                 also the safe degradation when lanes run out. *)
              if Imap.mem slot s.decided then (s, acc)
              else
                match alloc_lane s slot with
                | s, None -> (s, acc)
                | s, Some lane ->
                    let armed =
                      match Imap.find_opt slot s.armed with
                      | Some set -> set
                      | None -> Iset.empty
                    in
                    let s = { s with armed = Imap.add slot (Iset.add id armed) s.armed } in
                    (s, Automaton.Set_timer { id = (lane * lane_stride) + id; after } :: acc))
          | Automaton.Cancel_timer id -> (
              match Imap.find_opt slot s.lane_of_slot with
              | None -> (s, acc)
              | Some lane ->
                  let s =
                    match Imap.find_opt slot s.armed with
                    | Some set -> { s with armed = Imap.add slot (Iset.remove id set) s.armed }
                    | None -> s
                  in
                  (s, Automaton.Cancel_timer ((lane * lane_stride) + id) :: acc))
          | Automaton.Output _ -> (s, acc) (* decisions are intercepted separately *))
        (s, []) actions
    in
    (s, List.rev rev)
  in
  (* Run one instance transition, harvesting any decision from its
     actions. *)
  let step_instance s slot transition =
    let s, pstate, init_actions =
      match Imap.find_opt slot s.slots with
      | Some ps -> (s, ps, [])
      | None ->
          (* Lazy instance creation: the slot's init timers land in a
             freshly borrowed lane. *)
          let ps, actions = inner.init ~self:s.self ~n:s.n in
          let s, actions = wrap_actions s slot actions in
          (s, ps, actions)
    in
    let pstate', actions = transition pstate in
    let decision =
      List.find_map (function Automaton.Output v -> Some v | _ -> None) actions
    in
    let s = { s with slots = Imap.add slot pstate' s.slots } in
    let s, actions = wrap_actions s slot actions in
    (s, init_actions @ actions, decision)
  in
  (* Next slot this replica believes free: above everything it has seen. *)
  let next_free_slot s =
    let top m = match Imap.max_binding_opt m with Some (k, _) -> k + 1 | None -> 0 in
    max (top s.decided) (max (top s.slots) (top s.inflight))
  in
  let propose_in_slot s slot value =
    let s, actions, decision = step_instance s slot (fun ps -> inner.on_input ps value) in
    assert (decision = None);
    ({ s with inflight = Imap.add slot value s.inflight }, actions)
  in
  let rec take_batch s k acc =
    if k = 0 then (s, List.rev acc)
    else
      match queue_pop s with
      | None -> (s, List.rev acc)
      | Some (v, s) -> take_batch s (k - 1) (v :: acc)
  in
  (* Keep proposing while the pipeline window has room: each proposal
     drains up to [batch_max] queued commands into one value. *)
  let rec refill s =
    if Imap.cardinal s.inflight >= pipeline || s.queue_len = 0 then (s, [])
    else begin
      let s, ops = take_batch s batch_max [] in
      let value = match ops with [ v ] -> v | ops -> pack ops in
      let s, actions = propose_in_slot s (next_free_slot s) value in
      let s, more = refill s in
      (s, actions @ more)
    end
  in
  (* The per-command response value: Put returns the value written, Get the
     key's current value against the replica's own applied-prefix store — a
     mutated replica serves Gets from the key's previous value instead (one
     write stale), which is exactly the bug the object-level
     linearizability checker exists to catch. *)
  let apply_command s word =
    if word < 0 || word >= Kv.batch_base then (s, 0)
    else begin
      let op = Kv.decode word in
      let stale_here =
        match mutation with
        | Some (Stale_reads pid) -> Pid.equal s.self pid && op.Kv.action = Kv.Get
        | None -> false
      in
      let store, ret = Kv.Mstore.eval s.store op in
      let ret = if stale_here then Kv.Mstore.stale s.store op.Kv.key else ret in
      ({ s with store }, ret)
    end
  in
  (* Apply newly contiguous decisions, expanding batches so every client
     command gets its own (slot, command, response) output. *)
  let rec drain_applies s acc =
    match Imap.find_opt s.next_apply s.decided with
    | None -> (s, List.rev acc)
    | Some value ->
        let slot = s.next_apply in
        let ops = expand value in
        let s, outputs_rev =
          List.fold_left
            (fun (s, acc) op ->
              let s, ret = apply_command s op in
              ( { s with applied_rev = (slot, op) :: s.applied_rev },
                Automaton.Output (slot, op, ret) :: acc ))
            (s, acc) ops
        in
        drain_applies { s with next_apply = slot + 1 } outputs_rev
  in
  (* Reclaim the slot's timer lane, cancelling everything still armed so
     the lane can be reused without stale fires crossing slots. *)
  let cancel_slot_lane s slot =
    match Imap.find_opt slot s.lane_of_slot with
    | None -> (s, [])
    | Some lane ->
        let armed =
          match Imap.find_opt slot s.armed with Some set -> set | None -> Iset.empty
        in
        let cancels =
          Iset.fold
            (fun id acc -> Automaton.Cancel_timer ((lane * lane_stride) + id) :: acc)
            armed []
        in
        ( {
            s with
            lane_of_slot = Imap.remove slot s.lane_of_slot;
            slot_of_lane = Imap.remove lane s.slot_of_lane;
            armed = Imap.remove slot s.armed;
            free_lanes = lane :: s.free_lanes;
          },
          cancels )
  in
  (* A slot decided: record, reclaim its lane, apply, and refill the
     pipeline (reproposing our commands first if the slot went to someone
     else's value). *)
  let handle_decision s slot value =
    if Imap.mem slot s.decided then (s, [])
    else begin
      let s = { s with decided = Imap.add slot value s.decided } in
      let s, cancels = cancel_slot_lane s slot in
      let s, applies = drain_applies s [] in
      let s, proposals =
        match Imap.find_opt slot s.inflight with
        | None -> (s, [])
        | Some mine ->
            let s = { s with inflight = Imap.remove slot s.inflight } in
            let s =
              if Value.equal mine value then s
              else
                (* Lost the slot: the batched commands go back to the front
                   of the queue, in order, for rebatching. *)
                queue_push_front s (expand mine)
            in
            refill s
      in
      (s, cancels @ applies @ proposals)
    end
  in
  let init ~self ~n:n' =
    assert (n = n');
    let rec lanes k = if k < 0 then [] else k :: lanes (k - 1) in
    ( {
        self;
        n;
        slots = Imap.empty;
        decided = Imap.empty;
        applied_rev = [];
        next_apply = 0;
        store = Kv.Mstore.empty;
        queue_front = [];
        queue_back = [];
        queue_len = 0;
        inflight = Imap.empty;
        lane_of_slot = Imap.empty;
        slot_of_lane = Imap.empty;
        free_lanes = List.rev (lanes (max_lanes - 1));
        armed = Imap.empty;
      },
      [] )
  in
  let on_message s ~src { slot; payload } =
    let s, actions, decision =
      step_instance s slot (fun ps -> inner.on_message ps ~src payload)
    in
    match decision with
    | None -> (s, actions)
    | Some value ->
        let s, more = handle_decision s slot value in
        (s, actions @ more)
  in
  let on_input s cmd = refill (queue_push s cmd) in
  let on_timer s id =
    let lane = id / lane_stride in
    match Imap.find_opt lane s.slot_of_lane with
    | None -> (s, []) (* stale fire from a reclaimed lane *)
    | Some slot -> (
        let s, actions, decision =
          step_instance s slot (fun ps -> inner.on_timer ps (id mod lane_stride))
        in
        match decision with
        | None -> (s, actions)
        | Some value ->
            let s, more = handle_decision s slot value in
            (s, actions @ more))
  in
  (* The record itself is immutable; only the inner per-slot states may
     need deep-copying, which the inner automaton knows how to do. *)
  let state_copy s = { s with slots = Imap.map inner.Automaton.state_copy s.slots } in
  (* Not explored with dedup: the SMR wrapper runs under stochastic
     networks, where engine fingerprints must not key a visited set. *)
  { Automaton.init; on_message; on_input; on_timer; state_copy; state_fingerprint = None }

module Instance = struct
  type packed =
    | E : ('ps state, 'pm msg, Value.t, int * Value.t * int) Dsim.Engine.t -> packed

  type t = {
    packed : packed;
    n : int;
    (* (pid, command) -> first apply time, filled incrementally so the
       fleet's per-command latency lookup is O(1) instead of a scan of the
       whole output log. *)
    commit_index : (Pid.t * Value.t, Time.t) Hashtbl.t;
    mutable indexed : int;  (* engine outputs consumed into the index *)
    pending : (Time.t * Pid.t * (int * Value.t * int)) Queue.t;
  }

  let create ~protocol ~n ~e ~f ~delta ~net ?(seed = 0) ?(pipeline = 1) ?(batch_max = 1)
      ?(commands = []) ?(crashes = []) ?faults ?metrics ?causality ?mutation
      ?(max_steps = 20_000_000) () =
    let (module P : Proto.Protocol.S) = protocol in
    let batches = Kv.Batch.create () in
    let automaton =
      make ~pipeline ~batch_max ~pack:(Kv.Batch.pack batches)
        ~expand:(Kv.Batch.expand batches) ?mutation
        (module P)
        ~n ~e ~f ~delta
    in
    let network : _ Dsim.Network.t =
      match (net : Checker.Scenario.net) with
      | Checker.Scenario.Sync order ->
          let order =
            match order with
            | `Arrival -> Dsim.Network.Arrival
            | `Random -> Dsim.Network.Random_order
            | `Favor p -> Dsim.Network.Favor p
          in
          Dsim.Network.Sync_rounds { delta; order }
      | Checker.Scenario.Partial { gst; max_pre_gst } ->
          Dsim.Network.Partial_sync { delta; gst; max_pre_gst }
      | Checker.Scenario.Uniform { min_delay; max_delay } ->
          Dsim.Network.Uniform { min_delay; max_delay }
      | Checker.Scenario.Wan { latency; jitter } -> Dsim.Network.Wan { latency; jitter }
    in
    (* Commands are already packed int words, so the span payload encoders
       are identity on inputs and project the command out of apply
       outputs — (pid, payload) then keys submit/apply span matching. *)
    let causality =
      Option.map
        (fun store ->
          Dsim.Causality.spec ~input:Fun.id
            ~output:(fun ((_slot, cmd, _ret) : int * Value.t * int) -> cmd)
            store)
        causality
    in
    let engine =
      Dsim.Engine.create ~automaton ~n ~network ~seed ~record_trace:false ~max_steps
        ~inputs:commands ~crashes ?faults ?metrics ?causality ()
    in
    {
      packed = E engine;
      n;
      commit_index = Hashtbl.create 4096;
      indexed = 0;
      pending = Queue.create ();
    }

  let run ?until t =
    let (E engine) = t.packed in
    Dsim.Engine.run ?until engine

  let now t =
    let (E engine) = t.packed in
    Dsim.Engine.now engine

  let applied_log t pid =
    let (E engine) = t.packed in
    applied (Dsim.Engine.state engine pid)

  let outputs t =
    let (E engine) = t.packed in
    Dsim.Engine.outputs engine

  let submit t ~at ~proxy cmd =
    let (E engine) = t.packed in
    Dsim.Engine.schedule_input engine ~at proxy cmd

  (* Sweep engine outputs emitted since the last sweep into both the
     commit-time index and the pending buffer for [drain_new_outputs]. *)
  let pull t =
    let (E engine) = t.packed in
    let total = Dsim.Engine.output_count engine in
    if total > t.indexed then begin
      let fresh = Dsim.Engine.recent_outputs engine ~since:t.indexed in
      t.indexed <- total;
      List.iter
        (fun ((time, pid, (_, cmd, _)) as event) ->
          if not (Hashtbl.mem t.commit_index (pid, cmd)) then
            Hashtbl.add t.commit_index (pid, cmd) time;
          Queue.add event t.pending)
        fresh
    end

  let drain_new_outputs t ~f =
    pull t;
    while not (Queue.is_empty t.pending) do
      let time, pid, (slot, cmd, ret) = Queue.pop t.pending in
      f time pid slot cmd ret
    done

  let commit_time t ~proxy ~command =
    pull t;
    Hashtbl.find_opt t.commit_index (proxy, command)

  let converged t =
    let (E engine) = t.packed in
    let logs =
      List.map (fun p -> applied (Dsim.Engine.state engine p)) (Pid.all ~n:t.n)
    in
    let rec prefix_agree a b =
      match (a, b) with
      | [], _ | _, [] -> true
      | x :: xs, y :: ys -> x = y && prefix_agree xs ys
    in
    let rec all_pairs = function
      | [] -> true
      | l :: rest -> List.for_all (prefix_agree l) rest && all_pairs rest
    in
    all_pairs logs
end
