(** A replicated key-value store: the application layer over {!Replica}.

    Consensus commands are integers, so a single KV operation is bit-packed
    into a [Proto.Value.t]: value in bits 0..9 (0..1023, writes only), key
    in bits 10..19 (0..1023), client in bits 20..45 (0..67M — comfortably
    beyond the 100k-client fleets the workload layer simulates), and the
    operation kind in bit 46 (0 = [Put], 1 = [Get]).  [Put] words therefore
    coincide with the pre-read codec's whole range, and distinct clients
    always produce distinct command words even for identical operations,
    which keeps SMR reproposals unambiguous.  Words [>= 2^47] are batch
    identifiers (see {!Batch}), never single ops.

    The store maps keys to integers; a key never written reads as [0], so
    [Get] always has a well-defined return value (the linearizability
    checker's register model relies on this). *)

type action = Put of int  (** write the value *) | Get  (** read the key *)

type op = { client : int; key : int; action : action }

val pp_op : Format.formatter -> op -> unit

val max_client : int
(** Largest encodable client id ([2^26 - 1]). *)

val batch_base : int
(** First word reserved for batch identifiers ([2^47]); every single-op
    command word is strictly below it. *)

val encode : op -> Proto.Value.t
(** Raises [Invalid_argument] if a field is out of range (keys and written
    values 0..1023, clients 0..{!max_client}). *)

val decode : Proto.Value.t -> op
(** Inverse of {!encode} on its range. Raises [Invalid_argument] on a
    negative word or a batch identifier. *)

val is_get : Proto.Value.t -> bool
(** True iff the word is a single-op [Get] command. *)

(** Batch-of-ops codec: a batch of [k >= 2] single-op words is proposed
    through consensus as one interned identifier word, amortizing a whole
    consensus instance over [k] commands.  The registry is shared by all
    replicas of one {!Replica.Instance} (content-addressed, so ids are
    deterministic in registration order). *)
module Batch : sig
  type t

  val create : unit -> t

  val is_batch : Proto.Value.t -> bool
  (** True iff the word is a batch identifier (i.e. [>= batch_base]). *)

  val pack : t -> Proto.Value.t list -> Proto.Value.t
  (** A singleton packs to itself; [k >= 2] ops intern to an identifier
      (the same list packs to the same id). Raises [Invalid_argument] on
      an empty list or a nested batch. *)

  val expand : t -> Proto.Value.t -> Proto.Value.t list
  (** Inverse of {!pack}: a non-batch word expands to itself as a
      singleton. Raises [Invalid_argument] on an unregistered batch id. *)

  val size : t -> Proto.Value.t -> int
  (** Number of ops the word carries (1 for a single op). *)
end

type store

val empty : unit -> store

val apply : store -> op -> unit
(** [Put] replaces the binding; [Get] leaves the store untouched. *)

val get : store -> int -> int option

val read : store -> int -> int
(** As {!get} with the never-written default [0]. *)

val replay : (int * Proto.Value.t) list -> store
(** Build the store state from an applied (slot, command) log. *)

val equal_store : store -> store -> bool

val pp_store : Format.formatter -> store -> unit

(** Persistent (O(1)-shared) store used inside {!Replica} state, where
    applying a command must also produce the operation's return value:
    a [Put] returns the value written, a [Get] the key's current value.
    The shadow of each key's {e previous} value is retained so a
    deliberately mutated replica can serve stale reads (the
    linearizability checker's canary, {!Replica.mutation}). *)
module Mstore : sig
  type t

  val empty : t

  val read : t -> int -> int
  (** Current value of the key ([0] if never written). *)

  val stale : t -> int -> int
  (** Value the key held {e before} its most recent [Put] ([0] if written
      at most once). *)

  val eval : t -> op -> t * int
  (** Apply the op and return its response value. *)
end
