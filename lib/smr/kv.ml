type action = Put of int | Get

type op = { client : int; key : int; action : action }

let pp_op fmt { client; key; action } =
  match action with
  | Put value -> Format.fprintf fmt "c%d: put k%d <- %d" client key value
  | Get -> Format.fprintf fmt "c%d: get k%d" client key

(* Bit layout of a single-op command word (always < 2^47):
     bits  0..9   value   (0..1023; zero for Get)
     bits 10..19  key     (0..1023)
     bits 20..45  client  (0..2^26 - 1)
     bit  46      kind    (0 = Put, 1 = Get)
   Put words therefore coincide with the pre-read codec's whole range.
   Words >= 2^47 are batch identifiers handed out by [Batch.pack]. *)

let value_bits = 10
let key_bits = 10
let client_bits = 26
let value_mask = (1 lsl value_bits) - 1
let key_mask = (1 lsl key_bits) - 1
let client_mask = (1 lsl client_bits) - 1
let max_client = client_mask
let kind_bit = 1 lsl (value_bits + key_bits + client_bits)
let batch_base = kind_bit lsl 1

let encode { client; key; action } =
  if key < 0 || key > key_mask || client < 0 || client > client_mask then
    invalid_arg "Kv.encode: field out of range";
  let base = (client lsl (key_bits + value_bits)) lor (key lsl value_bits) in
  match action with
  | Put value ->
      if value < 0 || value > value_mask then invalid_arg "Kv.encode: field out of range";
      base lor value
  | Get -> kind_bit lor base

let decode cmd =
  if cmd < 0 || cmd >= batch_base then invalid_arg "Kv.decode: not a single-op command";
  {
    client = (cmd lsr (key_bits + value_bits)) land client_mask;
    key = (cmd lsr value_bits) land key_mask;
    action = (if cmd land kind_bit <> 0 then Get else Put (cmd land value_mask));
  }

let is_get cmd = cmd >= 0 && cmd < batch_base && cmd land kind_bit <> 0

module Batch = struct
  (* A content-addressed intern table: a batch of k >= 2 ops is proposed
     through consensus as a single small identifier word, and every replica
     of one [Replica.Instance] shares the registry, so the id expands to
     the same op list wherever it is applied.  Singletons stay themselves,
     keeping one-command batches indistinguishable from the unbatched
     protocol (and the legacy codec). *)

  type t = {
    by_content : (Proto.Value.t list, Proto.Value.t) Hashtbl.t;
    by_id : (Proto.Value.t, Proto.Value.t list) Hashtbl.t;
    mutable next : Proto.Value.t;
  }

  let create () = { by_content = Hashtbl.create 64; by_id = Hashtbl.create 64; next = batch_base }

  let is_batch v = v >= batch_base

  let pack t ops =
    match ops with
    | [] -> invalid_arg "Kv.Batch.pack: empty batch"
    | [ v ] -> v
    | ops -> (
        List.iter
          (fun v -> if is_batch v then invalid_arg "Kv.Batch.pack: nested batch")
          ops;
        match Hashtbl.find_opt t.by_content ops with
        | Some id -> id
        | None ->
            let id = t.next in
            t.next <- t.next + 1;
            Hashtbl.add t.by_content ops id;
            Hashtbl.add t.by_id id ops;
            id)

  let expand t v =
    if not (is_batch v) then [ v ]
    else
      match Hashtbl.find_opt t.by_id v with
      | Some ops -> ops
      | None -> invalid_arg "Kv.Batch.expand: unknown batch id"

  let size t v = if is_batch v then List.length (expand t v) else 1
end

type store = (int, int) Hashtbl.t

let empty () = Hashtbl.create 64

let apply store { key; action; _ } =
  match action with Put value -> Hashtbl.replace store key value | Get -> ()

let get store key = Hashtbl.find_opt store key

let read store key = Option.value ~default:0 (get store key)

let replay log =
  let store = empty () in
  List.iter (fun (_, cmd) -> apply store (decode cmd)) log;
  store

let bindings store =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] |> List.sort compare

let equal_store a b = bindings a = bindings b

let pp_store fmt store =
  Format.pp_print_list ~pp_sep:Format.pp_print_space
    (fun fmt (k, v) -> Format.fprintf fmt "k%d=%d" k v)
    fmt (bindings store)

module Mstore = struct
  (* Persistent variant for replica-internal state: sharing on
     [Replica.state_copy] must be O(1), and the previous-value shadow map
     is what the deliberate stale-read mutation serves reads from. *)

  module Imap = Map.Make (Int)

  type t = { cur : int Imap.t; prev : int Imap.t }

  let empty = { cur = Imap.empty; prev = Imap.empty }

  let read t key = Option.value ~default:0 (Imap.find_opt key t.cur)

  let stale t key = Option.value ~default:0 (Imap.find_opt key t.prev)

  let eval t { key; action; _ } =
    match action with
    | Put value ->
        ({ cur = Imap.add key value t.cur; prev = Imap.add key (read t key) t.prev }, value)
    | Get -> (t, read t key)
end
