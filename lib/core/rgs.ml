module Pid = Dsim.Pid
module Automaton = Dsim.Automaton
module Value = Proto.Value
module Ballot = Proto.Ballot
module Omega = Proto.Omega

type mode = Task | Object

let pp_mode fmt = function
  | Task -> Format.pp_print_string fmt "task"
  | Object -> Format.pp_print_string fmt "object"

type msg =
  | Propose of Value.t
  | Two_b of { bal : Ballot.t; value : Value.t }
  | Decide of Value.t
  | One_a of Ballot.t
  | One_b of {
      bal : Ballot.t;
      vbal : Ballot.t;
      value : Value.t option;
      proposer : Pid.t option;
      decided : Value.t option;
    }
  | Two_a of { bal : Ballot.t; value : Value.t }
  | Omega_msg of Omega.msg

let pp_opt = Proto.Util.pp_opt

let pp_msg fmt = function
  | Propose v -> Format.fprintf fmt "Propose(%a)" Value.pp v
  | Two_b { bal; value } -> Format.fprintf fmt "2B(%a,%a)" Ballot.pp bal Value.pp value
  | Decide v -> Format.fprintf fmt "Decide(%a)" Value.pp v
  | One_a b -> Format.fprintf fmt "1A(%a)" Ballot.pp b
  | One_b { bal; vbal; value; proposer; decided } ->
      Format.fprintf fmt "1B(%a,vbal=%a,val=%a,prop=%a,dec=%a)" Ballot.pp bal Ballot.pp
        vbal (pp_opt Value.pp) value (pp_opt Pid.pp) proposer (pp_opt Value.pp) decided
  | Two_a { bal; value } -> Format.fprintf fmt "2A(%a,%a)" Ballot.pp bal Value.pp value
  | Omega_msg m -> Omega.pp_msg fmt m

(* Leader-side bookkeeping for one slow ballot this process started. *)
type slow = {
  sballot : Ballot.t;
  one_bs : Recovery.reply Pid.Map.t;
  computed : bool;  (* value selection already ran for this ballot *)
  svalue : Value.t option;  (* value sent in our 2A *)
  two_bs : Pid.Set.t;  (* matching 2B(sballot, svalue) votes *)
}

type state = {
  self : Pid.t;
  n : int;
  e : int;
  f : int;
  delta : int;
  mode : mode;
  bal : Ballot.t;  (* 𝗯𝗮𝗹: current ballot *)
  vbal : Ballot.t;  (* 𝘃𝗯𝗮𝗹: last ballot with a slow-path vote *)
  value : Value.t option;  (* 𝘃𝗮𝗹: current vote *)
  proposer : Pid.t option;  (* who proposed [value] at ballot 0 *)
  initial : Value.t option;  (* 𝗶𝗻𝗶𝘁𝗶𝗮𝗹_𝘃𝗮𝗹 *)
  heard : Value.t option;
  (* First proposal ever received, even when we could not vote for it. A
     leader with no proposal of its own falls back to it at line 19 —
     otherwise a proposal arriving after ballot 0 has been abandoned could
     never reach a decision (the Ω leader might never propose), violating
     the object's wait-freedom. Liveness-only: any heard value was
     proposed, so Validity is untouched, and lines 13-18 still take
     precedence. *)
  decided : Value.t option;
  fast_acks : Pid.Set.t;  (* 2B(0, initial) senders *)
  slow : slow option;
  omega : Omega.state;
}

let current_ballot s = s.bal

let voted_value s = s.value

let initial_value s = s.initial

let decided_value s = s.decided

let new_ballot_timer = 1

(* The paper's timer schedule (§C.1): first 2Δ, then every 5Δ. *)
let initial_timeout s = 2 * s.delta

let steady_timeout s = 5 * s.delta

let send_to_all s m = Proto.Util.send_to_all ~n:s.n m

let broadcast_others s m = Proto.Util.send_others ~n:s.n ~self:s.self m

(* decide v (lines 8-9 / 11): record, output, tell everyone. *)
let decide s v =
  match s.decided with
  | Some _ -> (s, [])
  | None ->
      let s = { s with value = Some v; decided = Some v } in
      (s, (Automaton.Output v :: broadcast_others s (Decide v)))

(* First disjunct of line 7: fast-path decision check. *)
let try_fast_decide s =
  match (s.decided, s.initial) with
  | None, Some v
    when Ballot.is_fast s.bal
         && (s.value = None || s.value = Some v)
         && Pid.Set.cardinal (Pid.Set.add s.self s.fast_acks) >= s.n - s.e ->
      decide s v
  | _ -> (s, [])

(* Lines 2-4: adopt an initial value and announce it. *)
let propose s v =
  if s.value <> None || s.initial <> None || s.decided <> None then (s, [])
  else begin
    let s = { s with initial = Some v } in
    let s, decide_actions = try_fast_decide s in
    (s, broadcast_others s (Propose v) @ decide_actions)
  end

(* Lines 5-6: vote for a fast-ballot proposal. *)
let on_propose s ~src v =
  let s = if s.heard = None then { s with heard = Some v } else s in
  let object_ok =
    match s.mode with
    | Task -> true
    | Object -> ( match s.initial with None -> true | Some own -> Value.equal v own)
  in
  if
    Ballot.is_fast s.bal && s.value = None
    && Value.geq_bottom v s.initial
    && object_ok
  then begin
    let s = { s with value = Some v; proposer = Some src } in
    (* Voting for our own value (proposed by someone else too) may complete
       our fast quorum. *)
    let s, decide_actions = try_fast_decide s in
    (s, Automaton.Send (src, Two_b { bal = Ballot.fast; value = v }) :: decide_actions)
  end
  else (s, [])

let on_two_b s ~src ~bal ~value =
  if Ballot.is_fast bal then begin
    (* A vote for our own fast-ballot proposal. *)
    match s.initial with
    | Some v when Value.equal v value ->
        let s = { s with fast_acks = Pid.Set.add src s.fast_acks } in
        try_fast_decide s
    | Some _ | None -> (s, [])
  end
  else begin
    (* Second disjunct of line 7: a slow-ballot vote for our 2A. *)
    match s.slow with
    | Some slow when Ballot.equal slow.sballot bal && slow.svalue = Some value ->
        let slow = { slow with two_bs = Pid.Set.add src slow.two_bs } in
        let s = { s with slow = Some slow } in
        if Pid.Set.cardinal slow.two_bs >= s.n - s.f then decide s value else (s, [])
    | Some _ | None -> (s, [])
  end

let on_decide s v = decide s v

(* Lines 20-22: join a higher ballot and report our state. *)
let on_one_a s ~src b =
  if b > s.bal then begin
    let s = { s with bal = b } in
    let reply =
      One_b
        {
          bal = b;
          vbal = s.vbal;
          value = s.value;
          proposer = s.proposer;
          decided = s.decided;
        }
    in
    (s, [ Automaton.Send (src, reply) ])
  end
  else (s, [])

(* Lines 12-19: the leader gathered a 1B; at n-f replies select a value. *)
let on_one_b s ~src ~bal reply =
  match s.slow with
  | Some slow when Ballot.equal slow.sballot bal && not slow.computed ->
      let one_bs = Pid.Map.add src reply slow.one_bs in
      if Pid.Map.cardinal one_bs >= s.n - s.f then begin
        let replies = List.map snd (Pid.Map.bindings one_bs) in
        let choice =
          let fallback = if s.initial <> None then s.initial else s.heard in
          Recovery.select ~n:s.n ~e:s.e ~f:s.f ~initial:fallback ~replies
        in
        match Recovery.value_of_choice choice with
        | Some v ->
            let slow =
              { slow with one_bs; computed = true; svalue = Some v }
            in
            ({ s with slow = Some slow }, send_to_all s (Two_a { bal; value = v }))
        | None ->
            (* Nothing to propose (object mode, nobody proposed yet). *)
            ({ s with slow = Some { slow with one_bs; computed = true } }, [])
      end
      else ({ s with slow = Some { slow with one_bs } }, [])
  | Some _ | None -> (s, [])

(* Lines 23-25: accept a slow-ballot proposal and vote for it. *)
let on_two_a s ~src ~bal ~value =
  if s.bal <= bal then begin
    let s = { s with value = Some value; bal; vbal = bal } in
    (s, [ Automaton.Send (src, Two_b { bal; value }) ])
  end
  else (s, [])

(* §C.1: on timeout, re-arm and, if Ω elects us, start the next ballot we
   own. *)
let on_new_ballot_timer s =
  let rearm = Automaton.Set_timer { id = new_ballot_timer; after = steady_timeout s } in
  if s.decided <> None then (s, [])
  else if Pid.equal (Omega.leader s.omega) s.self then begin
    let b = Ballot.next_owned ~n:s.n ~self:s.self ~above:s.bal in
    let slow =
      {
        sballot = b;
        one_bs = Pid.Map.empty;
        computed = false;
        svalue = None;
        two_bs = Pid.Set.empty;
      }
    in
    ({ s with slow = Some slow }, rearm :: send_to_all s (One_a b))
  end
  else (s, [ rearm ])

(* Structural hash for the explorer's dedup. Per the {!Dsim.Fingerprint}
   contract: every pid (self, proposer, ack/vote sets, 1B-reply map keys
   and senders) goes through [relabel]; sets and maps fold commutatively
   so the digest is independent of construction order. *)
let fingerprint ~relabel s =
  let module Fp = Dsim.Fingerprint in
  let pid p = Fp.int (relabel p) in
  let reply (r : Recovery.reply) =
    let fp = Fp.mix 103L (pid r.sender) in
    let fp = Fp.mix fp (Fp.int r.vbal) in
    let fp = Fp.mix fp (Fp.option Fp.int r.value) in
    let fp = Fp.mix fp (Fp.option pid r.proposer) in
    Fp.mix fp (Fp.option Fp.int r.decided)
  in
  let slow_fp sl =
    let fp = Fp.mix 107L (Fp.int sl.sballot) in
    let fp = Fp.mix fp (Fp.map (fun p r -> Fp.mix (pid p) (reply r)) ~fold:Pid.Map.fold sl.one_bs) in
    let fp = Fp.mix fp (Fp.bool sl.computed) in
    let fp = Fp.mix fp (Fp.option Fp.int sl.svalue) in
    Fp.mix fp (Fp.set pid ~fold:Pid.Set.fold sl.two_bs)
  in
  let fp = Fp.mix 109L (pid s.self) in
  let fp = Fp.mix fp (Fp.int s.e) in
  let fp = Fp.mix fp (Fp.int s.f) in
  let fp = Fp.mix fp (Fp.int (match s.mode with Task -> 0 | Object -> 1)) in
  let fp = Fp.mix fp (Fp.int s.bal) in
  let fp = Fp.mix fp (Fp.int s.vbal) in
  let fp = Fp.mix fp (Fp.option Fp.int s.value) in
  let fp = Fp.mix fp (Fp.option pid s.proposer) in
  let fp = Fp.mix fp (Fp.option Fp.int s.initial) in
  let fp = Fp.mix fp (Fp.option Fp.int s.heard) in
  let fp = Fp.mix fp (Fp.option Fp.int s.decided) in
  let fp = Fp.mix fp (Fp.set pid ~fold:Pid.Set.fold s.fast_acks) in
  let fp = Fp.mix fp (Fp.option slow_fp s.slow) in
  Fp.mix fp (Omega.fingerprint ~relabel s.omega)

let make ~mode ~n ~e ~f ~delta =
  let init ~self ~n:n' =
    assert (n = n');
    let omega, omega_actions = Omega.init ~self ~n ~delta () in
    let s =
      {
        self;
        n;
        e;
        f;
        delta;
        mode;
        bal = Ballot.fast;
        vbal = Ballot.fast;
        value = None;
        proposer = None;
        initial = None;
        heard = None;
        decided = None;
        fast_acks = Pid.Set.empty;
        slow = None;
        omega;
      }
    in
    let actions =
      Automaton.Set_timer { id = new_ballot_timer; after = initial_timeout s }
      :: Automaton.map_msg (fun m -> Omega_msg m) omega_actions
    in
    (s, actions)
  in
  let on_message s ~src msg =
    match msg with
    | Propose v -> on_propose s ~src v
    | Two_b { bal; value } -> on_two_b s ~src ~bal ~value
    | Decide v -> on_decide s v
    | One_a b -> on_one_a s ~src b
    | One_b { bal; vbal; value; proposer; decided } ->
        let reply = { Recovery.sender = src; vbal; value; proposer; decided } in
        on_one_b s ~src ~bal reply
    | Two_a { bal; value } -> on_two_a s ~src ~bal ~value
    | Omega_msg m ->
        let omega, actions = Omega.on_message s.omega ~src m in
        ({ s with omega }, Automaton.map_msg (fun m -> Omega_msg m) actions)
  in
  let on_input s v = propose s v in
  let on_timer s id =
    if id = new_ballot_timer then on_new_ballot_timer s
    else if Omega.owns_timer s.omega id then begin
      let omega, actions = Omega.on_timer s.omega id in
      ({ s with omega }, Automaton.map_msg (fun m -> Omega_msg m) actions)
    end
    else (s, [])
  in
  {
    Automaton.init;
    on_message;
    on_input;
    on_timer;
    state_copy = Fun.id;
    state_fingerprint = Some (fun ~relabel s -> fingerprint ~relabel s);
  }

let package mode name describe formulation : Proto.Protocol.t =
  let module P = struct
    type nonrec state = state

    type nonrec msg = msg

    let name = name

    let pp_msg = pp_msg

    let describe = describe

    let min_n ~e ~f = Proto.Bounds.required formulation ~e ~f

    let make ~n ~e ~f ~delta = make ~mode ~n ~e ~f ~delta
  end in
  (module P)

let task =
  package Task "rgs-task"
    "the paper's protocol, consensus task (n >= max{2e+f, 2f+1})" Proto.Bounds.Task

let obj =
  package Object "rgs-object"
    "the paper's protocol, consensus object (n >= max{2e+f-1, 2f+1})" Proto.Bounds.Object
