(** Vote bookkeeping: which processes support which value.

    Used by the fast paths (counting [2B] acknowledgements) and by the
    recovery rules (counting ballot-0 votes reported in [1B] messages). *)

type t

val empty : t

val add : Value.t -> Dsim.Pid.t -> t -> t
(** Adding the same (value, pid) pair twice is idempotent: supporters are
    a set keyed by process, so a duplicated message never double-counts.
    This is the delivery-contract obligation that makes the quorum
    protocols safe under message duplication (see {!Mutation}). *)

val fingerprint : relabel:(Dsim.Pid.t -> Dsim.Pid.t) -> t -> Dsim.Fingerprint.t
(** Structural hash (order-independent over both the value map and each
    supporter set) for [state_fingerprint] hooks; supporter pids go
    through [relabel]. *)

val count : Value.t -> t -> int

val supporters : Value.t -> t -> Dsim.Pid.Set.t

val tally : t -> (Value.t * int) list
(** All values with their counts, values ascending. *)

val values_with_count_at_least : int -> t -> Value.t list
(** Ascending. With threshold 0 lists every recorded value. *)

val values_with_count_exactly : int -> t -> Value.t list

val max_value_with_count_at_least : int -> t -> Value.t option

val total_pids : t -> int
(** Number of distinct processes that voted (for any value). Always
    set-based, unaffected by {!Mutation}. *)

(** Mutation-testing hook — test-only. The fault-injection suite uses it
    to check that duplicate-vote suppression is {e load-bearing}: with
    suppression disabled, counts become raw [add] tallies (a duplicated
    vote counts twice) and a duplicating network must produce an agreement
    violation in the fast-quorum protocols. Production code must never
    call this. *)
module Mutation : sig
  val without_duplicate_suppression : (unit -> 'a) -> 'a
  (** Run [f] with {!count}/{!tally} (and everything derived from them)
      counting raw adds instead of distinct supporters; suppression is
      restored afterwards, also on exceptions. The switch is global —
      do not run concurrently with other vote-counting work. *)
end
