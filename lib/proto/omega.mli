(** Ω leader-election service (§C.1 of the paper).

    Implemented in the standard way under partial synchrony (Chandra-Toueg):
    every process broadcasts heartbeats each Δ; a peer is suspected when no
    heartbeat arrives for [suspicion_multiplier * Δ]; the leader is the
    smallest unsuspected pid. After GST every correct process's heartbeats
    arrive within Δ, so suspicions stabilise and all correct processes
    eventually agree on the smallest correct process as leader.

    Ω is a sub-component: a protocol embeds [Omega.state] in its own state,
    wraps {!msg} in its message type, and forwards heartbeat deliveries and
    timer fires here. Ω reserves timer ids [timer_base .. timer_base + n]. *)

type msg = Heartbeat

val pp_msg : Format.formatter -> msg -> unit

type state

val timer_base : Dsim.Automaton.timer_id
(** 1000. Protocol timers must stay below this. *)

val owns_timer : state -> Dsim.Automaton.timer_id -> bool

val init :
  self:Dsim.Pid.t ->
  n:int ->
  delta:int ->
  ?suspicion_multiplier:int ->
  unit ->
  state * (msg, 'output) Dsim.Automaton.action list
(** [suspicion_multiplier] defaults to 3. *)

val fingerprint : relabel:(Dsim.Pid.t -> Dsim.Pid.t) -> state -> Dsim.Fingerprint.t
(** Structural hash for the embedding protocol's [state_fingerprint] hook;
    follows the {!Dsim.Fingerprint} relabelling contract ([self] and every
    suspected pid go through [relabel]). *)

val leader : state -> Dsim.Pid.t
(** Current Ω output: smallest pid not suspected (self is never
    suspected). *)

val on_message :
  state -> src:Dsim.Pid.t -> msg -> state * (msg, 'output) Dsim.Automaton.action list

val on_timer :
  state -> Dsim.Automaton.timer_id -> state * (msg, 'output) Dsim.Automaton.action list
(** Call only when {!owns_timer} holds. *)
