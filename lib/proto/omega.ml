module Pid = Dsim.Pid
module Automaton = Dsim.Automaton

type msg = Heartbeat

let pp_msg fmt Heartbeat = Format.pp_print_string fmt "heartbeat"

type state = {
  self : Pid.t;
  n : int;
  delta : int;
  suspicion_delay : int;
  suspected : Pid.Set.t;
}

let timer_base = 1000

let beat_timer = timer_base

let suspect_timer q = timer_base + 1 + q

let owns_timer state id = id >= timer_base && id <= timer_base + state.n

let init ~self ~n ~delta ?(suspicion_multiplier = 3) () =
  let state =
    { self; n; delta; suspicion_delay = suspicion_multiplier * delta; suspected = Pid.Set.empty }
  in
  let arm_suspect q = Automaton.Set_timer { id = suspect_timer q; after = state.suspicion_delay } in
  let actions =
    Automaton.Broadcast Heartbeat
    :: Automaton.Set_timer { id = beat_timer; after = delta }
    :: List.map arm_suspect (Pid.others ~n self)
  in
  (state, actions)

let fingerprint ~relabel state =
  let module Fp = Dsim.Fingerprint in
  let fp = Fp.mix 101L (Fp.int (relabel state.self)) in
  let fp = Fp.mix fp (Fp.int state.delta) in
  let fp = Fp.mix fp (Fp.int state.suspicion_delay) in
  Fp.mix fp (Fp.set (fun p -> Fp.int (relabel p)) ~fold:Pid.Set.fold state.suspected)

let leader state =
  let candidates =
    List.filter (fun p -> not (Pid.Set.mem p state.suspected)) (Pid.all ~n:state.n)
  in
  match candidates with
  | p :: _ -> p
  | [] -> state.self  (* unreachable: self is never suspected *)

let on_message state ~src Heartbeat =
  let state = { state with suspected = Pid.Set.remove src state.suspected } in
  (state, [ Automaton.Set_timer { id = suspect_timer src; after = state.suspicion_delay } ])

let on_timer state id =
  if id = beat_timer then
    ( state,
      [
        Automaton.Broadcast Heartbeat;
        Automaton.Set_timer { id = beat_timer; after = state.delta };
      ] )
  else begin
    let q = id - timer_base - 1 in
    if q >= 0 && q < state.n && not (Pid.equal q state.self) then
      ({ state with suspected = Pid.Set.add q state.suspected }, [])
    else (state, [])
  end
