module Vmap = Map.Make (Int)

(* [supporters] is the set semantics every caller should see; [raw_adds]
   counts every [add] including repeats. The raw count exists only so the
   mutation test can demonstrate that the set semantics is load-bearing:
   counting raw adds double-counts duplicated messages and breaks
   agreement under a duplicating network. *)
type entry = { supporters : Dsim.Pid.Set.t; raw_adds : int }

type t = entry Vmap.t

let empty = Vmap.empty

let add v pid t =
  let e =
    Option.value
      ~default:{ supporters = Dsim.Pid.Set.empty; raw_adds = 0 }
      (Vmap.find_opt v t)
  in
  Vmap.add v
    { supporters = Dsim.Pid.Set.add pid e.supporters; raw_adds = e.raw_adds + 1 }
    t

let fingerprint ~relabel t =
  let module Fp = Dsim.Fingerprint in
  Fp.map
    (fun v e ->
      Fp.mix
        (Fp.mix (Fp.int v)
           (Fp.set (fun p -> Fp.int (relabel p)) ~fold:Dsim.Pid.Set.fold e.supporters))
        (Fp.int e.raw_adds))
    ~fold:Vmap.fold t

let supporters v t =
  match Vmap.find_opt v t with
  | None -> Dsim.Pid.Set.empty
  | Some e -> e.supporters

module Mutation = struct
  let suppress = Atomic.make true

  let without_duplicate_suppression f =
    Atomic.set suppress false;
    Fun.protect ~finally:(fun () -> Atomic.set suppress true) f
end

let entry_count e =
  if Atomic.get Mutation.suppress then Dsim.Pid.Set.cardinal e.supporters
  else e.raw_adds

let count v t = match Vmap.find_opt v t with None -> 0 | Some e -> entry_count e

let tally t = Vmap.fold (fun v e acc -> (v, entry_count e) :: acc) t [] |> List.rev

let values_with_count_at_least k t =
  List.filter_map (fun (v, c) -> if c >= k then Some v else None) (tally t)

let values_with_count_exactly k t =
  List.filter_map (fun (v, c) -> if c = k then Some v else None) (tally t)

let max_value_with_count_at_least k t =
  match List.rev (values_with_count_at_least k t) with [] -> None | v :: _ -> Some v

let total_pids t =
  Vmap.fold (fun _ e acc -> Dsim.Pid.Set.union e.supporters acc) t Dsim.Pid.Set.empty
  |> Dsim.Pid.Set.cardinal
