module Pid = Dsim.Pid
module Time = Dsim.Time
module Combinat = Stdext.Combinat
module Pool = Stdext.Pool

type result = {
  explored : int;
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

type mode = [ `Replay | `Snapshot ]

(* A path (an [int list list]) prescribes, for each round boundary, the
   exact order in which the pending messages are delivered (as pending
   ids). Pending ids are deterministic for a fixed path, so replaying a
   path always reconstructs the same run. In [`Replay] mode every DFS node
   is materialised by re-executing its whole path from time 0 (O(depth²)
   engine work along a branch); in [`Snapshot] mode a node keeps its live
   engine and each child extends an {!Dsim.Engine.clone} by one round
   (O(depth)). Both modes visit the exact same nodes in the same order.

   A DFS node carries either representation; the engine of a node has
   processed everything strictly before the coming round boundary, so its
   pending pool holds exactly that round's messages. *)
type ('s, 'm) node = Path of int list list | Engine of ('s, 'm, Proto.Value.t, Proto.Value.t) Dsim.Engine.t

(* Per-branch statistics. Violations are recorded by their 0-based run
   index within the branch so that a budget cut can be re-applied exactly
   during deterministic merging (see [merge_branches]). *)
type branch = {
  b_explored : int;
  b_violation_indices : int list;  (* ascending *)
  b_first_violation : Scenario.outcome option;
  b_truncated : bool;
}

let synchronous (module P : Proto.Protocol.S) ~n ~e ~f ~delta ~proposals ?(crashes = [])
    ~rounds ?(budget = 20_000) ?(perm_limit = 4) ?(disable_timers = true)
    ?(mode = (`Snapshot : mode)) ?(domains = 1) ~check () =
  let fresh () =
    let automaton = P.make ~n ~e ~f ~delta in
    Dsim.Engine.create ~automaton ~n ~network:Dsim.Network.Manual ~seed:0
      ~disable_timers ~record_trace:true ~inputs:proposals ~crashes ()
  in
  let boundary round = round * delta in
  (* Process everything strictly before [round]'s boundary (init and inputs
     at the first level, timers in between later). *)
  let advance engine round = ignore (Dsim.Engine.run ~until:(boundary round - 1) engine) in
  let deliver engine round ids =
    List.iter (fun id -> Dsim.Engine.deliver_pending engine ~id ~at:(boundary round)) ids;
    ignore (Dsim.Engine.run ~until:(boundary round) engine)
  in
  (* Replay [path] from scratch, then advance to just before round
     [length path + 1]'s boundary. *)
  let replay path =
    let engine = fresh () in
    List.iteri
      (fun i ids ->
        advance engine (i + 1);
        deliver engine (i + 1) ids)
      path;
    advance engine (List.length path + 1);
    engine
  in
  let outcome_of engine =
    let trace = Dsim.Engine.trace engine in
    {
      Scenario.decisions = Dsim.Engine.outputs engine;
      proposals = Dsim.Trace.inputs trace;
      crashes = Dsim.Trace.crashes trace;
      n;
      horizon = Dsim.Engine.now engine;
      messages = Dsim.Trace.message_count trace;
      engine_result = Dsim.Engine.Quiescent;
    }
  in
  (* Enumerate the delivery orders of one round: group the pending pool per
     correct recipient and take the product of per-recipient orders.
     Messages to crashed processes are irrelevant and are appended in
     arrival order. Returns [None] when nothing is pending. *)
  let round_combos ~truncated engine =
    let pending = Dsim.Engine.pending engine in
    if pending = [] then None
    else begin
      let orders_for_batch ids =
        if List.length ids <= perm_limit then Combinat.permutations ids
        else begin
          truncated := true;
          [ ids; List.rev ids ]
        end
      in
      let to_live, to_crashed =
        List.partition
          (fun (p : _ Dsim.Engine.pending) -> not (Dsim.Engine.crashed engine p.dst))
          pending
      in
      let dsts =
        List.sort_uniq Pid.compare
          (List.map (fun (p : _ Dsim.Engine.pending) -> p.dst) to_live)
      in
      let per_dst_orders =
        List.map
          (fun dst ->
            let ids =
              List.filter_map
                (fun (p : _ Dsim.Engine.pending) ->
                  if Pid.equal p.dst dst then Some p.id else None)
                to_live
            in
            orders_for_batch ids)
          dsts
      in
      let crashed_ids = List.map (fun (p : _ Dsim.Engine.pending) -> p.id) to_crashed in
      Some
        (List.map (fun combo -> List.concat combo @ crashed_ids)
           (Combinat.cartesian per_dst_orders))
    end
  in
  (* Extend a node by delivering [ids] at [round]'s boundary. In snapshot
     mode the parent engine stays put at its instant; the child is a clone
     stepped one round further. *)
  let child_node node engine round ids =
    match node with
    | Path path -> Path (path @ [ ids ])
    | Engine _ ->
        let c = Dsim.Engine.clone engine in
        deliver c round ids;
        advance c (round + 1);
        Engine c
  in
  let root_node () =
    match mode with
    | `Replay -> Path []
    | `Snapshot ->
        let engine = fresh () in
        advance engine 1;
        Engine engine
  in
  (* Sequential DFS over the subtree below [node], with a local [budget].
     The traversal order and the budget cut points are identical to a
     global sequential exploration restricted to this subtree, which is
     what makes the parallel merge below exact. *)
  let explore_subtree ~budget node round =
    let explored = ref 0 in
    let violations_rev = ref [] in
    let first_violation = ref None in
    let truncated = ref false in
    let evaluate engine =
      let index = !explored in
      incr explored;
      let outcome = outcome_of engine in
      if not (check outcome) then begin
        violations_rev := index :: !violations_rev;
        if !first_violation = None then first_violation := Some outcome
      end
    in
    let rec dfs node round =
      if !explored >= budget then truncated := true
      else begin
        let engine = match node with Path path -> replay path | Engine e -> e in
        if round > rounds then evaluate engine
        else begin
          match round_combos ~truncated engine with
          | None -> evaluate engine
          | Some combos ->
              List.iter
                (fun ids ->
                  if !explored < budget then dfs (child_node node engine round ids) (round + 1)
                  else truncated := true)
                combos
        end
      end
    in
    dfs node round;
    {
      b_explored = !explored;
      b_violation_indices = List.rev !violations_rev;
      b_first_violation = !first_violation;
      b_truncated = !truncated;
    }
  in
  let result_of_branch b =
    {
      explored = b.b_explored;
      violations = List.length b.b_violation_indices;
      first_violation = b.b_first_violation;
      truncated = b.b_truncated;
    }
  in
  (* Re-impose the global budget on per-branch results, walking branches in
     DFS order. Branch [i] explored up to the full budget on its own; a
     sequential exploration would have granted it only what the earlier
     branches left over, and its first [take] runs are identical in either
     case — so counts, the canonical first violation and the truncation
     flag all come out exactly as with [domains = 1], independent of worker
     scheduling. *)
  let merge_branches ~root_truncated branches =
    let remaining = ref budget in
    let explored = ref 0 in
    let violations = ref 0 in
    let first_violation = ref None in
    let truncated = ref root_truncated in
    List.iter
      (fun b ->
        if !remaining <= 0 then truncated := true
        else begin
          let take = min b.b_explored !remaining in
          explored := !explored + take;
          remaining := !remaining - take;
          let counted = List.filter (fun i -> i < take) b.b_violation_indices in
          violations := !violations + List.length counted;
          if !first_violation = None && counted <> [] then
            first_violation := b.b_first_violation;
          if take < b.b_explored then truncated := true
          else truncated := !truncated || b.b_truncated
        end)
      branches;
    {
      explored = !explored;
      violations = !violations;
      first_violation = !first_violation;
      truncated = !truncated;
    }
  in
  if domains <= 1 then result_of_branch (explore_subtree ~budget (root_node ()) 1)
  else begin
    (* Fan the top-level branches (the first round's delivery orders) across
       the pool; each branch is fully independent and deterministic. *)
    let root_truncated = ref false in
    let root = root_node () in
    let root_engine = match root with Path path -> replay path | Engine e -> e in
    if budget <= 0 then
      { explored = 0; violations = 0; first_violation = None; truncated = true }
    else if rounds < 1 then result_of_branch (explore_subtree ~budget root 1)
    else begin
      match round_combos ~truncated:root_truncated root_engine with
      | None -> result_of_branch (explore_subtree ~budget root 1)
      | Some combos ->
          let tasks =
            List.map
              (fun ids ->
                (* Materialise the child in the coordinating domain: clones
                   of the shared root engine must not race with each other. *)
                let node = child_node root root_engine 1 ids in
                fun () -> explore_subtree ~budget node 2)
              combos
          in
          let branches = Pool.run ~domains (fun pool -> Pool.map_list pool (fun t -> t ()) tasks) in
          merge_branches ~root_truncated:!root_truncated branches
    end
  end
