module Pid = Dsim.Pid
module Time = Dsim.Time
module Combinat = Stdext.Combinat
module Pool = Stdext.Pool
module Metrics = Stdext.Metrics
module Stateset = Stdext.Stateset
module Fingerprint = Dsim.Fingerprint

type result = {
  explored : int;
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

type mode = [ `Replay | `Snapshot ]

(* Visited-set policy. [Exact] keys each search-tree node on its engine
   fingerprint and prunes the subtree below an already-seen state — sound
   up to 62-bit hash-compaction collisions (see {!Stdext.Stateset}).
   [Symmetry] additionally canonicalises the non-distinguished pids before
   hashing ({!Dsim.Engine.fingerprint}'s [symmetry]), merging states equal
   up to a pid permutation. *)
type dedup = Off | Exact | Symmetry

(* Partial-order reduction policy. [Sleep] cuts, per destination, the
   delivery orders of one round's batch down to outcome representatives:
   before expanding a node, each candidate order is trial-run against a
   scratch clone that delivers only that destination's batch, and orders
   landing on the fingerprint (plus output history) of an earlier sibling
   order are commuted away — the sleep set of already-covered
   interleavings. Deliveries to distinct destinations need no trial at
   all: a delivery only steps its destination process, so cross-group
   orders commute structurally (and the enumeration never multiplies them
   out). The independence relation comes entirely from the engine's
   pending pool ({!Dsim.Engine.pending_delivery_groups}) — no
   per-protocol knowledge. Timer fires, crashes and fault branches are
   inside the trial context (they land at the same boundary instant), so
   an intervening event that breaks commutation shows up as differing
   trial fingerprints and defeats the pruning. Sound for the same reason
   — and up to the same hash-compaction caveat — as [Exact] dedup. *)
type por = No_por | Sleep

type fault_bounds = { max_drops : int; max_dups : int }

let no_faults = { max_drops = 0; max_dups = 0 }

(* Per-run facts captured at evaluation time. They ride in the branch
   stats in subtree DFS order, so the deterministic merge can count
   exactly the sequential prefix of every subtree — which is what makes
   all [Run_report.totals] fields identical across modes, domain counts
   and scheduling interleavings, not just [explored]/[violations]. *)
type run_rec = { r_depth : int; r_drops : int; r_dups : int; r_fast : bool }

module Run_report = struct
  type totals = {
    explored : int;
    violations : int;
    truncated : bool;
    depth_histogram : int array;
    fast_runs : int;
    fault_runs : int;
    drops : int;
    dups : int;
    distinct_states : int;  (* visited-set additions; 0 with dedup off *)
    dedup_hits : int;  (* arrivals at an already-visited state *)
    pruned_subtrees : int;  (* hits at interior nodes (a whole subtree cut) *)
    por_pruned : int;  (* children never generated: commuted order combinations *)
    sleep_hits : int;  (* per-destination orders suppressed by trial equivalence *)
  }

  type sched = {
    domains : int;
    budget : int;
    leased : int;
    evals : int;
    wasted : int;
    top_ups : int;
    max_fanout : int;
    tasks_per_domain : int array;
    stolen : int;
  }

  type t = { totals : totals; sched : sched }

  let totals_equal (a : totals) (b : totals) = a = b

  let fast_path_rate t =
    if t.explored = 0 then 0. else float_of_int t.fast_runs /. float_of_int t.explored

  let mean_depth t =
    if t.explored = 0 then 0.
    else begin
      let sum = ref 0 in
      Array.iteri (fun d c -> sum := !sum + (d * c)) t.depth_histogram;
      float_of_int !sum /. float_of_int t.explored
    end

  let budget_waste_pct s =
    if s.evals = 0 then 0. else 100. *. float_of_int s.wasted /. float_of_int s.evals

  let pp fmt t =
    let pp_arr fmt a =
      Array.iteri (fun i v -> Format.fprintf fmt "%s%d" (if i = 0 then "" else " ") v) a
    in
    Format.fprintf fmt
      "@[<v>runs: explored %d, violations %d, truncated %b@,\
       depth histogram: [%a] (mean %.2f)@,\
       fast runs: %d (rate %.3f); fault runs: %d (drops %d, dups %d)@,\
       dedup: distinct states %d, hits %d, pruned subtrees %d@,\
       por: pruned %d, sleep hits %d@,\
       sched: domains %d, budget %d, leased %d, evals %d, wasted %d (%.1f%%), \
       top-ups %d, max fan-out %d@,\
       tasks/domain: [%a], stolen %d@]"
      t.totals.explored t.totals.violations t.totals.truncated pp_arr
      t.totals.depth_histogram (mean_depth t.totals) t.totals.fast_runs
      (fast_path_rate t.totals) t.totals.fault_runs t.totals.drops t.totals.dups
      t.totals.distinct_states t.totals.dedup_hits t.totals.pruned_subtrees
      t.totals.por_pruned t.totals.sleep_hits t.sched.domains t.sched.budget t.sched.leased t.sched.evals t.sched.wasted
      (budget_waste_pct t.sched) t.sched.top_ups t.sched.max_fanout pp_arr
      t.sched.tasks_per_domain t.sched.stolen

  let record registry t =
    let c name v = Metrics.add (Metrics.counter registry name) v in
    c "explore.explored" t.totals.explored;
    c "explore.violations" t.totals.violations;
    c "explore.truncated" (if t.totals.truncated then 1 else 0);
    c "explore.fast_runs" t.totals.fast_runs;
    c "explore.fault_runs" t.totals.fault_runs;
    c "explore.drops" t.totals.drops;
    c "explore.dups" t.totals.dups;
    c "explore.distinct_states" t.totals.distinct_states;
    c "explore.dedup_hits" t.totals.dedup_hits;
    c "explore.pruned_subtrees" t.totals.pruned_subtrees;
    c "explore.por_pruned" t.totals.por_pruned;
    c "explore.sleep_hits" t.totals.sleep_hits;
    c "explore.leased" t.sched.leased;
    c "explore.evals" t.sched.evals;
    c "explore.wasted" t.sched.wasted;
    c "explore.top_ups" t.sched.top_ups;
    c "explore.stolen" t.sched.stolen;
    Metrics.record_max (Metrics.gauge registry "explore.max_fanout") t.sched.max_fanout;
    Metrics.record_max (Metrics.gauge registry "explore.domains") t.sched.domains;
    let nbuckets = Array.length t.totals.depth_histogram in
    if nbuckets > 1 then begin
      let h =
        Metrics.histogram registry ~buckets:(Array.init (nbuckets - 1) (fun i -> i))
          "explore.depth"
      in
      Array.iteri
        (fun d count ->
          for _ = 1 to count do
            Metrics.observe h d
          done)
        t.totals.depth_histogram
    end
end

(* One round boundary's worth of scheduling decisions: which pending
   messages the adversary loses, which it duplicates (the copy stays in
   the pool and is delivered at a later boundary), and the exact delivery
   order of the rest (as pending ids). With fault bounds at zero this
   degenerates to the pure delivery-order choice. *)
type round_choice = { drop : int list; dup : int list; deliver : int list }

(* A path prescribes one {!round_choice} per round boundary. Pending ids
   are deterministic for a fixed path — duplication allocates fresh ids in
   choice order — so replaying a path always reconstructs the same run.
   Paths are stored as *reversed* prefixes (deepest round first):
   extending a node is then a single cons instead of an O(depth) append,
   and {!replay} reverses once. In [`Replay] mode every DFS node is
   materialised by re-executing its whole path from time 0 (O(depth²)
   engine work along a branch); in [`Snapshot] mode a node keeps its live
   engine and each child extends an {!Dsim.Engine.clone} by one round
   (O(depth)). Both modes visit the exact same nodes in the same order.

   A DFS node carries either representation; the engine of a node has
   processed everything strictly before the coming round boundary, so its
   pending pool holds exactly that round's messages. *)
type ('s, 'm) node =
  | Path of round_choice list  (* reversed: innermost round first *)
  | Engine of ('s, 'm, Proto.Value.t, Proto.Value.t) Dsim.Engine.t

(* Shared run budget: a pool of evaluation tokens that all domains lease
   from in chunks. Total tokens handed out never exceed the budget, so the
   engine work done across all domains is bounded by one sequential
   exploration's worth — the old fan-out ran every branch against the full
   budget and discarded the surplus at merge time (worst case k× budget). *)
module Budget = struct
  type t = int Atomic.t

  let create budget : t = Atomic.make (max budget 0)

  let rec lease (t : t) k =
    let a = Atomic.get t in
    if a <= 0 || k <= 0 then 0
    else begin
      let take = min k a in
      if Atomic.compare_and_set t a (a - take) then take else lease t k
    end

  let refund (t : t) k = if k > 0 then ignore (Atomic.fetch_and_add t k)

  let exhausted (t : t) = Atomic.get t <= 0
end

(* Per-subtree statistics. Violations are recorded by their 0-based run
   index within the subtree so the deterministic merge can re-apply the
   sequential budget cut exactly (see [merge]). [b_cut] distinguishes "the
   shared budget denied a lease while work remained" from natural
   completion; the difference decides both the [truncated] flag and
   whether a starved subtree must be topped up. *)
type branch = {
  b_explored : int;  (* runs traversed, including a top-up's skipped prefix *)
  b_violation_indices : int list;  (* ascending *)
  b_first_violation : Scenario.outcome option;
  b_fallback : bool;  (* perm_limit fallback hit while expanding *)
  b_cut : bool;  (* lease denied with work remaining *)
  b_runs : run_rec list;  (* evaluated runs, DFS order (skipped prefix omitted) *)
}

(* The unit of parallel work: a task owns the subtree below one node.
   Shallow tasks fan their children back into the pool (so idle domains
   steal them) and return the child promises; deeper tasks explore inline
   against the shared budget. [rev_path] identifies the subtree root so a
   starved task can be re-run sequentially during the merge. *)
type ('s, 'm) task_result =
  | Leaf of round_choice list * int * branch  (* rev_path, root round, stats *)
  | Chunk of (round_choice list * int * branch) list  (* adjacent leaves, DFS order *)
  | Fanned of ('s, 'm) task_result Pool.promise list

(* Fault budgets already spent along a (reversed) path; a starved
   subtree's top-up re-run recovers its remaining bounds from this. *)
let faults_spent rev_path =
  List.fold_left
    (fun (d, u) c -> (d + List.length c.drop, u + List.length c.dup))
    (0, 0) rev_path

let rec take_n n = function
  | x :: tl when n > 0 -> x :: take_n (n - 1) tl
  | _ -> []

let outcome_of ~n engine =
  let trace = Dsim.Engine.trace engine in
  let dropped, duplicated = Dsim.Engine.fault_counts engine in
  {
    Scenario.decisions = Dsim.Engine.outputs engine;
    proposals = Dsim.Trace.inputs trace;
    crashes = Dsim.Trace.crashes trace;
    n;
    horizon = Dsim.Engine.now engine;
    messages = Dsim.Trace.message_count trace;
    dropped;
    duplicated;
    latencies = Dsim.Engine.decision_latencies engine;
    engine_result = Dsim.Engine.Quiescent;
  }

(* Enumerate one round's scheduling decisions: which live pending messages
   to drop (within the remaining drop bound), which of the kept ones to
   duplicate (within the dup bound; the copy stays pooled for a later
   round), and — per correct recipient — every delivery order of the kept
   messages. Fault subsets are enumerated in ascending size with the empty
   choice first, so under a tight budget the no-fault schedules are
   explored before any faulty ones. Messages to crashed processes are
   irrelevant and are appended in arrival order. Returns [None] when
   nothing is pending. Shared by the exhaustive DFS and the swarm walkers
   (fan-out telemetry stays with the caller).

   With [por = Sleep], each destination's order list is first reduced to
   trial-outcome representatives: a scratch clone of [engine] delivers
   only that destination's kept batch in the candidate order and runs to
   the boundary; orders landing on an (engine fingerprint, output
   history) pair already claimed by an earlier sibling are suppressed and
   counted in [sleep_hits]. Any boundary-instant timer fire or crash step
   runs inside the trial (deliveries rank before timers at an instant),
   so an event that breaks commutation differentiates the trial outcomes
   and keeps both orders. The child a kept order generates is determined,
   process-locally, by the per-destination trial classes jointly —
   delivering a message only steps its destination — so every suppressed
   combination would have rebuilt an already-generated child state (up to
   the fingerprint's hash compaction, exactly like [Exact] dedup).
   [por_pruned] counts the order combinations never multiplied out.
   Trials are memoized per kept batch, so a batch's orders are trialled
   once per node even across fault branches that keep it intact. *)
let round_choices_of ~perm_limit ~por ~truncated ~sleep_hits ~por_pruned ~boundary_at
    engine ~drops_left ~dups_left =
  if Dsim.Engine.pending_count engine = 0 then None
  else begin
    let orders_for_batch ids =
      if List.length ids <= perm_limit then Combinat.permutations ids
      else begin
        truncated := true;
        [ ids; List.rev ids ]
      end
    in
    let groups, crashed_ids = Dsim.Engine.pending_delivery_groups engine in
    (* Drop subsets are enumerated over the live ids in global send order —
       the same order the pre-POR explorer used — so the DFS visits fault
       branches in an unchanged sequence. *)
    let live_ids =
      List.rev
        (Dsim.Engine.fold_pending engine ~init:[]
           ~f:(fun acc ~id ~src:_ ~dst ~msg:_ ~sent_at:_ ->
             if Dsim.Engine.crashed engine dst then acc else id :: acc))
    in
    let reduce_orders =
      match por with
      | No_por -> fun ~batch:_ orders -> orders
      | Sleep ->
          let memo = Hashtbl.create 8 in
          fun ~batch orders ->
            (match orders with
            | [] | [ _ ] -> orders
            | _ -> (
                match Hashtbl.find_opt memo batch with
                | Some reps -> reps
                | None ->
                    let seen = Hashtbl.create 8 in
                    let reps =
                      List.filter
                        (fun order ->
                          let scratch = Dsim.Engine.clone engine in
                          List.iter
                            (fun id ->
                              Dsim.Engine.deliver_pending scratch ~id ~at:boundary_at)
                            order;
                          ignore (Dsim.Engine.run ~until:boundary_at scratch);
                          let key =
                            (Dsim.Engine.fingerprint scratch, Dsim.Engine.outputs scratch)
                          in
                          if Hashtbl.mem seen key then begin
                            Atomic.incr sleep_hits;
                            false
                          end
                          else begin
                            Hashtbl.add seen key ();
                            true
                          end)
                        orders
                    in
                    Hashtbl.add memo batch reps;
                    reps))
    in
    let choices =
      List.concat_map
        (fun drop ->
          let kept = List.filter (fun id -> not (List.mem id drop)) live_ids in
          let dup_sets = Combinat.subsets_up_to dups_left kept in
          let full = ref 1 in
          let per_dst_orders =
            List.filter_map
              (fun (_dst, batch) ->
                match List.filter (fun id -> not (List.mem id drop)) batch with
                | [] -> None
                | kept_batch ->
                    let orders = orders_for_batch kept_batch in
                    full := !full * List.length orders;
                    Some (reduce_orders ~batch:kept_batch orders))
              groups
          in
          let reduced = List.fold_left (fun a o -> a * List.length o) 1 per_dst_orders in
          if !full > reduced then
            ignore (Atomic.fetch_and_add por_pruned ((!full - reduced) * List.length dup_sets));
          let delivers =
            List.map
              (fun combo -> List.concat combo @ crashed_ids)
              (Combinat.cartesian per_dst_orders)
          in
          List.concat_map
            (fun dup -> List.map (fun deliver -> { drop; dup; deliver }) delivers)
            dup_sets)
        (Combinat.subsets_up_to drops_left live_ids)
    in
    Some choices
  end

let synchronous_report (module P : Proto.Protocol.S) ~n ~e ~f ~delta ~proposals
    ?(crashes = []) ~rounds ?(budget = 20_000) ?(perm_limit = 4) ?(disable_timers = true)
    ?(mode = (`Snapshot : mode)) ?(domains = 1) ?(clamp_domains = true) ?eval_counter
    ?(faults = no_faults) ?(dedup = Off) ?(por = No_por) ?stateset_capacity
    ?(metrics = Metrics.disabled) ~check () =
  if faults.max_drops < 0 || faults.max_dups < 0 then
    invalid_arg "Explore.synchronous: fault bounds must be non-negative";
  (* Scheduling telemetry. These are observability-only: nothing below
     branches on them, so they cannot perturb the deterministic result. *)
  let evals_total = Atomic.make 0 in
  let leased_total = Atomic.make 0 in
  let max_fan_seen = Atomic.make 0 in
  let rec record_fanout v =
    let cur = Atomic.get max_fan_seen in
    if v > cur && not (Atomic.compare_and_set max_fan_seen cur v) then record_fanout v
  in
  let fresh () =
    let automaton = P.make ~n ~e ~f ~delta in
    Dsim.Engine.create ~automaton ~n ~network:Dsim.Network.Manual ~seed:0
      ~disable_timers ~record_trace:true ~inputs:proposals ~crashes ()
  in
  (* Visited set shared by every domain, plus the dedup totals. The
     counters are schedule-independent whenever the traversal is
     exhaustive: each distinct state is expanded by exactly one arrival
     (the {!Stateset.add} CAS winner), so arrivals — and hence hits and
     prunes — equal the edge count of the deduplicated state graph no
     matter how domains interleave. *)
  let symmetry = dedup = Symmetry in
  if por = Sleep && not (Dsim.Engine.has_fingerprint (fresh ())) then
    invalid_arg
      "Explore.synchronous: POR requires the automaton to supply state_fingerprint";
  (* Pre-size the visited set so a full-budget exploration never resizes
     mid-search: every evaluated run inserts at most a handful of interior
     nodes beyond its leaf, so 2x the run budget is a comfortable ceiling
     (capped — capacity is performance-only, the set still grows). *)
  let capacity =
    match stateset_capacity with
    | Some c -> c
    | None -> min (1 lsl 22) (Stateset.recommended_capacity ~expected:(2 * budget))
  in
  let visited =
    match dedup with
    | Off -> None
    | Exact | Symmetry ->
        if not (Dsim.Engine.has_fingerprint (fresh ())) then
          invalid_arg
            "Explore.synchronous: dedup requires the automaton to supply state_fingerprint";
        Some (Stateset.create ~capacity ~metrics ())
  in
  let distinct_total = Atomic.make 0 in
  let hits_total = Atomic.make 0 in
  let pruned_total = Atomic.make 0 in
  let sleep_total = Atomic.make 0 in
  let por_pruned_total = Atomic.make 0 in
  (* [true] = first arrival (or dedup off): expand this node. The round
     number is mixed into the key so a quiescent engine reached at two
     different depths cannot alias (its clock may not have advanced). *)
  let check_visited engine round =
    match visited with
    | None -> true
    | Some vs ->
        let key =
          Fingerprint.mix (Dsim.Engine.fingerprint ~symmetry engine) (Fingerprint.int round)
        in
        if Stateset.add vs key then begin
          Atomic.incr distinct_total;
          true
        end
        else begin
          Atomic.incr hits_total;
          if round <= rounds then Atomic.incr pruned_total;
          false
        end
  in
  let boundary round = round * delta in
  (* Process everything strictly before [round]'s boundary (init and inputs
     at the first level, timers in between later). *)
  let advance engine round = ignore (Dsim.Engine.run ~until:(boundary round - 1) engine) in
  (* Apply one round boundary's decisions: drops and duplications first
     (order matters only for id determinism — duplication allocates fresh
     pending ids in [dup] order), then the prescribed delivery order. *)
  let apply_choice engine round { drop; dup; deliver } =
    List.iter (fun id -> Dsim.Engine.drop_pending engine ~id) drop;
    List.iter (fun id -> ignore (Dsim.Engine.duplicate_pending engine ~id : int)) dup;
    List.iter
      (fun id -> Dsim.Engine.deliver_pending engine ~id ~at:(boundary round))
      deliver;
    ignore (Dsim.Engine.run ~until:(boundary round) engine)
  in
  (* Replay [rev_path] from scratch, then advance to just before round
     [length rev_path + 1]'s boundary. *)
  let replay rev_path =
    let engine = fresh () in
    List.iteri
      (fun i choice ->
        advance engine (i + 1);
        apply_choice engine (i + 1) choice)
      (List.rev rev_path);
    advance engine (List.length rev_path + 1);
    engine
  in
  let materialize = function Path rev_path -> replay rev_path | Engine e -> e in
  let count_eval =
    match eval_counter with
    | None -> fun () -> Atomic.incr evals_total
    | Some c ->
        fun () ->
          Atomic.incr evals_total;
          Atomic.incr c
  in
  let outcome_of engine = outcome_of ~n engine in
  let round_choices ~truncated engine ~round ~drops_left ~dups_left =
    let r =
      round_choices_of ~perm_limit ~por ~truncated ~sleep_hits:sleep_total
        ~por_pruned:por_pruned_total ~boundary_at:(boundary round) engine ~drops_left
        ~dups_left
    in
    (match r with Some choices -> record_fanout (List.length choices) | None -> ());
    r
  in
  (* Sequential DFS over the subtree below [node], evaluating runs against
     tokens obtained through [lease] (0 = denied). The traversal order —
     and, given the same token supply, the cut point — is identical to a
     global sequential exploration restricted to this subtree, which makes
     the merge exact. The cut is sticky: once a lease is denied the task
     stops, so the evaluated runs are always a DFS-order prefix of the
     subtree. The first [skip] runs are traversed but not evaluated
     (top-up re-runs resume a starved subtree behind its recorded prefix).

     Snapshot hot path: a node's *last* child reuses the parent engine in
     place instead of cloning it — after the final child is built the
     parent is dead, so interior nodes cost (children - 1) clones, not
     children. Only inline traversal may do this; fanned children share
     their parent engine across tasks and must clone (see [go_task]). *)
  let explore_subtree ~lease ~refund ~skip ~fallback0 ?(root_checked = false) ~drops_left
      ~dups_left node round =
    let explored = ref 0 in
    let tokens = ref 0 in
    let cut = ref false in
    let fallback = ref fallback0 in
    let violations_rev = ref [] in
    let runs_rev = ref [] in
    let first_violation = ref None in
    let have_token () =
      !tokens > 0
      || ((not !cut)
         &&
         let got = lease () in
         tokens := got;
         if got = 0 then cut := true;
         got > 0)
    in
    let evaluate engine ~depth =
      tokens := !tokens - 1;
      let index = !explored in
      incr explored;
      if index >= skip then begin
        count_eval ();
        let outcome = outcome_of engine in
        let lat = Dsim.Engine.decision_latencies engine in
        let fast = lat <> [] && List.for_all (fun (_, l) -> l <= 2 * delta) lat in
        runs_rev :=
          {
            r_depth = depth;
            r_drops = outcome.Scenario.dropped;
            r_dups = outcome.Scenario.duplicated;
            r_fast = fast;
          }
          :: !runs_rev;
        if not (check outcome) then begin
          violations_rev := index :: !violations_rev;
          if !first_violation = None then first_violation := Some outcome
        end
      end
    in
    (* [checked] means the caller already ran this node through the
       visited set (the fan path in [go_task] checks before enumerating
       children); re-checking would find the node's own insertion and
       wrongly prune it. A pruned node spends no token — the lease taken
       by [have_token] stays in [tokens] for the next node, and any
       surplus is refunded below — so pruned subtrees cost nothing from
       the shared budget. *)
    let rec dfs ~checked node round ~drops_left ~dups_left =
      if have_token () then begin
        let engine = materialize node in
        if checked || check_visited engine round then begin
          if round > rounds then evaluate engine ~depth:rounds
          else begin
            match round_choices ~truncated:fallback engine ~round ~drops_left ~dups_left with
            | None -> evaluate engine ~depth:(round - 1)
            | Some choices ->
                let last = List.length choices - 1 in
                List.iteri
                  (fun i choice ->
                    if have_token () then begin
                      let child =
                        match node with
                        | Path rev_path -> Path (choice :: rev_path)
                        | Engine _ when i = last ->
                            apply_choice engine round choice;
                            advance engine (round + 1);
                            Engine engine
                        | Engine _ ->
                            let c = Dsim.Engine.clone engine in
                            apply_choice c round choice;
                            advance c (round + 1);
                            Engine c
                      in
                      dfs ~checked:false child (round + 1)
                        ~drops_left:(drops_left - List.length choice.drop)
                        ~dups_left:(dups_left - List.length choice.dup)
                    end)
                  choices
          end
        end
      end
    in
    dfs ~checked:root_checked node round ~drops_left ~dups_left;
    if !tokens > 0 then refund !tokens;
    {
      b_explored = !explored;
      b_violation_indices = List.rev !violations_rev;
      b_first_violation = !first_violation;
      b_fallback = !fallback;
      b_cut = !cut;
      b_runs = List.rev !runs_rev;
    }
  in
  let result_of_branch b =
    {
      explored = b.b_explored;
      violations = List.length b.b_violation_indices;
      first_violation = b.b_first_violation;
      truncated = b.b_cut || b.b_fallback;
    }
  in
  (* [runs] must be exactly the counted runs in global DFS order; the
     totals derived from them are then mode/domain-independent by the same
     argument as [explored]. The sched block is a faithful record of what
     this particular execution did and is expected to vary. *)
  let make_report ~domains ~tasks_per_domain ~stolen ~top_ups ~runs res =
    let depth_histogram = Array.make (rounds + 1) 0 in
    let fast = ref 0 and fault_runs = ref 0 and drops = ref 0 and dups = ref 0 in
    List.iter
      (fun r ->
        depth_histogram.(r.r_depth) <- depth_histogram.(r.r_depth) + 1;
        if r.r_fast then incr fast;
        if r.r_drops + r.r_dups > 0 then incr fault_runs;
        drops := !drops + r.r_drops;
        dups := !dups + r.r_dups)
      runs;
    let evals = Atomic.get evals_total in
    {
      Run_report.totals =
        {
          Run_report.explored = res.explored;
          violations = res.violations;
          truncated = res.truncated;
          depth_histogram;
          fast_runs = !fast;
          fault_runs = !fault_runs;
          drops = !drops;
          dups = !dups;
          distinct_states = Atomic.get distinct_total;
          dedup_hits = Atomic.get hits_total;
          pruned_subtrees = Atomic.get pruned_total;
          por_pruned = Atomic.get por_pruned_total;
          sleep_hits = Atomic.get sleep_total;
        };
      sched =
        {
          Run_report.domains;
          budget;
          leased = Atomic.get leased_total;
          evals;
          wasted = max 0 (evals - res.explored);
          top_ups;
          max_fanout = Atomic.get max_fan_seen;
          tasks_per_domain;
          stolen;
        };
    }
  in
  let root_node () =
    match mode with
    | `Replay -> Path []
    | `Snapshot ->
        let engine = fresh () in
        advance engine 1;
        Engine engine
  in
  let bpool = Budget.create budget in
  (* Domains beyond the hardware's parallelism add stop-the-world GC
     handshakes and context switches without adding throughput: on a
     single-core host, 4 domains time-slicing one CPU run the same work
     several times slower than one. [domains] is therefore a ceiling, not
     a demand — clamped to [Domain.recommended_domain_count ()] unless the
     caller (in practice: the determinism tests, which want real OS-thread
     interleaving regardless of host size) opts out. *)
  let domains =
    if clamp_domains then min domains (max 1 (Domain.recommended_domain_count ()))
    else domains
  in
  if domains <= 1 then begin
    (* One lease of the whole budget: the shared-pool machinery reduces to
       the plain sequential DFS (a single atomic op end to end). *)
    let lease () =
      let g = Budget.lease bpool budget in
      if g > 0 then ignore (Atomic.fetch_and_add leased_total g);
      g
    in
    let refund = Budget.refund bpool in
    let b =
      explore_subtree ~lease ~refund ~skip:0 ~fallback0:false ~drops_left:faults.max_drops
        ~dups_left:faults.max_dups (root_node ()) 1
    in
    let res = result_of_branch b in
    (res, make_report ~domains:1 ~tasks_per_domain:[||] ~stolen:0 ~top_ups:0 ~runs:b.b_runs res)
  end
  else begin
    (* Chunked leases: coarse enough to amortise the atomic, fine enough
       that a domain never hoards a meaningful share of the budget. The
       chunk size only shifts work between domains; results are exact for
       any value. *)
    let chunk = max 1 (min 128 (budget / (8 * domains))) in
    (* Speculation cap. Tokens spent by the DFS-leftmost live task are
       always within the sequential prefix (everything to its left is
       finished), so they are never re-evaluated; only DFS-later tasks can
       spend tokens beyond the eventual cut, which the merge then spends
       again topping up the starved prefix. Metering those speculative
       leases through this side pool bounds the total property evaluations
       at budget + budget/4 for ANY scheduling — while exhaustive runs
       (budget comfortably above the tree size) never feel the gate, since
       the main pool outlives the tree. *)
    let spec = Budget.create (budget / 4) in
    (* Registry of live tasks (queued or running) keyed by their DFS rank:
       the child-index path of the subtree root. Lexicographic order on
       ranks is subtree DFS order; a task may lease unmetered iff no
       registered rank is smaller. Children are registered *before* they
       are submitted and their parent deregisters after, so the leftmost
       unexplored subtree is covered by a registered rank at all times. *)
    let reg_m = Mutex.create () in
    let active = ref ([] : int list list) in
    let register rank =
      Mutex.lock reg_m;
      active := rank :: !active;
      Mutex.unlock reg_m
    in
    let deregister rank =
      Mutex.lock reg_m;
      let rec remove_first = function
        | [] -> []
        | r :: rest -> if r = rank then rest else r :: remove_first rest
      in
      active := remove_first !active;
      Mutex.unlock reg_m
    in
    let is_leftmost rank =
      Mutex.lock reg_m;
      let lm = List.for_all (fun r -> compare rank r <= 0) !active in
      Mutex.unlock reg_m;
      lm
    in
    let lease_for rank () =
      let g =
        if is_leftmost rank then Budget.lease bpool chunk
        else begin
          (* Speculative: account against [spec] first, then draw the same
             number of real tokens. Failed draws are handed back. *)
          let s = Budget.lease spec chunk in
          if s = 0 then 0
          else begin
            let g = Budget.lease bpool s in
            if g < s then Budget.refund spec (s - g);
            g
          end
        end
      in
      if g > 0 then ignore (Atomic.fetch_and_add leased_total g);
      g
    in
    (* Fan subtrees at the first [fan_rounds] levels into the pool, but
       only while the queue is hungry and budget remains; everything else
       runs inline. The policy is heuristic and scheduling-dependent —
       correctness never depends on which subtrees got their own task. *)
    let fan_rounds = 2 in
    Pool.run ~domains (fun pool ->
        (* Fanning one node floods the stack with all its children, so the
           cap only needs to detect "workers are hungry", not provision a
           deep backlog: a shallow queue keeps the task count (and the
           per-task promise/condvar traffic) proportional to the domain
           count instead of the tree width. *)
        let queue_cap = 2 * max 1 (Pool.size pool) in
        let refund = Budget.refund bpool in
        let rec go_task node rev_path rank round fallback0 ~drops_left ~dups_left () =
          let fanable =
            round <= fan_rounds && round <= rounds
            && (not (Budget.exhausted bpool))
            && Pool.queued pool < queue_cap
          in
          let inline ~checked () =
            let b =
              explore_subtree ~lease:(lease_for rank) ~refund ~skip:0 ~fallback0
                ~root_checked:checked ~drops_left ~dups_left node round
            in
            deregister rank;
            Leaf (rev_path, round, b)
          in
          if not fanable then inline ~checked:false ()
          else begin
            let fallback = ref false in
            let engine = materialize node in
            (* The fan path expands this node itself, so it must run the
               visited check explore_subtree would have run — and its
               children must NOT re-check it (hence [~checked:true] on the
               inline fallback below, which re-enters the same node). An
               already-visited fan node prunes to an empty leaf; only the
               perm-limit flag it was carrying survives for the merge. *)
            if not (check_visited engine round) then begin
              deregister rank;
              Leaf
                ( rev_path,
                  round,
                  {
                    b_explored = 0;
                    b_violation_indices = [];
                    b_first_violation = None;
                    b_fallback = fallback0;
                    b_cut = false;
                    b_runs = [];
                  } )
            end
            else begin
              match round_choices ~truncated:fallback engine ~round ~drops_left ~dups_left with
              | None -> inline ~checked:true ()
              | Some combos ->
                (* Workers clone the (now quiescent, shared) parent engine
                   inside their own task, off the coordinator's critical
                   path. Tasks are submitted in *reverse* DFS order: the
                   pool is a LIFO stack, so the DFS-first task lands on top
                   and domains consume the frontier in roughly sequential
                   order — under a tight budget the tokens then go to the
                   runs a sequential exploration would have evaluated,
                   keeping merge-time top-ups marginal. The fan node's
                   fallback flag rides with its first child: if that
                   child's subtree is even partially cut the merge reports
                   truncation anyway, and if it is fully counted the flag
                   lands exactly as in a sequential exploration. *)
                let indexed = List.mapi (fun i choice -> (i, choice)) combos in
                let make_child choice =
                  match node with
                  | Path _ -> Path (choice :: rev_path)
                  | Engine _ ->
                      let c = Dsim.Engine.clone engine in
                      apply_choice c round choice;
                      advance c (round + 1);
                      Engine c
                in
                let fb_for i = if i = 0 then fallback0 || !fallback else false in
                (* Fault branching can make a node hundreds of children
                   wide. One task per child would swamp the registry and
                   promise machinery with far more tasks than there are
                   domains — and, worse, let every one of those tasks
                   re-fan its own children whenever the queue momentarily
                   drains, a quadratic task cascade. Above [max_fan]
                   children, adjacent children are grouped into at most
                   [max_fan] chunk tasks instead; a chunk explores its
                   children inline, in DFS order, under its leading rank.
                   At or below the cap (every no-fault exploration) the
                   per-child fan is unchanged. *)
                let ncombos = List.length indexed in
                let max_fan = max (2 * queue_cap) 8 in
                if ncombos <= max_fan then begin
                  (* All children enter the rank registry before any of
                     them can run (and before the parent's covering rank
                     leaves), so [is_leftmost] never under-approximates. *)
                  List.iter (fun (i, _) -> register (rank @ [ i ])) indexed;
                  deregister rank;
                  Fanned
                    (List.rev_map
                       (fun (i, choice) ->
                         let child_rank = rank @ [ i ] in
                         let child_drops = drops_left - List.length choice.drop in
                         let child_dups = dups_left - List.length choice.dup in
                         Pool.submit pool (fun () ->
                             go_task (make_child choice) (choice :: rev_path) child_rank
                               (round + 1) (fb_for i) ~drops_left:child_drops
                               ~dups_left:child_dups ()))
                       (List.rev indexed))
                end
                else begin
                  let per_chunk = (ncombos + max_fan - 1) / max_fan in
                  let chunks = Combinat.chunks per_chunk indexed in
                  let chunk_rank = function
                    | (i, _) :: _ -> rank @ [ i ]
                    | [] -> rank
                  in
                  List.iter (fun chunk -> register (chunk_rank chunk)) chunks;
                  deregister rank;
                  Fanned
                    (List.rev_map
                       (fun chunk ->
                         let crank = chunk_rank chunk in
                         Pool.submit pool (fun () ->
                             let leaves =
                               List.map
                                 (fun (i, choice) ->
                                   (* Materialising a child is engine work;
                                      don't pay it when every lease is bound
                                      to be denied anyway ([lease_for] always
                                      draws real tokens from [bpool], so an
                                      empty pool cuts leftmost and
                                      speculative tasks alike). The merge
                                      tops starved subtrees up from the
                                      recorded path, so a fabricated cut
                                      here is indistinguishable from one
                                      discovered inside [explore_subtree]. *)
                                   let b =
                                     if Budget.exhausted bpool then
                                       {
                                         b_explored = 0;
                                         b_violation_indices = [];
                                         b_first_violation = None;
                                         b_fallback = fb_for i;
                                         b_cut = true;
                                         b_runs = [];
                                       }
                                     else
                                       explore_subtree ~lease:(lease_for crank) ~refund
                                         ~skip:0 ~fallback0:(fb_for i)
                                         ~drops_left:(drops_left - List.length choice.drop)
                                         ~dups_left:(dups_left - List.length choice.dup)
                                         (make_child choice) (round + 1)
                                   in
                                   (choice :: rev_path, round + 1, b))
                                 chunk
                             in
                             deregister crank;
                             Chunk leaves))
                       (List.rev chunks))
                end
            end
          end
        in
        (* Collect every leaf in DFS order; the coordinator steals queued
           subtree tasks while it waits instead of sleeping. *)
        let rec collect acc = function
          | Leaf (rev_path, round, b) -> (rev_path, round, b) :: acc
          | Chunk leaves -> List.fold_left (fun acc leaf -> leaf :: acc) acc leaves
          | Fanned children ->
              List.fold_left
                (fun acc p -> collect acc (Pool.await_helping pool p))
                acc children
        in
        register [];
        let leaves =
          List.rev
            (collect []
               (go_task (root_node ()) [] [] 1 false ~drops_left:faults.max_drops
                  ~dups_left:faults.max_dups ()))
        in
        (* Re-impose the global budget in DFS order, exactly as a
           sequential exploration would have spent it. A subtree that the
           shared pool cut short of its sequential entitlement — possible
           when a DFS-later task leased tokens first — is topped up by
           re-running it with the missing suffix evaluated and the already
           counted prefix merely traversed, so every run is still evaluated
           exactly once. *)
        let remaining = ref budget in
        let explored = ref 0 in
        let violations = ref 0 in
        let first_violation = ref None in
        let truncated = ref false in
        let top_ups = ref 0 in
        let counted_runs_rev = ref [] in
        List.iter
          (fun (rev_path, round, b) ->
            if !remaining <= 0 then begin
              (* With dedup off every subtree holds >= 1 run; with dedup on
                 a fully pruned subtree is empty and cuts nothing. *)
              if b.b_explored > 0 || b.b_cut then truncated := true
            end
            else begin
              let b =
                (* Top-up re-runs are only sound with dedup off: the
                   visited set already contains the starved subtree's
                   states, so a re-run would be pruned at the root instead
                   of resuming. Under dedup a cut subtree just reports
                   truncation — the byte-identical-totals contract is
                   scoped to explorations that finish within budget. *)
                if b.b_cut && b.b_explored < !remaining && dedup = Off then begin
                  incr top_ups;
                  let node =
                    match mode with
                    | `Replay -> Path rev_path
                    | `Snapshot -> Engine (replay rev_path)
                  in
                  let local = ref !remaining in
                  let lease () =
                    let g = !local in
                    local := 0;
                    g
                  in
                  let d_spent, u_spent = faults_spent rev_path in
                  let t =
                    explore_subtree ~lease ~refund:ignore ~skip:b.b_explored
                      ~fallback0:false ~drops_left:(faults.max_drops - d_spent)
                      ~dups_left:(faults.max_dups - u_spent) node round
                  in
                  {
                    t with
                    b_violation_indices = b.b_violation_indices @ t.b_violation_indices;
                    b_first_violation =
                      (match b.b_first_violation with
                      | Some _ as v -> v
                      | None -> t.b_first_violation);
                    b_fallback = b.b_fallback || t.b_fallback;
                    b_runs = b.b_runs @ t.b_runs;
                  }
                end
                else b
              in
              let take = min b.b_explored !remaining in
              explored := !explored + take;
              remaining := !remaining - take;
              counted_runs_rev := List.rev_append (take_n take b.b_runs) !counted_runs_rev;
              let counted = List.filter (fun i -> i < take) b.b_violation_indices in
              violations := !violations + List.length counted;
              if !first_violation = None && counted <> [] then
                first_violation := b.b_first_violation;
              if take < b.b_explored || b.b_cut then truncated := true
              else truncated := !truncated || b.b_fallback
            end)
          leaves;
        let res =
          {
            explored = !explored;
            violations = !violations;
            first_violation = !first_violation;
            truncated = !truncated;
          }
        in
        let tasks_per_domain, stolen = Pool.stats pool in
        ( res,
          make_report ~domains ~tasks_per_domain ~stolen ~top_ups:!top_ups
            ~runs:(List.rev !counted_runs_rev) res ))
  end

let synchronous protocol ~n ~e ~f ~delta ~proposals ?crashes ~rounds ?budget ?perm_limit
    ?disable_timers ?mode ?domains ?clamp_domains ?eval_counter ?faults ?dedup ?por
    ?stateset_capacity ?metrics ~check () =
  fst
    (synchronous_report protocol ~n ~e ~f ~delta ~proposals ?crashes ~rounds ?budget
       ?perm_limit ?disable_timers ?mode ?domains ?clamp_domains ?eval_counter ?faults
       ?dedup ?por ?stateset_capacity ?metrics ~check ())

module Swarm_report = struct
  type t = {
    walkers : int;
    runs : int;
    violations : int;
    distinct_states : int;
    dedup_hits : int;
    sleep_hits : int;
    por_pruned : int;
    fallback : bool;
  }

  let distinct_states_per_sec t ~wall_s =
    if wall_s <= 0. then 0. else float_of_int t.distinct_states /. wall_s

  let pp fmt t =
    Format.fprintf fmt
      "@[<v>swarm: walkers %d, runs %d, violations %d@,\
       coverage: distinct states %d, revisits %d@,\
       por: pruned %d, sleep hits %d, perm-limit fallback %b@]"
      t.walkers t.runs t.violations t.distinct_states t.dedup_hits t.por_pruned
      t.sleep_hits t.fallback
end

(* Randomized swarm search: [walkers] seeded random walkers, each
   descending the schedule tree from the root by picking uniformly among
   the (POR-reduced) choices at every boundary, sharing one visited set —
   used to *count* coverage, never to prune, so every walk completes —
   and one budget pool of run tokens. Walker [w]'s trajectory depends
   only on [(seed, w)] and its fixed share of the budget
   (ceil-division), so the whole report is deterministic for a given
   configuration regardless of how the domains schedule the walkers. *)
let swarm_report (module P : Proto.Protocol.S) ~n ~e ~f ~delta ~proposals ?(crashes = [])
    ~rounds ?(budget = 20_000) ?(perm_limit = 4) ?(disable_timers = true) ?(walkers = 4)
    ?(seed = 0) ?domains ?(clamp_domains = true) ?(faults = no_faults) ?(por = Sleep)
    ?stateset_capacity ?(metrics = Metrics.disabled) ~check () =
  if faults.max_drops < 0 || faults.max_dups < 0 then
    invalid_arg "Explore.swarm: fault bounds must be non-negative";
  if walkers <= 0 then invalid_arg "Explore.swarm: walkers must be positive";
  let fresh () =
    let automaton = P.make ~n ~e ~f ~delta in
    Dsim.Engine.create ~automaton ~n ~network:Dsim.Network.Manual ~seed:0
      ~disable_timers ~record_trace:true ~inputs:proposals ~crashes ()
  in
  if not (Dsim.Engine.has_fingerprint (fresh ())) then
    invalid_arg "Explore.swarm: swarm search requires the automaton to supply state_fingerprint";
  (* Each walk inserts at most [rounds + 1] keys. *)
  let capacity =
    match stateset_capacity with
    | Some c -> c
    | None ->
        min (1 lsl 22) (Stateset.recommended_capacity ~expected:((rounds + 1) * budget))
  in
  let visited = Stateset.create ~capacity ~metrics () in
  let distinct_total = Atomic.make 0 in
  let hits_total = Atomic.make 0 in
  let sleep_total = Atomic.make 0 in
  let por_pruned_total = Atomic.make 0 in
  let fallback_any = Atomic.make false in
  let visit engine round =
    let key = Fingerprint.mix (Dsim.Engine.fingerprint engine) (Fingerprint.int round) in
    if Stateset.add visited key then Atomic.incr distinct_total
    else Atomic.incr hits_total
  in
  let boundary round = round * delta in
  let advance engine round = ignore (Dsim.Engine.run ~until:(boundary round - 1) engine) in
  let apply_choice engine round { drop; dup; deliver } =
    List.iter (fun id -> Dsim.Engine.drop_pending engine ~id) drop;
    List.iter (fun id -> ignore (Dsim.Engine.duplicate_pending engine ~id : int)) dup;
    List.iter
      (fun id -> Dsim.Engine.deliver_pending engine ~id ~at:(boundary round))
      deliver;
    ignore (Dsim.Engine.run ~until:(boundary round) engine)
  in
  let root =
    let engine = fresh () in
    advance engine 1;
    engine
  in
  (* One random descent; visits count coverage at every node, including
     the terminal one, mirroring the exhaustive explorer's per-node
     visited check so the two [distinct_states] figures are comparable. *)
  let walk_one rng =
    let engine = Dsim.Engine.clone root in
    let truncated = ref false in
    let rec go round ~drops_left ~dups_left =
      visit engine round;
      if round <= rounds then begin
        match
          round_choices_of ~perm_limit ~por ~truncated ~sleep_hits:sleep_total
            ~por_pruned:por_pruned_total ~boundary_at:(boundary round) engine ~drops_left
            ~dups_left
        with
        | None -> ()
        | Some choices ->
            let choice = Stdext.Rng.pick rng choices in
            apply_choice engine round choice;
            advance engine (round + 1);
            go (round + 1)
              ~drops_left:(drops_left - List.length choice.drop)
              ~dups_left:(dups_left - List.length choice.dup)
      end
    in
    go 1 ~drops_left:faults.max_drops ~dups_left:faults.max_dups;
    if !truncated then Atomic.set fallback_any true;
    outcome_of ~n engine
  in
  let bpool = Budget.create budget in
  (* Fixed ceil-division share per walker: the shared pool still caps the
     global total, but no walker can hoard another's share, so
     trajectories — hence all the coverage counters — do not depend on
     domain scheduling. *)
  let quota w = (budget / walkers) + (if w < budget mod walkers then 1 else 0) in
  let walker w =
    let rng = Stdext.Rng.stream ~seed w in
    let q = quota w in
    let runs = ref 0 in
    let violations = ref 0 in
    let first = ref None in
    let tokens = ref 0 in
    let have_token () =
      !tokens > 0
      ||
      let g = Budget.lease bpool (max 1 (min 64 (q - !runs))) in
      tokens := g;
      g > 0
    in
    while !runs < q && have_token () do
      tokens := !tokens - 1;
      let outcome = walk_one rng in
      incr runs;
      if not (check outcome) then begin
        incr violations;
        if !first = None then first := Some outcome
      end
    done;
    if !tokens > 0 then Budget.refund bpool !tokens;
    (!runs, !violations, !first)
  in
  let domains =
    let d = match domains with Some d -> d | None -> walkers in
    if clamp_domains then min d (max 1 (Domain.recommended_domain_count ())) else d
  in
  let results =
    if domains <= 1 then List.init walkers walker
    else
      Pool.run ~domains (fun pool ->
          let promises =
            List.map (fun w -> Pool.submit pool (fun () -> walker w)) (List.init walkers Fun.id)
          in
          List.map (fun p -> Pool.await_helping pool p) promises)
  in
  let runs = List.fold_left (fun a (r, _, _) -> a + r) 0 results in
  let violations = List.fold_left (fun a (_, v, _) -> a + v) 0 results in
  let first =
    List.fold_left
      (fun acc (_, _, fv) -> match acc with Some _ -> acc | None -> fv)
      None results
  in
  (* A swarm run is a sample of the schedule tree, never an exhaustive
     search, so the result is always reported as truncated. *)
  let res = { explored = runs; violations; first_violation = first; truncated = true } in
  ( res,
    {
      Swarm_report.walkers;
      runs;
      violations;
      distinct_states = Atomic.get distinct_total;
      dedup_hits = Atomic.get hits_total;
      sleep_hits = Atomic.get sleep_total;
      por_pruned = Atomic.get por_pruned_total;
      fallback = Atomic.get fallback_any;
    } )

let swarm protocol ~n ~e ~f ~delta ~proposals ?crashes ~rounds ?budget ?perm_limit
    ?disable_timers ?walkers ?seed ?domains ?clamp_domains ?faults ?por
    ?stateset_capacity ?metrics ~check () =
  fst
    (swarm_report protocol ~n ~e ~f ~delta ~proposals ?crashes ~rounds ?budget ?perm_limit
       ?disable_timers ?walkers ?seed ?domains ?clamp_domains ?faults ?por
       ?stateset_capacity ?metrics ~check ())
