module Pid = Dsim.Pid
module Time = Dsim.Time
module Combinat = Stdext.Combinat
module Pool = Stdext.Pool

type result = {
  explored : int;
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

type mode = [ `Replay | `Snapshot ]

(* A path prescribes, for each round boundary, the exact order in which the
   pending messages are delivered (as pending ids). Pending ids are
   deterministic for a fixed path, so replaying a path always reconstructs
   the same run. Paths are stored as *reversed* prefixes (deepest round
   first): extending a node is then a single cons instead of an O(depth)
   append, and {!replay} reverses once. In [`Replay] mode every DFS node is
   materialised by re-executing its whole path from time 0 (O(depth²)
   engine work along a branch); in [`Snapshot] mode a node keeps its live
   engine and each child extends an {!Dsim.Engine.clone} by one round
   (O(depth)). Both modes visit the exact same nodes in the same order.

   A DFS node carries either representation; the engine of a node has
   processed everything strictly before the coming round boundary, so its
   pending pool holds exactly that round's messages. *)
type ('s, 'm) node =
  | Path of int list list  (* reversed: innermost round first *)
  | Engine of ('s, 'm, Proto.Value.t, Proto.Value.t) Dsim.Engine.t

(* Shared run budget: a pool of evaluation tokens that all domains lease
   from in chunks. Total tokens handed out never exceed the budget, so the
   engine work done across all domains is bounded by one sequential
   exploration's worth — the old fan-out ran every branch against the full
   budget and discarded the surplus at merge time (worst case k× budget). *)
module Budget = struct
  type t = int Atomic.t

  let create budget : t = Atomic.make (max budget 0)

  let rec lease (t : t) k =
    let a = Atomic.get t in
    if a <= 0 || k <= 0 then 0
    else begin
      let take = min k a in
      if Atomic.compare_and_set t a (a - take) then take else lease t k
    end

  let refund (t : t) k = if k > 0 then ignore (Atomic.fetch_and_add t k)

  let exhausted (t : t) = Atomic.get t <= 0
end

(* Per-subtree statistics. Violations are recorded by their 0-based run
   index within the subtree so the deterministic merge can re-apply the
   sequential budget cut exactly (see [merge]). [b_cut] distinguishes "the
   shared budget denied a lease while work remained" from natural
   completion; the difference decides both the [truncated] flag and
   whether a starved subtree must be topped up. *)
type branch = {
  b_explored : int;  (* runs traversed, including a top-up's skipped prefix *)
  b_violation_indices : int list;  (* ascending *)
  b_first_violation : Scenario.outcome option;
  b_fallback : bool;  (* perm_limit fallback hit while expanding *)
  b_cut : bool;  (* lease denied with work remaining *)
}

(* The unit of parallel work: a task owns the subtree below one node.
   Shallow tasks fan their children back into the pool (so idle domains
   steal them) and return the child promises; deeper tasks explore inline
   against the shared budget. [rev_path] identifies the subtree root so a
   starved task can be re-run sequentially during the merge. *)
type ('s, 'm) task_result =
  | Leaf of int list list * int * branch  (* rev_path, root round, stats *)
  | Fanned of ('s, 'm) task_result Pool.promise list

let synchronous (module P : Proto.Protocol.S) ~n ~e ~f ~delta ~proposals ?(crashes = [])
    ~rounds ?(budget = 20_000) ?(perm_limit = 4) ?(disable_timers = true)
    ?(mode = (`Snapshot : mode)) ?(domains = 1) ?(clamp_domains = true) ?eval_counter ~check
    () =
  let fresh () =
    let automaton = P.make ~n ~e ~f ~delta in
    Dsim.Engine.create ~automaton ~n ~network:Dsim.Network.Manual ~seed:0
      ~disable_timers ~record_trace:true ~inputs:proposals ~crashes ()
  in
  let boundary round = round * delta in
  (* Process everything strictly before [round]'s boundary (init and inputs
     at the first level, timers in between later). *)
  let advance engine round = ignore (Dsim.Engine.run ~until:(boundary round - 1) engine) in
  let deliver engine round ids =
    List.iter (fun id -> Dsim.Engine.deliver_pending engine ~id ~at:(boundary round)) ids;
    ignore (Dsim.Engine.run ~until:(boundary round) engine)
  in
  (* Replay [rev_path] from scratch, then advance to just before round
     [length rev_path + 1]'s boundary. *)
  let replay rev_path =
    let engine = fresh () in
    List.iteri
      (fun i ids ->
        advance engine (i + 1);
        deliver engine (i + 1) ids)
      (List.rev rev_path);
    advance engine (List.length rev_path + 1);
    engine
  in
  let materialize = function Path rev_path -> replay rev_path | Engine e -> e in
  let count_eval =
    match eval_counter with
    | None -> fun () -> ()
    | Some c -> fun () -> Atomic.incr c
  in
  let outcome_of engine =
    let trace = Dsim.Engine.trace engine in
    {
      Scenario.decisions = Dsim.Engine.outputs engine;
      proposals = Dsim.Trace.inputs trace;
      crashes = Dsim.Trace.crashes trace;
      n;
      horizon = Dsim.Engine.now engine;
      messages = Dsim.Trace.message_count trace;
      engine_result = Dsim.Engine.Quiescent;
    }
  in
  (* Enumerate the delivery orders of one round: group the pending pool per
     correct recipient and take the product of per-recipient orders.
     Messages to crashed processes are irrelevant and are appended in
     arrival order. Returns [None] when nothing is pending. *)
  let round_combos ~truncated engine =
    let pending = Dsim.Engine.pending engine in
    if pending = [] then None
    else begin
      let orders_for_batch ids =
        if List.length ids <= perm_limit then Combinat.permutations ids
        else begin
          truncated := true;
          [ ids; List.rev ids ]
        end
      in
      let to_live, to_crashed =
        List.partition
          (fun (p : _ Dsim.Engine.pending) -> not (Dsim.Engine.crashed engine p.dst))
          pending
      in
      let dsts =
        List.sort_uniq Pid.compare
          (List.map (fun (p : _ Dsim.Engine.pending) -> p.dst) to_live)
      in
      let per_dst_orders =
        List.map
          (fun dst ->
            let ids =
              List.filter_map
                (fun (p : _ Dsim.Engine.pending) ->
                  if Pid.equal p.dst dst then Some p.id else None)
                to_live
            in
            orders_for_batch ids)
          dsts
      in
      let crashed_ids = List.map (fun (p : _ Dsim.Engine.pending) -> p.id) to_crashed in
      Some
        (List.map (fun combo -> List.concat combo @ crashed_ids)
           (Combinat.cartesian per_dst_orders))
    end
  in
  (* Sequential DFS over the subtree below [node], evaluating runs against
     tokens obtained through [lease] (0 = denied). The traversal order —
     and, given the same token supply, the cut point — is identical to a
     global sequential exploration restricted to this subtree, which makes
     the merge exact. The cut is sticky: once a lease is denied the task
     stops, so the evaluated runs are always a DFS-order prefix of the
     subtree. The first [skip] runs are traversed but not evaluated
     (top-up re-runs resume a starved subtree behind its recorded prefix).

     Snapshot hot path: a node's *last* child reuses the parent engine in
     place instead of cloning it — after the final child is built the
     parent is dead, so interior nodes cost (children - 1) clones, not
     children. Only inline traversal may do this; fanned children share
     their parent engine across tasks and must clone (see [go_task]). *)
  let explore_subtree ~lease ~refund ~skip ~fallback0 node round =
    let explored = ref 0 in
    let tokens = ref 0 in
    let cut = ref false in
    let fallback = ref fallback0 in
    let violations_rev = ref [] in
    let first_violation = ref None in
    let have_token () =
      !tokens > 0
      || ((not !cut)
         &&
         let got = lease () in
         tokens := got;
         if got = 0 then cut := true;
         got > 0)
    in
    let evaluate engine =
      tokens := !tokens - 1;
      let index = !explored in
      incr explored;
      if index >= skip then begin
        count_eval ();
        let outcome = outcome_of engine in
        if not (check outcome) then begin
          violations_rev := index :: !violations_rev;
          if !first_violation = None then first_violation := Some outcome
        end
      end
    in
    let rec dfs node round =
      if have_token () then begin
        let engine = materialize node in
        if round > rounds then evaluate engine
        else begin
          match round_combos ~truncated:fallback engine with
          | None -> evaluate engine
          | Some combos ->
              let last = List.length combos - 1 in
              List.iteri
                (fun i ids ->
                  if have_token () then begin
                    let child =
                      match node with
                      | Path rev_path -> Path (ids :: rev_path)
                      | Engine _ when i = last ->
                          deliver engine round ids;
                          advance engine (round + 1);
                          Engine engine
                      | Engine _ ->
                          let c = Dsim.Engine.clone engine in
                          deliver c round ids;
                          advance c (round + 1);
                          Engine c
                    in
                    dfs child (round + 1)
                  end)
                combos
        end
      end
    in
    dfs node round;
    if !tokens > 0 then refund !tokens;
    {
      b_explored = !explored;
      b_violation_indices = List.rev !violations_rev;
      b_first_violation = !first_violation;
      b_fallback = !fallback;
      b_cut = !cut;
    }
  in
  let result_of_branch b =
    {
      explored = b.b_explored;
      violations = List.length b.b_violation_indices;
      first_violation = b.b_first_violation;
      truncated = b.b_cut || b.b_fallback;
    }
  in
  let root_node () =
    match mode with
    | `Replay -> Path []
    | `Snapshot ->
        let engine = fresh () in
        advance engine 1;
        Engine engine
  in
  let bpool = Budget.create budget in
  (* Domains beyond the hardware's parallelism add stop-the-world GC
     handshakes and context switches without adding throughput: on a
     single-core host, 4 domains time-slicing one CPU run the same work
     several times slower than one. [domains] is therefore a ceiling, not
     a demand — clamped to [Domain.recommended_domain_count ()] unless the
     caller (in practice: the determinism tests, which want real OS-thread
     interleaving regardless of host size) opts out. *)
  let domains =
    if clamp_domains then min domains (max 1 (Domain.recommended_domain_count ()))
    else domains
  in
  if domains <= 1 then begin
    (* One lease of the whole budget: the shared-pool machinery reduces to
       the plain sequential DFS (a single atomic op end to end). *)
    let lease () = Budget.lease bpool budget in
    let refund = Budget.refund bpool in
    result_of_branch (explore_subtree ~lease ~refund ~skip:0 ~fallback0:false (root_node ()) 1)
  end
  else begin
    (* Chunked leases: coarse enough to amortise the atomic, fine enough
       that a domain never hoards a meaningful share of the budget. The
       chunk size only shifts work between domains; results are exact for
       any value. *)
    let chunk = max 1 (min 128 (budget / (8 * domains))) in
    (* Speculation cap. Tokens spent by the DFS-leftmost live task are
       always within the sequential prefix (everything to its left is
       finished), so they are never re-evaluated; only DFS-later tasks can
       spend tokens beyond the eventual cut, which the merge then spends
       again topping up the starved prefix. Metering those speculative
       leases through this side pool bounds the total property evaluations
       at budget + budget/4 for ANY scheduling — while exhaustive runs
       (budget comfortably above the tree size) never feel the gate, since
       the main pool outlives the tree. *)
    let spec = Budget.create (budget / 4) in
    (* Registry of live tasks (queued or running) keyed by their DFS rank:
       the child-index path of the subtree root. Lexicographic order on
       ranks is subtree DFS order; a task may lease unmetered iff no
       registered rank is smaller. Children are registered *before* they
       are submitted and their parent deregisters after, so the leftmost
       unexplored subtree is covered by a registered rank at all times. *)
    let reg_m = Mutex.create () in
    let active = ref ([] : int list list) in
    let register rank =
      Mutex.lock reg_m;
      active := rank :: !active;
      Mutex.unlock reg_m
    in
    let deregister rank =
      Mutex.lock reg_m;
      let rec remove_first = function
        | [] -> []
        | r :: rest -> if r = rank then rest else r :: remove_first rest
      in
      active := remove_first !active;
      Mutex.unlock reg_m
    in
    let is_leftmost rank =
      Mutex.lock reg_m;
      let lm = List.for_all (fun r -> compare rank r <= 0) !active in
      Mutex.unlock reg_m;
      lm
    in
    let lease_for rank () =
      if is_leftmost rank then Budget.lease bpool chunk
      else begin
        (* Speculative: account against [spec] first, then draw the same
           number of real tokens. Failed draws are handed back. *)
        let s = Budget.lease spec chunk in
        if s = 0 then 0
        else begin
          let g = Budget.lease bpool s in
          if g < s then Budget.refund spec (s - g);
          g
        end
      end
    in
    (* Fan subtrees at the first [fan_rounds] levels into the pool, but
       only while the queue is hungry and budget remains; everything else
       runs inline. The policy is heuristic and scheduling-dependent —
       correctness never depends on which subtrees got their own task. *)
    let fan_rounds = 2 in
    Pool.run ~domains (fun pool ->
        (* Fanning one node floods the stack with all its children, so the
           cap only needs to detect "workers are hungry", not provision a
           deep backlog: a shallow queue keeps the task count (and the
           per-task promise/condvar traffic) proportional to the domain
           count instead of the tree width. *)
        let queue_cap = 2 * max 1 (Pool.size pool) in
        let refund = Budget.refund bpool in
        let rec go_task node rev_path rank round fallback0 () =
          let fanable =
            round <= fan_rounds && round <= rounds
            && (not (Budget.exhausted bpool))
            && Pool.queued pool < queue_cap
          in
          let inline () =
            let b =
              explore_subtree ~lease:(lease_for rank) ~refund ~skip:0 ~fallback0 node round
            in
            deregister rank;
            Leaf (rev_path, round, b)
          in
          if not fanable then inline ()
          else begin
            let fallback = ref false in
            let engine = materialize node in
            match round_combos ~truncated:fallback engine with
            | None -> inline ()
            | Some combos ->
                (* Each child becomes its own task; the worker that picks it
                   up clones the (now quiescent, shared) parent engine
                   there, off the coordinator's critical path. Children are
                   submitted in *reverse* DFS order: the pool is a LIFO
                   stack, so the DFS-first child lands on top and domains
                   consume the frontier in roughly sequential order — under
                   a tight budget the tokens then go to the runs a
                   sequential exploration would have evaluated, keeping
                   merge-time top-ups marginal. The fan node's fallback
                   flag rides with its first child: if that child's subtree
                   is even partially cut the merge reports truncation
                   anyway, and if it is fully counted the flag lands
                   exactly as in a sequential exploration. *)
                let indexed = List.mapi (fun i ids -> (i, ids)) combos in
                (* All children enter the rank registry before any of them
                   can run (and before the parent's covering rank leaves),
                   so [is_leftmost] never under-approximates. *)
                List.iter (fun (i, _) -> register (rank @ [ i ])) indexed;
                deregister rank;
                Fanned
                  (List.rev_map
                     (fun (i, ids) ->
                       let child_rev_path = ids :: rev_path in
                       let child_rank = rank @ [ i ] in
                       let fb0 = if i = 0 then fallback0 || !fallback else false in
                       let make_child () =
                         match node with
                         | Path _ -> Path child_rev_path
                         | Engine _ ->
                             let c = Dsim.Engine.clone engine in
                             deliver c round ids;
                             advance c (round + 1);
                             Engine c
                       in
                       Pool.submit pool (fun () ->
                           go_task (make_child ()) child_rev_path child_rank (round + 1) fb0
                             ()))
                     (List.rev indexed))
          end
        in
        (* Collect every leaf in DFS order; the coordinator steals queued
           subtree tasks while it waits instead of sleeping. *)
        let rec collect acc = function
          | Leaf (rev_path, round, b) -> (rev_path, round, b) :: acc
          | Fanned children ->
              List.fold_left
                (fun acc p -> collect acc (Pool.await_helping pool p))
                acc children
        in
        register [];
        let leaves = List.rev (collect [] (go_task (root_node ()) [] [] 1 false ())) in
        (* Re-impose the global budget in DFS order, exactly as a
           sequential exploration would have spent it. A subtree that the
           shared pool cut short of its sequential entitlement — possible
           when a DFS-later task leased tokens first — is topped up by
           re-running it with the missing suffix evaluated and the already
           counted prefix merely traversed, so every run is still evaluated
           exactly once. *)
        let remaining = ref budget in
        let explored = ref 0 in
        let violations = ref 0 in
        let first_violation = ref None in
        let truncated = ref false in
        List.iter
          (fun (rev_path, round, b) ->
            if !remaining <= 0 then truncated := true  (* every subtree holds >= 1 run *)
            else begin
              let b =
                if b.b_cut && b.b_explored < !remaining then begin
                  let node =
                    match mode with
                    | `Replay -> Path rev_path
                    | `Snapshot -> Engine (replay rev_path)
                  in
                  let local = ref !remaining in
                  let lease () =
                    let g = !local in
                    local := 0;
                    g
                  in
                  let t =
                    explore_subtree ~lease ~refund:ignore ~skip:b.b_explored
                      ~fallback0:false node round
                  in
                  {
                    t with
                    b_violation_indices = b.b_violation_indices @ t.b_violation_indices;
                    b_first_violation =
                      (match b.b_first_violation with
                      | Some _ as v -> v
                      | None -> t.b_first_violation);
                    b_fallback = b.b_fallback || t.b_fallback;
                  }
                end
                else b
              in
              let take = min b.b_explored !remaining in
              explored := !explored + take;
              remaining := !remaining - take;
              let counted = List.filter (fun i -> i < take) b.b_violation_indices in
              violations := !violations + List.length counted;
              if !first_violation = None && counted <> [] then
                first_violation := b.b_first_violation;
              if take < b.b_explored || b.b_cut then truncated := true
              else truncated := !truncated || b.b_fallback
            end)
          leaves;
        {
          explored = !explored;
          violations = !violations;
          first_violation = !first_violation;
          truncated = !truncated;
        })
  end
