module Metrics = Stdext.Metrics
module Json = Stdext.Json

type t = {
  protocol : string;
  n : int;
  e : int;
  f : int;
  delta : int;
  decided : int;
  fast : int;
  fast_path_rate : float;
  latency_hist : (int * int) list;
  messages : int;
}

(* Ticks -> whole message delays, rounding up: a decision 2Δ after the
   proposal is a two-delay (two-step) decision; anything in (2Δ, 3Δ] took
   a third step. *)
let delays_of ~delta ticks = (ticks + delta - 1) / delta

let record registry report =
  let pre = "report." ^ report.protocol ^ "." in
  let c name v = Metrics.add (Metrics.counter registry (pre ^ name)) v in
  c "decided" report.decided;
  c "fast" report.fast;
  c "messages" report.messages;
  let h =
    Metrics.histogram registry ~buckets:[| 1; 2; 3; 4; 5; 6; 7; 8 |]
      (pre ^ "latency_delays")
  in
  List.iter
    (fun (d, count) ->
      for _ = 1 to count do
        Metrics.observe h d
      done)
    report.latency_hist

(* The e-two-step definitions are existential: process [p] decides in two
   steps in SOME synchronous run — realised by the delivery order that
   favors [p] (its proposal is accepted first everywhere; see
   {!Twostep}). So the fast-path rate is measured per target: one
   conflict-free run per pid under [Favor p], scoring [p]'s own latency.
   An order-insensitive protocol (Fast Paxos under unanimity) scores the
   same in every run; a fixed-leader protocol (Paxos) is fast only for
   the leader, rate 1/n. *)
let conflict_free (module P : Proto.Protocol.S) ?n ~e ~f ~delta ?(value = 1)
    ?(metrics = Metrics.disabled) ?final_fingerprint () =
  let n = match n with Some n -> n | None -> P.min_n ~e ~f in
  let proposals = Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> value)) in
  let messages = ref 0 in
  let delays =
    List.filter_map
      (fun target ->
        let outcome =
          Scenario.run
            (module P)
            ~n ~e ~f ~delta
            ~net:(Scenario.Sync (`Favor target))
            ~proposals ~disable_timers:true ~metrics ?final_fingerprint
            ~until:(20 * delta) ()
        in
        messages := !messages + outcome.Scenario.messages;
        List.assoc_opt target outcome.Scenario.latencies
        |> Option.map (delays_of ~delta))
      (List.init n Fun.id)
  in
  let decided = List.length delays in
  let fast = List.length (List.filter (fun d -> d <= 2) delays) in
  let latency_hist =
    List.sort_uniq compare delays
    |> List.map (fun d -> (d, List.length (List.filter (Int.equal d) delays)))
  in
  let report =
    {
      protocol = P.name;
      n;
      e;
      f;
      delta;
      decided;
      fast;
      fast_path_rate = (if n = 0 then 0. else float_of_int fast /. float_of_int n);
      latency_hist;
      messages = !messages;
    }
  in
  if Metrics.is_enabled metrics then record metrics report;
  report

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s (n=%d, e=%d, f=%d): fast-path rate %.2f (%d/%d decided in <= 2 delays), %d \
     messages@,"
    t.protocol t.n t.e t.f t.fast_path_rate t.fast t.n t.messages;
  Format.fprintf fmt "  decision latency (message delays):";
  List.iter
    (fun (d, count) ->
      Format.fprintf fmt "@,    %d delay%s: %s %d" d
        (if d = 1 then " " else "s")
        (String.make (min count 40) '#')
        count)
    t.latency_hist;
  if t.latency_hist = [] then Format.fprintf fmt "@,    (no decisions)";
  Format.fprintf fmt "@]"

let to_json t =
  Json.Obj
    [
      ("protocol", Json.String t.protocol);
      ("n", Json.Int t.n);
      ("e", Json.Int t.e);
      ("f", Json.Int t.f);
      ("delta", Json.Int t.delta);
      ("decided", Json.Int t.decided);
      ("fast", Json.Int t.fast);
      ("fast_path_rate", Json.Float t.fast_path_rate);
      ("messages", Json.Int t.messages);
      ( "latency_hist",
        Json.List
          (List.map
             (fun (d, c) -> Json.Obj [ ("delays", Json.Int d); ("count", Json.Int c) ])
             t.latency_hist) );
    ]
