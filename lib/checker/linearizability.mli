(** Linearizability: the single-shot consensus object, and WGL search over
    KV operation histories.

    {1 Single-shot consensus}

    For a consensus object (Castañeda-Rajsbaum-Raynal style), a run is
    linearizable iff all responses return the same value [v], [v] was the
    argument of some [propose] invocation, and that invocation started no
    later than the first response (real-time order). For the single-shot
    object these conditions are necessary and sufficient, so no search is
    involved.

    {1 KV histories}

    For the replicated key-value store the question is real: given the
    fleet's client-observed history ({!History.t}) — invocations, responses
    and returned values, including operations still outstanding at the
    horizon — does some total order of the operations respect real time
    (op A before op B whenever A responded before B was invoked) and the
    sequential KV spec (a read returns the latest preceding write, [0] if
    none)?  {!check_history} decides it with a Wing&Gong / Lowe-style
    search: repeatedly linearize some {e minimal} operation (one invoked
    no later than every remaining operation's response), memoizing failed
    (pending-set, store) states so equivalent interleavings are explored
    once.  Incomplete reads impose no constraint and are dropped;
    incomplete writes may linearize anywhere after their invocation or
    never.

    KV histories are {e P-compositional}: linearizable iff every per-key
    subhistory is, so the default mode checks each key independently —
    exponentially smaller searches — and [`Monolithic] exists to measure
    exactly that effect.

    On failure the checker shrinks the offending subhistory to a witness
    window by time truncation (truncating at time [t] keeps operations
    invoked by [t] and makes later responses incomplete; truncation
    failure is monotone in [t]), binary-searching the first failing
    response time and then the latest window start that still fails when
    earlier operations are discarded and the initial value left free.
    The window's operations are the concrete evidence to stare at.

    The checker never asserts on history contents: malformed histories
    (responses before invocations, complete operations without return
    values) come back as a failing outcome with a reason. *)

type verdict = {
  linearizable : bool;
  reason : string option;  (** set when not linearizable *)
}

val check : Scenario.outcome -> verdict
(** Single-shot consensus check: treats [outcome.proposals] as invocations
    and [outcome.decisions] as responses. *)

type stats = {
  ops : int;  (** history events checked *)
  keys : int;  (** distinct keys (search partitions in per-key mode) *)
  states : int;  (** memoized search states explored, all searches summed *)
}

type witness = {
  key : int option;  (** the offending key; [None] in monolithic mode *)
  window_start : Dsim.Time.t;
  window_end : Dsim.Time.t;
  events : History.t;  (** the minimal window's operations, invoke order *)
}

type outcome = {
  ok : bool;
  reason : string option;  (** set when [not ok] *)
  witness : witness option;  (** set when [not ok] and the history parsed *)
  stats : stats;
}

val check_history : ?mode:[ `Per_key | `Monolithic ] -> History.t -> outcome
(** Default [`Per_key]. Both modes agree on [ok] (P-compositionality);
    they differ in search cost and in witness localization. *)

val pp_witness : Format.formatter -> witness -> unit
