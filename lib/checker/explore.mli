(** Bounded-exhaustive exploration of synchronous schedules.

    In the E-faulty synchronous model every round-[k] message is delivered
    at the round boundary [k*Δ]; the only scheduling freedom is each
    recipient's delivery order. This module enumerates those orders
    (depth-first) up to a round horizon and a run budget, and evaluates a
    property on every complete run. It is the small-scope model checker
    behind the tightness experiments: at the bound the property holds on
    every explored schedule, below the bound a violating schedule is found.

    Two execution strategies materialise the same search tree:
    {ul
    {- [`Replay] re-executes the deterministic engine from time 0 along
       each path — O(depth²) engine work per branch, no state copying;}
    {- [`Snapshot] (the default) extends an {!Dsim.Engine.clone} of the
       parent node by one round per branch — O(depth) incremental
       stepping.}}
    Both visit the exact same runs in the same order and return identical
    results.

    With [domains > 1] the top-level branches of the search are fanned
    across a {!Stdext.Pool} of OCaml domains. Results are merged
    deterministically: explored/violation counts, the (canonical) first
    violation in DFS order and the truncation flag are identical to a
    [domains = 1] exploration — including when the run budget cuts the
    search short — independent of worker scheduling. The [check] predicate
    then runs concurrently in several domains and must be thread-safe
    (pure predicates, like all the checkers in this repository, are).

    Batches larger than [perm_limit] messages fall back to two
    representative orders (arrival and reversed) to keep the product
    tractable; [truncated] reports whether any fallback or budget cut
    occurred, i.e. whether the exploration was exhaustive. *)

type result = {
  explored : int;  (** complete runs evaluated *)
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

type mode = [ `Replay | `Snapshot ]

val synchronous :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  rounds:int ->
  ?budget:int ->
  ?perm_limit:int ->
  ?disable_timers:bool ->
  ?mode:mode ->
  ?domains:int ->
  check:(Scenario.outcome -> bool) ->
  unit ->
  result
(** [check] returns [false] on a violating run. [budget] defaults to 20_000
    runs, [perm_limit] to 4, [disable_timers] to [true], [mode] to
    [`Snapshot], [domains] to 1 (sequential). *)
