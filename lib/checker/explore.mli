(** Bounded-exhaustive exploration of synchronous schedules.

    In the E-faulty synchronous model every round-[k] message is delivered
    at the round boundary [k*Δ]; the only scheduling freedom is each
    recipient's delivery order. This module enumerates those orders
    (depth-first) up to a round horizon and a run budget, and evaluates a
    property on every complete run. It is the small-scope model checker
    behind the tightness experiments: at the bound the property holds on
    every explored schedule, below the bound a violating schedule is found.

    Two execution strategies materialise the same search tree:
    {ul
    {- [`Replay] re-executes the deterministic engine from time 0 along
       each path — O(depth²) engine work per branch, no state copying;}
    {- [`Snapshot] (the default) extends an {!Dsim.Engine.clone} of the
       parent node by one round per branch — O(depth) incremental
       stepping. A node's last child additionally reuses the parent engine
       in place (it is dead afterwards), so an interior node with [k]
       children costs [k - 1] clones.}}
    Both visit the exact same runs in the same order and return identical
    results.

    With [domains > 1] the search is fanned across a {!Stdext.Pool} of
    OCaml domains: subtrees at the first levels of the tree become pool
    tasks (workers re-submit sub-subtrees, and the coordinator steals
    queued tasks while it waits), and all domains draw evaluation tokens in
    chunks from one shared budget pool — the total engine work across all
    domains is bounded by one budget's worth, instead of every branch
    racing the full budget and most of the work being discarded. Results
    are merged deterministically in DFS order: explored/violation counts,
    the (canonical) first violation and the truncation flag are identical
    to a [domains = 1] exploration — including when the run budget cuts
    the search short — independent of worker scheduling. (In the rare case
    scheduling starves a DFS-early subtree of tokens that a sequential
    exploration would have granted it, the merge re-runs just that
    subtree's missing suffix sequentially; every run is still evaluated
    exactly once.) The [check] predicate then runs concurrently in several
    domains and must be thread-safe (pure predicates, like all the
    checkers in this repository, are).

    Batches larger than [perm_limit] messages fall back to two
    representative orders (arrival and reversed) to keep the product
    tractable; [truncated] reports whether any fallback or budget cut
    occurred, i.e. whether the exploration was exhaustive.

    {b Deduplication.} Many schedules converge to the same simulation
    state (deliver two messages to different recipients in either order,
    say). With [dedup] other than {!Off} the explorer keys every
    search-tree node on its {!Dsim.Engine.fingerprint} in a shared
    {!Stdext.Stateset} and prunes the subtree under a state it has
    already expanded — turning the search over {e schedules} into a search
    over {e distinct states}, which is what makes deep horizons exhaustive
    within real budgets. Pruned branches spend no budget tokens (their
    lease is kept for the next node or refunded). Soundness: exact dedup
    can only merge genuinely identical states (up to the 62-bit
    hash-compaction collision probability of {!Stdext.Stateset});
    [Symmetry] additionally merges states equal up to a permutation of the
    non-distinguished pids, which preserves the verdict of any
    pid-agnostic property (agreement, validity) but may report a
    different — permuted — [first_violation]. The byte-identical-totals
    contract across modes/domains holds for explorations that complete
    within budget; when the budget cuts a dedup'd search, merge top-ups
    are disabled (a re-run would be pruned by its own earlier visit), so
    totals near the cut can vary with scheduling. *)

type result = {
  explored : int;  (** complete runs evaluated *)
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

(** Structured account of one exploration, split along the determinism
    boundary. [totals] is derived from per-run facts counted in global DFS
    order under the sequential budget cut, so it is {e identical} across
    [`Replay]/[`Snapshot], any [domains] count and any worker scheduling —
    the byte-identical contract the determinism tests assert. [sched]
    records what this particular execution did (token leases, speculation
    waste, merge top-ups, per-domain load) and legitimately varies from run
    to run; it is the budget-leasing observability story. *)
module Run_report : sig
  type totals = {
    explored : int;
    violations : int;
    truncated : bool;
    depth_histogram : int array;
        (** [depth_histogram.(d)] = runs that ended after [d] round
            boundaries; length [rounds + 1]. Runs end early ([d < rounds])
            when no messages are pending — typically because every correct
            process already decided. *)
    fast_runs : int;
        (** Runs where at least one process decided and every deciding
            process decided within two message delays of its proposal —
            the two-step fast path of the paper. *)
    fault_runs : int;  (** runs with at least one injected drop/duplication *)
    drops : int;  (** total dropped messages across counted runs *)
    dups : int;  (** total duplicated messages across counted runs *)
    distinct_states : int;
        (** search-tree nodes admitted by the visited set (0 with dedup
            off). For an exhaustive exploration this is the number of
            distinct reachable (state, round) pairs. *)
    dedup_hits : int;  (** arrivals at an already-visited state *)
    pruned_subtrees : int;
        (** dedup hits at interior nodes — each cut a whole subtree *)
    por_pruned : int;
        (** children never generated because every path to them was a
            commuted recombination of kept delivery orders (0 with POR
            off). Each unit is a whole subtree the search never entered —
            pruning {e before} expansion, where dedup prunes after. *)
    sleep_hits : int;
        (** per-destination delivery orders suppressed by the sleep set —
            the trial-equivalence classes behind [por_pruned] *)
  }

  type sched = {
    domains : int;  (** after clamping *)
    budget : int;
    leased : int;  (** evaluation tokens leased from the shared budget *)
    evals : int;  (** property evaluations, including merge top-ups *)
    wasted : int;  (** [evals - explored]: speculative work discarded *)
    top_ups : int;  (** starved subtrees re-run during the merge *)
    max_fanout : int;
        (** widest round-boundary branching observed (delivery orders ×
            fault subsets) — the fault-branch fan-out *)
    tasks_per_domain : int array;  (** pool tasks completed per worker *)
    stolen : int;  (** tasks executed by the coordinator while waiting *)
  }

  type t = { totals : totals; sched : sched }

  val totals_equal : totals -> totals -> bool

  val fast_path_rate : totals -> float
  (** [fast_runs / explored] (0 when nothing was explored). *)

  val mean_depth : totals -> float

  val budget_waste_pct : sched -> float
  (** [100 * wasted / evals] (0 when nothing was evaluated). *)

  val pp : Format.formatter -> t -> unit

  val record : Stdext.Metrics.t -> t -> unit
  (** Mirror the report into a metrics registry under [explore.*] names:
      counters for every totals/sched field, a gauge for
      [explore.max_fanout] and [explore.domains], and the
      [explore.depth] histogram. Counters accumulate across calls;
      recording reports with different [rounds] into one registry raises
      [Invalid_argument] (histogram bounds conflict). *)
end

type mode = [ `Replay | `Snapshot ]

(** Visited-set policy: [Off] explores every schedule (the historical
    behaviour and the library default); [Exact] prunes subtrees under
    states already expanded; [Symmetry] also canonicalises
    non-distinguished pids before hashing. Requires the protocol's
    automaton to supply a [state_fingerprint] hook (all bundled protocols
    do); [Invalid_argument] otherwise. *)
type dedup = Off | Exact | Symmetry

(** Partial-order reduction policy: [No_por] (the default) enumerates
    every delivery-order combination; [Sleep] prunes commuting orders
    {e before} expansion. At a round boundary, deliveries to distinct
    destinations commute structurally (a delivery only steps its
    destination process — the independence relation is read off
    {!Dsim.Engine.pending_delivery_groups}, with no per-protocol
    knowledge), and within one destination's batch, each candidate order
    is trial-run against a scratch clone; orders reaching the (engine
    fingerprint, output history) of an earlier sibling order join the
    sleep set and are never expanded. Timer fires, crashes and fault
    branches execute inside the trial context, so an intervening event
    that breaks commutation differentiates the trials and defeats the
    pruning — never the verdict. Composes with [dedup] (POR prunes
    first, the visited set catches cross-branch convergence), [faults]
    and [domains]. Sound up to the same 62-bit hash-compaction caveat as
    [Exact] dedup; requires a [state_fingerprint] hook
    ([Invalid_argument] otherwise). *)
type por = No_por | Sleep

type fault_bounds = { max_drops : int; max_dups : int }
(** Bounds on the fault choices the explorer may enumerate per run: the
    adversary may lose at most [max_drops] messages and duplicate at most
    [max_dups] over the whole run. Faults here are {e explored}
    nondeterminism — every admissible combination of faulty schedules is
    visited, unlike the seeded random faults of {!Scenario.run}. *)

val no_faults : fault_bounds
(** [{ max_drops = 0; max_dups = 0 }]: the classic order-only search. *)

val synchronous :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  rounds:int ->
  ?budget:int ->
  ?perm_limit:int ->
  ?disable_timers:bool ->
  ?mode:mode ->
  ?domains:int ->
  ?clamp_domains:bool ->
  ?eval_counter:int Atomic.t ->
  ?faults:fault_bounds ->
  ?dedup:dedup ->
  ?por:por ->
  ?stateset_capacity:int ->
  ?metrics:Stdext.Metrics.t ->
  check:(Scenario.outcome -> bool) ->
  unit ->
  result
(** [check] returns [false] on a violating run. [budget] defaults to 20_000
    runs, [perm_limit] to 4, [disable_timers] to [true], [mode] to
    [`Snapshot], [domains] to 1 (sequential), [faults] to {!no_faults},
    [dedup] to {!Off}, [por] to {!No_por}. [stateset_capacity] overrides
    the visited set's initial slot count, which otherwise is pre-sized
    from [budget] ({!Stdext.Stateset.recommended_capacity} on twice the
    run budget, capped) so a full-budget dedup exploration never pays a
    resize stall. [metrics] (default disabled) receives the visited
    set's [stateset.*] counters; the [explore.*] report metrics are still
    recorded separately via {!Run_report.record}.

    With [por = Sleep] the explored tree is a sub-tree of the [No_por]
    one with the same reachable verdicts: violation/no-violation and the
    {e existence} of a first violation are preserved (the particular
    witness may differ, as with [dedup]), while [explored] shrinks by the
    number of commuted order combinations ([totals.por_pruned]). The
    [totals] byte-identity contract extends to the POR counters for
    explorations that complete within budget.

    With non-zero [faults] bounds, each round boundary additionally
    branches on which pending messages are dropped and which are
    duplicated (the copy stays pending and arrives at a later boundary),
    subject to the remaining per-run bounds. Fault subsets are enumerated
    smallest-first with the no-fault choice first, so a tight [budget]
    covers all fault-free schedules before spending runs on faulty ones.
    Fault choices compose with both [mode]s and with [domains > 1]
    unchanged: results stay deterministic and mode/domain-independent.

    [domains] is a ceiling, not a demand: by default it is clamped to
    [Domain.recommended_domain_count ()], because extra domains on an
    oversubscribed host cost stop-the-world GC handshakes and context
    switches without adding throughput (on a single-core machine,
    [~domains:4] then simply runs sequentially instead of several times
    slower). Pass [~clamp_domains:false] to spawn exactly [domains]
    domains regardless — the determinism tests do, to exercise the
    parallel merge under real thread interleaving on any host. Results
    are identical either way.

    [eval_counter], when given, is incremented once per property
    evaluation across all domains — a test/diagnostic hook for asserting
    that parallel exploration does not duplicate budget (the count stays
    within a small factor of [min budget size], where a sequential run
    costs exactly [min budget size]). *)

val synchronous_report :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  rounds:int ->
  ?budget:int ->
  ?perm_limit:int ->
  ?disable_timers:bool ->
  ?mode:mode ->
  ?domains:int ->
  ?clamp_domains:bool ->
  ?eval_counter:int Atomic.t ->
  ?faults:fault_bounds ->
  ?dedup:dedup ->
  ?por:por ->
  ?stateset_capacity:int ->
  ?metrics:Stdext.Metrics.t ->
  check:(Scenario.outcome -> bool) ->
  unit ->
  result * Run_report.t
(** {!synchronous} plus the structured {!Run_report}. Same arguments, same
    [result]; the report's [totals] agree with [result] and are
    mode/domain/scheduling-independent, while [sched] describes this
    execution. [synchronous] is [fst] of this function. *)

(** Coverage account of one {!swarm_report} run. Deterministic for a
    given configuration — each walker's trajectory depends only on
    [(seed, walker index)] and its fixed budget share — regardless of
    domain count or scheduling. *)
module Swarm_report : sig
  type t = {
    walkers : int;
    runs : int;  (** complete random walks evaluated (= budget when > 0) *)
    violations : int;
    distinct_states : int;
        (** distinct (state, round) pairs covered across all walkers —
            the headline coverage figure; divide by wall time for
            distinct-states/sec *)
    dedup_hits : int;  (** node arrivals at an already-covered state *)
    sleep_hits : int;  (** as in {!Run_report.totals.sleep_hits} *)
    por_pruned : int;
        (** order combinations removed from the walkers' choice menus *)
    fallback : bool;  (** perm-limit fallback hit on some boundary *)
  }

  val distinct_states_per_sec : t -> wall_s:float -> float

  val pp : Format.formatter -> t -> unit
end

val swarm :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  rounds:int ->
  ?budget:int ->
  ?perm_limit:int ->
  ?disable_timers:bool ->
  ?walkers:int ->
  ?seed:int ->
  ?domains:int ->
  ?clamp_domains:bool ->
  ?faults:fault_bounds ->
  ?por:por ->
  ?stateset_capacity:int ->
  ?metrics:Stdext.Metrics.t ->
  check:(Scenario.outcome -> bool) ->
  unit ->
  result
(** Randomized swarm search for configurations beyond exhaustive reach
    (n ≥ 8): [walkers] (default 4) seeded walkers each perform random
    root-to-leaf descents of the schedule tree, picking uniformly among
    the POR-reduced choices ([por] defaults to {!Sleep}) at every round
    boundary, until the shared [budget] of complete runs is spent. All
    walkers share one {!Stdext.Stateset} — used to {e count} coverage
    (distinct (state, round) pairs, comparable with the exhaustive
    explorer's [distinct_states]), never to prune — and one budget lease
    pool, split in fixed ceil-division shares so trajectories are
    scheduling-independent. Walker [w] draws from
    [Stdext.Rng.stream ~seed w], so the whole run is reproducible from
    [seed] alone. [domains] defaults to [walkers] (clamped like
    {!synchronous}). The result is always [truncated] — a swarm run is a
    sample, not a proof; a clean sweep raises confidence, a violation is
    a genuine witness. *)

val swarm_report :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  rounds:int ->
  ?budget:int ->
  ?perm_limit:int ->
  ?disable_timers:bool ->
  ?walkers:int ->
  ?seed:int ->
  ?domains:int ->
  ?clamp_domains:bool ->
  ?faults:fault_bounds ->
  ?por:por ->
  ?stateset_capacity:int ->
  ?metrics:Stdext.Metrics.t ->
  check:(Scenario.outcome -> bool) ->
  unit ->
  result * Swarm_report.t
(** {!swarm} plus the coverage report. [swarm] is [fst] of this
    function. *)
