(** Protocol telemetry reports: the fast-path story of a protocol, as
    numbers.

    The paper's claim is about {e two-step} decisions: with [n] at the
    protocol's bound, every process can decide two message delays after
    proposing on a conflict-free synchronous run (the e-two-step
    definitions are existential, realised by the delivery order favoring
    the deciding process). This module measures exactly that: all
    processes propose the same value at time 0 under synchronous rounds —
    no crashes, no faults — once per target process with the order
    favoring it, scoring each target's own first-proposal-to-decision
    latency. The summary is a per-protocol fast-path rate and a
    decision-latency histogram in message delays. [twostep report] prints
    it; tests assert the rates at the tight system sizes (RGS-task at
    n = max{2e+f, 2f+1}, RGS-object at n = max{2e+f-1, 2f+1}, Fast Paxos
    at n = 2e+f+1 — all 1.0 — while leader-based Paxos is fast only for
    its leader, 1/n). *)

type t = {
  protocol : string;
  n : int;
  e : int;
  f : int;
  delta : int;
  decided : int;  (** targets that decided in their favored run *)
  fast : int;  (** targets that decided within two message delays *)
  fast_path_rate : float;  (** [fast / n] *)
  latency_hist : (int * int) list;
      (** [(delays, targets)] pairs, ascending; [delays] is the target's
          first-proposal-to-first-decision gap in its favored run, rounded
          up to whole message delays ([ceil (ticks / delta)]) *)
  messages : int;  (** total messages sent across the [n] runs *)
}

val conflict_free :
  Proto.Protocol.t ->
  ?n:int ->
  e:int ->
  f:int ->
  delta:int ->
  ?value:Proto.Value.t ->
  ?metrics:Stdext.Metrics.t ->
  ?final_fingerprint:bool * (int64 -> unit) ->
  unit ->
  t
(** Run the conflict-free synchronous scenario once per target process
    (delivery order favoring the target) and summarise. [n] defaults to
    the protocol's [min_n ~e ~f] — the tight size the paper's bounds are
    about. [value] (default 1) is the common proposal. [metrics] (default
    disabled) is threaded to the engines (the [engine.*] probe mirror
    aggregates over the [n] runs) and additionally receives the report
    itself under [report.<protocol>.*] names (counters for
    [decided]/[fast]/[messages] and the [latency_delays] histogram).
    [final_fingerprint] is forwarded to each {!Scenario.run} — the
    callback fires once per target run with the terminal engine
    fingerprint, letting callers count distinct end states. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering: the rate line and the latency histogram. *)

val to_json : t -> Stdext.Json.t
(** Stable object: [protocol], [n], [e], [f], [delta], [decided], [fast],
    [fast_path_rate], [messages] and [latency_hist] as a list of
    [{"delays": D, "count": C}]. *)
