module Pid = Dsim.Pid
module Time = Dsim.Time
module Value = Proto.Value

type net =
  | Sync of [ `Arrival | `Random | `Favor of Pid.t ]
  | Partial of { gst : Time.t; max_pre_gst : int }
  | Uniform of { min_delay : int; max_delay : int }
  | Wan of { latency : src:Pid.t -> dst:Pid.t -> int; jitter : int }

type outcome = {
  decisions : (Time.t * Pid.t * Value.t) list;
  proposals : (Time.t * Pid.t * Value.t) list;
  crashes : (Time.t * Pid.t) list;
  n : int;
  horizon : Time.t;
  messages : int;
  dropped : int;
  duplicated : int;
  latencies : (Pid.t * int) list;
  engine_result : Dsim.Engine.run_result;
}

let to_network ~delta net : _ Dsim.Network.t =
  match net with
  | Sync order ->
      let order =
        match order with
        | `Arrival -> Dsim.Network.Arrival
        | `Random -> Dsim.Network.Random_order
        | `Favor p -> Dsim.Network.Favor p
      in
      Dsim.Network.Sync_rounds { delta; order }
  | Partial { gst; max_pre_gst } -> Dsim.Network.Partial_sync { delta; gst; max_pre_gst }
  | Uniform { min_delay; max_delay } -> Dsim.Network.Uniform { min_delay; max_delay }
  | Wan { latency; jitter } -> Dsim.Network.Wan { latency; jitter }

let run (module P : Proto.Protocol.S) ~n ~e ~f ~delta ~net ~proposals ?(crashes = [])
    ?(seed = 0) ?(disable_timers = false) ?(faults = Dsim.Network.Fault.none)
    ?(metrics = Stdext.Metrics.disabled) ?final_fingerprint ~until () =
  let automaton = P.make ~n ~e ~f ~delta in
  let engine =
    Dsim.Engine.create ~automaton ~n
      ~network:(to_network ~delta net)
      ~seed ~disable_timers ~record_trace:true ~inputs:proposals ~crashes ~faults ~metrics
      ()
  in
  let engine_result = Dsim.Engine.run ~until engine in
  (match final_fingerprint with
  | Some (symmetry, k) when Dsim.Engine.has_fingerprint engine ->
      k (Dsim.Engine.fingerprint ~symmetry engine)
  | Some _ | None -> ());
  let trace = Dsim.Engine.trace engine in
  let dropped, duplicated = Dsim.Engine.fault_counts engine in
  {
    decisions = Dsim.Engine.outputs engine;
    proposals = Dsim.Trace.inputs trace;
    crashes = Dsim.Trace.crashes trace;
    n;
    horizon = Dsim.Engine.now engine;
    messages = Dsim.Trace.message_count trace;
    dropped;
    duplicated;
    latencies = Dsim.Engine.decision_latencies engine;
    engine_result;
  }

let decided_value outcome p =
  List.find_map
    (fun (t, q, v) -> if Pid.equal p q then Some (t, v) else None)
    outcome.decisions

let decided_by outcome ~deadline =
  List.filter_map
    (fun (t, q, _) -> if t <= deadline then Some q else None)
    outcome.decisions
  |> List.sort_uniq Pid.compare

let all_proposals_at_zero ~n values =
  if List.length values <> n then
    invalid_arg "Scenario.all_proposals_at_zero: need one value per process";
  List.mapi (fun i v -> (Time.zero, i, v)) values

let crash_at_start pids = List.map (fun p -> (Time.zero, p)) pids
