module Value = Proto.Value
module Imap = Map.Make (Int)

type verdict = { linearizable : bool; reason : string option }

let fail reason = { linearizable = false; reason = Some reason }

let check (o : Scenario.outcome) =
  match o.decisions with
  | [] -> { linearizable = true; reason = None }
  | (first_time, _, _) :: _ -> begin
      let values = List.sort_uniq Value.compare (List.map (fun (_, _, v) -> v) o.decisions) in
      match values with
      | [ v ] ->
          (* The deciding value must come from an invocation that started
             before the first response completed. *)
          let witness =
            List.exists
              (fun (t, _, proposed) -> Value.equal proposed v && t <= first_time)
              o.proposals
          in
          if witness then { linearizable = true; reason = None }
          else
            fail
              (Format.asprintf
                 "decided %a, but no propose(%a) was invoked before the first response"
                 Value.pp v Value.pp v)
      | _ ->
          fail
            (Format.asprintf "conflicting decisions: %a"
               (Format.pp_print_list ~pp_sep:Format.pp_print_space Value.pp)
               values)
    end

(* ------------------------------------------------------------------ *)
(* WGL search over KV histories.                                       *)

type stats = { ops : int; keys : int; states : int }

type witness = {
  key : int option;
  window_start : Dsim.Time.t;
  window_end : Dsim.Time.t;
  events : History.t;
}

type outcome = {
  ok : bool;
  reason : string option;
  witness : witness option;
  stats : stats;
}

let pp_witness fmt w =
  let header =
    match w.key with
    | Some k -> Printf.sprintf "key %d" k
    | None -> "history"
  in
  Format.fprintf fmt "@[<v>%s not linearizable in window [%d, %d]:@,%a@]" header
    w.window_start w.window_end
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut History.pp_event)
    w.events

(* The search works on a flattened op: [respond = max_int] marks an
   incomplete write (linearizable anywhere after its invocation, or
   never); incomplete reads never make it here. [ev] is carried only to
   reconstruct witness windows as history events. *)
type sop = {
  skey : int;
  read : bool;
  value : int;  (* written value, or the value a read returned *)
  invoke : int;
  respond : int;
  ev : History.event;
}

(* Turn a history into search ops, or reject it with a reason — this is
   the never-assert boundary: whatever a run (or a corrupted history
   file) hands us becomes either a well-formed search or a failing
   outcome. *)
let flatten (events : History.t) : (sop list, string) result =
  let exception Bad of string in
  try
    Ok
      (List.filter_map
         (fun (e : History.event) ->
           if e.History.invoke < 0 then
             raise (Bad (Format.asprintf "negative invoke time: %a" History.pp_event e));
           match (e.History.respond, e.History.ret) with
           | Some r, _ when r < e.History.invoke ->
               raise (Bad (Format.asprintf "response before invocation: %a" History.pp_event e))
           | Some _, None ->
               raise (Bad (Format.asprintf "complete op without return value: %a" History.pp_event e))
           | None, Some _ ->
               raise (Bad (Format.asprintf "incomplete op with return value: %a" History.pp_event e))
           | respond, ret -> (
               let mk read value respond =
                 Some { skey = e.History.key; read; value; invoke = e.History.invoke; respond; ev = e }
               in
               match (e.History.kind, respond, ret) with
               | History.Read, Some r, Some v -> mk true v r
               | History.Read, None, None -> None  (* unconstrained *)
               | History.Write w, Some r, Some _ -> mk false w r
               | History.Write w, None, None -> mk false w max_int
               | _, Some _, None | _, None, Some _ ->
                   (* already rejected above; keep the checker assert-free *)
                   raise (Bad (Format.asprintf "inconsistent op: %a" History.pp_event e))))
         events)
  with Bad msg -> Error msg

(* One WGL search: linearize a minimal remaining op (invoked no later
   than every remaining op's response), DFS with backtracking, memoizing
   failed (pending-set, store) states.  [free_init] leaves never-written
   keys unconstrained (a read pins them) — used when checking witness
   suffixes cut loose from time zero; the full history starts from the
   all-zeros store the KV spec prescribes. *)
let search ~free_init ~states (ops : sop array) : bool =
  (* Incomplete writes whose value no read of their key returned are
     irrelevant: they impose no constraint (they may linearize never), and
     linearizing one can only overwrite state some read needs, so every
     linearization of the pruned set extends to the full set and vice
     versa.  Dropping them up front is what keeps fleets with hundreds of
     in-flight writes at the horizon tractable — each surviving op costs
     search states, each dropped one costs nothing. *)
  let read_vals = Hashtbl.create 64 in
  Array.iter (fun o -> if o.read then Hashtbl.replace read_vals (o.skey, o.value) ()) ops;
  let ops =
    Array.of_list
      (List.filter
         (fun o -> o.read || o.respond <> max_int || Hashtbl.mem read_vals (o.skey, o.value))
         (Array.to_list ops))
  in
  let n = Array.length ops in
  (* A write is [unread] at a search node when no {e remaining} read of
     its key returns its value: such writes are interchangeable starters
     (whenever some candidate unread write begins a valid linearization
     of the remaining ops, so does any other — no remaining read can
     directly follow an unread write, so it can be moved to the front),
     which lets the branch loop try just one per node instead of
     permuting the whole overlapping-write window.  [reads_left] tracks,
     per (key, value), how many unlinearized reads still return it; the
     counts fall as reads are linearized, so writes whose readers are
     already placed stop branching too. *)
  let reads_left : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun o ->
      if o.read then
        match Hashtbl.find_opt reads_left (o.skey, o.value) with
        | Some c -> incr c
        | None -> Hashtbl.add reads_left (o.skey, o.value) (ref 1))
    ops;
  let unread o =
    (not o.read)
    &&
    match Hashtbl.find_opt reads_left (o.skey, o.value) with
    | None -> true
    | Some c -> !c = 0
  in
  if n = 0 then true
  else begin
    (* Branch over candidates in respond order (incomplete ops last): an
       op that must finish early usually linearizes early, so trying it
       first steers the DFS down a valid order instead of exploring and
       memoizing doomed permutations of the concurrency window. *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare ops.(a).respond ops.(b).respond in
        if c <> 0 then c else compare ops.(a).invoke ops.(b).invoke)
      order;
    let linearized = Bytes.make ((n + 7) / 8) '\000' in
    let marked i = Char.code (Bytes.get linearized (i / 8)) land (1 lsl (i mod 8)) <> 0 in
    let mark i =
      Bytes.set linearized (i / 8)
        (Char.chr (Char.code (Bytes.get linearized (i / 8)) lor (1 lsl (i mod 8))))
    in
    let unmark i =
      Bytes.set linearized (i / 8)
        (Char.chr (Char.code (Bytes.get linearized (i / 8)) land lnot (1 lsl (i mod 8)) land 0xff))
    in
    let complete_left =
      ref (Array.fold_left (fun acc o -> if o.respond = max_int then acc else acc + 1) 0 ops)
    in
    let failed : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
    let buf = Buffer.create 64 in
    let memo_key store =
      Buffer.clear buf;
      Buffer.add_bytes buf linearized;
      Imap.iter
        (fun k v ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (string_of_int k);
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int v))
        store;
      Buffer.contents buf
    in
    (* The value a candidate op would need the store to take, or [None]
       if it cannot be linearized at [store] (a read of the wrong value). *)
    let step store (o : sop) =
      if not o.read then Some (Imap.add o.skey o.value store)
      else
        match Imap.find_opt o.skey store with
        | Some v -> if v = o.value then Some store else None
        | None ->
            if free_init then Some (Imap.add o.skey o.value store)
            else if o.value = 0 then Some store
            else None
    in
    let rec take i store' =
      let o = ops.(i) in
      mark i;
      if o.respond <> max_int then decr complete_left;
      if o.read then decr (Hashtbl.find reads_left (o.skey, o.value));
      if go store' then true
      else begin
        unmark i;
        if o.respond <> max_int then incr complete_left;
        if o.read then incr (Hashtbl.find reads_left (o.skey, o.value));
        false
      end
    and go store =
      !complete_left = 0
      || begin
           let key = memo_key store in
           if Hashtbl.mem failed key then false
           else begin
             incr states;
             let min_resp = ref max_int in
             for i = 0 to n - 1 do
               if (not (marked i)) && ops.(i).respond < !min_resp then min_resp := ops.(i).respond
             done;
             (* A candidate read of a key whose current value is {e known}
                and matching can be linearized greedily: no remaining op
                precedes it in real time, so any linearization of the rest
                admits moving the read to the front — if the search fails
                with it first, it fails outright, and no other branch need
                be tried.  (A read that {e pins} an unknown initial value
                is a real choice and still branches below.) *)
             let greedy = ref (-1) in
             let i = ref 0 in
             while !greedy < 0 && !i < n do
               let o = ops.(!i) in
               if
                 (not (marked !i))
                 && o.invoke <= !min_resp
                 && o.read
                 && (match Imap.find_opt o.skey store with
                    | Some v -> v = o.value
                    | None -> (not free_init) && o.value = 0)
               then greedy := !i;
               incr i
             done;
             let ok =
               if !greedy >= 0 then take !greedy store
               else begin
                 (* Identical candidate incomplete writes are interchangeable;
                    trying one per (key, value) signature covers them all. *)
                 let tried = Hashtbl.create 8 in
                 let tried_unread = ref false in
                 let ok = ref false in
                 let r = ref 0 in
                 while (not !ok) && !r < n do
                   let i = order.(!r) in
                   let o = ops.(i) in
                   if (not (marked i)) && o.invoke <= !min_resp then begin
                     let o_unread = unread o in
                     let skip =
                       (o.respond = max_int && Hashtbl.mem tried (o.skey, o.value))
                       || (o_unread && !tried_unread)
                     in
                     if not skip then begin
                       if o.respond = max_int then Hashtbl.add tried (o.skey, o.value) ();
                       if o_unread then tried_unread := true;
                       match step store o with
                       | None -> ()
                       | Some store' -> if take i store' then ok := true
                     end
                   end;
                   incr r
                 done;
                 !ok
               end
             in
             if not ok then Hashtbl.add failed key ();
             ok
           end
         end
    in
    go Imap.empty
  end

(* Shrink a failing op set to a small window.  Truncating at time [t]
   keeps ops invoked by [t] and makes later responses incomplete (reads
   drop, writes stay linearizable-anywhere); an op invoked after [t]
   cannot rescue a contradiction among ops responded by [t] — it cannot
   linearize before anything that already responded — so truncation
   failure is monotone in [t] and the first failing response time is the
   window's end.  From the truncated set, discarding ops that responded
   before [s] with the initial value left free only removes constraints,
   so suffix failure is monotone (downward) in [s]: the largest still-
   failing [s] is the window's start. *)
let minimize ~states (ops : sop array) =
  let finite_resps =
    Array.to_list ops
    |> List.filter_map (fun o -> if o.respond = max_int then None else Some o.respond)
    |> List.sort_uniq compare |> Array.of_list
  in
  let truncate t =
    Array.to_list ops
    |> List.filter_map (fun o ->
           if o.invoke > t then None
           else if o.respond <= t then Some o
           else if o.read then None
           else Some { o with respond = max_int })
    |> Array.of_list
  in
  let fails_at t = not (search ~free_init:false ~states (truncate t)) in
  (* First failing response-time index; the full set fails, so one exists
     (the last index at the latest). *)
  let m = Array.length finite_resps in
  let lo = ref 0 and hi = ref (m - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fails_at finite_resps.(mid) then hi := mid else lo := mid + 1
  done;
  let window_end = if m = 0 then 0 else finite_resps.(!lo) in
  let base = truncate window_end in
  let suffix s = Array.of_list (List.filter (fun o -> o.respond >= s) (Array.to_list base)) in
  let fails_from s = not (search ~free_init:true ~states (suffix s)) in
  let base_resps =
    Array.to_list base
    |> List.filter_map (fun o -> if o.respond = max_int then None else Some o.respond)
    |> List.sort_uniq compare |> Array.of_list
  in
  let mb = Array.length base_resps in
  let window_start, window_ops =
    if mb = 0 || not (fails_from base_resps.(0)) then
      (* Even the whole truncated set needs the zero initial value to be
         contradictory: the window is anchored at time zero. *)
      (0, base)
    else begin
      let lo = ref 0 and hi = ref (mb - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if fails_from base_resps.(mid) then lo := mid else hi := mid - 1
      done;
      (base_resps.(!lo), suffix base_resps.(!lo))
    end
  in
  let events = History.sort (Array.to_list window_ops |> List.map (fun o -> o.ev)) in
  { key = None; window_start; window_end; events }

let empty_stats = { ops = 0; keys = 0; states = 0 }

let check_history ?(mode = `Per_key) (events : History.t) : outcome =
  match flatten events with
  | Error reason -> { ok = false; reason = Some ("malformed history: " ^ reason); witness = None; stats = empty_stats }
  | Ok sops ->
      let states = ref 0 in
      let by_key =
        List.fold_left
          (fun acc o ->
            Imap.update o.skey (fun l -> Some (o :: Option.value ~default:[] l)) acc)
          Imap.empty sops
      in
      let stats () =
        { ops = List.length events; keys = Imap.cardinal by_key; states = !states }
      in
      let groups =
        match mode with
        | `Per_key -> Imap.bindings by_key |> List.map (fun (k, l) -> (Some k, List.rev l))
        | `Monolithic -> [ (None, sops) ]
      in
      let debug = Sys.getenv_opt "TWOSTEP_LIN_DEBUG" <> None in
      let failure =
        List.find_map
          (fun (key, group) ->
            let arr = Array.of_list group in
            let before = !states in
            let ok = search ~free_init:false ~states arr in
            if debug && !states - before > 1000 then
              Printf.eprintf "[lin] key %s: %d ops, %d states\n%!"
                (match key with Some k -> string_of_int k | None -> "-")
                (Array.length arr) (!states - before);
            if ok then None else Some { (minimize ~states arr) with key })
          groups
      in
      match failure with
      | None -> { ok = true; reason = None; witness = None; stats = stats () }
      | Some w ->
          let reason =
            Format.asprintf "%s: no valid linearization of %d ops in window [%d, %d]"
              (match w.key with Some k -> Printf.sprintf "key %d" k | None -> "history")
              (List.length w.events) w.window_start w.window_end
          in
          { ok = false; reason = Some reason; witness = Some w; stats = stats () }
