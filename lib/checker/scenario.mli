(** Generic scenario runner: execute any {!Proto.Protocol.t} under a network
    model and summarise the run monomorphically, so property checkers do not
    depend on protocol-specific state or message types. *)

type net =
  | Sync of [ `Arrival | `Random | `Favor of Dsim.Pid.t ]
      (** E-faulty synchronous rounds (Definition 2) with an intra-round
          delivery-order policy. *)
  | Partial of { gst : Dsim.Time.t; max_pre_gst : int }
      (** Partial synchrony: chaotic (but bounded) before [gst], within Δ
          after. *)
  | Uniform of { min_delay : int; max_delay : int }
  | Wan of { latency : src:Dsim.Pid.t -> dst:Dsim.Pid.t -> int; jitter : int }

type outcome = {
  decisions : (Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list;  (** chronological *)
  proposals : (Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list;
  crashes : (Dsim.Time.t * Dsim.Pid.t) list;
  n : int;
  horizon : Dsim.Time.t;  (** time when the run stopped *)
  messages : int;  (** total messages sent *)
  dropped : int;  (** messages lost by fault injection *)
  duplicated : int;  (** messages duplicated by fault injection *)
  latencies : (Dsim.Pid.t * int) list;
      (** per-pid first-proposal-to-first-decision gap in ticks (divide by
          Δ for message delays); pids that never decided are absent *)
  engine_result : Dsim.Engine.run_result;
}

val run :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  net:net ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  ?seed:int ->
  ?disable_timers:bool ->
  ?faults:Dsim.Network.Fault.plan ->
  ?metrics:Stdext.Metrics.t ->
  ?final_fingerprint:bool * (int64 -> unit) ->
  until:Dsim.Time.t ->
  unit ->
  outcome
(** Run one complete scenario. [disable_timers] yields the pure
    message-driven behaviour used by the two-step existence checks.
    [faults] (default {!Dsim.Network.Fault.none}) injects drops,
    duplications and mid-broadcast crashes on top of [net]'s timing; the
    fault trace is a pure function of [seed]. [metrics] (default disabled)
    is handed to the engine, which mirrors its probe into the [engine.*]
    registry names. [final_fingerprint], when given as
    [(symmetry, k)], calls [k] with the {!Dsim.Engine.fingerprint} of the
    terminal engine state (pid-canonicalised when [symmetry]) — a cheap
    way for sweep drivers to count distinct end states across seeds; it is
    silently skipped for automatons without a [state_fingerprint] hook. *)

val decided_value : outcome -> Dsim.Pid.t -> (Dsim.Time.t * Proto.Value.t) option
(** First decision of a process, if any. *)

val decided_by : outcome -> deadline:Dsim.Time.t -> Dsim.Pid.t list
(** Processes that decided at or before [deadline]. *)

val all_proposals_at_zero : n:int -> Proto.Value.t list -> (Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list
(** Task-style initial configuration: process [i] proposes the [i]-th value
    at time 0. The list must have length [n]. *)

val crash_at_start : Dsim.Pid.t list -> (Dsim.Time.t * Dsim.Pid.t) list
(** E-faulty crashes "at the beginning of the first round". *)
