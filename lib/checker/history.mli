(** Client-observed operation histories over the replicated KV object.

    A history is what the workload layer saw from the outside: for every
    client operation, what was asked ([Read] or [Write v] on a key), when
    it was invoked, and — if a response arrived before the run's horizon —
    when it responded and what value came back.  Operations still
    outstanding at the end of a run are recorded as {e incomplete}
    ([respond = None]); dropping them would silently erase exactly the
    in-flight ops whose effects may or may not have taken place, which the
    linearizability checker must reason about explicitly.

    Histories serialize two ways through one table schema
    (see {!to_table}): a streaming JSONL text form and the {!Stdext.Rle}
    run-length binary form, so size comparisons between the two are
    honest — same rows, same columns, different encodings. *)

type kind = Read | Write of int

type event = {
  client : int;
  key : int;
  kind : kind;
  invoke : Dsim.Time.t;
  respond : Dsim.Time.t option;  (** [None] = still outstanding at horizon *)
  ret : int option;  (** response value; [None] iff incomplete *)
}

type t = event list

val pp_event : Format.formatter -> event -> unit

val complete : event -> bool

val sort : t -> t
(** Stable sort by invoke time (then respond time) — the canonical order
    for serialization and display. *)

val schema : string list
(** Column names of the table form:
    [client; key; op; value; invoke; respond; ret] where [op] is 0 for a
    write and 1 for a read, [value] is the written value (0 for reads),
    and [respond]/[ret] use [-1] for incomplete operations. *)

val to_table : t -> Stdext.Rle.table
(** Rows in {!sort} order. *)

val of_table : Stdext.Rle.table -> (t, string) result
(** Inverse of {!to_table}; [Error] on a wrong schema or out-of-range
    cells (negative times, [-1] mismatches between respond and ret). *)

val to_file : string -> t -> unit
(** Run-length binary ({!Stdext.Rle.to_file} of {!to_table}). *)

val of_file : string -> (t, string) result

val to_jsonl : out_channel -> t -> unit
(** One JSON object per row of {!to_table}, one row per line. *)

val to_chrome : Format.formatter -> t -> unit
(** Chrome [trace_event] timeline of the history: one thread per client,
    one complete slice per operation spanning [invoke, respond] (in-flight
    ops extend to the history's last instant).  Loadable in Perfetto /
    [about://tracing] — the way to eyeball a linearizability witness
    window: overlapping slices on different client tracks are exactly the
    concurrency the checker reasoned about. *)

val of_jsonl : in_channel -> (t, string) result
