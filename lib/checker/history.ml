module Rle = Stdext.Rle

type kind = Read | Write of int

type event = {
  client : int;
  key : int;
  kind : kind;
  invoke : Dsim.Time.t;
  respond : Dsim.Time.t option;
  ret : int option;
}

type t = event list

let pp_event fmt e =
  let pp_kind fmt = function
    | Read -> Format.pp_print_string fmt "get"
    | Write v -> Format.fprintf fmt "put %d" v
  in
  match (e.respond, e.ret) with
  | Some r, Some v ->
      Format.fprintf fmt "c%d k%d %a [%d, %d] -> %d" e.client e.key pp_kind e.kind
        e.invoke r v
  | _ -> Format.fprintf fmt "c%d k%d %a [%d, ?] incomplete" e.client e.key pp_kind e.kind e.invoke

let complete e = e.respond <> None

let sort events =
  List.stable_sort
    (fun a b ->
      match compare a.invoke b.invoke with 0 -> compare a.respond b.respond | c -> c)
    events

let schema = [ "client"; "key"; "op"; "value"; "invoke"; "respond"; "ret" ]

let to_table events =
  let events = Array.of_list (sort events) in
  let col f = Array.map f events in
  let opt f = function Some v -> f v | None -> -1 in
  {
    Rle.schema;
    columns =
      [
        col (fun e -> e.client);
        col (fun e -> e.key);
        col (fun e -> match e.kind with Write _ -> 0 | Read -> 1);
        col (fun e -> match e.kind with Write v -> v | Read -> 0);
        col (fun e -> e.invoke);
        col (fun e -> opt Fun.id e.respond);
        col (fun e -> opt Fun.id e.ret);
      ];
  }

let of_table (table : Rle.table) =
  if table.Rle.schema <> schema then
    Error
      (Printf.sprintf "History.of_table: schema mismatch (got %s)"
         (String.concat "," table.Rle.schema))
  else
    match table.Rle.columns with
    | [ clients; keys; ops; values; invokes; responds; rets ] -> begin
        let n = Array.length clients in
        let exception Bad of string in
        try
          let events = ref [] in
          for i = n - 1 downto 0 do
            let cell name col =
              let v = col.(i) in
              if v < -1 then raise (Bad (Printf.sprintf "row %d: negative %s" i name));
              v
            in
            let kind =
              match ops.(i) with
              | 0 -> Write (cell "value" values)
              | 1 -> Read
              | k -> raise (Bad (Printf.sprintf "row %d: unknown op kind %d" i k))
            in
            let invoke = cell "invoke" invokes in
            if invoke < 0 then raise (Bad (Printf.sprintf "row %d: negative invoke" i));
            let respond, ret =
              match (cell "respond" responds, cell "ret" rets) with
              | -1, -1 -> (None, None)
              | -1, _ | _, -1 ->
                  raise (Bad (Printf.sprintf "row %d: respond/ret incompleteness disagree" i))
              | r, v ->
                  if r < invoke then
                    raise (Bad (Printf.sprintf "row %d: respond before invoke" i));
                  (Some r, Some v)
            in
            events :=
              { client = cell "client" clients; key = cell "key" keys; kind; invoke; respond; ret }
              :: !events
          done;
          Ok !events
        with Bad msg -> Error ("History.of_table: " ^ msg)
      end
    | _ -> Error "History.of_table: wrong column count"

let to_file path events = Rle.to_file path (to_table events)

let of_file path = Result.bind (Rle.of_file path) of_table

let to_chrome fmt events =
  let events = Array.of_list (sort events) in
  let horizon =
    Array.fold_left
      (fun acc e -> max acc (match e.respond with Some r -> r | None -> e.invoke))
      0 events
  in
  let store = Stdext.Span.create ~capacity:(max 1 (Array.length events)) () in
  Array.iter
    (fun e ->
      let finish = match e.respond with Some r -> r | None -> horizon in
      let op = match e.kind with Write _ -> 0 | Read -> 1 in
      let value = match e.kind with Write v -> v | Read -> 0 in
      ignore
        (Stdext.Span.add store ~parent:(-1) ~kind:op ~track:e.client ~start:e.invoke
           ~finish ~a:e.key ~b:value))
    events;
  (* Span ids are dense in append order, so id [i] is [events.(i)]. *)
  let name _store id =
    let e = events.(id) in
    let base =
      match e.kind with
      | Write v -> Printf.sprintf "put k%d=%d" e.key v
      | Read -> Printf.sprintf "get k%d" e.key
    in
    match (e.respond, e.ret) with
    | Some _, Some v -> Printf.sprintf "%s -> %d" base v
    | _ -> base ^ " (in flight)"
  in
  Stdext.Span.to_chrome ~process_name:"history" ~name
    ~track_name:(Printf.sprintf "client %d")
    fmt store

let to_jsonl oc events =
  Rle.iter_jsonl (to_table events) (fun line ->
      output_string oc line;
      output_char oc '\n')

let of_jsonl ic =
  let lines () =
    match In_channel.input_line ic with Some l -> Some (l, ()) | None -> None
  in
  Result.bind (Rle.of_jsonl_lines (Seq.unfold lines ())) of_table
