type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable st : 'a state;
}

(* Pending jobs form a LIFO stack: the most recently submitted job runs
   first. Recursive fan-out (tasks submitting subtree tasks) then unfolds
   depth-first — a domain keeps descending into the subtree it just split,
   and the stack bottom holds the biggest, oldest subtrees for other
   domains to pick up. This is the scheduling order a work-stealing deque
   gives the owning worker, with the single shared stack standing in for
   per-worker deques (task granularity in this repository is coarse enough
   that the one mutex is not contended). *)
type t = {
  m : Mutex.t;
  work_available : Condition.t;
  mutable jobs : (unit -> unit) list;
  mutable njobs : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  (* Telemetry: jobs completed per worker domain, plus jobs executed by
     non-worker callers through [try_run_one] ("stolen" — in inline mode,
     submitted jobs also run in the caller and count here). Written by the
     executing domain only (atomically), read by {!stats} at any time. *)
  tasks_run : int Atomic.t array;
  stolen : int Atomic.t;
}

let size t = List.length t.workers

(* Jobs never raise: submit wraps the task so that any exception is stored
   in the promise instead of killing the worker. *)
let rec worker_loop t index =
  Mutex.lock t.m;
  let rec next () =
    match t.jobs with
    | job :: rest ->
        t.jobs <- rest;
        t.njobs <- t.njobs - 1;
        Some job
    | [] ->
        if t.closed then None
        else begin
          Condition.wait t.work_available t.m;
          next ()
        end
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some job ->
      Mutex.unlock t.m;
      job ();
      Atomic.incr t.tasks_run.(index);
      worker_loop t index

let create ~domains =
  let t =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      jobs = [];
      njobs = 0;
      closed = false;
      workers = [];
      tasks_run = Array.init (max domains 0) (fun _ -> Atomic.make 0);
      stolen = Atomic.make 0;
    }
  in
  if domains > 1 then
    t.workers <- List.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let stats t =
  ( Array.map Atomic.get (Array.sub t.tasks_run 0 (List.length t.workers)),
    Atomic.get t.stolen )

let fulfill promise st =
  Mutex.lock promise.pm;
  promise.st <- st;
  Condition.broadcast promise.pc;
  Mutex.unlock promise.pm

let submit t f =
  let promise = { pm = Mutex.create (); pc = Condition.create (); st = Pending } in
  let job () =
    match f () with
    | v -> fulfill promise (Done v)
    | exception e -> fulfill promise (Failed (e, Printexc.get_raw_backtrace ()))
  in
  if t.workers = [] then begin
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    job ();
    Atomic.incr t.stolen
  end
  else begin
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    t.jobs <- job :: t.jobs;
    t.njobs <- t.njobs + 1;
    Condition.signal t.work_available;
    Mutex.unlock t.m
  end;
  promise

let queued t =
  Mutex.lock t.m;
  let n = t.njobs in
  Mutex.unlock t.m;
  n

let try_run_one t =
  Mutex.lock t.m;
  let job =
    match t.jobs with
    | [] -> None
    | job :: rest ->
        t.jobs <- rest;
        t.njobs <- t.njobs - 1;
        Some job
  in
  Mutex.unlock t.m;
  match job with
  | None -> false
  | Some job ->
      job ();
      Atomic.incr t.stolen;
      true

let await promise =
  Mutex.lock promise.pm;
  let rec wait () =
    match promise.st with
    | Pending ->
        Condition.wait promise.pc promise.pm;
        wait ()
    | st -> st
  in
  let st = wait () in
  Mutex.unlock promise.pm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await_helping t promise =
  let rec loop () =
    Mutex.lock promise.pm;
    let st = promise.st in
    Mutex.unlock promise.pm;
    match st with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
        if try_run_one t then loop ()
        else begin
          (* Nothing stealable right now: park on the promise. Re-check the
             state under the lock so a fulfil between the peek above and
             this wait cannot be missed. *)
          Mutex.lock promise.pm;
          (match promise.st with
          | Pending -> Condition.wait promise.pc promise.pm
          | _ -> ());
          Mutex.unlock promise.pm;
          loop ()
        end
  in
  loop ()

let map_list t f xs =
  let promises = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await promises

let shutdown t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let run ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
