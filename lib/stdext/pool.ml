type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable st : 'a state;
}

type t = {
  m : Mutex.t;
  work_available : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let size t = List.length t.workers

(* Jobs never raise: submit wraps the task so that any exception is stored
   in the promise instead of killing the worker. *)
let rec worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
    else if t.closed then None
    else begin
      Condition.wait t.work_available t.m;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.m
  | Some job ->
      Mutex.unlock t.m;
      job ();
      worker_loop t

let create ~domains =
  let t =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if domains > 1 then
    t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let fulfill promise st =
  Mutex.lock promise.pm;
  promise.st <- st;
  Condition.broadcast promise.pc;
  Mutex.unlock promise.pm

let submit t f =
  let promise = { pm = Mutex.create (); pc = Condition.create (); st = Pending } in
  let job () =
    match f () with
    | v -> fulfill promise (Done v)
    | exception e -> fulfill promise (Failed (e, Printexc.get_raw_backtrace ()))
  in
  if t.workers = [] then begin
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    job ()
  end
  else begin
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push job t.jobs;
    Condition.signal t.work_available;
    Mutex.unlock t.m
  end;
  promise

let await promise =
  Mutex.lock promise.pm;
  let rec wait () =
    match promise.st with
    | Pending ->
        Condition.wait promise.pc promise.pm;
        wait ()
    | st -> st
  in
  let st = wait () in
  Mutex.unlock promise.pm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let map_list t f xs =
  let promises = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await promises

let shutdown t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let run ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
