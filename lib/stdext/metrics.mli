(** Domain-safe telemetry registry: named counters, high-water gauges and
    fixed-bucket histograms.

    The simulator's observability substrate. A registry hands out metric
    handles by name; handles are cheap to update from any domain
    concurrently — every metric is sharded into a small fixed number of
    atomic cells indexed by the calling domain, so parallel explorer
    domains never contend on one cache line — and the shards are merged
    only on the read side ({!snapshot}, {!dump_jsonl}, {!pp_table}).

    Merge semantics per kind:
    {ul
    {- counters sum their shards (monotonic totals);}
    {- gauges keep the {e maximum} value observed across all shards —
       high-water semantics, which is what every gauge in this repository
       records (queue depths, fan-out widths);}
    {- histograms sum per-bucket counts, plus an exact [sum]/[count] pair
       for mean computation.}}

    A registry created with [~enabled:false] (or the shared {!disabled}
    registry) hands out inert handles: every update is a single immediate
    branch on an immutable bool, no allocation, no atomics — the disabled
    path costs nothing measurable, which the bench suite's
    [metrics-overhead] rows verify. Handle lookup ({!counter} etc.) takes
    a lock and should be done once at set-up, not on hot paths. *)

type t

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [true]. *)

val disabled : t
(** A shared always-disabled registry: all updates are no-ops and
    {!snapshot} is empty. Useful as a default argument. *)

val is_enabled : t -> bool

type counter

type gauge

type histogram

val counter : t -> string -> counter
(** The counter registered under [name], created at 0 on first use.
    Raises [Invalid_argument] if [name] is registered with another kind. *)

val gauge : t -> string -> gauge

val histogram : t -> buckets:int array -> string -> histogram
(** [buckets] are strictly increasing inclusive upper bounds; one overflow
    bucket is appended implicitly. Re-registering an existing histogram
    with different bounds raises [Invalid_argument]. *)

val incr : counter -> unit

val add : counter -> int -> unit

val record_max : gauge -> int -> unit
(** Raise the gauge to [v] if [v] exceeds the current shard value. *)

val observe : histogram -> int -> unit
(** Add one observation: bumps the first bucket whose bound is [>= v] (or
    the overflow bucket) and accumulates [sum]/[count]. *)

(** {2 Reading} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { bounds : int array; counts : int array; sum : int; count : int }
      (** [counts] has [length bounds + 1] entries; the last is overflow. *)

val snapshot : t -> (string * value) list
(** All registered metrics with shards merged, sorted by name. A disabled
    registry always snapshots to []. *)

val find : t -> string -> value option

val get_counter : t -> string -> int
(** Merged value of a registered counter; 0 if absent. *)

val dump_jsonl : Format.formatter -> t -> unit
(** One JSON object per line, sorted by name — the stable metrics schema:
    {v
    {"metric": NAME, "type": "counter", "value": N}
    {"metric": NAME, "type": "gauge", "value": N}
    {"metric": NAME, "type": "histogram", "le": [B1,...], "counts": [C1,...,Cover], "sum": N, "count": N}
    v}
    [le] holds the inclusive bucket upper bounds; [counts] has one extra
    trailing overflow entry, and its entries sum to [count]. Validated in
    CI by the [jsonl_check] tool. *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable name/value table of {!snapshot}. *)
