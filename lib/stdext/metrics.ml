(* Each metric is a row of [nshards] atomic cells; a writer picks the cell
   indexed by its domain id, so concurrent domains (the explorer runs a
   handful) almost always hit distinct cells and the update is one
   uncontended fetch-and-add. Reads fold over the row. The shard count is a
   power of two so the index is a mask, and larger than the pool sizes in
   use; collisions only cost contention, never correctness. *)

let nshards = 16

let shard_index () = (Domain.self () :> int) land (nshards - 1)

type kind = Kcounter | Kgauge | Khistogram

type metric = {
  kind : kind;
  cells : int Atomic.t array;  (* counters/gauges: nshards; histograms: nshards * row *)
  bounds : int array;  (* empty unless histogram *)
}

type t = {
  reg_enabled : bool;
  lock : Mutex.t;
  mutable by_name : (string * metric) list;
}

(* Handles resolve the registry lookup once; [enabled] is the only field
   hot paths touch when telemetry is off. *)
type counter = { c_enabled : bool; c_cells : int Atomic.t array }

type gauge = { g_enabled : bool; g_cells : int Atomic.t array }

type histogram = {
  h_enabled : bool;
  h_bounds : int array;
  h_table : int array;
      (* direct value -> bucket-index map for values in [0, max bound];
         empty when the bounds don't admit a small dense table *)
  h_cells : int Atomic.t array;  (* nshards rows of (#bounds + 3): buckets, overflow, sum, count *)
  h_row : int;
}

let create ?(enabled = true) () =
  { reg_enabled = enabled; lock = Mutex.create (); by_name = [] }

let disabled = create ~enabled:false ()

let is_enabled t = t.reg_enabled

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khistogram -> "histogram"

let register t name kind ~bounds ~cells_per_shard =
  Mutex.lock t.lock;
  let m =
    match List.assoc_opt name t.by_name with
    | Some m ->
        if m.kind <> kind then begin
          Mutex.unlock t.lock;
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name m.kind)
               (kind_name kind))
        end;
        if m.bounds <> bounds then begin
          Mutex.unlock t.lock;
          invalid_arg (Printf.sprintf "Metrics: %S re-registered with different buckets" name)
        end;
        m
    | None ->
        let m =
          {
            kind;
            cells = Array.init (nshards * cells_per_shard) (fun _ -> Atomic.make 0);
            bounds;
          }
        in
        t.by_name <- (name, m) :: t.by_name;
        m
  in
  Mutex.unlock t.lock;
  m

let counter t name =
  if not t.reg_enabled then { c_enabled = false; c_cells = [||] }
  else
    let m = register t name Kcounter ~bounds:[||] ~cells_per_shard:1 in
    { c_enabled = true; c_cells = m.cells }

let gauge t name =
  if not t.reg_enabled then { g_enabled = false; g_cells = [||] }
  else
    let m = register t name Kgauge ~bounds:[||] ~cells_per_shard:1 in
    { g_enabled = true; g_cells = m.cells }

let scan_bucket bounds v =
  let nb = Array.length bounds in
  let rec bucket i = if i >= nb || v <= bounds.(i) then i else bucket (i + 1) in
  bucket 0

(* Largest top bound for which [observe] precomputes a direct
   value -> bucket table. Every histogram in this repository (depth and
   latency buckets) is far below it; histograms with huge bounds fall
   back to the linear scan. *)
let max_bucket_table = 4096

let bucket_table bounds =
  let nb = Array.length bounds in
  if nb = 0 then [||]
  else begin
    let maxb = bounds.(nb - 1) in
    if maxb < 0 || maxb > max_bucket_table then [||]
    else Array.init (maxb + 1) (fun v -> scan_bucket bounds v)
  end

let histogram t ~buckets name =
  if not t.reg_enabled then
    { h_enabled = false; h_bounds = [||]; h_table = [||]; h_cells = [||]; h_row = 0 }
  else begin
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: buckets must be strictly increasing")
      buckets;
    let bounds = Array.copy buckets in
    (* Row layout per shard: one cell per bound, overflow, sum, count. *)
    let row = Array.length bounds + 3 in
    let m = register t name Khistogram ~bounds ~cells_per_shard:row in
    {
      h_enabled = true;
      h_bounds = bounds;
      h_table = bucket_table bounds;
      h_cells = m.cells;
      h_row = row;
    }
  end

let add c n =
  if c.c_enabled then ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) n)

let incr c = add c 1

let record_max g v =
  if g.g_enabled then begin
    let cell = g.g_cells.(shard_index ()) in
    let rec loop () =
      let cur = Atomic.get cell in
      if v > cur && not (Atomic.compare_and_set cell cur v) then loop ()
    in
    loop ()
  end

let observe h v =
  if h.h_enabled then begin
    let nb = Array.length h.h_bounds in
    (* In-range observations resolve in one branchless array load; only
       negative values or bounds too large for the table pay the scan. *)
    let bucket =
      if v >= 0 && v < Array.length h.h_table then Array.unsafe_get h.h_table v
      else if nb > 0 && Array.length h.h_table > 0 && v > h.h_bounds.(nb - 1) then nb
      else scan_bucket h.h_bounds v
    in
    let base = shard_index () * h.h_row in
    ignore (Atomic.fetch_and_add h.h_cells.(base + bucket) 1);
    ignore (Atomic.fetch_and_add h.h_cells.(base + nb + 1) v);
    ignore (Atomic.fetch_and_add h.h_cells.(base + nb + 2) 1)
  end

(* -- read side ---------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { bounds : int array; counts : int array; sum : int; count : int }

let merge (m : metric) =
  match m.kind with
  | Kcounter -> Counter (Array.fold_left (fun acc c -> acc + Atomic.get c) 0 m.cells)
  | Kgauge -> Gauge (Array.fold_left (fun acc c -> max acc (Atomic.get c)) 0 m.cells)
  | Khistogram ->
      let nb = Array.length m.bounds in
      let row = nb + 3 in
      let counts = Array.make (nb + 1) 0 in
      let sum = ref 0 in
      let count = ref 0 in
      for s = 0 to nshards - 1 do
        let base = s * row in
        for b = 0 to nb do
          counts.(b) <- counts.(b) + Atomic.get m.cells.(base + b)
        done;
        sum := !sum + Atomic.get m.cells.(base + nb + 1);
        count := !count + Atomic.get m.cells.(base + nb + 2)
      done;
      Histogram { bounds = Array.copy m.bounds; counts; sum = !sum; count = !count }

let snapshot t =
  Mutex.lock t.lock;
  let metrics = t.by_name in
  Mutex.unlock t.lock;
  List.map (fun (name, m) -> (name, merge m)) metrics
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  Mutex.lock t.lock;
  let m = List.assoc_opt name t.by_name in
  Mutex.unlock t.lock;
  Option.map merge m

let get_counter t name = match find t name with Some (Counter n) -> n | _ -> 0

let value_to_json name = function
  | Counter n ->
      Json.Obj [ ("metric", Json.String name); ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge n ->
      Json.Obj [ ("metric", Json.String name); ("type", Json.String "gauge"); ("value", Json.Int n) ]
  | Histogram { bounds; counts; sum; count } ->
      Json.Obj
        [
          ("metric", Json.String name);
          ("type", Json.String "histogram");
          ("le", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) bounds)));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
          ("sum", Json.Int sum);
          ("count", Json.Int count);
        ]

let dump_jsonl fmt t =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%s@." (Json.to_string (value_to_json name v)))
    (snapshot t)

let pp_table fmt t =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf fmt "%-40s %12d@." name n
      | Gauge n -> Format.fprintf fmt "%-40s %12d (max)@." name n
      | Histogram { bounds; counts; sum; count } ->
          let mean = if count = 0 then 0.0 else float_of_int sum /. float_of_int count in
          Format.fprintf fmt "%-40s %12d obs, mean %.2f@." name count mean;
          Array.iteri
            (fun i c ->
              if c > 0 then
                if i < Array.length bounds then
                  Format.fprintf fmt "%-40s   <= %-8d %8d@." "" bounds.(i) c
                else
                  let last =
                    if Array.length bounds = 0 then "0"
                    else string_of_int bounds.(Array.length bounds - 1)
                  in
                  Format.fprintf fmt "%-40s    > %-8s %8d@." "" last c)
            counts)
    (snapshot t)
