type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: add the golden gamma and scramble with two
   xor-shift-multiply rounds (Steele, Lea, Flood 2014). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

(* O(1) derivation of the [i]th member of a family of generators sharing
   one master seed: perturb the seed by an odd multiplier of the stream
   index, then run one scramble so that adjacent (seed, i) pairs land on
   decorrelated states. Unlike [split], this neither mutates nor needs a
   parent generator, so concurrent workers can each build their own
   stream from the pair (seed, index) alone. *)
let stream ~seed i =
  let g =
    { state = Int64.logxor (Int64.of_int seed) (Int64.mul (Int64.of_int i) 0xD1342543DE82EF95L) }
  in
  { state = bits64 g }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

(* Always consumes exactly one draw, also for the degenerate rates: callers
   (the fault-injection layer) rely on a fixed number of draws per decision
   so that changing a rate never desynchronises the rest of the stream. *)
let chance t p =
  let u = float t 1.0 in
  if p <= 0.0 then false else if p >= 1.0 then true else u < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle_array_in_place t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_array_in_place t a;
  Array.to_list a
