type t = {
  mutable parent : int array;
  mutable kind : int array;
  mutable track : int array;
  mutable start : int array;
  mutable finish : int array;
  mutable a : int array;
  mutable b : int array;
  mutable len : int;
}

let create ?(capacity = 1024) () =
  let cap = max 1 capacity in
  {
    parent = Array.make cap 0;
    kind = Array.make cap 0;
    track = Array.make cap 0;
    start = Array.make cap 0;
    finish = Array.make cap 0;
    a = Array.make cap 0;
    b = Array.make cap 0;
    len = 0;
  }

let length t = t.len

let grow t =
  let cap = 2 * Array.length t.parent in
  let sub a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 t.len;
    b
  in
  t.parent <- sub t.parent;
  t.kind <- sub t.kind;
  t.track <- sub t.track;
  t.start <- sub t.start;
  t.finish <- sub t.finish;
  t.a <- sub t.a;
  t.b <- sub t.b

let add t ~parent ~kind ~track ~start ~finish ~a ~b =
  let id = t.len in
  if parent < -1 || parent >= id then
    invalid_arg "Span.add: parent must be -1 or an existing span id";
  if start > finish then invalid_arg "Span.add: start > finish";
  if id = Array.length t.parent then grow t;
  t.parent.(id) <- parent;
  t.kind.(id) <- kind;
  t.track.(id) <- track;
  t.start.(id) <- start;
  t.finish.(id) <- finish;
  t.a.(id) <- a;
  t.b.(id) <- b;
  t.len <- id + 1;
  id

let check t id = if id < 0 || id >= t.len then invalid_arg "Span: span id out of range"

let parent t id = check t id; t.parent.(id)
let kind t id = check t id; t.kind.(id)
let track t id = check t id; t.track.(id)
let start t id = check t id; t.start.(id)
let finish t id = check t id; t.finish.(id)
let a t id = check t id; t.a.(id)
let b t id = check t id; t.b.(id)

let path t id =
  check t id;
  (* Parents strictly decrease ({!add}'s invariant), so this terminates. *)
  let rec up acc id = if id < 0 then acc else up (id :: acc) t.parent.(id) in
  up [] id

let table_schema = [ "parent"; "kind"; "track"; "start"; "finish"; "a"; "b" ]

let to_table t =
  let col a = Array.sub a 0 t.len in
  {
    Rle.schema = table_schema;
    columns =
      [ col t.parent; col t.kind; col t.track; col t.start; col t.finish; col t.a; col t.b ];
  }

(* -- Chrome trace_event export ------------------------------------------ *)

let default_name t id = Printf.sprintf "k%d" t.kind.(id)

let to_chrome ?(process_name = "twostep") ?name ?track_name fmt t =
  let name = match name with Some f -> f | None -> default_name in
  let track_name = match track_name with Some f -> f | None -> Printf.sprintf "track %d" in
  let ev fields = Json.to_string (Json.Obj fields) in
  Format.fprintf fmt "{\"traceEvents\":[@\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Format.fprintf fmt ",@\n";
    Format.pp_print_string fmt line
  in
  emit
    (ev
       [
         ("ph", Json.String "M");
         ("name", Json.String "process_name");
         ("pid", Json.Int 0);
         ("args", Json.Obj [ ("name", Json.String process_name) ]);
       ]);
  (* Thread-name metadata once per distinct track, in first-seen order. *)
  let seen = Hashtbl.create 16 in
  for id = 0 to t.len - 1 do
    let tr = t.track.(id) in
    if not (Hashtbl.mem seen tr) then begin
      Hashtbl.add seen tr ();
      emit
        (ev
           [
             ("ph", Json.String "M");
             ("name", Json.String "thread_name");
             ("pid", Json.Int 0);
             ("tid", Json.Int tr);
             ("args", Json.Obj [ ("name", Json.String (track_name tr)) ]);
           ])
    end
  done;
  for id = 0 to t.len - 1 do
    emit
      (ev
         [
           ("ph", Json.String "X");
           ("name", Json.String (name t id));
           ("pid", Json.Int 0);
           ("tid", Json.Int t.track.(id));
           ("ts", Json.Int t.start.(id));
           ("dur", Json.Int (t.finish.(id) - t.start.(id)));
           ( "args",
             Json.Obj
               [
                 ("span", Json.Int id);
                 ("parent", Json.Int t.parent.(id));
                 ("kind", Json.Int t.kind.(id));
                 ("a", Json.Int t.a.(id));
                 ("b", Json.Int t.b.(id));
               ] );
         ]);
    let p = t.parent.(id) in
    if p >= 0 then begin
      (* Flow arrow parent -> child; the id namespace is the child span id,
         unique per arrow. [bp:"e"] binds the finish to the enclosing slice. *)
      emit
        (ev
           [
             ("ph", Json.String "s");
             ("id", Json.Int id);
             ("name", Json.String "causal");
             ("cat", Json.String "causal");
             ("pid", Json.Int 0);
             ("tid", Json.Int t.track.(p));
             ("ts", Json.Int t.finish.(p));
           ]);
      emit
        (ev
           [
             ("ph", Json.String "f");
             ("bp", Json.String "e");
             ("id", Json.Int id);
             ("name", Json.String "causal");
             ("cat", Json.String "causal");
             ("pid", Json.Int 0);
             ("tid", Json.Int t.track.(id));
             ("ts", Json.Int t.start.(id));
           ])
    end
  done;
  Format.fprintf fmt "@\n]}@\n"
