type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ----------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* %.17g survives a parse round-trip; trim the common integral case. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | String s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* -- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.i))

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let advance c = c.i <- c.i + 1

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  if
    c.i + String.length word <= String.length c.s
    && String.sub c.s c.i (String.length word) = word
  then begin
    c.i <- c.i + String.length word;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* Encode one Unicode scalar value as UTF-8 (enough for \uXXXX escapes;
   surrogate pairs are combined by the caller). *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c "bad \\u escape"
  in
  if c.i + 4 > String.length c.s then fail c "truncated \\u escape";
  let v =
    (digit c.s.[c.i] lsl 12)
    lor (digit c.s.[c.i + 1] lsl 8)
    lor (digit c.s.[c.i + 2] lsl 4)
    lor digit c.s.[c.i + 3]
  in
  c.i <- c.i + 4;
  v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char b '"'; advance c
        | Some '\\' -> Buffer.add_char b '\\'; advance c
        | Some '/' -> Buffer.add_char b '/'; advance c
        | Some 'n' -> Buffer.add_char b '\n'; advance c
        | Some 'r' -> Buffer.add_char b '\r'; advance c
        | Some 't' -> Buffer.add_char b '\t'; advance c
        | Some 'b' -> Buffer.add_char b '\b'; advance c
        | Some 'f' -> Buffer.add_char b '\012'; advance c
        | Some 'u' ->
            advance c;
            let u = hex4 c in
            let u =
              if u >= 0xD800 && u <= 0xDBFF && c.i + 1 < String.length c.s
                 && c.s.[c.i] = '\\' && c.s.[c.i + 1] = 'u'
              then begin
                c.i <- c.i + 2;
                let lo = hex4 c in
                0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else u
            in
            add_utf8 b u
        | _ -> fail c "bad escape");
        loop ()
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let consume pred =
    while (match peek c with Some ch -> pred ch | None -> false) do
      advance c
    done
  in
  (match peek c with Some '-' -> advance c | _ -> ());
  consume (function '0' .. '9' -> true | _ -> false);
  let integral = ref true in
  (match peek c with
  | Some '.' ->
      integral := false;
      advance c;
      consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      integral := false;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.s start (c.i - start) in
  if !integral then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)  (* out of int range *)
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" c.i)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Json.parse: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_str = function String s -> Some s | _ -> None
