(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through an explicit
    [Rng.t] so that runs are replayable from a single integer seed. The
    generator is mutable but cheap to [split] and [copy], which lets
    independent components draw from independent streams derived from one
    master seed. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val stream : seed:int -> int -> t
(** [stream ~seed i] is the [i]th generator in a family of independent
    streams derived from one master [seed]: equal [(seed, i)] pairs give
    equal streams, distinct indices give decorrelated ones. O(1) and
    side-effect free (no parent generator to advance), so parallel
    workers — e.g. the explorer's swarm walkers — can each derive their
    own stream from their index without coordinating. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    [int t 1] is a valid degenerate draw: it always returns [0] and still
    consumes exactly one draw (the jitter-0 WAN model relies on callers
    being allowed to skip it, but calling it is well-defined). *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi].
    The one-element range [int_in t x x] is valid: it returns [x] and
    consumes exactly one draw, like every other range — so delay models
    with a pinned delay (e.g. [Uniform] with [min_delay = max_delay])
    keep the stream aligned with their randomized variants. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0, 1\]]).
    Exactly one draw is consumed regardless of [p] — including [p <= 0]
    and [p >= 1] — so a stream of [chance] decisions stays aligned when a
    rate changes. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)

val shuffle_array_in_place : t -> 'a array -> unit
