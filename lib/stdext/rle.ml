type table = { schema : string list; columns : int array list }

let rows t = match t.columns with [] -> 0 | c :: _ -> Array.length c

let magic = "RLT1"

(* 62-bit guard: zigzag shifts left by one, so the top two bits of the
   native 63-bit int must agree. *)
let fits_zigzag v = v >= -(1 lsl 61) && v < 1 lsl 61

let zigzag v = (v lsl 1) lxor (v asr 62)

let unzigzag u = (u lsr 1) lxor (-(u land 1))

let put_varint buf v =
  (* Unsigned LEB128 over the (nonnegative) zigzag image or a length. *)
  let v = ref v in
  while !v land lnot 0x7f <> 0 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

(* Reader state: a string and a mutable cursor; every failure is reported
   through [Error], never an exception. *)
exception Corrupt of string

let get_varint s pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= String.length s then raise (Corrupt "truncated varint");
    if !shift > 62 then raise (Corrupt "varint overflows 63 bits");
    let byte = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  !v

let encode_column buf col =
  let prev = ref 0 in
  let run_delta = ref 0 and run_len = ref 0 in
  let flush () =
    if !run_len > 0 then begin
      put_varint buf (zigzag !run_delta);
      put_varint buf !run_len
    end
  in
  Array.iter
    (fun v ->
      if not (fits_zigzag v) then invalid_arg "Rle.encode: value beyond 62 bits";
      let d = v - !prev in
      prev := v;
      if !run_len > 0 && d = !run_delta then incr run_len
      else begin
        flush ();
        run_delta := d;
        run_len := 1
      end)
    col;
  flush ()

let decode_column s pos n =
  let col = Array.make n 0 in
  let filled = ref 0 and prev = ref 0 in
  while !filled < n do
    let d = unzigzag (get_varint s pos) in
    let len = get_varint s pos in
    if len <= 0 || !filled + len > n then raise (Corrupt "run overshoots column");
    for _ = 1 to len do
      prev := !prev + d;
      col.(!filled) <- !prev;
      incr filled
    done
  done;
  col

let encode t =
  if List.length t.schema <> List.length t.columns then
    invalid_arg "Rle.encode: schema/column count mismatch";
  let n = rows t in
  List.iter
    (fun c -> if Array.length c <> n then invalid_arg "Rle.encode: ragged columns")
    t.columns;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  put_varint buf (List.length t.schema);
  List.iter
    (fun name ->
      put_varint buf (String.length name);
      Buffer.add_string buf name)
    t.schema;
  put_varint buf n;
  List.iter (encode_column buf) t.columns;
  Buffer.contents buf

let decode s =
  try
    if String.length s < 4 || String.sub s 0 4 <> magic then
      raise (Corrupt "bad magic (not an RLT1 table)");
    let pos = ref 4 in
    let ncols = get_varint s pos in
    let schema =
      List.init ncols (fun _ ->
          let len = get_varint s pos in
          if !pos + len > String.length s then raise (Corrupt "truncated column name");
          let name = String.sub s !pos len in
          pos := !pos + len;
          name)
    in
    let n = get_varint s pos in
    let columns = List.init ncols (fun _ -> decode_column s pos n) in
    if !pos <> String.length s then raise (Corrupt "trailing garbage after table");
    Ok { schema; columns }
  with Corrupt msg -> Error msg

let to_file path t = Out_channel.with_open_bin path (fun oc -> output_string oc (encode t))

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> decode contents
  | exception Sys_error e -> Error e

(* -- JSONL ---------------------------------------------------------------- *)

let iter_jsonl t sink =
  let cols = Array.of_list t.columns in
  let names = Array.of_list t.schema in
  let buf = Buffer.create 128 in
  for row = 0 to rows t - 1 do
    Buffer.clear buf;
    Buffer.add_char buf '{';
    Array.iteri
      (fun i name ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Json.to_string (Json.String name));
        Buffer.add_string buf ": ";
        Buffer.add_string buf (string_of_int cols.(i).(row)))
      names;
    Buffer.add_char buf '}';
    sink (Buffer.contents buf)
  done

let to_jsonl t =
  let buf = Buffer.create 4096 in
  iter_jsonl t (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_jsonl_lines lines =
  let schema = ref [] in
  let acc : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let nrows = ref 0 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  Seq.iter
    (fun line ->
      if !err = None && String.trim line <> "" then
        match Json.parse line with
        | Error e -> fail (Printf.sprintf "row %d: %s" !nrows e)
        | Ok (Json.Obj fields) -> begin
            let keys = List.map fst fields in
            if !nrows = 0 then begin
              schema := keys;
              List.iter (fun k -> Hashtbl.replace acc k (ref [])) keys
            end
            else if keys <> !schema then fail (Printf.sprintf "row %d: schema drift" !nrows);
            if !err = None then begin
              List.iter
                (fun (k, v) ->
                  match v with
                  | Json.Int n -> (
                      match Hashtbl.find_opt acc k with
                      | Some cell -> cell := n :: !cell
                      | None -> fail (Printf.sprintf "row %d: unknown column %S" !nrows k))
                  | _ -> fail (Printf.sprintf "row %d: column %S is not an integer" !nrows k))
                fields;
              incr nrows
            end
          end
        | Ok _ -> fail (Printf.sprintf "row %d: not a JSON object" !nrows))
    lines;
  match !err with
  | Some msg -> Error msg
  | None ->
      let columns =
        List.map
          (fun k ->
            match Hashtbl.find_opt acc k with
            | Some cell ->
                let a = Array.of_list !cell in
                (* accumulated newest-first *)
                let n = Array.length a in
                Array.init n (fun i -> a.(n - 1 - i))
            | None -> [||])
          !schema
      in
      Ok { schema = !schema; columns }

let of_jsonl s = of_jsonl_lines (String.split_on_char '\n' s |> List.to_seq)
