(* Structure-of-arrays binary min-heap with int-packed keys.

   Each entry's (priority, insertion sequence) pair is packed into one
   OCaml int — [key = (priority lsl seq_bits) lor seq] — so the heap order
   is a single monomorphic [<] on an unboxed int array, and a push
   allocates nothing beyond (amortised) array growth. The parallel [vals]
   array carries the payloads; there are no per-entry records to allocate
   or chase, which is what makes this the simulation engine's hot-path
   queue. Packing invariants (see the .mli): [seq_bits = 24] bits of
   sequence, priorities within +-2^38. The sequence counter is renumbered
   in place (pop order preserved) when it overflows, so FIFO-within-
   priority survives arbitrarily long runs. *)

let seq_bits = 24

let seq_limit = 1 lsl seq_bits

let prio_limit = 1 lsl 38

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; vals = [||]; size = 0; next_seq = 0 }

(* Only the live prefix is copied, so cloning a drained queue with a large
   retained capacity costs (almost) nothing. *)
let copy t =
  {
    keys = Array.sub t.keys 0 t.size;
    vals = Array.sub t.vals 0 t.size;
    size = t.size;
    next_seq = t.next_seq;
  }

let is_empty t = t.size = 0

let length t = t.size

let prio_of_key k = k asr seq_bits

(* Renumber sequence stamps 0..size-1 in pop order. A sorted key array is
   already a valid min-heap, so the rebuilt arrays need no sifting. Runs
   once every [seq_limit] pushes at worst. *)
let compact t =
  let n = t.size in
  if n = 0 then t.next_seq <- 0
  else begin
    let idx = Array.init n Fun.id in
    let keys = t.keys in
    Array.sort (fun a b -> Int.compare keys.(a) keys.(b)) idx;
    let new_keys = Array.make (Array.length t.keys) 0 in
    let new_vals = Array.make (Array.length t.vals) t.vals.(0) in
    for i = 0 to n - 1 do
      new_keys.(i) <- (prio_of_key keys.(idx.(i)) lsl seq_bits) lor i;
      new_vals.(i) <- t.vals.(idx.(i))
    done;
    t.keys <- new_keys;
    t.vals <- new_vals;
    t.next_seq <- n
  end

let grow t v =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let new_cap = max 16 (2 * cap) in
    let keys = Array.make new_cap 0 in
    let vals = Array.make new_cap v in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.vals <- vals
  end

let push t ~priority value =
  if priority < -prio_limit || priority >= prio_limit then
    invalid_arg "Pqueue.push: priority outside +-2^38 (packing invariant)";
  if t.next_seq >= seq_limit then compact t;
  grow t value;
  let key = (priority lsl seq_bits) lor t.next_seq in
  t.next_seq <- t.next_seq + 1;
  (* Hole-based sift-up: slide ancestors down, write once. *)
  let keys = t.keys and vals = t.vals in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key < keys.(parent) then begin
      keys.(!i) <- keys.(parent);
      vals.(!i) <- vals.(parent);
      i := parent
    end
    else continue := false
  done;
  keys.(!i) <- key;
  vals.(!i) <- value

(* Remove the root, re-seat the last entry with a hole-based sift-down. *)
let remove_min t =
  let size = t.size - 1 in
  t.size <- size;
  if size > 0 then begin
    let keys = t.keys and vals = t.vals in
    let key = keys.(size) and v = vals.(size) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= size then continue := false
      else begin
        let r = l + 1 in
        let c = if r < size && keys.(r) < keys.(l) then r else l in
        if keys.(c) < key then begin
          keys.(!i) <- keys.(c);
          vals.(!i) <- vals.(c);
          i := c
        end
        else continue := false
      end
    done;
    keys.(!i) <- key;
    vals.(!i) <- v
  end

let peek_prio t =
  if t.size = 0 then invalid_arg "Pqueue.peek_prio: empty queue";
  prio_of_key t.keys.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Pqueue.pop_exn: empty queue";
  let v = t.vals.(0) in
  remove_min t;
  v

let pop t =
  if t.size = 0 then None
  else begin
    let prio = prio_of_key t.keys.(0) in
    let v = t.vals.(0) in
    remove_min t;
    Some (prio, v)
  end

let peek t = if t.size = 0 then None else Some (prio_of_key t.keys.(0), t.vals.(0))

let iter_in_order t f =
  let c = copy t in
  while c.size > 0 do
    let prio = prio_of_key c.keys.(0) in
    let v = c.vals.(0) in
    remove_min c;
    f prio v
  done

let to_list t =
  let acc = ref [] in
  iter_in_order t (fun prio v -> acc := (prio, v) :: !acc);
  List.rev !acc
