type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

(* Entries are immutable records, so a shallow array copy suffices; only
   the live prefix is copied, so cloning a drained queue with a large
   retained capacity costs (almost) nothing. *)
let copy t = { data = Array.sub t.data 0 t.size; size = t.size; next_seq = t.next_seq }

let is_empty t = t.size = 0

let length t = t.size

let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let new_cap = max 16 (2 * cap) in
    let data = Array.make new_cap e in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority value =
  let e = { prio = priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let to_list t =
  let copy =
    {
      data = Array.sub t.data 0 t.size;
      size = t.size;
      next_seq = t.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
