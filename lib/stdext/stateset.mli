(** Domain-sharded, lock-free visited set over 64-bit state fingerprints.

    The explorer's duplicate-state filter: every domain inserts the
    fingerprint of each search-tree node it reaches, and a subtree is
    pruned when its root's fingerprint was already present. The structure
    is a fixed array of shards (selected by the fingerprint's high bits),
    each an open-addressing table of atomic native-int slots probed
    linearly; inserts are a single [compare_and_set] on the reserved empty
    slot, so concurrent domains never block each other on the fast path.
    Tables grow by doubling under a per-shard mutex: the resizer seals
    every empty slot (writers spin until the new table is published),
    copies the occupied slots — they are write-once, so no writer can be
    mutating them — and installs the new table with a single atomic store.

    {b Key encoding.} Slots store fingerprints as native ints with the
    sign bit forced on, reserving [0] (empty) and [1] (sealed). A stored
    key therefore retains 62 bits of the fingerprint: two states whose
    fingerprints agree on those bits are identified. This is the same
    deliberate trade as SPIN-style hash-compaction — a false "already
    visited" answer prunes a subtree that was actually new, with
    probability ~[states² / 2^63]; it can mask a violation but never
    fabricates one, and at the explorer's scale (≤ millions of states) the
    expected number of colliding pairs is far below one.

    {b Determinism.} For every distinct stored key, exactly one [add]
    across all domains returns [true], regardless of scheduling — the CAS
    winner — which is what makes the explorer's [distinct_states] total
    and its dedup decisions schedule-independent when the traversal is
    exhaustive. *)

type t

val create : ?shards:int -> ?capacity:int -> ?metrics:Metrics.t -> unit -> t
(** [shards] (default 16, rounded up to a power of two) is the number of
    independent tables; [capacity] (default 1024) the initial total slot
    count, split across shards. Both only affect performance. [metrics]
    (default {!Metrics.disabled}) receives the [stateset.hits],
    [stateset.misses], [stateset.collisions] and [stateset.resizes]
    counters. *)

val recommended_capacity : expected:int -> int
(** A [capacity] for {!create} that absorbs [expected] distinct keys
    without triggering a single resize (tables double at 3/4 load; the
    per-shard power-of-two rounding in [create] only rounds up). Use it to
    pre-size a visited set from a search budget instead of paying resize
    stalls mid-exploration. *)

val add : t -> int64 -> bool
(** Insert a fingerprint. [true] = newly added (this caller won the
    insertion race), [false] = already present. Lock-free except while the
    target shard is mid-resize. *)

val mem : t -> int64 -> bool
(** Membership without inserting. *)

val cardinal : t -> int
(** Number of distinct keys stored (exact; sums per-shard counts). *)
