(** Minimal JSON: a value type, a printer and a strict parser.

    Just enough machinery for the telemetry layer — {!Metrics.dump_jsonl}
    and {!Dsim.Trace.to_jsonl} emit one JSON object per line, the tests
    round-trip those lines back through {!parse}, and the [jsonl_check]
    tool validates artifact files in CI — without pulling a JSON library
    into the dependency set.

    Numbers are split into [Int] and [Float]: every quantity the telemetry
    layer records is integral (ticks, counts), and keeping them exact makes
    round-trip equality checks meaningful. [to_string] of a parsed value
    re-parses to an equal value for every value this library emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order is preserved *)

val to_string : t -> string
(** Compact (single-line) rendering; strings are escaped per RFC 8259. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}, onto a formatter. *)

val parse : string -> (t, string) result
(** Strict parse of one complete JSON value (surrounding whitespace
    allowed; trailing garbage is an error). Escape sequences are decoded;
    [\uXXXX] escapes outside the ASCII range are kept as UTF-8. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other values or missing keys. *)

val to_int : t -> int option
(** [Int n] gives [Some n]; everything else [None]. *)

val to_str : t -> string option
(** [String s] gives [Some s]; everything else [None]. *)
