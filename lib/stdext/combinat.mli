(** Small combinatorics helpers used by the exhaustive checkers. *)

val subsets_of_size : int -> 'a list -> 'a list list
(** [subsets_of_size k l] lists all [k]-element subsets of [l], each in the
    original order of [l]. [subsets_of_size 0 l = [[]]]. *)

val subsets_up_to : int -> 'a list -> 'a list list
(** [subsets_up_to k l] lists all subsets of [l] with at most [k] elements,
    in ascending size — the empty subset first. Negative [k] acts as [0].
    The fault-exploring checkers rely on the ordering: under a tight run
    budget the no-fault branches are visited first. *)

val permutations : 'a list -> 'a list list
(** All permutations. Intended for short lists (the checkers cap the length
    before calling). *)

val cartesian : 'a list list -> 'a list list
(** [cartesian [xs1; xs2; ...]] is the cartesian product, each choice list
    picking one element per input list. [cartesian [] = [[]]]. *)

val chunks : int -> 'a list -> 'a list list
(** [chunks size l] partitions [l] into consecutive runs of [size] elements
    (the last chunk may be shorter), preserving order; [chunks _ [] = []].
    Raises [Invalid_argument] when [size <= 0]. *)

val choose : int -> int -> int
(** Binomial coefficient [choose n k]; 0 when [k < 0] or [k > n]. *)
