(* Slot states: 0 = empty, 1 = sealed (resize in progress), anything with
   the sign bit set = a stored key. [encode] forces the sign bit on, so a
   key can never collide with the two sentinels; the price is that bit 62
   of the fingerprint is lost on top of bit 63 (Int64.to_int keeps the low
   63), leaving 62 significant bits — see the .mli on why that is an
   acceptable hash-compaction trade. *)

let empty_slot = 0

let sealed_slot = 1

let encode (fp : int64) = Int64.to_int fp lor min_int

(* Where a key starts probing. Mixing rather than taking the raw low bits
   keeps probe sequences spread out even if the fingerprints themselves
   are clustered (e.g. a fingerprint function that varies only in its low
   bits). Both multipliers are odd 62-bit mixing constants (OCaml int
   literals must fit 63 bits). *)
let slot_hash key = (key * 0x2545F4914F6CDD1D) lxor (key lsr 29)

(* The shard index must use bits the in-shard probe does not, or every key
   in a shard would start probing at the same slot. *)
let shard_hash key = (key * 0x3C79AC492BA7B653) lsr 40

type shard = {
  lock : Mutex.t;  (* serialises resizes; never taken on the fast path *)
  table : int Atomic.t array Atomic.t;
  count : int Atomic.t;  (* distinct keys stored in this shard *)
}

type t = {
  shards : shard array;
  shard_mask : int;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_collisions : Metrics.counter;
  m_resizes : Metrics.counter;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let make_table size = Array.init size (fun _ -> Atomic.make empty_slot)

(* [create]'s capacity that absorbs [expected] keys with no resize: tables
   grow at 3/4 load, so ask for a third more slots than keys and let
   [create]'s per-shard power-of-two rounding only ever round up. *)
let recommended_capacity ~expected = max 1024 ((max 0 expected * 4 / 3) + 1)

let create ?(shards = 16) ?(capacity = 1024) ?(metrics = Metrics.disabled) () =
  let nshards = pow2_at_least (max 1 shards) 1 in
  let per_shard = pow2_at_least (max 4 (capacity / nshards)) 4 in
  {
    shards =
      Array.init nshards (fun _ ->
          {
            lock = Mutex.create ();
            table = Atomic.make (make_table per_shard);
            count = Atomic.make 0;
          });
    shard_mask = nshards - 1;
    m_hits = Metrics.counter metrics "stateset.hits";
    m_misses = Metrics.counter metrics "stateset.misses";
    m_collisions = Metrics.counter metrics "stateset.collisions";
    m_resizes = Metrics.counter metrics "stateset.resizes";
  }

let shard_of t key = t.shards.(shard_hash key land t.shard_mask)

(* Insert [key] into [table] assuming no concurrent writers and no
   duplicates (resize-time copy). *)
let copy_into table key =
  let mask = Array.length table - 1 in
  let rec probe i =
    if Atomic.get table.(i) = empty_slot then Atomic.set table.(i) key
    else probe ((i + 1) land mask)
  in
  probe (slot_hash key land mask)

(* Double [shard]'s table. Sealing every empty slot first makes the old
   table immutable: a writer's CAS on a sealed slot fails, and it then
   waits for the new table pointer before retrying, so no insert can land
   in the old table after the copy has read it. Occupied slots are
   write-once (empty -> key, never mutated), so reading them concurrently
   with late [mem] probes is safe. *)
let resize t shard old_table =
  Mutex.lock shard.lock;
  if Atomic.get shard.table == old_table then begin
    Metrics.incr t.m_resizes;
    let n = Array.length old_table in
    let fresh = make_table (2 * n) in
    for i = 0 to n - 1 do
      let rec seal () =
        let v = Atomic.get old_table.(i) in
        if v = empty_slot && not (Atomic.compare_and_set old_table.(i) empty_slot sealed_slot)
        then seal ()
        else v
      in
      let v = seal () in
      if v <> empty_slot && v <> sealed_slot then copy_into fresh v
    done;
    Atomic.set shard.table fresh
  end;
  Mutex.unlock shard.lock

(* Spin until a resize in progress publishes its new table. The window is
   the resizer's copy loop; a [Domain.cpu_relax] keeps the wait polite. *)
let rec await_table shard old_table =
  let table = Atomic.get shard.table in
  if table == old_table then begin
    Domain.cpu_relax ();
    await_table shard old_table
  end
  else table

let load_exceeded table count =
  (* Resize at 3/4 load: linear probing degrades sharply beyond it. *)
  4 * count > 3 * Array.length table

let add t fp =
  let key = encode fp in
  let shard = shard_of t key in
  let rec attempt table =
    let mask = Array.length table - 1 in
    let rec probe i collisions =
      let v = Atomic.get table.(i) in
      if v = key then begin
        Metrics.incr t.m_hits;
        if collisions > 0 then Metrics.add t.m_collisions collisions;
        false
      end
      else if v = empty_slot then begin
        if Atomic.compare_and_set table.(i) empty_slot key then begin
          let count = 1 + Atomic.fetch_and_add shard.count 1 in
          Metrics.incr t.m_misses;
          if collisions > 0 then Metrics.add t.m_collisions collisions;
          if load_exceeded table count then resize t shard table;
          true
        end
        else
          (* Lost the slot race: re-examine the same slot — the winner may
             have stored exactly our key, which must report "present", not
             silently claim a second slot. *)
          probe i collisions
      end
      else if v = sealed_slot then attempt (await_table shard table)
      else probe ((i + 1) land mask) (collisions + 1)
    in
    probe (slot_hash key land mask) 0
  in
  attempt (Atomic.get shard.table)

let mem t fp =
  let key = encode fp in
  let shard = shard_of t key in
  let rec attempt table =
    let mask = Array.length table - 1 in
    let rec probe i =
      let v = Atomic.get table.(i) in
      if v = key then true
      else if v = empty_slot then false
      else if v = sealed_slot then attempt (await_table shard table)
      else probe ((i + 1) land mask)
    in
    probe (slot_hash key land mask)
  in
  attempt (Atomic.get shard.table)

let cardinal t =
  Array.fold_left (fun acc s -> acc + Atomic.get s.count) 0 t.shards
