(** Append-only span store: a structure-of-arrays event log with causal
    parent links, shared by the causal tracer ({!Dsim.Causality}) and the
    checker's witness timelines.

    A span is seven integers — [parent] (the span that caused this one, or
    [-1] for a root), a small [kind] discriminator, a [track] (process id,
    client id — whatever lane the span renders on), [start]/[finish]
    instants, and two payload words [a]/[b] whose meaning the client
    assigns per kind.  {!add} enforces [parent < id], so every store is
    acyclic by construction: walking parent links strictly decreases the
    id and terminates at a root.

    Two exports: the {!Stdext.Rle} columnar table (bulk dumps, golden
    digests) and Chrome [trace_event] JSON — complete ("X") slices per
    span plus flow ("s"/"f") arrows along every parent link — loadable in
    Perfetto / [about://tracing]. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty store. [capacity] (default 1024) pre-sizes the arrays. *)

val add :
  t ->
  parent:int ->
  kind:int ->
  track:int ->
  start:int ->
  finish:int ->
  a:int ->
  b:int ->
  int
(** Append a span, returning its id (dense, starting at 0). Raises
    [Invalid_argument] unless [-1 <= parent < id] and [start <= finish]. *)

val length : t -> int

(** {2 Accessors} — O(1); raise [Invalid_argument] on out-of-range ids. *)

val parent : t -> int -> int
val kind : t -> int -> int
val track : t -> int -> int
val start : t -> int -> int
val finish : t -> int -> int
val a : t -> int -> int
val b : t -> int -> int

val path : t -> int -> int list
(** The causal chain of span [id]: root first, [id] last. Terminates
    because parents strictly decrease. *)

(** {2 Columnar export} *)

val table_schema : string list
(** [["parent"; "kind"; "track"; "start"; "finish"; "a"; "b"]]. *)

val to_table : t -> Rle.table
(** One row per span in id order; decodable back with {!Stdext.Rle}. *)

(** {2 Chrome trace_event export}

    The JSON object Perfetto and [about://tracing] load directly: every
    span becomes a complete event (timestamps are virtual ms rendered as
    trace microseconds) on thread [track], and every non-root span gets a
    flow arrow from its parent's finish to its own start. *)

val to_chrome :
  ?process_name:string ->
  ?name:(t -> int -> string) ->
  ?track_name:(int -> string) ->
  Format.formatter ->
  t ->
  unit
(** [name] labels each span (default ["k<kind>"]); [track_name] labels
    threads (default ["track <i>"]); [process_name] defaults to
    ["twostep"]. *)
