let rec subsets_of_size k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        let with_x = List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) in
        let without_x = subsets_of_size k rest in
        with_x @ without_x

let subsets_up_to k l =
  let k = max 0 (min k (List.length l)) in
  List.concat (List.init (k + 1) (fun i -> subsets_of_size i l))

(* Insert [x] at every position of [l]. *)
let rec insertions x l =
  match l with
  | [] -> [ [ x ] ]
  | y :: ys -> (x :: l) :: List.map (fun t -> y :: t) (insertions x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insertions x) (permutations rest)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let chunks size l =
  if size <= 0 then invalid_arg "Combinat.chunks: size must be positive";
  let rec take k acc = function
    | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> []
    | l ->
        let chunk, rest = take size [] l in
        chunk :: go rest
  in
  go l

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end
