(** Run-length binary codec for integer tables, with streaming JSONL
    import/export.

    Histories and traces are long sequences of records whose integer
    fields change slowly: timestamps are near-monotone, ids and kinds
    repeat, payloads cluster.  Stored column-wise as delta streams with
    run-length-coded repeats (the SCoA printer-stream idiom: a run is one
    (value, count) pair, not count copies), such tables shrink well over
    an order of magnitude versus their JSONL rendering while staying
    trivially seekable-free and dependency-free.

    A {!table} is a named list of equal-length integer columns — the
    checker's KV histories ({!Checker.History}), witness windows, and the
    simulator's trace dumps ({!Dsim.Trace.to_table}) all flatten to one.
    The binary format is self-describing (schema names travel in the
    header), so [decode] needs no side channel; the JSONL form renders
    one [{"col": int, ...}] object per row and imports back streamingly,
    line by line, without materialising anything beyond the column
    accumulators.

    Encoded values must fit in 62 bits signed (deltas are zigzag-coded);
    every integer the simulator produces does. *)

type table = {
  schema : string list;  (** column names, in order *)
  columns : int array list;  (** one array per schema entry, equal lengths *)
}

val rows : table -> int
(** Number of rows (length of each column); 0 for a schema-only table. *)

val encode : table -> string
(** Compact binary rendering: magic + schema + per-column zigzag-varint
    delta runs. Raises [Invalid_argument] if column lengths disagree with
    each other or with the schema length. *)

val decode : string -> (table, string) result
(** Inverse of {!encode}; [Error] describes the first corruption found
    (bad magic, truncation, trailing garbage, run overshoot). *)

val to_file : string -> table -> unit

val of_file : string -> (table, string) result

val iter_jsonl : table -> (string -> unit) -> unit
(** Streaming JSONL export: calls the sink once per row with one JSON
    object per line (no trailing newline in the string) in schema order. *)

val to_jsonl : table -> string
(** The full JSONL rendering, newline-terminated lines. *)

val of_jsonl_lines : string Seq.t -> (table, string) result
(** Streaming JSONL import: consumes lines one at a time (blank lines
    skipped); the first object fixes the schema and every later line must
    carry exactly the same keys with integer values. *)

val of_jsonl : string -> (table, string) result
