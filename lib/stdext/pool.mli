(** Fixed-size domain pool: a work-queue executor over raw [Domain]s.

    The checkers fan independent, deterministic units of work (exploration
    branches, experiment grid cells) across OCaml 5 domains. Tasks must not
    share mutable state with each other; determinism is recovered by
    awaiting results in submission order, never in completion order.

    With [domains <= 1] no domain is spawned and every task runs inline in
    the caller at submission time, so sequential and parallel callers share
    one code path. *)

type t

type 'a promise
(** The future result of a submitted task. *)

val create : domains:int -> t
(** [create ~domains] starts [domains] worker domains ([domains <= 1]
    starts none: inline mode). Call {!shutdown} when done, or use {!run}. *)

val size : t -> int
(** Number of worker domains (0 in inline mode). *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a task. Raises [Invalid_argument] on a shut-down pool. In
    inline mode the task runs immediately in the caller. *)

val await : 'a promise -> 'a
(** Block until the task finished. An exception raised by the task is
    re-raised here (with its backtrace), never swallowed by a worker. May
    be called multiple times; every call returns/raises the same result. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] submits [f x] for every element and awaits the
    results in submission order: the output list matches [List.map f xs]
    whenever [f] is deterministic, independent of worker scheduling. *)

val shutdown : t -> unit
(** Finish the queued tasks, then join all workers. Idempotent. *)

val run : domains:int -> (t -> 'a) -> 'a
(** [run ~domains f] is [f pool] on a fresh pool, with {!shutdown}
    guaranteed afterwards (also on exceptions). *)
