(** Fixed-size domain pool: a work-queue executor over raw [Domain]s.

    The checkers fan independent, deterministic units of work (exploration
    branches, experiment grid cells) across OCaml 5 domains. Tasks must not
    share mutable state with each other; determinism is recovered by
    awaiting results in submission order, never in completion order.

    With [domains <= 1] no domain is spawned and every task runs inline in
    the caller at submission time, so sequential and parallel callers share
    one code path.

    Tasks may {!submit} further tasks from inside a worker (subtree
    fan-out); {!try_run_one} and {!await_helping} let an otherwise idle
    domain — typically the coordinator blocked on a result — steal queued
    work instead of sleeping on a condition variable.

    Pending tasks run in LIFO order (newest first), the order a
    work-stealing deque gives its owning worker: recursive fan-out unfolds
    depth-first, which keeps domains on the DFS frontier and matters to
    callers that impose a global budget in DFS order. Callers needing
    deterministic results must await promises in submission order
    regardless — completion order is scheduling-dependent either way. *)

type t

type 'a promise
(** The future result of a submitted task. *)

val create : domains:int -> t
(** [create ~domains] starts [domains] worker domains ([domains <= 1]
    starts none: inline mode). Call {!shutdown} when done, or use {!run}. *)

val size : t -> int
(** Number of worker domains (0 in inline mode). *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Push a task (LIFO: it is the next one picked up). Raises
    [Invalid_argument] on a shut-down pool. In inline mode the task runs
    immediately in the caller. *)

val queued : t -> int
(** Number of submitted tasks not yet picked up by any domain (always 0 in
    inline mode). A load signal for adaptive fan-out policies. *)

val stats : t -> int array * int
(** [(per_worker, stolen)]: tasks completed by each worker domain (indexed
    by spawn order; [[||]] in inline mode), and tasks executed by
    non-worker callers — {!try_run_one} steals, plus inline-mode submits.
    Monotonic; safe to read concurrently with running tasks, in which case
    the numbers are a moment's lower bound. *)

val try_run_one : t -> bool
(** Steal the newest queued task and run it in the calling domain; [false]
    if the queue was empty. Never blocks. Safe to call from any domain,
    including from inside a running task. *)

val await : 'a promise -> 'a
(** Block until the task finished. An exception raised by the task is
    re-raised here (with its backtrace), never swallowed by a worker. May
    be called multiple times; every call returns/raises the same result. *)

val await_helping : t -> 'a promise -> 'a
(** Like {!await}, but instead of blocking while the task is pending, the
    calling domain repeatedly steals queued work with {!try_run_one} — so a
    coordinator waiting on a fanned-out computation contributes cycles to
    draining it. Falls back to blocking only when the queue is momentarily
    empty. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] submits [f x] for every element and awaits the
    results in submission order: the output list matches [List.map f xs]
    whenever [f] is deterministic, independent of worker scheduling. *)

val shutdown : t -> unit
(** Finish the queued tasks, then join all workers. Idempotent. *)

val run : domains:int -> (t -> 'a) -> 'a
(** [run ~domains f] is [f pool] on a fresh pool, with {!shutdown}
    guaranteed afterwards (also on exceptions). *)
