(** Exact summary statistics over integer samples.

    The latency reports of the SMR bench want {e exact} percentiles over
    the run's full sample set (the sample arrays are modest and the runs
    deterministic, so exactness is both affordable and what makes same-seed
    reports byte-identical); {!Metrics} histograms remain the right tool
    for streaming/merged telemetry, this module is for end-of-run
    summaries.

    An empty sample array has no percentiles: {!percentile} raises and
    {!percentile_opt} returns [None].  (It used to return [0], which made
    a zero-completion run — total collapse — indistinguishable from
    perfect latency in every report built on it.) *)

val mean : int array -> float
(** Arithmetic mean, accumulated in float (no integer-sum overflow).
    Raises [Invalid_argument] on the empty array — like {!percentile},
    an empty sample set has no mean, and the old [nan] return poisoned
    downstream arithmetic silently. *)

val mean_opt : int array -> float option
(** As {!mean} but [None] on the empty array. *)

val percentile : int array -> float -> int
(** [percentile samples p] is the nearest-rank p-th percentile (p in
    [0, 100]): the smallest sample such that at least p% of samples are
    [<=] it. Does not mutate [samples]. Raises [Invalid_argument] if [p]
    is outside [0, 100] or if [samples] is empty. *)

val percentile_opt : int array -> float -> int option
(** As {!percentile} but [None] on the empty array (still raises on a
    [p] outside [0, 100]). *)

val p50 : int array -> int

val p99 : int array -> int

val p50_opt : int array -> int option

val p99_opt : int array -> int option
