let mean samples =
  match Array.length samples with
  | 0 -> nan
  | len -> float_of_int (Array.fold_left ( + ) 0 samples) /. float_of_int len

let percentile samples p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  match Array.length samples with
  | 0 -> 0
  | len ->
      let sorted = Array.copy samples in
      Array.sort Int.compare sorted;
      (* Nearest-rank: the smallest sample with at least p% of the mass at
         or below it. p = 0 gives the minimum, p = 100 the maximum. *)
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int len)) in
      sorted.(max 0 (min (len - 1) (rank - 1)))

let p50 samples = percentile samples 50.0

let p99 samples = percentile samples 99.0
