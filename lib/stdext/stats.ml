let mean_opt samples =
  match Array.length samples with
  | 0 -> None
  | len ->
      (* Accumulate in float: an int accumulator overflows for large
         sample sets of large values (e.g. millions of multi-second
         latencies), silently corrupting the mean. *)
      Some
        (Array.fold_left (fun acc x -> acc +. float_of_int x) 0.0 samples
        /. float_of_int len)

let mean samples =
  match mean_opt samples with
  | Some v -> v
  | None -> invalid_arg "Stats.mean: empty sample array"

let percentile_opt samples p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  match Array.length samples with
  | 0 -> None
  | len ->
      let sorted = Array.copy samples in
      Array.sort Int.compare sorted;
      (* Nearest-rank: the smallest sample with at least p% of the mass at
         or below it. p = 0 gives the minimum, p = 100 the maximum. *)
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int len)) in
      Some sorted.(max 0 (min (len - 1) (rank - 1)))

let percentile samples p =
  match percentile_opt samples p with
  | Some v -> v
  | None -> invalid_arg "Stats.percentile: empty sample array"

let p50 samples = percentile samples 50.0

let p99 samples = percentile samples 99.0

let p50_opt samples = percentile_opt samples 50.0

let p99_opt samples = percentile_opt samples 99.0
