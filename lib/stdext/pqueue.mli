(** Mutable binary min-heap keyed by [(priority, sequence)].

    Entries with equal priority are returned in insertion order, which the
    simulation engine relies on for determinism.

    {b Packing contract.} The heap is a structure of arrays: one unboxed
    int array holds [(priority lsl 24) lor sequence] per entry — ordering
    is a single monomorphic int [<] — and a parallel array holds the
    payloads. Two width invariants follow: priorities must lie within
    [-2^38, 2^38) ({!push} raises [Invalid_argument] otherwise; the
    simulation engine's [time * 8 + rank] priorities stay far below this
    for any realistic horizon), and the 24-bit sequence counter is
    transparently renumbered in pop order when 2^24 pushes accumulate, so
    FIFO-within-priority holds for arbitrarily long runs. Neither {!push}
    nor {!pop_exn} allocates (outside amortised array growth). *)

type 'a t

val create : unit -> 'a t

val copy : 'a t -> 'a t
(** Independent copy: pushes and pops on either queue do not affect the
    other. Used by {!Dsim.Engine}'s snapshots. Copies the live prefix
    only, O(length). *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit
(** Insert an element. Lower priorities pop first; ties pop in insertion
    order. Raises [Invalid_argument] when [priority] is outside
    [-2^38, 2^38) (see the packing contract above). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum [(priority, element)], or [None] when
    empty. Allocates; hot paths use {!peek_prio}/{!pop_exn}. *)

val peek : 'a t -> (int * 'a) option

val peek_prio : 'a t -> int
(** Priority of the minimum entry without allocating. Raises
    [Invalid_argument] on an empty queue ({!is_empty} first). *)

val pop_exn : 'a t -> 'a
(** Remove the minimum entry and return its payload without allocating;
    the priority is available beforehand via {!peek_prio}. Raises
    [Invalid_argument] on an empty queue. *)

val iter_in_order : 'a t -> (int -> 'a -> unit) -> unit
(** [iter_in_order t f] calls [f priority value] for every entry in pop
    order without modifying [t] (works on a scratch copy; no per-entry
    allocation). *)

val to_list : 'a t -> (int * 'a) list
(** Snapshot in pop order; does not modify the queue. *)
