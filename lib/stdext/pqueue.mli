(** Mutable binary min-heap keyed by [(priority, sequence)].

    Entries with equal priority are returned in insertion order, which the
    simulation engine relies on for determinism. *)

type 'a t

val create : unit -> 'a t

val copy : 'a t -> 'a t
(** Independent copy: pushes and pops on either queue do not affect the
    other. Used by {!Dsim.Engine}'s snapshots. O(capacity). *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit
(** Insert an element. Lower priorities pop first; ties pop in insertion
    order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum [(priority, element)], or [None] when
    empty. *)

val peek : 'a t -> (int * 'a) option

val to_list : 'a t -> (int * 'a) list
(** Snapshot in pop order; does not modify the queue. *)
