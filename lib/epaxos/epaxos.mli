(** An Egalitarian-Paxos-style leaderless protocol (single round of
    commands), the paper's motivating example (§1): with [n = 2f+1]
    processes it commits a command within two message delays under up to
    [e = ceil((f+1)/2)] failures, provided concurrent commands do not
    interfere — "seemingly contradicting" Lamport's bound, and resolved by
    the paper's object-formulation bound [2e+f-1 = 2f+1].

    The implementation follows the EPaxos commit protocol (Moraru et al.,
    SOSP 2013), specialised to one command per replica:

    - every replica owns one instance; a client command submitted to
      replica [L] (the {e command leader}) is [PreAccept]ed to everyone
      with dependencies = the interfering commands [L] has seen and a
      sequence number above them;
    - replies merge in each acceptor's own interference information; if
      [n-e] replies (counting [L]) agree on the merged attributes, [L]
      commits in two message delays (fast path);
    - otherwise [L] runs a Paxos-like [Accept] round on the merged
      attributes (slow path, two more delays);
    - committed commands execute in dependency order (strongly connected
      components broken by sequence number, then instance id), so all
      replicas apply interfering commands in the same order.

    Commands interfere when they touch the same key ({!Cmd.interferes}).

    {b Scope.} Crash recovery of a failed command leader uses a simplified
    explicit-prepare rule: committed > accepted > pristine preaccept (one
    carrying the leader's unmodified attributes — the only attributes a
    fast commit can have used, and present in every recovery quorum when
    one happened) > merged preaccepts > no-op. This preserves agreement on
    each instance, but — like the original EPaxos explicit prepare, whose
    subtleties in exactly this corner were later documented by França
    Rezende & Sutra (DISC 2020, cited by the paper) — it can order two
    {e interfering} commands inconsistently when a {e premature} recovery
    adopts pristine attributes even though no fast commit happened. The
    full TryPreAccept machinery is out of scope for this reproduction
    (DESIGN.md records the substitution); recovery timers are long and
    per-replica staggered, so the corner is reachable only under prolonged
    asynchrony combined with concurrent interference and recovery. *)

module Cmd : sig
  type t = { origin : Dsim.Pid.t; key : int; payload : int }

  val interferes : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end

type msg

val pp_msg : Format.formatter -> msg -> unit

type state

(** What a replica has executed, in execution order. *)
val executed : state -> Cmd.t list

val committed_count : state -> int

type output = Committed of Cmd.t | Executed of Cmd.t

val pp_output : Format.formatter -> output -> unit

val make :
  n:int ->
  f:int ->
  delta:int ->
  (state, msg, Cmd.t, output) Dsim.Automaton.t
(** Fast-path threshold is fixed to [e = ceil((f+1)/2)], EPaxos's value for
    [n = 2f+1]. Inputs are client commands at their command leader; outputs
    report commits (at the command leader) and executions (everywhere). *)

val fast_quorum : n:int -> f:int -> int
(** [n - ceil((f+1)/2)], the number of matching replies (command leader
    included) needed for a fast commit. *)

(**/**)

val debug_instances : state -> (Dsim.Pid.t * string) list
(** Internal: per-instance one-line summaries, for tests and debugging. *)

module Consensus : Proto.Protocol.S
(** EPaxos adapted to the single-shot consensus interface: every proposal
    maps to a command on one shared key (so all concurrent proposals
    interfere), and a replica decides the payload of the first command it
    executes — uniform because interfering commands execute in one
    dependency order everywhere. [min_n ~e ~f = 2f+1] with the fast-path
    tolerance fixed at [e = ceil((f+1)/2)], the trade-off the paper's
    object-formulation bound shows is forced. *)

val protocol : Proto.Protocol.t
(** {!Consensus} packaged like the other protocol modules. *)
