module Pid = Dsim.Pid
module Automaton = Dsim.Automaton
module Util = Proto.Util

module Cmd = struct
  type t = { origin : Pid.t; key : int; payload : int }

  let interferes a b = a.key = b.key

  let pp fmt c = Format.fprintf fmt "cmd(%a,k%d,%d)" Pid.pp c.origin c.key c.payload
end

let epaxos_e ~f = Proto.Bounds.epaxos_e ~f

let fast_quorum ~n ~f = n - epaxos_e ~f

type attrs = { seq : int; deps : Pid.Set.t }

let attrs_equal a b = a.seq = b.seq && Pid.Set.equal a.deps b.deps

let pp_attrs fmt a =
  Format.fprintf fmt "seq=%d deps={%a}" a.seq
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp)
    (Pid.Set.elements a.deps)

type status = S_preaccepted | S_accepted | S_committed | S_executed

type inst = {
  cmd : Cmd.t option;  (* None encodes the no-op a recovery may commit *)
  attrs : attrs;
  status : status;
  ballot : int;  (* highest ballot joined *)
  vballot : int;  (* ballot at which [attrs] were (pre)accepted *)
  pristine : bool;
      (* preaccepted with exactly the command leader's original attributes.
         A fast commit requires n-e identical (hence pristine) preaccepts,
         so every recovery quorum contains a pristine witness of the only
         attributes that can have been fast-committed. *)
}

type msg =
  | Pre_accept of { inst : Pid.t; cmd : Cmd.t; attrs : attrs; bal : int }
  | Pre_accept_ok of { inst : Pid.t; attrs : attrs; bal : int }
  | Accept of { inst : Pid.t; cmd : Cmd.t option; attrs : attrs; bal : int }
  | Accept_ok of { inst : Pid.t; bal : int }
  | Commit of { inst : Pid.t; cmd : Cmd.t option; attrs : attrs }
  | Prepare of { inst : Pid.t; bal : int }
  | Prepare_ok of {
      inst : Pid.t;
      bal : int;
      status : status;
      cmd : Cmd.t option;
      attrs : attrs;
      vballot : int;
      pristine : bool;
    }
  | Nack of { inst : Pid.t; bal : int }

let pp_msg fmt = function
  | Pre_accept { inst; cmd; attrs; bal } ->
      Format.fprintf fmt "PreAccept(i%d,%a,%a,b%d)" inst Cmd.pp cmd pp_attrs attrs bal
  | Pre_accept_ok { inst; attrs; bal } ->
      Format.fprintf fmt "PreAcceptOk(i%d,%a,b%d)" inst pp_attrs attrs bal
  | Accept { inst; attrs; bal; _ } -> Format.fprintf fmt "Accept(i%d,%a,b%d)" inst pp_attrs attrs bal
  | Accept_ok { inst; bal } -> Format.fprintf fmt "AcceptOk(i%d,b%d)" inst bal
  | Commit { inst; attrs; _ } -> Format.fprintf fmt "Commit(i%d,%a)" inst pp_attrs attrs
  | Prepare { inst; bal } -> Format.fprintf fmt "Prepare(i%d,b%d)" inst bal
  | Prepare_ok { inst; bal; _ } -> Format.fprintf fmt "PrepareOk(i%d,b%d)" inst bal
  | Nack { inst; bal } -> Format.fprintf fmt "Nack(i%d,b%d)" inst bal

type output = Committed of Cmd.t | Executed of Cmd.t

let pp_output fmt = function
  | Committed c -> Format.fprintf fmt "committed %a" Cmd.pp c
  | Executed c -> Format.fprintf fmt "executed %a" Cmd.pp c

(* Command-leader progress on the own instance. *)
type phase =
  | Idle
  | Collecting of { attrs : attrs; oks : attrs Pid.Map.t }
  | Accepting of { attrs : attrs; cmd : Cmd.t option; bal : int; oks : Pid.Set.t }
  | Settled

(* An ongoing explicit-prepare recovery we lead for a stalled instance. *)
type recovery = {
  rbal : int;
  oks : (status * Cmd.t option * attrs * int * bool) Pid.Map.t;
  acted : bool;
}

type state = {
  self : Pid.t;
  n : int;
  f : int;
  delta : int;
  instances : inst Pid.Map.t;
  phase : phase;
  recoveries : recovery Pid.Map.t;
  executed_rev : Cmd.t list;
}

let executed s = List.rev s.executed_rev

let committed_count s =
  Pid.Map.cardinal
    (Pid.Map.filter (fun _ i -> i.status = S_committed || i.status = S_executed) s.instances)

let progress_timer = 1

let find_inst s j = Pid.Map.find_opt j s.instances

let set_inst s j i = { s with instances = Pid.Map.add j i s.instances }

(* Interference bookkeeping: the attributes a replica assigns to [cmd] in
   instance [inst], given everything it has seen. *)
let local_attrs s ~inst ~cmd ~base =
  Pid.Map.fold
    (fun j i acc ->
      match i.cmd with
      | Some c when (not (Pid.equal j inst)) && Cmd.interferes c cmd ->
          { seq = max acc.seq (i.attrs.seq + 1); deps = Pid.Set.add j acc.deps }
      | _ -> acc)
    s.instances base

(* -- execution ----------------------------------------------------------

   Execute committed instances in dependency order: repeatedly look for an
   unexecuted committed instance whose (transitive) dependencies are all
   committed, take its strongly connected component in the committed
   dependency graph, and execute it in (seq, instance) order. With one
   instance per replica the graphs are tiny, so a simple DFS suffices. *)

let try_execute s =
  (* [ready_component] must consult the CURRENT state on every loop
     iteration — an instance executed in a previous iteration would
     otherwise be re-collected through a dependency edge and executed
     twice. *)
  let ready_component s start =
    (* Collect the component reachable from [start] through dependency
       edges restricted to unexecuted instances; fail if any dependency is
       not committed yet. *)
    let rec visit j (seen, acc) =
      if Pid.Set.mem j seen then Some (seen, acc)
      else begin
        match find_inst s j with
        | Some { status = S_executed; _ } -> Some (seen, acc)
        | Some ({ status = S_committed; _ } as i) ->
            let seen = Pid.Set.add j seen in
            Pid.Set.fold
              (fun dep acc_opt -> Option.bind acc_opt (visit dep))
              i.attrs.deps
              (Some (seen, (j, i) :: acc))
        | Some { status = S_preaccepted | S_accepted; _ } | None -> None
      end
    in
    visit start (Pid.Set.empty, [])
  in
  let rec loop s outputs =
    let candidate =
      Pid.Map.fold
        (fun j i acc ->
          match acc with
          | Some _ -> acc
          | None -> if i.status = S_committed then ready_component s j else None)
        s.instances None
    in
    match candidate with
    | None | Some (_, []) -> (s, List.rev outputs)
    | Some (_, component) ->
        let ordered =
          List.sort
            (fun (j1, i1) (j2, i2) ->
              match compare i1.attrs.seq i2.attrs.seq with
              | 0 -> Pid.compare j1 j2
              | c -> c)
            component
        in
        let s, outputs =
          List.fold_left
            (fun (s, outputs) (j, i) ->
              let s = set_inst s j { i with status = S_executed } in
              let outputs =
                match i.cmd with
                | Some c -> Automaton.Output (Executed c) :: outputs
                | None -> outputs
              in
              let s =
                match i.cmd with
                | Some c -> { s with executed_rev = c :: s.executed_rev }
                | None -> s
              in
              (s, outputs))
            (s, outputs) ordered
        in
        loop s outputs
  in
  loop s []

(* -- commit -------------------------------------------------------------- *)

let commit s ~inst ~cmd ~attrs =
  match find_inst s inst with
  | Some { status = S_committed | S_executed; _ } -> (s, [])
  | existing ->
      let ballot = match existing with Some i -> i.ballot | None -> 0 in
      let s =
        set_inst s inst
          { cmd; attrs; status = S_committed; ballot; vballot = ballot; pristine = false }
      in
      let commit_outputs =
        match cmd with
        | Some c when Pid.equal c.Cmd.origin s.self -> [ Automaton.Output (Committed c) ]
        | _ -> []
      in
      let announce = Util.send_others ~n:s.n ~self:s.self (Commit { inst; cmd; attrs }) in
      let s, exec_outputs = try_execute s in
      (s, commit_outputs @ announce @ exec_outputs)

(* The committer broadcasts; receivers only record and execute. *)
let on_commit s ~inst ~cmd ~attrs =
  match find_inst s inst with
  | Some { status = S_committed | S_executed; _ } -> (s, [])
  | existing ->
      let ballot = match existing with Some i -> i.ballot | None -> 0 in
      let s =
        set_inst s inst
          { cmd; attrs; status = S_committed; ballot; vballot = ballot; pristine = false }
      in
      let s, exec_outputs = try_execute s in
      let outputs =
        match cmd with
        | Some c when Pid.equal c.Cmd.origin s.self -> Automaton.Output (Committed c) :: exec_outputs
        | _ -> exec_outputs
      in
      (s, outputs)

(* -- client command at its leader ---------------------------------------- *)

let on_client s cmd =
  match (s.phase, find_inst s s.self) with
  | Idle, None ->
      let attrs = local_attrs s ~inst:s.self ~cmd ~base:{ seq = 1; deps = Pid.Set.empty } in
      let s =
        set_inst s s.self
          { cmd = Some cmd; attrs; status = S_preaccepted; ballot = 0; vballot = 0; pristine = true }
      in
      let s = { s with phase = Collecting { attrs; oks = Pid.Map.empty } } in
      ( s,
        Util.send_others ~n:s.n ~self:s.self
          (Pre_accept { inst = s.self; cmd; attrs; bal = 0 }) )
  | _ -> (s, [])

let on_pre_accept s ~src ~inst ~cmd ~attrs ~bal =
  match find_inst s inst with
  | Some { status = S_committed | S_executed; _ } -> (s, [])
  | Some i when bal < i.ballot -> (s, [ Automaton.Send (src, Nack { inst; bal }) ])
  | _ ->
      let merged = local_attrs s ~inst ~cmd ~base:attrs in
      let s =
        set_inst s inst
          {
            cmd = Some cmd;
            attrs = merged;
            status = S_preaccepted;
            ballot = bal;
            vballot = bal;
            pristine = attrs_equal merged attrs;
          }
      in
      (s, [ Automaton.Send (src, Pre_accept_ok { inst; attrs = merged; bal }) ])

let start_accept s ~cmd ~attrs ~bal =
  let s =
    set_inst s s.self
      { cmd; attrs; status = S_accepted; ballot = bal; vballot = bal; pristine = false }
  in
  let s = { s with phase = Accepting { attrs; cmd; bal; oks = Pid.Set.singleton s.self } } in
  (s, Util.send_others ~n:s.n ~self:s.self (Accept { inst = s.self; cmd; attrs; bal }))

let on_pre_accept_ok s ~src ~inst ~attrs ~bal =
  if not (Pid.equal inst s.self) then (s, [])
  else begin
    match (s.phase, find_inst s s.self) with
    | Collecting { attrs = mine; oks }, Some own when own.ballot = bal ->
        let oks = Pid.Map.add src attrs oks in
        let s = { s with phase = Collecting { attrs = mine; oks } } in
        let matching =
          Pid.Map.cardinal (Pid.Map.filter (fun _ a -> attrs_equal a mine) oks)
        in
        let e = epaxos_e ~f:s.f in
        if matching + 1 >= s.n - e then begin
          (* fast path: the leader's attributes were confirmed unchanged *)
          let s = { s with phase = Settled } in
          commit s ~inst:s.self ~cmd:own.cmd ~attrs:mine
        end
        else begin
          let received = Pid.Map.cardinal oks in
          let outstanding = s.n - 1 - received in
          if matching + 1 + outstanding < s.n - e && received + 1 >= s.n - s.f then begin
            (* fast path unreachable: merge all replies and go slow *)
            let merged =
              Pid.Map.fold
                (fun _ a acc ->
                  { seq = max acc.seq a.seq; deps = Pid.Set.union acc.deps a.deps })
                oks mine
            in
            start_accept s ~cmd:own.cmd ~attrs:merged ~bal
          end
          else (s, [])
        end
    | _ -> (s, [])
  end

let on_accept s ~src ~inst ~cmd ~attrs ~bal =
  match find_inst s inst with
  | Some { status = S_committed | S_executed; _ } -> (s, [])
  | Some i when bal < i.ballot -> (s, [ Automaton.Send (src, Nack { inst; bal }) ])
  | _ ->
      let s =
        set_inst s inst
          { cmd; attrs; status = S_accepted; ballot = bal; vballot = bal; pristine = false }
      in
      (s, [ Automaton.Send (src, Accept_ok { inst; bal }) ])

let on_accept_ok s ~src ~inst ~bal =
  if not (Pid.equal inst s.self) then (s, [])
  else begin
    match s.phase with
    | Accepting { attrs; cmd; bal = b; oks } when b = bal ->
        let oks = Pid.Set.add src oks in
        let s = { s with phase = Accepting { attrs; cmd; bal; oks } } in
        if Pid.Set.cardinal oks >= s.n - s.f then begin
          let s = { s with phase = Settled } in
          commit s ~inst:s.self ~cmd ~attrs
        end
        else (s, [])
    | _ -> (s, [])
  end

(* -- recovery: explicit prepare ------------------------------------------ *)

let on_prepare s ~src ~inst ~bal =
  match find_inst s inst with
  | Some i when bal > i.ballot ->
      let s = set_inst s inst { i with ballot = bal } in
      ( s,
        [
          Automaton.Send
            ( src,
              Prepare_ok
                {
                  inst;
                  bal;
                  status = i.status;
                  cmd = i.cmd;
                  attrs = i.attrs;
                  vballot = i.vballot;
                  pristine = i.pristine;
                } );
        ] )
  | Some _ -> (s, [ Automaton.Send (src, Nack { inst; bal }) ])
  | None ->
      (* We know nothing of this instance: join the ballot with an empty
         report. *)
      let s =
        set_inst s inst
          {
            cmd = None;
            attrs = { seq = 0; deps = Pid.Set.empty };
            status = S_preaccepted;
            ballot = bal;
            vballot = 0;
            pristine = false;
          }
      in
      ( s,
        [
          Automaton.Send
            ( src,
              Prepare_ok
                {
                  inst;
                  bal;
                  status = S_preaccepted;
                  cmd = None;
                  attrs = { seq = 0; deps = Pid.Set.empty };
                  vballot = 0;
                  pristine = false;
                } );
        ] )

(* Recovery value selection, per the EPaxos paper's explicit prepare:
   committed > accepted (highest vballot) > at least floor((f+1)/2)
   identical preaccepts not from the instance owner > any preaccept >
   no-op. Each selected continuation runs through a full Accept round at
   the recovery ballot, except committed which re-broadcasts Commit. *)
let rec conclude_recovery s ~inst ~(rec_ : recovery) =
  match find_inst s inst with
  | Some { status = S_committed | S_executed; _ } ->
      (* A Commit raced ahead of our prepare quorum: nothing to recover. *)
      ({ s with recoveries = Pid.Map.remove inst s.recoveries }, [])
  | Some _ | None -> conclude_recovery_needed s ~inst ~rec_

and conclude_recovery_needed s ~inst ~(rec_ : recovery) =
  let replies = Pid.Map.bindings rec_.oks in
  let committed =
    List.find_opt (fun (_, (st, _, _, _, _)) -> st = S_committed || st = S_executed) replies
  in
  let run_accept s cmd attrs =
    let bal = rec_.rbal in
    if Pid.equal inst s.self then start_accept s ~cmd ~attrs ~bal
    else begin
      (* We recover someone else's instance: run the Accept round from
         here, counting Accept_oks in the recovery entry. *)
      let s =
        set_inst s inst
          { cmd; attrs; status = S_accepted; ballot = bal; vballot = bal; pristine = false }
      in
      ( { s with recoveries = Pid.Map.add inst { rec_ with acted = true } s.recoveries },
        Util.send_others ~n:s.n ~self:s.self (Accept { inst; cmd; attrs; bal }) )
    end
  in
  match committed with
  | Some (_, (_, cmd, attrs, _, _)) ->
      let s = { s with recoveries = Pid.Map.remove inst s.recoveries } in
      commit s ~inst ~cmd ~attrs
  | None -> begin
      let accepted =
        List.filter (fun (_, (st, _, _, _, _)) -> st = S_accepted) replies
        |> List.sort (fun (_, (_, _, _, v1, _)) (_, (_, _, _, v2, _)) -> compare v2 v1)
      in
      match accepted with
      | (_, (_, cmd, attrs, _, _)) :: _ -> run_accept s cmd attrs
      | [] -> begin
          let preaccepts =
            List.filter_map
              (fun (p, (st, cmd, attrs, _, pristine)) ->
                match (st, cmd) with
                | S_preaccepted, Some c when not (Pid.equal p inst) ->
                    Some (c, attrs, pristine)
                | _ -> None)
              replies
          in
          (* A fast commit needed n-e pristine preaccepts, which intersect
             our n-f quorum; all pristine replies carry the leader's
             original (identical) attributes, so they pin down the only
             possibly-committed attributes. Without a pristine witness no
             fast commit happened and any merged choice is safe; merge
             everything for determinism. *)
          match List.find_opt (fun (_, _, pristine) -> pristine) preaccepts with
          | Some (c, a, _) -> run_accept s (Some c) a
          | None -> begin
              match preaccepts with
              | (c, _, _) :: _ ->
                  let merged =
                    List.fold_left
                      (fun acc (_, a, _) ->
                        { seq = max acc.seq a.seq; deps = Pid.Set.union acc.deps a.deps })
                      { seq = 0; deps = Pid.Set.empty } preaccepts
                  in
                  run_accept s (Some c) merged
              | [] ->
                  (* nobody knows the command: commit a no-op so execution
                     can proceed past this instance *)
                  let s = { s with recoveries = Pid.Map.remove inst s.recoveries } in
                  commit s ~inst ~cmd:None ~attrs:{ seq = 0; deps = Pid.Set.empty }
            end
        end
    end

let on_prepare_ok s ~src ~inst ~bal ~status ~cmd ~attrs ~vballot ~pristine =
  match Pid.Map.find_opt inst s.recoveries with
  | Some rec_ when rec_.rbal = bal && not rec_.acted ->
      let oks = Pid.Map.add src (status, cmd, attrs, vballot, pristine) rec_.oks in
      let rec_ = { rec_ with oks } in
      let s = { s with recoveries = Pid.Map.add inst rec_ s.recoveries } in
      if Pid.Map.cardinal oks >= s.n - s.f then
        conclude_recovery s ~inst ~rec_:{ rec_ with acted = true }
      else (s, [])
  | _ -> (s, [])

(* -- progress timer ------------------------------------------------------ *)

(* Any instance we know about (it blocks execution, or it is our own) that
   is still uncommitted after a timeout triggers an explicit prepare led by
   us with a ballot unique to this replica. *)
let on_progress_timer s =
  (* Long, per-replica staggered periods: recovery is a last resort, and
     dueling or premature recoveries while the command leader is merely
     slow re-open the known explicit-prepare subtleties (see the .mli). *)
  let rearm =
    Automaton.Set_timer { id = progress_timer; after = (8 + (3 * s.self)) * s.delta }
  in
  let stalled =
    Pid.Map.fold
      (fun j i acc ->
        match i.status with
        | S_preaccepted | S_accepted ->
            if Pid.Map.mem j s.recoveries then acc else (j, i) :: acc
        | S_committed | S_executed -> acc)
      s.instances []
  in
  let s, actions =
    List.fold_left
      (fun (s, actions) (j, (i : inst)) ->
        if Pid.equal j s.self then begin
          (* our own instance: if the collecting phase stalled (crashed
             acceptors), force the slow path with what we have *)
          match s.phase with
          | Collecting { attrs = mine; oks } when Pid.Map.cardinal oks + 1 >= s.n - s.f ->
              let merged =
                Pid.Map.fold
                  (fun _ a acc ->
                    { seq = max acc.seq a.seq; deps = Pid.Set.union acc.deps a.deps })
                  oks mine
              in
              let s, acts = start_accept s ~cmd:i.cmd ~attrs:merged ~bal:i.ballot in
              (s, acts @ actions)
          | _ -> (s, actions)
        end
        else begin
          let bal = ((i.ballot / s.n) + 1) * s.n + s.self in
          let rec_ = { rbal = bal; oks = Pid.Map.empty; acted = false } in
          let s = { s with recoveries = Pid.Map.add j rec_ s.recoveries } in
          (s, Util.send_to_all ~n:s.n (Prepare { inst = j; bal }) @ actions)
        end)
      (s, []) stalled
  in
  (s, rearm :: actions)

(* Structural hash for the explorer's dedup (see {!Dsim.Fingerprint}):
   pids through [relabel] — instance ids are origin pids, so map keys and
   dependency sets are relabelled too; unordered containers fold
   commutatively, the executed log sequentially (execution order is
   semantics). *)
let fingerprint ~relabel s =
  let module Fp = Dsim.Fingerprint in
  let pid p = Fp.int (relabel p) in
  let cmd (c : Cmd.t) = Fp.mix (Fp.mix (pid c.origin) (Fp.int c.key)) (Fp.int c.payload) in
  let attrs_fp a = Fp.mix (Fp.int a.seq) (Fp.set pid ~fold:Pid.Set.fold a.deps) in
  let status_fp = function
    | S_preaccepted -> 0
    | S_accepted -> 1
    | S_committed -> 2
    | S_executed -> 3
  in
  let inst_fp i =
    let fp = Fp.mix 137L (Fp.option cmd i.cmd) in
    let fp = Fp.mix fp (attrs_fp i.attrs) in
    let fp = Fp.mix fp (Fp.int (status_fp i.status)) in
    let fp = Fp.mix fp (Fp.int i.ballot) in
    let fp = Fp.mix fp (Fp.int i.vballot) in
    Fp.mix fp (Fp.bool i.pristine)
  in
  let phase_fp = function
    | Idle -> 139L
    | Collecting { attrs; oks } ->
        Fp.mix
          (Fp.mix 149L (attrs_fp attrs))
          (Fp.map (fun p a -> Fp.mix (pid p) (attrs_fp a)) ~fold:Pid.Map.fold oks)
    | Accepting { attrs; cmd = c; bal; oks } ->
        Fp.mix
          (Fp.mix (Fp.mix (Fp.mix 151L (attrs_fp attrs)) (Fp.option cmd c)) (Fp.int bal))
          (Fp.set pid ~fold:Pid.Set.fold oks)
    | Settled -> 157L
  in
  let recovery_fp r =
    let fp = Fp.mix 163L (Fp.int r.rbal) in
    let fp =
      Fp.mix fp
        (Fp.map
           (fun p (st, c, a, vb, pr) ->
             Fp.mix
               (Fp.mix
                  (Fp.mix (Fp.mix (Fp.mix (pid p) (Fp.int (status_fp st))) (Fp.option cmd c))
                     (attrs_fp a))
                  (Fp.int vb))
               (Fp.bool pr))
           ~fold:Pid.Map.fold r.oks)
    in
    Fp.mix fp (Fp.bool r.acted)
  in
  let fp = Fp.mix 167L (pid s.self) in
  let fp = Fp.mix fp (Fp.int s.f) in
  let fp = Fp.mix fp (Fp.map (fun j i -> Fp.mix (pid j) (inst_fp i)) ~fold:Pid.Map.fold s.instances) in
  let fp = Fp.mix fp (phase_fp s.phase) in
  let fp = Fp.mix fp (Fp.map (fun j r -> Fp.mix (pid j) (recovery_fp r)) ~fold:Pid.Map.fold s.recoveries) in
  Fp.mix fp (Fp.list cmd s.executed_rev)

let make ~n ~f ~delta =
  let init ~self ~n:n' =
    assert (n = n');
    let s =
      {
        self;
        n;
        f;
        delta;
        instances = Pid.Map.empty;
        phase = Idle;
        recoveries = Pid.Map.empty;
        executed_rev = [];
      }
    in
    (s, [ Automaton.Set_timer { id = progress_timer; after = (8 + (3 * self)) * delta } ])
  in
  let on_message s ~src msg =
    match msg with
    | Pre_accept { inst; cmd; attrs; bal } -> on_pre_accept s ~src ~inst ~cmd ~attrs ~bal
    | Pre_accept_ok { inst; attrs; bal } -> on_pre_accept_ok s ~src ~inst ~attrs ~bal
    | Accept { inst; cmd; attrs; bal } -> on_accept s ~src ~inst ~cmd ~attrs ~bal
    | Accept_ok { inst; bal } ->
        if Pid.equal inst s.self then on_accept_ok s ~src ~inst ~bal
        else begin
          (* an Accept we sent while recovering someone else's instance *)
          match Pid.Map.find_opt inst s.recoveries with
          | Some rec_ when rec_.rbal = bal ->
              let oks =
                Pid.Map.add src
                  (S_accepted, None, { seq = 0; deps = Pid.Set.empty }, -1, false)
                  rec_.oks
              in
              (* count Accept_oks distinctly: reuse vballot = -1 markers *)
              let count =
                Pid.Map.cardinal (Pid.Map.filter (fun _ (_, _, _, v, _) -> v = -1) oks) + 1
              in
              let s = { s with recoveries = Pid.Map.add inst { rec_ with oks } s.recoveries } in
              if count >= s.n - s.f then begin
                match find_inst s inst with
                | Some i ->
                    let s = { s with recoveries = Pid.Map.remove inst s.recoveries } in
                    commit s ~inst ~cmd:i.cmd ~attrs:i.attrs
                | None -> (s, [])
              end
              else (s, [])
          | _ -> (s, [])
        end
    | Commit { inst; cmd; attrs } -> on_commit s ~inst ~cmd ~attrs
    | Prepare { inst; bal } -> on_prepare s ~src ~inst ~bal
    | Prepare_ok { inst; bal; status; cmd; attrs; vballot; pristine } ->
        on_prepare_ok s ~src ~inst ~bal ~status ~cmd ~attrs ~vballot ~pristine
    | Nack _ -> (s, [])
  in
  let on_input s cmd = on_client s cmd in
  let on_timer s id = if id = progress_timer then on_progress_timer s else (s, []) in
  {
    Automaton.init;
    on_message;
    on_input;
    on_timer;
    state_copy = Fun.id;
    state_fingerprint = Some (fun ~relabel s -> fingerprint ~relabel s);
  }

let debug_instances s =
  Pid.Map.bindings s.instances
  |> List.map (fun (j, i) ->
         ( j,
           Format.asprintf "%s %a %s b%d"
             (match i.status with
             | S_preaccepted -> "pre"
             | S_accepted -> "acc"
             | S_committed -> "com"
             | S_executed -> "exe")
             pp_attrs i.attrs
             (match i.cmd with Some c -> Format.asprintf "%a" Cmd.pp c | None -> "noop")
             i.ballot ))

(* EPaxos as a single-shot consensus protocol, so the SMR layer (and the
   protocol tables) can run it next to Paxos and the RGS algorithms.  Every
   adapted command targets one shared key, so all concurrent proposals
   interfere and EPaxos's dependency-ordered execution yields one total
   order; the decision is the payload of the first command a replica
   executes, which agreement on execution order makes uniform. *)
module Consensus = struct
  type nonrec msg = msg

  type nonrec state = { inner : state; decided : bool }

  let name = "epaxos"

  let pp_msg = pp_msg

  let describe =
    "EPaxos commit protocol as single-shot consensus (n >= 2f+1, fast under no contention)"

  let min_n ~e:_ ~f = (2 * f) + 1

  let make ~n ~e:_ ~f ~delta =
    let inner = make ~n ~f ~delta in
    let wrap (decided : bool) (st, actions) =
      let decided, rev =
        List.fold_left
          (fun (decided, rev) action ->
            match action with
            | Automaton.Send (dst, m) -> (decided, Automaton.Send (dst, m) :: rev)
            | Automaton.Broadcast m -> (decided, Automaton.Broadcast m :: rev)
            | Automaton.Set_timer t -> (decided, Automaton.Set_timer t :: rev)
            | Automaton.Cancel_timer id -> (decided, Automaton.Cancel_timer id :: rev)
            | Automaton.Output (Committed _) -> (decided, rev)
            | Automaton.Output (Executed c) ->
                if decided then (decided, rev)
                else (true, Automaton.Output c.Cmd.payload :: rev))
          (decided, []) actions
      in
      ({ inner = st; decided }, List.rev rev)
    in
    let init ~self ~n = wrap false (inner.Automaton.init ~self ~n) in
    let on_message s ~src m = wrap s.decided (inner.Automaton.on_message s.inner ~src m) in
    let on_input s v =
      wrap s.decided
        (inner.Automaton.on_input s.inner
           { Cmd.origin = s.inner.self; key = 0; payload = v })
    in
    let on_timer s id = wrap s.decided (inner.Automaton.on_timer s.inner id) in
    let state_copy s = { s with inner = inner.Automaton.state_copy s.inner } in
    let state_fingerprint =
      Option.map
        (fun fp ~relabel s ->
          Dsim.Fingerprint.mix (fp ~relabel s.inner) (Dsim.Fingerprint.bool s.decided))
        inner.Automaton.state_fingerprint
    in
    { Automaton.init; on_message; on_input; on_timer; state_copy; state_fingerprint }
end

let protocol : Proto.Protocol.t = (module Consensus)
