module Rng = Stdext.Rng

let common_value = 0

let proposals ~rng ~n ~rate =
  List.init n (fun p ->
      let deviates = Rng.float rng 1.0 < rate in
      (* Distinct deviators propose p+1, guaranteeing pairwise-distinct
         values all above the common one. *)
      let v = if deviates then p + 1 else common_value in
      (0, p, v))

let proposer_subset ~rng ~n ~count ~rate =
  let chosen = List.filteri (fun i _ -> i < count) (Rng.shuffle rng (Dsim.Pid.all ~n)) in
  List.map
    (fun p ->
      let deviates = Rng.float rng 1.0 < rate in
      let v = if deviates then p + 1 else common_value in
      (0, p, v))
    chosen

let key ~rng ~keys ~hot_rate =
  if keys < 1 then invalid_arg "Conflict.key: keys < 1";
  if hot_rate < 0.0 || hot_rate > 1.0 then invalid_arg "Conflict.key: hot_rate outside [0, 1]";
  if keys = 1 then 0
  else if Rng.float rng 1.0 < hot_rate then 0
  else 1 + Rng.int rng (keys - 1)

let is_conflicting proposals =
  let values = List.sort_uniq Int.compare (List.map (fun (_, _, v) -> v) proposals) in
  List.length values > 1
