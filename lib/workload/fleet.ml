module Rng = Stdext.Rng
module Metrics = Stdext.Metrics
module Time = Dsim.Time

type arrival = Closed of { think : int } | Open of { rate_per_client : float }

type config = {
  clients : int;
  arrival : arrival;
  keys : int;
  hot_rate : float;
  read_rate : float;
  horizon : int;
  tick : int;
}

type result = {
  submitted : int;
  completed : int;
  latencies : int array;
  slots_applied : int;
  mean_batch : float;
  max_batch : int;
  converged : bool;
  horizon : int;
  history : Checker.History.t;
  outstanding_end : int;
}

(* One client operation as the fleet observed it; respond/ret are patched
   in when the op's proxy applies it, so ops still in flight at the end of
   the run surface as incomplete history events rather than vanishing. *)
type hrec = {
  h_client : int;
  h_key : int;
  h_kind : Checker.History.kind;
  h_invoke : Time.t;
  mutable h_respond : Time.t option;
  mutable h_ret : int option;
}

let commits_per_sec r =
  if r.horizon <= 0 then 0.0
  else float_of_int r.completed *. 1000.0 /. float_of_int r.horizon

(* Latencies land in the same buckets as WAN RTT scales: milliseconds from
   one-way up to multi-second queueing collapse. *)
let latency_buckets =
  [| 10; 25; 50; 100; 200; 400; 800; 1_600; 3_200; 6_400; 12_800; 25_600 |]

let batch_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128 |]

let run ~protocol ~e ~f ?n ~topology ?(jitter = 0) ?(pipeline = 1) ?(batch_max = 1)
    ?(seed = 0) ?faults ?(metrics = Metrics.disabled) ?causality ?mutation config =
  let (module P : Proto.Protocol.S) = protocol in
  let n = match n with Some n -> n | None -> P.min_n ~e ~f in
  let { clients; arrival; keys; hot_rate; read_rate; horizon; tick } = config in
  if clients < 1 then invalid_arg "Fleet.run: clients < 1";
  if clients > Smr.Kv.max_client then invalid_arg "Fleet.run: clients beyond Kv.max_client";
  if horizon < 1 then invalid_arg "Fleet.run: horizon < 1";
  if tick < 1 then invalid_arg "Fleet.run: tick < 1";
  if read_rate < 0.0 || read_rate > 1.0 then invalid_arg "Fleet.run: read_rate outside [0, 1]";
  let delta = Topology.max_oneway topology + jitter + 10 in
  let net =
    Checker.Scenario.Wan { latency = Topology.latency_fn topology; jitter }
  in
  let rng = Rng.create ~seed:(seed lxor 0x5eed_f1ee) in
  let proxy c : Dsim.Pid.t = c mod n in
  let fresh_op c =
    let key = Conflict.key ~rng ~keys ~hot_rate in
    (* The kind draw happens only when reads are enabled, so a
       [read_rate = 0.0] run consumes exactly the pre-read RNG stream and
       seeded all-write baselines stay byte-identical. *)
    let action =
      if read_rate > 0.0 && Rng.float rng 1.0 < read_rate then Smr.Kv.Get
      else Smr.Kv.Put (Rng.int rng 1024)
    in
    Smr.Kv.encode { Smr.Kv.client = c; key; action }
  in
  let m_submitted = Metrics.counter metrics "smr.commands.submitted" in
  let m_completed = Metrics.counter metrics "smr.commands.completed" in
  let m_latency = Metrics.histogram metrics ~buckets:latency_buckets "smr.latency_ms" in
  let m_batch = Metrics.histogram metrics ~buckets:batch_buckets "smr.batch_size" in
  (* Submissions outstanding per command word, FIFO (a client resubmitting
     an identical op is a later queue entry; distinct clients can never
     collide because the client id is part of the word). *)
  let outstanding : (Proto.Value.t, (int * Time.t * hrec) Queue.t) Hashtbl.t =
    Hashtbl.create (4 * clients)
  in
  let submitted = ref 0 in
  let history_rev = ref [] in
  let note_outstanding cmd client at =
    let q =
      match Hashtbl.find_opt outstanding cmd with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add outstanding cmd q;
          q
    in
    let op = Smr.Kv.decode cmd in
    let r =
      {
        h_client = client;
        h_key = op.Smr.Kv.key;
        h_kind =
          (match op.Smr.Kv.action with
          | Smr.Kv.Put v -> Checker.History.Write v
          | Smr.Kv.Get -> Checker.History.Read);
        h_invoke = at;
        h_respond = None;
        h_ret = None;
      }
    in
    history_rev := r :: !history_rev;
    Queue.add (client, at, r) q;
    incr submitted;
    Metrics.incr m_submitted
  in
  (* Pre-scheduled submissions: closed-loop clients stagger their first
     command over one delta; open-loop clients get their whole Poisson
     arrival train up front (arrivals do not depend on completions). *)
  let initial_commands =
    match arrival with
    | Closed _ ->
        List.init clients (fun c ->
            let at = Rng.int rng (max 1 delta) in
            let cmd = fresh_op c in
            note_outstanding cmd c at;
            (at, proxy c, cmd))
    | Open { rate_per_client } ->
        if rate_per_client <= 0.0 then invalid_arg "Fleet.run: rate_per_client <= 0";
        let mean_gap_ms = 1000.0 /. rate_per_client in
        let arrivals = ref [] in
        for c = 0 to clients - 1 do
          let t = ref 0.0 in
          let continue = ref true in
          while !continue do
            let u = Rng.float rng 1.0 in
            t := !t +. (mean_gap_ms *. -.log (1.0 -. u));
            if !t >= float_of_int horizon then continue := false
            else begin
              let at = int_of_float !t in
              let cmd = fresh_op c in
              note_outstanding cmd c at;
              arrivals := (at, proxy c, cmd) :: !arrivals
            end
          done
        done;
        List.rev !arrivals
  in
  let inst =
    Smr.Replica.Instance.create ~protocol ~n ~e ~f ~delta ~net ~seed ~pipeline ~batch_max
      ~commands:initial_commands ?faults ~metrics ?causality ?mutation
      ~max_steps:2_000_000_000 ()
  in
  let latencies_rev = ref [] in
  let completed = ref 0 in
  let on_apply time pid _slot cmd ret =
    match Hashtbl.find_opt outstanding cmd with
    | None -> ()
    | Some q when Queue.is_empty q -> Hashtbl.remove outstanding cmd
    | Some q ->
        let client, at, r = Queue.peek q in
        if Dsim.Pid.equal pid (proxy client) then begin
          ignore (Queue.pop q);
          (* Reclaim drained queues: without this every completed command
             word leaves an empty queue behind forever, and a long run's
             table grows with the number of distinct commands ever issued
             instead of the in-flight count. *)
          if Queue.is_empty q then Hashtbl.remove outstanding cmd;
          r.h_respond <- Some time;
          r.h_ret <- Some ret;
          let latency = time - at in
          latencies_rev := latency :: !latencies_rev;
          incr completed;
          Metrics.incr m_completed;
          Metrics.observe m_latency latency;
          match arrival with
          | Open _ -> ()
          | Closed { think } ->
              let at' = max (Smr.Replica.Instance.now inst) (time + think) in
              if at' < horizon then begin
                let cmd' = fresh_op client in
                note_outstanding cmd' client at';
                Smr.Replica.Instance.submit inst ~at:at' ~proxy:(proxy client) cmd'
              end
        end
  in
  (* Tick-stepped drive: run a slice of virtual time, drain the new apply
     events (which, closed-loop, schedules the next commands), repeat. *)
  let quiescent = ref false in
  let t = ref 0 in
  while (not !quiescent) && !t < horizon do
    t := min horizon (!t + tick);
    (match Smr.Replica.Instance.run ~until:!t inst with
    | Dsim.Engine.Quiescent ->
        (* Nothing left to process and, open-loop, nothing more arrives. *)
        Smr.Replica.Instance.drain_new_outputs inst ~f:on_apply;
        (match arrival with Open _ -> quiescent := true | Closed _ -> ())
    | Dsim.Engine.Reached_until -> Smr.Replica.Instance.drain_new_outputs inst ~f:on_apply
    | Dsim.Engine.Step_budget_exhausted ->
        Smr.Replica.Instance.drain_new_outputs inst ~f:on_apply;
        quiescent := true)
  done;
  (* Batch-size distribution from one replica's applied slots. *)
  let slots_applied, mean_batch, max_batch =
    let log = Smr.Replica.Instance.applied_log inst 0 in
    let sizes = Hashtbl.create 256 in
    List.iter
      (fun (slot, _) ->
        Hashtbl.replace sizes slot (1 + Option.value ~default:0 (Hashtbl.find_opt sizes slot)))
      log;
    let slots = Hashtbl.length sizes in
    let total = List.length log in
    let max_batch = Hashtbl.fold (fun _ k acc -> max k acc) sizes 0 in
    Hashtbl.iter (fun _ k -> Metrics.observe m_batch k) sizes;
    ( slots,
      (if slots = 0 then 0.0 else float_of_int total /. float_of_int slots),
      max_batch )
  in
  let history =
    Checker.History.sort
      (List.rev_map
         (fun r ->
           {
             Checker.History.client = r.h_client;
             key = r.h_key;
             kind = r.h_kind;
             invoke = r.h_invoke;
             respond = r.h_respond;
             ret = r.h_ret;
           })
         !history_rev)
  in
  {
    submitted = !submitted;
    completed = !completed;
    latencies = Array.of_list (List.rev !latencies_rev);
    slots_applied;
    mean_batch;
    max_batch;
    converged = Smr.Replica.Instance.converged inst;
    horizon;
    history;
    outstanding_end = Hashtbl.length outstanding;
  }
