(** Proposal workload generator with a tunable conflict rate.

    For single-shot consensus, a "conflict" is the simultaneous proposal of
    different values — the situation that kicks fast protocols off their
    fast path. [rate = 0.0] makes everyone propose one common value;
    [rate = 1.0] gives every proposer its own distinct value; in between,
    each proposer independently deviates from the common value with
    probability [rate]. *)

val proposals :
  rng:Stdext.Rng.t ->
  n:int ->
  rate:float ->
  (Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list
(** One proposal per process at time 0. Distinct deviating proposers get
    distinct values, and the common value is the smallest, so a deviator
    always out-bids the crowd (the adversarial case for value-ordered fast
    paths). *)

val proposer_subset :
  rng:Stdext.Rng.t ->
  n:int ->
  count:int ->
  rate:float ->
  (Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list
(** Object-style workload: only [count] random processes propose. *)

val is_conflicting : (Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list -> bool
(** True when at least two distinct values are proposed. *)

val key : rng:Stdext.Rng.t -> keys:int -> hot_rate:float -> int
(** Keyspace contention for SMR workloads: with probability [hot_rate] the
    hot key 0, otherwise uniform over [1 .. keys - 1] (always 0 when
    [keys = 1]). Raises [Invalid_argument] if [keys < 1] or [hot_rate] is
    outside [0, 1]. *)
