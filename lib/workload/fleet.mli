(** A simulated client fleet driving the SMR deployment.

    The paper's WAN framing (§1) makes {e proxy-side} decision latency the
    client-visible cost of consensus; this module measures it end to end:
    thousands of clients submit KV commands through their proxy replica
    (client [c] uses replica [c mod n]) over a {!Topology} WAN, and each
    command's submit→apply latency at that proxy is recorded.

    Two arrival disciplines: {e closed-loop} clients keep exactly one
    command in flight and resubmit [think] ms after completion (throughput
    self-clocks to the system's capacity); {e open-loop} clients submit on
    a Poisson process regardless of completions (offered load is fixed, so
    an underprovisioned configuration visibly queues — the regime where
    batching and pipelining pay).

    Runs are deterministic: same configuration and seed give byte-identical
    latency samples. *)

type arrival =
  | Closed of { think : int }  (** think time in ms between completion and resubmit *)
  | Open of { rate_per_client : float }  (** Poisson arrivals, commands per second *)

type config = {
  clients : int;  (** fleet size (at most {!Smr.Kv.max_client}) *)
  arrival : arrival;
  keys : int;  (** keyspace size, see {!Conflict.key} *)
  hot_rate : float;  (** probability a command hits the hot key *)
  read_rate : float;
      (** probability a command is a [Get] (in [\[0, 1\]]); at [0.0] no
          extra RNG draws happen, so all-write runs reproduce pre-read
          seeded baselines byte-identically *)
  horizon : int;  (** virtual ms of measured run *)
  tick : int;  (** drive granularity in virtual ms (bounds closed-loop resubmit skew) *)
}

type result = {
  submitted : int;
  completed : int;  (** commands applied at their proxy within the horizon *)
  latencies : int array;  (** submit→proxy-apply ms, in completion order *)
  slots_applied : int;  (** consensus slots replica 0 applied *)
  mean_batch : float;  (** commands per applied slot *)
  max_batch : int;
  converged : bool;  (** {!Smr.Replica.Instance.converged} at the end *)
  horizon : int;
  history : Checker.History.t;
      (** every submitted op with invoke/respond times and returned value,
          invoke order; ops still in flight at the end are incomplete
          events — checkable with {!Checker.Linearizability.check_history} *)
  outstanding_end : int;
      (** command words still awaiting their proxy apply when the run
          ended; bounded by [submitted - completed] now that drained
          queues are reclaimed (they used to accumulate forever) *)
}

val commits_per_sec : result -> float
(** Completed commands per virtual second over the horizon. *)

val run :
  protocol:Proto.Protocol.t ->
  e:int ->
  f:int ->
  ?n:int ->
  topology:Topology.t ->
  ?jitter:int ->
  ?pipeline:int ->
  ?batch_max:int ->
  ?seed:int ->
  ?faults:Dsim.Network.Fault.plan ->
  ?metrics:Stdext.Metrics.t ->
  ?causality:Dsim.Causality.t ->
  ?mutation:Smr.Replica.mutation ->
  config ->
  result
(** [n] defaults to the protocol's [min_n ~e ~f]; Δ is derived from the
    topology's worst one-way latency plus [jitter] (default 0).
    [pipeline]/[batch_max] (default 1/1) are the replica's knobs. When
    [metrics] is given, [smr.commands.submitted]/[smr.commands.completed]
    counters and [smr.latency_ms]/[smr.batch_size] histograms are recorded
    alongside the engine's own probes. [causality] attaches a causal span
    tracer to the run's engine (see {!Smr.Replica.Instance.create}) for
    per-command critical-path reconstruction via {!Smr.Spans}; recording
    never perturbs the run. [mutation] injects a deliberate
    object-level replica bug (checker mutation testing). Raises
    [Invalid_argument] on a non-positive knob, a [read_rate] outside
    [0, 1], or a fleet larger than the {!Smr.Kv} client space. *)
