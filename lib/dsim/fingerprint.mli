(** 64-bit structural fingerprint combinators.

    The building blocks for {!Automaton.t}'s [state_fingerprint] hook and
    {!Engine.fingerprint}: protocols fold their state fields through these
    to produce a fast structural hash that the explorer's visited set
    ({!Stdext.Stateset}) keys on.

    Two disciplines matter for soundness of the resulting dedup:
    {ul
    {- {b Order-independence for unordered containers.} [Pid.Set]/[Pid.Map]
       values must be folded with the {e commutative} combiner ({!commute},
       or the [set]/[map] helpers), never with the sequential {!mix} over
       the container's internal iteration order — balanced-tree shapes
       depend on insertion history, and [relabel] (below) can reorder keys.
       Ordered content (lists, sequential fields) uses {!mix}, which is
       order-{e sensitive} by design.}
    {- {b Pid relabelling.} Hooks receive a [relabel : Pid.t -> Pid.t]
       function and must apply it to {e every} pid-valued field (including
       [self] and pids inside sets/maps/options). The engine uses it to
       canonicalise process identities for symmetry reduction: with
       [relabel = Fun.id] the fingerprint is the exact one; with a
       collapsing function it becomes pid-blind (the sort key); with a
       permutation it is the canonical orbit representative.}} *)

type t = int64

val zero : t

val mix : t -> t -> t
(** Sequential combiner: [mix acc x] absorbs [x] into [acc]. Order
    sensitive — [mix (mix z a) b <> mix (mix z b) a] in general. *)

val commute : t -> t -> t
(** Commutative, associative combiner for multisets: fold container
    elements' fingerprints with [commute] and the result is independent of
    iteration order. Absorb the result into the running accumulator with
    {!mix} afterwards. *)

val int : int -> t

val bool : bool -> t

val option : ('a -> t) -> 'a option -> t
(** Distinguishes [None] from [Some x] for every [x]. *)

val list : ('a -> t) -> 'a list -> t
(** Order-sensitive fold (lists are ordered content). *)

val set : ('a -> t) -> fold:(('a -> t -> t) -> 's -> t -> t) -> 's -> t
(** Order-independent fingerprint of a set given its [fold]:
    [set elt ~fold:Pid.Set.fold s]. *)

val map : ('k -> 'v -> t) -> fold:(('k -> 'v -> t -> t) -> 'm -> t -> t) -> 'm -> t
(** Order-independent fingerprint of a map's bindings given its [fold]. *)

val structural : 'a -> t
(** Generic structural hash (via [Hashtbl.hash_param]) for values without
    a hand-written fingerprint — e.g. message payloads. Deterministic, but
    only ~30 bits of entropy and sensitive to the internal shape of any
    balanced-tree container inside the value; acceptable for payloads
    mixed into a wider key, not for whole states. *)
