type t = int64

let zero = 0L

(* SplitMix64 finalizer: the standard full-avalanche 64-bit mixer. *)
let finalize z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Absorb-then-avalanche: multiplying the accumulator by an odd constant
   before adding the next word makes the combiner order-sensitive, and the
   finalizer spreads every input bit over the word. *)
let mix acc x = finalize (Int64.add (Int64.mul acc 6364136223846793005L) x)

(* Addition of finalized element hashes: commutative and associative, so
   any fold order over an unordered container yields the same value. Each
   element is avalanched first so that structured element values don't
   cancel each other. *)
let commute a b = Int64.add a b

let int i = finalize (Int64.of_int i)

let bool b = if b then 3L else 5L

let option f = function None -> 7L | Some x -> mix 11L (f x)

let list f l = List.fold_left (fun acc x -> mix acc (f x)) 13L l

let set elt ~fold s = fold (fun x acc -> commute acc (finalize (elt x))) s 17L

let map binding ~fold m = fold (fun k v acc -> commute acc (finalize (binding k v))) m 19L

let structural v = finalize (Int64.of_int (Hashtbl.hash_param 256 256 v))
