type ('msg, 'input, 'output) entry =
  | Sent of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg }
  | Delivered of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }
  | Input of { time : Time.t; pid : Pid.t; input : 'input }
  | Output of { time : Time.t; pid : Pid.t; output : 'output }
  | Timer_fired of { time : Time.t; pid : Pid.t; id : Automaton.timer_id }
  | Crashed of { time : Time.t; pid : Pid.t }
  | Dropped of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }
  | Duplicated of {
      time : Time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : 'msg;
      sent_at : Time.t;
      extra_delay : int;
    }

type ('msg, 'input, 'output) t = ('msg, 'input, 'output) entry list

let outputs t =
  List.filter_map
    (function Output { time; pid; output } -> Some (time, pid, output) | _ -> None)
    t

let outputs_of t p =
  List.filter_map
    (function
      | Output { time; pid; output } when Pid.equal pid p -> Some (time, output)
      | _ -> None)
    t

let first_output t =
  match outputs t with [] -> None | o :: _ -> Some o

let inputs t =
  List.filter_map
    (function Input { time; pid; input } -> Some (time, pid, input) | _ -> None)
    t

let crashes t =
  List.filter_map (function Crashed { time; pid } -> Some (time, pid) | _ -> None) t

let crashed_set t = Pid.set_of_list (List.map snd (crashes t))

let message_count t =
  List.length (List.filter (function Sent _ -> true | _ -> false) t)

let drop_count t =
  List.length (List.filter (function Dropped _ -> true | _ -> false) t)

let duplicate_count t =
  List.length (List.filter (function Duplicated _ -> true | _ -> false) t)

let timer_fire_count t =
  List.length (List.filter (function Timer_fired _ -> true | _ -> false) t)

let decide_count t =
  List.length (List.filter (function Output _ -> true | _ -> false) t)

(* Per-pid first Input -> first Output gap: the decision latency the
   telemetry layer reports. Entries are chronological, so keeping the first
   of each suffices. *)
let decision_latencies t =
  let first tbl pid time = if not (Hashtbl.mem tbl pid) then Hashtbl.add tbl pid time in
  let ins = Hashtbl.create 8 and outs = Hashtbl.create 8 in
  List.iter
    (function
      | Input { time; pid; _ } -> first ins pid time
      | Output { time; pid; _ } -> first outs pid time
      | _ -> ())
    t;
  Hashtbl.fold
    (fun pid out_t acc ->
      match Hashtbl.find_opt ins pid with
      | Some in_t -> (pid, out_t - in_t) :: acc
      | None -> acc)
    outs []
  |> List.sort (fun (a, _) (b, _) -> Pid.compare a b)

let pp ?pp_msg ?pp_input ?pp_output fmt t =
  let pp_opt pp fmt x =
    match pp with Some pp -> pp fmt x | None -> Format.pp_print_string fmt "_"
  in
  let entry fmt = function
    | Sent { time; src; dst; msg } ->
        Format.fprintf fmt "%a %a -> %a send %a" Time.pp time Pid.pp src Pid.pp dst
          (pp_opt pp_msg) msg
    | Delivered { time; src; dst; msg; sent_at } ->
        Format.fprintf fmt "%a %a -> %a recv %a (sent %a)" Time.pp time Pid.pp src Pid.pp
          dst (pp_opt pp_msg) msg Time.pp sent_at
    | Input { time; pid; input } ->
        Format.fprintf fmt "%a %a input %a" Time.pp time Pid.pp pid (pp_opt pp_input) input
    | Output { time; pid; output } ->
        Format.fprintf fmt "%a %a output %a" Time.pp time Pid.pp pid (pp_opt pp_output)
          output
    | Timer_fired { time; pid; id } ->
        Format.fprintf fmt "%a %a timer %d" Time.pp time Pid.pp pid id
    | Crashed { time; pid } -> Format.fprintf fmt "%a %a CRASH" Time.pp time Pid.pp pid
    | Dropped { time; src; dst; msg; sent_at } ->
        Format.fprintf fmt "%a %a -> %a DROP %a (sent %a)" Time.pp time Pid.pp src Pid.pp
          dst (pp_opt pp_msg) msg Time.pp sent_at
    | Duplicated { time; src; dst; msg; sent_at; extra_delay } ->
        Format.fprintf fmt "%a %a -> %a DUP(+%d) %a (sent %a)" Time.pp time Pid.pp src
          Pid.pp dst extra_delay (pp_opt pp_msg) msg Time.pp sent_at
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_newline entry fmt t

(* -- structured export -------------------------------------------------- *)

module Json = Stdext.Json

let entry_to_json ~msg ~input ~output entry =
  let base event time rest = ("event", Json.String event) :: ("time", Json.Int time) :: rest in
  let link src dst rest = ("src", Json.Int src) :: ("dst", Json.Int dst) :: rest in
  Json.Obj
    (match entry with
    | Sent { time; src; dst; msg = m } -> base "sent" time (link src dst [ ("msg", msg m) ])
    | Delivered { time; src; dst; msg = m; sent_at } ->
        base "delivered" time (link src dst [ ("msg", msg m); ("sent_at", Json.Int sent_at) ])
    | Input { time; pid; input = i } -> base "input" time [ ("pid", Json.Int pid); ("input", input i) ]
    | Output { time; pid; output = o } ->
        base "output" time [ ("pid", Json.Int pid); ("output", output o) ]
    | Timer_fired { time; pid; id } ->
        base "timer_fired" time [ ("pid", Json.Int pid); ("id", Json.Int id) ]
    | Crashed { time; pid } -> base "crashed" time [ ("pid", Json.Int pid) ]
    | Dropped { time; src; dst; msg = m; sent_at } ->
        base "dropped" time (link src dst [ ("msg", msg m); ("sent_at", Json.Int sent_at) ])
    | Duplicated { time; src; dst; msg = m; sent_at; extra_delay } ->
        base "duplicated" time
          (link src dst
             [ ("msg", msg m); ("sent_at", Json.Int sent_at); ("extra_delay", Json.Int extra_delay) ]))

let to_jsonl ~msg ~input ~output fmt t =
  List.iter
    (fun entry -> Format.fprintf fmt "%s@." (Json.to_string (entry_to_json ~msg ~input ~output entry)))
    t

(* -- columnar export ----------------------------------------------------- *)

let table_schema = [ "event"; "time"; "src"; "dst"; "pid"; "payload"; "sent_at"; "extra" ]

let event_code = function
  | Sent _ -> 0
  | Delivered _ -> 1
  | Input _ -> 2
  | Output _ -> 3
  | Timer_fired _ -> 4
  | Crashed _ -> 5
  | Dropped _ -> 6
  | Duplicated _ -> 7

let event_name = function
  | 0 -> Some "sent"
  | 1 -> Some "delivered"
  | 2 -> Some "input"
  | 3 -> Some "output"
  | 4 -> Some "timer_fired"
  | 5 -> Some "crashed"
  | 6 -> Some "dropped"
  | 7 -> Some "duplicated"
  | _ -> None

let to_table ?msg ?input ?output t =
  let n = List.length t in
  let cols = Array.init (List.length table_schema) (fun _ -> Array.make n (-1)) in
  let enc f x = match f with Some f -> f x | None -> -1 in
  List.iteri
    (fun row entry ->
      let set c v = cols.(c).(row) <- v in
      set 0 (event_code entry);
      (match entry with
      | Sent { time; src; dst; msg = m } ->
          set 1 time; set 2 src; set 3 dst; set 5 (enc msg m)
      | Delivered { time; src; dst; msg = m; sent_at } ->
          set 1 time; set 2 src; set 3 dst; set 5 (enc msg m); set 6 sent_at
      | Input { time; pid; input = i } -> set 1 time; set 4 pid; set 5 (enc input i)
      | Output { time; pid; output = o } -> set 1 time; set 4 pid; set 5 (enc output o)
      | Timer_fired { time; pid; id } -> set 1 time; set 4 pid; set 5 id
      | Crashed { time; pid } -> set 1 time; set 4 pid
      | Dropped { time; src; dst; msg = m; sent_at } ->
          set 1 time; set 2 src; set 3 dst; set 5 (enc msg m); set 6 sent_at
      | Duplicated { time; src; dst; msg = m; sent_at; extra_delay } ->
          set 1 time; set 2 src; set 3 dst; set 5 (enc msg m); set 6 sent_at;
          set 7 extra_delay))
    t;
  { Stdext.Rle.schema = table_schema; columns = Array.to_list cols }
