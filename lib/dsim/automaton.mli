(** Protocol automata: the interface every protocol implements.

    An automaton is a record of pure transition functions over an opaque
    state. Each transition returns the successor state together with a list
    of actions (messages to send, timers to (re)set, outputs such as
    consensus decisions). The engine interprets actions; protocols never
    perform effects themselves, which keeps every run deterministic and
    replayable.

    Type parameters: ['state] protocol state, ['msg] wire messages,
    ['input] environment inputs (e.g. [propose v] invocations),
    ['output] environment outputs (e.g. decisions). *)

type timer_id = int

type ('msg, 'output) action =
  | Send of Pid.t * 'msg  (** Unicast. Sending to self is delivered like any message. *)
  | Broadcast of 'msg  (** Send to every process except self. *)
  | Set_timer of { id : timer_id; after : Time.t }
      (** (Re)arm timer [id] to fire [after] ticks from now. Re-arming an
          already-armed timer replaces its deadline. *)
  | Cancel_timer of timer_id
  | Output of 'output  (** Deliver a value to the environment (recorded in the trace). *)

type ('state, 'msg, 'input, 'output) t = {
  init : self:Pid.t -> n:int -> 'state * ('msg, 'output) action list;
      (** Called once per process at time 0, before any other event. *)
  on_message : 'state -> src:Pid.t -> 'msg -> 'state * ('msg, 'output) action list;
      (** Must be tolerant of duplicate deliveries: the fault-injection
          layer ({!Network.Fault}) may deliver the same message twice, so
          any counting keyed on message arrival (rather than on the sender
          set) breaks safety. The protocols in this repository key their
          tallies by sender ([Pid.Set]/[Pid.Map]), which is idempotent by
          construction. *)
  on_input : 'state -> 'input -> 'state * ('msg, 'output) action list;
  on_timer : 'state -> timer_id -> 'state * ('msg, 'output) action list;
  state_copy : 'state -> 'state;
      (** Duplicate a process state so that {!Engine.clone} can branch a run
          without the two copies aliasing. [Fun.id] is correct whenever the
          state is a pure immutable value — which holds for every protocol
          in this repository; a protocol that hides mutable structure
          (hash tables, arrays) inside its state must deep-copy it here.
          Must only read its argument: the parallel explorer clones one
          engine from several domains concurrently. *)
  state_fingerprint : (relabel:(Pid.t -> Pid.t) -> 'state -> Fingerprint.t) option;
      (** Optional structural hash of a process state, enabling
          {!Engine.fingerprint} and hence the explorer's visited-set
          deduplication. Must be a pure function of the state's logical
          content — independent of construction history (fold unordered
          containers commutatively, see {!Fingerprint}) — and must route
          {e every} pid-valued field (including [self] and pids inside
          sets, maps and options) through [relabel], which the engine
          instantiates as the identity for exact dedup and as a pid
          permutation for symmetry reduction. [None] disables
          fingerprinting for this automaton. *)
}

val no_input : 'state -> 'input -> 'state * ('msg, 'output) action list
(** Convenience [on_input] for protocols that take no environment inputs. *)

val no_timer : 'state -> timer_id -> 'state * ('msg, 'output) action list
(** Convenience [on_timer] for protocols without timers. *)

val map_msg : ('a -> 'b) -> ('a, 'output) action list -> ('b, 'output) action list
(** Re-wrap the messages of a sub-component's actions into the enclosing
    protocol's message type (e.g. Ω heartbeats inside a consensus
    protocol). *)
