type timer_id = int

type ('msg, 'output) action =
  | Send of Pid.t * 'msg
  | Broadcast of 'msg
  | Set_timer of { id : timer_id; after : Time.t }
  | Cancel_timer of timer_id
  | Output of 'output

type ('state, 'msg, 'input, 'output) t = {
  init : self:Pid.t -> n:int -> 'state * ('msg, 'output) action list;
  on_message : 'state -> src:Pid.t -> 'msg -> 'state * ('msg, 'output) action list;
  on_input : 'state -> 'input -> 'state * ('msg, 'output) action list;
  on_timer : 'state -> timer_id -> 'state * ('msg, 'output) action list;
  state_copy : 'state -> 'state;
  state_fingerprint : (relabel:(Pid.t -> Pid.t) -> 'state -> Fingerprint.t) option;
}

let no_input state _ = (state, [])

let no_timer state _ = (state, [])

let map_msg f actions =
  List.map
    (function
      | Send (dst, m) -> Send (dst, f m)
      | Broadcast m -> Broadcast (f m)
      | Set_timer t -> Set_timer t
      | Cancel_timer id -> Cancel_timer id
      | Output o -> Output o)
    actions
