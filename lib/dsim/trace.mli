(** Execution traces.

    The engine records every observable event; property checkers work over
    traces rather than protocol internals, so they apply uniformly to every
    protocol. *)

type ('msg, 'input, 'output) entry =
  | Sent of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg }
  | Delivered of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }
  | Input of { time : Time.t; pid : Pid.t; input : 'input }
  | Output of { time : Time.t; pid : Pid.t; output : 'output }
  | Timer_fired of { time : Time.t; pid : Pid.t; id : Automaton.timer_id }
  | Crashed of { time : Time.t; pid : Pid.t }
  | Dropped of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }
      (** The fault layer lost this message: it was sent at [sent_at]
          ([Sent] precedes it) but will never be delivered. [time] is when
          the loss happened — equal to [sent_at] for in-flight drops by a
          fault plan, later for explorer drops of pooled messages. *)
  | Duplicated of {
      time : Time.t;
      src : Pid.t;
      dst : Pid.t;
      msg : 'msg;
      sent_at : Time.t;
      extra_delay : int;
    }
      (** The fault layer scheduled an extra copy of the message originally
          sent at [sent_at], as if re-sent [extra_delay] ticks after the
          original. *)

type ('msg, 'input, 'output) t = ('msg, 'input, 'output) entry list
(** Chronological order. *)

val outputs : ('msg, 'input, 'output) t -> (Time.t * Pid.t * 'output) list
(** All environment outputs, chronological. *)

val outputs_of : ('msg, 'input, 'output) t -> Pid.t -> (Time.t * 'output) list

val first_output : ('msg, 'input, 'output) t -> (Time.t * Pid.t * 'output) option

val inputs : ('msg, 'input, 'output) t -> (Time.t * Pid.t * 'input) list

val crashes : ('msg, 'input, 'output) t -> (Time.t * Pid.t) list

val crashed_set : ('msg, 'input, 'output) t -> Pid.Set.t

val message_count : ('msg, 'input, 'output) t -> int
(** Number of [Sent] entries. *)

val drop_count : ('msg, 'input, 'output) t -> int
(** Number of fault-injected [Dropped] entries. *)

val duplicate_count : ('msg, 'input, 'output) t -> int
(** Number of fault-injected [Duplicated] entries. *)

val timer_fire_count : ('msg, 'input, 'output) t -> int
(** Number of [Timer_fired] entries. *)

val decide_count : ('msg, 'input, 'output) t -> int
(** Number of [Output] entries (every protocol here outputs exactly its
    decisions). *)

val decision_latencies : ('msg, 'input, 'output) t -> (Pid.t * int) list
(** Per pid with both, the gap in ticks between its first [Input] and its
    first [Output] — the decision latency; divide by Δ for message delays.
    Sorted by pid. Cross-checked against {!Dsim.Engine}'s probe. *)

val pp :
  ?pp_msg:(Format.formatter -> 'msg -> unit) ->
  ?pp_input:(Format.formatter -> 'input -> unit) ->
  ?pp_output:(Format.formatter -> 'output -> unit) ->
  Format.formatter ->
  ('msg, 'input, 'output) t ->
  unit
(** One line per entry. [Dropped] and [Duplicated] print their [sent_at]
    (and [extra_delay]) context exactly like [Delivered] does. *)

(** {2 Structured export}

    The stable JSONL trace schema. Every entry becomes one JSON object with
    an ["event"] discriminator and ["time"]; message-bearing events carry
    ["src"], ["dst"] and ["msg"], process events carry ["pid"]. Exactly the
    constructor's remaining fields follow: ["sent_at"] on [delivered],
    [dropped] and [duplicated]; ["extra_delay"] on [duplicated]; ["id"] on
    [timer_fired]; ["input"]/["output"] payloads on [input]/[output]. The
    [msg]/[input]/[output] callbacks supply the payload encodings. *)

val entry_to_json :
  msg:('msg -> Stdext.Json.t) ->
  input:('input -> Stdext.Json.t) ->
  output:('output -> Stdext.Json.t) ->
  ('msg, 'input, 'output) entry ->
  Stdext.Json.t

val to_jsonl :
  msg:('msg -> Stdext.Json.t) ->
  input:('input -> Stdext.Json.t) ->
  output:('output -> Stdext.Json.t) ->
  Format.formatter ->
  ('msg, 'input, 'output) t ->
  unit
(** One {!entry_to_json} object per line, chronological. *)

(** {2 Columnar export}

    The run-length table rendering for bulk trace dumps (see
    {!Stdext.Rle}): eight integer columns
    [event; time; src; dst; pid; payload; sent_at; extra], one row per
    entry, [-1] for fields a constructor does not carry.  The [event]
    column holds {!event_code}; [payload] holds the encoded
    message/input/output (or the timer id on [Timer_fired]).  Traces are
    near-sorted integer streams, so the table encodes an order of
    magnitude smaller than the JSONL form. *)

val table_schema : string list
(** Column names of {!to_table} output, in order. *)

val event_code : ('msg, 'input, 'output) entry -> int
(** Stable small-int discriminator: [Sent] = 0, [Delivered] = 1,
    [Input] = 2, [Output] = 3, [Timer_fired] = 4, [Crashed] = 5,
    [Dropped] = 6, [Duplicated] = 7. *)

val event_name : int -> string option
(** The JSONL ["event"] string for an {!event_code}, [None] outside 0..7. *)

val to_table :
  ?msg:('msg -> int) ->
  ?input:('input -> int) ->
  ?output:('output -> int) ->
  ('msg, 'input, 'output) t ->
  Stdext.Rle.table
(** Flatten a trace to a {!Stdext.Rle.table}. The optional [msg], [input]
    and [output] encoders map payloads to integers; omitted encoders
    record [-1]. Payloads that already are integers (the SMR layer's
    packed commands) pass through [Fun.id]. *)
