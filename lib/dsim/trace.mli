(** Execution traces.

    The engine records every observable event; property checkers work over
    traces rather than protocol internals, so they apply uniformly to every
    protocol. *)

type ('msg, 'input, 'output) entry =
  | Sent of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg }
  | Delivered of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }
  | Input of { time : Time.t; pid : Pid.t; input : 'input }
  | Output of { time : Time.t; pid : Pid.t; output : 'output }
  | Timer_fired of { time : Time.t; pid : Pid.t; id : Automaton.timer_id }
  | Crashed of { time : Time.t; pid : Pid.t }
  | Dropped of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg }
      (** The fault layer lost this message in flight: it was sent
          ([Sent] precedes it) but will never be delivered. *)
  | Duplicated of { time : Time.t; src : Pid.t; dst : Pid.t; msg : 'msg; extra_delay : int }
      (** The fault layer scheduled an extra copy of this message, as if
          re-sent [extra_delay] ticks after the original. *)

type ('msg, 'input, 'output) t = ('msg, 'input, 'output) entry list
(** Chronological order. *)

val outputs : ('msg, 'input, 'output) t -> (Time.t * Pid.t * 'output) list
(** All environment outputs, chronological. *)

val outputs_of : ('msg, 'input, 'output) t -> Pid.t -> (Time.t * 'output) list

val first_output : ('msg, 'input, 'output) t -> (Time.t * Pid.t * 'output) option

val inputs : ('msg, 'input, 'output) t -> (Time.t * Pid.t * 'input) list

val crashes : ('msg, 'input, 'output) t -> (Time.t * Pid.t) list

val crashed_set : ('msg, 'input, 'output) t -> Pid.Set.t

val message_count : ('msg, 'input, 'output) t -> int
(** Number of [Sent] entries. *)

val drop_count : ('msg, 'input, 'output) t -> int
(** Number of fault-injected [Dropped] entries. *)

val duplicate_count : ('msg, 'input, 'output) t -> int
(** Number of fault-injected [Duplicated] entries. *)

val pp :
  ?pp_msg:(Format.formatter -> 'msg -> unit) ->
  ?pp_input:(Format.formatter -> 'input -> unit) ->
  ?pp_output:(Format.formatter -> 'output -> unit) ->
  Format.formatter ->
  ('msg, 'input, 'output) t ->
  unit
