(** Network models: when and in what order messages are delivered.

    All models implement reliable links (no loss, no duplication, no
    corruption); messages to crashed processes are silently dropped by the
    engine, matching the crash-stop model of the paper. *)

(** How simultaneous deliveries at a round boundary are ordered, per
    recipient. The e-two-step definitions existentially quantify over
    synchronous runs, and within the synchronous model of Definition 2 the
    only freedom left is this per-recipient order — so checkers search over
    order policies. *)
type 'msg order =
  | Arrival  (** Send order (deterministic default). *)
  | Random_order  (** Seeded shuffle, per batch. *)
  | Favor of Pid.t
      (** Messages from the favored sender are delivered first at every
          recipient; remaining messages in arrival order. This is the order
          the paper's existence proofs use ("the [Propose] message sent by
          [p] is the first one accepted by all other correct processes"). *)
  | Sort_by of (src:Pid.t -> 'msg -> int)
      (** Ascending by key; ties in arrival order. *)

type 'msg t =
  | Sync_rounds of { delta : int; order : 'msg order }
      (** The E-faulty synchronous model (Definition 2): every message sent
          during round [k] is delivered precisely at the beginning of round
          [k+1], i.e. at time [k * delta]. *)
  | Partial_sync of { delta : int; gst : Time.t; max_pre_gst : int }
      (** Partial synchrony (Dwork-Lynch-Stockmeyer): after [gst] every
          message takes at most [delta] ticks; before [gst] delays are
          random up to [max_pre_gst] ticks, but every message is delivered
          by [gst + delta] at the latest. *)
  | Uniform of { min_delay : int; max_delay : int }
      (** Every message delayed uniformly in [\[min_delay, max_delay\]];
          used for randomized safety testing. Requires
          [0 < min_delay <= max_delay] (links are causal: zero and negative
          delays are meaningless, and an empty range is a configuration
          error) — {!delivery_time} raises [Invalid_argument] otherwise. *)
  | Wan of { latency : src:Pid.t -> dst:Pid.t -> int; jitter : int }
      (** Deterministic one-way latency matrix plus uniform jitter in
          [\[0, jitter\]]; ticks are interpreted as milliseconds. *)
  | Manual
      (** Sends accumulate in a pending pool; an external driver decides
          what is delivered and when ({!Engine.pending},
          {!Engine.deliver_pending}). Used by the lower-bound splicing
          machinery. *)

val delivery_time :
  'msg t -> rng:Stdext.Rng.t -> now:Time.t -> src:Pid.t -> dst:Pid.t -> Time.t option
(** Delivery time for a message sent at [now], or [None] for {!Manual}
    (pending pool). The result is always [> now]. *)

val order_batch :
  'msg order ->
  rng:Stdext.Rng.t ->
  (Pid.t * 'msg) list ->
  (Pid.t * 'msg) list
(** Reorder one recipient's batch of same-instant deliveries (elements are
    [(src, msg)] in arrival order). *)
