(** Network models: when and in what order messages are delivered — and,
    since the fault-injection layer, whether they are delivered at all.

    The base models below decide delivery {e timing}. Links are reliable by
    default, but every model composes with a {!Fault.plan}: a deterministic
    schedule of per-message {e drops}, {e duplications} (the copy arrives
    with a bounded extra delay) and {e sender crashes} that the engine
    applies on top of the model's timing (see {!Engine.create}'s [faults]
    argument). Fault decisions draw from a dedicated RNG stream derived
    from the engine seed, so (a) the same seed replays the same fault
    trace, and (b) enabling faults never perturbs the base model's delay
    samples. Messages to crashed processes are silently dropped by the
    engine, matching the crash-stop model of the paper. *)

(** How simultaneous deliveries at a round boundary are ordered, per
    recipient. The e-two-step definitions existentially quantify over
    synchronous runs, and within the synchronous model of Definition 2 the
    only freedom left is this per-recipient order — so checkers search over
    order policies. *)
type 'msg order =
  | Arrival  (** Send order (deterministic default). *)
  | Random_order  (** Seeded shuffle, per batch. *)
  | Favor of Pid.t
      (** Messages from the favored sender are delivered first at every
          recipient; remaining messages in arrival order. This is the order
          the paper's existence proofs use ("the [Propose] message sent by
          [p] is the first one accepted by all other correct processes"). *)
  | Sort_by of (src:Pid.t -> 'msg -> int)
      (** Ascending by key; ties in arrival order. *)

type 'msg t =
  | Sync_rounds of { delta : int; order : 'msg order }
      (** The E-faulty synchronous model (Definition 2): every message sent
          during round [k] is delivered precisely at the beginning of round
          [k+1], i.e. at time [k * delta]. *)
  | Partial_sync of { delta : int; gst : Time.t; max_pre_gst : int }
      (** Partial synchrony (Dwork-Lynch-Stockmeyer): after [gst] every
          message takes at most [delta] ticks; before [gst] delays are
          random up to [max_pre_gst] ticks, but every message is delivered
          by [gst + delta] at the latest. Requires [delta >= 1],
          [gst >= 0] and [max_pre_gst >= 1] — {!validate} raises
          [Invalid_argument] otherwise, the same validation contract as
          {!Uniform}. *)
  | Uniform of { min_delay : int; max_delay : int }
      (** Every message delayed uniformly in [\[min_delay, max_delay\]];
          used for randomized safety testing. Requires
          [0 < min_delay <= max_delay] (links are causal: zero and negative
          delays are meaningless, and an empty range is a configuration
          error) — {!validate} raises [Invalid_argument] otherwise. *)
  | Wan of { latency : src:Pid.t -> dst:Pid.t -> int; jitter : int }
      (** Deterministic one-way latency matrix plus uniform jitter in
          [\[0, jitter\]]; ticks are interpreted as milliseconds. *)
  | Manual
      (** Sends accumulate in a pending pool; an external driver decides
          what is delivered and when ({!Engine.pending},
          {!Engine.deliver_pending}). Used by the lower-bound splicing
          machinery and the exhaustive explorer — which also enumerates
          fault choices explicitly ({!Checker.Explore}) instead of drawing
          them from an RNG. *)

val validate : 'msg t -> unit
(** Raise [Invalid_argument] on invalid model parameters ({!Partial_sync},
    {!Uniform}); called once by {!Engine.create} so misconfigurations fail
    at construction rather than at the first send. *)

val delivery_time :
  'msg t -> rng:Stdext.Rng.t -> now:Time.t -> src:Pid.t -> dst:Pid.t -> Time.t option
(** Delivery time for a message sent at [now], or [None] for {!Manual}
    (pending pool). The result is always [> now]. Called once per send on
    the engine's hot path, so it does {e not} re-validate the model —
    construct engines through {!Engine.create} (which calls {!validate})
    or call {!validate} yourself. *)

val order_batch_by :
  'msg order ->
  rng:Stdext.Rng.t ->
  src:('a -> Pid.t) ->
  payload:('a -> 'msg) ->
  'a list ->
  'a list
(** Reorder one recipient's batch of same-instant deliveries, generic over
    the batch element ([src]/[payload] project the sender and the message
    out of an element). The engine passes [(src, msg, sent_at)] triples so
    delivery metadata rides along with the ordering. RNG consumption
    depends only on the batch length, never on the element type. *)

val order_batch :
  'msg order ->
  rng:Stdext.Rng.t ->
  (Pid.t * 'msg) list ->
  (Pid.t * 'msg) list
(** [order_batch_by] specialised to [(src, msg)] pairs in arrival order. *)

(** {2 Fault injection}

    A fault plan decides, per send, whether the message is delivered
    normally, lost, duplicated, or whether its sender crashes mid-send.
    Plans are data (no hidden state): all mutable bookkeeping — the send
    index, the drop/duplication budgets already spent, the fault RNG —
    lives in the engine, is part of {!Engine.clone}, and is replayed
    identically from the same seed. *)
module Fault : sig
  type action =
    | Deliver  (** No fault: the base model's timing applies. *)
    | Drop  (** The message is lost in flight (recorded in the trace). *)
    | Duplicate of { extra_delay : int }
        (** The message is delivered normally {e and} a copy is scheduled
            as if re-sent [extra_delay] ticks later (so the copy respects
            the base model's shape, e.g. lands on a round boundary under
            {!Sync_rounds}). [extra_delay >= 0]. *)
    | Crash_sender
        (** The message itself is still sent, then the sender crash-stops
            at that very instant: any {e later} sends of the same
            transition are suppressed. This models the classic partial
            broadcast — a process failing midway through a broadcast —
            which time-scheduled crash lists cannot express. *)

  type plan =
    | No_faults
    | Random of {
        drop_rate : float;  (** per-send drop probability, in [\[0, 1\]] *)
        dup_rate : float;  (** per-send duplication probability *)
        max_drops : int;  (** at most this many drops per run *)
        max_dups : int;  (** at most this many duplications per run *)
        max_extra_delay : int;  (** duplicate copies delayed in [\[0, max\]] *)
      }
        (** Seeded faults: each send draws (from the engine's dedicated
            fault stream, in a fixed number of draws) whether it is
            dropped, else whether it is duplicated, subject to the
            remaining budgets. *)
    | Script of (int * action) list
        (** Explicit faults by global send index (0-based, the order of
            [Sent] trace entries); unlisted sends are delivered. This is
            how targeted regression scenarios — "lose exactly the third
            [2B]", "crash the decider as its [Decide] leaves" — are
            pinned. *)

  val none : plan

  val random :
    ?drop_rate:float ->
    ?dup_rate:float ->
    ?max_drops:int ->
    ?max_dups:int ->
    ?max_extra_delay:int ->
    unit ->
    plan
  (** Rates default to [0.], budgets to [max_int], [max_extra_delay] to
      [1]. Raises [Invalid_argument] for rates outside [\[0, 1\]], negative
      budgets or a negative [max_extra_delay]. *)

  val script : (int * action) list -> plan
  (** Raises [Invalid_argument] on a negative send index, a negative
      [extra_delay], or a duplicate index. *)

  val decide :
    plan ->
    rng:Stdext.Rng.t ->
    index:int ->
    drops_used:int ->
    dups_used:int ->
    action
  (** The fault decision for send number [index]. For {!Random} plans this
      consumes a fixed number of [rng] draws per call (budgets exhausted or
      not), so the decision stream is a pure function of the seed and the
      send index. *)
end
