(** Deterministic discrete-event simulation engine.

    The engine owns an event queue ordered by (virtual time, event kind,
    insertion order). At equal timestamps the processing order is: crashes,
    process initialisation, environment inputs, message deliveries, timer
    fires — so a process that crashes "at the beginning of round k"
    (Definition 2) takes no step at or after that instant, and round-boundary
    deliveries happen before the 2Δ new-ballot timer at the same instant.

    All randomness (network delays, delivery-order shuffles) comes from the
    engine's seeded RNG: equal seeds and equal set-ups give bit-identical
    runs. Fault injection ({!Network.Fault}) draws from a second stream
    derived from the same seed, so fault traces are equally reproducible
    and enabling faults never perturbs the base model's delay samples.

    Crashes are well-defined at every instant including time 0: a process
    crashed before its initialisation event still receives its initial
    state (its init actions are dropped — it never takes a step), so
    {!state}, {!clone} and {!correct_pids} agree on crashed processes.

    {b Hot-path representation (packing invariants).} The stepping core is
    flat-array and int-packed, which fixes a few widths: event priorities
    pack as [time * 8 + rank] into {!Stdext.Pqueue}'s keys (priorities
    within ±2^38, i.e. virtual times up to ~2^35 ticks); the pending pool
    is a slot-indexed structure of arrays whose send-order recovery packs
    [(seq, slot)] into one int, capping {e live} pending messages at 2^20;
    the timer table is a flat array indexed by [pid * stride + timer_id]
    with epoch 0 meaning "never armed" (the stride grows to cover the
    largest timer id seen, so huge sparse timer ids waste space —
    automata should number timers densely from 0). Exceeding a width
    raises [Invalid_argument] rather than corrupting state. *)

type ('state, 'msg, 'input, 'output) t

(** Per-engine telemetry probe: event counters the engine maintains
    unconditionally (plain field increments — they cost nothing measurable
    and make every run self-describing). Probe state is part of the
    engine's cloneable state: {!clone}/{!snapshot}/{!restore} copy it by
    value, so branched explorations carry independent per-branch probes
    and replay-mode re-execution reproduces the identical probe. *)
module Probe : sig
  type t = {
    steps : int;  (** events processed by {!run} *)
    sent : int;  (** = {!Trace.message_count} of the trace *)
    delivered : int;
    dropped : int;  (** fault-injected losses, = {!Trace.drop_count} *)
    duplicated : int;  (** fault-injected copies, = {!Trace.duplicate_count} *)
    timer_fires : int;
    crashes : int;
    decides : int;  (** environment outputs, = {!Trace.decide_count} *)
    queue_hwm : int;  (** event-queue high-water mark *)
  }

  val zero : t

  val pp : Format.formatter -> t -> unit
end

type run_result =
  | Quiescent  (** Event queue drained. *)
  | Reached_until  (** Stopped at the [until] bound; events remain. *)
  | Step_budget_exhausted  (** Safety valve ({!create}'s [max_steps]). *)

val create :
  automaton:('state, 'msg, 'input, 'output) Automaton.t ->
  n:int ->
  network:'msg Network.t ->
  ?seed:int ->
  ?record_trace:bool ->
  ?disable_timers:bool ->
  ?max_steps:int ->
  ?inputs:(Time.t * Pid.t * 'input) list ->
  ?crashes:(Time.t * Pid.t) list ->
  ?faults:Network.Fault.plan ->
  ?metrics:Stdext.Metrics.t ->
  ?causality:('input, 'output) Causality.spec ->
  unit ->
  ('state, 'msg, 'input, 'output) t
(** Build a simulation of [n] processes. [inputs] schedules environment
    inputs (e.g. proposals); [crashes] schedules crash-stop failures
    (time-0 crashes are valid: the process is initialised then immediately
    crashed, and its scheduled inputs are dropped). [faults] (default
    {!Network.Fault.none}) injects per-send drops, duplications and
    mid-broadcast sender crashes on top of [network]'s timing.
    [record_trace] defaults to [true]; [max_steps] defaults to 5_000_000
    events. Raises [Invalid_argument] if [network] fails
    {!Network.validate}.

    [metrics] (default {!Stdext.Metrics.disabled}) mirrors the {!Probe}
    counters into a shared registry under the [engine.*] names ([steps],
    [sent], [delivered], [dropped], [duplicated], [timer_fires],
    [crashes], [decides] counters and the [queue_hwm] gauge). {!clone}s
    share the registry, so registry totals aggregate across branches while
    {!probe} stays per-engine; with the default disabled registry every
    mirror update is one branch on an immutable bool. The mirror is fed in
    batches — {!run} flushes the counter deltas accumulated since the
    previous flush when it returns — so registry totals lag the live
    {!probe} between [run] calls but always catch up at the next return.

    [causality] (default none) attaches a {!Causality} span tracer: every
    effective event is recorded with a link to the event that caused it
    (see {!Causality} for the exact semantics and the guarantee that
    recording never perturbs the run — traces, outputs and RNG streams
    are byte-identical with and without a tracer). Without a tracer the
    engine stamps inert [-1] origins; the per-event cost is one branch.
    {!clone}s share the tracer's store, like a metrics registry — attach
    tracers to single runs, not branched explorations. *)

val run : ?until:Time.t -> ('state, 'msg, 'input, 'output) t -> run_result
(** Process events until the queue is empty, the next event is strictly
    after [until], or the step budget runs out. Can be called repeatedly
    with increasing [until]. *)

(** {2 Snapshots}

    Branching a partially-run simulation without replaying its prefix: the
    exhaustive checkers extend one cloned engine per explored schedule
    branch, turning O(depth²) replay into O(depth) incremental stepping. *)

val clone : ('state, 'msg, 'input, 'output) t -> ('state, 'msg, 'input, 'output) t
(** Independent deep copy of the engine at its current instant: states
    (via {!Automaton.t}'s [state_copy]), event queue, pending pool, timer
    epochs, RNGs (including the fault stream), fault counters and trace.
    Stepping either engine never affects the other, and running both
    identically gives bit-identical results. O(n + queued events + live
    prefix): the event queue, pending pool and timer table are flat arrays
    copied up to their high-water mark with straight blits of unboxed ints
    (message payloads, trace entries and outputs stay shared — they are
    immutable). [clone] only reads its argument, so multiple domains may
    clone the same engine concurrently as long as nobody steps it
    meanwhile (and [state_copy] is pure, which the {!Automaton.t} contract
    requires). *)

type ('state, 'msg, 'input, 'output) snapshot
(** An immutable capture of an engine, taken with {!snapshot} and
    re-animated (any number of times) with {!restore}. *)

val snapshot : ('state, 'msg, 'input, 'output) t -> ('state, 'msg, 'input, 'output) snapshot
(** Capture the engine's current state; later mutations of the engine do
    not affect the snapshot. *)

val restore : ('state, 'msg, 'input, 'output) snapshot -> ('state, 'msg, 'input, 'output) t
(** A fresh runnable engine positioned exactly where {!snapshot} was
    taken. Each call returns an independent copy. *)

val now : ('state, 'msg, 'input, 'output) t -> Time.t

val n : ('state, 'msg, 'input, 'output) t -> int

val state : ('state, 'msg, 'input, 'output) t -> Pid.t -> 'state
(** Current protocol state of a process (read-only inspection). *)

val crashed : ('state, 'msg, 'input, 'output) t -> Pid.t -> bool

val correct_pids : ('state, 'msg, 'input, 'output) t -> Pid.t list

val trace : ('state, 'msg, 'input, 'output) t -> ('msg, 'input, 'output) Trace.t

val outputs : ('state, 'msg, 'input, 'output) t -> (Time.t * Pid.t * 'output) list
(** Outputs in chronological order (available even when [record_trace] is
    false). *)

val output_count : ('state, 'msg, 'input, 'output) t -> int
(** Number of outputs emitted so far, O(1) (equals
    [(probe t).decides]). Together with {!recent_outputs} this lets a
    driver poll a long run's outputs incrementally. *)

val recent_outputs :
  ('state, 'msg, 'input, 'output) t -> since:int -> (Time.t * Pid.t * 'output) list
(** The outputs with index [>= since] in chronological order, where
    indices count emissions from 0 ([recent_outputs t ~since:0] =
    [outputs t]). O(number returned): a driver that remembers the last
    {!output_count} it saw drains a live run without rescanning history.
    Raises [Invalid_argument] on a negative [since]. *)

val schedule_input : ('state, 'msg, 'input, 'output) t -> at:Time.t -> Pid.t -> 'input -> unit
(** Enqueue a future input; [at] must be [>= now]. *)

val schedule_crash : ('state, 'msg, 'input, 'output) t -> at:Time.t -> Pid.t -> unit

(** {2 Manual network control}

    Only meaningful when the network is {!Network.Manual}: sends pile up in
    a pending pool and the caller decides delivery. *)

type 'msg pending = { id : int; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }

val pending : ('state, 'msg, 'input, 'output) t -> 'msg pending list
(** Undelivered sends, in send order. Allocates one record per entry;
    {!iter_pending}/{!fold_pending} walk the pool without materialising
    the list. *)

val pending_count : ('state, 'msg, 'input, 'output) t -> int
(** Number of undelivered sends, O(1). *)

val iter_pending :
  ('state, 'msg, 'input, 'output) t ->
  (id:int -> src:Pid.t -> dst:Pid.t -> msg:'msg -> sent_at:Time.t -> unit) ->
  unit
(** Visit every undelivered send in send order without building the
    {!pending} list (no per-entry allocation). The pool must not be
    mutated during the iteration. *)

val fold_pending :
  ('state, 'msg, 'input, 'output) t ->
  init:'acc ->
  f:('acc -> id:int -> src:Pid.t -> dst:Pid.t -> msg:'msg -> sent_at:Time.t -> 'acc) ->
  'acc
(** Fold over undelivered sends in send order; same contract as
    {!iter_pending}. *)

val pending_delivery_groups :
  ('state, 'msg, 'input, 'output) t -> (Pid.t * int list) list * int list
(** The live pending pool bucketed by destination, plus the ids addressed
    to crashed processes: [(groups, crashed)] where [groups] lists
    [(dst, ids)] for every non-crashed destination with at least one
    undelivered send (destinations ascending, ids in send order within
    each group) and [crashed] holds the remaining ids in send order.
    This is the commutativity metadata for partial-order reduction:
    delivering a message only ever steps its destination process, so
    same-instant deliveries in distinct groups commute, while the order
    within a group is the recipient's observable arrival order.
    Delivering to a crashed process is a no-op, so [crashed] ids belong
    to no commutation class. Ids obey the {!drop_pending} lifetime
    caveat: valid only until the next pool mutation. *)

val deliver_pending : ('state, 'msg, 'input, 'output) t -> id:int -> at:Time.t -> unit
(** Schedule pending message [id] for delivery at [at] (must be [>= now]).
    Raises [Not_found] for unknown ids. *)

val drop_pending : ('state, 'msg, 'input, 'output) t -> id:int -> unit
(** Discard a pending message (models asynchrony: delayed past the
    horizon, or an explored message-loss fault). Recorded as a
    {!Trace.entry.Dropped} entry and counted in {!fault_counts}; unknown
    ids are ignored. The id becomes reusable: ids are pool slots,
    deterministically recycled (most recently freed first), so a later
    send or duplication may receive it — treat ids as valid only until
    the next pool mutation. *)

val duplicate_pending : ('state, 'msg, 'input, 'output) t -> id:int -> int
(** Add a second pending copy of message [id] (same payload, same
    [sent_at] — the message is on the wire twice, not re-sent) and return
    the copy's id (a currently-unused slot, possibly one freed earlier —
    see {!drop_pending}). Used by the explorer to enumerate duplication
    faults. Recorded as a {!Trace.entry.Duplicated} entry and counted in
    {!fault_counts}. Raises [Not_found] for unknown ids. *)

val fault_counts : ('state, 'msg, 'input, 'output) t -> int * int
(** [(drops, duplications)] injected so far — by the fault plan or via
    {!drop_pending}/{!duplicate_pending}. *)

(** {2 Telemetry} *)

val probe : ('state, 'msg, 'input, 'output) t -> Probe.t
(** Current probe counters. Available regardless of [record_trace] and of
    whether a metrics registry was attached. *)

val decision_latencies : ('state, 'msg, 'input, 'output) t -> (Pid.t * int) list
(** For every pid that has both received an input and emitted an output:
    the gap in ticks between its {e first} input and its {e first} output —
    the per-process decision latency (divide by Δ for message delays).
    Sorted by pid; agrees with {!Trace.decision_latencies} whenever the
    trace is recorded. *)

(** {2 Fingerprinting}

    Structural digest of the engine's {e future-relevant} state, keying
    the explorer's visited set ({!Checker.Explore}'s dedup modes). *)

val has_fingerprint : ('state, 'msg, 'input, 'output) t -> bool
(** Whether the automaton supplies a [state_fingerprint] hook. *)

val fingerprint : ?symmetry:bool -> ('state, 'msg, 'input, 'output) t -> Fingerprint.t
(** Digest of everything that can influence the engine's remaining
    behaviour under a deterministic network model: the clock, [n], the
    send index and fault counters (they key fault scripts and budgets),
    every process's state (via the automaton hook), crash flag and
    first-input/first-output instants, the pending pool as a multiset
    (pending {e ids} are allocation accidents with no semantics), the
    event queue in pop order, and live timer epochs. Excluded: step count,
    trace and output history (past, not future), and the RNG streams —
    they are opaque, and under the explorer's setting ({!Network.Manual}
    timing with scripted faults) never consulted, so two engines with
    equal fingerprints behave identically there. Under a {e stochastic}
    network model equal fingerprints do not imply equal futures; don't key
    dedup on them in that setting.

    With [symmetry] (default [false]), processes [1 .. n-1] are first
    relabelled to a canonical order — sorted by their pid-blind local
    content — and every pid occurrence (including inside protocol states,
    via the hook's [relabel] argument) is rewritten accordingly, so any
    two engines equal up to a permutation of the non-distinguished pids
    digest identically. Pid 0 is never relabelled: it is the proposal
    proxy / default coordinator in this repository's protocols, so it is
    not interchangeable with the rest. Sound when initial states are
    pid-symmetric and message payloads carry no pid values (true for the
    explorer's timer-free runs of the bundled protocols — see the README's
    state-space-reduction notes); ties in the sort keep original order,
    which at worst under-merges.

    Raises [Invalid_argument] when the automaton has no
    [state_fingerprint] hook ({!has_fingerprint} is [false]). *)
