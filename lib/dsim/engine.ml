module Rng = Stdext.Rng
module Pqueue = Stdext.Pqueue
module Metrics = Stdext.Metrics

module Probe = struct
  type t = {
    steps : int;
    sent : int;
    delivered : int;
    dropped : int;
    duplicated : int;
    timer_fires : int;
    crashes : int;
    decides : int;
    queue_hwm : int;
  }

  let zero =
    {
      steps = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      duplicated = 0;
      timer_fires = 0;
      crashes = 0;
      decides = 0;
      queue_hwm = 0;
    }

  let pp fmt p =
    Format.fprintf fmt
      "steps %d, sent %d, delivered %d, dropped %d, duplicated %d, timers %d, crashes \
       %d, decides %d, queue hwm %d"
      p.steps p.sent p.delivered p.dropped p.duplicated p.timer_fires p.crashes p.decides
      p.queue_hwm
end

(* Registry handles, resolved once at {!create}. When no registry is given
   they come from {!Metrics.disabled}, so every update below is a single
   branch on an immutable bool — the engine's hot path does not pay for
   telemetry that nobody reads. *)
type meters = {
  mc_steps : Metrics.counter;
  mc_sent : Metrics.counter;
  mc_delivered : Metrics.counter;
  mc_dropped : Metrics.counter;
  mc_duplicated : Metrics.counter;
  mc_timer_fires : Metrics.counter;
  mc_crashes : Metrics.counter;
  mc_decides : Metrics.counter;
  mg_queue_hwm : Metrics.gauge;
}

let meters_of registry =
  {
    mc_steps = Metrics.counter registry "engine.steps";
    mc_sent = Metrics.counter registry "engine.sent";
    mc_delivered = Metrics.counter registry "engine.delivered";
    mc_dropped = Metrics.counter registry "engine.dropped";
    mc_duplicated = Metrics.counter registry "engine.duplicated";
    mc_timer_fires = Metrics.counter registry "engine.timer_fires";
    mc_crashes = Metrics.counter registry "engine.crashes";
    mc_decides = Metrics.counter registry "engine.decides";
    mg_queue_hwm = Metrics.gauge registry "engine.queue_hwm";
  }

(* Disabled handles are inert, so all engines without a registry can share
   one meters record instead of allocating ten per [create]. *)
let disabled_meters = meters_of Metrics.disabled

(* [origin] is the causal-span id of the event during which the delivery
   was sent / the timer armed, or [-1] when no tracer is attached.  It
   rides outside the priority packing, so stamping it never perturbs
   scheduling. *)
type ('msg, 'input) event =
  | Ev_crash of Pid.t
  | Ev_init of Pid.t
  | Ev_input of Pid.t * 'input
  (* Inline record: a queued delivery is one block, not a variant pointing
     at a separate record. Deliveries dominate the queue, so this halves
     the hot path's event allocations. *)
  | Ev_deliver of { src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t; origin : int }
  | Ev_timer of { pid : Pid.t; id : Automaton.timer_id; epoch : int; origin : int }

(* Events at equal time are processed by rank; see the .mli. *)
let rank = function
  | Ev_crash _ -> 0
  | Ev_init _ -> 1
  | Ev_input _ -> 2
  | Ev_deliver _ -> 3
  | Ev_timer _ -> 4

let priority ~time ev = (time * 8) + rank ev

(* Times are non-negative, so the arithmetic shift is exact. *)
let time_of_priority prio = prio asr 3

type 'msg pending = { id : int; src : Pid.t; dst : Pid.t; msg : 'msg; sent_at : Time.t }

(* The pending pool is a structure of arrays indexed by pending id: a
   send claims a slot (LIFO freelist first, then the high-water mark), a
   delivery/drop releases it. [pd_src.(s) = -1] marks a free slot, whose
   [pd_sent] cell holds the next freelist link instead of a timestamp.
   Send order is recovered from the [pd_seq] stamps — ids are reused, so
   slot order is not send order. At most [2^pd_slot_bits] slots may be
   live at once (the seq/slot packing in [live_slots_in_send_order]);
   each id is at most that many ints plus one payload pointer, and
   [clone] copies the live prefix with five [Array.sub] calls. *)
let pd_slot_bits = 20

let pd_slot_limit = 1 lsl pd_slot_bits

let no_slot = -1

(* The timer table is a flat int array: [(pid, timer_id)] packs to index
   [pid * tt_stride + timer_id], epoch 0 means "never armed" (live epochs
   start at 1). The stride grows to the next power of two when a larger
   timer id first appears, so lookups are two loads and no comparison
   function — the Map this replaces compared keys with the polymorphic
   [Stdlib.compare]. *)

type ('state, 'msg, 'input, 'output) t = {
  automaton : ('state, 'msg, 'input, 'output) Automaton.t;
  n : int;
  network : 'msg Network.t;
  rng : Rng.t;
  states : 'state option array;  (* None until Ev_init ran *)
  crashed_flags : bool array;
  queue : (('msg, 'input) event) Pqueue.t;
  mutable tt_epochs : int array;
  mutable tt_stride : int;
  mutable now : Time.t;
  mutable trace_rev : ('msg, 'input, 'output) Trace.entry list;
  record_trace : bool;
  disable_timers : bool;
  max_steps : int;
  mutable steps : int;
  mutable outputs_rev : (Time.t * Pid.t * 'output) list;
  mutable pd_src : int array;  (* -1 = free slot *)
  mutable pd_dst : int array;
  mutable pd_sent : int array;  (* sent_at, or next freelist link when free *)
  mutable pd_seq : int array;  (* send-order stamp *)
  mutable pd_origin : int array;  (* causal origin of the send, -1 untraced *)
  mutable pd_msgs : 'msg array;
  mutable pd_hwm : int;  (* slots 0 .. pd_hwm-1 have been allocated at least once *)
  mutable pd_free : int;  (* freelist head, -1 when empty *)
  mutable pd_live : int;
  mutable pd_next_seq : int;
  (* Per-destination scratch used by [handle_deliver_batch], reverse
     arrival order. Contents are transient — cleared before the batch is
     processed — so [clone] just allocates fresh empties. *)
  batch_scratch : (Pid.t * 'msg * Time.t * int) list array;
  (* Causal span tracer: [None] (the default) stamps [-1] origins and
     records nothing — the inert branch costs one match per event.  When
     attached, [cur_node] tracks the span id of the event currently being
     processed so [send]/[set_timer] can stamp it as the origin of what
     they schedule.  The store is shared by [clone]s (see the .mli). *)
  causality : ('input, 'output) Causality.spec option;
  mutable cur_node : int;
  (* Fault-injection state. The decision stream draws from [fault_rng], a
     stream derived from (but disjoint from) the engine seed, so enabling
     faults never perturbs the base network model's delay samples. The
     counters enforce the plan's budgets; all three are part of [clone]
     (ints are copied by the functional record update, the rng explicitly),
     so branched explorations replay the identical fault trace. *)
  fault_plan : Network.Fault.plan;
  fault_rng : Rng.t;
  mutable sends : int;  (* global send index, keys Fault.Script entries *)
  mutable faults_dropped : int;
  mutable faults_duplicated : int;
  (* Probe state: event counters beyond the ones the engine already keeps
     (steps, sends, fault counters), the event-queue high-water mark, and
     per-pid first-input/first-output instants for decision latency. All of
     it is cloned by value — ints via the functional record update, the
     arrays explicitly — so a branched exploration's per-engine probes stay
     independent. [meters] mirrors the counts into an optional shared
     {!Metrics} registry (disabled handles by default); clones share it, so
     registry totals aggregate across branches while probes stay per-run.
     The registry is fed in batches: [run] flushes the delta between each
     probe counter and its [f_*] last-flushed watermark on exit, instead of
     one atomic fetch-and-add (plus a [Domain.self] lookup) per event — the
     per-event cost dominated metrics-on overhead. A clone starts its
     watermarks at the source's current counters, so the parent flushes its
     own unflushed delta and the clone only flushes what happened after the
     branch point: nothing is double-counted. *)
  meters : meters;
  mutable f_steps : int;
  mutable f_sent : int;
  mutable f_delivered : int;
  mutable f_dropped : int;
  mutable f_duplicated : int;
  mutable f_timer_fires : int;
  mutable f_crashes : int;
  mutable f_decides : int;
  mutable p_delivered : int;
  mutable p_timer_fires : int;
  mutable p_crashes : int;
  mutable p_decides : int;
  mutable p_queue_hwm : int;
  first_input : Time.t option array;
  first_output : Time.t option array;
}

type run_result = Quiescent | Reached_until | Step_budget_exhausted

let record t entry = if t.record_trace then t.trace_rev <- entry :: t.trace_rev

let push_event t ~at ev =
  Pqueue.push t.queue ~priority:(priority ~time:at ev) ev;
  let len = Pqueue.length t.queue in
  if len > t.p_queue_hwm then t.p_queue_hwm <- len

(* Offset mixing the engine seed into the fault stream's seed: the two
   SplitMix64 streams must differ even for seed 0, and stay reproducible
   from the single user-facing seed. *)
let fault_seed_mix = 0x2545F4914F6CDD1D

let create ~automaton ~n ~network ?(seed = 0) ?(record_trace = true)
    ?(disable_timers = false) ?(max_steps = 5_000_000) ?(inputs = []) ?(crashes = [])
    ?(faults = Network.Fault.none) ?(metrics = Metrics.disabled) ?causality () =
  if n < 1 then invalid_arg "Engine.create: n must be >= 1";
  Network.validate network;
  let t =
    {
      automaton;
      n;
      network;
      rng = Rng.create ~seed;
      states = Array.make n None;
      crashed_flags = Array.make n false;
      queue = Pqueue.create ();
      tt_epochs = [||];
      tt_stride = 0;
      now = Time.zero;
      trace_rev = [];
      record_trace;
      disable_timers;
      max_steps;
      steps = 0;
      outputs_rev = [];
      pd_src = [||];
      pd_dst = [||];
      pd_sent = [||];
      pd_seq = [||];
      pd_origin = [||];
      pd_msgs = [||];
      pd_hwm = 0;
      pd_free = no_slot;
      pd_live = 0;
      pd_next_seq = 0;
      batch_scratch = Array.make n [];
      causality;
      cur_node = -1;
      fault_plan = faults;
      fault_rng = Rng.create ~seed:(seed lxor fault_seed_mix);
      sends = 0;
      faults_dropped = 0;
      faults_duplicated = 0;
      meters = (if metrics == Metrics.disabled then disabled_meters else meters_of metrics);
      f_steps = 0;
      f_sent = 0;
      f_delivered = 0;
      f_dropped = 0;
      f_duplicated = 0;
      f_timer_fires = 0;
      f_crashes = 0;
      f_decides = 0;
      p_delivered = 0;
      p_timer_fires = 0;
      p_crashes = 0;
      p_decides = 0;
      p_queue_hwm = 0;
      first_input = Array.make n None;
      first_output = Array.make n None;
    }
  in
  List.iter (fun p -> push_event t ~at:Time.zero (Ev_init p)) (Pid.all ~n);
  List.iter (fun (at, p, i) -> push_event t ~at (Ev_input (p, i))) inputs;
  List.iter (fun (at, p) -> push_event t ~at (Ev_crash p)) crashes;
  t

(* Branch a run: duplicate every piece of mutable engine state. Immutable
   payloads (trace entries, queued events, pending payloads) are shared;
   process states go through the automaton's [state_copy] hook. The flat
   pool and timer table are copied up to their live prefix — straight-line
   [Array.sub]/[Array.copy] blits of unboxed ints, sized by what the run
   actually used, not by retained capacity. Reads the source engine only,
   so several domains may clone the same (quiescent) engine concurrently. *)
let clone t =
  {
    t with
    rng = Rng.copy t.rng;
    fault_rng = Rng.copy t.fault_rng;
    states = Array.map (Option.map t.automaton.Automaton.state_copy) t.states;
    crashed_flags = Array.copy t.crashed_flags;
    queue = Pqueue.copy t.queue;
    tt_epochs = Array.copy t.tt_epochs;
    pd_src = Array.sub t.pd_src 0 t.pd_hwm;
    pd_dst = Array.sub t.pd_dst 0 t.pd_hwm;
    pd_sent = Array.sub t.pd_sent 0 t.pd_hwm;
    pd_seq = Array.sub t.pd_seq 0 t.pd_hwm;
    pd_origin = Array.sub t.pd_origin 0 t.pd_hwm;
    pd_msgs = Array.sub t.pd_msgs 0 t.pd_hwm;
    batch_scratch = Array.make t.n [];
    first_input = Array.copy t.first_input;
    first_output = Array.copy t.first_output;
    (* The clone's flush watermarks start at the source's current counters:
       whatever the source has not flushed yet remains the source's delta
       to flush, and the clone reports only its own post-branch activity. *)
    f_steps = t.steps;
    f_sent = t.sends;
    f_delivered = t.p_delivered;
    f_dropped = t.faults_dropped;
    f_duplicated = t.faults_duplicated;
    f_timer_fires = t.p_timer_fires;
    f_crashes = t.p_crashes;
    f_decides = t.p_decides;
  }

type ('state, 'msg, 'input, 'output) snapshot = ('state, 'msg, 'input, 'output) t

let snapshot t = clone t

let restore s = clone s

let now t = t.now

let n t = t.n

let state t p =
  match t.states.(p) with
  | Some s -> s
  | None ->
      (* Unreachable once [run] has processed time 0: Ev_init initialises
         every process, and [do_crash] initialises even processes crashed
         before their Ev_init. *)
      invalid_arg "Engine.state: process not initialised (run the engine first)"

let crashed t p = t.crashed_flags.(p)

let correct_pids t = List.filter (fun p -> not t.crashed_flags.(p)) (Pid.all ~n:t.n)

let trace t = List.rev t.trace_rev

let outputs t = List.rev t.outputs_rev

let output_count t = t.p_decides

let recent_outputs t ~since =
  let total = t.p_decides in
  if since < 0 then invalid_arg "Engine.recent_outputs: negative since";
  if since >= total then []
  else begin
    (* [outputs_rev] is newest-first: the first [total - since] entries are
       exactly the outputs emitted after the cursor; consing while walking
       them restores chronological order. O(total - since). *)
    let rec take acc k l =
      if k = 0 then acc
      else match l with [] -> acc | x :: rest -> take (x :: acc) (k - 1) rest
    in
    take [] (total - since) t.outputs_rev
  end

let schedule_input t ~at p input =
  if at < t.now then invalid_arg "Engine.schedule_input: at < now";
  push_event t ~at (Ev_input (p, input))

let schedule_crash t ~at p =
  if at < t.now then invalid_arg "Engine.schedule_crash: at < now";
  push_event t ~at (Ev_crash p)

(* Crash-stop [pid] right now. Crashes scheduled at time 0 fire before
   Ev_init (crashes rank first at equal instants), so the process may not
   be initialised yet: give it its initial state but drop the init actions
   — the process exists, it just never takes a step. [state], [clone] and
   [correct_pids] then agree on a well-defined initialised-then-crashed
   process instead of [state] raising. *)
let do_crash t pid =
  if not t.crashed_flags.(pid) then begin
    (match t.states.(pid) with
    | None ->
        let s, _dropped_init_actions = t.automaton.init ~self:pid ~n:t.n in
        t.states.(pid) <- Some s
    | Some _ -> ());
    t.crashed_flags.(pid) <- true;
    t.p_crashes <- t.p_crashes + 1;
    (* [cur_node] is [-1] for scheduled crashes (root spans) and the
       in-flight event's span for mid-transition [Crash_sender] faults. *)
    (match t.causality with
    | None -> ()
    | Some spec ->
        ignore
          (Causality.record spec.Causality.store ~kind:Causality.Crash ~pid
             ~parent:t.cur_node ~start:t.now ~finish:t.now ~payload:(-1) ~aux:(-1)
            : int));
    record t (Trace.Crashed { time = t.now; pid })
  end

(* -- pending pool ------------------------------------------------------- *)

let grow_pending t msg =
  let cap = Array.length t.pd_src in
  let new_cap = min pd_slot_limit (max 16 (2 * cap)) in
  if new_cap = cap then invalid_arg "Engine: more than 2^20 live pending messages";
  let sub a fill =
    let b = Array.make new_cap fill in
    Array.blit a 0 b 0 t.pd_hwm;
    b
  in
  t.pd_src <- sub t.pd_src no_slot;
  t.pd_dst <- sub t.pd_dst 0;
  t.pd_sent <- sub t.pd_sent 0;
  t.pd_seq <- sub t.pd_seq 0;
  t.pd_origin <- sub t.pd_origin (-1);
  t.pd_msgs <- sub t.pd_msgs msg

(* Claim a slot and fill it; returns the new pending id. Freed slots are
   reused LIFO — deterministic, so branched explorations assign identical
   ids along identical paths. *)
let add_pending t ~src ~dst ~sent_at ~origin msg =
  let s =
    if t.pd_free >= 0 then begin
      let s = t.pd_free in
      t.pd_free <- t.pd_sent.(s);
      s
    end
    else begin
      if t.pd_hwm = Array.length t.pd_src then grow_pending t msg;
      let s = t.pd_hwm in
      t.pd_hwm <- s + 1;
      s
    end
  in
  t.pd_live <- t.pd_live + 1;
  t.pd_src.(s) <- src;
  t.pd_dst.(s) <- dst;
  t.pd_sent.(s) <- sent_at;
  t.pd_seq.(s) <- t.pd_next_seq;
  t.pd_next_seq <- t.pd_next_seq + 1;
  t.pd_origin.(s) <- origin;
  t.pd_msgs.(s) <- msg;
  s

(* The payload pointer stays in [pd_msgs] until the slot is reused; pool
   payloads are small immutable protocol messages, so the retention is
   bounded by the pool's high-water mark and harmless. *)
let free_pending t s =
  t.pd_src.(s) <- no_slot;
  t.pd_sent.(s) <- t.pd_free;
  t.pd_free <- s;
  t.pd_live <- t.pd_live - 1

let pending_live t s = s >= 0 && s < t.pd_hwm && t.pd_src.(s) >= 0

(* Live slots in send order: the (unique, monotone) seq stamp and the slot
   pack into one int, so a single monomorphic sort recovers both. *)
let live_slots_in_send_order t =
  let a = Array.make t.pd_live 0 in
  let j = ref 0 in
  for s = 0 to t.pd_hwm - 1 do
    if t.pd_src.(s) >= 0 then begin
      a.(!j) <- (t.pd_seq.(s) lsl pd_slot_bits) lor s;
      incr j
    end
  done;
  Array.sort Int.compare a;
  a

let pending_count t = t.pd_live

let iter_pending t f =
  let slots = live_slots_in_send_order t in
  Array.iter
    (fun packed ->
      let s = packed land (pd_slot_limit - 1) in
      f ~id:s ~src:t.pd_src.(s) ~dst:t.pd_dst.(s) ~msg:t.pd_msgs.(s)
        ~sent_at:t.pd_sent.(s))
    slots

let fold_pending t ~init ~f =
  let slots = live_slots_in_send_order t in
  Array.fold_left
    (fun acc packed ->
      let s = packed land (pd_slot_limit - 1) in
      f acc ~id:s ~src:t.pd_src.(s) ~dst:t.pd_dst.(s) ~msg:t.pd_msgs.(s)
        ~sent_at:t.pd_sent.(s))
    init slots

let pending t =
  List.rev
    (fold_pending t ~init:[] ~f:(fun acc ~id ~src ~dst ~msg ~sent_at ->
         { id; src; dst; msg; sent_at } :: acc))

(* Commutativity metadata for the explorer's partial-order reduction: the
   live pool bucketed by destination. A delivery only ever steps its
   destination process (messages sent during the step land back in the
   pool, not in the same instant), so deliveries in distinct groups
   commute; order within a group is the recipient's observable arrival
   order and stays send-ordered here. Ids to crashed destinations are
   split off — delivering them is a no-op, so they belong to no
   commutation class. *)
let pending_delivery_groups t =
  let slots = live_slots_in_send_order t in
  let groups = Array.make t.n [] in
  let crashed_rev = ref [] in
  Array.iter
    (fun packed ->
      let s = packed land (pd_slot_limit - 1) in
      let dst = t.pd_dst.(s) in
      if t.crashed_flags.(dst) then crashed_rev := s :: !crashed_rev
      else groups.(dst) <- s :: groups.(dst))
    slots;
  let live = ref [] in
  for d = t.n - 1 downto 0 do
    match groups.(d) with [] -> () | rev -> live := (d, List.rev rev) :: !live
  done;
  (!live, List.rev !crashed_rev)

(* -- sending ------------------------------------------------------------ *)

let send t ~src ~dst msg =
  (* A crashed process sends nothing: [Crash_sender] flips the flag
     mid-transition, suppressing the remainder of a broadcast. *)
  if not t.crashed_flags.(src) then begin
    let index = t.sends in
    t.sends <- index + 1;
    record t (Trace.Sent { time = t.now; src; dst; msg });
    (* [cur_node] is the span of the event whose transition is sending —
       always [-1] when no tracer is attached, so the stamp is free. *)
    let origin = t.cur_node in
    let action =
      Network.Fault.decide t.fault_plan ~rng:t.fault_rng ~index
        ~drops_used:t.faults_dropped ~dups_used:t.faults_duplicated
    in
    (* The original's delivery time is sampled unconditionally — also when
       the message is then dropped — so the base model consumes the exact
       same RNG stream with and without a fault plan. *)
    let delivery = Network.delivery_time t.network ~rng:t.rng ~now:t.now ~src ~dst in
    let schedule_original () =
      match delivery with
      | Some at -> push_event t ~at (Ev_deliver { src; dst; msg; sent_at = t.now; origin })
      | None -> ignore (add_pending t ~src ~dst ~sent_at:t.now ~origin msg : int)
    in
    match action with
    | Network.Fault.Deliver -> schedule_original ()
    | Network.Fault.Drop ->
        t.faults_dropped <- t.faults_dropped + 1;
        record t (Trace.Dropped { time = t.now; src; dst; msg; sent_at = t.now })
    | Network.Fault.Duplicate { extra_delay } ->
        t.faults_duplicated <- t.faults_duplicated + 1;
        record t (Trace.Duplicated { time = t.now; src; dst; msg; sent_at = t.now; extra_delay });
        schedule_original ();
        (* The copy is timed as if re-sent [extra_delay] ticks later, and
           samples from the fault stream so the base stream stays aligned.
           It cannot precede the original under Sync_rounds/Manual, and may
           under the stochastic models — duplication makes no ordering
           promise between the two copies. *)
        (match
           Network.delivery_time t.network ~rng:t.fault_rng
             ~now:(t.now + extra_delay) ~src ~dst
         with
        | Some at -> push_event t ~at (Ev_deliver { src; dst; msg; sent_at = t.now; origin })
        | None -> ignore (add_pending t ~src ~dst ~sent_at:t.now ~origin msg : int))
    | Network.Fault.Crash_sender ->
        schedule_original ();
        do_crash t src
  end

(* -- timers ------------------------------------------------------------- *)

let grow_timers t ~id =
  let stride = ref (max 4 t.tt_stride) in
  while !stride <= id do
    stride := 2 * !stride
  done;
  let stride = !stride in
  let arr = Array.make (t.n * stride) 0 in
  for p = 0 to t.n - 1 do
    Array.blit t.tt_epochs (p * t.tt_stride) arr (p * stride) t.tt_stride
  done;
  t.tt_epochs <- arr;
  t.tt_stride <- stride

(* Both arming and cancelling bump the epoch: a queued Ev_timer fires only
   when it still carries the current epoch. *)
let bump_timer_epoch t ~pid ~id =
  if id < 0 then invalid_arg "Engine: negative timer id";
  if id >= t.tt_stride then grow_timers t ~id;
  let k = (pid * t.tt_stride) + id in
  let epoch = t.tt_epochs.(k) + 1 in
  t.tt_epochs.(k) <- epoch;
  epoch

let timer_epoch t ~pid ~id =
  if id < t.tt_stride then t.tt_epochs.((pid * t.tt_stride) + id) else 0

let set_timer t ~pid ~id ~after =
  if not t.disable_timers then begin
    let epoch = bump_timer_epoch t ~pid ~id in
    push_event t ~at:(t.now + max 0 after)
      (Ev_timer { pid; id; epoch; origin = t.cur_node })
  end

let cancel_timer t ~pid ~id =
  (* With timers disabled no Ev_timer is ever queued, so the epoch
     bookkeeping would be dead weight cloned into every snapshot. *)
  if not t.disable_timers then ignore (bump_timer_epoch t ~pid ~id : int)

(* -- event processing --------------------------------------------------- *)

let apply_actions t ~pid actions =
  let apply = function
    | Automaton.Send (dst, msg) -> send t ~src:pid ~dst msg
    | Automaton.Broadcast msg ->
        (* Same order as [Pid.others] (ascending, skipping self), without
           materialising the recipient list per broadcast. *)
        for dst = 0 to t.n - 1 do
          if dst <> pid then send t ~src:pid ~dst msg
        done
    | Automaton.Set_timer { id; after } -> set_timer t ~pid ~id ~after
    | Automaton.Cancel_timer id -> cancel_timer t ~pid ~id
    | Automaton.Output output ->
        t.outputs_rev <- (t.now, pid, output) :: t.outputs_rev;
        t.p_decides <- t.p_decides + 1;
        if t.first_output.(pid) = None then t.first_output.(pid) <- Some t.now;
        (match t.causality with
        | None -> ()
        | Some spec ->
            ignore
              (Causality.record spec.Causality.store ~kind:Causality.Output ~pid
                 ~parent:t.cur_node ~start:t.now ~finish:t.now
                 ~payload:(spec.Causality.output_payload output) ~aux:(-1)
                : int));
        record t (Trace.Output { time = t.now; pid; output })
  in
  List.iter apply actions

let step_process t ~pid transition =
  if not t.crashed_flags.(pid) then begin
    match t.states.(pid) with
    | None -> ()  (* not initialised: crashed before init *)
    | Some s ->
        let s', actions = transition s in
        t.states.(pid) <- Some s';
        apply_actions t ~pid actions
  end

let handle_deliver t ~src ~dst ~msg ~sent_at ~origin =
  if not t.crashed_flags.(dst) then begin
    t.p_delivered <- t.p_delivered + 1;
    record t (Trace.Delivered { time = t.now; src; dst; msg; sent_at });
    (match t.causality with
    | None -> ()
    | Some spec ->
        t.cur_node <-
          Causality.record spec.Causality.store ~kind:Causality.Deliver ~pid:dst
            ~parent:origin ~start:sent_at ~finish:t.now ~payload:(-1) ~aux:src);
    step_process t ~pid:dst (fun s -> t.automaton.on_message s ~src msg)
  end

(* Collect every further Ev_deliver sharing [prio] (same instant, and the
   delivery rank — so any event at equal priority is a delivery), bucket
   them into the per-destination scratch lists, reorder each group with
   the synchronous order policy, then process groups by ascending
   destination. The scratch array replaces a per-batch hash table; the
   RNG-visible order (one [order_batch_by] call per non-empty destination,
   ascending) is identical, and sent_at rides along instead of being
   re-matched after the fact. *)
let handle_deliver_batch t ~order ~src ~dst ~msg ~sent_at ~origin ~prio =
  let scratch = t.batch_scratch in
  scratch.(dst) <- (src, msg, sent_at, origin) :: scratch.(dst);
  while (not (Pqueue.is_empty t.queue)) && Pqueue.peek_prio t.queue = prio do
    match Pqueue.pop_exn t.queue with
    | Ev_deliver { src; dst; msg; sent_at; origin } ->
        scratch.(dst) <- (src, msg, sent_at, origin) :: scratch.(dst)
    | _ -> assert false  (* delivery rank at this instant: always Ev_deliver *)
  done;
  for d = 0 to t.n - 1 do
    match scratch.(d) with
    | [] -> ()
    | rev_group ->
        scratch.(d) <- [];
        let group = List.rev rev_group in
        let ordered =
          Network.order_batch_by order ~rng:t.rng
            ~src:(fun (s, _, _, _) -> s)
            ~payload:(fun (_, m, _, _) -> m)
            group
        in
        List.iter
          (fun (src, msg, sent_at, origin) ->
            handle_deliver t ~src ~dst:d ~msg ~sent_at ~origin)
          ordered
  done

let handle_event t ~prio ev =
  match ev with
  | Ev_crash pid ->
      (* Scheduled crashes are causal roots; [cur_node] may still hold the
         previous event's span, so reset it before [do_crash] records. *)
      t.cur_node <- -1;
      do_crash t pid
  | Ev_init pid ->
      if not t.crashed_flags.(pid) then begin
        (match t.causality with
        | None -> ()
        | Some spec ->
            t.cur_node <-
              Causality.record spec.Causality.store ~kind:Causality.Init ~pid
                ~parent:(-1) ~start:t.now ~finish:t.now ~payload:(-1) ~aux:(-1));
        let s, actions = t.automaton.init ~self:pid ~n:t.n in
        t.states.(pid) <- Some s;
        apply_actions t ~pid actions
      end
  | Ev_input (pid, input) ->
      if not t.crashed_flags.(pid) then begin
        if t.first_input.(pid) = None then t.first_input.(pid) <- Some t.now;
        record t (Trace.Input { time = t.now; pid; input });
        (match t.causality with
        | None -> ()
        | Some spec ->
            t.cur_node <-
              Causality.record spec.Causality.store ~kind:Causality.Input ~pid
                ~parent:(-1) ~start:t.now ~finish:t.now
                ~payload:(spec.Causality.input_payload input) ~aux:(-1));
        step_process t ~pid (fun s -> t.automaton.on_input s input)
      end
  | Ev_deliver { src; dst; msg; sent_at; origin } -> begin
      match t.network with
      | Network.Sync_rounds { order; _ } ->
          handle_deliver_batch t ~order ~src ~dst ~msg ~sent_at ~origin ~prio
      | _ -> handle_deliver t ~src ~dst ~msg ~sent_at ~origin
    end
  | Ev_timer { pid; id; epoch; origin } ->
      if timer_epoch t ~pid ~id = epoch && not t.crashed_flags.(pid) then begin
        t.p_timer_fires <- t.p_timer_fires + 1;
        record t (Trace.Timer_fired { time = t.now; pid; id });
        (match t.causality with
        | None -> ()
        | Some spec ->
            t.cur_node <-
              Causality.record spec.Causality.store ~kind:Causality.Timer ~pid
                ~parent:origin ~start:t.now ~finish:t.now ~payload:id ~aux:(-1));
        step_process t ~pid (fun s -> t.automaton.on_timer s id)
      end

(* Push the registry the delta accumulated since the previous flush. One
   fetch-and-add per counter per [run] call replaces one per event; probes
   and traces are unaffected (they read the live per-engine counters). *)
let flush_meters t =
  let flush handle current last set =
    if current <> last then begin
      Metrics.add handle (current - last);
      set current
    end
  in
  flush t.meters.mc_steps t.steps t.f_steps (fun v -> t.f_steps <- v);
  flush t.meters.mc_sent t.sends t.f_sent (fun v -> t.f_sent <- v);
  flush t.meters.mc_delivered t.p_delivered t.f_delivered (fun v -> t.f_delivered <- v);
  flush t.meters.mc_dropped t.faults_dropped t.f_dropped (fun v -> t.f_dropped <- v);
  flush t.meters.mc_duplicated t.faults_duplicated t.f_duplicated (fun v ->
      t.f_duplicated <- v);
  flush t.meters.mc_timer_fires t.p_timer_fires t.f_timer_fires (fun v ->
      t.f_timer_fires <- v);
  flush t.meters.mc_crashes t.p_crashes t.f_crashes (fun v -> t.f_crashes <- v);
  flush t.meters.mc_decides t.p_decides t.f_decides (fun v -> t.f_decides <- v);
  Metrics.record_max t.meters.mg_queue_hwm t.p_queue_hwm

(* The stepping loop allocates nothing per event: the bound is hoisted to
   a plain int, the next event's time is read off the packed priority
   without building an option, and pop returns the payload directly. *)
let run ?until t =
  let ubound = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.steps >= t.max_steps then Step_budget_exhausted
    else if Pqueue.is_empty t.queue then Quiescent
    else begin
      let prio = Pqueue.peek_prio t.queue in
      let time = time_of_priority prio in
      if time > ubound then Reached_until
      else begin
        let ev = Pqueue.pop_exn t.queue in
        t.steps <- t.steps + 1;
        if time > t.now then t.now <- time;
        handle_event t ~prio ev;
        loop ()
      end
    end
  in
  let result = loop () in
  flush_meters t;
  result

(* -- manual network control --------------------------------------------- *)

let deliver_pending t ~id ~at =
  if not (pending_live t id) then raise Not_found;
  if at < t.now then invalid_arg "Engine.deliver_pending: at < now";
  let src = t.pd_src.(id) and dst = t.pd_dst.(id) and sent_at = t.pd_sent.(id) in
  let origin = t.pd_origin.(id) in
  let msg = t.pd_msgs.(id) in
  free_pending t id;
  push_event t ~at (Ev_deliver { src; dst; msg; sent_at; origin })

let drop_pending t ~id =
  if pending_live t id then begin
    t.faults_dropped <- t.faults_dropped + 1;
    record t
      (Trace.Dropped
         {
           time = t.now;
           src = t.pd_src.(id);
           dst = t.pd_dst.(id);
           msg = t.pd_msgs.(id);
           sent_at = t.pd_sent.(id);
         });
    free_pending t id
  end

let duplicate_pending t ~id =
  if not (pending_live t id) then raise Not_found;
  (* Read before allocating: the copy's slot claim may grow the arrays. *)
  let src = t.pd_src.(id) and dst = t.pd_dst.(id) and sent_at = t.pd_sent.(id) in
  let msg = t.pd_msgs.(id) in
  t.faults_duplicated <- t.faults_duplicated + 1;
  record t (Trace.Duplicated { time = t.now; src; dst; msg; sent_at; extra_delay = 0 });
  (* The copy keeps the original's sent_at (and causal origin): it is the
     same message on the wire twice, not a re-send by the automaton. *)
  add_pending t ~src ~dst ~sent_at ~origin:(t.pd_origin.(id)) msg

let fault_counts t = (t.faults_dropped, t.faults_duplicated)

let probe t =
  {
    Probe.steps = t.steps;
    sent = t.sends;
    delivered = t.p_delivered;
    dropped = t.faults_dropped;
    duplicated = t.faults_duplicated;
    timer_fires = t.p_timer_fires;
    crashes = t.p_crashes;
    decides = t.p_decides;
    queue_hwm = t.p_queue_hwm;
  }

(* -- fingerprinting ----------------------------------------------------- *)

let has_fingerprint t = Option.is_some t.automaton.Automaton.state_fingerprint

module Fp = Fingerprint

(* Constructor tags below are small odd constants; each case mixes its tag
   first so different event shapes can't alias. *)
let event_fp ~relabel = function
  | Ev_crash pid -> Fp.mix 31L (Fp.int (relabel pid))
  | Ev_init pid -> Fp.mix 37L (Fp.int (relabel pid))
  | Ev_input (pid, input) -> Fp.mix (Fp.mix 41L (Fp.int (relabel pid))) (Fp.structural input)
  (* [origin] is excluded everywhere below: span ids are observability
     bookkeeping with no influence on future behaviour (and always -1 in
     the explorer, which never attaches a tracer). *)
  | Ev_deliver { src; dst; msg; sent_at; origin = _ } ->
      Fp.mix
        (Fp.mix (Fp.mix (Fp.mix 43L (Fp.int (relabel src))) (Fp.int (relabel dst)))
           (Fp.structural msg))
        (Fp.int sent_at)
  | Ev_timer { pid; id; epoch; origin = _ } ->
      Fp.mix (Fp.mix (Fp.mix 47L (Fp.int (relabel pid))) (Fp.int id)) (Fp.int epoch)

(* Everything pid-local: protocol state, crash flag, latency probes. Also
   the symmetry sort key (with a pid-blind [relabel]) — so two processes
   tie only when their whole local content matches, and ties keep their
   original relative order, which at worst under-merges (sound). *)
let local_fp t state_fp ~relabel pid =
  let st =
    match t.states.(pid) with
    | None -> 53L
    | Some s -> Fp.mix 59L (state_fp ~relabel s)
  in
  let fp = Fp.mix st (Fp.bool t.crashed_flags.(pid)) in
  let fp = Fp.mix fp (Fp.option Fp.int t.first_input.(pid)) in
  Fp.mix fp (Fp.option Fp.int t.first_output.(pid))

(* The digest covers every field that can influence the engine's future
   observable behaviour under a deterministic network model: clock, fault
   bookkeeping (the send index keys fault scripts), per-process local
   state, the pending pool (a multiset folded commutatively — slot ids
   and seq stamps are allocation accidents), the event queue in pop order
   (the only order with semantics), and live timer epochs (epoch 0 cells
   are never-armed, i.e. absent). Excluded: step/trace/output history
   (past, not future) and the RNG streams (opaque; under the explorer's
   [Manual] network and scripted faults they are never consulted, see the
   .mli). *)
let fold_engine t state_fp ~relabel ~order =
  let fp = Fp.mix (Fp.int t.n) (Fp.int t.now) in
  let fp = Fp.mix fp (Fp.int t.sends) in
  let fp = Fp.mix fp (Fp.int t.faults_dropped) in
  let fp = Fp.mix fp (Fp.int t.faults_duplicated) in
  let fp =
    Array.fold_left (fun acc pid -> Fp.mix acc (local_fp t state_fp ~relabel pid)) fp order
  in
  let pend = ref 67L in
  for s = 0 to t.pd_hwm - 1 do
    if t.pd_src.(s) >= 0 then
      pend :=
        Fp.commute !pend
          (Fp.mix
             (Fp.mix
                (Fp.mix (Fp.mix 61L (Fp.int (relabel t.pd_src.(s))))
                   (Fp.int (relabel t.pd_dst.(s))))
                (Fp.structural t.pd_msgs.(s)))
             (Fp.int t.pd_sent.(s)))
  done;
  let fp = Fp.mix fp !pend in
  let qfp = ref fp in
  Pqueue.iter_in_order t.queue (fun prio ev ->
      qfp := Fp.mix (Fp.mix !qfp (Fp.int prio)) (event_fp ~relabel ev));
  let fp = !qfp in
  let timers = ref 73L in
  for pid = 0 to t.n - 1 do
    for id = 0 to t.tt_stride - 1 do
      let epoch = t.tt_epochs.((pid * t.tt_stride) + id) in
      if epoch > 0 then
        timers :=
          Fp.commute !timers
            (Fp.mix (Fp.mix (Fp.mix 71L (Fp.int (relabel pid))) (Fp.int id))
               (Fp.int epoch))
    done
  done;
  Fp.mix fp !timers

let fingerprint ?(symmetry = false) t =
  match t.automaton.Automaton.state_fingerprint with
  | None -> invalid_arg "Engine.fingerprint: automaton has no state_fingerprint hook"
  | Some state_fp ->
      if (not symmetry) || t.n <= 2 then
        (* n <= 2 has no non-distinguished pair to permute. *)
        fold_engine t state_fp ~relabel:Fun.id ~order:(Array.init t.n Fun.id)
      else begin
        (* Canonical orbit representative: pid 0 (the distinguished
           proposer proxy / default coordinator) keeps its identity; pids
           1..n-1 are sorted by their pid-blind local content. [relabel]
           collapsing every pid to -1 makes the key depend only on content,
           never on the labels being permuted away. *)
        let blind _ = -1 in
        let keys = Array.init t.n (fun p -> local_fp t state_fp ~relabel:blind p) in
        let rest = Array.init (t.n - 1) (fun i -> i + 1) in
        Array.sort
          (fun a b ->
            let c = Int64.compare keys.(a) keys.(b) in
            if c <> 0 then c else compare a b)
          rest;
        let order = Array.make t.n 0 in
        Array.iteri (fun i old -> order.(i + 1) <- old) rest;
        let perm = Array.make t.n 0 in
        Array.iteri (fun canonical old -> perm.(old) <- canonical) order;
        fold_engine t state_fp ~relabel:(fun p -> perm.(p)) ~order
      end

let decision_latencies t =
  let acc = ref [] in
  for pid = t.n - 1 downto 0 do
    match (t.first_input.(pid), t.first_output.(pid)) with
    | Some in_t, Some out_t -> acc := (pid, out_t - in_t) :: !acc
    | _ -> ()
  done;
  !acc
