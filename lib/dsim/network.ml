type 'msg order =
  | Arrival
  | Random_order
  | Favor of Pid.t
  | Sort_by of (src:Pid.t -> 'msg -> int)

type 'msg t =
  | Sync_rounds of { delta : int; order : 'msg order }
  | Partial_sync of { delta : int; gst : Time.t; max_pre_gst : int }
  | Uniform of { min_delay : int; max_delay : int }
  | Wan of { latency : src:Pid.t -> dst:Pid.t -> int; jitter : int }
  | Manual

let validate = function
  | Partial_sync { delta; gst; max_pre_gst } ->
      if delta < 1 || gst < 0 || max_pre_gst < 1 then
        invalid_arg "Network.Partial_sync: need delta >= 1, gst >= 0, max_pre_gst >= 1"
  | Uniform { min_delay; max_delay } ->
      if min_delay <= 0 || min_delay > max_delay then
        invalid_arg "Network.Uniform: need 0 < min_delay <= max_delay"
  | Sync_rounds _ | Wan _ | Manual -> ()

let delivery_time t ~rng ~now ~src ~dst =
  match t with
  | Sync_rounds { delta; _ } ->
      (* Delivered precisely at the next round boundary. *)
      Some (((now / delta) + 1) * delta)
  | Partial_sync { delta; gst; max_pre_gst } ->
      if now >= gst then Some (now + Stdext.Rng.int_in rng 1 delta)
      else
        (* Chaotic delay, capped by the documented contract: every message
           is delivered by [gst + delta] at the latest. The cap is the
           deterministic contract bound itself, not a per-message sample —
           resampling it would deliver some pre-GST messages earlier than
           the model promises to force, weakening the adversary. *)
        Some (min (now + Stdext.Rng.int_in rng 1 max_pre_gst) (gst + delta))
  | Uniform { min_delay; max_delay } ->
      Some (now + Stdext.Rng.int_in rng min_delay max_delay)
  | Wan { latency; jitter } ->
      let j = if jitter <= 0 then 0 else Stdext.Rng.int rng (jitter + 1) in
      Some (now + max 1 (latency ~src ~dst) + j)
  | Manual -> None

(* Generic over the batch element: the engine passes (src, msg, sent_at)
   triples straight through instead of projecting to pairs and matching
   timestamps back afterwards. RNG consumption depends only on the batch
   length (one shuffle for [Random_order]), so the element type never
   perturbs the stream. *)
let order_batch_by order ~rng ~src ~payload batch =
  match order with
  | Arrival -> batch
  | Random_order -> Stdext.Rng.shuffle rng batch
  | Favor p ->
      let favored, rest = List.partition (fun x -> Pid.equal (src x) p) batch in
      favored @ rest
  | Sort_by key ->
      (* Stable sort keeps arrival order among equal keys. *)
      List.stable_sort
        (fun x y -> Int.compare (key ~src:(src x) (payload x)) (key ~src:(src y) (payload y)))
        batch

let order_batch order ~rng batch =
  order_batch_by order ~rng ~src:fst ~payload:snd batch

module Fault = struct
  type action =
    | Deliver
    | Drop
    | Duplicate of { extra_delay : int }
    | Crash_sender

  type plan =
    | No_faults
    | Random of {
        drop_rate : float;
        dup_rate : float;
        max_drops : int;
        max_dups : int;
        max_extra_delay : int;
      }
    | Script of (int * action) list

  let none = No_faults

  let random ?(drop_rate = 0.) ?(dup_rate = 0.) ?(max_drops = max_int)
      ?(max_dups = max_int) ?(max_extra_delay = 1) () =
    let rate_ok r = r >= 0. && r <= 1. in
    if not (rate_ok drop_rate && rate_ok dup_rate) then
      invalid_arg "Fault.random: rates must be within [0, 1]";
    if max_drops < 0 || max_dups < 0 then
      invalid_arg "Fault.random: budgets must be non-negative";
    if max_extra_delay < 0 then
      invalid_arg "Fault.random: max_extra_delay must be non-negative";
    Random { drop_rate; dup_rate; max_drops; max_dups; max_extra_delay }

  let script entries =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (index, action) ->
        if index < 0 then invalid_arg "Fault.script: negative send index";
        (match action with
        | Duplicate { extra_delay } when extra_delay < 0 ->
            invalid_arg "Fault.script: negative extra_delay"
        | _ -> ());
        if Hashtbl.mem seen index then
          invalid_arg "Fault.script: duplicate send index";
        Hashtbl.replace seen index ())
      entries;
    Script entries

  let decide plan ~rng ~index ~drops_used ~dups_used =
    match plan with
    | No_faults -> Deliver
    | Script entries -> (
        match List.assoc_opt index entries with Some a -> a | None -> Deliver)
    | Random { drop_rate; dup_rate; max_drops; max_dups; max_extra_delay } ->
        (* Exactly three draws per send — drop?, dup?, extra — whether or
           not the budgets still allow the fault, so the decision for send
           [k] depends only on the seed and [k], never on how many faults
           fired earlier. That keeps fault traces stable under small budget
           changes and makes the trace a pure function of the seed. *)
        let drop = Stdext.Rng.chance rng drop_rate in
        let dup = Stdext.Rng.chance rng dup_rate in
        let extra = Stdext.Rng.int rng (max_extra_delay + 1) in
        if drop && drops_used < max_drops then Drop
        else if dup && dups_used < max_dups then Duplicate { extra_delay = extra }
        else Deliver
end
