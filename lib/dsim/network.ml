type 'msg order =
  | Arrival
  | Random_order
  | Favor of Pid.t
  | Sort_by of (src:Pid.t -> 'msg -> int)

type 'msg t =
  | Sync_rounds of { delta : int; order : 'msg order }
  | Partial_sync of { delta : int; gst : Time.t; max_pre_gst : int }
  | Uniform of { min_delay : int; max_delay : int }
  | Wan of { latency : src:Pid.t -> dst:Pid.t -> int; jitter : int }
  | Manual

let delivery_time t ~rng ~now ~src ~dst =
  match t with
  | Sync_rounds { delta; _ } ->
      (* Delivered precisely at the next round boundary. *)
      Some (((now / delta) + 1) * delta)
  | Partial_sync { delta; gst; max_pre_gst } ->
      if now >= gst then Some (now + Stdext.Rng.int_in rng 1 delta)
      else begin
        let candidate = now + Stdext.Rng.int_in rng 1 (max 1 max_pre_gst) in
        let cap = gst + Stdext.Rng.int_in rng 1 delta in
        Some (min candidate cap)
      end
  | Uniform { min_delay; max_delay } ->
      if min_delay <= 0 || min_delay > max_delay then
        invalid_arg "Network.Uniform: need 0 < min_delay <= max_delay";
      Some (now + Stdext.Rng.int_in rng min_delay max_delay)
  | Wan { latency; jitter } ->
      let j = if jitter <= 0 then 0 else Stdext.Rng.int rng (jitter + 1) in
      Some (now + max 1 (latency ~src ~dst) + j)
  | Manual -> None

let order_batch order ~rng batch =
  match order with
  | Arrival -> batch
  | Random_order -> Stdext.Rng.shuffle rng batch
  | Favor p ->
      let favored, rest = List.partition (fun (src, _) -> Pid.equal src p) batch in
      favored @ rest
  | Sort_by key ->
      (* Stable sort keeps arrival order among equal keys. *)
      List.stable_sort
        (fun (src1, m1) (src2, m2) -> Int.compare (key ~src:src1 m1) (key ~src:src2 m2))
        batch
