module Span = Stdext.Span

type kind = Init | Input | Deliver | Timer | Crash | Output

let kind_code = function
  | Init -> 0
  | Input -> 1
  | Deliver -> 2
  | Timer -> 3
  | Crash -> 4
  | Output -> 5

let kind_of_code = function
  | 0 -> Some Init
  | 1 -> Some Input
  | 2 -> Some Deliver
  | 3 -> Some Timer
  | 4 -> Some Crash
  | 5 -> Some Output
  | _ -> None

let kind_name = function
  | Init -> "init"
  | Input -> "input"
  | Deliver -> "deliver"
  | Timer -> "timer"
  | Crash -> "crash"
  | Output -> "output"

type t = Span.t

let create ?capacity () = Span.create ?capacity ()

let length = Span.length

let store t = t

let record t ~kind ~pid ~parent ~start ~finish ~payload ~aux =
  Span.add t ~parent ~kind:(kind_code kind) ~track:pid ~start ~finish ~a:payload ~b:aux

let kind_of t id =
  match kind_of_code (Span.kind t id) with
  | Some k -> k
  | None -> invalid_arg "Causality.kind_of: foreign span kind"

let pid = Span.track

let parent = Span.parent

let time = Span.finish

let start_at = Span.start

let payload = Span.a

let aux = Span.b

let path = Span.path

let delay_steps t id =
  List.fold_left
    (fun acc sid -> if Span.kind t sid = kind_code Deliver then acc + 1 else acc)
    0 (Span.path t id)

type ('input, 'output) spec = {
  store : t;
  input_payload : 'input -> int;
  output_payload : 'output -> int;
}

let no_payload _ = -1

let spec ?(input = no_payload) ?(output = no_payload) store =
  { store; input_payload = input; output_payload = output }

let to_table t = Span.to_table t

let span_name t id =
  match kind_of_code (Span.kind t id) with
  | Some Deliver -> Printf.sprintf "deliver %d->%d" (Span.b t id) (Span.track t id)
  | Some Input -> Printf.sprintf "input %d" (Span.a t id)
  | Some Output -> Printf.sprintf "output %d" (Span.a t id)
  | Some Timer -> Printf.sprintf "timer %d" (Span.a t id)
  | Some k -> kind_name k
  | None -> Printf.sprintf "k%d" (Span.kind t id)

let to_chrome fmt t =
  Span.to_chrome ~process_name:"dsim" ~name:span_name
    ~track_name:(Printf.sprintf "pid %d") fmt t
