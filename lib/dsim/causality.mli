(** Causal span tracing for engine runs.

    When a {!Causality.spec} is attached to an engine ({!Engine.create}'s
    [causality]), every {e effective} event — an init, input, delivery,
    timer fire, crash or output that actually ran a transition — is
    recorded as a span whose parent is the event that caused it: a
    delivery's parent is the event during which the message was sent, a
    timer fire's parent is the event that armed the timer, an output's
    parent is the event whose transition emitted it; inits, inputs and
    scheduled crashes are roots.  Walking parent links therefore yields
    the exact causal chain behind any decision, and counting the
    {!Deliver} spans on that chain gives the paper's currency: the number
    of {e message delays} the outcome took ({!delay_steps}).

    Recording never perturbs the run: span ids ride outside the event
    queue's priorities, no RNG is consumed, and the trace layer is
    untouched, so a run with tracing enabled is byte-identical (same
    trace, same outputs) to the same run without.  With no spec attached
    the engine stamps a [-1] origin and skips all recording — the same
    inert-branch discipline as {!Stdext.Metrics}.

    The store is append-only and shared by {!Engine.clone}s (like a
    metrics registry); causal tracing targets single-run observability,
    not branched exploration — clones interleave their appends. *)

type kind = Init | Input | Deliver | Timer | Crash | Output

val kind_code : kind -> int
(** Stable small-int discriminator: [Init] = 0, [Input] = 1,
    [Deliver] = 2, [Timer] = 3, [Crash] = 4, [Output] = 5. *)

val kind_of_code : int -> kind option

val kind_name : kind -> string
(** Lower-case constructor name, the Chrome/JSONL label. *)

type t
(** A span store with engine semantics: track = pid, [start]/[finish] =
    virtual instants ([sent_at]/delivery time for {!Deliver}, the event
    instant twice otherwise), payload/aux per {!kind} (see {!payload} and
    {!aux}). *)

val create : ?capacity:int -> unit -> t

val length : t -> int

val store : t -> Stdext.Span.t
(** The underlying raw store ({!Stdext.Span} accessors and exports). *)

val record :
  t ->
  kind:kind ->
  pid:Pid.t ->
  parent:int ->
  start:Time.t ->
  finish:Time.t ->
  payload:int ->
  aux:int ->
  int
(** Append a span; the engine's hook, exposed for tests and replayers.
    Same contract as {!Stdext.Span.add}. *)

(** {2 Accessors} *)

val kind_of : t -> int -> kind
val pid : t -> int -> Pid.t
val parent : t -> int -> int

val time : t -> int -> Time.t
(** The instant the event took effect (= [finish]). *)

val start_at : t -> int -> Time.t
(** [Deliver]: when the message was sent; otherwise = {!time}. *)

val payload : t -> int -> int
(** [Input]/[Output]: the spec's encoded payload; [Timer]: the timer id;
    [-1] otherwise. *)

val aux : t -> int -> int
(** [Deliver]: the sender pid; [-1] otherwise. *)

val path : t -> int -> int list
(** Causal chain, root first. *)

val delay_steps : t -> int -> int
(** Number of {!Deliver} spans on [path] — the message delays between the
    root cause and this span. *)

(** {2 Engine attachment}

    The engine is polymorphic in its input/output payloads; a [spec]
    carries the store plus integer encoders for both, so spans stay flat
    ints.  Omitted encoders record [-1]. *)

type ('input, 'output) spec = {
  store : t;
  input_payload : 'input -> int;
  output_payload : 'output -> int;
}

val spec :
  ?input:('input -> int) -> ?output:('output -> int) -> t -> ('input, 'output) spec

(** {2 Export} *)

val to_table : t -> Stdext.Rle.table
(** {!Stdext.Span.to_table} of the store. *)

val to_chrome : Format.formatter -> t -> unit
(** Chrome [trace_event] JSON with kind-aware span names
    (["deliver 2->0"], ["input 1"], …) and ["pid N"] thread names; open
    in Perfetto or [about://tracing]. *)
