module Pid = Dsim.Pid
module Automaton = Dsim.Automaton
module Value = Proto.Value
module Ballot = Proto.Ballot
module Omega = Proto.Omega
module Util = Proto.Util

type msg =
  | Submit of Value.t  (* proposer -> leader *)
  | One_a of Ballot.t
  | One_b of { bal : Ballot.t; vbal : Ballot.t; value : Value.t option }
  | Two_a of { bal : Ballot.t; value : Value.t }
  | Two_b of { bal : Ballot.t; value : Value.t }
  | Decide of Value.t
  | Omega_msg of Omega.msg

let pp_msg fmt = function
  | Submit v -> Format.fprintf fmt "Submit(%a)" Value.pp v
  | One_a b -> Format.fprintf fmt "1A(%a)" Ballot.pp b
  | One_b { bal; vbal; value } ->
      Format.fprintf fmt "1B(%a,vbal=%a,val=%a)" Ballot.pp bal Ballot.pp vbal
        (Util.pp_opt Value.pp) value
  | Two_a { bal; value } -> Format.fprintf fmt "2A(%a,%a)" Ballot.pp bal Value.pp value
  | Two_b { bal; value } -> Format.fprintf fmt "2B(%a,%a)" Ballot.pp bal Value.pp value
  | Decide v -> Format.fprintf fmt "Decide(%a)" Value.pp v
  | Omega_msg m -> Omega.pp_msg fmt m

(* Leader-side bookkeeping for the ballot this process runs. Ballot 0 is
   owned by p0 and skips phase 1. *)
type leading = {
  lballot : Ballot.t;
  one_bs : (Ballot.t * Value.t option) Pid.Map.t;
  lvalue : Value.t option;  (* value proposed in our 2A *)
  two_bs : Pid.Set.t;
}

type state = {
  self : Pid.t;
  n : int;
  f : int;
  delta : int;
  bal : Ballot.t;
  vbal : Ballot.t;
  value : Value.t option;
  initial : Value.t option;
  submitted : Value.t option;  (* earliest Submit we saw, as leader *)
  decided : Value.t option;
  leading : leading option;
  grace_used : bool;
      (* a ballot in flight gets one timer period to finish before the
         leader abandons it for a fresh one *)
  omega : Omega.state;
}

let decided_value s = s.decided

let ballot_timer = 1

(* Ballot 0 belongs to p0; positive ballots follow the usual round-robin. *)
let ballot_owner ~n b = if b = 0 then 0 else Ballot.leader_of ~n b

let send_two_a s lballot v =
  Util.send_to_all ~n:s.n (Two_a { bal = lballot; value = v })

(* As the owner of [lballot] with phase 1 complete, propose [v]. *)
let lead_phase2 s lballot v =
  let leading =
    { lballot; one_bs = Pid.Map.empty; lvalue = Some v; two_bs = Pid.Set.empty }
  in
  ({ s with leading = Some leading }, send_two_a s lballot v)

let decide s v =
  match s.decided with
  | Some _ -> (s, [])
  | None ->
      let s = { s with value = Some v; decided = Some v } in
      (s, Automaton.Output v :: Util.send_others ~n:s.n ~self:s.self (Decide v))

(* The ballot-0 leader proposes the first value it learns of; everyone else
   forwards to the current leader estimate. *)
let try_lead_fast s =
  if
    Pid.equal s.self (ballot_owner ~n:s.n 0)
    && s.bal = 0 && s.leading = None && s.decided = None
  then begin
    match (s.initial, s.submitted) with
    | Some v, _ | None, Some v -> lead_phase2 s 0 v
    | None, None -> (s, [])
  end
  else (s, [])

let propose s v =
  if s.initial <> None || s.decided <> None then (s, [])
  else begin
    let s = { s with initial = Some v } in
    let leader = Omega.leader s.omega in
    if Pid.equal leader s.self then begin
      let s, actions = try_lead_fast s in
      (* A non-p0 process that believes itself leader waits for its timer to
         start a ballot; nothing to do here. *)
      (s, actions)
    end
    else (s, [ Automaton.Send (leader, Submit v) ])
  end

let on_submit s v =
  let s = if s.submitted = None then { s with submitted = Some v } else s in
  try_lead_fast s

let on_one_a s ~src b =
  if b > s.bal then
    ( { s with bal = b },
      [ Automaton.Send (src, One_b { bal = b; vbal = s.vbal; value = s.value }) ] )
  else (s, [])

let on_one_b s ~src ~bal ~vbal ~value =
  match s.leading with
  | Some l when Ballot.equal l.lballot bal && l.lvalue = None ->
      let one_bs = Pid.Map.add src (vbal, value) l.one_bs in
      if Pid.Map.cardinal one_bs >= s.n - s.f then begin
        (* Classic rule: adopt the vote of the highest ballot, else be free. *)
        let best =
          Pid.Map.fold
            (fun _ (vb, v) acc ->
              match (v, acc) with
              | Some v, None -> Some (vb, v)
              | Some v, Some (vb', _) when vb > vb' -> Some (vb, v)
              | _ -> acc)
            one_bs None
        in
        let free_choice =
          match (s.initial, s.submitted) with
          | Some v, _ | None, Some v -> Some v
          | None, None -> None
        in
        let choice = match best with Some (_, v) -> Some v | None -> free_choice in
        match choice with
        | Some v ->
            let l = { l with one_bs; lvalue = Some v } in
            ({ s with leading = Some l }, send_two_a s bal v)
        | None -> ({ s with leading = Some { l with one_bs } }, [])
      end
      else ({ s with leading = Some { l with one_bs } }, [])
  | Some _ | None -> (s, [])

let on_two_a s ~src ~bal ~value =
  if bal >= s.bal then
    ( { s with bal; vbal = bal; value = Some value },
      [ Automaton.Send (src, Two_b { bal; value }) ] )
  else (s, [])

let on_two_b s ~src ~bal ~value =
  match s.leading with
  | Some l when Ballot.equal l.lballot bal && l.lvalue = Some value ->
      let l = { l with two_bs = Pid.Set.add src l.two_bs } in
      let s = { s with leading = Some l } in
      if Pid.Set.cardinal l.two_bs >= s.n - s.f then decide s value else (s, [])
  | Some _ | None -> (s, [])

let on_ballot_timer s =
  let rearm = Automaton.Set_timer { id = ballot_timer; after = 5 * s.delta } in
  if s.decided <> None then (s, [])
  else if Pid.equal (Omega.leader s.omega) s.self then begin
    match s.leading with
    | Some { lvalue = Some _; _ } when not s.grace_used ->
        (* Phase 2 in flight: let it finish before abandoning the ballot. *)
        ({ s with grace_used = true }, [ rearm ])
    | _ ->
        if Pid.equal s.self (ballot_owner ~n:s.n 0) && s.bal = 0 && s.leading = None then begin
          (* We are the initial leader and still idle: maybe we just have
             no value yet; retry the fast start. *)
          let s, actions = try_lead_fast s in
          ({ s with grace_used = false }, rearm :: actions)
        end
        else begin
          let b = Ballot.next_owned ~n:s.n ~self:s.self ~above:s.bal in
          let leading =
            { lballot = b; one_bs = Pid.Map.empty; lvalue = None; two_bs = Pid.Set.empty }
          in
          ( { s with leading = Some leading; grace_used = false },
            rearm :: Util.send_to_all ~n:s.n (One_a b) )
        end
  end
  else begin
    (* Re-forward our proposal: the leader may have changed or crashed. *)
    let resubmit =
      match (s.initial, s.decided) with
      | Some v, None -> [ Automaton.Send (Omega.leader s.omega, Submit v) ]
      | _ -> []
    in
    (s, rearm :: resubmit)
  end

(* Structural hash for the explorer's dedup (see {!Dsim.Fingerprint}):
   pids through [relabel], unordered containers folded commutatively. *)
let fingerprint ~relabel s =
  let module Fp = Dsim.Fingerprint in
  let pid p = Fp.int (relabel p) in
  let leading_fp l =
    let fp = Fp.mix 113L (Fp.int l.lballot) in
    let fp =
      Fp.mix fp
        (Fp.map
           (fun p (vbal, v) -> Fp.mix (Fp.mix (pid p) (Fp.int vbal)) (Fp.option Fp.int v))
           ~fold:Pid.Map.fold l.one_bs)
    in
    let fp = Fp.mix fp (Fp.option Fp.int l.lvalue) in
    Fp.mix fp (Fp.set pid ~fold:Pid.Set.fold l.two_bs)
  in
  let fp = Fp.mix 127L (pid s.self) in
  let fp = Fp.mix fp (Fp.int s.f) in
  let fp = Fp.mix fp (Fp.int s.bal) in
  let fp = Fp.mix fp (Fp.int s.vbal) in
  let fp = Fp.mix fp (Fp.option Fp.int s.value) in
  let fp = Fp.mix fp (Fp.option Fp.int s.initial) in
  let fp = Fp.mix fp (Fp.option Fp.int s.submitted) in
  let fp = Fp.mix fp (Fp.option Fp.int s.decided) in
  let fp = Fp.mix fp (Fp.option leading_fp s.leading) in
  let fp = Fp.mix fp (Fp.bool s.grace_used) in
  Fp.mix fp (Omega.fingerprint ~relabel s.omega)

let make ~n ~f ~delta =
  let init ~self ~n:n' =
    assert (n = n');
    let omega, omega_actions = Omega.init ~self ~n ~delta () in
    let s =
      {
        self;
        n;
        f;
        delta;
        bal = 0;
        vbal = 0;
        value = None;
        initial = None;
        submitted = None;
        decided = None;
        leading = None;
        grace_used = false;
        omega;
      }
    in
    let actions =
      Automaton.Set_timer { id = ballot_timer; after = 2 * delta }
      :: Automaton.map_msg (fun m -> Omega_msg m) omega_actions
    in
    (s, actions)
  in
  let on_message s ~src msg =
    match msg with
    | Submit v -> on_submit s v
    | One_a b -> on_one_a s ~src b
    | One_b { bal; vbal; value } -> on_one_b s ~src ~bal ~vbal ~value
    | Two_a { bal; value } -> on_two_a s ~src ~bal ~value
    | Two_b { bal; value } -> on_two_b s ~src ~bal ~value
    | Decide v -> decide s v
    | Omega_msg m ->
        let omega, actions = Omega.on_message s.omega ~src m in
        ({ s with omega }, Automaton.map_msg (fun m -> Omega_msg m) actions)
  in
  let on_input s v = propose s v in
  let on_timer s id =
    if id = ballot_timer then on_ballot_timer s
    else if Omega.owns_timer s.omega id then begin
      let omega, actions = Omega.on_timer s.omega id in
      ({ s with omega }, Automaton.map_msg (fun m -> Omega_msg m) actions)
    end
    else (s, [])
  in
  {
    Automaton.init;
    on_message;
    on_input;
    on_timer;
    state_copy = Fun.id;
    state_fingerprint = Some (fun ~relabel s -> fingerprint ~relabel s);
  }

let protocol : Proto.Protocol.t =
  (module struct
    type nonrec state = state

    type nonrec msg = msg

    let name = "paxos"

    let pp_msg = pp_msg

    let describe = "leader-driven single-decree Paxos (n >= 2f+1, not e-two-step)"

    let min_n ~e:_ ~f = (2 * f) + 1

    let make ~n ~e:_ ~f ~delta = make ~n ~f ~delta
  end)
