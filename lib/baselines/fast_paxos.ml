module Pid = Dsim.Pid
module Automaton = Dsim.Automaton
module Value = Proto.Value
module Ballot = Proto.Ballot
module Votes = Proto.Votes
module Omega = Proto.Omega
module Util = Proto.Util

type msg =
  | Propose of Value.t
  | Vote of { bal : Ballot.t; value : Value.t }  (* fast-ballot 2B, sent to all *)
  | One_a of Ballot.t
  | One_b of { bal : Ballot.t; vbal : Ballot.t; value : Value.t option }
  | Two_a of { bal : Ballot.t; value : Value.t }
  | Two_b of { bal : Ballot.t; value : Value.t }
  | Decide of Value.t
  | Omega_msg of Omega.msg

let pp_msg fmt = function
  | Propose v -> Format.fprintf fmt "Propose(%a)" Value.pp v
  | Vote { bal; value } -> Format.fprintf fmt "Vote(%a,%a)" Ballot.pp bal Value.pp value
  | One_a b -> Format.fprintf fmt "1A(%a)" Ballot.pp b
  | One_b { bal; vbal; value } ->
      Format.fprintf fmt "1B(%a,vbal=%a,val=%a)" Ballot.pp bal Ballot.pp vbal
        (Util.pp_opt Value.pp) value
  | Two_a { bal; value } -> Format.fprintf fmt "2A(%a,%a)" Ballot.pp bal Value.pp value
  | Two_b { bal; value } -> Format.fprintf fmt "2B(%a,%a)" Ballot.pp bal Value.pp value
  | Decide v -> Format.fprintf fmt "Decide(%a)" Value.pp v
  | Omega_msg m -> Omega.pp_msg fmt m

type leading = {
  lballot : Ballot.t;
  one_bs : (Ballot.t * Value.t option) Pid.Map.t;
  lvalue : Value.t option;
  two_bs : Pid.Set.t;
}

type state = {
  self : Pid.t;
  n : int;
  e : int;
  f : int;
  delta : int;
  bal : Ballot.t;
  vbal : Ballot.t;
  value : Value.t option;
  initial : Value.t option;
  decided : Value.t option;
  fast_votes : Votes.t;  (* ballot-0 votes observed, as a learner *)
  leading : leading option;
  omega : Omega.state;
}

let decided_value s = s.decided

let ballot_timer = 1

let decide s v =
  match s.decided with
  | Some _ -> (s, [])
  | None ->
      let s = { s with decided = Some v } in
      (s, Automaton.Output v :: Util.send_others ~n:s.n ~self:s.self (Decide v))

(* Learner role: check whether some value has a fast quorum of votes. *)
let try_fast_learn s =
  if s.decided <> None then (s, [])
  else begin
    match Votes.max_value_with_count_at_least (s.n - s.e) s.fast_votes with
    | Some v -> decide s v
    | None -> (s, [])
  end

(* Acceptor role: vote at ballot 0 for the first proposal received, and
   announce the vote to every learner. *)
let fast_vote s v =
  if Ballot.is_fast s.bal && s.value = None then begin
    let s = { s with value = Some v; vbal = 0 } in
    let s = { s with fast_votes = Votes.add v s.self s.fast_votes } in
    let announce = Util.send_others ~n:s.n ~self:s.self (Vote { bal = 0; value = v }) in
    let s, decide_actions = try_fast_learn s in
    (s, announce @ decide_actions)
  end
  else (s, [])

(* The proposal is sent to every acceptor including ourselves: an acceptor
   votes for the first proposal {e delivered} to it, so the scheduler keeps
   the freedom to order our own proposal among the others — Definition 4
   quantifies existentially over exactly this choice. *)
let propose s v =
  if s.initial <> None || s.decided <> None then (s, [])
  else begin
    let s = { s with initial = Some v } in
    (s, Util.send_to_all ~n:s.n (Propose v))
  end

let on_vote s ~src ~bal ~value =
  if Ballot.is_fast bal then begin
    let s = { s with fast_votes = Votes.add value src s.fast_votes } in
    try_fast_learn s
  end
  else (s, [])

let on_one_a s ~src b =
  if b > s.bal then
    ( { s with bal = b },
      [ Automaton.Send (src, One_b { bal = b; vbal = s.vbal; value = s.value }) ] )
  else (s, [])

(* Coordinated recovery: with [bmax = 0], any value holding >= n-e-f
   ballot-0 votes among the replies may have been fast-decided and must be
   proposed; it is unique when n >= 2e+f+1. *)
let pick_value s one_bs =
  let replies = List.map snd (Pid.Map.bindings one_bs) in
  let bmax = List.fold_left (fun acc (vb, _) -> max acc vb) 0 replies in
  if bmax > 0 then begin
    match List.find_opt (fun (vb, v) -> vb = bmax && v <> None) replies with
    | Some (_, Some v) -> Some v
    | _ -> None
  end
  else begin
    let votes =
      Pid.Map.fold
        (fun q (vb, v) acc ->
          match v with Some v when vb = 0 -> Votes.add v q acc | _ -> acc)
        one_bs Votes.empty
    in
    match Votes.max_value_with_count_at_least (s.n - s.e - s.f) votes with
    | Some v -> Some v
    | None -> (
        match s.initial with
        | Some v -> Some v
        | None -> Votes.max_value_with_count_at_least 1 votes)
  end

let on_one_b s ~src ~bal ~vbal ~value =
  match s.leading with
  | Some l when Ballot.equal l.lballot bal && l.lvalue = None ->
      let one_bs = Pid.Map.add src (vbal, value) l.one_bs in
      if Pid.Map.cardinal one_bs >= s.n - s.f then begin
        match pick_value s one_bs with
        | Some v ->
            let l = { l with one_bs; lvalue = Some v } in
            ( { s with leading = Some l },
              Util.send_to_all ~n:s.n (Two_a { bal; value = v }) )
        | None -> ({ s with leading = Some { l with one_bs } }, [])
      end
      else ({ s with leading = Some { l with one_bs } }, [])
  | Some _ | None -> (s, [])

let on_two_a s ~src ~bal ~value =
  if bal >= s.bal && bal > 0 then
    ( { s with bal; vbal = bal; value = Some value },
      [ Automaton.Send (src, Two_b { bal; value }) ] )
  else (s, [])

let on_two_b s ~src ~bal ~value =
  match s.leading with
  | Some l when Ballot.equal l.lballot bal && l.lvalue = Some value ->
      let l = { l with two_bs = Pid.Set.add src l.two_bs } in
      let s = { s with leading = Some l } in
      if Pid.Set.cardinal l.two_bs >= s.n - s.f then decide s value else (s, [])
  | Some _ | None -> (s, [])

let on_ballot_timer s =
  let rearm = Automaton.Set_timer { id = ballot_timer; after = 5 * s.delta } in
  if s.decided <> None then (s, [])
  else if Pid.equal (Omega.leader s.omega) s.self then begin
    let b = Ballot.next_owned ~n:s.n ~self:s.self ~above:s.bal in
    let leading =
      { lballot = b; one_bs = Pid.Map.empty; lvalue = None; two_bs = Pid.Set.empty }
    in
    ({ s with leading = Some leading }, rearm :: Util.send_to_all ~n:s.n (One_a b))
  end
  else (s, [ rearm ])

(* Structural hash for the explorer's dedup (see {!Dsim.Fingerprint}):
   pids through [relabel], unordered containers folded commutatively. *)
let fingerprint ~relabel s =
  let module Fp = Dsim.Fingerprint in
  let pid p = Fp.int (relabel p) in
  let leading_fp l =
    let fp = Fp.mix 113L (Fp.int l.lballot) in
    let fp =
      Fp.mix fp
        (Fp.map
           (fun p (vbal, v) -> Fp.mix (Fp.mix (pid p) (Fp.int vbal)) (Fp.option Fp.int v))
           ~fold:Pid.Map.fold l.one_bs)
    in
    let fp = Fp.mix fp (Fp.option Fp.int l.lvalue) in
    Fp.mix fp (Fp.set pid ~fold:Pid.Set.fold l.two_bs)
  in
  let fp = Fp.mix 131L (pid s.self) in
  let fp = Fp.mix fp (Fp.int s.e) in
  let fp = Fp.mix fp (Fp.int s.f) in
  let fp = Fp.mix fp (Fp.int s.bal) in
  let fp = Fp.mix fp (Fp.int s.vbal) in
  let fp = Fp.mix fp (Fp.option Fp.int s.value) in
  let fp = Fp.mix fp (Fp.option Fp.int s.initial) in
  let fp = Fp.mix fp (Fp.option Fp.int s.decided) in
  let fp = Fp.mix fp (Votes.fingerprint ~relabel s.fast_votes) in
  let fp = Fp.mix fp (Fp.option leading_fp s.leading) in
  Fp.mix fp (Omega.fingerprint ~relabel s.omega)

let make ~n ~e ~f ~delta =
  let init ~self ~n:n' =
    assert (n = n');
    let omega, omega_actions = Omega.init ~self ~n ~delta () in
    let s =
      {
        self;
        n;
        e;
        f;
        delta;
        bal = 0;
        vbal = 0;
        value = None;
        initial = None;
        decided = None;
        fast_votes = Votes.empty;
        leading = None;
        omega;
      }
    in
    let actions =
      Automaton.Set_timer { id = ballot_timer; after = 2 * delta }
      :: Automaton.map_msg (fun m -> Omega_msg m) omega_actions
    in
    (s, actions)
  in
  let on_message s ~src msg =
    match msg with
    | Propose v -> fast_vote s v
    | Vote { bal; value } -> on_vote s ~src ~bal ~value
    | One_a b -> on_one_a s ~src b
    | One_b { bal; vbal; value } -> on_one_b s ~src ~bal ~vbal ~value
    | Two_a { bal; value } -> on_two_a s ~src ~bal ~value
    | Two_b { bal; value } -> on_two_b s ~src ~bal ~value
    | Decide v -> decide s v
    | Omega_msg m ->
        let omega, actions = Omega.on_message s.omega ~src m in
        ({ s with omega }, Automaton.map_msg (fun m -> Omega_msg m) actions)
  in
  let on_input s v = propose s v in
  let on_timer s id =
    if id = ballot_timer then on_ballot_timer s
    else if Omega.owns_timer s.omega id then begin
      let omega, actions = Omega.on_timer s.omega id in
      ({ s with omega }, Automaton.map_msg (fun m -> Omega_msg m) actions)
    end
    else (s, [])
  in
  {
    Automaton.init;
    on_message;
    on_input;
    on_timer;
    state_copy = Fun.id;
    state_fingerprint = Some (fun ~relabel s -> fingerprint ~relabel s);
  }

let protocol : Proto.Protocol.t =
  (module struct
    type nonrec state = state

    type nonrec msg = msg

    let name = "fast-paxos"

    let pp_msg = pp_msg

    let describe = "Fast Paxos (Lamport), n >= max{2e+f+1, 2f+1}"

    let min_n ~e ~f = Proto.Bounds.required Proto.Bounds.Lamport_fast ~e ~f

    let make ~n ~e ~f ~delta = make ~n ~e ~f ~delta
  end)
