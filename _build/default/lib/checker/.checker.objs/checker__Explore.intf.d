lib/checker/explore.mli: Dsim Proto Scenario
