lib/checker/twostep.ml: Dsim Format List Proto Safety Scenario Stdext
