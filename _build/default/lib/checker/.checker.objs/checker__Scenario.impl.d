lib/checker/scenario.ml: Dsim List Proto
