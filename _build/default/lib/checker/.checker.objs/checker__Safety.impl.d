lib/checker/safety.ml: Dsim Format List Proto Scenario
