lib/checker/explore.ml: Dsim List Proto Scenario Stdext
