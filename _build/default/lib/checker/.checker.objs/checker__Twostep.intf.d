lib/checker/twostep.mli: Dsim Format Proto
