lib/checker/scenario.mli: Dsim Proto
