lib/checker/safety.mli: Dsim Format Proto Scenario
