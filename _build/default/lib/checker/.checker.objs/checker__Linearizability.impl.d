lib/checker/linearizability.ml: Format List Proto Scenario
