lib/checker/linearizability.mli: Scenario
