module Pid = Dsim.Pid
module Value = Proto.Value

type verdict = {
  validity : bool;
  agreement : bool;
  termination : bool;
  undecided_correct : Pid.t list;
  distinct_decisions : Value.t list;
}

let pp_verdict fmt v =
  Format.fprintf fmt "validity=%b agreement=%b termination=%b decisions=[%a] undecided=[%a]"
    v.validity v.agreement v.termination
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Value.pp)
    v.distinct_decisions
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp)
    v.undecided_correct

let check (o : Scenario.outcome) =
  let proposed = List.map (fun (_, _, v) -> v) o.proposals in
  let decided = List.map (fun (_, _, v) -> v) o.decisions in
  let distinct_decisions = List.sort_uniq Value.compare decided in
  let validity =
    List.for_all (fun v -> List.exists (Value.equal v) proposed) distinct_decisions
  in
  let agreement = List.length distinct_decisions <= 1 in
  let crashed = Pid.set_of_list (List.map snd o.crashes) in
  let correct = List.filter (fun p -> not (Pid.Set.mem p crashed)) (Pid.all ~n:o.n) in
  let decided_pids = Pid.set_of_list (List.map (fun (_, p, _) -> p) o.decisions) in
  let undecided_correct = List.filter (fun p -> not (Pid.Set.mem p decided_pids)) correct in
  let termination = undecided_correct = [] in
  { validity; agreement; termination; undecided_correct; distinct_decisions }

let safe o =
  let v = check o in
  v.validity && v.agreement

let live o =
  let v = check o in
  v.validity && v.agreement && v.termination
