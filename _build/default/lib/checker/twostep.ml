module Pid = Dsim.Pid
module Time = Dsim.Time
module Value = Proto.Value
module Combinat = Stdext.Combinat

type failure = {
  witness_e : Pid.t list;
  config : (Pid.t * Value.t) list;
  target : Pid.t option;
  item : int;
}

let pp_failure fmt f =
  let pp_pair fmt (p, v) = Format.fprintf fmt "%a:%a" Pid.pp p Value.pp v in
  Format.fprintf fmt "item %d: E=[%a] config=[%a]%a" f.item
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp)
    f.witness_e
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pair)
    f.config
    (fun fmt -> function
      | None -> ()
      | Some p -> Format.fprintf fmt " target=%a" Pid.pp p)
    f.target

type report = { checked_configs : int; checked_runs : int; failures : failure list }

let ok r = r.failures = []

let pp_report fmt r =
  if ok r then
    Format.fprintf fmt "OK (%d configurations, %d runs)" r.checked_configs r.checked_runs
  else
    Format.fprintf fmt "FAILED (%d configurations, %d runs):@,%a" r.checked_configs
      r.checked_runs
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_failure)
      r.failures

(* Shared search: does there exist an E-faulty synchronous run, starting
   from the given proposals, that is two-step for [target] (or for anybody
   when [target = None])? Candidate runs must also be safe. *)
let exists_two_step protocol ~n ~e ~f ~delta ~proposals ~crashed ~target ~random_orders
    ~runs_counter =
  let deadline = 2 * delta in
  let correct = List.filter (fun p -> not (List.mem p crashed)) (Pid.all ~n) in
  let try_order (net, seed) =
    incr runs_counter;
    let outcome =
      Scenario.run protocol ~n ~e ~f ~delta ~net ~proposals
        ~crashes:(Scenario.crash_at_start crashed) ~seed ~disable_timers:true
        ~until:(3 * delta) ()
    in
    if not (Safety.safe outcome) then false
    else begin
      let early = Scenario.decided_by outcome ~deadline in
      match target with
      | Some p -> List.mem p early
      | None -> early <> []
    end
  in
  let favor_orders =
    (* Favouring the eventual winner is how the paper's existence proofs
       construct the run; try the target (or every correct process) first. *)
    match target with
    | Some p -> List.map (fun q -> (Scenario.Sync (`Favor q), 0)) (p :: correct)
    | None -> List.map (fun q -> (Scenario.Sync (`Favor q), 0)) correct
  in
  let random = List.init random_orders (fun i -> (Scenario.Sync `Random, i + 1)) in
  List.exists try_order (favor_orders @ random)

let check_gen ~items protocol ~n ~e ~f ~delta ~random_orders =
  let runs_counter = ref 0 in
  let configs_counter = ref 0 in
  let failures = ref [] in
  let subsets = Combinat.subsets_of_size e (Pid.all ~n) in
  List.iter
    (fun crashed ->
      List.iter
        (fun (item, proposals, target) ->
          incr configs_counter;
          let found =
            exists_two_step protocol ~n ~e ~f ~delta ~proposals ~crashed ~target
              ~random_orders ~runs_counter
          in
          if not found then
            failures :=
              {
                witness_e = crashed;
                config = List.map (fun (_, p, v) -> (p, v)) proposals;
                target;
                item;
              }
              :: !failures)
        (items ~crashed))
    subsets;
  { checked_configs = !configs_counter; checked_runs = !runs_counter; failures = List.rev !failures }

let check_task protocol ~n ~e ~f ~delta ~values ?(random_orders = 5) () =
  if values = [] then invalid_arg "Twostep.check_task: empty value domain";
  let items ~crashed =
    let correct = List.filter (fun p -> not (List.mem p crashed)) (Pid.all ~n) in
    (* Item 1: every initial configuration, some process decides two-step. *)
    let all_configs =
      Combinat.cartesian (List.init n (fun _ -> values))
      |> List.map (fun vs -> (1, Scenario.all_proposals_at_zero ~n vs, None))
    in
    (* Item 2: same-value configurations, every correct process can decide
       two-step. The crashed processes' proposals are irrelevant (they take
       no step), so we give everyone the same value. *)
    let same_value =
      List.concat_map
        (fun v ->
          let proposals = Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> v)) in
          List.map (fun p -> (2, proposals, Some p)) correct)
        values
    in
    all_configs @ same_value
  in
  check_gen ~items protocol ~n ~e ~f ~delta ~random_orders

let check_object protocol ~n ~e ~f ~delta ~values ?(random_orders = 5) () =
  if values = [] then invalid_arg "Twostep.check_object: empty value domain";
  let items ~crashed =
    let correct = List.filter (fun p -> not (List.mem p crashed)) (Pid.all ~n) in
    (* Item 1: only [p] proposes [v]; the run must be two-step for [p]. *)
    let solo =
      List.concat_map
        (fun v ->
          List.map (fun p -> (1, [ (Time.zero, p, v) ], Some p)) correct)
        values
    in
    (* Item 2: all correct processes propose the same [v] at the beginning
       of the first round; two-step for each correct [p]. *)
    let same_value =
      List.concat_map
        (fun v ->
          let proposals = List.map (fun q -> (Time.zero, q, v)) correct in
          List.map (fun p -> (2, proposals, Some p)) correct)
        values
    in
    solo @ same_value
  in
  check_gen ~items protocol ~n ~e ~f ~delta ~random_orders
