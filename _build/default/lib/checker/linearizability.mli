(** Linearizability of single-shot consensus objects.

    For a consensus object (Castañeda-Rajsbaum-Raynal style), a run is
    linearizable iff all responses return the same value [v], [v] was the
    argument of some [propose] invocation, and that invocation started no
    later than the first response (real-time order). For the single-shot
    object these conditions are necessary and sufficient, so no search is
    involved. *)

type verdict = {
  linearizable : bool;
  reason : string option;  (** set when not linearizable *)
}

val check : Scenario.outcome -> verdict
(** Treats [outcome.proposals] as invocations and [outcome.decisions] as
    responses. *)
