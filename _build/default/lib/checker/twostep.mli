(** Checkers for the paper's e-two-step definitions.

    Both definitions quantify {e existentially} over E-faulty synchronous
    runs. Within the synchronous model of Definition 2 the remaining freedom
    is the per-recipient delivery order inside a round, so the checker
    searches over order policies: the [Favor p] orders (which realise the
    existence proofs: the winner's [Propose] is accepted first everywhere)
    and a batch of seeded random orders as a fallback. A reported failure
    therefore means "no run found within the search budget"; for the paper's
    protocol the [Favor] orders always suffice, making the check exact in
    practice.

    Runs are executed with protocol timers disabled (the property concerns
    only the first two rounds) and every run found is additionally required
    to be safe (validity + agreement). *)

type failure = {
  witness_e : Dsim.Pid.t list;  (** the crashed set E *)
  config : (Dsim.Pid.t * Proto.Value.t) list;  (** initial proposals tried *)
  target : Dsim.Pid.t option;  (** the process that had to decide, if specific *)
  item : int;  (** which item of the definition (1 or 2) *)
}

val pp_failure : Format.formatter -> failure -> unit

type report = {
  checked_configs : int;
  checked_runs : int;
  failures : failure list;
}

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

val check_task :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  values:Proto.Value.t list ->
  ?random_orders:int ->
  unit ->
  report
(** Definition 4 over all E ⊆ Π of size [e] and all initial configurations
    drawn from [values]^n (item 1), plus all same-value configurations
    (item 2). [random_orders] (default 5) random schedules are tried when no
    [Favor] order yields a two-step run. *)

val check_object :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  values:Proto.Value.t list ->
  ?random_orders:int ->
  unit ->
  report
(** Definition A.1: item 1 — for every value and every correct [p], a run
    where only [p] proposes is two-step for [p]; item 2 — all correct
    processes propose the same value and each correct [p] can decide
    two-step. *)
