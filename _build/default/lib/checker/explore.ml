module Pid = Dsim.Pid
module Time = Dsim.Time
module Combinat = Stdext.Combinat

type result = {
  explored : int;
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

(* A path (an [int list list]) prescribes, for each round boundary, the
   exact order in which the pending messages are delivered (as pending
   ids). Pending ids are deterministic for a fixed path, so replaying a
   path always reconstructs the same run. *)

let synchronous (module P : Proto.Protocol.S) ~n ~e ~f ~delta ~proposals ?(crashes = [])
    ~rounds ?(budget = 20_000) ?(perm_limit = 4) ?(disable_timers = true) ~check () =
  let explored = ref 0 in
  let violations = ref 0 in
  let first_violation = ref None in
  let truncated = ref false in
  let fresh () =
    let automaton = P.make ~n ~e ~f ~delta in
    Dsim.Engine.create ~automaton ~n ~network:Dsim.Network.Manual ~seed:0
      ~disable_timers ~record_trace:true ~inputs:proposals ~crashes ()
  in
  (* Replay [path]: for round k (1-based), deliver the prescribed pending
     messages at k*delta, then advance to just before the next boundary. *)
  let replay path =
    let engine = fresh () in
    let deliver_round k ids =
      let boundary = k * delta in
      ignore (Dsim.Engine.run ~until:(boundary - 1) engine);
      List.iter (fun id -> Dsim.Engine.deliver_pending engine ~id ~at:boundary) ids;
      ignore (Dsim.Engine.run ~until:boundary engine)
    in
    List.iteri (fun i ids -> deliver_round (i + 1) ids) path;
    engine
  in
  let outcome_of engine =
    let trace = Dsim.Engine.trace engine in
    {
      Scenario.decisions = Dsim.Engine.outputs engine;
      proposals = Dsim.Trace.inputs trace;
      crashes = Dsim.Trace.crashes trace;
      n;
      horizon = Dsim.Engine.now engine;
      messages = Dsim.Trace.message_count trace;
      engine_result = Dsim.Engine.Quiescent;
    }
  in
  let orders_for_batch ids =
    if List.length ids <= perm_limit then Combinat.permutations ids
    else begin
      truncated := true;
      [ ids; List.rev ids ]
    end
  in
  let evaluate engine =
    incr explored;
    let outcome = outcome_of engine in
    if not (check outcome) then begin
      incr violations;
      if !first_violation = None then first_violation := Some outcome
    end
  in
  let rec dfs path round =
    if !explored >= budget then truncated := true
    else begin
      let engine = replay path in
      (* Process everything strictly before the coming boundary (init and
         inputs at the first level, timers in between later) so the pending
         pool holds exactly this round's messages. *)
      ignore (Dsim.Engine.run ~until:((round * delta) - 1) engine);
      if round > rounds then evaluate engine
      else begin
        (* What is pending for the coming boundary? Group per correct
           recipient; messages to crashed processes are irrelevant and are
           appended in arrival order. *)
        let pending = Dsim.Engine.pending engine in
        if pending = [] then evaluate engine
        else begin
          let to_live, to_crashed =
            List.partition
              (fun (p : _ Dsim.Engine.pending) -> not (Dsim.Engine.crashed engine p.dst))
              pending
          in
          let dsts =
            List.sort_uniq Pid.compare
              (List.map (fun (p : _ Dsim.Engine.pending) -> p.dst) to_live)
          in
          let per_dst_orders =
            List.map
              (fun dst ->
                let ids =
                  List.filter_map
                    (fun (p : _ Dsim.Engine.pending) ->
                      if Pid.equal p.dst dst then Some p.id else None)
                    to_live
                in
                orders_for_batch ids)
              dsts
          in
          let crashed_ids = List.map (fun (p : _ Dsim.Engine.pending) -> p.id) to_crashed in
          let combos = Combinat.cartesian per_dst_orders in
          List.iter
            (fun combo ->
              if !explored < budget then begin
                let ids = List.concat combo @ crashed_ids in
                dfs (path @ [ ids ]) (round + 1)
              end
              else truncated := true)
            combos
        end
      end
    end
  in
  dfs [] 1;
  {
    explored = !explored;
    violations = !violations;
    first_violation = !first_violation;
    truncated = !truncated;
  }
