module Value = Proto.Value

type verdict = { linearizable : bool; reason : string option }

let fail reason = { linearizable = false; reason = Some reason }

let check (o : Scenario.outcome) =
  match o.decisions with
  | [] -> { linearizable = true; reason = None }
  | (first_time, _, first_value) :: _ -> begin
      let values = List.sort_uniq Value.compare (List.map (fun (_, _, v) -> v) o.decisions) in
      match values with
      | [ v ] -> begin
          assert (Value.equal v first_value);
          (* The deciding value must come from an invocation that started
             before the first response completed. *)
          let witness =
            List.exists
              (fun (t, _, proposed) -> Value.equal proposed v && t <= first_time)
              o.proposals
          in
          if witness then { linearizable = true; reason = None }
          else
            fail
              (Format.asprintf
                 "decided %a, but no propose(%a) was invoked before the first response"
                 Value.pp v Value.pp v)
        end
      | _ ->
          fail
            (Format.asprintf "conflicting decisions: %a"
               (Format.pp_print_list ~pp_sep:Format.pp_print_space Value.pp)
               values)
    end
