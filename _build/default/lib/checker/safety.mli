(** Consensus safety and liveness checks over run outcomes.

    - {b Validity}: every decision is the proposal of some process.
    - {b Agreement}: no two decisions differ (across all processes, and a
      process never decides twice differently).
    - {b Termination}: every correct process decides (checked against the
      run's horizon, so only meaningful on runs long enough to stabilise). *)

type verdict = {
  validity : bool;
  agreement : bool;
  termination : bool;
  undecided_correct : Dsim.Pid.t list;  (** correct processes without a decision *)
  distinct_decisions : Proto.Value.t list;  (** all decided values, deduplicated *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val check : Scenario.outcome -> verdict

val safe : Scenario.outcome -> bool
(** Validity and agreement only (ignores termination). *)

val live : Scenario.outcome -> bool
(** All of validity, agreement, termination. *)
