(** Bounded-exhaustive exploration of synchronous schedules.

    In the E-faulty synchronous model every round-[k] message is delivered
    at the round boundary [k*Δ]; the only scheduling freedom is each
    recipient's delivery order. This module enumerates those orders
    (depth-first, re-executing the deterministic engine along each path) up
    to a round horizon and a run budget, and evaluates a property on every
    complete run. It is the small-scope model checker behind the tightness
    experiments: at the bound the property holds on every explored schedule,
    below the bound a violating schedule is found.

    Batches larger than [perm_limit] messages fall back to two
    representative orders (arrival and reversed) to keep the product
    tractable; [truncated] reports whether any fallback or budget cut
    occurred, i.e. whether the exploration was exhaustive. *)

type result = {
  explored : int;  (** complete runs evaluated *)
  violations : int;
  first_violation : Scenario.outcome option;
  truncated : bool;
}

val synchronous :
  Proto.Protocol.t ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  proposals:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
  ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
  rounds:int ->
  ?budget:int ->
  ?perm_limit:int ->
  ?disable_timers:bool ->
  check:(Scenario.outcome -> bool) ->
  unit ->
  result
(** [check] returns [false] on a violating run. [budget] defaults to 20_000
    runs, [perm_limit] to 4, [disable_timers] to [true]. *)
