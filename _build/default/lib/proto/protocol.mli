(** Uniform packaging of consensus protocols.

    Every protocol in this repository — the paper's protocol, Paxos, Fast
    Paxos, the EPaxos-style baseline — implements {!S}: proposals arrive as
    environment inputs ([on_input v] is [propose v]; for the consensus
    {e task} the harness injects every process's input at time 0), and a
    decision is an environment output. Checkers, examples and benchmarks
    work against this signature only. *)

module type S = sig
  type state

  type msg

  val name : string

  val pp_msg : Format.formatter -> msg -> unit

  val describe : string
  (** One-line human description. *)

  val min_n : e:int -> f:int -> int
  (** Minimal number of processes at which the protocol guarantees both
      consensus and its fast-decision property. *)

  val make :
    n:int -> e:int -> f:int -> delta:int -> (state, msg, Value.t, Value.t) Dsim.Automaton.t
  (** Build the automaton for a system of [n] processes tolerating [f]
      crashes with fast-path threshold [e], where one expected message delay
      is [delta] ticks. *)
end

type t = (module S)

val name : t -> string
