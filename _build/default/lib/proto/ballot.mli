(** Ballots.

    Ballot 0 is the {e fast} ballot; every positive ballot is {e slow} and
    owned by the process [b mod n] (the paper's "ballot [b] such that
    [i ≡ b (mod n)]"). *)

type t = int

val fast : t
(** Ballot 0. *)

val is_fast : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val leader_of : n:int -> t -> Dsim.Pid.t
(** Owner of a slow ballot. Raises [Invalid_argument] on the fast ballot. *)

val next_owned : n:int -> self:Dsim.Pid.t -> above:t -> t
(** Smallest slow ballot strictly greater than [above] owned by [self]. *)
