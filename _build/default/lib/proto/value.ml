type t = int

let equal = Int.equal

let compare = Int.compare

let pp fmt v = Format.fprintf fmt "v%d" v

let geq_bottom v = function None -> true | Some w -> v >= w

let max_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (max a b)
