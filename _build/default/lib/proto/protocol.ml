module type S = sig
  type state

  type msg

  val name : string

  val pp_msg : Format.formatter -> msg -> unit

  val describe : string

  val min_n : e:int -> f:int -> int

  val make :
    n:int -> e:int -> f:int -> delta:int -> (state, msg, Value.t, Value.t) Dsim.Automaton.t
end

type t = (module S)

let name (module P : S) = P.name
