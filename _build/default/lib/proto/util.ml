let send_to_all ~n m = List.map (fun q -> Dsim.Automaton.Send (q, m)) (Dsim.Pid.all ~n)

let send_others ~n ~self m =
  List.map (fun q -> Dsim.Automaton.Send (q, m)) (Dsim.Pid.others ~n self)

let pp_opt pp fmt = function
  | None -> Format.pp_print_string fmt "⊥"
  | Some x -> pp fmt x
