module Vmap = Map.Make (Int)

type t = Dsim.Pid.Set.t Vmap.t

let empty = Vmap.empty

let add v pid t =
  let set = Option.value ~default:Dsim.Pid.Set.empty (Vmap.find_opt v t) in
  Vmap.add v (Dsim.Pid.Set.add pid set) t

let supporters v t = Option.value ~default:Dsim.Pid.Set.empty (Vmap.find_opt v t)

let count v t = Dsim.Pid.Set.cardinal (supporters v t)

let tally t = Vmap.fold (fun v set acc -> (v, Dsim.Pid.Set.cardinal set) :: acc) t [] |> List.rev

let values_with_count_at_least k t =
  List.filter_map (fun (v, c) -> if c >= k then Some v else None) (tally t)

let values_with_count_exactly k t =
  List.filter_map (fun (v, c) -> if c = k then Some v else None) (tally t)

let max_value_with_count_at_least k t =
  match List.rev (values_with_count_at_least k t) with [] -> None | v :: _ -> Some v

let total_pids t =
  Vmap.fold (fun _ set acc -> Dsim.Pid.Set.union set acc) t Dsim.Pid.Set.empty
  |> Dsim.Pid.Set.cardinal
