(** Helpers shared by protocol implementations. *)

val send_to_all : n:int -> 'msg -> ('msg, 'output) Dsim.Automaton.action list
(** One [Send] per process, {e including} the sender — the paper's
    "send to Π". *)

val send_others :
  n:int -> self:Dsim.Pid.t -> 'msg -> ('msg, 'output) Dsim.Automaton.action list
(** One [Send] per process except [self] — "send to Π ∖ {p_i}". *)

val pp_opt :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a option -> unit
(** Prints [None] as ⊥. *)
