type formulation = Lamport_fast | Task | Object

let pp_formulation fmt = function
  | Lamport_fast -> Format.pp_print_string fmt "Lamport-fast"
  | Task -> Format.pp_print_string fmt "task"
  | Object -> Format.pp_print_string fmt "object"

let required formulation ~e ~f =
  if e < 0 || f < e then invalid_arg "Bounds.required: need 0 <= e <= f";
  let core =
    match formulation with
    | Lamport_fast -> (2 * e) + f + 1
    | Task -> (2 * e) + f
    | Object -> (2 * e) + f - 1
  in
  max core ((2 * f) + 1)

let feasible formulation ~n ~e ~f = n >= required formulation ~e ~f

let fast_quorum ~n ~e = n - e

let classic_quorum ~n ~f = n - f

let recovery_threshold ~n ~e ~f = n - f - e

let epaxos_e ~f = (f + 1 + 1) / 2
