type t = int

let fast = 0

let is_fast b = b = 0

let equal = Int.equal

let compare = Int.compare

let pp fmt b = if b = 0 then Format.pp_print_string fmt "fast" else Format.fprintf fmt "b%d" b

let leader_of ~n b =
  if b <= 0 then invalid_arg "Ballot.leader_of: the fast ballot has no owner";
  b mod n

let next_owned ~n ~self ~above =
  let base = max above 0 in
  let candidate = ((base / n) * n) + self in
  let candidate = if candidate > base then candidate else candidate + n in
  (* pid 0 owns ballots n, 2n, ...; never return the fast ballot *)
  if candidate = 0 then n else candidate
