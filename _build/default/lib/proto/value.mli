(** Consensus values.

    The paper's protocol relies on a total order over proposals (the fast
    path accepts a [Propose] only for values [>=] the process's own, and the
    recovery rule breaks ties by the {e maximal} value), with ⊥ strictly
    below every value. We represent values as non-negative integers and ⊥ as
    [None] at the protocol layer. *)

type t = int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val geq_bottom : t -> t option -> bool
(** [geq_bottom v bot] is [v >= bot] where [None] is ⊥ (below everything). *)

val max_opt : t option -> t option -> t option
(** Maximum under the ⊥-extended order. *)
