lib/proto/votes.mli: Dsim Value
