lib/proto/omega.ml: Dsim Format List
