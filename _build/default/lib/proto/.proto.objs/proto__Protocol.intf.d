lib/proto/protocol.mli: Dsim Format Value
