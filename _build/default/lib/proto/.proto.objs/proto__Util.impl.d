lib/proto/util.ml: Dsim Format List
