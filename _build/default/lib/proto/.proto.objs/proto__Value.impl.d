lib/proto/value.ml: Format Int
