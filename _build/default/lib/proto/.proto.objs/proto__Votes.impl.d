lib/proto/votes.ml: Dsim Int List Map Option
