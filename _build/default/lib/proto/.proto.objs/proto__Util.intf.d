lib/proto/util.mli: Dsim Format
