lib/proto/value.mli: Format
