lib/proto/omega.mli: Dsim Format
