lib/proto/ballot.mli: Dsim Format
