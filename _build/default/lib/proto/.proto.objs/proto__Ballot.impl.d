lib/proto/ballot.ml: Format Int
