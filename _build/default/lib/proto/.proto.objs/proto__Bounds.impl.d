lib/proto/bounds.ml: Format
