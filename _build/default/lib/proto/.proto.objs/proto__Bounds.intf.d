lib/proto/bounds.mli: Format
