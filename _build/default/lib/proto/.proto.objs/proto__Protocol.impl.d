lib/proto/protocol.ml: Dsim Format Value
