(** The process-count bounds studied by the paper. *)

type formulation =
  | Lamport_fast  (** Lamport's definition; matched by Fast Paxos. *)
  | Task  (** e-two-step consensus task (Definition 4, Theorem 5). *)
  | Object  (** e-two-step consensus object (Definition A.1, Theorem 6). *)

val pp_formulation : Format.formatter -> formulation -> unit

val required : formulation -> e:int -> f:int -> int
(** Minimal [n]: [max{2e+f+1, 2f+1}] / [max{2e+f, 2f+1}] /
    [max{2e+f-1, 2f+1}]. Requires [0 <= e <= f]. *)

val feasible : formulation -> n:int -> e:int -> f:int -> bool
(** [n >= required]. *)

val fast_quorum : n:int -> e:int -> int
(** Size of a fast quorum: [n - e]. *)

val classic_quorum : n:int -> f:int -> int
(** Size of a classic (slow-path) quorum: [n - f]. *)

val recovery_threshold : n:int -> e:int -> f:int -> int
(** [n - f - e]: the minimum overlap between a fast quorum and the [n - f]
    replies collected during recovery; the pivot of lines 15–17 of Figure 1. *)

val epaxos_e : f:int -> int
(** The fast-failure threshold Egalitarian Paxos achieves with [2f+1]
    processes: [e = ceil((f+1)/2)] (paper §1). *)
