(** Vote bookkeeping: which processes support which value.

    Used by the fast paths (counting [2B] acknowledgements) and by the
    recovery rules (counting ballot-0 votes reported in [1B] messages). *)

type t

val empty : t

val add : Value.t -> Dsim.Pid.t -> t -> t
(** Adding the same (value, pid) pair twice is idempotent. *)

val count : Value.t -> t -> int

val supporters : Value.t -> t -> Dsim.Pid.Set.t

val tally : t -> (Value.t * int) list
(** All values with their counts, values ascending. *)

val values_with_count_at_least : int -> t -> Value.t list
(** Ascending. With threshold 0 lists every recorded value. *)

val values_with_count_exactly : int -> t -> Value.t list

val max_value_with_count_at_least : int -> t -> Value.t option

val total_pids : t -> int
(** Number of distinct processes that voted (for any value). *)
