type t = int

let equal = Int.equal

let compare = Int.compare

let pp fmt p = Format.fprintf fmt "p%d" p

let all ~n = List.init n (fun i -> i)

let others ~n p = List.filter (fun q -> q <> p) (all ~n)

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list = Set.of_list
