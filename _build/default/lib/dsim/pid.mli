(** Process identifiers.

    A system of [n] processes is identified as [0 .. n-1]; the paper's
    process [p_i] is pid [i-1]. *)

type t = int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [p3]. *)

val all : n:int -> t list
(** [all ~n] is [\[0; ...; n-1\]]. *)

val others : n:int -> t -> t list
(** Every pid except the given one. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
