lib/dsim/engine.ml: Array Automaton Hashtbl Int List Network Option Pid Stdext Time Trace
