lib/dsim/engine.mli: Automaton Network Pid Time Trace
