lib/dsim/time.ml: Format
