lib/dsim/automaton.ml: List Pid Time
