lib/dsim/trace.ml: Automaton Format List Pid Time
