lib/dsim/automaton.mli: Pid Time
