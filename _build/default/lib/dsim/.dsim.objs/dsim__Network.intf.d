lib/dsim/network.mli: Pid Stdext Time
