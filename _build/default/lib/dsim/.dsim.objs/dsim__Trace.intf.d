lib/dsim/trace.mli: Automaton Format Pid Time
