lib/dsim/pid.ml: Format Int List Map Set
