lib/dsim/pid.mli: Format Map Set
