lib/dsim/network.ml: Int List Pid Stdext Time
