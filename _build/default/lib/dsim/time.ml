type t = int

let zero = 0

let pp fmt t = Format.fprintf fmt "t=%d" t

let round_of ~delta t =
  if delta <= 0 then invalid_arg "Time.round_of: delta must be positive";
  (t / delta) + 1

let round_start ~delta k =
  if k < 1 then invalid_arg "Time.round_start: rounds are 1-based";
  (k - 1) * delta
