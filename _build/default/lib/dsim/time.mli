(** Virtual time, measured in integer ticks.

    The simulation is untyped about what a tick means; the synchronous-round
    network model interprets [delta] ticks as one message delay Δ, and the
    WAN model interprets ticks as milliseconds. *)

type t = int

val zero : t

val pp : Format.formatter -> t -> unit

val round_of : delta:int -> t -> int
(** [round_of ~delta t] is the 1-based round containing [t]: events in
    [\[0, delta)] are round 1, [\[delta, 2*delta)] round 2, ... (Definition 2
    of the paper). *)

val round_start : delta:int -> int -> t
(** [round_start ~delta k] is the first instant of (1-based) round [k]. *)
