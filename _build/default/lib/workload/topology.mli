(** Synthetic wide-area topologies.

    The paper motivates its bounds by wide-area deployments, "where
    contacting an additional process may incur a cost of hundreds of
    milliseconds per command" (§1). These presets give the benchmarks
    realistic one-way inter-region latencies (milliseconds; roughly half of
    publicly reported inter-region RTTs). Processes are placed round-robin
    across regions: pid [i] lives in region [i mod regions]. *)

type t

val name : t -> string

val regions : t -> string list

val region_of_pid : t -> Dsim.Pid.t -> string

val oneway : t -> int -> int -> int
(** [oneway t i j]: one-way latency in ms between region indices. *)

val latency_fn : t -> src:Dsim.Pid.t -> dst:Dsim.Pid.t -> int
(** Latency between two processes under round-robin placement. Same-region
    traffic costs the matrix diagonal (>= 1 ms). *)

val max_oneway : t -> int
(** The largest entry of the matrix — a sound Δ for the topology. *)

val local_cluster : t
(** Single datacenter, 1 ms everywhere. *)

val three_az : t
(** Three availability zones at 2 ms. *)

val planet5 : t
(** Virginia, Oregon, Ireland, Frankfurt, Tokyo. *)

val planet9 : t
(** The five above plus São Paulo, Sydney, Singapore, Mumbai. *)

val presets : t list
