module Rng = Stdext.Rng

let common_value = 0

let proposals ~rng ~n ~rate =
  List.init n (fun p ->
      let deviates = Rng.float rng 1.0 < rate in
      (* Distinct deviators propose p+1, guaranteeing pairwise-distinct
         values all above the common one. *)
      let v = if deviates then p + 1 else common_value in
      (0, p, v))

let proposer_subset ~rng ~n ~count ~rate =
  let chosen = List.filteri (fun i _ -> i < count) (Rng.shuffle rng (Dsim.Pid.all ~n)) in
  List.map
    (fun p ->
      let deviates = Rng.float rng 1.0 < rate in
      let v = if deviates then p + 1 else common_value in
      (0, p, v))
    chosen

let is_conflicting proposals =
  let values = List.sort_uniq Int.compare (List.map (fun (_, _, v) -> v) proposals) in
  List.length values > 1
