type t = { name : string; region_names : string array; matrix : int array array }

let name t = t.name

let regions t = Array.to_list t.region_names

let region_count t = Array.length t.region_names

let region_of_pid t pid = t.region_names.(pid mod region_count t)

let oneway t i j = t.matrix.(i).(j)

let latency_fn t ~src ~dst =
  let k = region_count t in
  max 1 t.matrix.(src mod k).(dst mod k)

let max_oneway t =
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 1 t.matrix

let make name region_names matrix =
  let k = Array.length region_names in
  assert (Array.length matrix = k);
  Array.iter
    (fun row -> assert (Array.length row = k))
    matrix;
  (* Symmetry keeps scenarios easy to reason about. *)
  Array.iteri (fun i row -> Array.iteri (fun j v -> assert (v = matrix.(j).(i))) row) matrix;
  { name; region_names; matrix }

let local_cluster =
  make "local-cluster" [| "dc1" |] [| [| 1 |] |]

let three_az =
  make "three-az"
    [| "az-a"; "az-b"; "az-c" |]
    [| [| 1; 2; 2 |]; [| 2; 1; 2 |]; [| 2; 2; 1 |] |]

(* One-way ms, approximately half of commonly reported inter-region RTTs. *)
let planet5 =
  make "planet5"
    [| "virginia"; "oregon"; "ireland"; "frankfurt"; "tokyo" |]
    [|
      [| 1; 35; 40; 45; 75 |];
      [| 35; 1; 65; 75; 50 |];
      [| 40; 65; 1; 12; 110 |];
      [| 45; 75; 12; 1; 115 |];
      [| 75; 50; 110; 115; 1 |];
    |]

let planet9 =
  make "planet9"
    [|
      "virginia"; "oregon"; "ireland"; "frankfurt"; "tokyo"; "sao-paulo"; "sydney";
      "singapore"; "mumbai";
    |]
    [|
      [| 1; 35; 40; 45; 75; 60; 100; 110; 95 |];
      [| 35; 1; 65; 75; 50; 90; 70; 85; 110 |];
      [| 40; 65; 1; 12; 110; 95; 135; 90; 60 |];
      [| 45; 75; 12; 1; 115; 100; 140; 85; 55 |];
      [| 75; 50; 110; 115; 1; 130; 55; 35; 60 |];
      [| 60; 90; 95; 100; 130; 1; 160; 165; 150 |];
      [| 100; 70; 135; 140; 55; 160; 1; 45; 110 |];
      [| 110; 85; 90; 85; 35; 165; 45; 1; 30 |];
      [| 95; 110; 60; 55; 60; 150; 110; 30; 1 |];
    |]

let presets = [ local_cluster; three_az; planet5; planet9 ]
