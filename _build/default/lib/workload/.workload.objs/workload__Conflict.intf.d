lib/workload/conflict.mli: Dsim Proto Stdext
