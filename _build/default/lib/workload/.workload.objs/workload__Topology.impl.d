lib/workload/topology.ml: Array
