lib/workload/topology.mli: Dsim
