lib/workload/conflict.ml: Dsim Int List Stdext
