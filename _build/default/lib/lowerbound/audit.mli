(** Exhaustive audit of the recovery lemmas (Lemma 7 and Lemma C.2).

    The lemmas claim: {e if a value was decided on the fast path at ballot
    0, the slow-ballot selection rule always re-selects it} — for the task
    protocol when [n >= 2e+f], for the object protocol when
    [n >= 2e+f-1].

    The audit enumerates every {e realizable} three-value vote layout a
    recovering leader can observe: the decided value [d] plus up to two
    competitors, votes split between the reply quorum [Q] (size [n-f]) and
    the [f] processes outside, proposers placed inside or outside [Q], and
    every relative value ordering. Realizability encodes the protocol's
    acceptance rules: in task mode a process votes only for values at least
    its own proposal (so a competitor's proposer can vote for [d] only when
    [d] is larger); in object mode a proposer votes only for its own value.
    For each layout, {!Core.Recovery.select} must return [d].

    Run at the theorem's bound the audit passes; run one process below it
    reports the violating layouts — the same boundary the engine-level
    {!Witness} scenarios exhibit. *)

type stats = {
  layouts : int;  (** realizable layouts enumerated *)
  failures : int;  (** layouts where the rule picked another value *)
  example : string option;  (** a pretty-printed failing layout, if any *)
}

val pp_stats : Format.formatter -> stats -> unit

val check : mode:Core.Rgs.mode -> n:int -> e:int -> f:int -> stats
