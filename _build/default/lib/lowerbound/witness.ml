module Pid = Dsim.Pid
module Time = Dsim.Time
module Engine = Dsim.Engine
module Value = Proto.Value
module Rgs = Core.Rgs

type result = {
  n : int;
  e : int;
  f : int;
  mode : Rgs.mode;
  fast_decider : Pid.t;
  fast_value : Value.t;
  recovery_decisions : (Pid.t * Value.t) list;
  agreement_violated : bool;
  horizon : Time.t;
}

let pp_result fmt r =
  let pp_decision fmt (p, v) = Format.fprintf fmt "%a:%a" Pid.pp p Value.pp v in
  Format.fprintf fmt
    "%a mode, n=%d e=%d f=%d: %a fast-decided %a; recovery decided [%a] -> agreement %s"
    Rgs.pp_mode r.mode r.n r.e r.f Pid.pp r.fast_decider Value.pp r.fast_value
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_decision)
    r.recovery_decisions
    (if r.agreement_violated then "VIOLATED" else "preserved")

let is_decide_from src (p : Rgs.msg Engine.pending) =
  Pid.equal p.src src && match p.msg with Rgs.Decide _ -> true | _ -> false

let finish ~n ~e ~f ~mode ~fast_decider ~fast_value engine =
  let crashed = Pid.set_of_list (List.map snd (Dsim.Trace.crashes (Engine.trace engine))) in
  let recovery_decisions =
    Engine.outputs engine
    |> List.filter_map (fun (_, p, v) ->
           if Pid.Set.mem p crashed then None else Some (p, v))
  in
  let agreement_violated =
    List.exists (fun (_, v) -> not (Value.equal v fast_value)) recovery_decisions
  in
  {
    n;
    e;
    f;
    mode;
    fast_decider;
    fast_value;
    recovery_decisions;
    agreement_violated;
    horizon = Engine.now engine;
  }

(* Shared skeleton: run the two adversarial synchronous rounds with a
   per-recipient source priority, let [fast_decider] decide at 2Δ, crash
   [crash_set] with the decider's [Decide] broadcast lost, then pump
   synchronous rounds so the survivors recover on the slow path. *)
let run_choreography ~mode ~n ~e ~f ~delta ~proposals ~priority ~crash_set ~fast_decider
    ~fast_value =
  let automaton = Rgs.make ~mode ~n ~e ~f ~delta in
  let engine =
    Engine.create ~automaton ~n ~network:Dsim.Network.Manual ~seed:0
      ~inputs:(List.map (fun (p, v) -> (Time.zero, p, v)) proposals)
      ()
  in
  ignore (Engine.run ~until:0 engine);
  (* Round 1 -> boundary Δ: deliver every proposal, favoured sources first
     per recipient. *)
  Splice.deliver_round engine ~at:delta ~order:(Splice.favor_sources ~first:priority) ();
  (* Round 2 -> boundary 2Δ: deliver the 2B votes; the fast decider reaches
     its quorum exactly now. *)
  Splice.deliver_round engine ~at:(2 * delta) ();
  assert (
    match Rgs.decided_value (Engine.state engine fast_decider) with
    | Some v -> Value.equal v fast_value
    | None -> false);
  (* The decider and its fast voters outside the future recovery quorum
     crash; the freshly sent Decide messages are lost with them. *)
  List.iter (fun p -> Engine.schedule_crash engine ~at:((2 * delta) + 1) p) crash_set;
  ignore (Engine.run ~until:((2 * delta) + 1) engine);
  (* Continuation λ: emulate a synchronous network; the Ω leader among the
     survivors drives a slow ballot to completion. *)
  Splice.pump engine ~delta ~until:(30 * delta) ~drop:(is_decide_from fast_decider) ();
  finish ~n ~e ~f ~mode ~fast_decider ~fast_value engine

let task_scenario ~n ~e ~f ?(delta = 100) () =
  if e < 2 || f < 2 || n < e + f + 1 then
    invalid_arg "Witness.task_scenario: need e >= 2, f >= 2, n >= e+f+1";
  let a = n - f - e in
  (* Pids: [0..a-1] vote v inside Q; [a..a+e-1] vote w inside Q;
     [n-f..n-3] extra v-voters outside Q; pv = n-2; pw = n-1. *)
  let v = 10 and w = 5 in
  let pv = n - 2 and pw = n - 1 in
  let extras = List.init (f - 2) (fun i -> n - f + i) in
  let a_group = List.init a (fun i -> i) in
  let b_group = List.init e (fun i -> a + i) in
  let proposals =
    List.map (fun p -> (p, 0)) (a_group @ extras)
    @ List.map (fun p -> (p, 1)) b_group
    @ [ (pv, v); (pw, w) ]
  in
  (* Who hears whom first: Q's w-voters take pw's proposal; everyone else
     takes pv's. pv itself accepts nothing (every other value is below v). *)
  let priority ~dst ~src =
    if List.mem dst b_group then Pid.equal src pw else Pid.equal src pv
  in
  run_choreography ~mode:Rgs.Task ~n ~e ~f ~delta ~proposals ~priority
    ~crash_set:(extras @ [ pv; pw ])
    ~fast_decider:pv ~fast_value:v

let object_scenario ~n ~e ~f ?(delta = 100) () =
  if e < 2 || f < 2 || n < e + f then
    invalid_arg "Witness.object_scenario: need e >= 2, f >= 2, n >= e+f";
  (* Pids: E0* = [0..a-1] (vote 0), E1* = [a..a+e-2] (vote 1),
     F = [n-f..n-3] (vote 0), p = n-2 proposes 0, q = n-1 proposes 1.
     Only p and q invoke propose — the object-only freedom the lower bound
     exploits. Values chosen so the violating tie-break picks q's value. *)
  let a = n - e - f + 1 in
  let p = n - 2 and q = n - 1 in
  let f_group = List.init (f - 2) (fun i -> n - f + i) in
  let e0_star = List.init a (fun i -> i) in
  let e1_star = List.init (e - 1) (fun i -> a + i) in
  ignore e0_star;
  let proposals = [ (p, 0); (q, 1) ] in
  let priority ~dst ~src =
    if List.mem dst e1_star then Pid.equal src q else Pid.equal src p
  in
  run_choreography ~mode:Rgs.Object ~n ~e ~f ~delta ~proposals ~priority
    ~crash_set:(f_group @ [ p; q ])
    ~fast_decider:p ~fast_value:0
