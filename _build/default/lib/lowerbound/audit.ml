module Recovery = Core.Recovery

type stats = { layouts : int; failures : int; example : string option }

let pp_stats fmt s =
  Format.fprintf fmt "%d layouts, %d failures%a" s.layouts s.failures
    (fun fmt -> function
      | None -> ()
      | Some ex -> Format.fprintf fmt " (e.g. %s)" ex)
    s.example

(* One enumerated layout: index 0 is the decided value [d]; 1 and 2 are the
   rivals. [in_q] counts ballot-0 votes visible in the reply quorum;
   [outside_d] is the number of processes outside Q voting for [d] (rival
   votes outside Q are invisible to the recovery and irrelevant). *)
type layout = {
  values : int array;
  in_q : int array;
  outside_d : int;
  prop_in_q : bool array;
}

let pp_layout l =
  let b = Buffer.create 64 in
  for i = 0 to 2 do
    Buffer.add_string b
      (Printf.sprintf "v%d(%s%s): inQ=%d; " l.values.(i)
         (if i = 0 then "decided" else "rival")
         (if l.prop_in_q.(i) then ", prop in Q" else "")
         l.in_q.(i))
  done;
  Buffer.add_string b (Printf.sprintf "outside d-votes=%d" l.outside_d);
  Buffer.contents b

(* May the proposer of value [j] vote for value [i]? Anonymous
   non-proposers (with arbitrarily small proposals in task mode, or no
   proposal in object mode) can vote for anything. *)
let proposer_may_vote ~mode ~values i j =
  i = j
  ||
  match (mode : Core.Rgs.mode) with
  | Core.Rgs.Object -> false (* red lines: only own value *)
  | Core.Rgs.Task -> values.(i) > values.(j) (* line 5: accepted >= own *)

(* Fake pids >= 1000 denote processes outside Q. *)
let outside_pid i = 1000 + i

let replies_of_layout l ~n ~f =
  let q_size = n - f in
  let next_pid = ref 0 in
  let fresh () =
    let p = !next_pid in
    incr next_pid;
    p
  in
  let replies = ref [] in
  let proposer_pid =
    Array.mapi (fun i in_q -> if in_q then fresh () else outside_pid i) l.prop_in_q
  in
  (* Proposers inside Q reply themselves; the decided proposer reports its
     decision (it had decided before joining the slow ballot). *)
  Array.iteri
    (fun i in_q ->
      if in_q then
        replies :=
          {
            Recovery.sender = proposer_pid.(i);
            vbal = 0;
            value = None;
            proposer = None;
            decided = (if i = 0 then Some l.values.(0) else None);
          }
          :: !replies)
    l.prop_in_q;
  (* Anonymous in-Q votes per value. *)
  Array.iteri
    (fun i count ->
      for _ = 1 to count do
        replies :=
          {
            Recovery.sender = fresh ();
            vbal = 0;
            value = Some l.values.(i);
            proposer = Some proposer_pid.(i);
            decided = None;
          }
          :: !replies
      done)
    l.in_q;
  (* Remaining Q members took no ballot-0 vote. *)
  while List.length !replies < q_size do
    replies :=
      { Recovery.sender = fresh (); vbal = 0; value = None; proposer = None; decided = None }
      :: !replies
  done;
  !replies

(* Compositions of [total] into [k] non-negative bins. *)
let rec compositions total k =
  if k = 1 then [ [ total ] ]
  else
    List.concat_map
      (fun x -> List.map (fun rest -> x :: rest) (compositions (total - x) (k - 1)))
      (List.init (total + 1) Fun.id)

let check ~mode ~n ~e ~f =
  let q_size = n - f in
  let layouts = ref 0 in
  let failures = ref 0 in
  let example = ref None in
  let rank_assignments =
    Stdext.Combinat.permutations [ 30; 20; 10 ] |> List.map Array.of_list
  in
  List.iter
    (fun values ->
      List.iter
        (fun split ->
          match split with
          | [ kd; k1; k2; _idle ] ->
              (* Proposer placement: inside Q, outside Q, or — for a rival
                 nobody voted for — absent from the system entirely (the
                 "rival" value then simply does not exist, modelling
                 two-value and one-value layouts without burning one of the
                 f outside slots on a phantom proposer). *)
              let placements i votes =
                if i = 0 then [ `In; `Out ]
                else if votes = 0 then [ `Absent ]
                else [ `In; `Out ]
              in
              List.iter
                (fun pd_place ->
                  List.iter
                    (fun p1_place ->
                      List.iter
                        (fun p2_place ->
                          let places = [ pd_place; p1_place; p2_place ] in
                          let pd_in = pd_place = `In in
                          let proposers_in =
                            List.length (List.filter (fun p -> p = `In) places)
                          in
                          let proposers_out =
                            List.length (List.filter (fun p -> p = `Out) places)
                          in
                          let q_members = kd + k1 + k2 + proposers_in in
                          let extras = f - proposers_out in
                          (* Votes for d needed outside Q to complete its
                             fast quorum; pd's implicit self-vote counts. *)
                          let od = max 0 (n - e - kd - if pd_in then 1 else 0) in
                          (* Who outside Q can vote for d: pd itself, rival
                             proposers when the acceptance rule allows it,
                             and the anonymous extras. *)
                          let capacity =
                            (if pd_in then 0 else 1)
                            + (if p1_place = `Out && proposer_may_vote ~mode ~values 0 1
                               then 1
                               else 0)
                            + (if p2_place = `Out && proposer_may_vote ~mode ~values 0 2
                               then 1
                               else 0)
                            + max 0 extras
                          in
                          if q_members <= q_size && extras >= 0 && od <= capacity then begin
                            incr layouts;
                            let prop_in_q = [| pd_in; p1_place = `In; p2_place = `In |] in
                            let layout =
                              { values; in_q = [| kd; k1; k2 |]; outside_d = od; prop_in_q }
                            in
                            let replies = replies_of_layout layout ~n ~f in
                            let choice =
                              Recovery.select ~n ~e ~f ~initial:(Some 1) ~replies
                            in
                            match Recovery.value_of_choice choice with
                            | Some v when v = values.(0) -> ()
                            | _ ->
                                incr failures;
                                if !example = None then example := Some (pp_layout layout)
                          end)
                        (placements 2 k2))
                    (placements 1 k1))
                (placements 0 kd)
          | _ -> assert false)
        (compositions q_size 4))
    rank_assignments;
  { layouts = !layouts; failures = !failures; example = !example }
