(** Run-splicing helpers (Appendix B of the paper).

    The lower-bound proofs build runs by interleaving prefixes of two
    synchronous runs σ0 and σ1 and crashing the processes that could tell
    them apart. Operationally this amounts to complete control over which
    pending message is delivered when, and in what per-recipient order —
    exactly what {!Dsim.Network.Manual} provides. This module packages the
    two idioms the constructions need:

    - {!deliver_round}: flush the pending pool at a round boundary in a
      chosen per-recipient order, dropping a chosen subset. Dropping a
      message sent by a process that crashes at that instant models the
      proofs' "decide, then crash before the message reaches anyone".
    - {!pump}: after the adversarial prefix, let the system run normally by
      emulating synchronous rounds (deliver everything at every boundary)
      until a horizon — the continuation λ that exists because the protocol
      is f-resilient. *)

val deliver_round :
  ('state, 'msg, 'input, 'output) Dsim.Engine.t ->
  at:Dsim.Time.t ->
  ?order:('msg Dsim.Engine.pending list -> 'msg Dsim.Engine.pending list) ->
  ?drop:('msg Dsim.Engine.pending -> bool) ->
  unit ->
  unit
(** Schedule every pending message for delivery at [at] (after removing the
    [drop] subset), in the order given by [order] (default: send order),
    then run the engine up to [at] inclusive. Same-instant deliveries are
    processed in exactly the order produced by [order]. *)

val pump :
  ('state, 'msg, 'input, 'output) Dsim.Engine.t ->
  delta:int ->
  until:Dsim.Time.t ->
  ?drop:('msg Dsim.Engine.pending -> bool) ->
  unit ->
  unit
(** Emulate a synchronous network from [now] to [until]: at every round
    boundary deliver everything pending (except [drop]), letting timers
    fire in between. *)

val favor_sources :
  first:(dst:Dsim.Pid.t -> src:Dsim.Pid.t -> bool) ->
  'msg Dsim.Engine.pending list ->
  'msg Dsim.Engine.pending list
(** Reorder a pending batch so that, per recipient, messages whose source
    satisfies [first] come before the others (send order otherwise). *)
