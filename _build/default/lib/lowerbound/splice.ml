module Engine = Dsim.Engine

let deliver_round engine ~at ?(order = fun l -> l) ?(drop = fun _ -> false) () =
  let pending = Engine.pending engine in
  let keep, discard = List.partition (fun p -> not (drop p)) pending in
  List.iter (fun (p : _ Engine.pending) -> Engine.drop_pending engine ~id:p.id) discard;
  List.iter (fun (p : _ Engine.pending) -> Engine.deliver_pending engine ~id:p.id ~at) (order keep);
  ignore (Engine.run ~until:at engine)

let pump engine ~delta ~until ?(drop = fun _ -> false) () =
  (* Track the cursor ourselves: [Engine.now] only advances when events are
     processed, and an idle boundary must not stall the loop. *)
  let rec loop cursor =
    if cursor < until then begin
      let boundary = min (((cursor / delta) + 1) * delta) until in
      deliver_round engine ~at:boundary ~drop ();
      loop boundary
    end
  in
  loop (Engine.now engine)

let favor_sources ~first batch =
  let favored, rest =
    List.partition (fun (p : _ Engine.pending) -> first ~dst:p.dst ~src:p.src) batch
  in
  (* Per-recipient interleaving is irrelevant across recipients; putting all
     favored messages first preserves per-recipient priority. *)
  favored @ rest
