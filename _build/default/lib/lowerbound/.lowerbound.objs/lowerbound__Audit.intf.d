lib/lowerbound/audit.mli: Core Format
