lib/lowerbound/splice.ml: Dsim List
