lib/lowerbound/audit.ml: Array Buffer Core Format Fun List Printf Stdext
