lib/lowerbound/splice.mli: Dsim
