lib/lowerbound/witness.mli: Core Dsim Format Proto
