lib/lowerbound/witness.ml: Core Dsim Format List Proto Splice
