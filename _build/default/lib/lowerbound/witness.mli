(** Tightness witnesses for Theorems 5 and 6 ("only if" directions).

    Each scenario is a concrete adversarial choreography, parametric in
    [n], that drives the paper's own protocol (Figure 1) through a fast
    decision followed by [f] crashes and a slow-ballot recovery. Run at the
    protocol's bound the recovery re-selects the decided value (Lemma 7 /
    Lemma C.2); run one process short it selects a {e different} value and
    Agreement is violated — an executable rendering of the Appendix-B
    indistinguishability arguments.

    {b Task scenario} (Theorem 5, cf. §B.1). With [n] processes, a quorum
    [Q = n-f] later serves recovery; outside it sit the proposers [pv] (a
    high value [v]) and [pw] (a lower value [w]) and [f-2] extra voters.
    [pv] reaps a fast quorum — [n-f-e] votes inside [Q], plus [pw] and the
    extras outside (in task mode [pw] {e must} vote for [v >= w]) — decides
    [v] and crashes together with all of [Q]'s outside before anyone hears
    of it. The [e] remaining members of [Q] voted [w]. At [n = 2e+f] the
    recovery sees [n-f-e = e] votes for each value, lands on the boundary
    rule (line 17) and the maximal-value tie-break returns [v]: safe. At
    [n = 2e+f-1] the count for [w] ([e]) strictly exceeds the threshold
    [n-f-e = e-1] while [v]'s count sits at the threshold, so line 15
    forces [w]: agreement broken.

    {b Object scenario} (Theorem 6, §B.2). Quorums [E0 ∋ p] and [E1 ∋ q] of
    size [n-e] overlap in [F] of size [n-2e]; only [p] and [q] propose
    (values 0 and 1 — possible for an object, and exactly what the task
    cannot express). [p] decides 0 on [E0]; [F ∪ {p, q}] crash ([f]
    processes when [n = 2e+f-2]); the recovery quorum [E0* ∪ E1*] saw
    [e-1] votes for each value. At [n = 2e+f-1] (the object bound) [E0*]
    grows to [e > n-f-e] votes and recovery must pick 0: safe. At
    [n = 2e+f-2] both counts beat the threshold and the tie-break picks 1:
    agreement broken. *)

type result = {
  n : int;
  e : int;
  f : int;
  mode : Core.Rgs.mode;
  fast_decider : Dsim.Pid.t;
  fast_value : Proto.Value.t;
  recovery_decisions : (Dsim.Pid.t * Proto.Value.t) list;
      (** decisions by the surviving processes after the crashes *)
  agreement_violated : bool;
  horizon : Dsim.Time.t;
}

val pp_result : Format.formatter -> result -> unit

val task_scenario : n:int -> e:int -> f:int -> ?delta:int -> unit -> result
(** Requires [e >= 2], [f >= 2], [n >= e + f + 1] (so the fast set inside
    [Q] is non-empty). Meaningful at [n = 2e+f] (safe) and [n = 2e+f-1]
    (violated), with [2e >= f+2] so that both lie at or above [2f+1]. *)

val object_scenario : n:int -> e:int -> f:int -> ?delta:int -> unit -> result
(** Requires [e >= 2], [f >= 2], [n >= e + f]. Meaningful at [n = 2e+f-1]
    (safe) and [n = 2e+f-2] (violated), with [2e >= f+3]. *)
