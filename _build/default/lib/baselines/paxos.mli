(** Single-decree Paxos (leader-driven), the classical [2f+1] baseline.

    Non-leader proposers forward their proposal to the current Ω leader
    ([Submit]); the initial leader (p0) skips phase 1 at ballot 0 and
    proposes directly ([2A]/[2B], classic quorums of [n-f]); on leader
    change the new leader runs the full two-phase protocol.

    Paxos is [f]-resilient with [n >= 2f+1] but is {e not} [e]-two-step for
    any [e > 0]: if the initial leader crashes, every decision waits for a
    timeout plus a view change. It decides in two message delays only when
    the leader itself proposes and stays alive. *)

type msg

val pp_msg : Format.formatter -> msg -> unit

type state

val decided_value : state -> Proto.Value.t option

val make :
  n:int -> f:int -> delta:int -> (state, msg, Proto.Value.t, Proto.Value.t) Dsim.Automaton.t

val protocol : Proto.Protocol.t
