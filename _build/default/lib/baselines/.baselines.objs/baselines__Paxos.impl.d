lib/baselines/paxos.ml: Dsim Format Proto
