lib/baselines/fast_paxos.ml: Dsim Format List Proto
