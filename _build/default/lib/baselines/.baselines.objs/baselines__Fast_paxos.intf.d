lib/baselines/fast_paxos.mli: Dsim Format Proto
