lib/baselines/paxos.mli: Dsim Format Proto
