(** Fast Paxos (Lamport 2006), the protocol matching the classical bound
    [n >= max{2e+f+1, 2f+1}].

    Ballot 0 is a fast ballot open to every proposer: a proposer broadcasts
    its value, every acceptor votes for the {e first} proposal it receives
    (no value ordering — this is where it differs from the paper's
    protocol) and announces its vote to all learners, i.e. to everyone; any
    process that observes [n-e] votes for the same value decides. Lamport's
    stronger fast property holds: with a single proposer, {e every} correct
    process decides within two message delays, for any [e] crashes.

    Collisions (no value reaches [n-e] votes) are resolved by coordinated
    recovery on the Ω leader's timer: [1A]/[1B] from [n-f], then any value
    with at least [n-e-f] ballot-0 votes must be proposed — unique because
    [n >= 2e+f+1]. *)

type msg

val pp_msg : Format.formatter -> msg -> unit

type state

val decided_value : state -> Proto.Value.t option

val make :
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  (state, msg, Proto.Value.t, Proto.Value.t) Dsim.Automaton.t

val protocol : Proto.Protocol.t
