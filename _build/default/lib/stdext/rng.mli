(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through an explicit
    [Rng.t] so that runs are replayable from a single integer seed. The
    generator is mutable but cheap to [split] and [copy], which lets
    independent components draw from independent streams derived from one
    master seed. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)

val shuffle_array_in_place : t -> 'a array -> unit
