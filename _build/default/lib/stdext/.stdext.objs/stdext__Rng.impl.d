lib/stdext/rng.ml: Array Int64 List
