lib/stdext/combinat.ml: List
