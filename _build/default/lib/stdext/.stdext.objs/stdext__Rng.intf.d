lib/stdext/rng.mli:
