lib/stdext/combinat.mli:
