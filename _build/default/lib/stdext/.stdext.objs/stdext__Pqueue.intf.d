lib/stdext/pqueue.mli:
