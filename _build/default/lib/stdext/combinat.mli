(** Small combinatorics helpers used by the exhaustive checkers. *)

val subsets_of_size : int -> 'a list -> 'a list list
(** [subsets_of_size k l] lists all [k]-element subsets of [l], each in the
    original order of [l]. [subsets_of_size 0 l = [[]]]. *)

val permutations : 'a list -> 'a list list
(** All permutations. Intended for short lists (the checkers cap the length
    before calling). *)

val cartesian : 'a list list -> 'a list list
(** [cartesian [xs1; xs2; ...]] is the cartesian product, each choice list
    picking one element per input list. [cartesian [] = [[]]]. *)

val choose : int -> int -> int
(** Binomial coefficient [choose n k]; 0 when [k < 0] or [k > n]. *)
