(** A replicated key-value store: the application layer over {!Replica}.

    Consensus commands are integers, so KV operations are packed into a
    [Proto.Value.t] with a fixed-radix codec:
    [client * 1_000_000 + key * 1_000 + value] encodes
    "client [client] writes [value] (0..999) to key [key] (0..999)".
    Distinct clients therefore always produce distinct command words even
    for identical writes, which keeps SMR reproposals unambiguous. *)

type op = { client : int; key : int; value : int }

val pp_op : Format.formatter -> op -> unit

val encode : op -> Proto.Value.t
(** Raises [Invalid_argument] if a field is out of range (keys and values
    0..999, clients 0..4000). *)

val decode : Proto.Value.t -> op

type store

val empty : unit -> store

val apply : store -> op -> unit

val get : store -> int -> int option

val replay : (int * Proto.Value.t) list -> store
(** Build the store state from an applied (slot, command) log. *)

val equal_store : store -> store -> bool

val pp_store : Format.formatter -> store -> unit
