lib/smr/replica.ml: Checker Dsim Format Int List Map Proto
