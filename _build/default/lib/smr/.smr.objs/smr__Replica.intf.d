lib/smr/replica.mli: Checker Dsim Format Proto
