lib/smr/kv.ml: Format Hashtbl List
