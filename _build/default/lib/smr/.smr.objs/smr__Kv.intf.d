lib/smr/kv.mli: Format Proto
