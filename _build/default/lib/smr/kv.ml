type op = { client : int; key : int; value : int }

let pp_op fmt { client; key; value } =
  Format.fprintf fmt "c%d: put k%d <- %d" client key value

let encode { client; key; value } =
  if key < 0 || key > 999 || value < 0 || value > 999 || client < 0 || client > 4000 then
    invalid_arg "Kv.encode: field out of range";
  (client * 1_000_000) + (key * 1_000) + value

let decode cmd =
  { client = cmd / 1_000_000; key = cmd / 1_000 mod 1_000; value = cmd mod 1_000 }

type store = (int, int) Hashtbl.t

let empty () = Hashtbl.create 64

let apply store { key; value; _ } = Hashtbl.replace store key value

let get store key = Hashtbl.find_opt store key

let replay log =
  let store = empty () in
  List.iter (fun (_, cmd) -> apply store (decode cmd)) log;
  store

let bindings store =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] |> List.sort compare

let equal_store a b = bindings a = bindings b

let pp_store fmt store =
  Format.pp_print_list ~pp_sep:Format.pp_print_space
    (fun fmt (k, v) -> Format.fprintf fmt "k%d=%d" k v)
    fmt (bindings store)
