(** State-machine replication on top of any single-shot consensus protocol.

    This is the deployment the paper's definition is tailored to (§1):
    clients submit commands to a {e proxy} replica, the proxy proposes them
    in a sequence of consensus instances (slots), and what matters for
    end-to-end latency is how fast {e the proxy} decides — the speed of the
    other replicas is irrelevant to the client.

    Each slot runs an independent instance of the underlying protocol;
    instance messages and timers are multiplexed by slot. A replica
    proposes its next queued command in the first slot it believes free;
    losing a slot to another replica's command simply means reproposing in
    a later slot. Decisions are applied in slot order and emitted as
    [(slot, command)] outputs once contiguous.

    Commands are [Proto.Value.t] (integers); {!Kv} provides a command codec
    and a replicated key-value store. *)

type 'pmsg msg

val pp_msg : (Format.formatter -> 'pmsg -> unit) -> Format.formatter -> 'pmsg msg -> unit

type 'pstate state

val applied : 'pstate state -> (int * Proto.Value.t) list
(** Commands applied so far, in slot order. *)

val decided_slots : 'pstate state -> int
(** Number of slots known decided (not necessarily contiguous). *)

val make :
  (module Proto.Protocol.S with type msg = 'pmsg and type state = 'pstate) ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  ('pstate state, 'pmsg msg, Proto.Value.t, int * Proto.Value.t) Dsim.Automaton.t

(** Existentially packaged SMR engine, so callers never name the underlying
    protocol's state and message types. *)
module Instance : sig
  type t

  val create :
    protocol:Proto.Protocol.t ->
    n:int ->
    e:int ->
    f:int ->
    delta:int ->
    net:Checker.Scenario.net ->
    ?seed:int ->
    commands:(Dsim.Time.t * Dsim.Pid.t * Proto.Value.t) list ->
    ?crashes:(Dsim.Time.t * Dsim.Pid.t) list ->
    unit ->
    t

  val run : ?until:Dsim.Time.t -> t -> Dsim.Engine.run_result

  val now : t -> Dsim.Time.t

  val applied_log : t -> Dsim.Pid.t -> (int * Proto.Value.t) list
  (** A replica's applied (slot, command) sequence so far. *)

  val outputs : t -> (Dsim.Time.t * Dsim.Pid.t * (int * Proto.Value.t)) list
  (** Application events across all replicas, chronological. *)

  val commit_time : t -> proxy:Dsim.Pid.t -> command:Proto.Value.t -> Dsim.Time.t option
  (** When [proxy] applied [command], if it has. *)

  val converged : t -> bool
  (** Every pair of replicas' applied logs agree on their common prefix
      (the fundamental SMR safety property). *)
end
