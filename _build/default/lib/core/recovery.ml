module Pid = Dsim.Pid
module Value = Proto.Value
module Votes = Proto.Votes

type reply = {
  sender : Pid.t;
  vbal : Proto.Ballot.t;
  value : Value.t option;
  proposer : Pid.t option;
  decided : Value.t option;
}

let pp_reply fmt r =
  let pp_opt pp fmt = function
    | None -> Format.pp_print_string fmt "⊥"
    | Some x -> pp fmt x
  in
  Format.fprintf fmt "{%a vbal=%a val=%a prop=%a dec=%a}" Pid.pp r.sender Proto.Ballot.pp
    r.vbal (pp_opt Value.pp) r.value (pp_opt Pid.pp) r.proposer (pp_opt Value.pp) r.decided

type choice =
  | Already_decided of Value.t
  | From_slow_ballot of Value.t
  | Fast_majority of Value.t
  | Fast_boundary of Value.t
  | Own_initial of Value.t
  | Nothing

let value_of_choice = function
  | Already_decided v | From_slow_ballot v | Fast_majority v | Fast_boundary v
  | Own_initial v ->
      Some v
  | Nothing -> None

let pp_choice fmt = function
  | Already_decided v -> Format.fprintf fmt "already-decided %a" Value.pp v
  | From_slow_ballot v -> Format.fprintf fmt "slow-ballot %a" Value.pp v
  | Fast_majority v -> Format.fprintf fmt "fast-majority %a" Value.pp v
  | Fast_boundary v -> Format.fprintf fmt "fast-boundary %a" Value.pp v
  | Own_initial v -> Format.fprintf fmt "own-initial %a" Value.pp v
  | Nothing -> Format.pp_print_string fmt "nothing"

let select ~n ~e ~f ~initial ~replies =
  match List.find_opt (fun r -> r.decided <> None) replies with
  | Some { decided = Some v; _ } -> Already_decided v
  | Some { decided = None; _ } -> assert false
  | None -> begin
      let bmax = List.fold_left (fun acc r -> max acc r.vbal) 0 replies in
      if bmax > 0 then begin
        match List.find_opt (fun r -> r.vbal = bmax && r.value <> None) replies with
        | Some { value = Some v; _ } -> From_slow_ballot v
        | _ -> assert false  (* vbal > 0 implies a vote was cast *)
      end
      else begin
        (* bmax = 0: recover a possible fast-path decision. Exclude votes
           whose proposer is itself in Q (line 15's set R). *)
        let senders = Pid.set_of_list (List.map (fun r -> r.sender) replies) in
        let in_r r =
          match r.proposer with None -> true | Some p -> not (Pid.Set.mem p senders)
        in
        let votes =
          List.fold_left
            (fun acc r ->
              match r.value with
              | Some v when in_r r -> Votes.add v r.sender acc
              | Some _ | None -> acc)
            Votes.empty replies
        in
        let threshold = Proto.Bounds.recovery_threshold ~n ~e ~f in
        match Votes.max_value_with_count_at_least (threshold + 1) votes with
        | Some v -> Fast_majority v
        | None -> begin
            match Votes.max_value_with_count_at_least threshold votes with
            | Some v when threshold > 0 -> Fast_boundary v
            | _ -> begin
                match initial with Some v -> Own_initial v | None -> Nothing
              end
          end
      end
    end
