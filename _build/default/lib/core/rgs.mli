(** The paper's consensus protocol (Figure 1).

    In [Task] mode (black lines only) the protocol implements an
    [f]-resilient [e]-two-step consensus {e task} and is live and safe for
    [n >= max{2e+f, 2f+1}] (Theorem 5). In [Object] mode (red lines
    included) it implements an [e]-two-step consensus {e object} and
    requires only [n >= max{2e+f-1, 2f+1}] (Theorem 6). The two modes
    differ exactly where the paper's red lines do: the [Object] mode sets
    [initial_val] upon an explicit [propose] invocation, and accepts a
    [Propose(v)] message only if it has not proposed yet or [v] matches its
    own proposal.

    Protocol flow:
    - {b Fast ballot (0):} each proposer broadcasts [Propose(v)]; a process
      votes ([2B]) for the first proposal [>=] its own; a proposer that
      gathers [n-e] votes (itself included) decides after two message
      delays and broadcasts [Decide].
    - {b Slow ballots:} on timeout (2Δ, then every 5Δ), the Ω leader runs a
      Paxos-like ballot: [1A]/[1B] to a quorum of [n-f], value selection by
      {!Recovery.select}, then [2A]/[2B] and a [Decide] broadcast.

    Proposals are environment inputs: [on_input v] is [propose(v)]. The
    task harness feeds every process its input at time 0; the object
    harness injects [propose] calls at arbitrary times, possibly only at
    some processes. Decisions are environment outputs, emitted once per
    process. *)

type mode = Task | Object

val pp_mode : Format.formatter -> mode -> unit

type msg =
  | Propose of Proto.Value.t
  | Two_b of { bal : Proto.Ballot.t; value : Proto.Value.t }
  | Decide of Proto.Value.t
  | One_a of Proto.Ballot.t
  | One_b of {
      bal : Proto.Ballot.t;
      vbal : Proto.Ballot.t;
      value : Proto.Value.t option;
      proposer : Dsim.Pid.t option;
      decided : Proto.Value.t option;
    }
  | Two_a of { bal : Proto.Ballot.t; value : Proto.Value.t }
  | Omega_msg of Proto.Omega.msg

val pp_msg : Format.formatter -> msg -> unit

type state

(** {2 State inspection} (used by tests and the lower-bound machinery) *)

val current_ballot : state -> Proto.Ballot.t

val voted_value : state -> Proto.Value.t option

val initial_value : state -> Proto.Value.t option

val decided_value : state -> Proto.Value.t option

val make :
  mode:mode ->
  n:int ->
  e:int ->
  f:int ->
  delta:int ->
  (state, msg, Proto.Value.t, Proto.Value.t) Dsim.Automaton.t
(** Build the automaton. [n], [e], [f] are {e not} checked against the
    bound: instantiating below the bound is exactly what the tightness
    experiments do. *)

val task : Proto.Protocol.t
(** The protocol packaged in [Task] mode. *)

val obj : Proto.Protocol.t
(** The protocol packaged in [Object] mode. *)
