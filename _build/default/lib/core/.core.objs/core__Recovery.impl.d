lib/core/recovery.ml: Dsim Format List Proto
