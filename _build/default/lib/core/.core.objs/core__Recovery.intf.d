lib/core/recovery.mli: Dsim Format Proto
