lib/core/rgs.mli: Dsim Format Proto
