lib/core/rgs.ml: Dsim Format List Proto Recovery
