(** The slow-ballot value-selection rule of Figure 1 (lines 12–19).

    When a new leader has gathered [1B] replies from a quorum [Q] of [n-f]
    processes, it must propose a value that preserves any decision possibly
    reached earlier — in particular a value decided on the {e fast} path,
    which only [n-e] processes witnessed. The paper's novelty is that this
    is possible with [n] as low as [2e+f] (task) or [2e+f-1] (object):
    ballot-0 votes whose {e proposer} itself replied in [Q] can be excluded
    (that proposer never completed, and can no longer complete, its fast
    path), and among the remaining votes a count of [n-f-e] is enough to
    identify a possibly-decided value, breaking ties towards the maximal
    value (Lemma 7 / Lemma C.2).

    This module is pure so the lemma can be tested exhaustively. *)

type reply = {
  sender : Dsim.Pid.t;
  vbal : Proto.Ballot.t;  (** Last ballot in which [sender] voted; 0 if none/fast. *)
  value : Proto.Value.t option;  (** The vote cast at [vbal], if any. *)
  proposer : Dsim.Pid.t option;
      (** Who proposed [value], when the vote was cast at ballot 0. *)
  decided : Proto.Value.t option;  (** Already-decided value, if any. *)
}

val pp_reply : Format.formatter -> reply -> unit

type choice =
  | Already_decided of Proto.Value.t  (** line 13: some process reported a decision *)
  | From_slow_ballot of Proto.Value.t  (** line 14: highest slow-ballot vote *)
  | Fast_majority of Proto.Value.t  (** line 15-16: more than [n-f-e] compatible ballot-0 votes *)
  | Fast_boundary of Proto.Value.t
      (** line 17-18: exactly [n-f-e] votes; maximal such value *)
  | Own_initial of Proto.Value.t  (** line 19: leader's own proposal *)
  | Nothing  (** object mode with no proposal anywhere: stay silent *)

val value_of_choice : choice -> Proto.Value.t option

val pp_choice : Format.formatter -> choice -> unit

val select :
  n:int -> e:int -> f:int -> initial:Proto.Value.t option -> replies:reply list -> choice
(** Apply lines 12–19 to the replies of quorum [Q]. [replies] must contain
    exactly one entry per member of [Q] (the caller collects [n-f] of
    them); [initial] is the leader's own proposal (⊥ if it has not
    proposed). *)
