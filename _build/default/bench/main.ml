(* Benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe              # everything: T1-T4, F1-F4, microbenches
     dune exec bench/main.exe -- t3 f2     # selected experiments
     dune exec bench/main.exe -- bechamel  # microbenchmarks only

   Each T/F experiment regenerates one claim of the paper as a table or
   series (see DESIGN.md section 3 and EXPERIMENTS.md). The bechamel suite
   measures the cost of the building blocks themselves. *)

let fmt = Format.std_formatter

(* -- Bechamel microbenchmarks ------------------------------------------ *)

let delta = 100

let bench_sync_fast_path protocol name =
  let run () =
    let proposals = Checker.Scenario.all_proposals_at_zero ~n:5 [ 0; 1; 2; 3; 4 ] in
    Checker.Scenario.run protocol ~n:5 ~e:2 ~f:2 ~delta
      ~net:(Checker.Scenario.Sync (`Favor 4)) ~proposals ~disable_timers:true
      ~until:(3 * delta) ()
  in
  Bechamel.Test.make ~name (Bechamel.Staged.stage (fun () -> ignore (run ())))

let bench_recovery_select =
  let replies =
    List.init 10 (fun i ->
        {
          Core.Recovery.sender = i;
          vbal = 0;
          value = (if i < 4 then Some 7 else if i < 7 then Some 3 else None);
          proposer = Some (100 + (i mod 2));
          decided = None;
        })
  in
  Bechamel.Test.make ~name:"recovery.select (10 replies)"
    (Bechamel.Staged.stage (fun () ->
         ignore (Core.Recovery.select ~n:13 ~e:3 ~f:3 ~initial:(Some 1) ~replies)))

let bench_witness =
  Bechamel.Test.make ~name:"witness.task_scenario n=6"
    (Bechamel.Staged.stage (fun () ->
         ignore (Lowerbound.Witness.task_scenario ~n:6 ~e:2 ~f:2 ())))

let bench_partial_sync_run =
  Bechamel.Test.make ~name:"rgs-task partial-sync run to decision (n=6)"
    (Bechamel.Staged.stage (fun () ->
         let proposals = Checker.Scenario.all_proposals_at_zero ~n:6 [ 5; 4; 3; 2; 1; 0 ] in
         ignore
           (Checker.Scenario.run Core.Rgs.task ~n:6 ~e:2 ~f:2 ~delta
              ~net:(Checker.Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
              ~proposals ~seed:1 ~until:(40 * delta) ())))

let bench_rng =
  let rng = Stdext.Rng.create ~seed:7 in
  Bechamel.Test.make ~name:"rng.bits64"
    (Bechamel.Staged.stage (fun () -> ignore (Stdext.Rng.bits64 rng)))

let bench_pqueue =
  Bechamel.Test.make ~name:"pqueue push+pop x100"
    (Bechamel.Staged.stage (fun () ->
         let q = Stdext.Pqueue.create () in
         for i = 0 to 99 do
           Stdext.Pqueue.push q ~priority:(i * 7 mod 31) i
         done;
         while not (Stdext.Pqueue.is_empty q) do
           ignore (Stdext.Pqueue.pop q)
         done))

let run_bechamel () =
  let open Bechamel in
  Format.fprintf fmt "@.%s@.B1. Microbenchmarks (Bechamel, OLS estimate per run)@.%s@."
    (String.make 78 '-') (String.make 78 '-');
  let tests =
    Test.make_grouped ~name:"twostep"
      [
        bench_rng;
        bench_pqueue;
        bench_recovery_select;
        bench_sync_fast_path Core.Rgs.task "rgs-task sync fast path (n=5)";
        bench_sync_fast_path Baselines.Fast_paxos.protocol "fast-paxos sync fast path (n=5)";
        bench_witness;
        bench_partial_sync_run;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
  in
  Format.fprintf fmt "%-55s | %15s | %6s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with Some (x :: _) -> x | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
      Format.fprintf fmt "%-55s | %15.1f | %6.4f@." name estimate r2)
    rows

(* -- dispatch ----------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: main.exe [t1|t2|t3|t4|f1|f2|f3|f4|f5|tables|figures|bechamel|all]...";
  exit 1

let run_experiment = function
  | "t1" -> Experiments.t1_bounds_table fmt
  | "t2" -> Experiments.t2_twostep_verification fmt
  | "t3" -> Experiments.t3_tightness_witnesses fmt
  | "t4" -> Experiments.t4_recovery_audit fmt
  | "f1" -> Experiments.f1_fast_rate_vs_crashes fmt
  | "f2" -> Experiments.f2_latency_vs_conflict fmt
  | "f3" -> Experiments.f3_wan_latency fmt
  | "f4" -> Experiments.f4_smr_throughput fmt
  | "f5" -> Experiments.f5_epaxos_motivation fmt
  | "tables" ->
      Experiments.t1_bounds_table fmt;
      Experiments.t2_twostep_verification fmt;
      Experiments.t3_tightness_witnesses fmt;
      Experiments.t4_recovery_audit fmt
  | "figures" ->
      Experiments.f1_fast_rate_vs_crashes fmt;
      Experiments.f2_latency_vs_conflict fmt;
      Experiments.f3_wan_latency fmt;
      Experiments.f4_smr_throughput fmt;
      Experiments.f5_epaxos_motivation fmt
  | "bechamel" -> run_bechamel ()
  | "all" ->
      Experiments.all fmt;
      run_bechamel ()
  | arg ->
      Printf.eprintf "unknown experiment %S\n" arg;
      usage ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> run_experiment "all"
  | _ :: args -> List.iter run_experiment args
  | [] -> usage ()
