(* Tests for the paper's protocol (Figure 1), task and object modes: fast
   path timing and preconditions, slow-path recovery, the red-line
   differences, and randomized safety/liveness properties. *)

module Pid = Dsim.Pid
module Value = Proto.Value
module Rgs = Core.Rgs
module Scenario = Checker.Scenario
module Safety = Checker.Safety

let delta = 100

let sync_run ?(order = `Arrival) ?(crashes = []) ?(timers = false) ~n ~e ~f ~until proposals
    protocol =
  Scenario.run protocol ~n ~e ~f ~delta ~net:(Scenario.Sync order) ~proposals
    ~crashes:(Scenario.crash_at_start crashes) ~disable_timers:(not timers) ~until ()

(* Fast path: the highest proposer, heard first everywhere, decides at
   exactly 2Δ; the others follow one round later via Decide. *)
let test_fast_path_two_steps () =
  let n = 5 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4 ] in
  let o =
    sync_run ~order:(`Favor 4) ~n ~e ~f ~until:(3 * delta) proposals Rgs.task
  in
  (match Scenario.decided_value o 4 with
  | Some (t, v) ->
      Alcotest.(check int) "decides the highest value" 4 v;
      Alcotest.(check int) "in exactly two message delays" (2 * delta) t
  | None -> Alcotest.fail "favored proposer did not decide");
  List.iter
    (fun p ->
      match Scenario.decided_value o p with
      | Some (t, v) ->
          Alcotest.(check int) "same value" 4 v;
          Alcotest.(check int) "one round later" (3 * delta) t
      | None -> Alcotest.failf "p%d did not decide" p)
    [ 0; 1; 2; 3 ]

let test_fast_path_under_e_crashes () =
  let n = 5 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4 ] in
  let o =
    sync_run ~order:(`Favor 4) ~crashes:[ 0; 1 ] ~n ~e ~f ~until:(3 * delta) proposals
      Rgs.task
  in
  (match Scenario.decided_value o 4 with
  | Some (t, _) -> Alcotest.(check int) "still two steps with e crashes" (2 * delta) t
  | None -> Alcotest.fail "no fast decision under e crashes");
  Alcotest.(check bool) "safe" true (Safety.safe o)

let test_no_fast_path_beyond_e_crashes () =
  let n = 5 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4 ] in
  (* e+1 = 3 crashes: with timers off nobody can reach n-e = 3 votes. *)
  let o =
    sync_run ~order:(`Favor 4) ~crashes:[ 0; 1; 2 ] ~n ~e ~f ~until:(4 * delta) proposals
      Rgs.task
  in
  Alcotest.(check int) "no decision" 0 (List.length o.decisions)

(* Line 5: a process only votes for proposals >= its own, so a low value
   heard first cannot displace a higher proposal. *)
let test_value_ordering_acceptance () =
  let n = 3 and e = 1 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2 ] in
  let o = sync_run ~order:(`Favor 0) ~n ~e ~f ~until:(3 * delta) proposals Rgs.task in
  (match Scenario.decided_value o 0 with
  | Some (_, v) -> Alcotest.(check bool) "p0 cannot decide its own 0" true (v <> 0)
  | None -> ());
  Alcotest.(check bool) "safe" true (Safety.safe o)

let test_same_value_everyone_fast () =
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 7; 7; 7; 7; 7; 7 ] in
  List.iter
    (fun p ->
      let o = sync_run ~order:(`Favor p) ~n ~e ~f ~until:(2 * delta) proposals Rgs.task in
      match Scenario.decided_value o p with
      | Some (t, v) ->
          Alcotest.(check int) "value" 7 v;
          Alcotest.(check int) "two steps" (2 * delta) t
      | None -> Alcotest.failf "p%d not two-step on unanimous config" p)
    (Pid.all ~n)

(* Slow path: initial leader p0 crashed, conflicting proposals, fast path
   fails; the protocol must still terminate under partial synchrony. *)
let test_slow_path_termination () =
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 5; 4; 3; 2; 1; 0 ] in
  let o =
    Scenario.run Rgs.task ~n ~e ~f ~delta
      ~net:(Scenario.Partial { gst = 6 * delta; max_pre_gst = 4 * delta })
      ~proposals
      ~crashes:[ (0, 0); (delta / 2, 1) ]
      ~seed:3 ~until:(80 * delta) ()
  in
  let v = Safety.check o in
  Alcotest.(check bool) ("live: " ^ Format.asprintf "%a" Safety.pp_verdict v) true
    (v.validity && v.agreement && v.termination)

let test_slow_path_preserves_fast_decision () =
  (* The favored proposer decides fast at 2Δ and crashes immediately; even
     if its Decide broadcast races with a recovery ballot, everyone must
     settle on the same value. *)
  let n = 6 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4; 5 ] in
  let o =
    Scenario.run Rgs.task ~n ~e ~f ~delta ~net:(Scenario.Sync (`Favor 5)) ~proposals
      ~crashes:[ ((2 * delta) + 1, 5) ]
      ~until:(40 * delta) ()
  in
  let v = Safety.check o in
  Alcotest.(check bool) "agreement including the crashed decider" true v.agreement;
  (match Scenario.decided_value o 5 with
  | Some (_, value) -> Alcotest.(check int) "fast decision was 5" 5 value
  | None -> Alcotest.fail "p5 should have decided before crashing");
  Alcotest.(check bool) "validity" true v.validity

(* Object mode red line: a process that proposed v refuses to vote for any
   other value. *)
let test_object_refuses_other_values () =
  let n = 5 and e = 2 and f = 2 in
  (* p3 proposes 9, p4 proposes 1. Favoring p4's proposal, the three
     non-proposers vote 1 and p4 decides fast; p3 refuses to vote 1. *)
  let proposals = [ (0, 3, 9); (0, 4, 1) ] in
  let o =
    Scenario.run Rgs.obj ~n ~e ~f ~delta ~net:(Scenario.Sync (`Favor 4)) ~proposals
      ~disable_timers:true ~until:(3 * delta) ()
  in
  (match Scenario.decided_value o 4 with
  | Some (t, v) ->
      Alcotest.(check int) "p4 decides its own value" 1 v;
      Alcotest.(check int) "two steps" (2 * delta) t
  | None -> Alcotest.fail "p4 should decide (votes from 3 non-proposers + itself)");
  Alcotest.(check bool) "safe" true (Safety.safe o)

let test_object_task_divergence_on_vote () =
  (* Same two-proposer configuration; in task mode the lower proposer DOES
     vote for the higher value; in object mode it refuses, but the higher
     proposer still completes its quorum via the non-proposers. *)
  let n = 5 and e = 2 and f = 2 in
  let proposals = [ (0, 3, 9); (0, 4, 1) ] in
  let run protocol =
    Scenario.run protocol ~n ~e ~f ~delta ~net:(Scenario.Sync (`Favor 3)) ~proposals
      ~disable_timers:true ~until:(3 * delta) ()
  in
  let task_o = run Rgs.task in
  (match Scenario.decided_value task_o 3 with
  | Some (_, v) -> Alcotest.(check int) "task: 9 wins" 9 v
  | None -> Alcotest.fail "task mode: p3 should decide");
  let obj_o = run Rgs.obj in
  match Scenario.decided_value obj_o 3 with
  | Some (t, v) ->
      Alcotest.(check int) "object: still 9" 9 v;
      Alcotest.(check int) "object: two steps" (2 * delta) t
  | None -> Alcotest.fail "object mode: p3 should still decide via non-proposers"

let test_object_single_proposer_everywhere () =
  (* Definition A.1 item 1 at the object bound n = 2e+f-1 = 5. *)
  let n = 5 and e = 2 and f = 2 in
  List.iter
    (fun p ->
      let crashed = List.filteri (fun i _ -> i < e) (Pid.others ~n p) in
      let o =
        Scenario.run Rgs.obj ~n ~e ~f ~delta ~net:(Scenario.Sync `Arrival)
          ~proposals:[ (0, p, 42) ]
          ~crashes:(Scenario.crash_at_start crashed)
          ~disable_timers:true ~until:(3 * delta) ()
      in
      match Scenario.decided_value o p with
      | Some (t, v) ->
          Alcotest.(check int) "own value" 42 v;
          Alcotest.(check bool) "two steps" true (t <= 2 * delta)
      | None -> Alcotest.failf "solo proposer p%d undecided" p)
    (Pid.all ~n)

let test_object_late_proposal () =
  (* A propose() call long after startup still gets decided. *)
  let n = 5 and e = 2 and f = 2 in
  let o =
    Scenario.run Rgs.obj ~n ~e ~f ~delta
      ~net:(Scenario.Partial { gst = delta; max_pre_gst = delta })
      ~proposals:[ (7 * delta, 2, 13) ]
      ~seed:5 ~until:(60 * delta) ()
  in
  match Scenario.decided_value o 2 with
  | Some (_, v) -> Alcotest.(check int) "late proposal decided" 13 v
  | None -> Alcotest.fail "late proposal never decided"

let test_message_complexity_fast_path () =
  let n = 5 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4 ] in
  let o = sync_run ~order:(`Favor 4) ~n ~e ~f ~until:(4 * delta) proposals Rgs.task in
  Alcotest.(check bool)
    (Printf.sprintf "message count %d below 3n^2" o.messages)
    true
    (o.messages <= 3 * n * n)


(* Edge cases driven through the manual network: stale and duplicate
   messages, ballot monotonicity, decide idempotence. *)

let test_stale_and_duplicate_messages () =
  let n = 5 and e = 2 and f = 2 in
  let automaton = Core.Rgs.make ~mode:Core.Rgs.Task ~n ~e ~f ~delta in
  let engine =
    Dsim.Engine.create ~automaton ~n ~network:Dsim.Network.Manual
      ~inputs:(List.mapi (fun i v -> (0, i, v)) [ 0; 1; 2; 3; 4 ])
      ()
  in
  ignore (Dsim.Engine.run ~until:0 engine);
  (* Round 1: deliver p4's proposal first everywhere. *)
  Lowerbound.Splice.deliver_round engine ~at:delta
    ~order:(Lowerbound.Splice.favor_sources ~first:(fun ~dst:_ ~src -> src = 4))
    ();
  (* Round 2: votes reach p4; it decides. *)
  Lowerbound.Splice.deliver_round engine ~at:(2 * delta) ();
  (match Core.Rgs.decided_value (Dsim.Engine.state engine 4) with
  | Some 4 -> ()
  | _ -> Alcotest.fail "p4 should have decided 4");
  (* After the decision, the remaining pending traffic (stale proposals,
     votes, duplicate Decides) must neither change the decision nor crash
     anything. *)
  Lowerbound.Splice.pump engine ~delta ~until:(10 * delta) ();
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        (Printf.sprintf "p%d settled on 4" p)
        (Some 4)
        (Core.Rgs.decided_value (Dsim.Engine.state engine p)))
    (Pid.all ~n);
  (* Exactly one Output per process. *)
  let outputs = Dsim.Engine.outputs engine in
  let per_pid p = List.length (List.filter (fun (_, q, _) -> q = p) outputs) in
  List.iter
    (fun p -> Alcotest.(check int) "single decision output" 1 (per_pid p))
    (Pid.all ~n)

let test_ballot_monotonicity () =
  (* Drive two competing slow ballots; the state's current ballot must only
     grow, and the vote must follow the highest ballot. *)
  let n = 5 and e = 2 and f = 2 in
  let o =
    Scenario.run Rgs.task ~n ~e ~f ~delta
      ~net:(Scenario.Partial { gst = 8 * delta; max_pre_gst = 6 * delta })
      ~proposals:(Scenario.all_proposals_at_zero ~n [ 4; 3; 2; 1; 0 ])
      ~crashes:[ (0, 0) ]
      ~seed:13 ~until:(100 * delta) ()
  in
  Alcotest.(check bool) "safe under competing ballots" true (Safety.safe o);
  Alcotest.(check bool) "live" true (Safety.live o)

let test_all_crash_except_quorum_boundary () =
  (* Exactly f crashes: the slow path still terminates with n-f survivors. *)
  let n = 5 and e = 2 and f = 2 in
  let o =
    Scenario.run Rgs.task ~n ~e ~f ~delta
      ~net:(Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
      ~proposals:(Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4 ])
      ~crashes:[ (0, 3); (delta, 4) ]
      ~seed:2 ~until:(100 * delta) ()
  in
  let v = Safety.check o in
  Alcotest.(check bool) "live at the resilience boundary" true
    (v.validity && v.agreement && v.termination)

let test_decided_value_reported_in_recovery () =
  (* A decided process reports its decision in 1B (line 13): even when the
     recovery leader's quorum contains the decider, the decided value is
     selected. Favor p4 so it decides fast, keep everyone alive, timers on:
     p0 starts a ballot at 2 delta and must adopt 4. *)
  let n = 6 and e = 2 and f = 2 in
  let o =
    Scenario.run Rgs.task ~n ~e ~f ~delta ~net:(Scenario.Sync (`Favor 5))
      ~proposals:(Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4; 5 ])
      ~until:(30 * delta) ()
  in
  let v = Safety.check o in
  Alcotest.(check bool) "agreement across fast path and recovery" true v.agreement;
  Alcotest.(check (list int)) "all decide the fast value" [ 5 ] v.distinct_decisions

(* Randomized properties. *)

let random_crash_schedule rng ~n ~f ~horizon =
  let count = Stdext.Rng.int rng (f + 1) in
  let pids = Stdext.Rng.shuffle rng (Pid.all ~n) in
  List.filteri (fun i _ -> i < count) pids
  |> List.map (fun p -> (Stdext.Rng.int rng horizon, p))

let agreement_under_chaos protocol ~n ~e ~f =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s n=%d e=%d f=%d: safe under random asynchrony + crashes"
         (Proto.Protocol.name protocol) n e f)
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Stdext.Rng.create ~seed in
      let horizon = 60 * delta in
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> Stdext.Rng.int rng 4))
      in
      let crashes = random_crash_schedule rng ~n ~f ~horizon:(10 * delta) in
      let gst = Stdext.Rng.int rng (20 * delta) in
      let o =
        Scenario.run protocol ~n ~e ~f ~delta
          ~net:(Scenario.Partial { gst; max_pre_gst = 8 * delta })
          ~proposals ~crashes ~seed ~until:horizon ()
      in
      Safety.safe o)

let termination_after_gst protocol ~n ~e ~f =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s n=%d e=%d f=%d: live after GST" (Proto.Protocol.name protocol) n
         e f)
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Stdext.Rng.create ~seed in
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> Stdext.Rng.int rng 4))
      in
      let crashes = random_crash_schedule rng ~n ~f ~horizon:(5 * delta) in
      let o =
        Scenario.run protocol ~n ~e ~f ~delta
          ~net:(Scenario.Partial { gst = 10 * delta; max_pre_gst = 5 * delta })
          ~proposals ~crashes ~seed ~until:(150 * delta) ()
      in
      Safety.live o)

let () =
  Alcotest.run "rgs"
    [
      ( "fast path",
        [
          Alcotest.test_case "two-step decision" `Quick test_fast_path_two_steps;
          Alcotest.test_case "under e crashes" `Quick test_fast_path_under_e_crashes;
          Alcotest.test_case "beyond e crashes" `Quick test_no_fast_path_beyond_e_crashes;
          Alcotest.test_case "value-ordered acceptance" `Quick test_value_ordering_acceptance;
          Alcotest.test_case "unanimous: everyone fast" `Quick test_same_value_everyone_fast;
          Alcotest.test_case "message complexity" `Quick test_message_complexity_fast_path;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "stale/duplicate messages" `Quick test_stale_and_duplicate_messages;
          Alcotest.test_case "ballot monotonicity" `Quick test_ballot_monotonicity;
          Alcotest.test_case "resilience boundary" `Quick test_all_crash_except_quorum_boundary;
          Alcotest.test_case "decided value in 1B" `Quick test_decided_value_reported_in_recovery;
        ] );
      ( "slow path",
        [
          Alcotest.test_case "termination after leader crash" `Quick test_slow_path_termination;
          Alcotest.test_case "fast decision preserved" `Quick test_slow_path_preserves_fast_decision;
        ] );
      ( "object mode",
        [
          Alcotest.test_case "refuses other values" `Quick test_object_refuses_other_values;
          Alcotest.test_case "task/object divergence" `Quick test_object_task_divergence_on_vote;
          Alcotest.test_case "single proposer" `Quick test_object_single_proposer_everywhere;
          Alcotest.test_case "late proposal" `Quick test_object_late_proposal;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest (agreement_under_chaos Rgs.task ~n:6 ~e:2 ~f:2);
          QCheck_alcotest.to_alcotest (agreement_under_chaos Rgs.task ~n:3 ~e:1 ~f:1);
          QCheck_alcotest.to_alcotest (agreement_under_chaos Rgs.obj ~n:5 ~e:2 ~f:2);
          QCheck_alcotest.to_alcotest (agreement_under_chaos Rgs.task ~n:7 ~e:2 ~f:2);
          QCheck_alcotest.to_alcotest (termination_after_gst Rgs.task ~n:6 ~e:2 ~f:2);
          QCheck_alcotest.to_alcotest (termination_after_gst Rgs.obj ~n:5 ~e:2 ~f:2);
        ] );
    ]
