(* Tests for the baseline protocols: leader-driven Paxos and Fast Paxos. *)

module Pid = Dsim.Pid
module Paxos = Baselines.Paxos
module Fast_paxos = Baselines.Fast_paxos
module Scenario = Checker.Scenario
module Safety = Checker.Safety

let delta = 100

(* Paxos: the leader proposing decides in two message delays when alive. *)
let test_paxos_leader_fast () =
  let n = 3 and e = 0 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 9; 1; 2 ] in
  let o =
    Scenario.run Paxos.protocol ~n ~e ~f ~delta ~net:(Scenario.Sync `Arrival) ~proposals
      ~until:(10 * delta) ()
  in
  (match Scenario.decided_value o 0 with
  | Some (t, v) ->
      Alcotest.(check int) "leader's own value" 9 v;
      Alcotest.(check int) "two delays at the leader" (2 * delta) t
  | None -> Alcotest.fail "leader did not decide");
  Alcotest.(check bool) "live" true (Safety.live o)

(* Paxos: leader crash costs a timeout + view change — never two-step. *)
let test_paxos_leader_crash_slow () =
  let n = 3 and e = 0 and f = 1 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 9; 1; 2 ] in
  let o =
    Scenario.run Paxos.protocol ~n ~e ~f ~delta ~net:(Scenario.Sync `Arrival) ~proposals
      ~crashes:(Scenario.crash_at_start [ 0 ])
      ~until:(80 * delta) ()
  in
  let v = Safety.check o in
  Alcotest.(check bool) "still live" true (v.validity && v.agreement && v.termination);
  List.iter
    (fun (t, _, _) ->
      Alcotest.(check bool) "no two-step decision after leader crash" true (t > 2 * delta))
    o.decisions

let test_paxos_non_leader_proposal_reaches_leader () =
  let n = 5 and e = 0 and f = 2 in
  (* Only p3 proposes; the leader p0 must decide p3's value. *)
  let o =
    Scenario.run Paxos.protocol ~n ~e ~f ~delta ~net:(Scenario.Sync `Arrival)
      ~proposals:[ (0, 3, 77) ]
      ~until:(30 * delta) ()
  in
  match Scenario.decided_value o 3 with
  | Some (_, v) -> Alcotest.(check int) "proposer learns its decision" 77 v
  | None -> Alcotest.fail "proposer never decided"

(* Fast Paxos: with a single proposer, every correct process decides in two
   message delays even under e crashes (Lamport's stronger property). *)
let test_fast_paxos_single_proposer_all_fast () =
  let n = 7 and e = 2 and f = 2 in
  let crashed = [ 5; 6 ] in
  let o =
    Scenario.run Fast_paxos.protocol ~n ~e ~f ~delta ~net:(Scenario.Sync `Arrival)
      ~proposals:[ (0, 0, 3) ]
      ~crashes:(Scenario.crash_at_start crashed)
      ~disable_timers:true ~until:(3 * delta) ()
  in
  List.iter
    (fun p ->
      match Scenario.decided_value o p with
      | Some (t, v) ->
          Alcotest.(check int) "value" 3 v;
          Alcotest.(check bool) "two steps at every process" true (t <= 2 * delta)
      | None -> Alcotest.failf "p%d did not decide" p)
    (List.filter (fun p -> not (List.mem p crashed)) (Pid.all ~n))

(* Fast Paxos collision: conflicting proposals split the fast quorum and the
   coordinator must recover on the slow path. *)
let test_fast_paxos_collision_recovery () =
  let n = 7 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4; 5; 6 ] in
  let o =
    Scenario.run Fast_paxos.protocol ~n ~e ~f ~delta ~net:(Scenario.Sync `Random)
      ~proposals ~seed:17 ~until:(60 * delta) ()
  in
  Alcotest.(check bool) "live after collision" true (Safety.live o)

let test_fast_paxos_first_vote_not_value_ordered () =
  (* Unlike the paper's protocol, a Fast Paxos acceptor votes for the first
     proposal it receives even when a higher one exists: favoring the
     lowest proposer makes the lowest value win. *)
  let n = 7 and e = 2 and f = 2 in
  let proposals = Scenario.all_proposals_at_zero ~n [ 0; 1; 2; 3; 4; 5; 6 ] in
  let o =
    Scenario.run Fast_paxos.protocol ~n ~e ~f ~delta ~net:(Scenario.Sync (`Favor 0))
      ~proposals ~disable_timers:true ~until:(3 * delta) ()
  in
  match o.decisions with
  | (_, _, v) :: _ -> Alcotest.(check int) "lowest value wins" 0 v
  | [] -> Alcotest.fail "no fast decision"

let agreement_property protocol ~n ~e ~f =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s n=%d e=%d f=%d: safe under chaos" (Proto.Protocol.name protocol)
         n e f)
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Stdext.Rng.create ~seed in
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> Stdext.Rng.int rng 4))
      in
      let count = Stdext.Rng.int rng (f + 1) in
      let crashes =
        Stdext.Rng.shuffle rng (Pid.all ~n)
        |> List.filteri (fun i _ -> i < count)
        |> List.map (fun p -> (Stdext.Rng.int rng (10 * delta), p))
      in
      let o =
        Scenario.run protocol ~n ~e ~f ~delta
          ~net:(Scenario.Partial { gst = Stdext.Rng.int rng (20 * delta); max_pre_gst = 8 * delta })
          ~proposals ~crashes ~seed ~until:(60 * delta) ()
      in
      Safety.safe o)

let liveness_property protocol ~n ~e ~f =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s n=%d e=%d f=%d: live after GST" (Proto.Protocol.name protocol) n
         e f)
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Stdext.Rng.create ~seed in
      let proposals =
        Scenario.all_proposals_at_zero ~n (List.init n (fun _ -> Stdext.Rng.int rng 4))
      in
      let count = Stdext.Rng.int rng (f + 1) in
      let crashes =
        Stdext.Rng.shuffle rng (Pid.all ~n)
        |> List.filteri (fun i _ -> i < count)
        |> List.map (fun p -> (Stdext.Rng.int rng (5 * delta), p))
      in
      let o =
        Scenario.run protocol ~n ~e ~f ~delta
          ~net:(Scenario.Partial { gst = 10 * delta; max_pre_gst = 5 * delta })
          ~proposals ~crashes ~seed ~until:(150 * delta) ()
      in
      Safety.live o)

let () =
  Alcotest.run "baselines"
    [
      ( "paxos",
        [
          Alcotest.test_case "leader decides fast" `Quick test_paxos_leader_fast;
          Alcotest.test_case "leader crash is slow" `Quick test_paxos_leader_crash_slow;
          Alcotest.test_case "non-leader proposal" `Quick test_paxos_non_leader_proposal_reaches_leader;
          QCheck_alcotest.to_alcotest (agreement_property Paxos.protocol ~n:5 ~e:0 ~f:2);
          QCheck_alcotest.to_alcotest (liveness_property Paxos.protocol ~n:5 ~e:0 ~f:2);
        ] );
      ( "fast paxos",
        [
          Alcotest.test_case "single proposer: all fast" `Quick test_fast_paxos_single_proposer_all_fast;
          Alcotest.test_case "collision recovery" `Quick test_fast_paxos_collision_recovery;
          Alcotest.test_case "first-vote semantics" `Quick test_fast_paxos_first_vote_not_value_ordered;
          QCheck_alcotest.to_alcotest (agreement_property Fast_paxos.protocol ~n:7 ~e:2 ~f:2);
          QCheck_alcotest.to_alcotest (liveness_property Fast_paxos.protocol ~n:7 ~e:2 ~f:2);
        ] );
    ]
