(* Tests for the EPaxos-style baseline: fast path, interference handling,
   execution-order consistency and leader-crash recovery. *)

module Pid = Dsim.Pid
module Engine = Dsim.Engine
module Cmd = Epaxos.Cmd

let delta = 100

let run ?(order = Dsim.Network.Arrival) ?(net = `Sync) ~n ~f ~cmds ?(crashes = [])
    ?(seed = 0) ~until () =
  let automaton = Epaxos.make ~n ~f ~delta in
  let network =
    match net with
    | `Sync -> Dsim.Network.Sync_rounds { delta; order }
    | `Partial gst -> Dsim.Network.Partial_sync { delta; gst; max_pre_gst = 3 * delta }
  in
  let engine = Engine.create ~automaton ~n ~network ~seed ~inputs:cmds ~crashes () in
  ignore (Engine.run ~until engine);
  engine

let commits engine =
  List.filter_map
    (fun (t, p, o) -> match o with Epaxos.Committed c -> Some (t, p, c) | _ -> None)
    (Engine.outputs engine)

let cmd origin key payload = { Cmd.origin; key; payload }

let executed_orders engine ~n =
  Pid.all ~n
  |> List.filter (fun p -> not (Engine.crashed engine p))
  |> List.map (fun p -> Epaxos.executed (Engine.state engine p))

(* Interfering commands must be executed in the same relative order at
   every replica (the EPaxos linearizability core). *)
let consistent_interference_order engines_orders =
  let pairs_of order =
    let rec collect = function
      | [] -> []
      | c :: rest ->
          List.filter_map
            (fun c' -> if Cmd.interferes c c' then Some (c, c') else None)
            rest
          @ collect rest
    in
    collect order
  in
  match engines_orders with
  | [] -> true
  | first :: rest ->
      let reference = pairs_of first in
      List.for_all
        (fun order ->
          let pairs = pairs_of order in
          (* no pair may appear reversed relative to the reference *)
          List.for_all (fun (a, b) -> not (List.mem (b, a) reference)) pairs)
        rest

let test_fast_commit_two_delays () =
  let n = 5 and f = 2 in
  let engine = run ~n ~f ~cmds:[ (0, 1, cmd 1 7 42) ] ~until:(10 * delta) () in
  match commits engine with
  | [ (t, p, c) ] ->
      Alcotest.(check int) "committed at leader" 1 p;
      Alcotest.(check int) "two message delays" (2 * delta) t;
      Alcotest.(check int) "payload" 42 c.Cmd.payload
  | l -> Alcotest.failf "expected one commit, got %d" (List.length l)

let test_fast_commit_under_e_crashes () =
  let n = 5 and f = 2 in
  let e = Proto.Bounds.epaxos_e ~f in
  Alcotest.(check int) "e = ceil((f+1)/2)" 2 e;
  let engine =
    run ~n ~f ~cmds:[ (0, 1, cmd 1 7 42) ]
      ~crashes:[ (0, 3); (0, 4) ]
      ~until:(10 * delta) ()
  in
  match commits engine with
  | [ (t, _, _) ] -> Alcotest.(check int) "still two delays under e crashes" (2 * delta) t
  | l -> Alcotest.failf "expected one commit, got %d" (List.length l)

let test_non_interfering_both_fast () =
  let n = 5 and f = 2 in
  let engine =
    run ~n ~f ~cmds:[ (0, 0, cmd 0 1 10); (0, 3, cmd 3 2 20) ] ~until:(10 * delta) ()
  in
  let cs = commits engine in
  Alcotest.(check int) "both committed" 2 (List.length cs);
  List.iter (fun (t, _, _) -> Alcotest.(check int) "both fast" (2 * delta) t) cs

let test_interfering_consistent_order () =
  let n = 5 and f = 2 in
  List.iter
    (fun seed ->
      let engine =
        run ~order:Dsim.Network.Random_order ~n ~f
          ~cmds:[ (0, 0, cmd 0 1 10); (0, 3, cmd 3 1 20) ]
          ~seed ~until:(40 * delta) ()
      in
      Alcotest.(check int) "both committed" 2 (List.length (commits engine));
      let orders = executed_orders engine ~n in
      List.iter
        (fun o -> Alcotest.(check int) "everyone executed both" 2 (List.length o))
        orders;
      Alcotest.(check bool) "same interference order everywhere" true
        (consistent_interference_order orders))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_leader_crash_recovery () =
  let n = 5 and f = 2 in
  (* The leader crashes right after its PreAccepts are delivered; another
     replica must finish or no-op the instance so execution proceeds. *)
  let engine =
    run ~n ~f ~cmds:[ (0, 0, cmd 0 1 10) ] ~crashes:[ (delta + 1, 0) ] ~until:(60 * delta)
      ()
  in
  let orders = executed_orders engine ~n in
  List.iter
    (fun o ->
      Alcotest.(check bool) "recovered command executed" true
        (List.exists (fun c -> c.Cmd.payload = 10) o))
    orders

let test_leader_crash_before_send_noop () =
  let n = 5 and f = 2 in
  (* The leader crashes before anyone hears of the command; after an
     interfering command lands, its dependency on the dead instance (none:
     nobody saw it) must not block execution. *)
  let engine =
    run ~n ~f
      ~cmds:[ (0, 0, cmd 0 1 10); ((4 * delta) + 1, 1, cmd 1 1 20) ]
      ~crashes:[ (1, 0) ]
      ~until:(60 * delta) ()
  in
  let orders = executed_orders engine ~n in
  List.iter
    (fun o ->
      Alcotest.(check bool) "the later command executes" true
        (List.exists (fun c -> c.Cmd.payload = 20) o))
    orders

(* Interference-order consistency under random delivery orders and jitter
   within Δ (a timely network: the command leaders run their own protocol
   to completion). Commit-time recovery of interfering commands is the
   known subtle corner of EPaxos-style explicit prepare (cf. França
   Rezende & Sutra 2020, cited by the paper) and is deliberately out of
   scope — see the module documentation. *)
let exec_consistency_property =
  QCheck.Test.make ~name:"epaxos: interference order consistent (timely net)" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 5 and f = 2 in
      let rng = Stdext.Rng.create ~seed in
      let keys = [ 1; 1; 2 ] in
      let cmds =
        List.mapi
          (fun i key ->
            let leader = Stdext.Rng.int rng n in
            (Stdext.Rng.int rng (3 * delta), leader, cmd leader key (100 + i)))
          keys
      in
      (* distinct leaders required: one instance per replica *)
      let leaders = List.map (fun (_, l, _) -> l) cmds in
      if List.length (List.sort_uniq compare leaders) <> List.length leaders then true
      else begin
        let engine =
          run ~order:Dsim.Network.Random_order ~n ~f ~cmds ~seed ~until:(80 * delta) ()
        in
        consistent_interference_order (executed_orders engine ~n)
      end)

(* Under full chaos we still require per-instance agreement: every replica
   that commits an instance commits the same command. *)
let per_instance_agreement_property =
  QCheck.Test.make ~name:"epaxos: per-instance commit agreement under chaos" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 5 and f = 2 in
      let rng = Stdext.Rng.create ~seed in
      let keys = [ 1; 1; 2 ] in
      let cmds =
        List.mapi
          (fun i key ->
            let leader = Stdext.Rng.int rng n in
            (Stdext.Rng.int rng (3 * delta), leader, cmd leader key (100 + i)))
          keys
      in
      let leaders = List.map (fun (_, l, _) -> l) cmds in
      if List.length (List.sort_uniq compare leaders) <> List.length leaders then true
      else begin
        let engine =
          run ~net:(`Partial (5 * delta)) ~n ~f ~cmds ~seed ~until:(120 * delta) ()
        in
        (* each command must be executed at most once per replica *)
        List.for_all
          (fun order ->
            let sorted = List.sort compare order in
            List.length (List.sort_uniq compare sorted) = List.length sorted)
          (executed_orders engine ~n)
      end)

let () =
  Alcotest.run "epaxos"
    [
      ( "fast path",
        [
          Alcotest.test_case "two-delay commit" `Quick test_fast_commit_two_delays;
          Alcotest.test_case "under e crashes" `Quick test_fast_commit_under_e_crashes;
          Alcotest.test_case "non-interfering both fast" `Quick test_non_interfering_both_fast;
        ] );
      ( "interference",
        [
          Alcotest.test_case "consistent execution order" `Quick test_interfering_consistent_order;
          QCheck_alcotest.to_alcotest exec_consistency_property;
          QCheck_alcotest.to_alcotest per_instance_agreement_property;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "leader crash after preaccept" `Quick test_leader_crash_recovery;
          Alcotest.test_case "leader crash before send" `Quick test_leader_crash_before_send_noop;
        ] );
    ]
