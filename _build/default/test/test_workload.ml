(* Tests for the workload generators and WAN topologies. *)

module Rng = Stdext.Rng
module Topology = Workload.Topology
module Conflict = Workload.Conflict

let test_topology_presets_sane () =
  List.iter
    (fun topo ->
      let k = List.length (Topology.regions topo) in
      Alcotest.(check bool) "has regions" true (k >= 1);
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          let d = Topology.oneway topo i j in
          Alcotest.(check bool) "positive" true (d >= 1);
          Alcotest.(check int) "symmetric" d (Topology.oneway topo j i)
        done
      done)
    Topology.presets

let test_topology_triangle_quality () =
  (* Not a strict triangle inequality (real networks violate it), but no
     entry should dwarf the two-hop alternative absurdly: sanity bound. *)
  let topo = Topology.planet5 in
  let m = Topology.max_oneway topo in
  Alcotest.(check bool) "max is tokyo-frankfurt range" true (m >= 100 && m <= 200)

let test_placement_round_robin () =
  let topo = Topology.planet5 in
  Alcotest.(check string) "pid 0" "virginia" (Topology.region_of_pid topo 0);
  Alcotest.(check string) "pid 5 wraps" "virginia" (Topology.region_of_pid topo 5);
  Alcotest.(check string) "pid 6 wraps" "oregon" (Topology.region_of_pid topo 6)

let test_latency_fn () =
  let topo = Topology.three_az in
  Alcotest.(check int) "cross az" 2 (Topology.latency_fn topo ~src:0 ~dst:1);
  Alcotest.(check int) "same az (wrapped pids)" 1 (Topology.latency_fn topo ~src:0 ~dst:3)

let test_conflict_extremes () =
  let rng = Rng.create ~seed:1 in
  let unanimous = Conflict.proposals ~rng ~n:6 ~rate:0.0 in
  Alcotest.(check bool) "rate 0: no conflict" false (Conflict.is_conflicting unanimous);
  let all_distinct = Conflict.proposals ~rng ~n:6 ~rate:1.0 in
  let values = List.map (fun (_, _, v) -> v) all_distinct in
  Alcotest.(check int) "rate 1: all distinct" 6
    (List.length (List.sort_uniq compare values))

let conflict_rate_property =
  QCheck.Test.make ~name:"conflict rate is monotone-ish in expectation" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let count rate =
        let hits = ref 0 in
        for _ = 1 to 50 do
          if Conflict.is_conflicting (Conflict.proposals ~rng ~n:5 ~rate) then incr hits
        done;
        !hits
      in
      count 0.0 = 0 && count 1.0 = 50)

let test_proposer_subset () =
  let rng = Rng.create ~seed:3 in
  let ps = Conflict.proposer_subset ~rng ~n:7 ~count:3 ~rate:0.5 in
  Alcotest.(check int) "three proposers" 3 (List.length ps);
  let pids = List.map (fun (_, p, _) -> p) ps in
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare pids))

let () =
  Alcotest.run "workload"
    [
      ( "topology",
        [
          Alcotest.test_case "presets sane" `Quick test_topology_presets_sane;
          Alcotest.test_case "planet5 magnitudes" `Quick test_topology_triangle_quality;
          Alcotest.test_case "round-robin placement" `Quick test_placement_round_robin;
          Alcotest.test_case "latency function" `Quick test_latency_fn;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "extremes" `Quick test_conflict_extremes;
          QCheck_alcotest.to_alcotest conflict_rate_property;
          Alcotest.test_case "proposer subset" `Quick test_proposer_subset;
        ] );
    ]
