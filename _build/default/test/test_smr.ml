(* Tests for the SMR layer and the replicated KV store: log convergence,
   command retry after lost slots, crash tolerance, and the codec. *)

module Pid = Dsim.Pid
module Instance = Smr.Replica.Instance
module Kv = Smr.Kv

let delta = 100

let cmd c k v = Kv.encode { Kv.client = c; key = k; value = v }

let test_kv_codec_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "roundtrip" true (Kv.decode (Kv.encode op) = op))
    [
      { Kv.client = 0; key = 0; value = 0 };
      { Kv.client = 3; key = 999; value = 999 };
      { Kv.client = 4000; key = 17; value = 3 };
    ];
  Alcotest.check_raises "range check" (Invalid_argument "Kv.encode: field out of range")
    (fun () -> ignore (Kv.encode { Kv.client = 0; key = 1000; value = 0 }))

let kv_codec_property =
  QCheck.Test.make ~name:"kv codec is injective" ~count:300
    QCheck.(triple (int_bound 4000) (int_bound 999) (int_bound 999))
    (fun (client, key, value) ->
      Kv.decode (Kv.encode { Kv.client; key; value }) = { Kv.client; key; value })

let test_kv_store_apply () =
  let store = Kv.empty () in
  Kv.apply store { Kv.client = 0; key = 1; value = 10 };
  Kv.apply store { Kv.client = 1; key = 1; value = 20 };
  Kv.apply store { Kv.client = 0; key = 2; value = 30 };
  Alcotest.(check (option int)) "last write wins" (Some 20) (Kv.get store 1);
  Alcotest.(check (option int)) "other key" (Some 30) (Kv.get store 2);
  Alcotest.(check (option int)) "missing" None (Kv.get store 9)

let run_instance ?(crashes = []) ?(seed = 0) ~protocol ~n ~e ~f ~commands ~until () =
  let t =
    Instance.create ~protocol ~n ~e ~f ~delta
      ~net:(Checker.Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
      ~seed ~commands ~crashes ()
  in
  ignore (Instance.run ~until t);
  t

let test_commands_commit_and_converge () =
  let n = 5 and e = 2 and f = 2 in
  let commands =
    [ (0, 0, cmd 0 1 11); (0, 2, cmd 1 2 22); (50, 4, cmd 2 3 33); (400, 1, cmd 3 1 44) ]
  in
  let t =
    run_instance ~protocol:Core.Rgs.task ~n ~e ~f ~commands ~until:(100 * delta) ()
  in
  Alcotest.(check bool) "logs converge" true (Instance.converged t);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d applied everything" p)
        4
        (List.length (Instance.applied_log t p)))
    (Pid.all ~n)

let test_conflicting_slot_reproposal () =
  (* Two proxies submit simultaneously: both commands must eventually
     commit, one of them after losing slot 0 and reproposing. *)
  let n = 5 and e = 2 and f = 2 in
  let commands = [ (0, 0, cmd 0 1 11); (0, 4, cmd 1 2 22) ] in
  let t =
    run_instance ~protocol:Core.Rgs.obj ~n ~e ~f ~commands ~until:(150 * delta) ()
  in
  Alcotest.(check bool) "converged" true (Instance.converged t);
  let log = Instance.applied_log t 2 in
  Alcotest.(check int) "both commands applied" 2 (List.length log);
  let applied = List.map snd log |> List.sort compare in
  Alcotest.(check (list int)) "exactly the two commands" [ cmd 0 1 11; cmd 1 2 22 ] applied

let test_replica_crash_mid_stream () =
  let n = 5 and e = 2 and f = 2 in
  let commands = List.init 5 (fun i -> (i * 2 * delta, i mod 3, cmd i (i + 1) (i + 1))) in
  let t =
    run_instance ~protocol:Core.Rgs.task ~n ~e ~f ~commands
      ~crashes:[ (5 * delta, 4) ]
      ~until:(200 * delta) ()
  in
  Alcotest.(check bool) "converged despite crash" true (Instance.converged t);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d applied all 5" p)
        5
        (List.length (Instance.applied_log t p)))
    [ 0; 1; 2; 3 ]

let test_kv_replay_agreement () =
  let n = 5 and e = 2 and f = 2 in
  let commands = [ (0, 0, cmd 0 1 11); (0, 1, cmd 1 1 22); (100, 2, cmd 2 1 33) ] in
  let t =
    run_instance ~protocol:Core.Rgs.obj ~n ~e ~f ~commands ~until:(150 * delta) ()
  in
  let stores = List.map (fun p -> Kv.replay (Instance.applied_log t p)) (Pid.all ~n) in
  match stores with
  | first :: rest ->
      List.iter
        (fun s -> Alcotest.(check bool) "same final store" true (Kv.equal_store first s))
        rest
  | [] -> Alcotest.fail "no stores"

let smr_convergence_property protocol name =
  QCheck.Test.make
    ~name:(Printf.sprintf "smr over %s: convergence under random workloads" name)
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let n = 5 and e = 2 and f = 2 in
      let rng = Stdext.Rng.create ~seed in
      let count = 1 + Stdext.Rng.int rng 5 in
      let commands =
        List.init count (fun i ->
            ( Stdext.Rng.int rng (10 * delta),
              Stdext.Rng.int rng n,
              cmd i (Stdext.Rng.int rng 10) (i + 1) ))
      in
      let crashes =
        if Stdext.Rng.bool rng then [ (Stdext.Rng.int rng (20 * delta), n - 1) ] else []
      in
      let t =
        run_instance ~protocol ~n ~e ~f ~commands ~crashes ~seed ~until:(250 * delta) ()
      in
      Instance.converged t)

let () =
  Alcotest.run "smr"
    [
      ( "kv",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_kv_codec_roundtrip;
          QCheck_alcotest.to_alcotest kv_codec_property;
          Alcotest.test_case "store apply" `Quick test_kv_store_apply;
        ] );
      ( "replication",
        [
          Alcotest.test_case "commit and converge" `Quick test_commands_commit_and_converge;
          Alcotest.test_case "slot reproposal" `Quick test_conflicting_slot_reproposal;
          Alcotest.test_case "replica crash" `Quick test_replica_crash_mid_stream;
          Alcotest.test_case "kv replay agreement" `Quick test_kv_replay_agreement;
          QCheck_alcotest.to_alcotest (smr_convergence_property Core.Rgs.obj "rgs-object");
          QCheck_alcotest.to_alcotest
            (smr_convergence_property Baselines.Paxos.protocol "paxos");
        ] );
    ]
