(* Unit and property tests for the stdext utilities: the deterministic RNG,
   the priority queue the engine is built on, and the combinatorics helpers
   the checkers rely on. *)

module Rng = Stdext.Rng
module Pqueue = Stdext.Pqueue
module Combinat = Stdext.Combinat

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_invalid () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng ([] : int list)))

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q ~priority:p v) [ (3, "c"); (1, "a"); (2, "b") ];
  let drain () = match Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  let x1 = drain () in
  let x2 = drain () in
  let x3 = drain () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ x1; x2; x3 ]

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:7 v) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order at equal priority" [ 1; 2; 3; 4 ] (drain [])

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:v v) [ 5; 1; 3 ];
  let snapshot = Pqueue.to_list q in
  Alcotest.(check int) "length preserved" 3 (Pqueue.length q);
  Alcotest.(check (list (pair int int)))
    "pop order"
    [ (1, 1); (3, 3); (5, 5) ]
    snapshot

let pqueue_heap_property =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain min_int)

let test_subsets_count () =
  let l = List.init 6 Fun.id in
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "C(6,%d)" k)
        (Combinat.choose 6 k)
        (List.length (Combinat.subsets_of_size k l)))
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_subsets_distinct_sorted () =
  let subsets = Combinat.subsets_of_size 3 [ 0; 1; 2; 3; 4 ] in
  let sorted = List.sort_uniq compare subsets in
  Alcotest.(check int) "all distinct" (List.length subsets) (List.length sorted);
  List.iter
    (fun s -> Alcotest.(check (list int)) "order preserved" (List.sort compare s) s)
    subsets

let test_permutations () =
  Alcotest.(check int) "3! perms" 6 (List.length (Combinat.permutations [ 1; 2; 3 ]));
  Alcotest.(check int)
    "distinct" 6
    (List.length (List.sort_uniq compare (Combinat.permutations [ 1; 2; 3 ])));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Combinat.permutations [])

let test_cartesian () =
  Alcotest.(check (list (list int)))
    "2x2 product"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combinat.cartesian [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "nullary product" [ [] ] (Combinat.cartesian []);
  Alcotest.(check (list (list int))) "empty factor" [] (Combinat.cartesian [ [ 1 ]; [] ])

let test_choose_edges () =
  Alcotest.(check int) "C(5,-1)" 0 (Combinat.choose 5 (-1));
  Alcotest.(check int) "C(5,6)" 0 (Combinat.choose 5 6);
  Alcotest.(check int) "C(0,0)" 1 (Combinat.choose 0 0);
  Alcotest.(check int) "C(10,5)" 252 (Combinat.choose 10 5)

let () =
  Alcotest.run "stdext"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo on ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "to_list snapshot" `Quick test_pqueue_to_list_nondestructive;
          QCheck_alcotest.to_alcotest pqueue_heap_property;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "subset counts" `Quick test_subsets_count;
          Alcotest.test_case "subsets distinct" `Quick test_subsets_distinct_sorted;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
          Alcotest.test_case "choose edge cases" `Quick test_choose_edges;
        ] );
    ]
