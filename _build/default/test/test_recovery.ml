(* Unit tests for the slow-ballot value-selection rule (Figure 1, lines
   12-19) — every branch, plus the boundary situations that make the paper's
   bounds tight. *)

module Recovery = Core.Recovery

let reply ?(vbal = 0) ?value ?proposer ?decided sender =
  { Recovery.sender; vbal; value; proposer; decided }

let choice =
  Alcotest.testable Recovery.pp_choice (fun a b -> a = b)

let select = Recovery.select

(* n=6, e=2, f=2: the task protocol's minimal configuration for e=f=2.
   Q holds n-f = 4 replies; the recovery threshold n-f-e is 2. *)
let n = 6

let e = 2

let f = 2

let test_already_decided () =
  let replies =
    [ reply 0 ~decided:9; reply 1 ~vbal:3 ~value:7; reply 2; reply 3 ]
  in
  Alcotest.check choice "line 13 wins over everything"
    (Recovery.Already_decided 9)
    (select ~n ~e ~f ~initial:(Some 1) ~replies)

let test_slow_ballot_vote () =
  let replies =
    [
      reply 0 ~vbal:2 ~value:5;
      reply 1 ~vbal:5 ~value:8;
      reply 2 ~vbal:1 ~value:3;
      reply 3;
    ]
  in
  Alcotest.check choice "highest vbal wins" (Recovery.From_slow_ballot 8)
    (select ~n ~e ~f ~initial:(Some 1) ~replies)

let test_fast_majority () =
  (* Three ballot-0 votes for 4 (> threshold 2), proposer outside Q. *)
  let replies =
    [
      reply 0 ~value:4 ~proposer:5;
      reply 1 ~value:4 ~proposer:5;
      reply 2 ~value:4 ~proposer:5;
      reply 3;
    ]
  in
  Alcotest.check choice "line 15" (Recovery.Fast_majority 4)
    (select ~n ~e ~f ~initial:(Some 1) ~replies)

let test_fast_boundary_max_tiebreak () =
  (* Two values with exactly threshold = 2 votes each: the maximal one is
     chosen (line 18). *)
  let replies =
    [
      reply 0 ~value:4 ~proposer:5;
      reply 1 ~value:4 ~proposer:5;
      reply 2 ~value:9 ~proposer:4;
      reply 3 ~value:9 ~proposer:4;
    ]
  in
  Alcotest.check choice "line 17-18" (Recovery.Fast_boundary 9)
    (select ~n ~e ~f ~initial:(Some 1) ~replies)

let test_proposer_in_q_excluded () =
  (* Votes whose proposer itself replied in Q are excluded (the set R of
     line 15): that proposer can no longer complete its fast path. *)
  let replies =
    [
      reply 0 ~value:4 ~proposer:3;  (* proposer p3 is in Q *)
      reply 1 ~value:4 ~proposer:3;
      reply 2 ~value:4 ~proposer:3;
      reply 3;  (* p3 itself: never voted *)
    ]
  in
  Alcotest.check choice "excluded votes fall through to the initial value"
    (Recovery.Own_initial 1)
    (select ~n ~e ~f ~initial:(Some 1) ~replies)

let test_own_initial_and_nothing () =
  let replies = [ reply 0; reply 1; reply 2; reply 3 ] in
  Alcotest.check choice "line 19" (Recovery.Own_initial 7)
    (select ~n ~e ~f ~initial:(Some 7) ~replies);
  Alcotest.check choice "object mode, nobody proposed" Recovery.Nothing
    (select ~n ~e ~f ~initial:None ~replies)

let test_below_threshold_ignored () =
  (* A single vote (below threshold 2) must not be recovered. *)
  let replies = [ reply 0 ~value:4 ~proposer:5; reply 1; reply 2; reply 3 ] in
  Alcotest.check choice "one vote is not enough" (Recovery.Own_initial 7)
    (select ~n ~e ~f ~initial:(Some 7) ~replies)

let test_majority_beats_boundary () =
  (* One value above threshold and one at threshold: line 15 fires first
     even when the boundary value is larger. *)
  let replies =
    [
      reply 0 ~value:4 ~proposer:5;
      reply 1 ~value:4 ~proposer:5;
      reply 2 ~value:4 ~proposer:5;
      reply 3 ~value:9 ~proposer:4;
    ]
  in
  (* threshold for this shape: use n=7, f=2, e=2 -> n-f-e = 3; 4 has 3
     votes = threshold... choose n=6: threshold 2: count(4)=3 > 2;
     count(9)=1 < 2. For a sharper case use count(9)=2 with n=7. *)
  Alcotest.check choice "majority first" (Recovery.Fast_majority 4)
    (select ~n ~e ~f ~initial:(Some 1) ~replies)

(* The tightness pivot (cf. Witness): at n = 2e+f the decided value sits at
   the threshold alongside a competitor and the max tie-break saves it; at
   n = 2e+f-1 the competitor exceeds the threshold and wins — which is
   exactly why the task bound is 2e+f. *)
let test_bound_pivot () =
  (* e = f = 2. At the bound n = 6: Q = 4 replies: 2 votes for 10, 2 for 5. *)
  let replies_at_bound =
    [
      reply 0 ~value:10 ~proposer:4;
      reply 1 ~value:10 ~proposer:4;
      reply 2 ~value:5 ~proposer:5;
      reply 3 ~value:5 ~proposer:5;
    ]
  in
  Alcotest.check choice "safe at the bound" (Recovery.Fast_boundary 10)
    (select ~n:6 ~e ~f ~initial:(Some 0) ~replies:replies_at_bound);
  (* Below the bound n = 5: Q = 3 replies: 1 vote for 10, 2 for 5; the
     decided 10 loses. *)
  let replies_below =
    [ reply 0 ~value:10 ~proposer:3; reply 1 ~value:5 ~proposer:4; reply 2 ~value:5 ~proposer:4 ]
  in
  Alcotest.check choice "unsafe below the bound" (Recovery.Fast_majority 5)
    (select ~n:5 ~e ~f ~initial:(Some 0) ~replies:replies_below)

(* Property: Lemma 7 (task). Enumerate all two-competitor vote layouts in
   which the high value [v] was decided on the fast path, under task-mode
   realizability; the rule must select [v]. *)
let lemma7_property ~n ~e ~f =
  let threshold_ok = ref true in
  let pv = n and pw = n + 1 in
  (* abstract pids for the outside proposers *)
  let q_size = n - f in
  (* kv, kw: votes for v / w inside Q; pw_in_q: does pw sit in Q? *)
  let cases = ref [] in
  for kv = 0 to q_size do
    for kw = 0 to q_size - kv do
      List.iter
        (fun pw_in_q ->
          (* pw occupies a Q slot without voting when pw_in_q *)
          let used = kv + kw + if pw_in_q then 1 else 0 in
          if used <= q_size then cases := (kv, kw, pw_in_q) :: !cases)
        [ false; true ]
    done
  done;
  List.iter
    (fun (kv, kw, pw_in_q) ->
      (* outside Q: pv always; pw when not pw_in_q; v needs n-e voters in
         total; the remaining v-votes must fit outside. *)
      let v_total_needed = n - e in
      let ov = v_total_needed - kv in
      (* pv's own implicit vote counts towards ov; the other outside voters
         available are the f-2 extras plus pw when it sits outside Q (task
         mode allows pw to vote for v since v > w). *)
      let capacity = 1 + (f - 2) + if pw_in_q then 0 else 1 in
      if ov >= 1 && ov <= capacity then begin
        let v = 10 and w = 5 in
        let replies =
          List.init kv (fun i -> reply i ~value:v ~proposer:pv)
          @ List.init kw (fun i -> reply (kv + i) ~value:w ~proposer:pw)
          @ (if pw_in_q then [ reply (kv + kw) ] else [])
          @ List.init
              (q_size - kv - kw - if pw_in_q then 1 else 0)
              (fun i -> reply (kv + kw + 1 + i))
        in
        match Recovery.value_of_choice (select ~n ~e ~f ~initial:(Some 0) ~replies) with
        | Some got when got = v -> ()
        | _ -> threshold_ok := false
      end)
    !cases;
  !threshold_ok

let test_lemma7_exhaustive_at_bound () =
  List.iter
    (fun (e, f) ->
      let n = Proto.Bounds.required Proto.Bounds.Task ~e ~f in
      Alcotest.(check bool)
        (Printf.sprintf "lemma 7 holds at n=%d e=%d f=%d" n e f)
        true (lemma7_property ~n ~e ~f))
    [ (1, 1); (2, 2); (2, 3); (3, 3); (1, 3); (3, 4) ]

let test_lemma7_fails_below_bound () =
  (* Sanity of the audit itself: below the bound a violating layout exists
     (when the regime is fast-path limited, i.e. 2e+f-1 >= 2f+1). *)
  Alcotest.(check bool) "fails at n=5 e=2 f=2" false (lemma7_property ~n:5 ~e:2 ~f:2)

let () =
  Alcotest.run "recovery"
    [
      ( "branches",
        [
          Alcotest.test_case "already decided" `Quick test_already_decided;
          Alcotest.test_case "slow-ballot vote" `Quick test_slow_ballot_vote;
          Alcotest.test_case "fast majority" `Quick test_fast_majority;
          Alcotest.test_case "boundary + max tie-break" `Quick test_fast_boundary_max_tiebreak;
          Alcotest.test_case "R-filter exclusion" `Quick test_proposer_in_q_excluded;
          Alcotest.test_case "own initial / nothing" `Quick test_own_initial_and_nothing;
          Alcotest.test_case "below threshold ignored" `Quick test_below_threshold_ignored;
          Alcotest.test_case "majority beats boundary" `Quick test_majority_beats_boundary;
        ] );
      ( "lemma 7",
        [
          Alcotest.test_case "bound pivot" `Quick test_bound_pivot;
          Alcotest.test_case "exhaustive at bound" `Quick test_lemma7_exhaustive_at_bound;
          Alcotest.test_case "fails below bound" `Quick test_lemma7_fails_below_bound;
        ] );
    ]
