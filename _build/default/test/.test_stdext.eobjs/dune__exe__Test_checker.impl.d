test/test_checker.ml: Alcotest Baselines Checker Core Dsim Format
