test/test_dsim.ml: Alcotest Dsim Hashtbl List
