test/test_proto.ml: Alcotest Dsim Format List Proto QCheck QCheck_alcotest
