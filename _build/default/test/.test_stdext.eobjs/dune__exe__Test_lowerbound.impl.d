test/test_lowerbound.ml: Alcotest Dsim Format List Lowerbound Proto
