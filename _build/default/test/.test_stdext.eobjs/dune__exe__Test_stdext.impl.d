test/test_stdext.ml: Alcotest Fun Int64 List Printf QCheck QCheck_alcotest Stdext
