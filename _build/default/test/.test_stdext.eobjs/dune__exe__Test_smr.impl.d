test/test_smr.ml: Alcotest Baselines Checker Core Dsim List Printf QCheck QCheck_alcotest Smr Stdext
