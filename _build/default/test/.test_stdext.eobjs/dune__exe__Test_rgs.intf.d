test/test_rgs.mli:
