test/test_workload.ml: Alcotest List QCheck QCheck_alcotest Stdext Workload
