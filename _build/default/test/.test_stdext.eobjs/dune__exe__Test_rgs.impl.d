test/test_rgs.ml: Alcotest Checker Core Dsim Format List Lowerbound Printf Proto QCheck QCheck_alcotest Stdext
