test/test_epaxos.ml: Alcotest Dsim Epaxos List Proto QCheck QCheck_alcotest Stdext
