test/test_recovery.ml: Alcotest Core List Printf Proto
