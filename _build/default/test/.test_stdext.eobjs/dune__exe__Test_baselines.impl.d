test/test_baselines.ml: Alcotest Baselines Checker Dsim List Printf Proto QCheck QCheck_alcotest Stdext
