test/test_experiments.ml: Alcotest Baselines Buffer Checker Core Dsim Epaxos Experiments Format List Printf Proto Stdext String Workload
