test/test_epaxos.mli:
