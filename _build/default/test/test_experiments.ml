(* Regression tests for the evaluation harness itself: each experiment's
   key invariant is re-derived programmatically (small sample sizes), so a
   change that silently breaks an experiment's conclusion fails here, not
   just in a human reading of bench output. *)

module Pid = Dsim.Pid
module Bounds = Proto.Bounds
module Scenario = Checker.Scenario
module Rng = Stdext.Rng

let delta = 100

(* T1: the headline savings at (2,2). *)
let test_bounds_savings () =
  let e = 2 and f = 2 in
  Alcotest.(check int) "lamport" 7 (Bounds.required Bounds.Lamport_fast ~e ~f);
  Alcotest.(check int) "task" 6 (Bounds.required Bounds.Task ~e ~f);
  Alcotest.(check int) "object" 5 (Bounds.required Bounds.Object ~e ~f)

(* F1 invariant: at its minimal n, the object protocol's solo proxy decides
   two-step for every crash count <= e and never beyond. *)
let test_fast_rate_cliff () =
  let e = 2 and f = 2 in
  let n = Bounds.required Bounds.Object ~e ~f in
  List.iter
    (fun crashes ->
      let expected_fast = crashes <= e in
      let all_ok = ref true in
      for seed = 1 to 30 do
        let rng = Rng.create ~seed in
        let proxy = Rng.int rng n in
        let crashed =
          Rng.shuffle rng (List.filter (fun p -> p <> proxy) (Pid.all ~n))
          |> List.filteri (fun i _ -> i < crashes)
        in
        let o =
          Scenario.run Core.Rgs.obj ~n ~e ~f ~delta ~net:(Scenario.Sync `Random)
            ~proposals:[ (0, proxy, 5) ]
            ~crashes:(Scenario.crash_at_start crashed)
            ~seed ~disable_timers:true ~until:((2 * delta) + 1) ()
        in
        let fast =
          match Scenario.decided_value o proxy with
          | Some (t, _) -> t <= 2 * delta
          | None -> false
        in
        if fast <> expected_fast then all_ok := false
      done;
      Alcotest.(check bool)
        (Printf.sprintf "cliff at e: %d crashes -> fast=%b" crashes expected_fast)
        true !all_ok)
    [ 0; 1; 2; 3 ]

(* F2 invariant: under two conflicting proposals, the object protocol's
   value-ordered fast path still yields a two-step decision for the higher
   proposer in the favourable order, while Fast Paxos cannot decide fast
   once its acceptors split. *)
let test_conflict_behaviour () =
  let e = 2 and f = 2 in
  let run protocol n order =
    Scenario.run protocol ~n ~e ~f ~delta ~net:(Scenario.Sync order)
      ~proposals:[ (0, 1, 5); (0, 2, 7) ]
      ~disable_timers:true ~until:((2 * delta) + 1) ()
  in
  let o = run Core.Rgs.obj 5 (`Favor 2) in
  (match Scenario.decided_value o 2 with
  | Some (t, v) ->
      Alcotest.(check int) "higher value wins fast" 7 v;
      Alcotest.(check int) "two steps" (2 * delta) t
  | None -> Alcotest.fail "rgs-object: higher proposer should decide fast");
  (* Fast Paxos: make the acceptors split votes 3/4 across the two values
     by favouring p1 (value 5): 5 gets most votes but p2 and p1 vote for
     what arrives first; with Favor 1 everyone votes 5... that IS a fast
     decision. Use an adversarial random order that splits instead. *)
  let split_found = ref false in
  for seed = 1 to 20 do
    let o =
      Scenario.run Baselines.Fast_paxos.protocol ~n:7 ~e ~f ~delta
        ~net:(Scenario.Sync `Random)
        ~proposals:[ (0, 1, 5); (0, 2, 7) ]
        ~seed ~disable_timers:true ~until:((2 * delta) + 1) ()
    in
    if o.decisions = [] then split_found := true
  done;
  Alcotest.(check bool) "fast paxos: some split prevents any fast decision" true
    !split_found

(* F3 invariant: on planet5, the object protocol's proxy latency is never
   worse than Fast Paxos's from the same region (it contacts a subset-size
   quorum of a subset-size cluster). *)
let test_wan_dominance () =
  let e = 2 and f = 2 in
  let topo = Workload.Topology.planet5 in
  let wan_delta = Workload.Topology.max_oneway topo + 10 in
  let latency protocol n proxy =
    let o =
      Scenario.run protocol ~n ~e ~f ~delta:wan_delta
        ~net:(Scenario.Wan { latency = Workload.Topology.latency_fn topo; jitter = 0 })
        ~proposals:[ (0, proxy, 5) ]
        ~seed:1 ~until:(40 * wan_delta) ()
    in
    match Scenario.decided_value o proxy with
    | Some (t, _) -> t
    | None -> max_int
  in
  List.iter
    (fun proxy ->
      let rgs = latency Core.Rgs.obj 5 proxy in
      let fp = latency Baselines.Fast_paxos.protocol 7 proxy in
      Alcotest.(check bool)
        (Printf.sprintf "region %d: rgs (%d ms) <= fast-paxos (%d ms)" proxy rgs fp)
        true (rgs <= fp))
    [ 0; 1; 2; 3; 4 ]

(* F5 invariant: EPaxos commits in two delays at 2f+1 with e crashes and no
   interference. *)
let test_epaxos_regime () =
  List.iter
    (fun f ->
      let n = (2 * f) + 1 in
      let e = Bounds.epaxos_e ~f in
      let automaton = Epaxos.make ~n ~f ~delta in
      let crashes = List.init e (fun i -> (0, n - 1 - i)) in
      let engine =
        Dsim.Engine.create ~automaton ~n
          ~network:(Dsim.Network.Sync_rounds { delta; order = Dsim.Network.Arrival })
          ~inputs:[ (0, 0, { Epaxos.Cmd.origin = 0; key = 1; payload = 9 }) ]
          ~crashes ()
      in
      ignore (Dsim.Engine.run ~until:(10 * delta) engine);
      let commit =
        List.find_map
          (fun (t, p, o) ->
            match o with Epaxos.Committed _ when p = 0 -> Some t | _ -> None)
          (Dsim.Engine.outputs engine)
      in
      Alcotest.(check (option int))
        (Printf.sprintf "f=%d: two-delay commit at n=2f+1 under e=%d crashes" f e)
        (Some (2 * delta)) commit)
    [ 1; 2; 3 ]

(* The experiment drivers run end-to-end (catches crashes/format bugs). *)
let test_tables_run () =
  let buffer = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buffer in
  Experiments.t1_bounds_table fmt;
  Experiments.t3_tightness_witnesses fmt;
  Experiments.t4_recovery_audit fmt;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buffer in
  let contains_unexpected =
    let needle = "UNEXPECTED" in
    let nl = String.length needle and sl = String.length s in
    let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "output produced" true (String.length s > 0);
  Alcotest.(check bool) "every row matched its proved expectation" false
    contains_unexpected

let () =
  Alcotest.run "experiments"
    [
      ( "invariants",
        [
          Alcotest.test_case "T1 savings" `Quick test_bounds_savings;
          Alcotest.test_case "F1 crash cliff" `Quick test_fast_rate_cliff;
          Alcotest.test_case "F2 conflict behaviour" `Quick test_conflict_behaviour;
          Alcotest.test_case "F3 WAN dominance" `Quick test_wan_dominance;
          Alcotest.test_case "F5 EPaxos regime" `Quick test_epaxos_regime;
        ] );
      ("drivers", [ Alcotest.test_case "tables run clean" `Quick test_tables_run ]);
    ]
