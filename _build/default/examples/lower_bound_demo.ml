(* The lower bound, live.

   Run with:  dune exec examples/lower_bound_demo.exe

   Theorem 5 says an f-resilient e-two-step consensus *task* needs
   n >= max{2e+f, 2f+1} processes; Theorem 6 lowers this to 2e+f-1 for the
   consensus *object*. This demo replays the adversarial choreography
   behind the "only if" proofs against the paper's own protocol:

   - at the bound, a value decided on the fast path is always re-selected
     by the recovering leader (the run stays safe);
   - one process below the bound, the same choreography makes the
     survivors decide a DIFFERENT value than the crashed fast decider:
     Agreement is broken, so no protocol could be correct there.

   The object protocol needs one process fewer because a consensus object
   may have processes that never propose; the task adversary can force
   every process to hold a proposal, and a proposer that votes for a
   larger rival value (legal for the task, forbidden by the object's red
   lines) is exactly what kills the task protocol at n = 2e+f-1. *)

let demo title scenario ~e ~f ~bound =
  Format.printf "@.== %s (e=%d, f=%d, bound n=%d) ==@." title e f bound;
  List.iter
    (fun n ->
      let r : Lowerbound.Witness.result = scenario ~n ~e ~f () in
      Format.printf "  n=%d: %a fast-decided %a; survivors decided %s -> %s@." n Dsim.Pid.pp
        r.fast_decider Proto.Value.pp r.fast_value
        (String.concat ","
           (List.map
              (fun (p, v) -> Format.asprintf "%a:%a" Dsim.Pid.pp p Proto.Value.pp v)
              r.recovery_decisions))
        (if r.agreement_violated then "AGREEMENT VIOLATED" else "agreement preserved"))
    [ bound; bound - 1 ]

let () =
  Format.printf "Replaying the Appendix-B constructions against the protocol of Figure 1.@.";
  let e = 2 and f = 2 in
  demo "Theorem 5 (task)"
    (fun ~n ~e ~f () -> Lowerbound.Witness.task_scenario ~n ~e ~f ())
    ~e ~f
    ~bound:(Proto.Bounds.required Proto.Bounds.Task ~e ~f);
  let e = 3 and f = 3 in
  demo "Theorem 6 (object)"
    (fun ~n ~e ~f () -> Lowerbound.Witness.object_scenario ~n ~e ~f ())
    ~e ~f
    ~bound:(Proto.Bounds.required Proto.Bounds.Object ~e ~f);
  Format.printf
    "@.The same boundary shows up in the pure recovery rule (Lemma 7 / C.2):@.";
  List.iter
    (fun (mode, name, n, e, f) ->
      let s = Lowerbound.Audit.check ~mode ~n ~e ~f in
      Format.printf "  %-6s n=%d e=%d f=%d: %a@." name n e f Lowerbound.Audit.pp_stats s)
    [
      (Core.Rgs.Task, "task", 6, 2, 2);
      (Core.Rgs.Task, "task", 5, 2, 2);
      (Core.Rgs.Object, "object", 8, 3, 3);
      (Core.Rgs.Object, "object", 7, 3, 3);
    ]
