(* Quickstart: the paper's protocol deciding in two message delays.

   Run with:  dune exec examples/quickstart.exe

   We build a five-process system tolerating f = 2 crashes that still
   decides within two message delays under e = 2 crashes — the consensus
   *object* of Theorem 6, which needs only n = max{2e+f-1, 2f+1} = 5
   processes (Fast Paxos would need 7). A single client proposes 42 at
   process p1; two other processes are crashed from the start. *)

let () =
  let delta = 100 in
  (* one message delay, in simulation ticks *)
  let n = 5 and e = 2 and f = 2 in
  assert (n = Proto.Bounds.required Proto.Bounds.Object ~e ~f);

  let outcome =
    Checker.Scenario.run Core.Rgs.obj ~n ~e ~f ~delta
      ~net:(Checker.Scenario.Sync `Arrival) (* synchronous rounds (Definition 2) *)
      ~proposals:[ (0, 1, 42) ] (* propose(42) invoked at p1 at time 0 *)
      ~crashes:(Checker.Scenario.crash_at_start [ 3; 4 ]) (* E-faulty: e crashes *)
      ~until:(10 * delta) ()
  in

  Format.printf "System: n=%d processes, f=%d resilience, e=%d fast threshold@." n f e;
  Format.printf "Client proposed 42 at p1; p3 and p4 crashed at startup.@.@.";
  List.iter
    (fun (t, p, v) ->
      Format.printf "  %a decided %a at t=%d (%d message delays)@." Dsim.Pid.pp p
        Proto.Value.pp v t (t / delta))
    outcome.decisions;
  Format.printf "@.Consensus checks: %a@." Checker.Safety.pp_verdict
    (Checker.Safety.check outcome);

  (* The proposer decided at exactly 2 message delays. *)
  match Checker.Scenario.decided_value outcome 1 with
  | Some (t, 42) when t = 2 * delta -> Format.printf "Two-step decision at the proxy: yes@."
  | _ -> failwith "expected a two-step decision at p1"
