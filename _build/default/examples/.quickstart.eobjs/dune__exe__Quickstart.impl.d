examples/quickstart.ml: Checker Core Dsim Format List Proto
