examples/quickstart.mli:
