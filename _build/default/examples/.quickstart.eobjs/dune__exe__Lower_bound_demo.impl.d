examples/lower_bound_demo.ml: Core Dsim Format List Lowerbound Proto String
