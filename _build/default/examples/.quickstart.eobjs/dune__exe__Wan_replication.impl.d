examples/wan_replication.ml: Baselines Checker Core Format List Proto Smr String Workload
