examples/fault_injection.ml: Checker Core Dsim Format List Proto String
