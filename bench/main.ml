(* Benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe              # everything: T1-T4, F1-F4, microbenches
     dune exec bench/main.exe -- t3 f2     # selected experiments
     dune exec bench/main.exe -- bechamel  # microbenchmarks only
     dune exec bench/main.exe -- explore   # exploration perf suite -> BENCH_explore.json
     dune exec bench/main.exe -- --domains 4 t2 t3   # parallel sweep grids
     dune exec bench/main.exe -- --domains-list 1,2,4 explore   # explicit domain counts
     dune exec bench/main.exe -- --explore-budget 200 explore   # CI smoke sizing

   Each T/F experiment regenerates one claim of the paper as a table or
   series (see DESIGN.md section 3 and EXPERIMENTS.md). The bechamel suite
   measures the cost of the building blocks themselves; the explore suite
   times the state-space explorer's replay vs snapshot modes and its
   multi-domain fan-out, and records the trajectory machine-readably so
   successive PRs can compare. *)

let fmt = Format.std_formatter

(* -- Exploration performance suite -------------------------------------- *)

type explore_sample = {
  experiment : string;
  protocol : string;
  n : int;
  mode : string;
  domains : int;
  budget : int;
  rounds : int;
  max_drops : int;
  max_dups : int;
  explored : int;
  wall_ns : int;
  (* Run_report-derived telemetry columns (schema v4). The overhead rows
     (mode "scenario") have no exploration report and carry zeros. *)
  fast_path_rate : float;
  mean_depth : float;
  budget_waste_pct : float;
  (* Deduplication columns (schema v5): visited-set policy of the row and
     what it saw. [dedup_hit_rate] is the fraction of search-tree arrivals
     that landed on an already-visited state — 0 with dedup off. *)
  dedup : string;
  distinct_states : int;
  dedup_hit_rate : float;
  (* Engine-throughput columns (schema v6), filled by the [engine] suite
     (zero elsewhere): raw engine events processed by the row's workload
     and the minor-heap words it allocated, from which the JSON derives
     events_per_sec and minor_words_per_event — the two numbers the
     hot-path rewrites are steered by. *)
  events : int;
  minor_words : float;
  (* Partial-order-reduction columns (schema v7): the row's POR policy,
     the order combinations pruned before expansion, and — derived —
     distinct_states_per_sec, the coverage rate that is the headline
     metric for swarm rows (mode "swarm", where [domains] carries the
     walker count and [explored] the completed random walks). *)
  por : string;
  por_pruned : int;
}

(* Suites append here and each writes the union, so one invocation running
   both [explore] and [faults] produces a single BENCH_explore.json with
   every row. *)
let all_samples : explore_sample list ref = ref []

let states_per_sec s =
  if s.wall_ns = 0 then 0.0 else float_of_int s.explored /. (float_of_int s.wall_ns /. 1e9)

let distinct_states_per_sec s =
  if s.wall_ns = 0 then 0.0
  else float_of_int s.distinct_states /. (float_of_int s.wall_ns /. 1e9)

(* n=5..7 at fixed rounds: the (e, f) pairs keep n exactly at the task
   bound 2e+f so the configurations match the T2/T3 grids. The extra
   10k-budget n=7 row exercises a deeper cut of the same tree, where the
   shared-budget fan-out has enough work per domain to matter. *)
let explore_configs = [ (5, 2, 1, 1_000); (6, 2, 2, 1_000); (7, 2, 3, 1_000); (7, 2, 3, 10_000) ]

let explore_rounds = 3

(* Domain counts above the hardware's parallelism measure nothing useful
   (the explorer clamps them to a sequential run anyway), so the default
   sweep stops at [recommended_domain_count]; an explicit --domains-list is
   honoured verbatim so oversubscription itself can be measured. *)
let default_domains_list () =
  let rec_d = max 1 (Domain.recommended_domain_count ()) in
  match List.filter (fun d -> d = 1 || d <= rec_d) [ 1; 2; 4 ] with
  | [] -> [ 1 ]
  | l -> l

let dedup_name = function
  | Checker.Explore.Off -> "off"
  | Checker.Explore.Exact -> "exact"
  | Checker.Explore.Symmetry -> "symmetry"

let por_name = function Checker.Explore.No_por -> "off" | Checker.Explore.Sleep -> "sleep"

let time_explore ~experiment ~n ~e ~f ~budget ~rounds ~faults ~mode ~domains
    ?(dedup = Checker.Explore.Off) ?(por = Checker.Explore.No_por) () =
  let proposals =
    Checker.Scenario.all_proposals_at_zero ~n (List.init n (fun i -> n - 1 - i))
  in
  let t0 = Unix.gettimeofday () in
  let r, report =
    Checker.Explore.synchronous_report Core.Rgs.task ~n ~e ~f ~delta:100 ~proposals
      ~rounds ~budget ~faults ~mode ~domains ~dedup ~por
      ~check:(fun o -> Checker.Safety.safe o)
      ()
  in
  let t1 = Unix.gettimeofday () in
  if r.Checker.Explore.violations > 0 then
    failwith "explore bench: unexpected safety violation";
  let totals = report.Checker.Explore.Run_report.totals in
  let arrivals =
    totals.Checker.Explore.Run_report.distinct_states
    + totals.Checker.Explore.Run_report.dedup_hits
  in
  {
    experiment;
    protocol = "rgs-task";
    n;
    mode = (match mode with `Replay -> "replay" | `Snapshot -> "snapshot");
    domains;
    budget;
    rounds;
    max_drops = faults.Checker.Explore.max_drops;
    max_dups = faults.Checker.Explore.max_dups;
    explored = r.Checker.Explore.explored;
    wall_ns = int_of_float ((t1 -. t0) *. 1e9);
    fast_path_rate = Checker.Explore.Run_report.fast_path_rate totals;
    mean_depth = Checker.Explore.Run_report.mean_depth totals;
    budget_waste_pct =
      Checker.Explore.Run_report.budget_waste_pct report.Checker.Explore.Run_report.sched;
    dedup = dedup_name dedup;
    distinct_states = totals.Checker.Explore.Run_report.distinct_states;
    dedup_hit_rate =
      (if arrivals = 0 then 0.
       else
         float_of_int totals.Checker.Explore.Run_report.dedup_hits
         /. float_of_int arrivals);
    events = 0;
    minor_words = 0.;
    por = por_name por;
    por_pruned = totals.Checker.Explore.Run_report.por_pruned;
  }

(* A swarm row: K seeded walkers sharing a visited set and the run budget.
   [domains] carries the walker count, [explored] the completed walks;
   the coverage signal is distinct_states (and, derived in the JSON,
   distinct_states_per_sec). The dedup column reads "count": the shared
   set counts coverage but never prunes a walk. *)
let time_swarm ~experiment ~n ~e ~f ~budget ~rounds ~walkers ~seed () =
  let proposals =
    Checker.Scenario.all_proposals_at_zero ~n (List.init n (fun i -> n - 1 - i))
  in
  let t0 = Unix.gettimeofday () in
  let r, s =
    Checker.Explore.swarm_report Core.Rgs.task ~n ~e ~f ~delta:100 ~proposals ~rounds
      ~budget ~walkers ~seed
      ~check:(fun o -> Checker.Safety.safe o)
      ()
  in
  let t1 = Unix.gettimeofday () in
  if r.Checker.Explore.violations > 0 then
    failwith "swarm bench: unexpected safety violation";
  let arrivals =
    s.Checker.Explore.Swarm_report.distinct_states
    + s.Checker.Explore.Swarm_report.dedup_hits
  in
  {
    experiment;
    protocol = "rgs-task";
    n;
    mode = "swarm";
    domains = walkers;
    budget;
    rounds;
    max_drops = 0;
    max_dups = 0;
    explored = s.Checker.Explore.Swarm_report.runs;
    wall_ns = int_of_float ((t1 -. t0) *. 1e9);
    fast_path_rate = 0.;
    mean_depth = 0.;
    budget_waste_pct = 0.;
    dedup = "count";
    distinct_states = s.Checker.Explore.Swarm_report.distinct_states;
    dedup_hit_rate =
      (if arrivals = 0 then 0.
       else
         float_of_int s.Checker.Explore.Swarm_report.dedup_hits /. float_of_int arrivals);
    events = 0;
    minor_words = 0.;
    por = "sleep";
    por_pruned = s.Checker.Explore.Swarm_report.por_pruned;
  }

(* Wall-clock of the domains=1 row with the same experiment/mode/budget,
   over this row's wall-clock: > 1 is a speedup, < 1 a regression. [None]
   when the sweep contains no sequential baseline. *)
let speedup_vs_seq samples s =
  List.find_opt
    (fun b ->
      b.domains = 1 && b.experiment = s.experiment && b.mode = s.mode
      && b.budget = s.budget && b.dedup = s.dedup && b.por = s.por)
    samples
  |> Option.map (fun b ->
         if s.wall_ns = 0 then 1.0 else float_of_int b.wall_ns /. float_of_int s.wall_ns)

(* The header's recommendation, derived from the rows actually emitted
   instead of the host's core count (which the old header reported even
   when every measured multi-domain row lost to sequential): the domains
   value with the best mean measured speedup_vs_seq, 1 when nothing beats
   the sequential baseline, and the host count only as a fallback when
   the sweep measured no multi-domain rows at all. *)
let recommended_domains samples =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if s.domains > 1 then
        match speedup_vs_seq samples s with
        | Some sp ->
            let sum, count =
              Option.value ~default:(0., 0) (Hashtbl.find_opt tbl s.domains)
            in
            Hashtbl.replace tbl s.domains (sum +. sp, count + 1)
        | None -> ())
    samples;
  if Hashtbl.length tbl = 0 then max 1 (Domain.recommended_domain_count ())
  else begin
    let best_d, best_mean =
      Hashtbl.fold
        (fun d (sum, count) (bd, bm) ->
          let m = sum /. float_of_int count in
          if m > bm || (m = bm && d < bd) then (d, m) else (bd, bm))
        tbl (1, 1.0)
    in
    if best_mean > 1.0 then best_d else 1
  end

(* events/sec of an engine-suite row; 0 for rows without engine columns. *)
let events_per_sec s =
  if s.wall_ns = 0 || s.events = 0 then 0.0
  else float_of_int s.events /. (float_of_int s.wall_ns /. 1e9)

let minor_words_per_event s =
  if s.events = 0 then 0.0 else s.minor_words /. float_of_int s.events

let write_explore_json path samples =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"suite\": \"explore\",\n";
  out "  \"schema_version\": 7,\n";
  out
    "  \"schema\": [\"experiment\", \"protocol\", \"n\", \"mode\", \"domains\", \
     \"budget\", \"rounds\", \"max_drops\", \"max_dups\", \"explored\", \"wall_ns\", \
     \"states_per_sec\", \"speedup_vs_seq\", \"fast_path_rate\", \"mean_depth\", \
     \"budget_waste_pct\", \"dedup\", \"distinct_states\", \"dedup_hit_rate\", \
     \"events_per_sec\", \"minor_words_per_event\", \"por\", \"por_pruned\", \
     \"distinct_states_per_sec\"],\n";
  out "  \"rounds\": %d,\n" explore_rounds;
  out "  \"recommended_domains\": %d,\n" (recommended_domains samples);
  out "  \"results\": [\n";
  List.iteri
    (fun i s ->
      let speedup =
        match speedup_vs_seq samples s with
        | None -> "null"
        | Some x -> Printf.sprintf "%.2f" x
      in
      out
        "    {\"experiment\": %S, \"protocol\": %S, \"n\": %d, \"mode\": %S, \"domains\": \
         %d, \"budget\": %d, \"rounds\": %d, \"max_drops\": %d, \"max_dups\": %d, \
         \"explored\": %d, \"wall_ns\": %d, \"states_per_sec\": %.1f, \
         \"speedup_vs_seq\": %s, \"fast_path_rate\": %.4f, \"mean_depth\": %.2f, \
         \"budget_waste_pct\": %.2f, \"dedup\": %S, \"distinct_states\": %d, \
         \"dedup_hit_rate\": %.4f, \"events_per_sec\": %.1f, \
         \"minor_words_per_event\": %.2f, \"por\": %S, \"por_pruned\": %d, \
         \"distinct_states_per_sec\": %.1f}%s\n"
        s.experiment s.protocol s.n s.mode s.domains s.budget s.rounds s.max_drops
        s.max_dups s.explored s.wall_ns (states_per_sec s) speedup s.fast_path_rate
        s.mean_depth s.budget_waste_pct s.dedup s.distinct_states s.dedup_hit_rate
        (events_per_sec s) (minor_words_per_event s) s.por s.por_pruned
        (distinct_states_per_sec s)
        (if i = List.length samples - 1 then "" else ","))
    samples;
  out "  ]\n}\n";
  close_out oc

let print_sample_table samples =
  Format.fprintf fmt
    "%-20s %3s %-9s %7s %7s %5s %5s %-8s %-6s | %8s %10s %11s %8s %5s %6s %6s %9s %6s \
     %9s@."
    "experiment" "n" "mode" "domains" "budget" "drops" "dups" "dedup" "por" "explored"
    "wall-ms" "states/sec" "speedup" "fast" "depth" "waste%" "distinct" "hit%" "pruned";
  List.iter
    (fun s ->
      Format.fprintf fmt
        "%-20s %3d %-9s %7d %7d %5d %5d %-8s %-6s | %8d %10.1f %11.0f %8s %5.2f %6.2f \
         %6.2f %9d %6.1f %9d@."
        s.experiment s.n s.mode s.domains s.budget s.max_drops s.max_dups s.dedup s.por
        s.explored
        (float_of_int s.wall_ns /. 1e6)
        (states_per_sec s)
        (match speedup_vs_seq samples s with
        | None -> "-"
        | Some x -> Printf.sprintf "%.2fx" x)
        s.fast_path_rate s.mean_depth s.budget_waste_pct s.distinct_states
        (100. *. s.dedup_hit_rate) s.por_pruned)
    samples

let emit_samples samples =
  all_samples := !all_samples @ samples;
  print_sample_table samples;
  write_explore_json "BENCH_explore.json" !all_samples;
  Format.fprintf fmt "(written to BENCH_explore.json)@."

let run_explore_suite ~domains_list ~budget_override () =
  let domains_list =
    match domains_list with Some l -> l | None -> default_domains_list ()
  in
  Format.fprintf fmt "@.%s@.B2. Exploration: replay vs snapshot, domains {%s}@.%s@."
    (String.make 78 '-')
    (String.concat "," (List.map string_of_int domains_list))
    (String.make 78 '-');
  let configs =
    let with_budget =
      match budget_override with
      | None -> explore_configs
      | Some b -> List.map (fun (n, e, f, _) -> (n, e, f, b)) explore_configs
    in
    List.sort_uniq compare with_budget
  in
  let cases =
    List.concat_map
      (fun (n, e, f, b) ->
        ((n, e, f, b), `Replay, 1, Checker.Explore.Off)
        :: List.map (fun d -> ((n, e, f, b), `Snapshot, d, Checker.Explore.Off)) domains_list)
      configs
  in
  (* The dedup trajectory: an explicit on-vs-off pair at every n >= 6
     config (the off rows are above). The n=7 10k-budget pair is the
     headline — dedup is what turns that budget-truncated search
     exhaustive. *)
  let dedup_cases =
    List.filter_map
      (fun (n, e, f, b) ->
        if n >= 6 then Some ((n, e, f, b), `Snapshot, 1, Checker.Explore.Exact) else None)
      configs
  in
  let samples =
    List.map
      (fun ((n, e, f, budget), mode, domains, dedup) ->
        let experiment =
          Printf.sprintf "explore-n%d%s" n
            (if budget = 1_000 then "" else Printf.sprintf "-b%d" budget)
        in
        time_explore ~experiment ~n ~e ~f ~budget ~rounds:explore_rounds
          ~faults:Checker.Explore.no_faults ~mode ~domains ~dedup ())
      (cases @ dedup_cases)
  in
  (* POR trajectory: a fixed-budget on/off pair per n >= 6 config, run at
     a budget large enough that both sides are exhaustive — so the
     schedules-enumerated ratio measures the tree, not a budget artifact —
     plus the POR+dedup composition row. Deliberately independent of
     --explore-budget: POR makes these cheap. *)
  let por_budget = 5_000 in
  let por_samples =
    List.concat_map
      (fun (n, e, f, _) ->
        if n < 6 then []
        else
          let experiment = Printf.sprintf "por-n%d" n in
          List.map
            (fun (dedup, por) ->
              time_explore ~experiment ~n ~e ~f ~budget:por_budget
                ~rounds:explore_rounds ~faults:Checker.Explore.no_faults
                ~mode:`Snapshot ~domains:1 ~dedup ~por ())
            [
              (Checker.Explore.Off, Checker.Explore.No_por);
              (Checker.Explore.Off, Checker.Explore.Sleep);
              (Checker.Explore.Exact, Checker.Explore.Sleep);
            ])
      (List.sort_uniq compare (List.map (fun (n, e, f, _) -> (n, e, f, 0)) configs))
  in
  (* The acceptance gate: POR on (exact dedup, 1 domain) must enumerate at
     most half the schedules POR-off enumerates, with identical (clean)
     verdicts — time_explore already fails on any violation. *)
  List.iter
    (fun (n, _, _, _) ->
      if n >= 7 then begin
        let find por dedup =
          List.find
            (fun s ->
              s.experiment = Printf.sprintf "por-n%d" n
              && s.por = por && s.dedup = dedup)
            por_samples
        in
        let off = find "off" "off" in
        let on = find "sleep" "exact" in
        if on.explored * 2 > off.explored then
          failwith
            (Printf.sprintf
               "POR regression at n=%d: sleep enumerates %d of %d schedules (> 50%%)" n
               on.explored off.explored)
      end)
    (List.sort_uniq compare (List.map (fun (n, e, f, _) -> (n, e, f, 0)) configs));
  (* Swarm coverage row at n=8 — a size where the exhaustive product is out
     of reach but K random walkers sweep a budget in seconds. Honours
     --explore-budget for CI smoke sizing. *)
  let swarm_budget = match budget_override with None -> 2_000 | Some b -> b in
  let swarm_samples =
    [ time_swarm ~experiment:"swarm-n8" ~n:8 ~e:2 ~f:4 ~budget:swarm_budget
        ~rounds:explore_rounds ~walkers:4 ~seed:7 () ]
  in
  List.iter
    (fun s ->
      if s.explored <> s.budget then
        failwith
          (Printf.sprintf "swarm bench: %d of %d budgeted walks completed" s.explored
             s.budget))
    swarm_samples;
  emit_samples (samples @ por_samples @ swarm_samples)

(* Fault-injection exploration: the same explorer with drop/duplication
   branching enabled. Fault subsets widen the tree by orders of magnitude,
   so these run at [fault_rounds] = 2 and lean on the budget cut; the
   interesting signal is the states/sec cost of fault branching relative
   to the no-fault rows and the parallel speedup on the wider tree. *)
let fault_configs = [ (5, 2, 1, 2_000); (6, 2, 2, 2_000) ]

let fault_rounds = 2

let fault_bounds = { Checker.Explore.max_drops = 1; max_dups = 1 }

let run_faults_suite ~domains_list ~budget_override () =
  let domains_list =
    match domains_list with Some l -> l | None -> default_domains_list ()
  in
  Format.fprintf fmt
    "@.%s@.B3. Fault-injection exploration (<=%d drops, <=%d dups), domains {%s}@.%s@."
    (String.make 78 '-') fault_bounds.Checker.Explore.max_drops
    fault_bounds.Checker.Explore.max_dups
    (String.concat "," (List.map string_of_int domains_list))
    (String.make 78 '-');
  let configs =
    match budget_override with
    | None -> fault_configs
    | Some b -> List.sort_uniq compare (List.map (fun (n, e, f, _) -> (n, e, f, b)) fault_configs)
  in
  let cases =
    List.concat_map
      (fun (n, e, f, b) ->
        ((n, e, f, b), `Replay, 1)
        :: List.map (fun d -> ((n, e, f, b), `Snapshot, d)) domains_list)
      configs
  in
  let samples =
    List.map
      (fun ((n, e, f, budget), mode, domains) ->
        time_explore
          ~experiment:(Printf.sprintf "faults-n%d" n)
          ~n ~e ~f ~budget ~rounds:fault_rounds ~faults:fault_bounds ~mode ~domains ())
      cases
  in
  emit_samples samples

(* -- Metrics overhead --------------------------------------------------- *)

(* The telemetry contract is "zero overhead when disabled": every engine
   probe mirror is a single branch on an immutable bool when the registry
   is {!Stdext.Metrics.disabled}. These two rows measure the same
   fast-path scenario loop with the disabled registry and with a live one;
   the off-row states/sec lands in BENCH_explore.json's trajectory so a
   regression of the disabled path shows up across PRs, and the printed
   overhead line quantifies the enabled path's cost. *)
let run_metrics_overhead_suite ?(iters = 3_000) () =
  Format.fprintf fmt "@.%s@.B4. Metrics overhead (engine probe mirror, %d scenario runs)@.%s@."
    (String.make 78 '-') iters (String.make 78 '-');
  let proposals = Checker.Scenario.all_proposals_at_zero ~n:6 [ 5; 4; 3; 2; 1; 0 ] in
  let run_case experiment registry =
    let t0 = Unix.gettimeofday () in
    for seed = 1 to iters do
      ignore
        (Checker.Scenario.run Core.Rgs.task ~n:6 ~e:2 ~f:2 ~delta:100
           ~net:(Checker.Scenario.Sync `Arrival) ~proposals ~disable_timers:true ~seed
           ~metrics:registry ~until:300 ())
    done;
    let t1 = Unix.gettimeofday () in
    {
      experiment;
      protocol = "rgs-task";
      n = 6;
      mode = "scenario";
      domains = 1;
      budget = iters;
      rounds = 0;
      max_drops = 0;
      max_dups = 0;
      explored = iters;
      wall_ns = int_of_float ((t1 -. t0) *. 1e9);
      fast_path_rate = 0.;
      mean_depth = 0.;
      budget_waste_pct = 0.;
      dedup = "off";
      distinct_states = 0;
      dedup_hit_rate = 0.;
      events = 0;
      minor_words = 0.;
      por = "off";
      por_pruned = 0;
    }
  in
  (* Warm-up evens out allocator/cache state so off vs on is a fair pair. *)
  ignore (run_case "warmup" Stdext.Metrics.disabled : explore_sample);
  let off = run_case "metrics-overhead-off" Stdext.Metrics.disabled in
  let on_ = run_case "metrics-overhead-on" (Stdext.Metrics.create ()) in
  let overhead_pct =
    if off.wall_ns = 0 then 0.
    else 100. *. (float_of_int on_.wall_ns -. float_of_int off.wall_ns)
         /. float_of_int off.wall_ns
  in
  Format.fprintf fmt "enabled-registry overhead vs disabled: %+.1f%%@." overhead_pct;
  emit_samples [ off; on_ ]

(* -- Engine throughput suite -------------------------------------------- *)

(* Raw Dsim.Engine stepping speed, isolated from the checker's schedule
   enumeration: every frontier in ROADMAP.md multiplies event volume
   through this loop, so its events/sec — and its allocations/event, the
   other axis the int-packed rewrite moves — get their own trajectory rows.
   Three workloads:
     engine-n6-sync      full synchronous-round runs, no trace recording
                         (the SMR/sweep configuration);
     engine-n6-trace     the same runs with trace recording on (the
                         explorer's configuration — shows the trace tax);
     engine-n6-snapshot  the explorer's snapshot-mode inner loop: clone a
                         mid-run engine, deliver its pending round, run to
                         quiescence (Manual network, trace on);
     engine-n6-timers    partial synchrony with live timers (exercises the
                         timer table and the stochastic-delay path).
   Events are the engine's own probe steps, so the number is comparable
   across engine rewrites by construction. *)

let engine_iters_default = 2_000

let delta = 100

let engine_protocol = Core.Rgs.task

let engine_n, engine_e, engine_f = (6, 2, 2)

let run_engine_workload (module P : Proto.Protocol.S) ~kind ~iters =
  let n, e, f = (engine_n, engine_e, engine_f) in
  let automaton = P.make ~n ~e ~f ~delta in
  let inputs = List.init n (fun i -> (0, i, n - 1 - i)) in
  let mk network ~record_trace ~disable_timers ~seed =
    Dsim.Engine.create ~automaton ~n ~network ~seed ~record_trace ~disable_timers
      ~inputs ()
  in
  let events = ref 0 in
  let steps engine = (Dsim.Engine.probe engine).Dsim.Engine.Probe.steps in
  (match kind with
  | `Sync record_trace ->
      for seed = 1 to iters do
        let engine =
          mk
            (Dsim.Network.Sync_rounds { delta; order = Dsim.Network.Arrival })
            ~record_trace ~disable_timers:true ~seed
        in
        ignore (Dsim.Engine.run ~until:(3 * delta) engine : Dsim.Engine.run_result);
        events := !events + steps engine
      done
  | `Timers ->
      (* Fewer, longer runs: each takes ~15 rounds to quiesce. *)
      for seed = 1 to max 1 (iters / 10) do
        let engine =
          mk
            (Dsim.Network.Partial_sync { delta; gst = 3 * delta; max_pre_gst = 150 })
            ~record_trace:false ~disable_timers:false ~seed
        in
        ignore (Dsim.Engine.run ~until:(40 * delta) engine : Dsim.Engine.run_result);
        events := !events + steps engine
      done
  | `Snapshot ->
      let base = mk Dsim.Network.Manual ~record_trace:true ~disable_timers:true ~seed:0 in
      ignore (Dsim.Engine.run ~until:(delta - 1) base : Dsim.Engine.run_result);
      let base_steps = steps base in
      for _ = 1 to iters do
        let engine = Dsim.Engine.clone base in
        for round = 1 to 3 do
          let ids =
            List.rev
              (Dsim.Engine.fold_pending engine ~init:[]
                 ~f:(fun acc ~id ~src:_ ~dst:_ ~msg:_ ~sent_at:_ -> id :: acc))
          in
          List.iter
            (fun id -> Dsim.Engine.deliver_pending engine ~id ~at:(round * delta))
            ids;
          ignore (Dsim.Engine.run ~until:(((round + 1) * delta) - 1) engine
                   : Dsim.Engine.run_result)
        done;
        events := !events + (steps engine - base_steps)
      done);
  !events

let time_engine_workload ~experiment ~kind ~iters =
  (* One untimed pass warms caches and stretches the minor heap so the
     measured pass sees the steady state. *)
  ignore (run_engine_workload engine_protocol ~kind ~iters:(max 1 (iters / 10)) : int);
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = run_engine_workload engine_protocol ~kind ~iters in
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  {
    experiment;
    protocol = "rgs-task";
    n = engine_n;
    mode = "engine";
    domains = 1;
    budget = iters;
    rounds = 0;
    max_drops = 0;
    max_dups = 0;
    explored = 0;
    wall_ns = int_of_float ((t1 -. t0) *. 1e9);
    fast_path_rate = 0.;
    mean_depth = 0.;
    budget_waste_pct = 0.;
    dedup = "off";
    distinct_states = 0;
    dedup_hit_rate = 0.;
    events;
    minor_words = w1 -. w0;
    por = "off";
    por_pruned = 0;
  }

let engine_workloads =
  [
    ("engine-n6-sync", `Sync false);
    ("engine-n6-trace", `Sync true);
    ("engine-n6-snapshot", `Snapshot);
    ("engine-n6-timers", `Timers);
  ]

let run_engine_suite ~engine_iters () =
  let iters = Option.value ~default:engine_iters_default engine_iters in
  Format.fprintf fmt "@.%s@.B5. Engine throughput (events/sec, minor words/event; %d iters)@.%s@."
    (String.make 78 '-') iters (String.make 78 '-');
  let samples =
    List.map
      (fun (experiment, kind) -> time_engine_workload ~experiment ~kind ~iters)
      engine_workloads
  in
  Format.fprintf fmt "%-20s | %12s %12s %14s@." "workload" "events" "events/sec"
    "minor w/event";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-20s | %12d %12.0f %14.2f@." s.experiment s.events
        (events_per_sec s) (minor_words_per_event s))
    samples;
  emit_samples samples;
  samples

(* Regression guard for CI: compare the engine suite's events/sec against
   the committed baseline rows (BENCH_baseline.json at the repo root,
   deliberately conservative so runner-to-runner noise does not trip it)
   and fail the run on a >30% drop. *)
let check_engine_baseline ~baseline_path samples =
  let fail msg =
    Printf.eprintf "baseline check: %s\n" msg;
    exit 1
  in
  let contents =
    try In_channel.with_open_text baseline_path In_channel.input_all
    with Sys_error e -> fail (Printf.sprintf "cannot read %s: %s" baseline_path e)
  in
  let json =
    match Stdext.Json.parse contents with
    | Ok j -> j
    | Error e -> fail (Printf.sprintf "cannot parse %s: %s" baseline_path e)
  in
  let rows =
    match Stdext.Json.member "baseline" json with
    | Some (Stdext.Json.List rows) -> rows
    | _ -> fail (Printf.sprintf "%s: missing \"baseline\" array" baseline_path)
  in
  let baseline_of name =
    List.find_map
      (fun row ->
        match
          ( Stdext.Json.member "experiment" row,
            Stdext.Json.member "events_per_sec" row )
        with
        | Some (Stdext.Json.String e), Some (Stdext.Json.Float v) when e = name -> Some v
        | Some (Stdext.Json.String e), Some (Stdext.Json.Int v) when e = name ->
            Some (float_of_int v)
        | _ -> None)
      rows
  in
  List.iter
    (fun s ->
      match baseline_of s.experiment with
      | None -> Format.fprintf fmt "baseline check: %s has no baseline row, skipped@." s.experiment
      | Some base ->
          let current = events_per_sec s in
          let floor = 0.7 *. base in
          if current < floor then
            fail
              (Printf.sprintf
                 "%s regressed: %.0f events/sec < 70%% of baseline %.0f" s.experiment
                 current base)
          else
            Format.fprintf fmt "baseline check: %s ok (%.0f events/sec vs baseline %.0f)@."
              s.experiment current base)
    samples

(* -- SMR deployment suite ----------------------------------------------- *)

(* End-to-end throughput/latency of the replicated KV store under an
   open-loop client fleet: every protocol x topology is measured twice at
   the same offered load — one command per slot ("baseline") vs pipelining
   + batching ("tuned") — so the printed speedup is the payoff of
   amortizing consensus instances, not of admitting more work. *)

type smr_sample = {
  s_experiment : string;  (* smr-<protocol>-<topology>-<mode> *)
  s_protocol : string;
  s_topology : string;
  s_mode : string;
  s_pipeline : int;
  s_batch_max : int;
  s_clients : int;
  s_rate : float;
  s_horizon : int;
  s_submitted : int;
  s_completed : int;
  s_commits_per_sec : float;
  s_p50 : int;
  s_p99 : int;
  s_mean_batch : float;
  s_max_batch : int;
  s_converged : bool;
  s_wall_ns : int;
  (* Causal critical-path attribution (Smr.Spans over the run's span store):
     how many commits measured at <= 2 message delays, the full delay_steps
     histogram, and the component dominating the p99 latency tail. *)
  s_path_commits : int;
  s_two_step : int;
  s_steps_hist : (int * int) list;
  s_p99_dominant : string option;
}

let smr_protocols =
  [
    ("rgs-task", Core.Rgs.task);
    ("rgs-object", Core.Rgs.obj);
    ("paxos", Baselines.Paxos.protocol);
    ("fast-paxos", Baselines.Fast_paxos.protocol);
    ("epaxos", Epaxos.protocol);
  ]

let smr_topologies = [ Workload.Topology.planet5; Workload.Topology.planet9 ]

let smr_modes = [ ("baseline", 1, 1); ("tuned", 16, 64) ]

let smr_clients_default = 120

let smr_horizon_default = 10_000

let smr_rate = 4.0

let time_smr ~protocol_name ~protocol ~topology ~mode ~pipeline ~batch_max ~clients
    ~horizon =
  let cfg : Workload.Fleet.config =
    {
      clients;
      arrival = Open { rate_per_client = smr_rate };
      keys = 64;
      hot_rate = 0.1;
      read_rate = 0.0;
      horizon;
      tick = 50;
    }
  in
  let causality = Dsim.Causality.create () in
  let t0 = Unix.gettimeofday () in
  let r =
    Workload.Fleet.run ~protocol ~e:2 ~f:2 ~topology ~pipeline ~batch_max ~seed:1
      ~causality cfg
  in
  let t1 = Unix.gettimeofday () in
  let attr = Smr.Spans.attribution (Smr.Spans.command_paths causality) in
  let topology_name = Workload.Topology.name topology in
  (* -1 = no completions: percentiles of an empty sample set are undefined
     (Stats.percentile now raises instead of faking a perfect 0). *)
  let pct p = Option.value ~default:(-1) (Stdext.Stats.percentile_opt r.latencies p) in
  {
    s_experiment = Printf.sprintf "smr-%s-%s-%s" protocol_name topology_name mode;
    s_protocol = protocol_name;
    s_topology = topology_name;
    s_mode = mode;
    s_pipeline = pipeline;
    s_batch_max = batch_max;
    s_clients = clients;
    s_rate = smr_rate;
    s_horizon = horizon;
    s_submitted = r.submitted;
    s_completed = r.completed;
    s_commits_per_sec = Workload.Fleet.commits_per_sec r;
    s_p50 = pct 50.0;
    s_p99 = pct 99.0;
    s_mean_batch = r.mean_batch;
    s_max_batch = r.max_batch;
    s_converged = r.converged;
    s_wall_ns = int_of_float ((t1 -. t0) *. 1e9);
    s_path_commits = attr.Smr.Spans.commits;
    s_two_step = attr.Smr.Spans.two_step;
    s_steps_hist = attr.Smr.Spans.steps_hist;
    s_p99_dominant = attr.Smr.Spans.p99_dominant;
  }

let write_smr_json path samples =
  Out_channel.with_open_text path (fun oc ->
      let p format = Printf.fprintf oc format in
      p "{\n";
      p "  \"suite\": \"smr\",\n";
      p "  \"schema_version\": 2,\n";
      p
        "  \"schema\": [\"experiment\", \"protocol\", \"topology\", \"mode\", \
         \"pipeline\", \"batch_max\", \"clients\", \"rate_per_client\", \"horizon_ms\", \
         \"submitted\", \"completed\", \"commits_per_sec\", \"p50_ms\", \"p99_ms\", \
         \"mean_batch\", \"max_batch\", \"converged\", \"wall_ns\", \"path_commits\", \
         \"two_step\", \"delay_steps_hist\", \"p99_dominant\"],\n";
      p "  \"samples\": [\n";
      List.iteri
        (fun i s ->
          let hist =
            String.concat ", "
              (List.map (fun (k, v) -> Printf.sprintf "\"%d\": %d" k v) s.s_steps_hist)
          in
          p
            "    {\"experiment\": %S, \"protocol\": %S, \"topology\": %S, \"mode\": %S, \
             \"pipeline\": %d, \"batch_max\": %d, \"clients\": %d, \"rate_per_client\": \
             %.2f, \"horizon_ms\": %d, \"submitted\": %d, \"completed\": %d, \
             \"commits_per_sec\": %.2f, \"p50_ms\": %d, \"p99_ms\": %d, \"mean_batch\": \
             %.3f, \"max_batch\": %d, \"converged\": %b, \"wall_ns\": %d, \
             \"path_commits\": %d, \"two_step\": %d, \"delay_steps_hist\": {%s}, \
             \"p99_dominant\": %s}%s\n"
            s.s_experiment s.s_protocol s.s_topology s.s_mode s.s_pipeline s.s_batch_max
            s.s_clients s.s_rate s.s_horizon s.s_submitted s.s_completed
            s.s_commits_per_sec s.s_p50 s.s_p99 s.s_mean_batch s.s_max_batch s.s_converged
            s.s_wall_ns s.s_path_commits s.s_two_step hist
            (match s.s_p99_dominant with
            | Some c -> Printf.sprintf "%S" c
            | None -> "null")
            (if i = List.length samples - 1 then "" else ","))
        samples;
      p "  ]\n";
      p "}\n");
  Format.fprintf fmt "@.wrote %d smr samples to %s@." (List.length samples) path

(* Conflict-free cross-check: one closed-loop client with no hot key keeps
   exactly one command in flight, so every commit's causal chain is the
   textbook diagram and its measured delay_steps must be exactly 2 for the
   two-step protocols at their bound — Checker.Report.conflict_free's
   fast-path claim, read off real critical paths instead of the protocol's
   own accounting. Asserted, not just printed. *)
let smr_conflict_free_checks () =
  let cases =
    [
      ("rgs-task", Core.Rgs.task, 6);
      ("rgs-object", Core.Rgs.obj, 5);
      ("fast-paxos", Baselines.Fast_paxos.protocol, 7);
    ]
  in
  List.iter
    (fun (name, protocol, n) ->
      let cfg : Workload.Fleet.config =
        {
          clients = 1;
          arrival = Workload.Fleet.Closed { think = 100 };
          keys = 16;
          hot_rate = 0.0;
          read_rate = 0.0;
          horizon = 4000;
          tick = 50;
        }
      in
      let causality = Dsim.Causality.create () in
      let r =
        Workload.Fleet.run ~protocol ~e:2 ~f:2 ~n ~topology:Workload.Topology.planet5
          ~seed:11 ~causality cfg
      in
      let attr = Smr.Spans.attribution (Smr.Spans.command_paths causality) in
      let ok =
        r.converged
        && attr.Smr.Spans.commits > 0
        && attr.Smr.Spans.two_step = attr.Smr.Spans.commits
        && List.for_all (fun (k, _) -> k = 2) attr.Smr.Spans.steps_hist
      in
      Format.fprintf fmt "conflict-free %-12s n=%d: %d commits, all at delay_steps = 2: %b@."
        name n attr.Smr.Spans.commits ok;
      if not ok then begin
        Printf.eprintf
          "smr conflict-free check: %s measured off the two-step fast path\n" name;
        exit 1
      end)
    cases

let run_smr_suite ~smr_clients ~smr_horizon () =
  let clients = Option.value ~default:smr_clients_default smr_clients in
  let horizon = Option.value ~default:smr_horizon_default smr_horizon in
  Format.fprintf fmt
    "@.%s@.B6. SMR under load (open loop: %d clients x %.1f cmd/s, %d virtual ms, e = f \
     = 2)@.%s@."
    (String.make 78 '-') clients smr_rate horizon (String.make 78 '-');
  let samples =
    List.concat_map
      (fun topology ->
        List.concat_map
          (fun (protocol_name, protocol) ->
            List.map
              (fun (mode, pipeline, batch_max) ->
                time_smr ~protocol_name ~protocol ~topology ~mode ~pipeline ~batch_max
                  ~clients ~horizon)
              smr_modes)
          smr_protocols)
      smr_topologies
  in
  Format.fprintf fmt "%-32s | %9s %7s %7s | %6s %5s | %8s %-10s | %5s@." "experiment"
    "commits/s" "p50" "p99" "batch" "conv" "2-step" "p99-dom" "wall";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-32s | %9.1f %6dms %6dms | %6.2f %5b | %7.1f%% %-10s | %4.1fs@."
        s.s_experiment s.s_commits_per_sec s.s_p50 s.s_p99 s.s_mean_batch s.s_converged
        (if s.s_path_commits = 0 then 0.0
         else 100.0 *. float_of_int s.s_two_step /. float_of_int s.s_path_commits)
        (Option.value ~default:"-" s.s_p99_dominant)
        (float_of_int s.s_wall_ns /. 1e9))
    samples;
  (* Per-protocol delay_steps histograms: the paper's message-delay currency
     measured on every commit's causal chain. *)
  List.iter
    (fun s ->
      Format.fprintf fmt "delay_steps %-28s {%s}@." (s.s_experiment ^ ":")
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%d: %d" k v) s.s_steps_hist)))
    samples;
  (* The acceptance check the suite exists for: batching + pipelining must
     pay at equal offered load, on every protocol and topology. *)
  List.iter
    (fun (base : smr_sample) ->
      if base.s_mode = "baseline" then
        let tuned_name =
          Printf.sprintf "smr-%s-%s-tuned" base.s_protocol base.s_topology
        in
        match List.find_opt (fun s -> s.s_experiment = tuned_name) samples with
        | None -> ()
        | Some tuned ->
            let speedup =
              if base.s_commits_per_sec > 0.0 then
                tuned.s_commits_per_sec /. base.s_commits_per_sec
              else infinity
            in
            Format.fprintf fmt "speedup %-24s %5.1fx (%.1f -> %.1f commits/s)@."
              (Printf.sprintf "%s-%s:" base.s_protocol base.s_topology)
              speedup base.s_commits_per_sec tuned.s_commits_per_sec)
    samples;
  write_smr_json "BENCH_smr.json" samples;
  smr_conflict_free_checks ();
  samples

(* Same 70%-floor discipline as the engine suite, over commits/sec: rows
   are matched by experiment name against BENCH_baseline.json entries
   carrying a "commits_per_sec" field. *)
let check_smr_baseline ~baseline_path samples =
  let fail msg =
    Printf.eprintf "smr baseline check: %s\n" msg;
    exit 1
  in
  let contents =
    try In_channel.with_open_text baseline_path In_channel.input_all
    with Sys_error e -> fail (Printf.sprintf "cannot read %s: %s" baseline_path e)
  in
  let json =
    match Stdext.Json.parse contents with
    | Ok j -> j
    | Error e -> fail (Printf.sprintf "cannot parse %s: %s" baseline_path e)
  in
  let rows =
    match Stdext.Json.member "baseline" json with
    | Some (Stdext.Json.List rows) -> rows
    | _ -> fail (Printf.sprintf "%s: missing \"baseline\" array" baseline_path)
  in
  let baseline_of name =
    List.find_map
      (fun row ->
        match
          ( Stdext.Json.member "experiment" row,
            Stdext.Json.member "commits_per_sec" row )
        with
        | Some (Stdext.Json.String e), Some (Stdext.Json.Float v) when e = name -> Some v
        | Some (Stdext.Json.String e), Some (Stdext.Json.Int v) when e = name ->
            Some (float_of_int v)
        | _ -> None)
      rows
  in
  List.iter
    (fun s ->
      match baseline_of s.s_experiment with
      | None -> ()
      | Some base ->
          let floor = 0.7 *. base in
          if s.s_commits_per_sec < floor then
            fail
              (Printf.sprintf "%s regressed: %.1f commits/sec < 70%% of baseline %.1f"
                 s.s_experiment s.s_commits_per_sec base)
          else
            Format.fprintf fmt
              "smr baseline check: %s ok (%.1f commits/sec vs baseline %.1f)@."
              s.s_experiment s.s_commits_per_sec base;
          if not s.s_converged then
            fail (Printf.sprintf "%s: replicas failed to converge" s.s_experiment))
    samples

(* -- Linearizability suite --------------------------------------------- *)

(* B7: object-level correctness as a benchmark. Every protocol's fleet run
   — fault-free and under message loss/duplication — must yield a
   linearizable client history, the run-length history encoding must beat
   its own JSONL rendering by >= 4x, and per-key decomposition must beat
   the monolithic search. Each is asserted, not just printed. *)

type lin_sample = {
  l_experiment : string;  (* lin-<protocol>-<faults> *)
  l_protocol : string;
  l_faults : string;
  l_ops : int;
  l_complete : int;
  l_jsonl_bytes : int;
  l_rle_bytes : int;
  l_check_ms : float;
  l_states : int;
  l_linearizable : bool;
}

let lin_read_rate = 0.3

let time_lin ~protocol_name ~protocol ~faults_name ~faults ~clients ~horizon =
  let cfg : Workload.Fleet.config =
    {
      clients;
      arrival = Open { rate_per_client = smr_rate };
      keys = 64;
      hot_rate = 0.1;
      read_rate = lin_read_rate;
      horizon;
      tick = 50;
    }
  in
  let r =
    Workload.Fleet.run ~protocol ~e:2 ~f:2 ~topology:Workload.Topology.planet5
      ~pipeline:16 ~batch_max:64 ~seed:1 ?faults cfg
  in
  let table = Checker.History.to_table r.history in
  let jsonl_bytes = String.length (Stdext.Rle.to_jsonl table) in
  let rle_bytes = String.length (Stdext.Rle.encode table) in
  let t0 = Unix.gettimeofday () in
  let outcome = Checker.Linearizability.check_history r.history in
  let t1 = Unix.gettimeofday () in
  {
    l_experiment = Printf.sprintf "lin-%s-%s" protocol_name faults_name;
    l_protocol = protocol_name;
    l_faults = faults_name;
    l_ops = List.length r.history;
    l_complete = r.completed;
    l_jsonl_bytes = jsonl_bytes;
    l_rle_bytes = rle_bytes;
    l_check_ms = (t1 -. t0) *. 1000.0;
    l_states = outcome.stats.states;
    l_linearizable = outcome.ok;
  }

let lin_ratio s = float_of_int s.l_jsonl_bytes /. float_of_int (max 1 s.l_rle_bytes)

let write_lin_json path samples =
  Out_channel.with_open_text path (fun oc ->
      let p format = Printf.fprintf oc format in
      p "{\n";
      p "  \"suite\": \"lin\",\n";
      p "  \"schema_version\": 1,\n";
      p
        "  \"schema\": [\"experiment\", \"protocol\", \"faults\", \"ops\", \"complete\", \
         \"jsonl_bytes\", \"rle_bytes\", \"compression_ratio\", \"check_ms\", \
         \"states\", \"linearizable\"],\n";
      p "  \"samples\": [\n";
      List.iteri
        (fun i s ->
          p
            "    {\"experiment\": %S, \"protocol\": %S, \"faults\": %S, \"ops\": %d, \
             \"complete\": %d, \"jsonl_bytes\": %d, \"rle_bytes\": %d, \
             \"compression_ratio\": %.2f, \"check_ms\": %.2f, \"states\": %d, \
             \"linearizable\": %b}%s\n"
            s.l_experiment s.l_protocol s.l_faults s.l_ops s.l_complete s.l_jsonl_bytes
            s.l_rle_bytes (lin_ratio s) s.l_check_ms s.l_states s.l_linearizable
            (if i = List.length samples - 1 then "" else ","))
        samples;
      p "  ]\n";
      p "}\n");
  Format.fprintf fmt "@.wrote %d lin samples to %s@." (List.length samples) path

let run_lin_suite ~smr_clients ~smr_horizon () =
  let clients = Option.value ~default:smr_clients_default smr_clients in
  let horizon = Option.value ~default:smr_horizon_default smr_horizon in
  Format.fprintf fmt
    "@.%s@.B7. Linearizability of fleet histories (read rate %.1f, %d clients, %d \
     virtual ms)@.%s@."
    (String.make 78 '-') lin_read_rate clients horizon (String.make 78 '-');
  let fault_plans =
    [
      ("faultfree", None);
      ( "dropdup",
        Some
          (Dsim.Network.Fault.random ~drop_rate:0.02 ~dup_rate:0.02 ~max_drops:64
             ~max_dups:64 ~max_extra_delay:(2 * delta) ()) );
    ]
  in
  let samples =
    List.concat_map
      (fun (protocol_name, protocol) ->
        List.map
          (fun (faults_name, faults) ->
            time_lin ~protocol_name ~protocol ~faults_name ~faults ~clients ~horizon)
          fault_plans)
      smr_protocols
  in
  Format.fprintf fmt "%-28s | %6s %6s | %8s %8s %6s | %8s %8s | %3s@." "experiment" "ops"
    "done" "jsonl" "rle" "ratio" "check ms" "states" "lin";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-28s | %6d %6d | %8d %8d %5.1fx | %8.1f %8d | %3s@."
        s.l_experiment s.l_ops s.l_complete s.l_jsonl_bytes s.l_rle_bytes (lin_ratio s)
        s.l_check_ms s.l_states
        (if s.l_linearizable then "yes" else "NO"))
    samples;
  (* The assertions the suite exists for. *)
  List.iter
    (fun s ->
      if not s.l_linearizable then begin
        Printf.eprintf "lin suite: %s produced a non-linearizable history\n"
          s.l_experiment;
        exit 1
      end;
      if lin_ratio s < 4.0 then begin
        Printf.eprintf "lin suite: %s history compressed only %.2fx (< 4x floor)\n"
          s.l_experiment (lin_ratio s);
        exit 1
      end)
    samples;
  (* Per-key vs monolithic on a deliberately small fleet: the monolithic
     search must explore the cross-key interleavings the decomposition
     never builds, and it blows up out of all proportion on anything
     bigger. *)
  let small : Workload.Fleet.config =
    {
      clients = 24;
      arrival = Open { rate_per_client = smr_rate };
      keys = 8;
      hot_rate = 0.1;
      read_rate = lin_read_rate;
      horizon = 3_000;
      tick = 50;
    }
  in
  let r =
    Workload.Fleet.run ~protocol:Core.Rgs.task ~e:2 ~f:2
      ~topology:Workload.Topology.planet5 ~pipeline:16 ~batch_max:64 ~seed:1 small
  in
  let timed mode =
    let t0 = Unix.gettimeofday () in
    let o = Checker.Linearizability.check_history ~mode r.history in
    let t1 = Unix.gettimeofday () in
    (o, (t1 -. t0) *. 1000.0)
  in
  let per_key, per_key_ms = timed `Per_key in
  let mono, mono_ms = timed `Monolithic in
  Format.fprintf fmt
    "decomposition: %d ops / %d keys -> per-key %d states (%.1f ms) vs monolithic %d \
     states (%.1f ms)@."
    (List.length r.history) per_key.stats.keys per_key.stats.states per_key_ms
    mono.stats.states mono_ms;
  if per_key.ok <> mono.ok then begin
    Printf.eprintf "lin suite: per-key and monolithic verdicts disagree\n";
    exit 1
  end;
  if mono.stats.states < per_key.stats.states then begin
    Printf.eprintf
      "lin suite: monolithic search explored fewer states than per-key (%d < %d)\n"
      mono.stats.states per_key.stats.states;
    exit 1
  end;
  write_lin_json "BENCH_lin.json" samples;
  samples

(* -- Bechamel microbenchmarks ------------------------------------------ *)

let bench_sync_fast_path protocol name =
  let run () =
    let proposals = Checker.Scenario.all_proposals_at_zero ~n:5 [ 0; 1; 2; 3; 4 ] in
    Checker.Scenario.run protocol ~n:5 ~e:2 ~f:2 ~delta
      ~net:(Checker.Scenario.Sync (`Favor 4)) ~proposals ~disable_timers:true
      ~until:(3 * delta) ()
  in
  Bechamel.Test.make ~name (Bechamel.Staged.stage (fun () -> ignore (run ())))

let bench_recovery_select =
  let replies =
    List.init 10 (fun i ->
        {
          Core.Recovery.sender = i;
          vbal = 0;
          value = (if i < 4 then Some 7 else if i < 7 then Some 3 else None);
          proposer = Some (100 + (i mod 2));
          decided = None;
        })
  in
  Bechamel.Test.make ~name:"recovery.select (10 replies)"
    (Bechamel.Staged.stage (fun () ->
         ignore (Core.Recovery.select ~n:13 ~e:3 ~f:3 ~initial:(Some 1) ~replies)))

let bench_witness =
  Bechamel.Test.make ~name:"witness.task_scenario n=6"
    (Bechamel.Staged.stage (fun () ->
         ignore (Lowerbound.Witness.task_scenario ~n:6 ~e:2 ~f:2 ())))

let bench_partial_sync_run =
  Bechamel.Test.make ~name:"rgs-task partial-sync run to decision (n=6)"
    (Bechamel.Staged.stage (fun () ->
         let proposals = Checker.Scenario.all_proposals_at_zero ~n:6 [ 5; 4; 3; 2; 1; 0 ] in
         ignore
           (Checker.Scenario.run Core.Rgs.task ~n:6 ~e:2 ~f:2 ~delta
              ~net:(Checker.Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
              ~proposals ~seed:1 ~until:(40 * delta) ())))

let bench_rng =
  let rng = Stdext.Rng.create ~seed:7 in
  Bechamel.Test.make ~name:"rng.bits64"
    (Bechamel.Staged.stage (fun () -> ignore (Stdext.Rng.bits64 rng)))

let bench_pqueue =
  Bechamel.Test.make ~name:"pqueue push+pop x100"
    (Bechamel.Staged.stage (fun () ->
         let q = Stdext.Pqueue.create () in
         for i = 0 to 99 do
           Stdext.Pqueue.push q ~priority:(i * 7 mod 31) i
         done;
         while not (Stdext.Pqueue.is_empty q) do
           ignore (Stdext.Pqueue.pop q)
         done))

let run_bechamel () =
  let open Bechamel in
  Format.fprintf fmt "@.%s@.B1. Microbenchmarks (Bechamel, OLS estimate per run)@.%s@."
    (String.make 78 '-') (String.make 78 '-');
  let tests =
    Test.make_grouped ~name:"twostep"
      [
        bench_rng;
        bench_pqueue;
        bench_recovery_select;
        bench_sync_fast_path Core.Rgs.task "rgs-task sync fast path (n=5)";
        bench_sync_fast_path Baselines.Fast_paxos.protocol "fast-paxos sync fast path (n=5)";
        bench_witness;
        bench_partial_sync_run;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
  in
  Format.fprintf fmt "%-55s | %15s | %6s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with Some (x :: _) -> x | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
      Format.fprintf fmt "%-55s | %15.1f | %6.4f@." name estimate r2)
    rows

(* -- dispatch ----------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: main.exe [--domains N] [--domains-list N,N,...] [--explore-budget N] \
     [--engine-iters N] [--smr-clients N] [--smr-horizon MS] [--check-baseline FILE] \
     [t1|t2|t3|t4|f1|f2|f3|f4|f5|tables|figures|bechamel|explore|faults|overhead|engine|smr|lin|all]...";
  exit 1

let run_experiment ~domains ~domains_list ~budget_override ~engine_iters ~smr_clients
    ~smr_horizon ~check_baseline = function
  | "t1" -> Experiments.t1_bounds_table fmt
  | "t2" -> Experiments.t2_twostep_verification ~domains fmt
  | "t3" -> Experiments.t3_tightness_witnesses ~domains fmt
  | "t4" -> Experiments.t4_recovery_audit ~domains fmt
  | "f1" -> Experiments.f1_fast_rate_vs_crashes ~domains fmt
  | "f2" -> Experiments.f2_latency_vs_conflict fmt
  | "f3" -> Experiments.f3_wan_latency fmt
  | "f4" -> Experiments.f4_smr_throughput fmt
  | "f5" -> Experiments.f5_epaxos_motivation fmt
  | "tables" ->
      Experiments.t1_bounds_table fmt;
      Experiments.t2_twostep_verification ~domains fmt;
      Experiments.t3_tightness_witnesses ~domains fmt;
      Experiments.t4_recovery_audit ~domains fmt
  | "figures" ->
      Experiments.f1_fast_rate_vs_crashes ~domains fmt;
      Experiments.f2_latency_vs_conflict fmt;
      Experiments.f3_wan_latency fmt;
      Experiments.f4_smr_throughput fmt;
      Experiments.f5_epaxos_motivation fmt
  | "bechamel" -> run_bechamel ()
  | "explore" -> run_explore_suite ~domains_list ~budget_override ()
  | "faults" -> run_faults_suite ~domains_list ~budget_override ()
  | "overhead" -> run_metrics_overhead_suite ()
  | "engine" ->
      let samples = run_engine_suite ~engine_iters () in
      Option.iter (fun baseline_path -> check_engine_baseline ~baseline_path samples)
        check_baseline
  | "smr" ->
      let samples = run_smr_suite ~smr_clients ~smr_horizon () in
      Option.iter (fun baseline_path -> check_smr_baseline ~baseline_path samples)
        check_baseline
  | "lin" -> ignore (run_lin_suite ~smr_clients ~smr_horizon () : lin_sample list)
  | "all" ->
      Experiments.all ~domains fmt;
      run_bechamel ();
      run_explore_suite ~domains_list ~budget_override ();
      run_faults_suite ~domains_list ~budget_override ();
      run_metrics_overhead_suite ();
      ignore (run_engine_suite ~engine_iters () : explore_sample list);
      ignore (run_smr_suite ~smr_clients ~smr_horizon () : smr_sample list);
      ignore (run_lin_suite ~smr_clients ~smr_horizon () : lin_sample list)
  | arg ->
      Printf.eprintf "unknown experiment %S\n" arg;
      usage ()

(* Extract leading/interspersed [--domains N], [--domains-list N,N,...],
   [--explore-budget N], [--engine-iters N], [--smr-clients N],
   [--smr-horizon MS] and [--check-baseline FILE] flags; everything else is
   an experiment name. *)
let rec parse_args ~domains ~domains_list ~budget_override ~engine_iters ~smr_clients
    ~smr_horizon ~check_baseline acc = function
  | [] ->
      ( domains,
        domains_list,
        budget_override,
        engine_iters,
        smr_clients,
        smr_horizon,
        check_baseline,
        List.rev acc )
  | "--domains" :: value :: rest -> begin
      match int_of_string_opt value with
      | Some d when d >= 1 ->
          parse_args ~domains:d ~domains_list ~budget_override ~engine_iters ~smr_clients
            ~smr_horizon ~check_baseline acc rest
      | _ ->
          Printf.eprintf "--domains expects a positive integer, got %S\n" value;
          usage ()
    end
  | "--domains-list" :: value :: rest -> begin
      let parsed =
        List.map int_of_string_opt (String.split_on_char ',' value)
        |> List.map (function Some d when d >= 1 -> Some d | _ -> None)
      in
      if List.exists (( = ) None) parsed || parsed = [] then begin
        Printf.eprintf "--domains-list expects positive integers, got %S\n" value;
        usage ()
      end;
      let l = List.filter_map Fun.id parsed in
      parse_args ~domains ~domains_list:(Some l) ~budget_override ~engine_iters
        ~smr_clients ~smr_horizon ~check_baseline acc rest
    end
  | "--explore-budget" :: value :: rest -> begin
      match int_of_string_opt value with
      | Some b when b >= 1 ->
          parse_args ~domains ~domains_list ~budget_override:(Some b) ~engine_iters
            ~smr_clients ~smr_horizon ~check_baseline acc rest
      | _ ->
          Printf.eprintf "--explore-budget expects a positive integer, got %S\n" value;
          usage ()
    end
  | "--engine-iters" :: value :: rest -> begin
      match int_of_string_opt value with
      | Some b when b >= 1 ->
          parse_args ~domains ~domains_list ~budget_override ~engine_iters:(Some b)
            ~smr_clients ~smr_horizon ~check_baseline acc rest
      | _ ->
          Printf.eprintf "--engine-iters expects a positive integer, got %S\n" value;
          usage ()
    end
  | "--smr-clients" :: value :: rest -> begin
      match int_of_string_opt value with
      | Some c when c >= 1 ->
          parse_args ~domains ~domains_list ~budget_override ~engine_iters
            ~smr_clients:(Some c) ~smr_horizon ~check_baseline acc rest
      | _ ->
          Printf.eprintf "--smr-clients expects a positive integer, got %S\n" value;
          usage ()
    end
  | "--smr-horizon" :: value :: rest -> begin
      match int_of_string_opt value with
      | Some h when h >= 1 ->
          parse_args ~domains ~domains_list ~budget_override ~engine_iters ~smr_clients
            ~smr_horizon:(Some h) ~check_baseline acc rest
      | _ ->
          Printf.eprintf "--smr-horizon expects a positive integer, got %S\n" value;
          usage ()
    end
  | "--check-baseline" :: value :: rest ->
      parse_args ~domains ~domains_list ~budget_override ~engine_iters ~smr_clients
        ~smr_horizon ~check_baseline:(Some value) acc rest
  | (("--domains" | "--domains-list" | "--explore-budget" | "--engine-iters"
     | "--smr-clients" | "--smr-horizon" | "--check-baseline") as flag)
    :: [] ->
      Printf.eprintf "%s expects a value\n" flag;
      usage ()
  | arg :: rest ->
      parse_args ~domains ~domains_list ~budget_override ~engine_iters ~smr_clients
        ~smr_horizon ~check_baseline (arg :: acc) rest

let () =
  let ( domains,
        domains_list,
        budget_override,
        engine_iters,
        smr_clients,
        smr_horizon,
        check_baseline,
        args ) =
    parse_args ~domains:1 ~domains_list:None ~budget_override:None ~engine_iters:None
      ~smr_clients:None ~smr_horizon:None ~check_baseline:None []
      (List.tl (Array.to_list Sys.argv))
  in
  let run =
    run_experiment ~domains ~domains_list ~budget_override ~engine_iters ~smr_clients
      ~smr_horizon ~check_baseline
  in
  match args with [] -> run "all" | args -> List.iter run args
