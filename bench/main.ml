(* Benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe              # everything: T1-T4, F1-F4, microbenches
     dune exec bench/main.exe -- t3 f2     # selected experiments
     dune exec bench/main.exe -- bechamel  # microbenchmarks only
     dune exec bench/main.exe -- explore   # exploration perf suite -> BENCH_explore.json
     dune exec bench/main.exe -- --domains 4 t2 t3   # parallel sweep grids

   Each T/F experiment regenerates one claim of the paper as a table or
   series (see DESIGN.md section 3 and EXPERIMENTS.md). The bechamel suite
   measures the cost of the building blocks themselves; the explore suite
   times the state-space explorer's replay vs snapshot modes and its
   multi-domain fan-out, and records the trajectory machine-readably so
   successive PRs can compare. *)

let fmt = Format.std_formatter

(* -- Exploration performance suite -------------------------------------- *)

type explore_sample = {
  experiment : string;
  protocol : string;
  n : int;
  mode : string;
  domains : int;
  explored : int;
  wall_ns : int;
}

let states_per_sec s =
  if s.wall_ns = 0 then 0.0 else float_of_int s.explored /. (float_of_int s.wall_ns /. 1e9)

(* n=5..7 at fixed rounds: the (e, f) pairs keep n exactly at the task
   bound 2e+f so the configurations match the T2/T3 grids. *)
let explore_configs = [ (5, 2, 1); (6, 2, 2); (7, 2, 3) ]

let explore_rounds = 3

let explore_budget = 1_000

let time_explore ~n ~e ~f ~mode ~domains =
  let proposals =
    Checker.Scenario.all_proposals_at_zero ~n (List.init n (fun i -> n - 1 - i))
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Checker.Explore.synchronous Core.Rgs.task ~n ~e ~f ~delta:100 ~proposals
      ~rounds:explore_rounds ~budget:explore_budget ~mode ~domains
      ~check:(fun o -> Checker.Safety.safe o)
      ()
  in
  let t1 = Unix.gettimeofday () in
  if r.Checker.Explore.violations > 0 then
    failwith "explore bench: unexpected safety violation";
  {
    experiment = Printf.sprintf "explore-n%d" n;
    protocol = "rgs-task";
    n;
    mode = (match mode with `Replay -> "replay" | `Snapshot -> "snapshot");
    domains;
    explored = r.Checker.Explore.explored;
    wall_ns = int_of_float ((t1 -. t0) *. 1e9);
  }

let write_explore_json path samples =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"suite\": \"explore\",\n";
  out "  \"schema\": [\"experiment\", \"protocol\", \"n\", \"mode\", \"domains\", \"explored\", \"wall_ns\", \"states_per_sec\"],\n";
  out "  \"rounds\": %d,\n" explore_rounds;
  out "  \"budget\": %d,\n" explore_budget;
  out "  \"results\": [\n";
  List.iteri
    (fun i s ->
      out
        "    {\"experiment\": %S, \"protocol\": %S, \"n\": %d, \"mode\": %S, \"domains\": \
         %d, \"explored\": %d, \"wall_ns\": %d, \"states_per_sec\": %.1f}%s\n"
        s.experiment s.protocol s.n s.mode s.domains s.explored s.wall_ns
        (states_per_sec s)
        (if i = List.length samples - 1 then "" else ","))
    samples;
  out "  ]\n}\n";
  close_out oc

let run_explore_suite () =
  Format.fprintf fmt "@.%s@.B2. Exploration: replay vs snapshot, 1/2/4 domains@.%s@."
    (String.make 78 '-') (String.make 78 '-');
  Format.fprintf fmt "%-14s %3s %-9s %7s | %8s %12s %12s@." "experiment" "n" "mode"
    "domains" "explored" "wall-ms" "states/sec";
  let cases =
    List.concat_map
      (fun (n, e, f) ->
        ((n, e, f), `Replay, 1)
        :: List.map (fun d -> ((n, e, f), `Snapshot, d)) [ 1; 2; 4 ])
      explore_configs
  in
  let samples =
    List.map
      (fun ((n, e, f), mode, domains) ->
        let s = time_explore ~n ~e ~f ~mode ~domains in
        Format.fprintf fmt "%-14s %3d %-9s %7d | %8d %12.1f %12.0f@." s.experiment s.n
          s.mode s.domains s.explored
          (float_of_int s.wall_ns /. 1e6)
          (states_per_sec s);
        s)
      cases
  in
  write_explore_json "BENCH_explore.json" samples;
  Format.fprintf fmt "(written to BENCH_explore.json)@."

(* -- Bechamel microbenchmarks ------------------------------------------ *)

let delta = 100

let bench_sync_fast_path protocol name =
  let run () =
    let proposals = Checker.Scenario.all_proposals_at_zero ~n:5 [ 0; 1; 2; 3; 4 ] in
    Checker.Scenario.run protocol ~n:5 ~e:2 ~f:2 ~delta
      ~net:(Checker.Scenario.Sync (`Favor 4)) ~proposals ~disable_timers:true
      ~until:(3 * delta) ()
  in
  Bechamel.Test.make ~name (Bechamel.Staged.stage (fun () -> ignore (run ())))

let bench_recovery_select =
  let replies =
    List.init 10 (fun i ->
        {
          Core.Recovery.sender = i;
          vbal = 0;
          value = (if i < 4 then Some 7 else if i < 7 then Some 3 else None);
          proposer = Some (100 + (i mod 2));
          decided = None;
        })
  in
  Bechamel.Test.make ~name:"recovery.select (10 replies)"
    (Bechamel.Staged.stage (fun () ->
         ignore (Core.Recovery.select ~n:13 ~e:3 ~f:3 ~initial:(Some 1) ~replies)))

let bench_witness =
  Bechamel.Test.make ~name:"witness.task_scenario n=6"
    (Bechamel.Staged.stage (fun () ->
         ignore (Lowerbound.Witness.task_scenario ~n:6 ~e:2 ~f:2 ())))

let bench_partial_sync_run =
  Bechamel.Test.make ~name:"rgs-task partial-sync run to decision (n=6)"
    (Bechamel.Staged.stage (fun () ->
         let proposals = Checker.Scenario.all_proposals_at_zero ~n:6 [ 5; 4; 3; 2; 1; 0 ] in
         ignore
           (Checker.Scenario.run Core.Rgs.task ~n:6 ~e:2 ~f:2 ~delta
              ~net:(Checker.Scenario.Partial { gst = 3 * delta; max_pre_gst = 2 * delta })
              ~proposals ~seed:1 ~until:(40 * delta) ())))

let bench_rng =
  let rng = Stdext.Rng.create ~seed:7 in
  Bechamel.Test.make ~name:"rng.bits64"
    (Bechamel.Staged.stage (fun () -> ignore (Stdext.Rng.bits64 rng)))

let bench_pqueue =
  Bechamel.Test.make ~name:"pqueue push+pop x100"
    (Bechamel.Staged.stage (fun () ->
         let q = Stdext.Pqueue.create () in
         for i = 0 to 99 do
           Stdext.Pqueue.push q ~priority:(i * 7 mod 31) i
         done;
         while not (Stdext.Pqueue.is_empty q) do
           ignore (Stdext.Pqueue.pop q)
         done))

let run_bechamel () =
  let open Bechamel in
  Format.fprintf fmt "@.%s@.B1. Microbenchmarks (Bechamel, OLS estimate per run)@.%s@."
    (String.make 78 '-') (String.make 78 '-');
  let tests =
    Test.make_grouped ~name:"twostep"
      [
        bench_rng;
        bench_pqueue;
        bench_recovery_select;
        bench_sync_fast_path Core.Rgs.task "rgs-task sync fast path (n=5)";
        bench_sync_fast_path Baselines.Fast_paxos.protocol "fast-paxos sync fast path (n=5)";
        bench_witness;
        bench_partial_sync_run;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
  in
  Format.fprintf fmt "%-55s | %15s | %6s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with Some (x :: _) -> x | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
      Format.fprintf fmt "%-55s | %15.1f | %6.4f@." name estimate r2)
    rows

(* -- dispatch ----------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: main.exe [--domains N] [t1|t2|t3|t4|f1|f2|f3|f4|f5|tables|figures|bechamel|explore|all]...";
  exit 1

let run_experiment ~domains = function
  | "t1" -> Experiments.t1_bounds_table fmt
  | "t2" -> Experiments.t2_twostep_verification ~domains fmt
  | "t3" -> Experiments.t3_tightness_witnesses ~domains fmt
  | "t4" -> Experiments.t4_recovery_audit ~domains fmt
  | "f1" -> Experiments.f1_fast_rate_vs_crashes ~domains fmt
  | "f2" -> Experiments.f2_latency_vs_conflict fmt
  | "f3" -> Experiments.f3_wan_latency fmt
  | "f4" -> Experiments.f4_smr_throughput fmt
  | "f5" -> Experiments.f5_epaxos_motivation fmt
  | "tables" ->
      Experiments.t1_bounds_table fmt;
      Experiments.t2_twostep_verification ~domains fmt;
      Experiments.t3_tightness_witnesses ~domains fmt;
      Experiments.t4_recovery_audit ~domains fmt
  | "figures" ->
      Experiments.f1_fast_rate_vs_crashes ~domains fmt;
      Experiments.f2_latency_vs_conflict fmt;
      Experiments.f3_wan_latency fmt;
      Experiments.f4_smr_throughput fmt;
      Experiments.f5_epaxos_motivation fmt
  | "bechamel" -> run_bechamel ()
  | "explore" -> run_explore_suite ()
  | "all" ->
      Experiments.all ~domains fmt;
      run_bechamel ();
      run_explore_suite ()
  | arg ->
      Printf.eprintf "unknown experiment %S\n" arg;
      usage ()

(* Extract a leading/interspersed [--domains N] flag; everything else is an
   experiment name. *)
let rec parse_args ~domains acc = function
  | [] -> (domains, List.rev acc)
  | "--domains" :: value :: rest -> begin
      match int_of_string_opt value with
      | Some d when d >= 1 -> parse_args ~domains:d acc rest
      | _ ->
          Printf.eprintf "--domains expects a positive integer, got %S\n" value;
          usage ()
    end
  | "--domains" :: [] ->
      Printf.eprintf "--domains expects a value\n";
      usage ()
  | arg :: rest -> parse_args ~domains (arg :: acc) rest

let () =
  let domains, args = parse_args ~domains:1 [] (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [] -> run_experiment ~domains "all"
  | args -> List.iter (run_experiment ~domains) args
