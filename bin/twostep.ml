(* Command-line interface to the library: run scenarios, verify the
   e-two-step definitions, print the bound tables, and reproduce the
   tightness witnesses without writing any OCaml. *)

open Cmdliner

let protocols =
  [
    ("rgs-task", Core.Rgs.task);
    ("rgs-object", Core.Rgs.obj);
    ("paxos", Baselines.Paxos.protocol);
    ("fast-paxos", Baselines.Fast_paxos.protocol);
    ("epaxos", Epaxos.protocol);
  ]

let protocol_conv =
  let parse s =
    match List.assoc_opt s protocols with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown protocol %S (expected %s)" s
                (String.concat ", " (List.map fst protocols))))
  in
  let print fmt p = Format.pp_print_string fmt (Proto.Protocol.name p) in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv Core.Rgs.task
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol: rgs-task, rgs-object, paxos, fast-paxos or epaxos.")

let e_arg = Arg.(value & opt int 2 & info [ "e" ] ~docv:"E" ~doc:"Fast-path crash threshold.")

let f_arg = Arg.(value & opt int 2 & info [ "f" ] ~docv:"F" ~doc:"Resilience threshold.")

let n_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N" ~doc:"Number of processes (defaults to the protocol's bound).")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel sweep grids (T2-T4, F1) and the explorer. \
           The output is identical for any N; 1 means fully sequential, and counts \
           above the hardware's parallelism are clamped.")

let delta = 100

(* -- dedup plumbing ------------------------------------------------------ *)

let dedup_arg =
  Arg.(
    value
    & opt (enum [ ("off", `Off); ("exact", `Exact); ("symmetry", `Symmetry) ]) `Exact
    & info [ "dedup" ] ~docv:"MODE"
        ~doc:
          "State deduplication: $(b,off), $(b,exact) (the default) or $(b,symmetry). \
           The explorer prunes subtrees rooted at already-visited engine states; the \
           faults and report sweeps count distinct terminal states. $(b,symmetry) \
           additionally canonicalises non-distinguished process ids before hashing.")

let explore_dedup = function
  | `Off -> Checker.Explore.Off
  | `Exact -> Checker.Explore.Exact
  | `Symmetry -> Checker.Explore.Symmetry

let dedup_name = function `Off -> "off" | `Exact -> "exact" | `Symmetry -> "symmetry"

(* Terminal-state dedup for seed/target sweeps: collect each run's final
   engine fingerprint in a Stateset and summarise distinct-vs-repeated end
   states. Returns the [?final_fingerprint] argument for {!Scenario.run}
   and a printer for the summary line. *)
let final_dedup dedup =
  match dedup with
  | `Off -> (None, fun _fmt -> ())
  | (`Exact | `Symmetry) as d ->
      let set = Stdext.Stateset.create () in
      let runs = ref 0 and distinct = ref 0 in
      let record fp =
        incr runs;
        if Stdext.Stateset.add set fp then incr distinct
      in
      ( Some (d = `Symmetry, record),
        fun fmt ->
          Format.fprintf fmt "end states (%s dedup): %d distinct over %d runs, %d hits@."
            (dedup_name d) !distinct !runs (!runs - !distinct) )

(* -- metrics plumbing --------------------------------------------------- *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the command's telemetry registry to $(docv) as JSONL (one \
           {\"metric\", \"type\", ...} object per line; see Stdext.Metrics.dump_jsonl). \
           Without this flag metric updates are compiled to inert no-ops.")

(* An enabled registry only when the caller asked for the dump: the
   disabled registry is the zero-overhead path the bench suite measures. *)
let with_metrics out k =
  let registry =
    match out with None -> Stdext.Metrics.disabled | Some _ -> Stdext.Metrics.create ()
  in
  let r = k registry in
  Option.iter
    (fun path ->
      let oc = open_out path in
      let fmt = Format.formatter_of_out_channel oc in
      Stdext.Metrics.dump_jsonl fmt registry;
      Format.pp_print_flush fmt ();
      close_out oc)
    out;
  r

(* -- bounds ------------------------------------------------------------ *)

let bounds_cmd =
  let run () = Experiments.t1_bounds_table Format.std_formatter in
  Cmd.v (Cmd.info "bounds" ~doc:"Print the bounds table (Theorems 5 & 6 vs Lamport).")
    Term.(const run $ const ())

(* -- run ---------------------------------------------------------------- *)

let pairs_conv ~what =
  (* "0:5,3:7" -> [(0,5); (3,7)] *)
  let parse s =
    if s = "" then Ok []
    else
      try
        Ok
          (String.split_on_char ',' s
          |> List.map (fun item ->
                 match String.split_on_char ':' item with
                 | [ a; b ] -> (int_of_string a, int_of_string b)
                 | _ -> failwith "syntax"))
      with _ -> Error (`Msg (Printf.sprintf "bad %s syntax (want a:b,c:d)" what))
  in
  let print fmt l =
    Format.pp_print_string fmt
      (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) l))
  in
  Arg.conv (parse, print)

let run_cmd =
  let proposals_arg =
    Arg.(
      value
      & opt (pairs_conv ~what:"proposals") []
      & info [ "proposals" ] ~docv:"P:V,..."
          ~doc:"Proposals as pid:value pairs (default: every process proposes its pid).")
  in
  let crashes_arg =
    Arg.(
      value
      & opt (pairs_conv ~what:"crashes") []
      & info [ "crashes" ] ~docv:"T:P,..." ~doc:"Crash schedule as time:pid pairs.")
  in
  let net_arg =
    Arg.(
      value
      & opt (enum [ ("sync", `Sync); ("partial", `Partial); ("wan", `Wan) ]) `Partial
      & info [ "net" ] ~docv:"NET" ~doc:"Network model: sync, partial or wan.")
  in
  let until_arg =
    Arg.(value & opt int (60 * delta) & info [ "until" ] ~docv:"T" ~doc:"Horizon (ticks).")
  in
  let run protocol n e f proposals crashes net until seed =
    let (module P : Proto.Protocol.S) = protocol in
    let n = Option.value ~default:(P.min_n ~e ~f) n in
    let proposals =
      match proposals with
      | [] -> Checker.Scenario.all_proposals_at_zero ~n (List.init n Fun.id)
      | l -> List.map (fun (p, v) -> (0, p, v)) l
    in
    let crashes = List.map (fun (t, p) -> (t, p)) crashes in
    let net =
      match net with
      | `Sync -> Checker.Scenario.Sync `Arrival
      | `Partial -> Checker.Scenario.Partial { gst = 5 * delta; max_pre_gst = 3 * delta }
      | `Wan ->
          Checker.Scenario.Wan
            { latency = Workload.Topology.latency_fn Workload.Topology.planet5; jitter = 3 }
    in
    let o =
      Checker.Scenario.run protocol ~n ~e ~f ~delta ~net ~proposals ~crashes ~seed ~until ()
    in
    Format.printf "protocol: %s, n=%d, e=%d, f=%d@." P.name n e f;
    List.iter
      (fun (t, p, v) -> Format.printf "  t=%-6d %a decides %a@." t Dsim.Pid.pp p Proto.Value.pp v)
      o.decisions;
    Format.printf "messages: %d@." o.messages;
    Format.printf "verdict: %a@." Checker.Safety.pp_verdict (Checker.Safety.check o)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one consensus scenario and print decisions and verdict.")
    Term.(
      const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ proposals_arg $ crashes_arg
      $ net_arg $ until_arg $ seed_arg)

(* -- check -------------------------------------------------------------- *)

let check_cmd =
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("task", `Task); ("object", `Object) ]) `Task
      & info [ "kind" ] ~docv:"KIND" ~doc:"Definition to check: task (Def 4) or object (Def A.1).")
  in
  let run protocol n e f kind =
    let (module P : Proto.Protocol.S) = protocol in
    let n = Option.value ~default:(P.min_n ~e ~f) n in
    let r =
      match kind with
      | `Task -> Checker.Twostep.check_task protocol ~n ~e ~f ~delta ~values:[ 0; 1 ] ()
      | `Object -> Checker.Twostep.check_object protocol ~n ~e ~f ~delta ~values:[ 0; 1 ] ()
    in
    Format.printf "%s at n=%d e=%d f=%d: %a@." P.name n e f Checker.Twostep.pp_report r;
    if not (Checker.Twostep.ok r) then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Verify the e-two-step property over all E and configurations.")
    Term.(const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ kind_arg)

(* -- witness ------------------------------------------------------------ *)

let witness_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("task", `Task); ("object", `Object) ]) `Task
      & info [ "mode" ] ~docv:"MODE" ~doc:"Which theorem's witness: task (Thm 5) or object (Thm 6).")
  in
  let run mode n e f =
    let bound =
      Proto.Bounds.required
        (match mode with `Task -> Proto.Bounds.Task | `Object -> Proto.Bounds.Object)
        ~e ~f
    in
    let n = Option.value ~default:(bound - 1) n in
    let r =
      match mode with
      | `Task -> Lowerbound.Witness.task_scenario ~n ~e ~f ()
      | `Object -> Lowerbound.Witness.object_scenario ~n ~e ~f ()
    in
    Format.printf "%a@." Lowerbound.Witness.pp_result r
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Replay the adversarial tightness choreography (default: one below the bound).")
    Term.(const run $ mode_arg $ n_arg $ e_arg $ f_arg)

(* -- audit --------------------------------------------------------------- *)

let audit_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("task", Core.Rgs.Task); ("object", Core.Rgs.Object) ]) Core.Rgs.Task
      & info [ "mode" ] ~docv:"MODE" ~doc:"Recovery rule variant to audit.")
  in
  let run mode n e f =
    let bound =
      Proto.Bounds.required
        (match mode with Core.Rgs.Task -> Proto.Bounds.Task | Core.Rgs.Object -> Proto.Bounds.Object)
        ~e ~f
    in
    let n = Option.value ~default:bound n in
    let s = Lowerbound.Audit.check ~mode ~n ~e ~f in
    Format.printf "%a mode at n=%d e=%d f=%d: %a@." Core.Rgs.pp_mode mode n e f
      Lowerbound.Audit.pp_stats s;
    if s.Lowerbound.Audit.failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Exhaustively audit the recovery rule (Lemma 7 / Lemma C.2).")
    Term.(const run $ mode_arg $ n_arg $ e_arg $ f_arg)

(* -- explore ------------------------------------------------------------- *)

let explore_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("snapshot", `Snapshot); ("replay", `Replay) ]) `Snapshot
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "DFS strategy (explorer default: snapshot). $(b,snapshot) extends a cloned \
             engine per branch; $(b,replay) re-executes each path from time 0 — same \
             runs, same order, different time/space trade-off.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int 20_000
      & info [ "budget" ] ~docv:"RUNS"
          ~doc:
            "Maximum complete runs to evaluate (explorer default: 20000). The result \
             reports whether the cut truncated the search.")
  in
  let rounds_arg =
    Arg.(
      value
      & opt int 2
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Synchronous round horizon to branch delivery orders over.")
  in
  let crashes_arg =
    Arg.(
      value
      & opt (pairs_conv ~what:"crashes") []
      & info [ "crashes" ] ~docv:"T:P,..." ~doc:"Crash schedule as time:pid pairs.")
  in
  let por_arg =
    Arg.(
      value
      & opt (enum [ ("off", `Off); ("sleep", `Sleep) ]) `Off
      & info [ "por" ] ~docv:"MODE"
          ~doc:
            "Partial-order reduction: $(b,off) (the default) or $(b,sleep). Sleep-set \
             reduction prunes commuting delivery orders before expansion — same \
             verdict, a fraction of the schedules.")
  in
  let swarm_arg =
    Arg.(
      value
      & opt int 0
      & info [ "swarm" ] ~docv:"K"
          ~doc:
            "Run $(docv) seeded random walkers over the schedule tree instead of the \
             exhaustive DFS (0, the default, disables). For configurations beyond \
             exhaustive reach (n >= 8): walkers share the visited set and the run \
             budget; coverage is reported as distinct states. A violation found is a \
             genuine witness; a clean sweep is evidence, not proof.")
  in
  let run protocol n e f rounds budget mode domains dedup por swarm seed crashes
      metrics_out =
    let (module P : Proto.Protocol.S) = protocol in
    let n = Option.value ~default:(P.min_n ~e ~f) n in
    let proposals = Checker.Scenario.all_proposals_at_zero ~n (List.init n Fun.id) in
    let por = match por with `Off -> Checker.Explore.No_por | `Sleep -> Checker.Explore.Sleep in
    let por_name = function Checker.Explore.No_por -> "off" | Checker.Explore.Sleep -> "sleep" in
    if swarm > 0 then begin
      let t0 = Unix.gettimeofday () in
      let r, sreport =
        with_metrics metrics_out (fun registry ->
            Checker.Explore.swarm_report protocol ~n ~e ~f ~delta ~proposals ~crashes
              ~rounds ~budget ~walkers:swarm ~seed
              ~domains:(if domains = 1 then swarm else domains)
              ~por ~metrics:registry
              ~check:(fun o -> Checker.Safety.safe o)
              ())
      in
      let wall_s = Unix.gettimeofday () -. t0 in
      Format.printf "%s n=%d e=%d f=%d rounds=%d (swarm, budget %d, walkers %d, seed %d, por %s)@."
        P.name n e f rounds budget swarm seed (por_name por);
      Format.printf "%a@." Checker.Explore.Swarm_report.pp sreport;
      Format.printf "distinct states/sec: %.0f (%.2fs)@."
        (Checker.Explore.Swarm_report.distinct_states_per_sec sreport ~wall_s)
        wall_s;
      (match r.Checker.Explore.first_violation with
      | None -> Format.printf "violations: none@."
      | Some o ->
          Format.printf "violations: %d, first: %a@." r.Checker.Explore.violations
            Checker.Safety.pp_verdict (Checker.Safety.check o));
      if r.Checker.Explore.violations > 0 then exit 1
    end
    else begin
      let r, report =
        with_metrics metrics_out (fun registry ->
            let r, report =
              Checker.Explore.synchronous_report protocol ~n ~e ~f ~delta ~proposals
                ~crashes ~rounds ~budget ~mode ~domains ~dedup:(explore_dedup dedup)
                ~por ~metrics:registry
                ~check:(fun o -> Checker.Safety.safe o)
                ()
            in
            if Stdext.Metrics.is_enabled registry then
              Checker.Explore.Run_report.record registry report;
            (r, report))
      in
      Format.printf
        "%s n=%d e=%d f=%d rounds=%d (%s, budget %d, domains %d, dedup %s, por %s)@."
        P.name n e f rounds
        (match mode with `Snapshot -> "snapshot" | `Replay -> "replay")
        budget domains (dedup_name dedup) (por_name por);
      Format.printf "explored: %d schedules%s@." r.Checker.Explore.explored
        (if r.Checker.Explore.truncated then " (truncated)" else " (exhaustive)");
      Format.printf "%a@." Checker.Explore.Run_report.pp report;
      (match r.Checker.Explore.first_violation with
      | None -> Format.printf "violations: none@."
      | Some o ->
          Format.printf "violations: %d, first: %a@." r.Checker.Explore.violations
            Checker.Safety.pp_verdict (Checker.Safety.check o));
      if r.Checker.Explore.violations > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively explore synchronous delivery schedules and check safety on \
          every run; $(b,--por sleep) prunes commuting orders, $(b,--swarm K) switches \
          to seeded random walkers for sizes beyond exhaustive reach.")
    Term.(
      const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ rounds_arg $ budget_arg
      $ mode_arg $ domains_arg $ dedup_arg $ por_arg $ swarm_arg $ seed_arg
      $ crashes_arg $ metrics_out_arg)

(* -- faults -------------------------------------------------------------- *)

let faults_cmd =
  let drop_rate_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Per-message drop probability in [0,1] (applied within --max-drops).")
  in
  let dup_rate_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "dup-rate" ] ~docv:"P"
          ~doc:"Per-message duplication probability in [0,1] (within --max-dups).")
  in
  let max_drops_arg =
    Arg.(
      value & opt int 8
      & info [ "max-drops" ] ~docv:"K" ~doc:"Budget of dropped messages per run.")
  in
  let max_dups_arg =
    Arg.(
      value & opt int 8
      & info [ "max-dups" ] ~docv:"K" ~doc:"Budget of duplicated messages per run.")
  in
  let max_extra_delay_arg =
    Arg.(
      value
      & opt int (2 * delta)
      & info [ "max-extra-delay" ] ~docv:"T"
          ~doc:"A duplicate's copy is re-sent up to this many ticks later.")
  in
  let crashes_arg =
    Arg.(
      value
      & opt (pairs_conv ~what:"crashes") []
      & info [ "crashes" ] ~docv:"T:P,..."
          ~doc:"Crash schedule as time:pid pairs (composes with the fault plan).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"COUNT"
          ~doc:"Number of consecutive seeds to sweep, starting at --seed.")
  in
  let until_arg =
    Arg.(value & opt int (60 * delta) & info [ "until" ] ~docv:"T" ~doc:"Horizon (ticks).")
  in
  let run protocol n e f drop_rate dup_rate max_drops max_dups max_extra_delay crashes
      seeds seed until dedup metrics_out =
    let (module P : Proto.Protocol.S) = protocol in
    let n = Option.value ~default:(P.min_n ~e ~f) n in
    let proposals = Checker.Scenario.all_proposals_at_zero ~n (List.init n Fun.id) in
    let faults =
      Dsim.Network.Fault.random ~drop_rate ~dup_rate ~max_drops ~max_dups
        ~max_extra_delay ()
    in
    Format.printf
      "%s n=%d e=%d f=%d: drop-rate %.2f (<=%d), dup-rate %.2f (<=%d), %d seed%s@." P.name
      n e f drop_rate max_drops dup_rate max_dups seeds
      (if seeds = 1 then "" else "s");
    let violations = ref 0 in
    let final_fingerprint, pp_dedup = final_dedup dedup in
    with_metrics metrics_out (fun registry ->
        (* One registry across the sweep: the engine.* counters aggregate
           over all seeds. *)
        for s = seed to seed + seeds - 1 do
          let o =
            Checker.Scenario.run protocol ~n ~e ~f ~delta
              ~net:(Checker.Scenario.Partial { gst = 5 * delta; max_pre_gst = 3 * delta })
              ~proposals ~crashes ~seed:s ~faults ~metrics:registry ?final_fingerprint
              ~until ()
          in
          let verdict = Checker.Safety.check o in
          if not (Checker.Safety.safe o) then incr violations;
          Format.printf "  seed %-6d dropped %-3d duplicated %-3d decided %d/%d  %a@." s
            o.dropped o.duplicated
            (List.length o.decisions)
            n Checker.Safety.pp_verdict verdict
        done);
    pp_dedup Format.std_formatter;
    if !violations > 0 then begin
      Format.printf "%d of %d seeds violated safety@." !violations seeds;
      exit 1
    end
    else Format.printf "all %d seeds safe@." seeds
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Sweep seeded loss/duplication/crash fault plans over one protocol and check \
          safety on every run.")
    Term.(
      const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ drop_rate_arg $ dup_rate_arg
      $ max_drops_arg $ max_dups_arg $ max_extra_delay_arg $ crashes_arg $ seeds_arg
      $ seed_arg $ until_arg $ dedup_arg $ metrics_out_arg)

(* -- report -------------------------------------------------------------- *)

let report_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object per protocol (Checker.Report.to_json) instead of text.")
  in
  let run n e f json dedup metrics_out =
    with_metrics metrics_out (fun registry ->
        List.iter
          (fun (_, protocol) ->
            (* Per-protocol set: the interesting number is how many distinct
               end states the n favored runs of one protocol reach. *)
            let final_fingerprint, pp_dedup = final_dedup dedup in
            let r =
              Checker.Report.conflict_free protocol ?n ~e ~f ~delta ~metrics:registry
                ?final_fingerprint ()
            in
            if json then print_endline (Stdext.Json.to_string (Checker.Report.to_json r))
            else begin
              Format.printf "%a@." Checker.Report.pp r;
              pp_dedup Format.std_formatter
            end)
          protocols)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Per-protocol fast-path telemetry: run the conflict-free synchronous scenario \
          at each protocol's bound and print the fast-path rate and decision-latency \
          histogram — the two-step claim as numbers.")
    Term.(const run $ n_arg $ e_arg $ f_arg $ json_arg $ dedup_arg $ metrics_out_arg)

(* -- smr / lin shared fleet arguments ------------------------------------ *)

let topology_conv =
  let parse s =
    match
      List.find_opt (fun t -> Workload.Topology.name t = s) Workload.Topology.presets
    with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown topology %S (expected %s)" s
                (String.concat ", "
                   (List.map Workload.Topology.name Workload.Topology.presets))))
  in
  let print fmt t = Format.pp_print_string fmt (Workload.Topology.name t) in
  Arg.conv (parse, print)

let topology_arg =
  Arg.(
    value
    & opt topology_conv Workload.Topology.planet5
    & info [ "topology" ] ~docv:"TOPOLOGY"
        ~doc:"WAN preset: local-cluster, three-az, planet5 or planet9.")

let clients_arg =
  Arg.(value & opt int 120 & info [ "clients" ] ~docv:"N" ~doc:"Number of simulated clients.")

let rate_arg =
  Arg.(
    value
    & opt float 4.0
    & info [ "rate" ] ~docv:"CMDS"
        ~doc:"Open-loop arrival rate per client (commands/second).")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("open", `Open); ("closed", `Closed) ]) `Open
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "$(b,open): Poisson arrivals at $(b,--rate) regardless of completions; \
           $(b,closed): one outstanding command per client, resubmitting \
           $(b,--think) ms after each completion.")

let think_arg =
  Arg.(
    value & opt int 0
    & info [ "think" ] ~docv:"MS" ~doc:"Closed-loop think time between commands.")

let pipeline_arg =
  Arg.(
    value & opt int 16
    & info [ "pipeline" ] ~docv:"DEPTH" ~doc:"In-flight consensus slots per proxy.")

let batch_max_arg =
  Arg.(
    value & opt int 64
    & info [ "batch-max" ] ~docv:"K" ~doc:"Max commands packed into one proposal.")

let keys_arg =
  Arg.(value & opt int 64 & info [ "keys" ] ~docv:"K" ~doc:"Keyspace size.")

let hot_rate_arg =
  Arg.(
    value
    & opt float 0.1
    & info [ "hot-rate" ] ~docv:"P" ~doc:"Probability a command hits the hot key.")

let horizon_arg =
  Arg.(
    value & opt int 10_000
    & info [ "horizon" ] ~docv:"MS" ~doc:"Virtual milliseconds to simulate.")

let jitter_arg =
  Arg.(
    value & opt int 0
    & info [ "jitter" ] ~docv:"MS" ~doc:"Random extra one-way delay (uniform 0..MS).")

(* -- smr ----------------------------------------------------------------- *)

let smr_cmd =
  let run protocol n e f topology clients rate mode think pipeline batch_max keys
      hot_rate horizon jitter seed metrics_out =
    let (module P : Proto.Protocol.S) = protocol in
    let n = match n with Some n -> n | None -> P.min_n ~e ~f in
    let arrival =
      match mode with
      | `Open -> Workload.Fleet.Open { rate_per_client = rate }
      | `Closed -> Workload.Fleet.Closed { think }
    in
    let cfg : Workload.Fleet.config =
      { clients; arrival; keys; hot_rate; read_rate = 0.0; horizon; tick = 50 }
    in
    let r =
      with_metrics metrics_out (fun registry ->
          Workload.Fleet.run ~protocol ~e ~f ~n ~topology ~jitter ~pipeline ~batch_max
            ~seed ~metrics:registry cfg)
    in
    let open Format in
    printf "SMR deployment: %s n=%d (e=%d f=%d) on %s, %d clients (%s)@." P.name n e f
      (Workload.Topology.name topology)
      clients
      (match mode with
      | `Open -> Printf.sprintf "open loop, %.2f cmd/s each" rate
      | `Closed -> Printf.sprintf "closed loop, think %d ms" think);
    printf "pipeline %d, batch-max %d, horizon %d ms, seed %d@.@." pipeline batch_max
      horizon seed;
    printf "submitted    %8d commands@." r.submitted;
    printf "completed    %8d (%.1f commits/sec)@." r.completed
      (Workload.Fleet.commits_per_sec r);
    (* A run can complete nothing (e.g. a tiny horizon): percentiles of an
       empty sample set are undefined, not zero. *)
    (match (Stdext.Stats.p50_opt r.latencies, Stdext.Stats.p99_opt r.latencies) with
    | Some p50, Some p99 ->
        printf "latency      p50 %d ms, p99 %d ms, mean %.1f ms (submit->apply at proxy)@."
          p50 p99 (Stdext.Stats.mean r.latencies)
    | _ -> printf "latency      n/a (no completions)@.");
    printf "slots        %d applied, mean batch %.2f, max batch %d@." r.slots_applied
      r.mean_batch r.max_batch;
    printf "converged    %b@." r.converged;
    if not r.converged then exit 1
  in
  Cmd.v
    (Cmd.info "smr"
       ~doc:
         "Drive the replicated KV store with a simulated client fleet over a WAN \
          topology and report commits/sec and client-visible p50/p99 latency at the \
          proxy (the paper's §1 cost model).")
    Term.(
      const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ topology_arg $ clients_arg
      $ rate_arg $ mode_arg $ think_arg $ pipeline_arg $ batch_max_arg $ keys_arg
      $ hot_rate_arg $ horizon_arg $ jitter_arg $ seed_arg $ metrics_out_arg)

(* -- lin ------------------------------------------------------------------ *)

let lin_cmd =
  let read_rate_arg =
    Arg.(
      value
      & opt float 0.3
      & info [ "read-rate" ] ~docv:"P" ~doc:"Probability a command is a read (in [0,1]).")
  in
  let drop_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Per-message drop probability in [0,1] (applied within --max-drops).")
  in
  let dup_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "dup-rate" ] ~docv:"P"
          ~doc:"Per-message duplication probability in [0,1] (within --max-dups).")
  in
  let max_drops_arg =
    Arg.(
      value & opt int 64
      & info [ "max-drops" ] ~docv:"K" ~doc:"Budget of dropped messages per run.")
  in
  let max_dups_arg =
    Arg.(
      value & opt int 64
      & info [ "max-dups" ] ~docv:"K" ~doc:"Budget of duplicated messages per run.")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "mutate-stale-reads" ] ~docv:"PID"
          ~doc:
            "Deliberately make replica $(docv) serve every read from the key's \
             previous value. The run must then be flagged non-linearizable — this is \
             the checker's mutation test.")
  in
  let history_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "history-out" ] ~docv:"FILE"
          ~doc:
            "Write the client history to $(docv): streaming JSON lines when the \
             name ends in .jsonl, run-length binary otherwise.")
  in
  let witness_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "When the check fails, write the minimal witness window's operations to \
             $(docv) (same format rule as --history-out).")
  in
  let witness_chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-chrome" ] ~docv:"FILE"
          ~doc:
            "When the check fails, additionally render the witness window as a \
             Chrome trace_event timeline (one thread per client) to $(docv) — \
             open in Perfetto or about://tracing to see the overlap the checker \
             could not linearize.")
  in
  let monolithic_arg =
    Arg.(
      value & flag
      & info [ "monolithic" ]
          ~doc:"Search the whole history as one object instead of per key.")
  in
  let write_history path history =
    if Filename.check_suffix path ".jsonl" then begin
      let oc = open_out path in
      Checker.History.to_jsonl oc history;
      close_out oc
    end
    else Checker.History.to_file path history
  in
  let write_chrome path events =
    let oc = open_out path in
    let fmt = Format.formatter_of_out_channel oc in
    Checker.History.to_chrome fmt events;
    Format.pp_print_flush fmt ();
    close_out oc
  in
  let run protocol n e f topology clients rate mode think pipeline batch_max keys
      hot_rate read_rate horizon jitter seed drop_rate dup_rate max_drops max_dups
      mutate history_out witness_out witness_chrome monolithic =
    let (module P : Proto.Protocol.S) = protocol in
    let n = match n with Some n -> n | None -> P.min_n ~e ~f in
    let arrival =
      match mode with
      | `Open -> Workload.Fleet.Open { rate_per_client = rate }
      | `Closed -> Workload.Fleet.Closed { think }
    in
    let cfg : Workload.Fleet.config =
      { clients; arrival; keys; hot_rate; read_rate; horizon; tick = 50 }
    in
    let faults =
      if drop_rate > 0.0 || dup_rate > 0.0 then
        Some
          (Dsim.Network.Fault.random ~drop_rate ~dup_rate ~max_drops ~max_dups
             ~max_extra_delay:(2 * delta) ())
      else None
    in
    let mutation = Option.map (fun pid -> Smr.Replica.Stale_reads pid) mutate in
    let r =
      Workload.Fleet.run ~protocol ~e ~f ~n ~topology ~jitter ~pipeline ~batch_max ~seed
        ?faults ?mutation cfg
    in
    Option.iter (fun path -> write_history path r.history) history_out;
    let open Format in
    printf "SMR deployment: %s n=%d (e=%d f=%d) on %s, %d clients, read-rate %.2f@."
      P.name n e f
      (Workload.Topology.name topology)
      clients read_rate;
    (match mutation with
    | Some (Smr.Replica.Stale_reads pid) -> printf "mutation     stale reads at replica %d@." pid
    | None -> ());
    printf "history      %d ops (%d complete, %d in flight at horizon)@."
      (List.length r.history) r.completed
      (r.submitted - r.completed);
    let t0 = Sys.time () in
    let mode = if monolithic then `Monolithic else `Per_key in
    let outcome = Checker.Linearizability.check_history ~mode r.history in
    let elapsed_ms = (Sys.time () -. t0) *. 1000.0 in
    printf "check        %s: %d keys, %d states explored, %.1f ms@."
      (match mode with `Per_key -> "per-key" | `Monolithic -> "monolithic")
      outcome.stats.keys outcome.stats.states elapsed_ms;
    if outcome.ok then printf "linearizable yes@."
    else begin
      printf "linearizable NO: %s@." (Option.value ~default:"?" outcome.reason);
      Option.iter
        (fun (w : Checker.Linearizability.witness) ->
          printf "%a@." Checker.Linearizability.pp_witness w;
          Option.iter (fun path -> write_history path w.events) witness_out;
          Option.iter (fun path -> write_chrome path w.events) witness_chrome)
        outcome.witness;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "lin"
       ~doc:
         "Run a mixed read/write client fleet against the replicated KV store \
          (optionally under message loss/duplication or a deliberately buggy \
          replica), record the client-observed history, and decide its \
          linearizability with the WGL search. Exits non-zero on a \
          non-linearizable history.")
    Term.(
      const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ topology_arg $ clients_arg
      $ rate_arg $ mode_arg $ think_arg $ pipeline_arg $ batch_max_arg $ keys_arg
      $ hot_rate_arg $ read_rate_arg $ horizon_arg $ jitter_arg $ seed_arg
      $ drop_rate_arg $ dup_rate_arg $ max_drops_arg $ max_dups_arg $ mutate_arg
      $ history_out_arg $ witness_out_arg $ witness_chrome_arg $ monolithic_arg)

(* -- spans ---------------------------------------------------------------- *)

let spans_cmd =
  let chrome_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's causal span store as Chrome trace_event JSON — one \
             thread per replica, flow arrows along every causal parent link. Open \
             in Perfetto or about://tracing.")
  in
  let spans_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~docv:"FILE"
          ~doc:
            "Write the raw span table to $(docv): streaming JSON lines when the \
             name ends in .jsonl, run-length binary otherwise.")
  in
  let assert_fast_arg =
    Arg.(
      value & flag
      & info [ "assert-fast" ]
          ~doc:
            "Exit non-zero unless at least one command committed and every one \
             took the fast path (measured delay_steps <= 2). Meaningful on \
             conflict-free runs of the two-step protocols — the CI cross-check \
             that the measured critical paths match the paper's table.")
  in
  let run protocol n e f topology clients rate mode think pipeline batch_max keys
      hot_rate horizon jitter seed chrome_out spans_out assert_fast =
    let (module P : Proto.Protocol.S) = protocol in
    let n = match n with Some n -> n | None -> P.min_n ~e ~f in
    let arrival =
      match mode with
      | `Open -> Workload.Fleet.Open { rate_per_client = rate }
      | `Closed -> Workload.Fleet.Closed { think }
    in
    let cfg : Workload.Fleet.config =
      { clients; arrival; keys; hot_rate; read_rate = 0.0; horizon; tick = 50 }
    in
    let causality = Dsim.Causality.create () in
    let r =
      Workload.Fleet.run ~protocol ~e ~f ~n ~topology ~jitter ~pipeline ~batch_max
        ~seed ~causality cfg
    in
    let paths = Smr.Spans.command_paths causality in
    let attr = Smr.Spans.attribution paths in
    let open Format in
    printf "SMR deployment: %s n=%d (e=%d f=%d) on %s, %d clients (%s)@." P.name n e f
      (Workload.Topology.name topology)
      clients
      (match mode with
      | `Open -> Printf.sprintf "open loop, %.2f cmd/s each" rate
      | `Closed -> Printf.sprintf "closed loop, think %d ms" think);
    printf "spans        %d recorded, %d command paths (%d completed)@."
      (Dsim.Causality.length causality)
      (List.length paths) r.completed;
    printf "attribution  %a@." Smr.Spans.pp_attribution attr;
    (match Smr.Spans.predicate P.name with
    | Some p -> printf "theory       %s@." (Smr.Spans.predicate_name p)
    | None -> ());
    Option.iter
      (fun path ->
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        Dsim.Causality.to_chrome fmt causality;
        Format.pp_print_flush fmt ();
        close_out oc)
      chrome_out;
    Option.iter
      (fun path ->
        let table = Dsim.Causality.to_table causality in
        if Filename.check_suffix path ".jsonl" then begin
          let oc = open_out path in
          Stdext.Rle.iter_jsonl table (fun line ->
              output_string oc line;
              output_char oc '\n');
          close_out oc
        end
        else Stdext.Rle.to_file path table)
      spans_out;
    if not r.converged then begin
      printf "converged    false@.";
      exit 1
    end;
    if assert_fast then
      if attr.Smr.Spans.commits = 0 then begin
        printf "assert-fast  FAILED: no commits@.";
        exit 1
      end
      else if attr.Smr.Spans.two_step < attr.Smr.Spans.commits then begin
        printf "assert-fast  FAILED: %d of %d commits exceeded two message delays@."
          (attr.Smr.Spans.commits - attr.Smr.Spans.two_step)
          attr.Smr.Spans.commits;
        exit 1
      end
      else printf "assert-fast  ok: %d/%d commits at delay_steps <= 2@."
             attr.Smr.Spans.two_step attr.Smr.Spans.commits
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Run the client fleet with causal span tracing attached, reconstruct every \
          committed command's critical path (submit -> proposal -> quorum -> apply), \
          and report the measured delay_steps histogram and fast/slow-path \
          attribution against the protocol's theoretical two-step predicate. \
          Optionally export the span store as Chrome trace JSON or a columnar \
          table.")
    Term.(
      const run $ protocol_arg $ n_arg $ e_arg $ f_arg $ topology_arg $ clients_arg
      $ rate_arg $ mode_arg $ think_arg $ pipeline_arg $ batch_max_arg $ keys_arg
      $ hot_rate_arg $ horizon_arg $ jitter_arg $ seed_arg $ chrome_out_arg
      $ spans_out_arg $ assert_fast_arg)

(* -- experiments --------------------------------------------------------- *)

let experiments_cmd =
  let which_arg =
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc:"t1..t4, f1..f4 or all.")
  in
  let run domains which =
    let fmt = Format.std_formatter in
    List.iter
      (function
        | "t1" -> Experiments.t1_bounds_table fmt
        | "t2" -> Experiments.t2_twostep_verification ~domains fmt
        | "t3" -> Experiments.t3_tightness_witnesses ~domains fmt
        | "t4" -> Experiments.t4_recovery_audit ~domains fmt
        | "f1" -> Experiments.f1_fast_rate_vs_crashes ~domains fmt
        | "f2" -> Experiments.f2_latency_vs_conflict fmt
        | "f3" -> Experiments.f3_wan_latency fmt
        | "f4" -> Experiments.f4_smr_throughput fmt
        | "f5" -> Experiments.f5_epaxos_motivation fmt
        | "all" -> Experiments.all ~domains fmt
        | other -> Format.printf "unknown experiment %S@." other)
      which
  in
  Cmd.v (Cmd.info "experiments" ~doc:"Run the evaluation experiments (see EXPERIMENTS.md).")
    Term.(const run $ domains_arg $ which_arg)

let () =
  let doc = "Two-step consensus: protocols, checkers and lower-bound witnesses." in
  let info = Cmd.info "twostep" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            bounds_cmd;
            run_cmd;
            check_cmd;
            witness_cmd;
            audit_cmd;
            explore_cmd;
            faults_cmd;
            report_cmd;
            smr_cmd;
            lin_cmd;
            spans_cmd;
            experiments_cmd;
          ]))
