(* Validate JSONL telemetry files against the stable schemas: every line
   must parse as a JSON object, metrics lines ({"metric", ...}) must match
   Stdext.Metrics.dump_jsonl's shape (including histogram bucket/count
   consistency), and trace lines ({"event", ...}) must match
   Dsim.Trace.to_jsonl's. CI runs this over the artifacts produced by
   `twostep report` and `twostep explore --metrics-out`. *)

module Json = Stdext.Json

exception Bad of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let obj_fields = function
  | Json.Obj fields -> fields
  | _ -> fail "not a JSON object"

let get fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> fail "missing field %S" name

let as_int name = function Json.Int i -> i | _ -> fail "field %S is not an integer" name

let int_field fields name = as_int name (get fields name)

let str_field fields name =
  match get fields name with
  | Json.String s -> s
  | _ -> fail "field %S is not a string" name

let int_list fields name =
  match get fields name with
  | Json.List items -> List.map (as_int name) items
  | _ -> fail "field %S is not a list" name

let check_metric fields =
  ignore (str_field fields "metric");
  match str_field fields "type" with
  | "counter" | "gauge" -> ignore (int_field fields "value")
  | "histogram" ->
      let le = int_list fields "le" in
      let counts = int_list fields "counts" in
      let count = int_field fields "count" in
      ignore (int_field fields "sum");
      if List.length counts <> List.length le + 1 then
        fail "histogram: %d bounds need %d counts, got %d" (List.length le)
          (List.length le + 1) (List.length counts);
      let rec increasing = function
        | a :: (b :: _ as tl) -> a < b && increasing tl
        | _ -> true
      in
      if not (increasing le) then fail "histogram: bounds not strictly increasing";
      if List.exists (fun c -> c < 0) counts then fail "histogram: negative bucket count";
      let total = List.fold_left ( + ) 0 counts in
      if total <> count then fail "histogram: counts sum to %d but count=%d" total count
  | other -> fail "unknown metric type %S" other

let message_events = [ "sent"; "delivered"; "dropped"; "duplicated" ]

let process_events = [ "input"; "output"; "timer_fired"; "crashed" ]

let check_event fields =
  let event = str_field fields "event" in
  ignore (int_field fields "time");
  if List.mem event message_events then begin
    ignore (int_field fields "src");
    ignore (int_field fields "dst");
    ignore (get fields "msg")
  end
  else if List.mem event process_events then ignore (int_field fields "pid")
  else fail "unknown event %S" event;
  if List.mem event [ "delivered"; "dropped"; "duplicated" ] then
    ignore (int_field fields "sent_at");
  if event = "duplicated" then ignore (int_field fields "extra_delay");
  if event = "timer_fired" then ignore (int_field fields "id")

let check_line line =
  match Json.parse line with
  | Error msg -> fail "parse error: %s" msg
  | Ok json ->
      let fields = obj_fields json in
      if List.mem_assoc "metric" fields then check_metric fields
      else if List.mem_assoc "event" fields then check_event fields
(* other objects (report --json, bench samples) only need to parse *)

let check_file path =
  let ic = open_in path in
  let lineno = ref 0 in
  let errors = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         try check_line line
         with Bad msg ->
           incr errors;
           Printf.eprintf "%s:%d: %s\n" path !lineno msg
     done
   with End_of_file -> ());
  close_in ic;
  if !errors = 0 then Printf.printf "%s: %d lines ok\n" path !lineno;
  !errors

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: jsonl_check FILE...";
    exit 2
  end;
  let errors = List.fold_left (fun acc path -> acc + check_file path) 0 files in
  if errors > 0 then exit 1
